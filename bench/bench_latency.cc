// End-to-end latency benches (docs/LATENCY.md):
//  - BM_E2eLatency_{SamzaSQL,Native}: source-to-sink latency distribution
//    (p50/p99 from the job's `e2e_latency_us` histogram) for the Figure 5a
//    filter at 1/2/4/8 containers. The backlog is produced before the job
//    drains it, so latency is catch-up style — dominated by broker queue
//    wait — and tracks drain throughput as containers are added.
//  - BM_StampOverhead_Filter: throughput with latency stamping on vs off.
//    The stamp is two clock reads plus two int64 copies per send; the run
//    fails (SkipWithError) if the measured tax exceeds 2%.
//
// BENCH_LATENCY_MESSAGES / BENCH_LATENCY_REPS override the workload size so
// the CI smoke arm can run the full matrix in seconds. Numbers live in
// EXPERIMENTS.md.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdlib>
#include <stdexcept>

#include "bench_common.h"
#include "common/latency.h"

namespace sqs::bench {
namespace {

constexpr const char* kFilterSql =
    "SELECT STREAM * FROM Orders WHERE units > 50";

int64_t EnvInt(const char* name, int64_t fallback) {
  const char* value = std::getenv(name);
  return value != nullptr && *value != '\0' ? std::atoll(value) : fallback;
}

int64_t Messages() { return EnvInt("BENCH_LATENCY_MESSAGES", 120'000); }
int Reps() { return static_cast<int>(EnvInt("BENCH_LATENCY_REPS", 13)); }

void RegisterNativeFilter() {
  static bool done = [] {
    TaskFactoryRegistry::Instance().Register("bench-lat-native-filter", [] {
      return std::make_unique<baseline::NativeFilterTask>("native-filter-out", 50);
    });
    return true;
  }();
  (void)done;
}

HistogramStats JobE2e(JobRunner& job) {
  MetricsSnapshot snap = job.metrics_registry()->Snapshot();
  auto it = snap.histograms.find(job.job_name() + ".e2e_latency_us");
  return it == snap.histograms.end() ? HistogramStats{} : it->second;
}

void ReportLatency(const char* variant, int containers,
                   const ThroughputResult& r, const HistogramStats& e2e) {
  std::printf("E2eLatency %-8s containers=%d  msgs=%lld  job=%.0f msg/s  "
              "e2e_p50=%lldus p99=%lldus max=%lldus (n=%lld)\n",
              variant, containers, static_cast<long long>(r.messages),
              r.job_tput, static_cast<long long>(e2e.p50),
              static_cast<long long>(e2e.p99), static_cast<long long>(e2e.max),
              static_cast<long long>(e2e.count));
  std::fflush(stdout);
}

void BM_E2eLatency_SamzaSQL(benchmark::State& state) {
  const int containers = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto env = MakeBenchEnv();
    workload::OrdersGenerator gen(*env, {});
    auto produced = gen.Produce(Messages());
    if (!produced.ok()) state.SkipWithError(produced.status().ToString().c_str());
    core::QueryExecutor executor(env, BenchJobConfig(containers));
    auto submitted = executor.Execute(kFilterSql);
    if (!submitted.ok()) state.SkipWithError(submitted.status().ToString().c_str());
    JobRunner* job = executor.job(submitted.value().job_index);
    ThroughputResult r = MeasureJob(*job);
    HistogramStats e2e = JobE2e(*job);
    Status st = job->Stop();
    if (!st.ok()) state.SkipWithError(st.ToString().c_str());
    state.counters["e2e_p50_us"] = static_cast<double>(e2e.p50);
    state.counters["e2e_p99_us"] = static_cast<double>(e2e.p99);
    state.counters["job_msgs_per_s"] = r.job_tput;
    ReportLatency("sql", containers, r, e2e);
  }
}

void BM_E2eLatency_Native(benchmark::State& state) {
  RegisterNativeFilter();
  const int containers = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto env = MakeBenchEnv();
    workload::OrdersGenerator gen(*env, {});
    auto produced = gen.Produce(Messages());
    if (!produced.ok()) state.SkipWithError(produced.status().ToString().c_str());
    if (!env->broker->HasTopic("native-filter-out")) {
      Status ct = env->broker->CreateTopic("native-filter-out",
                                           {.num_partitions = kPartitions});
      if (!ct.ok()) state.SkipWithError(ct.ToString().c_str());
    }
    Config config = BenchJobConfig(containers);
    config.Set(cfg::kJobName, "bench-lat-native");
    config.Set(cfg::kTaskInputs, "Orders");
    config.Set(cfg::kTaskFactory, "bench-lat-native-filter");
    JobRunner job(env->broker, config, env->clock);
    Status st = job.Start();
    if (!st.ok()) state.SkipWithError(st.ToString().c_str());
    ThroughputResult r = MeasureJob(job);
    HistogramStats e2e = JobE2e(job);
    st = job.Stop();
    if (!st.ok()) state.SkipWithError(st.ToString().c_str());
    state.counters["e2e_p50_us"] = static_cast<double>(e2e.p50);
    state.counters["e2e_p99_us"] = static_cast<double>(e2e.p99);
    state.counters["job_msgs_per_s"] = r.job_tput;
    ReportLatency("native", containers, r, e2e);
  }
}

// One filter run with the stamping toggle pinned; returns the job-aggregate
// throughput. The global toggle is set before generation so the inputs the
// job consumes are stamped (or not) consistently with the arm — an on-arm
// fed unstamped inputs would skip the dwell/e2e work it is supposed to pay.
double RunStampArm(bool stamping) {
  SetLatencyStampingEnabled(stamping);
  auto env = MakeBenchEnv();
  workload::OrdersGenerator gen(*env, {});
  auto produced = gen.Produce(Messages());
  if (!produced.ok()) throw std::runtime_error(produced.status().ToString());
  Config config = BenchJobConfig(1);
  config.SetBool(cfg::kLatencyStampingEnable, stamping);
  ThroughputResult r = MeasureSqlQuery(env, kFilterSql, config);
  return r.job_tput;
}

void BM_StampOverhead_Filter(benchmark::State& state) {
  for (auto _ : state) {
    // Back-to-back on/off pairs share ambient machine conditions, so each
    // pair's throughput ratio isolates the stamp; alternating the order
    // within pairs cancels thermal/frequency drift, and the median across
    // pairs rejects the outlier pairs a noisy box produces.
    std::vector<double> taxes;
    double best_on = 0, best_off = 0;
    for (int rep = 0; rep < Reps(); ++rep) {
      const bool on_first = (rep % 2) == 0;
      double first = RunStampArm(on_first);
      double second = RunStampArm(!on_first);
      double on = on_first ? first : second;
      double off = on_first ? second : first;
      best_on = std::max(best_on, on);
      best_off = std::max(best_off, off);
      taxes.push_back(off > 0 ? 100.0 * (off - on) / off : 0.0);
    }
    std::sort(taxes.begin(), taxes.end());
    const double overhead_pct = taxes[taxes.size() / 2];
    const double iqr = taxes[taxes.size() * 3 / 4] - taxes[taxes.size() / 4];
    state.counters["overhead_pct"] = overhead_pct;
    state.counters["tax_iqr_pct"] = iqr;
    state.counters["on_msgs_per_s"] = best_on;
    state.counters["off_msgs_per_s"] = best_off;
    std::printf("StampOverhead on=%.0f msg/s  off=%.0f msg/s  "
                "median_tax=%.2f%%  iqr=%.2f%%  (budget 2%%)\n",
                best_on, best_off, overhead_pct, iqr);
    std::fflush(stdout);
    // The tax is a fixed per-message cost, so it only measures cleanly
    // against a full-size drain — tiny smoke runs are dominated by one-time
    // work (cold histogram buckets, first polls) and are not asserted. And
    // a shared box can lose half its cycles to a co-tenant mid-pair, which
    // swamps a ~1.5% effect, so assert only when the pairs agree with each
    // other (tight IQR) — a wide spread means the box, not the stamp.
    if (overhead_pct > 2.0 && Messages() >= 100'000) {
      if (iqr <= 2.0) {
        state.SkipWithError("latency stamping tax exceeds the 2% budget");
      } else {
        std::printf("StampOverhead measurement unstable (IQR %.2f%% > 2%%); "
                    "not asserting\n", iqr);
        std::fflush(stdout);
      }
    }
  }
  // The toggle is process-global; leave it on for any later benchmarks.
  SetLatencyStampingEnabled(true);
}

BENCHMARK(BM_E2eLatency_Native)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Iterations(1)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_E2eLatency_SamzaSQL)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Iterations(1)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_StampOverhead_Filter)->Iterations(1)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace sqs::bench

BENCHMARK_MAIN();
