// Ablation A2 — the paper's §5.1 join analysis: "Kryo based Java object
// deserialization used in SamzaSQL implementation is more than two times
// slower than Avro based deserialization used in Samza's Java API based
// implementation". Two measurements:
//  1. Serde microbenchmarks: reflective (Kryo-model) vs Avro round trips
//     on the Products row — the >=2x per-record gap itself.
//  2. The join query with the SQL state serde switched from reflective to
//     avro — how much of the Figure 5c gap the serde alone explains.
#include <benchmark/benchmark.h>

#include "bench_common.h"

namespace sqs::bench {
namespace {

SchemaPtr ProductsSchema() {
  return Schema::Make("Products", {{"productId", FieldType::Int32(), false},
                                   {"name", FieldType::String(), false},
                                   {"supplierId", FieldType::Int32(), false}});
}

Row SampleProduct() {
  return {Value(int32_t{17}), Value("product-17"), Value(int32_t{3})};
}

void BM_Serde_AvroDeserialize(benchmark::State& state) {
  AvroRowSerde serde(ProductsSchema());
  Bytes bytes = serde.SerializeToBytes(SampleProduct());
  for (auto _ : state) {
    auto row = serde.DeserializeBytes(bytes);
    benchmark::DoNotOptimize(row);
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_Serde_ReflectiveDeserialize(benchmark::State& state) {
  ReflectiveRowSerde serde(ProductsSchema());
  Bytes bytes = serde.SerializeToBytes(SampleProduct());
  for (auto _ : state) {
    auto row = serde.DeserializeBytes(bytes);
    benchmark::DoNotOptimize(row);
  }
  state.SetItemsProcessed(state.iterations());
}

constexpr int64_t kMessages = 60'000;
constexpr int32_t kProducts = 1'000;

void RunJoin(benchmark::State& state, const char* label, const char* state_serde) {
  for (auto _ : state) {
    auto env = MakeBenchEnv();
    workload::OrdersGeneratorOptions options;
    options.num_products = kProducts;
    workload::OrdersGenerator gen(*env, options);
    auto produced = gen.Produce(kMessages);
    if (!produced.ok()) state.SkipWithError(produced.status().ToString().c_str());
    Status st = workload::ProduceProducts(*env, kProducts);
    if (!st.ok()) state.SkipWithError(st.ToString().c_str());
    Config config = BenchJobConfig(1);
    config.Set(core::sqlcfg::kStateSerde, state_serde);
    auto r = MeasureSqlQuery(
        env,
        "SELECT STREAM Orders.rowtime, Orders.orderId, Orders.productId, "
        "Orders.units, Products.supplierId FROM Orders JOIN Products ON "
        "Orders.productId = Products.productId",
        std::move(config));
    state.counters["job_msgs_per_s"] = r.job_tput;
    ReportThroughput("A2", label, 1, r);
  }
}

void BM_Join_ReflectiveState(benchmark::State& state) {
  RunJoin(state, "kryo", "reflective");
}
void BM_Join_AvroState(benchmark::State& state) { RunJoin(state, "avro", "avro"); }

BENCHMARK(BM_Serde_AvroDeserialize);
BENCHMARK(BM_Serde_ReflectiveDeserialize);
BENCHMARK(BM_Join_ReflectiveState)->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Join_AvroState)->Iterations(1)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace sqs::bench

BENCHMARK_MAIN();
