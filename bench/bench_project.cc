// Figure 5b: Project query throughput, SamzaSQL vs native Samza API, vs
// container count (fixed 32 partitions).
//   Project: SELECT STREAM rowtime, productId, units FROM Orders
// Expected shape: native wins by 30-40% (SQL pays record<->array
// conversions + schema validation; native builds the small output record
// directly from the decoded input); sublinear scaling for both.
#include <benchmark/benchmark.h>

#include "bench_common.h"

namespace sqs::bench {
namespace {

constexpr int64_t kMessages = 120'000;

void RegisterNativeProject() {
  static bool done = [] {
    TaskFactoryRegistry::Instance().Register("bench-native-project", [] {
      return std::make_unique<baseline::NativeProjectTask>("native-project-out");
    });
    return true;
  }();
  (void)done;
}

void BM_Project_Native(benchmark::State& state) {
  RegisterNativeProject();
  const int containers = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto env = MakeBenchEnv();
    workload::OrdersGenerator gen(*env, {});
    auto produced = gen.Produce(kMessages);
    if (!produced.ok()) state.SkipWithError(produced.status().ToString().c_str());
    auto r = MeasureNativeJob(env, BenchJobConfig(containers), "bench-native-project",
                              "Orders", "", "native-project-out");
    state.counters["job_msgs_per_s"] = r.job_tput;
    state.counters["avg_container_msgs_per_s"] = r.avg_container_tput;
    ReportThroughput("Fig5b", "native", containers, r);
  }
}

void BM_Project_SamzaSQL(benchmark::State& state) {
  const int containers = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto env = MakeBenchEnv();
    workload::OrdersGenerator gen(*env, {});
    auto produced = gen.Produce(kMessages);
    if (!produced.ok()) state.SkipWithError(produced.status().ToString().c_str());
    auto r = MeasureSqlQuery(
        env, "SELECT STREAM rowtime, productId, units FROM Orders",
        BenchJobConfig(containers));
    state.counters["job_msgs_per_s"] = r.job_tput;
    state.counters["avg_container_msgs_per_s"] = r.avg_container_tput;
    ReportThroughput("Fig5b", "sql", containers, r);
  }
}

BENCHMARK(BM_Project_Native)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Iterations(1)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Project_SamzaSQL)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace sqs::bench

BENCHMARK_MAIN();
