// Recovery and delivery-mode benchmarks (docs/FAULT_TOLERANCE.md):
//  - BM_Delivery_Throughput: the paper's tumbling-window aggregation with
//    periodic commits under task.delivery=at-least-once vs exactly-once.
//    The delta prices the exactly-once machinery end to end: per-task
//    idempotent producers stamping (pid, epoch, seq), broker dedup-map
//    lookups on every append, and per-store changelog high-watermark reads
//    plus the larger transactional checkpoint record at every commit.
//  - BM_Recovery_Latency: kill the container after the run and time the
//    full recovery path — changelog restore (truncated at the checkpointed
//    high-watermark in exactly-once mode), checkpoint scan, consumer seek —
//    then replay the uncheckpointed suffix. In exactly-once mode the replay
//    re-sends the same sequences and the broker's dups_dropped count shows
//    the dedup absorbing it.
//  - BM_Durable_Append: raw broker append throughput with the durable log
//    off vs on at each fsync policy (never / interval / always). The
//    off-vs-never delta prices the framing+write path; never-vs-always
//    prices the fsync itself.
//  - BM_Cold_Restart: append a durable log, drop the broker, and time a
//    fresh broker's EnableDurability — the full segment scan (CRC check on
//    every frame, offset/dedup/high-watermark rebuild). The disk-recovery
//    counterpart of BM_Recovery_Latency's changelog replay.
// Numbers are recorded in EXPERIMENTS.md.
#include <benchmark/benchmark.h>

#include <chrono>
#include <filesystem>

#include "bench_common.h"
#include "log/broker.h"
#include "task/api.h"

namespace sqs::bench {
namespace {

constexpr int64_t kMessages = 20'000;
// Per task (one task per partition, ~625 messages each at 32 partitions):
// 3 commit rounds per task, leaving a small uncheckpointed tail to replay.
constexpr int64_t kCommitEvery = 200;

const char* kWindowSql =
    "SELECT STREAM productId, SUM(units) AS totalUnits FROM Orders "
    "GROUP BY TUMBLE(rowtime, INTERVAL '10' SECOND), productId";

const char* ModeName(int mode) { return mode == 0 ? "at-least-once" : "exactly-once"; }

Config DeliveryConfig(int mode) {
  Config config = BenchJobConfig(1);
  config.SetInt(cfg::kCommitEveryMessages, kCommitEvery);
  if (mode == 1) config.Set(cfg::kTaskDelivery, "exactly-once");
  return config;
}

// state.range(0): 0 = at-least-once (default), 1 = exactly-once.
void BM_Delivery_Throughput(benchmark::State& state) {
  const int mode = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto env = MakeBenchEnv();
    workload::OrdersGenerator gen(*env, {});
    auto produced = gen.Produce(kMessages);
    if (!produced.ok()) state.SkipWithError(produced.status().ToString().c_str());
    ThroughputResult r = MeasureSqlQuery(env, kWindowSql, DeliveryConfig(mode));
    state.counters["job_msgs_per_s"] = r.job_tput;
    state.counters["dups_dropped"] = static_cast<double>(env->broker->dups_dropped());
    ReportThroughput("Delivery", ModeName(mode), 1, r);
  }
}

// state.range(0): 0 = at-least-once, 1 = exactly-once. One container owns
// all 32 partitions, so restarting slot 0 recovers the whole job.
void BM_Recovery_Latency(benchmark::State& state) {
  const int mode = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto env = MakeBenchEnv();
    workload::OrdersGenerator gen(*env, {});
    auto produced = gen.Produce(kMessages);
    if (!produced.ok()) state.SkipWithError(produced.status().ToString().c_str());

    core::QueryExecutor executor(env, DeliveryConfig(mode));
    auto submitted = executor.Execute(kWindowSql);
    if (!submitted.ok()) state.SkipWithError(submitted.status().ToString().c_str());
    JobRunner* job = executor.job(submitted.value().job_index);
    auto ran = job->container(0)->RunUntilCaughtUp();
    if (!ran.ok()) state.SkipWithError(ran.status().ToString().c_str());

    Status st = job->KillContainer(0);
    if (!st.ok()) state.SkipWithError(st.ToString().c_str());
    const auto t0 = std::chrono::steady_clock::now();
    st = job->RestartContainer(0);
    const auto t1 = std::chrono::steady_clock::now();
    if (!st.ok()) state.SkipWithError(st.ToString().c_str());
    const double restore_ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count();

    auto replayed = job->container(0)->RunUntilCaughtUp();
    if (!replayed.ok()) state.SkipWithError(replayed.status().ToString().c_str());
    const int64_t dups = env->broker->dups_dropped();
    st = job->Stop();
    if (!st.ok()) state.SkipWithError(st.ToString().c_str());

    state.counters["restore_ms"] = restore_ms;
    state.counters["replayed_msgs"] = static_cast<double>(replayed.value());
    state.counters["dups_dropped"] = static_cast<double>(dups);

    std::printf("Recovery mode=%-14s restore=%.2f ms  replayed=%lld msgs  "
                "dups_dropped=%lld\n",
                ModeName(mode), restore_ms,
                static_cast<long long>(replayed.value()),
                static_cast<long long>(dups));
    std::fflush(stdout);
  }
}

// ---------------------------------------------------------------------------
// Durable-log arms (docs/DURABILITY.md)
// ---------------------------------------------------------------------------

constexpr int64_t kDurableMessages = 10'000;

// A scratch segment directory per benchmark arm, wiped on entry.
std::string BenchLogDir(const std::string& arm) {
  std::string dir = std::filesystem::temp_directory_path() / ("sqs_bench_" + arm);
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

DurableLogOptions BenchDurable(const std::string& dir, FsyncPolicy fsync) {
  DurableLogOptions o;
  o.enabled = true;
  o.dir = dir;
  o.segment_bytes = 8 << 20;
  o.fsync = fsync;
  return o;
}

Message BenchMsg(int64_t i) {
  Message m;
  m.key = ToBytes("key-" + std::to_string(i % 64));
  m.value = ToBytes(std::string(100, 'x'));  // the paper's ~100-byte payload
  return m;
}

const char* DurabilityArmName(int arm) {
  switch (arm) {
    case 0: return "off";
    case 1: return "fsync=never";
    case 2: return "fsync=interval";
    default: return "fsync=always";
  }
}

// state.range(0): 0 = log.durable=off (heap only), 1..3 = durable with
// fsync never / interval(50ms) / always. Single partition, so the numbers
// are the per-partition serial append cost — the unit the fsync policy
// actually taxes.
void BM_Durable_Append(benchmark::State& state) {
  const int arm = static_cast<int>(state.range(0));
  for (auto _ : state) {
    Broker broker;
    if (arm > 0) {
      FsyncPolicy fsync = arm == 1   ? FsyncPolicy::kNever
                          : arm == 2 ? FsyncPolicy::kInterval
                                     : FsyncPolicy::kAlways;
      Status st = broker.EnableDurability(
          BenchDurable(BenchLogDir("append_" + std::to_string(arm)), fsync));
      if (!st.ok()) state.SkipWithError(st.ToString().c_str());
    }
    TopicConfig one;
    one.num_partitions = 1;
    Status st = broker.CreateTopic("bench", one);
    if (!st.ok()) state.SkipWithError(st.ToString().c_str());

    const auto t0 = std::chrono::steady_clock::now();
    for (int64_t i = 0; i < kDurableMessages; ++i) {
      auto appended = broker.Append({"bench", 0}, BenchMsg(i));
      if (!appended.ok()) state.SkipWithError(appended.status().ToString().c_str());
    }
    st = broker.SyncDurableLog();
    if (!st.ok()) state.SkipWithError(st.ToString().c_str());
    const auto t1 = std::chrono::steady_clock::now();

    const double secs = std::chrono::duration<double>(t1 - t0).count();
    const double tput = static_cast<double>(kDurableMessages) / secs;
    state.counters["appends_per_s"] = tput;
    std::printf("DurableAppend mode=%-16s %.0f appends/s\n",
                DurabilityArmName(arm), tput);
    std::fflush(stdout);
  }
}

// state.range(0): messages in the log before the cold restart. Times a fresh
// broker's EnableDurability over the surviving segments: full CRC scan plus
// offset/producer-dedup/high-watermark rebuild.
void BM_Cold_Restart(benchmark::State& state) {
  const int64_t messages = state.range(0);
  for (auto _ : state) {
    const std::string dir = BenchLogDir("cold_restart");
    {
      Broker writer;
      Status st = writer.EnableDurability(BenchDurable(dir, FsyncPolicy::kNever));
      if (!st.ok()) state.SkipWithError(st.ToString().c_str());
      TopicConfig one;
      one.num_partitions = 1;
      st = writer.CreateTopic("bench", one);
      if (!st.ok()) state.SkipWithError(st.ToString().c_str());
      for (int64_t i = 0; i < messages; ++i) {
        auto appended = writer.Append({"bench", 0}, BenchMsg(i));
        if (!appended.ok()) state.SkipWithError(appended.status().ToString().c_str());
      }
      st = writer.SyncDurableLog();
      if (!st.ok()) state.SkipWithError(st.ToString().c_str());
    }

    Broker recovered;
    const auto t0 = std::chrono::steady_clock::now();
    Status st = recovered.EnableDurability(BenchDurable(dir, FsyncPolicy::kNever));
    const auto t1 = std::chrono::steady_clock::now();
    if (!st.ok()) state.SkipWithError(st.ToString().c_str());
    auto end = recovered.EndOffset({"bench", 0});
    if (!end.ok() || end.value() != messages) {
      state.SkipWithError("cold restart lost records");
    }

    const double recover_ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    state.counters["recover_ms"] = recover_ms;
    state.counters["recovered_msgs_per_s"] =
        static_cast<double>(messages) / (recover_ms / 1000.0);
    std::printf("ColdRestart msgs=%-8lld recover=%.2f ms  (%.0f msgs/s)\n",
                static_cast<long long>(messages), recover_ms,
                static_cast<double>(messages) / (recover_ms / 1000.0));
    std::fflush(stdout);
  }
}

BENCHMARK(BM_Delivery_Throughput)->Arg(0)->Arg(1)->Iterations(1)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Recovery_Latency)->Arg(0)->Arg(1)->Iterations(1)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Durable_Append)->Arg(0)->Arg(1)->Arg(2)->Arg(3)->Iterations(1)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Cold_Restart)->Arg(20'000)->Arg(100'000)->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace sqs::bench

BENCHMARK_MAIN();
