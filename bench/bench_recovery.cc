// Recovery and delivery-mode benchmarks (docs/FAULT_TOLERANCE.md):
//  - BM_Delivery_Throughput: the paper's tumbling-window aggregation with
//    periodic commits under task.delivery=at-least-once vs exactly-once.
//    The delta prices the exactly-once machinery end to end: per-task
//    idempotent producers stamping (pid, epoch, seq), broker dedup-map
//    lookups on every append, and per-store changelog high-watermark reads
//    plus the larger transactional checkpoint record at every commit.
//  - BM_Recovery_Latency: kill the container after the run and time the
//    full recovery path — changelog restore (truncated at the checkpointed
//    high-watermark in exactly-once mode), checkpoint scan, consumer seek —
//    then replay the uncheckpointed suffix. In exactly-once mode the replay
//    re-sends the same sequences and the broker's dups_dropped count shows
//    the dedup absorbing it.
// Numbers are recorded in EXPERIMENTS.md.
#include <benchmark/benchmark.h>

#include <chrono>

#include "bench_common.h"
#include "task/api.h"

namespace sqs::bench {
namespace {

constexpr int64_t kMessages = 20'000;
// Per task (one task per partition, ~625 messages each at 32 partitions):
// 3 commit rounds per task, leaving a small uncheckpointed tail to replay.
constexpr int64_t kCommitEvery = 200;

const char* kWindowSql =
    "SELECT STREAM productId, SUM(units) AS totalUnits FROM Orders "
    "GROUP BY TUMBLE(rowtime, INTERVAL '10' SECOND), productId";

const char* ModeName(int mode) { return mode == 0 ? "at-least-once" : "exactly-once"; }

Config DeliveryConfig(int mode) {
  Config config = BenchJobConfig(1);
  config.SetInt(cfg::kCommitEveryMessages, kCommitEvery);
  if (mode == 1) config.Set(cfg::kTaskDelivery, "exactly-once");
  return config;
}

// state.range(0): 0 = at-least-once (default), 1 = exactly-once.
void BM_Delivery_Throughput(benchmark::State& state) {
  const int mode = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto env = MakeBenchEnv();
    workload::OrdersGenerator gen(*env, {});
    auto produced = gen.Produce(kMessages);
    if (!produced.ok()) state.SkipWithError(produced.status().ToString().c_str());
    ThroughputResult r = MeasureSqlQuery(env, kWindowSql, DeliveryConfig(mode));
    state.counters["job_msgs_per_s"] = r.job_tput;
    state.counters["dups_dropped"] = static_cast<double>(env->broker->dups_dropped());
    ReportThroughput("Delivery", ModeName(mode), 1, r);
  }
}

// state.range(0): 0 = at-least-once, 1 = exactly-once. One container owns
// all 32 partitions, so restarting slot 0 recovers the whole job.
void BM_Recovery_Latency(benchmark::State& state) {
  const int mode = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto env = MakeBenchEnv();
    workload::OrdersGenerator gen(*env, {});
    auto produced = gen.Produce(kMessages);
    if (!produced.ok()) state.SkipWithError(produced.status().ToString().c_str());

    core::QueryExecutor executor(env, DeliveryConfig(mode));
    auto submitted = executor.Execute(kWindowSql);
    if (!submitted.ok()) state.SkipWithError(submitted.status().ToString().c_str());
    JobRunner* job = executor.job(submitted.value().job_index);
    auto ran = job->container(0)->RunUntilCaughtUp();
    if (!ran.ok()) state.SkipWithError(ran.status().ToString().c_str());

    Status st = job->KillContainer(0);
    if (!st.ok()) state.SkipWithError(st.ToString().c_str());
    const auto t0 = std::chrono::steady_clock::now();
    st = job->RestartContainer(0);
    const auto t1 = std::chrono::steady_clock::now();
    if (!st.ok()) state.SkipWithError(st.ToString().c_str());
    const double restore_ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count();

    auto replayed = job->container(0)->RunUntilCaughtUp();
    if (!replayed.ok()) state.SkipWithError(replayed.status().ToString().c_str());
    const int64_t dups = env->broker->dups_dropped();
    st = job->Stop();
    if (!st.ok()) state.SkipWithError(st.ToString().c_str());

    state.counters["restore_ms"] = restore_ms;
    state.counters["replayed_msgs"] = static_cast<double>(replayed.value());
    state.counters["dups_dropped"] = static_cast<double>(dups);

    std::printf("Recovery mode=%-14s restore=%.2f ms  replayed=%lld msgs  "
                "dups_dropped=%lld\n",
                ModeName(mode), restore_ms,
                static_cast<long long>(replayed.value()),
                static_cast<long long>(dups));
    std::fflush(stdout);
  }
}

BENCHMARK(BM_Delivery_Throughput)->Arg(0)->Arg(1)->Iterations(1)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Recovery_Latency)->Arg(0)->Arg(1)->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace sqs::bench

BENCHMARK_MAIN();
