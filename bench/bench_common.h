// Shared benchmark harness reproducing the paper's measurement methodology
// (§5.1):
//  - 32-partition topics, ~100-byte messages;
//  - single-core figures (Fig 5/6 shapes) drive containers serially and
//    aggregate throughput the way the paper does: "The average throughput
//    across containers was multiplied by the container count";
//  - the contended multicore bench (bench_multicore.cc) instead measures
//    wall-clock throughput through the executor's scheduler, serial vs
//    threaded (see EXPERIMENTS.md §methodology);
//  - the broker charges a fixed simulated round-trip per consumer poll and
//    caps per-partition fetch size, so per-container read throughput drops
//    as partitions-per-container shrink — the paper's stated cause of
//    sublinear scaling (fixed partition count across container counts).
#pragma once

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "baseline/native_tasks.h"
#include "common/clock.h"
#include "core/executor.h"
#include "workload/generators.h"

namespace sqs::bench {

inline constexpr int32_t kPartitions = 32;
inline constexpr int64_t kPollLatencyNanos = 500'000;  // 0.5 ms broker RTT
inline constexpr int32_t kMaxFetchPerPartition = 100;  // ~100 msgs/partition/poll

struct ThroughputResult {
  int64_t messages = 0;
  double avg_container_tput = 0;  // messages/s, averaged over containers
  double job_tput = 0;            // avg container throughput x container count
};

// Fresh environment with the paper's sources at 32 partitions.
inline core::EnvironmentPtr MakeBenchEnv() {
  auto env = core::SamzaSqlEnvironment::Make();
  Status st = workload::SetupPaperSources(*env, kPartitions);
  if (!st.ok()) throw std::runtime_error(st.ToString());
  return env;
}

// Baseline job config shared by native and SQL jobs.
inline Config BenchJobConfig(int containers) {
  Config config;
  config.SetInt(cfg::kContainerCount, containers);
  config.SetInt(cfg::kMaxPollMessages, 8192);
  config.SetInt(cfg::kMaxFetchPerPartition, kMaxFetchPerPartition);
  config.SetInt(cfg::kPollLatencyNanos, kPollLatencyNanos);
  config.SetInt(cfg::kCommitEveryMessages, 0);  // commit on stop only
  return config;
}

// Run all containers of a started job serially to completion and compute
// the paper's throughput aggregate. Throughput is derived from the job's
// shared metrics registry — the same snapshots the periodic reporter and
// the shell's SHOW METRICS read (`<job>.container<N>.processed` counters
// and `.busy_ns` timers) — so benches and observability share one
// measurement path.
inline ThroughputResult MeasureJob(JobRunner& job) {
  ThroughputResult result;
  for (size_t c = 0; c < job.NumContainers(); ++c) {
    Container* container = job.container(static_cast<int32_t>(c));
    auto processed = container->RunUntilCaughtUp();
    if (!processed.ok()) throw std::runtime_error(processed.status().ToString());
    result.messages += processed.value();
  }
  MetricsSnapshot snap = job.metrics_registry()->Snapshot();
  double tput_sum = 0;
  int counted = 0;
  for (const auto& [name, processed] : snap.counters) {
    // Container-scope processed counters are `<job>.container<N>.processed`
    // (operator counters have a task segment instead and never match).
    constexpr const char* kSuffix = ".processed";
    const size_t suffix_len = 10;
    if (name.size() <= suffix_len ||
        name.compare(name.size() - suffix_len, suffix_len, kSuffix) != 0) {
      continue;
    }
    std::string scope = name.substr(0, name.size() - suffix_len);
    size_t dot = scope.rfind('.');
    if (dot == std::string::npos ||
        scope.compare(dot + 1, 9, "container") != 0) {
      continue;
    }
    auto busy = snap.timers.find(scope + ".busy_ns");
    if (busy == snap.timers.end() || busy->second <= 0) continue;
    double seconds = static_cast<double>(busy->second) / 1e9;
    tput_sum += static_cast<double>(processed) / seconds;
    ++counted;
  }
  if (counted > 0) {
    result.avg_container_tput = tput_sum / counted;
    result.job_tput = result.avg_container_tput * static_cast<double>(counted);
  }
  return result;
}

// Submit + measure a SamzaSQL query on a fresh executor.
inline ThroughputResult MeasureSqlQuery(core::EnvironmentPtr env, const std::string& sql,
                                        Config config) {
  core::QueryExecutor executor(env, std::move(config));
  auto submitted = executor.Execute(sql);
  if (!submitted.ok()) throw std::runtime_error(submitted.status().ToString());
  JobRunner* job = executor.job(submitted.value().job_index);
  ThroughputResult result = MeasureJob(*job);
  Status st = job->Stop();
  if (!st.ok()) throw std::runtime_error(st.ToString());
  return result;
}

// Create output topic + run a registered native task factory as a job.
inline ThroughputResult MeasureNativeJob(core::EnvironmentPtr env, Config config,
                                         const std::string& factory,
                                         const std::string& inputs,
                                         const std::string& bootstrap_inputs,
                                         const std::string& output_topic) {
  if (!env->broker->HasTopic(output_topic)) {
    Status st =
        env->broker->CreateTopic(output_topic, {.num_partitions = kPartitions});
    if (!st.ok()) throw std::runtime_error(st.ToString());
  }
  config.Set(cfg::kJobName, factory + "-job");
  config.Set(cfg::kTaskInputs, inputs);
  if (!bootstrap_inputs.empty()) config.Set(cfg::kBootstrapInputs, bootstrap_inputs);
  config.Set(cfg::kTaskFactory, factory);
  JobRunner job(env->broker, config, env->clock);
  Status st = job.Start();
  if (!st.ok()) throw std::runtime_error(st.ToString());
  ThroughputResult result = MeasureJob(job);
  st = job.Stop();
  if (!st.ok()) throw std::runtime_error(st.ToString());
  return result;
}

// Measured wall-clock result of one scheduler-driven run: unlike
// ThroughputResult (average x count), `tput` here is messages divided by
// the wall time RunJobsUntilQuiescent actually took, so serial and threaded
// executor modes are compared on the same honest scale.
struct WallClockResult {
  int64_t messages = 0;
  double wall_seconds = 0;
  double tput = 0;  // messages / wall-clock second
};

// Submit a query and drive it to quiescence through the executor's
// scheduler (executor.mode / executor.threads in `config` pick the mode),
// timing the run wall-clock.
inline WallClockResult MeasureSqlQueryWallClock(core::EnvironmentPtr env,
                                                const std::string& sql,
                                                Config config) {
  core::QueryExecutor executor(env, std::move(config));
  auto submitted = executor.Execute(sql);
  if (!submitted.ok()) throw std::runtime_error(submitted.status().ToString());
  int64_t t0 = MonotonicNanos();
  auto processed = executor.RunJobsUntilQuiescent();
  if (!processed.ok()) throw std::runtime_error(processed.status().ToString());
  WallClockResult result;
  result.wall_seconds = static_cast<double>(MonotonicNanos() - t0) / 1e9;
  result.messages = processed.value();
  if (result.wall_seconds > 0) {
    result.tput = static_cast<double>(result.messages) / result.wall_seconds;
  }
  JobRunner* job = executor.job(submitted.value().job_index);
  Status st = job->Stop();
  if (!st.ok()) throw std::runtime_error(st.ToString());
  return result;
}

inline void ReportWallClock(const char* figure, const char* variant,
                            int containers, const WallClockResult& r) {
  std::printf("%-10s %-16s containers=%d  msgs=%lld  wall=%.3f s  "
              "measured=%.0f msg/s\n",
              figure, variant, containers, static_cast<long long>(r.messages),
              r.wall_seconds, r.tput);
  std::fflush(stdout);
}

inline void ReportThroughput(const char* figure, const char* variant, int containers,
                             const ThroughputResult& r) {
  std::printf("%-10s %-8s containers=%d  msgs=%lld  avg_container=%.0f msg/s  "
              "job=%.0f msg/s\n",
              figure, variant, containers, static_cast<long long>(r.messages),
              r.avg_container_tput, r.job_tput);
  std::fflush(stdout);
}

}  // namespace sqs::bench
