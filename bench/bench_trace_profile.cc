// Figure 4 cost anatomy, measured instead of argued: run the Figure 5a
// filter/project query with distributed tracing enabled and split the
// container's busy time into serde and relational operator work from the
// recorded spans. On the fused mainline (sql.fusion=on, the default) serde
// is the fused stage's decode/encode child spans; with sql.fusion=off it is
// the interpreted scan/insert operator self time. Also measures the tracing
// tax itself (rate 0 vs 1% vs fully sampled) and writes a Chrome trace
// (chrome://tracing / Perfetto) export of the sampled run.
#include <benchmark/benchmark.h>

#include <fstream>

#include "bench_common.h"
#include "common/tracing.h"

namespace sqs::bench {
namespace {

constexpr int64_t kMessages = 20'000;
// Fully sampled, interpreted mode: ~6 spans per tuple (produce, process,
// scan, filter, project, insert) — size the ring so nothing is evicted
// mid-run. Fused mode telescopes to batch granularity (~4 spans per run of
// up to task.batch.max.messages tuples) and needs far less.
constexpr size_t kSpanCapacity = 1 << 18;
constexpr const char* kExportPath = "bench_trace_profile.json";

// state.range(0) = sample rate in permille (0, 10, 1000).
void BM_TraceProfile_Filter(benchmark::State& state) {
  const double rate = static_cast<double>(state.range(0)) / 1000.0;
  for (auto _ : state) {
    Tracer::Instance().Reset();
    Tracer::Instance().Configure(rate, kSpanCapacity);
    auto env = MakeBenchEnv();
    workload::OrdersGenerator gen(*env, {});
    auto produced = gen.Produce(kMessages);
    if (!produced.ok()) state.SkipWithError(produced.status().ToString().c_str());
    auto r = MeasureSqlQuery(
        env, "SELECT STREAM orderId, units * 2 AS doubled FROM Orders WHERE units > 50",
        BenchJobConfig(1));
    state.counters["job_msgs_per_s"] = r.job_tput;

    std::vector<Span> spans = Tracer::Instance().Spans();
    std::map<std::string, SpanStats> stats =
        ComputeSpanStats(spans, "samzasql-query-0.");
    int64_t busy_ns = 0, serde_ns = 0, operator_ns = 0;
    for (const auto& [name, st] : stats) {
      if (name == "process") {
        busy_ns = st.inclusive_ns;
        continue;
      }
      operator_ns += st.self_ns;
      // Fused mainline: serde is the stage's decode/encode child spans.
      if (name == "decode" || name == "encode") {
        serde_ns += st.self_ns;
        continue;
      }
      // Interpreted fallback (sql.fusion=off): scan/insert operator spans.
      size_t dash = name.rfind('-');
      if (dash != std::string::npos) {
        std::string op = name.substr(dash + 1);
        if (op == "scan" || op == "insert") serde_ns += st.self_ns;
      }
    }
    if (busy_ns > 0) {
      state.counters["serde_pct_of_busy"] =
          100.0 * static_cast<double>(serde_ns) / static_cast<double>(busy_ns);
      state.counters["operator_pct_of_busy"] =
          100.0 * static_cast<double>(operator_ns) / static_cast<double>(busy_ns);
    }
    state.counters["spans"] = static_cast<double>(spans.size());

    std::printf("TraceProfile rate=%.3f  job=%.0f msg/s  spans=%zu  "
                "serde=%.1f%% of busy  operators=%.1f%% of busy  evicted=%lld\n",
                rate, r.job_tput, spans.size(),
                busy_ns > 0 ? 100.0 * static_cast<double>(serde_ns) /
                                  static_cast<double>(busy_ns)
                            : 0.0,
                busy_ns > 0 ? 100.0 * static_cast<double>(operator_ns) /
                                  static_cast<double>(busy_ns)
                            : 0.0,
                static_cast<long long>(Tracer::Instance().evicted()));
    std::fflush(stdout);

    if (rate >= 1.0) {
      std::ofstream out(kExportPath);
      out << SpansToChromeTraceJson(spans);
      std::printf("TraceProfile chrome trace written to %s\n", kExportPath);
    }
    Tracer::Instance().Reset();
  }
}

BENCHMARK(BM_TraceProfile_Filter)
    ->Arg(0)      // tracing off: the Figure 5a baseline path
    ->Arg(10)     // 1% head-based sampling: the always-on production setting
    ->Arg(1000)   // fully sampled: EXPLAIN ANALYZE mode + Chrome export
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace sqs::bench

BENCHMARK_MAIN();
