// Continuous-profiling overhead: the Figure 5a filter/project query with
// the observability layer in four arms — (0) flight recorder off, (1)
// recorder on + sampler off (the always-on production default), (2)
// recorder on + sampler at 19 Hz, (3) recorder on + sampler at 97 Hz. The
// recorder arm bounds the tax of always-on forensics; the sampler arms
// price continuous CPU attribution. The defaults arm (1) must stay within
// 2% of baseline — asserted here and recorded in EXPERIMENTS.md.
#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "common/flightrec.h"
#include "common/profiler.h"

namespace sqs::bench {
namespace {

constexpr int64_t kMessages = 200'000;

// Baseline throughput from arm 0, captured for the <=2% assertion on arm 1.
// Benchmark registration order runs the arms in argument order.
double g_baseline_tput = 0;

const char* ArmName(int arm) {
  switch (arm) {
    case 0: return "recorder-off";
    case 1: return "recorder-on";
    case 2: return "sampler-19hz";
    default: return "sampler-97hz";
  }
}

// state.range(0): 0 = recorder off, 1 = recorder on / sampler off,
// 2 = recorder on + 19 Hz sampler, 3 = recorder on + 97 Hz sampler.
void BM_ProfileOverhead_Filter(benchmark::State& state) {
  const int arm = static_cast<int>(state.range(0));
  for (auto _ : state) {
    FlightRecorder::Instance().SetEnabled(arm >= 1);
    FlightRecorder::Instance().Clear();
    Profiler::Instance().Reset();
    if (arm == 2) (void)Profiler::Instance().StartSampling(19);
    if (arm == 3) (void)Profiler::Instance().StartSampling(97);

    auto env = MakeBenchEnv();
    workload::OrdersGenerator gen(*env, {});
    auto produced = gen.Produce(kMessages);
    if (!produced.ok()) state.SkipWithError(produced.status().ToString().c_str());
    auto r = MeasureSqlQuery(
        env,
        "SELECT STREAM orderId, units * 2 AS doubled FROM Orders WHERE units > 50",
        BenchJobConfig(1));

    const int64_t samples = Profiler::Instance().TotalSamples();
    Profiler::Instance().Reset();
    const int64_t recorded = FlightRecorder::Instance().recorded();
    FlightRecorder::Instance().SetEnabled(true);

    state.counters["job_msgs_per_s"] = r.job_tput;
    state.counters["profile_samples"] = static_cast<double>(samples);
    double vs_baseline = 0;
    if (arm == 0) {
      g_baseline_tput = r.job_tput;
    } else if (g_baseline_tput > 0) {
      vs_baseline = 100.0 * r.job_tput / g_baseline_tput;
      state.counters["pct_of_baseline"] = vs_baseline;
    }
    std::printf("ProfileOverhead arm=%-13s job=%.0f msg/s  events=%lld  "
                "samples=%lld  pct_of_baseline=%.1f%%\n",
                ArmName(arm), r.job_tput, static_cast<long long>(recorded),
                static_cast<long long>(samples), arm == 0 ? 100.0 : vs_baseline);
    std::fflush(stdout);
  }
}

BENCHMARK(BM_ProfileOverhead_Filter)
    ->Arg(0)   // baseline: flight recorder disabled, no sampler
    ->Arg(1)   // production default: recorder on, sampler off
    ->Arg(2)   // continuous profiling at 19 Hz
    ->Arg(3)   // continuous profiling at 97 Hz
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

// The acceptance bar: recorder on + sampler off (the shipped default) costs
// at most 2% throughput against recorder off. Single runs on a shared box
// swing by far more than 2% from cache/scheduler noise, so the two arms run
// interleaved and best-of-N is compared — best-of isolates the code path's
// floor from ambient noise the way paired microbenchmarks do.
void BM_ProfileOverhead_RecorderTax(benchmark::State& state) {
  constexpr int kRounds = 3;
  for (auto _ : state) {
    Profiler::Instance().Reset();
    double best_off = 0, best_on = 0;
    for (int round = 0; round < kRounds; ++round) {
      for (int recorder_on = 0; recorder_on < 2; ++recorder_on) {
        FlightRecorder::Instance().SetEnabled(recorder_on == 1);
        FlightRecorder::Instance().Clear();
        auto env = MakeBenchEnv();
        workload::OrdersGenerator gen(*env, {});
        auto produced = gen.Produce(kMessages);
        if (!produced.ok()) {
          state.SkipWithError(produced.status().ToString().c_str());
        }
        auto r = MeasureSqlQuery(env,
                                 "SELECT STREAM orderId, units * 2 AS doubled "
                                 "FROM Orders WHERE units > 50",
                                 BenchJobConfig(1));
        double& best = recorder_on == 1 ? best_on : best_off;
        best = std::max(best, r.job_tput);
      }
    }
    FlightRecorder::Instance().SetEnabled(true);
    const double pct = best_off > 0 ? 100.0 * best_on / best_off : 0;
    state.counters["best_off_msgs_per_s"] = best_off;
    state.counters["best_on_msgs_per_s"] = best_on;
    state.counters["pct_of_baseline"] = pct;
    std::printf("ProfileOverhead recorder-tax best_off=%.0f msg/s  "
                "best_on=%.0f msg/s  pct_of_baseline=%.1f%%\n",
                best_off, best_on, pct);
    std::fflush(stdout);
    if (best_on < 0.98 * best_off) {
      state.SkipWithError("flight recorder overhead exceeds 2% of baseline");
    }
  }
}

BENCHMARK(BM_ProfileOverhead_RecorderTax)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace sqs::bench

BENCHMARK_MAIN();
