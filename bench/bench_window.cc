// Figure 6: Sliding-window operator throughput, SamzaSQL vs native Samza
// API (single machine in the paper too — EC2 I/O throttling forced the
// authors onto an iMac).
//   Window: SELECT STREAM rowtime, productId, units, SUM(units) OVER
//           (PARTITION BY productId ORDER BY rowtime
//            RANGE INTERVAL '5' MINUTE PRECEDING) FROM Orders
// Expected shape (paper §5.1): near parity — "throughput is dominated by
// access to the key-value store, and this makes the overhead of message
// transformations negligible". Both implementations here run Algorithm 1
// against changelog-backed KV stores with the same access pattern.
#include <benchmark/benchmark.h>

#include "bench_common.h"

namespace sqs::bench {
namespace {

constexpr int64_t kMessages = 40'000;
// With rowtime_step 25ms and 100 products, a 5-minute window holds
// ~120 entries per product — enough KV traffic to dominate.
constexpr int64_t kWindowMs = 5 * 60 * 1000;
// RocksDB-model store access latency (see LatencyStore): makes KV access
// dominate, as in the paper's Figure 6 analysis.
constexpr int64_t kStoreLatencyNanos = 2000;

void RegisterNativeWindow() {
  static bool done = [] {
    TaskFactoryRegistry::Instance().Register("bench-native-window", [] {
      return std::make_unique<baseline::NativeSlidingWindowTask>("native-window-out",
                                                                 kWindowMs);
    });
    return true;
  }();
  (void)done;
}

void BM_Window_Native(benchmark::State& state) {
  RegisterNativeWindow();
  const int containers = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto env = MakeBenchEnv();
    workload::OrdersGenerator gen(*env, {});
    auto produced = gen.Produce(kMessages);
    if (!produced.ok()) state.SkipWithError(produced.status().ToString().c_str());
    Config config = BenchJobConfig(containers);
    config.SetInt(cfg::kStoreAccessLatencyNanos, kStoreLatencyNanos);
    config.Set("stores.native-win-msgs.changelog", "native-win-msgs-changelog");
    config.Set("stores.native-win-agg.changelog", "native-win-agg-changelog");
    auto r = MeasureNativeJob(env, config, "bench-native-window", "Orders", "",
                              "native-window-out");
    state.counters["job_msgs_per_s"] = r.job_tput;
    state.counters["avg_container_msgs_per_s"] = r.avg_container_tput;
    ReportThroughput("Fig6", "native", containers, r);
  }
}

void BM_Window_SamzaSQL(benchmark::State& state) {
  const int containers = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto env = MakeBenchEnv();
    workload::OrdersGenerator gen(*env, {});
    auto produced = gen.Produce(kMessages);
    if (!produced.ok()) state.SkipWithError(produced.status().ToString().c_str());
    Config config = BenchJobConfig(containers);
    config.SetInt(cfg::kStoreAccessLatencyNanos, kStoreLatencyNanos);
    auto r = MeasureSqlQuery(
        env,
        "SELECT STREAM rowtime, productId, units, SUM(units) OVER "
        "(PARTITION BY productId ORDER BY rowtime RANGE INTERVAL '5' MINUTE "
        "PRECEDING) AS unitsLastFiveMinutes FROM Orders",
        std::move(config));
    state.counters["job_msgs_per_s"] = r.job_tput;
    state.counters["avg_container_msgs_per_s"] = r.avg_container_tput;
    ReportThroughput("Fig6", "sql", containers, r);
  }
}

BENCHMARK(BM_Window_Native)->Arg(1)->Arg(2)->Arg(4)->Iterations(1)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Window_SamzaSQL)->Arg(1)->Arg(2)->Arg(4)->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace sqs::bench

BENCHMARK_MAIN();
