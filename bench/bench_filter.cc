// Figure 5a: Filter query throughput, SamzaSQL vs native Samza API, as a
// function of container count (fixed 32 partitions).
//   Filter: SELECT STREAM * FROM Orders WHERE units > 50
// Expected shape (paper §5.1): native wins by 30-40% (the SQL pipeline pays
// the Avro->Array->Avro conversions of Figure 4); both scale sublinearly
// because per-container poll batches shrink with fewer partitions each.
#include <benchmark/benchmark.h>

#include "bench_common.h"

namespace sqs::bench {
namespace {

constexpr int64_t kMessages = 120'000;

void RegisterNativeFilter() {
  static bool done = [] {
    TaskFactoryRegistry::Instance().Register("bench-native-filter", [] {
      return std::make_unique<baseline::NativeFilterTask>("native-filter-out", 50);
    });
    return true;
  }();
  (void)done;
}

void BM_Filter_Native(benchmark::State& state) {
  RegisterNativeFilter();
  const int containers = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto env = MakeBenchEnv();
    workload::OrdersGenerator gen(*env, {});
    auto produced = gen.Produce(kMessages);
    if (!produced.ok()) state.SkipWithError(produced.status().ToString().c_str());
    auto r = MeasureNativeJob(env, BenchJobConfig(containers), "bench-native-filter",
                              "Orders", "", "native-filter-out");
    state.counters["job_msgs_per_s"] = r.job_tput;
    state.counters["avg_container_msgs_per_s"] = r.avg_container_tput;
    ReportThroughput("Fig5a", "native", containers, r);
  }
}

void BM_Filter_SamzaSQL(benchmark::State& state) {
  const int containers = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto env = MakeBenchEnv();
    workload::OrdersGenerator gen(*env, {});
    auto produced = gen.Produce(kMessages);
    if (!produced.ok()) state.SkipWithError(produced.status().ToString().c_str());
    auto r = MeasureSqlQuery(env, "SELECT STREAM * FROM Orders WHERE units > 50",
                             BenchJobConfig(containers));
    state.counters["job_msgs_per_s"] = r.job_tput;
    state.counters["avg_container_msgs_per_s"] = r.avg_container_tput;
    ReportThroughput("Fig5a", "sql", containers, r);
  }
}

BENCHMARK(BM_Filter_Native)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Iterations(1)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Filter_SamzaSQL)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace sqs::bench

BENCHMARK_MAIN();
