// Monitoring overhead: the Figure 5a filter/project query with the monitor
// (1) disabled, (2) enabled but unscraped, and (3) enabled while a client
// thread scrapes GET /metrics at 10 Hz. The scrape path takes a full
// registry snapshot per request concurrently with container processing, so
// this bounds the observability tax a Prometheus deployment pays on the hot
// path. Numbers are recorded in EXPERIMENTS.md.
#include <benchmark/benchmark.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "bench_common.h"
#include "http/http_server.h"

namespace sqs::bench {
namespace {

// Sized so the processing phase spans several scrape intervals (~0.5 s on
// the reference single-core box), unlike the 20k-message figure benches.
constexpr int64_t kMessages = 200'000;
constexpr int64_t kScrapeIntervalMs = 100;  // 10 Hz

const char* ModeName(int mode) {
  switch (mode) {
    case 0: return "off";
    case 1: return "on";
    default: return "scraped";
  }
}

// state.range(0): 0 = monitor off, 1 = monitor on, 2 = on + scraped at 10 Hz.
void BM_MonitorOverhead_Filter(benchmark::State& state) {
  const int mode = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto env = MakeBenchEnv();
    workload::OrdersGenerator gen(*env, {});
    auto produced = gen.Produce(kMessages);
    if (!produced.ok()) state.SkipWithError(produced.status().ToString().c_str());

    Config config = BenchJobConfig(1);
    if (mode >= 1) {
      config.SetBool(cfg::kMonitorEnable, true);
      config.SetInt(cfg::kMonitorPort, 0);  // ephemeral
    }
    core::QueryExecutor executor(env, config);
    auto submitted = executor.Execute(
        "SELECT STREAM orderId, units * 2 AS doubled FROM Orders WHERE units > 50");
    if (!submitted.ok()) state.SkipWithError(submitted.status().ToString().c_str());

    std::atomic<bool> stop{false};
    std::atomic<int64_t> scrapes{0};
    std::atomic<int64_t> scrape_bytes{0};
    std::thread scraper;
    if (mode == 2) {
      const int port = executor.monitor().port();
      scraper = std::thread([&stop, &scrapes, &scrape_bytes, port] {
        while (!stop.load(std::memory_order_acquire)) {
          auto res = HttpGet("127.0.0.1", port, "/metrics");
          if (res.ok() && res.value().status == 200) {
            scrapes.fetch_add(1, std::memory_order_relaxed);
            scrape_bytes.fetch_add(static_cast<int64_t>(res.value().body.size()),
                                   std::memory_order_relaxed);
          }
          std::this_thread::sleep_for(std::chrono::milliseconds(kScrapeIntervalMs));
        }
      });
    }

    JobRunner* job = executor.job(submitted.value().job_index);
    ThroughputResult r = MeasureJob(*job);
    stop.store(true, std::memory_order_release);
    if (scraper.joinable()) scraper.join();
    Status st = job->Stop();
    if (!st.ok()) state.SkipWithError(st.ToString().c_str());

    state.counters["job_msgs_per_s"] = r.job_tput;
    state.counters["scrapes"] = static_cast<double>(scrapes.load());

    std::printf("MonitorOverhead mode=%-8s job=%.0f msg/s  msgs=%lld  "
                "scrapes=%lld  scraped_bytes=%lld\n",
                ModeName(mode), r.job_tput, static_cast<long long>(r.messages),
                static_cast<long long>(scrapes.load()),
                static_cast<long long>(scrape_bytes.load()));
    std::fflush(stdout);
  }
}

BENCHMARK(BM_MonitorOverhead_Filter)
    ->Arg(0)   // baseline: monitor disabled
    ->Arg(1)   // HTTP endpoint up, nobody scraping
    ->Arg(2)   // scraped at 10 Hz while the job runs
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace sqs::bench

BENCHMARK_MAIN();
