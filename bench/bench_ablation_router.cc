// Ablation A3 — two framework-level effects the paper discusses:
//  1. Operator-router overhead (§5.1: "SamzaSQL's operator router layer
//     also adds very little overhead when compared with message
//     transformation overheads"): the same filter query run through plans
//     with increasingly long chains of pass-through projections.
//  2. Poll batch efficiency (§5.1 sublinear-scaling cause): single-container
//     filter throughput as the per-partition fetch cap shrinks, amortizing
//     the fixed poll round-trip over fewer messages.
#include <benchmark/benchmark.h>

#include "bench_common.h"

namespace sqs::bench {
namespace {

constexpr int64_t kMessages = 80'000;

// 1) Router depth: wrap the filter in N nested identity subqueries. The
// optimizer's ProjectMerge collapses adjacent simple projections, so to
// keep the chain alive each layer re-derives a column with arithmetic that
// references the previous layer's output (+0 folds away; use +1-1 ... no —
// use a non-foldable but cheap expression on a non-referenced column).
std::string NestedFilterQuery(int depth) {
  std::string inner = "SELECT rowtime, productId, orderId, units, pad FROM Orders";
  for (int i = 0; i < depth; ++i) {
    inner = "SELECT rowtime, productId, orderId, units + 0 * productId AS units, pad "
            "FROM (" + inner + ")";
  }
  return "SELECT STREAM rowtime, units FROM (" + inner + ") WHERE units > 50";
}

void BM_RouterDepth(benchmark::State& state) {
  const int depth = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto env = MakeBenchEnv();
    workload::OrdersGenerator gen(*env, {});
    auto produced = gen.Produce(kMessages);
    if (!produced.ok()) state.SkipWithError(produced.status().ToString().c_str());
    auto r = MeasureSqlQuery(env, NestedFilterQuery(depth), BenchJobConfig(1));
    state.counters["job_msgs_per_s"] = r.job_tput;
    ReportThroughput("A3-depth", std::to_string(depth).c_str(), 1, r);
  }
}

// 2) Poll batch size: fixed query, varying per-partition fetch cap.
void BM_PollBatch(benchmark::State& state) {
  const int cap = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto env = MakeBenchEnv();
    workload::OrdersGenerator gen(*env, {});
    auto produced = gen.Produce(kMessages);
    if (!produced.ok()) state.SkipWithError(produced.status().ToString().c_str());
    Config config = BenchJobConfig(1);
    config.SetInt(cfg::kMaxFetchPerPartition, cap);
    auto r = MeasureSqlQuery(env, "SELECT STREAM * FROM Orders WHERE units > 50",
                             std::move(config));
    state.counters["job_msgs_per_s"] = r.job_tput;
    ReportThroughput("A3-batch", std::to_string(cap).c_str(), 1, r);
  }
}

BENCHMARK(BM_RouterDepth)->Arg(0)->Arg(2)->Arg(4)->Arg(8)->Iterations(1)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_PollBatch)->Arg(5)->Arg(20)->Arg(100)->Arg(400)->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace sqs::bench

BENCHMARK_MAIN();
