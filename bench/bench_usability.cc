// §5 usability comparison: lines of code to express each benchmark query in
// streaming SQL vs the native Samza API. The paper reports: sliding window
// queries need >100 lines of native code, stream-to-relation joins >50,
// filter/project 20-30, while the SQL forms are a couple of lines — plus
// the native jobs each need a hand-maintained configuration file that
// SamzaSQL generates automatically.
//
// The native line counts here are measured against this repository's actual
// native task implementations (src/baseline/native_tasks.{h,cc}) including
// their required job/store configuration keys; the SQL counts are the
// literal query strings used by the figure benchmarks.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>
#include <vector>

namespace {

struct UsabilityRow {
  const char* query;
  int sql_lines;
  int native_lines;   // task implementation (decl + def) in native_tasks.*
  int native_config;  // hand-written config keys the native job needs
};

int CountLines(const std::string& text) {
  int lines = 1;
  for (char c : text) {
    if (c == '\n') ++lines;
  }
  return lines;
}

void BM_UsabilityTable(benchmark::State& state) {
  const std::string filter_sql = "SELECT STREAM *\nFROM Orders\nWHERE units > 50";
  const std::string project_sql = "SELECT STREAM rowtime, productId, units\nFROM Orders";
  const std::string join_sql =
      "SELECT STREAM Orders.rowtime, Orders.orderId, Orders.productId,\n"
      "  Orders.units, Products.supplierId\n"
      "FROM Orders JOIN Products\n"
      "ON Orders.productId = Products.productId";
  const std::string window_sql =
      "SELECT STREAM rowtime, productId, units,\n"
      "  SUM(units) OVER (PARTITION BY productId ORDER BY rowtime\n"
      "    RANGE INTERVAL '5' MINUTE PRECEDING) AS unitsLastFiveMinutes\n"
      "FROM Orders";

  // Native implementation sizes, counted from src/baseline/native_tasks.*
  // (class declaration + member definitions), and the config keys each job
  // needs (job.name, task.inputs, task.factory, output topic, stores, ...).
  std::vector<UsabilityRow> rows = {
      {"Filter", CountLines(filter_sql), 18, 5},
      {"Project", CountLines(project_sql), 24, 5},
      {"Stream-to-relation join", CountLines(join_sql), 52, 8},
      {"Sliding window", CountLines(window_sql), 106, 9},
  };

  for (auto _ : state) {
    std::printf("\n%-26s %10s %14s %16s\n", "Query", "SQL lines", "Native lines",
                "Native config");
    for (const UsabilityRow& row : rows) {
      std::printf("%-26s %10d %14d %16d\n", row.query, row.sql_lines,
                  row.native_lines, row.native_config);
    }
    std::printf("(SamzaSQL generates the job configuration automatically; the\n"
                " native column counts hand-written configuration keys.)\n");
    state.counters["window_native_over_sql"] =
        static_cast<double>(rows[3].native_lines) / rows[3].sql_lines;
  }
}

BENCHMARK(BM_UsabilityTable)->Iterations(1);

}  // namespace

BENCHMARK_MAIN();
