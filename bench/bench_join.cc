// Figure 5c: Stream-to-relation join throughput, SamzaSQL vs native Samza
// API, vs container count (fixed 32 partitions).
//   Join: SELECT STREAM o.rowtime, o.orderId, o.productId, o.units,
//         p.supplierId FROM Orders o JOIN Products p
//         ON o.productId = p.productId
// Expected shape (paper §5.1): SQL is ~2x slower — "mainly due to key-value
// store deserialization overhead" (Kryo-style generic deserialization vs
// the native task's Avro) "and overheads of the operator router layer".
#include <benchmark/benchmark.h>

#include "bench_common.h"

namespace sqs::bench {
namespace {

constexpr int64_t kMessages = 60'000;
constexpr int32_t kProducts = 1'000;

void RegisterNativeJoin() {
  static bool done = [] {
    TaskFactoryRegistry::Instance().Register("bench-native-join", [] {
      return std::make_unique<baseline::NativeJoinTask>("native-join-out", "Products");
    });
    return true;
  }();
  (void)done;
}

core::EnvironmentPtr MakeJoinEnv() {
  auto env = MakeBenchEnv();
  workload::OrdersGeneratorOptions options;
  options.num_products = kProducts;
  workload::OrdersGenerator gen(*env, options);
  auto produced = gen.Produce(kMessages);
  if (!produced.ok()) throw std::runtime_error(produced.status().ToString());
  Status st = workload::ProduceProducts(*env, kProducts);
  if (!st.ok()) throw std::runtime_error(st.ToString());
  return env;
}

void BM_Join_Native(benchmark::State& state) {
  RegisterNativeJoin();
  const int containers = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto env = MakeJoinEnv();
    Config config = BenchJobConfig(containers);
    config.Set("stores.native-join-table.changelog", "native-join-table-changelog");
    auto r = MeasureNativeJob(env, config, "bench-native-join", "Orders,Products",
                              "Products", "native-join-out");
    state.counters["job_msgs_per_s"] = r.job_tput;
    state.counters["avg_container_msgs_per_s"] = r.avg_container_tput;
    ReportThroughput("Fig5c", "native", containers, r);
  }
}

void BM_Join_SamzaSQL(benchmark::State& state) {
  const int containers = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto env = MakeJoinEnv();
    auto r = MeasureSqlQuery(
        env,
        "SELECT STREAM Orders.rowtime, Orders.orderId, Orders.productId, "
        "Orders.units, Products.supplierId FROM Orders JOIN Products ON "
        "Orders.productId = Products.productId",
        BenchJobConfig(containers));
    state.counters["job_msgs_per_s"] = r.job_tput;
    state.counters["avg_container_msgs_per_s"] = r.avg_container_tput;
    ReportThroughput("Fig5c", "sql", containers, r);
  }
}

BENCHMARK(BM_Join_Native)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Iterations(1)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Join_SamzaSQL)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace sqs::bench

BENCHMARK_MAIN();
