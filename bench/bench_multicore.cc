// Contended multicore bench: 8 containers driven by the executor's
// scheduler, serial vs threaded (8 pool workers), on the filter and
// windowed-aggregation arms. Unlike the Figure 5/6 benches this reports
// *measured wall-clock* throughput — messages divided by the time
// RunJobsUntilQuiescent took — so the threaded speedup is real, not
// derived (EXPERIMENTS.md "Contended multicore execution").
//
// Both arms charge the simulated broker RTT with the "sleep" latency model:
// a broker round trip is wait, not work, so concurrently running containers
// overlap their RTTs exactly like real network I/O. The spin model would
// make the comparison meaningless on a small machine (spinning containers
// contend for the very cores the others need).
#include <benchmark/benchmark.h>

#include <cstdlib>

#include "bench_common.h"

namespace sqs::bench {
namespace {

// 2 ms RTT per poll: a remote-broker figure (same order as a cross-rack
// Kafka fetch), large enough that overlap — not scheduler noise — dominates
// the serial/threaded gap.
constexpr int64_t kMulticorePollLatencyNanos = 2'000'000;
constexpr int kContainers = 8;
constexpr int kThreads = 8;

int64_t MessageCount() {
  const char* env = std::getenv("BENCH_MULTICORE_MESSAGES");
  if (env != nullptr) {
    long long v = std::atoll(env);
    if (v > 0) return static_cast<int64_t>(v);
  }
  return 80'000;
}

Config MulticoreConfig(const char* mode) {
  Config config = BenchJobConfig(kContainers);
  config.SetInt(cfg::kPollLatencyNanos, kMulticorePollLatencyNanos);
  config.Set(cfg::kPollLatencyModel, "sleep");
  config.Set(cfg::kExecutorMode, mode);
  config.SetInt(cfg::kExecutorThreads, kThreads);
  return config;
}

constexpr const char* kFilterSql =
    "SELECT STREAM * FROM Orders WHERE units > 50";
constexpr const char* kAggSql =
    "SELECT STREAM rowtime, productId, units, SUM(units) OVER "
    "(PARTITION BY productId ORDER BY rowtime RANGE INTERVAL '5' MINUTE "
    "PRECEDING) AS unitsLastFiveMinutes FROM Orders";

void RunArm(benchmark::State& state, const char* arm, const char* sql,
            const char* mode) {
  for (auto _ : state) {
    auto env = MakeBenchEnv();
    workload::OrdersGenerator gen(*env, {});
    auto produced = gen.Produce(MessageCount());
    if (!produced.ok()) state.SkipWithError(produced.status().ToString().c_str());
    auto r = MeasureSqlQueryWallClock(env, sql, MulticoreConfig(mode));
    state.counters["measured_msgs_per_s"] = r.tput;
    state.counters["wall_seconds"] = r.wall_seconds;
    std::string variant = std::string(arm) + "/" + mode;
    ReportWallClock("Multicore", variant.c_str(), kContainers, r);
  }
}

void BM_Multicore_Filter_Serial(benchmark::State& state) {
  RunArm(state, "filter", kFilterSql, "serial");
}
void BM_Multicore_Filter_Threaded(benchmark::State& state) {
  RunArm(state, "filter", kFilterSql, "threaded");
}
void BM_Multicore_Agg_Serial(benchmark::State& state) {
  RunArm(state, "agg", kAggSql, "serial");
}
void BM_Multicore_Agg_Threaded(benchmark::State& state) {
  RunArm(state, "agg", kAggSql, "threaded");
}

BENCHMARK(BM_Multicore_Filter_Serial)->Iterations(1)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Multicore_Filter_Threaded)->Iterations(1)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Multicore_Agg_Serial)->Iterations(1)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Multicore_Agg_Threaded)->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace sqs::bench

BENCHMARK_MAIN();
