// Mainline fused execution, on vs off. The paper's §7 item 5 optimization —
// "generate expressions that work directly on the decoded record",
// eliminating the AvroToArray / ArrayToAvro steps of Figure 4 — is no longer
// a side experiment: terminal scan<-filter/project chains compile into one
// fused per-partition stage by default (sql.fusion=on), with lazy per-column
// decode, raw-byte predicates, and batch dispatch. This bench tracks the win
// over the fully interpreted operator DAG (sql.fusion=off), i.e. how much of
// the Figure 5a/5b native-vs-SQL gap the fused mainline closes.
#include <benchmark/benchmark.h>

#include "bench_common.h"

namespace sqs::bench {
namespace {

constexpr int64_t kMessages = 120'000;

void Run(benchmark::State& state, const char* label, const std::string& sql,
         bool fusion) {
  const int containers = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto env = MakeBenchEnv();
    workload::OrdersGenerator gen(*env, {});
    auto produced = gen.Produce(kMessages);
    if (!produced.ok()) state.SkipWithError(produced.status().ToString().c_str());
    Config config = BenchJobConfig(containers);
    config.Set(core::sqlcfg::kFusion, fusion ? "on" : "off");
    auto r = MeasureSqlQuery(env, sql, std::move(config));
    state.counters["job_msgs_per_s"] = r.job_tput;
    ReportThroughput("Fusion", label, containers, r);
  }
}

void BM_Filter_Interpreted(benchmark::State& state) {
  Run(state, "interp", "SELECT STREAM * FROM Orders WHERE units > 50", false);
}
void BM_Filter_Fused(benchmark::State& state) {
  Run(state, "fused", "SELECT STREAM * FROM Orders WHERE units > 50", true);
}
void BM_Project_Interpreted(benchmark::State& state) {
  Run(state, "interp-prj", "SELECT STREAM rowtime, productId, units FROM Orders",
      false);
}
void BM_Project_Fused(benchmark::State& state) {
  Run(state, "fused-prj", "SELECT STREAM rowtime, productId, units FROM Orders",
      true);
}

BENCHMARK(BM_Filter_Interpreted)->Arg(1)->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Filter_Fused)->Arg(1)->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Project_Interpreted)->Arg(1)->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Project_Fused)->Arg(1)->Iterations(1)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace sqs::bench

BENCHMARK_MAIN();
