// Ablation A1 — the paper's §7 item 5 future-work optimization: generate
// expressions that work directly on the decoded record, eliminating the
// AvroToArray / ArrayToAvro steps of Figure 4. The paper predicts this
// "brings SamzaSQL generated code closer to Samza Java API"; this ablation
// measures how much of the Figure 5a/5b gap the fused mode recovers.
#include <benchmark/benchmark.h>

#include "bench_common.h"

namespace sqs::bench {
namespace {

constexpr int64_t kMessages = 120'000;

void Run(benchmark::State& state, const char* label, const std::string& sql,
         bool fused) {
  const int containers = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto env = MakeBenchEnv();
    workload::OrdersGenerator gen(*env, {});
    auto produced = gen.Produce(kMessages);
    if (!produced.ok()) state.SkipWithError(produced.status().ToString().c_str());
    Config config = BenchJobConfig(containers);
    config.SetBool(core::sqlcfg::kFuseConversions, fused);
    auto r = MeasureSqlQuery(env, sql, std::move(config));
    state.counters["job_msgs_per_s"] = r.job_tput;
    ReportThroughput("A1", label, containers, r);
  }
}

void BM_Filter_Sql(benchmark::State& state) {
  Run(state, "sql", "SELECT STREAM * FROM Orders WHERE units > 50", false);
}
void BM_Filter_SqlFused(benchmark::State& state) {
  Run(state, "fused", "SELECT STREAM * FROM Orders WHERE units > 50", true);
}
void BM_Project_Sql(benchmark::State& state) {
  Run(state, "sql-prj", "SELECT STREAM rowtime, productId, units FROM Orders", false);
}
void BM_Project_SqlFused(benchmark::State& state) {
  Run(state, "fused-prj", "SELECT STREAM rowtime, productId, units FROM Orders", true);
}

BENCHMARK(BM_Filter_Sql)->Arg(1)->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Filter_SqlFused)->Arg(1)->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Project_Sql)->Arg(1)->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Project_SqlFused)->Arg(1)->Iterations(1)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace sqs::bench

BENCHMARK_MAIN();
