#!/usr/bin/env python3
"""Fail on dead intra-repo links in the documentation set.

Scans the top-level docs (README.md, DESIGN.md, EXPERIMENTS.md,
ROADMAP.md) and everything under docs/ for Markdown inline links
[text](target) and checks that

  - relative file targets exist in the repository, and
  - fragment targets (#anchor, in the same or another file) resolve to a
    heading, using GitHub's anchor slug rules (lowercase, punctuation
    stripped, spaces to hyphens, -N suffixes for duplicates).

External links (http/https/mailto) are not fetched. Links inside fenced
code blocks and inline code spans are ignored. Exit status is the number
of dead links, so CI fails on any.

Usage: python3 tools/check_docs_links.py [repo_root]
"""
import os
import re
import sys

DOC_FILES = ["README.md", "DESIGN.md", "EXPERIMENTS.md", "ROADMAP.md"]
DOC_DIRS = ["docs"]

LINK_RE = re.compile(r"\[([^\]]*)\]\(([^)\s]+)\)")
HEADING_RE = re.compile(r"^(#{1,6})\s+(.*)$")
FENCE_RE = re.compile(r"^(```|~~~)")
CODE_SPAN_RE = re.compile(r"`[^`]*`")
EXTERNAL_RE = re.compile(r"^[a-zA-Z][a-zA-Z0-9+.-]*:")


def github_anchor(heading, seen):
    """GitHub's heading -> anchor id translation."""
    # Inline markup does not contribute to the slug text.
    text = CODE_SPAN_RE.sub(lambda m: m.group(0).strip("`"), heading)
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", text)
    slug = "".join(c for c in text.lower() if c.isalnum() or c in " -_")
    slug = slug.strip().replace(" ", "-")
    if slug in seen:
        seen[slug] += 1
        slug = f"{slug}-{seen[slug]}"
    else:
        seen[slug] = 0
    return slug


def collect_anchors(path):
    anchors, seen, in_fence = set(), {}, False
    with open(path, encoding="utf-8") as f:
        for line in f:
            if FENCE_RE.match(line):
                in_fence = not in_fence
                continue
            if in_fence:
                continue
            m = HEADING_RE.match(line)
            if m:
                anchors.add(github_anchor(m.group(2).strip(), seen))
    return anchors


def iter_links(path):
    """Yield (lineno, target) for links outside code blocks/spans."""
    in_fence = False
    with open(path, encoding="utf-8") as f:
        for lineno, line in enumerate(f, 1):
            if FENCE_RE.match(line):
                in_fence = not in_fence
                continue
            if in_fence:
                continue
            stripped = CODE_SPAN_RE.sub("", line)
            for m in LINK_RE.finditer(stripped):
                yield lineno, m.group(2)


def main():
    root = os.path.abspath(sys.argv[1] if len(sys.argv) > 1 else
                           os.path.join(os.path.dirname(__file__), ".."))
    files = [os.path.join(root, f) for f in DOC_FILES]
    for d in DOC_DIRS:
        dirpath = os.path.join(root, d)
        if os.path.isdir(dirpath):
            files += [os.path.join(dirpath, f)
                      for f in sorted(os.listdir(dirpath)) if f.endswith(".md")]
    files = [f for f in files if os.path.isfile(f)]

    anchor_cache = {}
    errors = 0
    for path in files:
        rel = os.path.relpath(path, root)
        for lineno, target in iter_links(path):
            if EXTERNAL_RE.match(target):
                continue
            file_part, _, frag = target.partition("#")
            if file_part:
                dest = os.path.normpath(
                    os.path.join(os.path.dirname(path), file_part))
                if not os.path.exists(dest):
                    print(f"{rel}:{lineno}: dead link: {target} "
                          f"({os.path.relpath(dest, root)} does not exist)")
                    errors += 1
                    continue
            else:
                dest = path
            if frag:
                if not dest.endswith(".md") or not os.path.isfile(dest):
                    continue  # anchors into non-markdown targets: not checked
                if dest not in anchor_cache:
                    anchor_cache[dest] = collect_anchors(dest)
                if frag not in anchor_cache[dest]:
                    print(f"{rel}:{lineno}: dead anchor: {target} "
                          f"(no heading '#{frag}' in "
                          f"{os.path.relpath(dest, root)})")
                    errors += 1

    print(f"checked {len(files)} file(s): "
          f"{errors} dead link(s)" if errors else
          f"checked {len(files)} file(s): all links ok")
    return min(errors, 125)


if __name__ == "__main__":
    sys.exit(main())
