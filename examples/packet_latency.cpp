// Packet latency monitoring: the paper's stream-to-stream join example
// (§3.8.1, Listing 7) — how long does a packet take to travel from router
// R1 to router R2? Joins PacketsR1 and PacketsR2 over a +/-2 second window
// on the packet timestamps.
#include <algorithm>
#include <cstdio>

#include "core/executor.h"
#include "workload/generators.h"

using namespace sqs;

int main() {
  auto env = core::SamzaSqlEnvironment::Make();
  if (auto st = workload::SetupPaperSources(*env, 4); !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }

  // Simulated routers: every packet appears at R1; 95% arrive at R2 after a
  // 1-1500 ms transit delay (the rest are dropped in the network).
  workload::PacketsGeneratorOptions options;
  options.drop_rate = 0.05;
  if (auto r = workload::ProducePackets(*env, 20'000, options); !r.ok()) {
    std::fprintf(stderr, "%s\n", r.status().ToString().c_str());
    return 1;
  }

  Config defaults;
  defaults.SetInt(cfg::kContainerCount, 2);
  // R2 arrivals are out of order by up to the transit delay; the join keeps
  // buffered tuples for an extra grace period so late matches still hit.
  defaults.SetInt(core::sqlcfg::kGraceMs, 4'000);
  core::QueryExecutor executor(env, defaults);

  // Listing 7 (verbatim modulo the paper's typos).
  auto submitted = executor.Execute(
      "SELECT STREAM "
      "  GREATEST(PacketsR1.rowtime, PacketsR2.rowtime) AS rowtime, "
      "  PacketsR1.sourcetime, "
      "  PacketsR1.packetId, "
      "  PacketsR2.rowtime - PacketsR1.rowtime AS timeToTravel "
      "FROM PacketsR1 "
      "JOIN PacketsR2 ON "
      "  PacketsR1.rowtime BETWEEN PacketsR2.rowtime - INTERVAL '2' SECOND "
      "    AND PacketsR2.rowtime + INTERVAL '2' SECOND "
      "  AND PacketsR1.packetId = PacketsR2.packetId");
  if (!submitted.ok()) {
    std::fprintf(stderr, "%s\n", submitted.status().ToString().c_str());
    return 1;
  }
  if (auto ran = executor.RunJobsUntilQuiescent(); !ran.ok()) {
    std::fprintf(stderr, "%s\n", ran.status().ToString().c_str());
    return 1;
  }

  auto rows = executor.ReadOutputRows(submitted.value().output_topic);
  if (!rows.ok()) {
    std::fprintf(stderr, "%s\n", rows.status().ToString().c_str());
    return 1;
  }

  // Latency summary from the joined stream.
  std::vector<int64_t> latencies;
  latencies.reserve(rows.value().size());
  for (const Row& row : rows.value()) latencies.push_back(row[3].ToInt64());
  if (latencies.empty()) {
    std::fprintf(stderr, "no joined packets?\n");
    return 1;
  }
  std::sort(latencies.begin(), latencies.end());
  auto pct = [&](double p) {
    return latencies[static_cast<size_t>(p * (latencies.size() - 1))];
  };
  std::printf("packets sent: 20000, matched at R2: %zu (%.1f%%)\n", latencies.size(),
              100.0 * latencies.size() / 20000.0);
  std::printf("transit latency ms: p50=%lld p90=%lld p99=%lld max=%lld\n",
              static_cast<long long>(pct(0.50)), static_cast<long long>(pct(0.90)),
              static_cast<long long>(pct(0.99)), static_cast<long long>(latencies.back()));
  for (size_t i = 0; i < 3 && i < rows.value().size(); ++i) {
    std::printf("  sample: %s\n", RowToString(rows.value()[i]).c_str());
  }
  return 0;
}
