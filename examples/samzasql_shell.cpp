// Interactive SamzaSQL shell (paper §4.1) over an in-process deployment
// pre-loaded with the paper's example streams and some generated data.
//
//   $ ./samzasql_shell
//   samzasql> !tables
//   samzasql> SELECT COUNT(*) FROM Orders GROUP BY FLOOR(rowtime TO DAY);
//   samzasql> SELECT STREAM * FROM Orders WHERE units > 90;
//   samzasql> !run
//   samzasql> !output samzasql-query-0-output 5
//
// Also scriptable: echo "SELECT 1 FROM Orders;" | ./samzasql_shell
//
// Set SAMZASQL_MONITOR_PORT to serve the monitoring endpoints
// (/metrics, /healthz, /readyz, ... — see docs/MONITORING.md) while the
// shell runs, and SAMZASQL_ALERT_RULES to configure threshold alerts:
//
//   $ SAMZASQL_MONITOR_PORT=8048 ./samzasql_shell
//   $ SAMZASQL_ALERT_RULES="consumer_lag>10000 for 5s" ./samzasql_shell
//
// SAMZASQL_FUSION=off disables fused batch execution (sql.fusion) to
// compare against the fully interpreted operator DAG — see docs/EXECUTION.md.
#include <cstdlib>
#include <iostream>

#include "core/shell.h"
#include "workload/generators.h"

using namespace sqs;

int main() {
  auto env = core::SamzaSqlEnvironment::Make();
  if (auto st = workload::SetupPaperSources(*env, 4); !st.ok()) {
    std::cerr << st.ToString() << "\n";
    return 1;
  }
  workload::OrdersGenerator orders(*env, {});
  if (auto r = orders.Produce(20'000); !r.ok()) {
    std::cerr << r.status().ToString() << "\n";
    return 1;
  }
  if (auto st = workload::ProduceProducts(*env, 100); !st.ok()) {
    std::cerr << st.ToString() << "\n";
    return 1;
  }
  if (auto r = workload::ProducePackets(*env, 5'000); !r.ok()) {
    std::cerr << r.status().ToString() << "\n";
    return 1;
  }

  Config defaults;
  defaults.SetInt(cfg::kContainerCount, 2);
  if (const char* port = std::getenv("SAMZASQL_MONITOR_PORT")) {
    defaults.SetBool(cfg::kMonitorEnable, true);
    defaults.SetInt(cfg::kMonitorPort, std::atoi(port));
  }
  if (const char* rules = std::getenv("SAMZASQL_ALERT_RULES")) {
    defaults.Set(cfg::kAlertRules, rules);
  }
  if (const char* fusion = std::getenv("SAMZASQL_FUSION")) {
    defaults.Set(core::sqlcfg::kFusion, fusion);
  }
  core::Shell shell(env, defaults);
  if (shell.executor().monitor().http_running()) {
    std::cout << "monitor: http://127.0.0.1:" << shell.executor().monitor().port()
              << "/ (metrics, healthz, readyz, jobs, history, alerts)\n";
  }
  shell.Repl(std::cin, std::cout);
  return 0;
}
