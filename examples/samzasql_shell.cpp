// Interactive SamzaSQL shell (paper §4.1) over an in-process deployment
// pre-loaded with the paper's example streams and some generated data.
//
//   $ ./samzasql_shell
//   samzasql> !tables
//   samzasql> SELECT COUNT(*) FROM Orders GROUP BY FLOOR(rowtime TO DAY);
//   samzasql> SELECT STREAM * FROM Orders WHERE units > 90;
//   samzasql> !run
//   samzasql> !output samzasql-query-0-output 5
//
// Also scriptable: echo "SELECT 1 FROM Orders;" | ./samzasql_shell
#include <iostream>

#include "core/shell.h"
#include "workload/generators.h"

using namespace sqs;

int main() {
  auto env = core::SamzaSqlEnvironment::Make();
  if (auto st = workload::SetupPaperSources(*env, 4); !st.ok()) {
    std::cerr << st.ToString() << "\n";
    return 1;
  }
  workload::OrdersGenerator orders(*env, {});
  if (auto r = orders.Produce(20'000); !r.ok()) {
    std::cerr << r.status().ToString() << "\n";
    return 1;
  }
  if (auto st = workload::ProduceProducts(*env, 100); !st.ok()) {
    std::cerr << st.ToString() << "\n";
    return 1;
  }
  if (auto r = workload::ProducePackets(*env, 5'000); !r.ok()) {
    std::cerr << r.status().ToString() << "\n";
    return 1;
  }

  Config defaults;
  defaults.SetInt(cfg::kContainerCount, 2);
  core::Shell shell(env, defaults);
  shell.Repl(std::cin, std::cout);
  return 0;
}
