// Orders analytics: the paper's §3 windowing examples end to end —
// views over tumbling aggregates (Listing 3), TUMBLE/HOP group windows
// (Listings 4-5), and a sliding-window aggregation (Listing 6).
#include <cstdio>

#include "core/executor.h"
#include "workload/generators.h"

using namespace sqs;

namespace {

void PrintRows(const char* title, const std::vector<Row>& rows, size_t limit = 6) {
  std::printf("\n== %s (%zu rows) ==\n", title, rows.size());
  for (size_t i = 0; i < rows.size() && i < limit; ++i) {
    std::printf("  %s\n", RowToString(rows[i]).c_str());
  }
  if (rows.size() > limit) std::printf("  ...\n");
}

// Close all open event-time windows by pushing the watermark far forward in
// every partition.
Status SendWatermarkSentinels(core::SamzaSqlEnvironment& env, int64_t rowtime) {
  auto source = env.catalog->GetSource("Orders");
  if (!source.ok()) return source.status();
  AvroRowSerde serde(source.value().schema);
  Producer producer(env.broker, env.clock);
  auto nparts = env.broker->NumPartitions("Orders");
  if (!nparts.ok()) return nparts.status();
  for (int32_t p = 0; p < nparts.value(); ++p) {
    Row row{Value(rowtime), Value(int32_t{9999}), Value(int64_t{-1}),
            Value(int32_t{0}), Value("sentinel")};
    SQS_RETURN_IF_ERROR(
        producer.SendTo({"Orders", p}, Bytes{}, serde.SerializeToBytes(row)).status());
  }
  return Status::Ok();
}

}  // namespace

int main() {
  auto env = core::SamzaSqlEnvironment::Make();
  if (auto st = workload::SetupPaperSources(*env, 4); !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  workload::OrdersGeneratorOptions options;
  options.num_products = 10;
  options.rowtime_step_ms = 500;  // ~33 min of event time over 4000 orders
  workload::OrdersGenerator generator(*env, options);
  if (auto r = generator.Produce(4'000); !r.ok()) {
    std::fprintf(stderr, "%s\n", r.status().ToString().c_str());
    return 1;
  }

  Config defaults;
  defaults.SetInt(cfg::kContainerCount, 2);
  core::QueryExecutor executor(env, defaults);

  // --- Listing 3: a view of per-product totals per time bucket, queried
  // with a HAVING-style filter on the view columns. (The paper uses hourly
  // buckets; we use minutes so a short demo produces several windows.)
  auto script = executor.ExecuteScript(
      "CREATE VIEW MinuteOrderTotals (wstart, productId, c, su) AS "
      "  SELECT START(rowtime), productId, COUNT(*), SUM(units) "
      "  FROM Orders "
      "  GROUP BY TUMBLE(rowtime, INTERVAL '1' MINUTE), productId;"
      "SELECT STREAM wstart, productId, c, su FROM MinuteOrderTotals "
      "  WHERE c > 25 OR su > 1300;");
  if (!script.ok()) {
    std::fprintf(stderr, "%s\n", script.status().ToString().c_str());
    return 1;
  }

  // --- Listing 5: hopping window — total orders over a 2-minute window,
  // emitted every 30 seconds.
  auto hopping = executor.Execute(
      "SELECT STREAM productId, START(rowtime) AS ws, END(rowtime) AS we, COUNT(*) "
      "FROM Orders "
      "GROUP BY HOP(rowtime, INTERVAL '30' SECOND, INTERVAL '2' MINUTE), productId");
  if (!hopping.ok()) {
    std::fprintf(stderr, "%s\n", hopping.status().ToString().c_str());
    return 1;
  }

  // --- Listing 6: sliding window — units sold per product over the last
  // minute, updated on every order.
  auto sliding = executor.Execute(
      "SELECT STREAM rowtime, productId, units, "
      "SUM(units) OVER (PARTITION BY productId ORDER BY rowtime "
      "RANGE INTERVAL '1' MINUTE PRECEDING) AS unitsLastMinute FROM Orders");
  if (!sliding.ok()) {
    std::fprintf(stderr, "%s\n", sliding.status().ToString().c_str());
    return 1;
  }

  // Close the event-time windows and drain all three jobs.
  if (auto st = SendWatermarkSentinels(*env, generator.last_rowtime() + 3'600'000);
      !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  if (auto ran = executor.RunJobsUntilQuiescent(); !ran.ok()) {
    std::fprintf(stderr, "%s\n", ran.status().ToString().c_str());
    return 1;
  }

  auto view_rows = executor.ReadOutputRows(script.value()[1].output_topic);
  auto hop_rows = executor.ReadOutputRows(hopping.value().output_topic);
  auto slide_rows = executor.ReadOutputRows(sliding.value().output_topic);
  if (!view_rows.ok() || !hop_rows.ok() || !slide_rows.ok()) {
    std::fprintf(stderr, "reading outputs failed\n");
    return 1;
  }
  PrintRows("busy product-minutes (view + filter, Listing 3)", view_rows.value());
  PrintRows("hopping 2-minute counts every 30s (Listing 5)", hop_rows.value());
  PrintRows("sliding 1-minute units per product (Listing 6)", slide_rows.value());

  // The same analytics as one-off relational queries over the stream's
  // history (no STREAM keyword, §3.3).
  auto batch = executor.Execute(
      "SELECT productId, COUNT(*) AS orders, SUM(units) AS units FROM Orders "
      "WHERE productId < 9999 GROUP BY FLOOR(rowtime TO DAY), productId");
  if (batch.ok()) {
    PrintRows("whole-history per-product totals (batch query)", batch.value().rows, 12);
  }
  return 0;
}
