// Quickstart: stand up an in-process SamzaSQL deployment, define a stream,
// run a streaming filter query, and read its output.
//
//   broker + zookeeper + schema registry  (SamzaSqlEnvironment)
//   -> catalog (one stream: Orders)
//   -> SELECT STREAM ... WHERE ...        (QueryExecutor submits a job)
//   -> run containers until caught up
//   -> read the output topic
#include <cstdio>

#include "core/executor.h"
#include "workload/generators.h"

using namespace sqs;

int main() {
  // 1. Infrastructure: in-process Kafka-model broker, ZooKeeper, schema
  //    registry, catalog.
  auto env = core::SamzaSqlEnvironment::Make();

  // 2. Define the paper's example sources (Orders stream etc.) with 4
  //    partitions and generate some orders (~100-byte messages, keyed by
  //    productId).
  if (auto st = workload::SetupPaperSources(*env, 4); !st.ok()) {
    std::fprintf(stderr, "setup failed: %s\n", st.ToString().c_str());
    return 1;
  }
  workload::OrdersGenerator generator(*env, {});
  if (auto r = generator.Produce(10'000); !r.ok()) {
    std::fprintf(stderr, "produce failed: %s\n", r.status().ToString().c_str());
    return 1;
  }

  // 3. Submit a streaming SQL query. The executor plans it, generates the
  //    Samza job configuration, stashes metadata in ZooKeeper, and starts
  //    the job's containers.
  Config defaults;
  defaults.SetInt(cfg::kContainerCount, 2);
  core::QueryExecutor executor(env, defaults);

  auto submitted = executor.Execute(
      "SELECT STREAM rowtime, productId, units FROM Orders WHERE units > 90");
  if (!submitted.ok()) {
    std::fprintf(stderr, "submit failed: %s\n", submitted.status().ToString().c_str());
    return 1;
  }
  std::printf("%s -> output topic %s\n", submitted.value().text.c_str(),
              submitted.value().output_topic.c_str());

  // 4. Drive the job until it has consumed everything currently in Orders.
  //    (A real deployment would keep running; in-process we drain.)
  if (auto ran = executor.RunJobsUntilQuiescent(); !ran.ok()) {
    std::fprintf(stderr, "run failed: %s\n", ran.status().ToString().c_str());
    return 1;
  }

  // 5. Read and print the first few results.
  auto rows = executor.ReadOutputRows(submitted.value().output_topic);
  if (!rows.ok()) {
    std::fprintf(stderr, "read failed: %s\n", rows.status().ToString().c_str());
    return 1;
  }
  std::printf("query matched %zu of 10000 orders; first five:\n", rows.value().size());
  for (size_t i = 0; i < rows.value().size() && i < 5; ++i) {
    std::printf("  %s\n", RowToString(rows.value()[i]).c_str());
  }

  // 6. EXPLAIN shows the optimized plan the job executes.
  auto explained = executor.Execute(
      "EXPLAIN SELECT STREAM rowtime, productId, units FROM Orders WHERE units > 90");
  if (explained.ok()) {
    std::printf("\nplan:\n%s", explained.value().text.c_str());
  }
  return 0;
}
