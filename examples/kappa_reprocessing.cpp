// Kappa-architecture reprocessing — the paper's §1 motivation: instead of
// maintaining separate batch and streaming systems (Lambda), keep the
// immutable input log and *reprocess* it through the same streaming query
// when logic changes, "through increased parallelism and replay of
// historical data at a speed as fast as possible".
//
// This demo runs a nearline query (v1) continuously, then deploys a
// revised query (v2) that reprocesses the entire retained Orders log from
// offset zero with more containers, writing to a fresh output stream —
// no second system, no second codebase, just another SamzaSQL job.
#include <cstdio>

#include "core/executor.h"
#include "workload/generators.h"

using namespace sqs;

int main() {
  auto env = core::SamzaSqlEnvironment::Make();
  if (auto st = workload::SetupPaperSources(*env, 8); !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  workload::OrdersGenerator generator(*env, {});
  if (auto r = generator.Produce(30'000); !r.ok()) {
    std::fprintf(stderr, "%s\n", r.status().ToString().c_str());
    return 1;
  }

  // --- v1: the nearline query, running with 2 containers.
  Config nearline;
  nearline.SetInt(cfg::kContainerCount, 2);
  core::QueryExecutor executor(env, nearline);
  auto v1 = executor.Execute(
      "INSERT INTO BigOrdersV1 SELECT STREAM rowtime, orderId, units "
      "FROM Orders WHERE units > 90");
  if (!v1.ok()) {
    std::fprintf(stderr, "%s\n", v1.status().ToString().c_str());
    return 1;
  }
  if (auto ran = executor.RunJobsUntilQuiescent(); !ran.ok()) {
    std::fprintf(stderr, "%s\n", ran.status().ToString().c_str());
    return 1;
  }
  auto v1_rows = executor.ReadOutputRows("BigOrdersV1").value();
  std::printf("v1 nearline (units > 90, 2 containers): %zu rows\n", v1_rows.size());

  // More data keeps arriving; v1 keeps up incrementally.
  (void)generator.Produce(10'000);
  (void)executor.RunJobsUntilQuiescent();
  std::printf("v1 after more input: %zu rows\n",
              executor.ReadOutputRows("BigOrdersV1").value().size());

  // --- v2: business logic changed (threshold 80, extra column). Because
  // the Orders log is retained and replayable, we simply submit the revised
  // query with 8 containers; it reprocesses history from offset zero and
  // catches up to the live stream — the Kappa reprocessing story.
  Config reprocess;
  reprocess.SetInt(cfg::kContainerCount, 8);
  core::QueryExecutor reprocessor(env, reprocess);
  int64_t t0 = MonotonicNanos();
  auto v2 = reprocessor.Execute(
      "INSERT INTO BigOrdersV2 SELECT STREAM rowtime, orderId, units, "
      "units * 2 AS priority FROM Orders WHERE units > 80");
  if (!v2.ok()) {
    std::fprintf(stderr, "%s\n", v2.status().ToString().c_str());
    return 1;
  }
  if (auto ran = reprocessor.RunJobsUntilQuiescent(); !ran.ok()) {
    std::fprintf(stderr, "%s\n", ran.status().ToString().c_str());
    return 1;
  }
  double seconds = static_cast<double>(MonotonicNanos() - t0) / 1e9;
  auto v2_rows = reprocessor.ReadOutputRows("BigOrdersV2").value();
  std::printf("v2 reprocessed the full 40000-message log with 8 containers in "
              "%.2fs: %zu rows\n",
              seconds, v2_rows.size());

  // Both versions keep running side by side until v1 is retired.
  (void)generator.Produce(5'000);
  (void)executor.RunJobsUntilQuiescent();
  (void)reprocessor.RunJobsUntilQuiescent();
  std::printf("after cut-over traffic: v1=%zu rows, v2=%zu rows\n",
              executor.ReadOutputRows("BigOrdersV1").value().size(),
              reprocessor.ReadOutputRows("BigOrdersV2").value().size());
  std::printf("one system, one query language, two query versions — no Lambda.\n");
  return 0;
}
