// Fault tolerance: the paper's §4.3 claim in action. A sliding-window SQL
// job is killed mid-stream; the restarted container restores its window
// state from the changelog topics, replays input from the last checkpoint,
// and the final (deduplicated) output is identical to an uninterrupted run.
#include <cstdio>
#include <set>

#include "core/executor.h"
#include "workload/generators.h"

using namespace sqs;

namespace {

constexpr const char* kQuery =
    "SELECT STREAM rowtime, productId, units, "
    "SUM(units) OVER (PARTITION BY productId ORDER BY rowtime "
    "RANGE INTERVAL '30' SECOND PRECEDING) AS recentUnits FROM Orders";

Result<std::set<std::string>> RunOnce(bool inject_failure) {
  auto env = core::SamzaSqlEnvironment::Make();
  SQS_RETURN_IF_ERROR(workload::SetupPaperSources(*env, 4));
  workload::OrdersGeneratorOptions options;
  options.num_products = 10;
  options.rowtime_step_ms = 1000;
  workload::OrdersGenerator generator(*env, options);
  SQS_RETURN_IF_ERROR(generator.Produce(3'000).status());

  Config defaults;
  defaults.SetInt(cfg::kContainerCount, 2);
  defaults.SetInt(cfg::kCommitEveryMessages, 50);  // checkpoint every 50 msgs
  core::QueryExecutor executor(env, defaults);

  SQS_ASSIGN_OR_RETURN(submitted, executor.Execute(kQuery));
  JobRunner* job = executor.job(submitted.job_index);

  if (inject_failure) {
    // Let container 0 process part of its input, then kill it without a
    // clean shutdown: all in-memory window state and uncommitted offsets
    // are gone, exactly like a node failure.
    SQS_RETURN_IF_ERROR(job->container(0)->RunUntilCaughtUp(700).status());
    SQS_RETURN_IF_ERROR(job->KillContainer(0));
    std::printf("  container 0 killed after ~700 messages; restarting...\n");
    // The "YARN application master" reallocates it: state restores from the
    // changelog topics, consumption resumes from the last checkpoint.
    SQS_RETURN_IF_ERROR(job->RestartContainer(0));
  }

  SQS_RETURN_IF_ERROR(executor.RunJobsUntilQuiescent().status());
  SQS_ASSIGN_OR_RETURN(rows, executor.ReadOutputRows(submitted.output_topic));

  std::printf("  raw output rows: %zu\n", rows.size());
  std::set<std::string> distinct;
  for (const Row& row : rows) distinct.insert(RowToString(row));
  return distinct;
}

}  // namespace

int main() {
  std::printf("baseline run (no failures):\n");
  auto clean = RunOnce(false);
  if (!clean.ok()) {
    std::fprintf(stderr, "%s\n", clean.status().ToString().c_str());
    return 1;
  }

  std::printf("faulty run (container killed mid-stream):\n");
  auto faulty = RunOnce(true);
  if (!faulty.ok()) {
    std::fprintf(stderr, "%s\n", faulty.status().ToString().c_str());
    return 1;
  }

  std::printf("\ndistinct results: baseline=%zu, after-failure=%zu\n",
              clean.value().size(), faulty.value().size());
  if (clean.value() == faulty.value()) {
    std::printf("deterministic window output under failure + replay: IDENTICAL\n");
    return 0;
  }
  std::printf("MISMATCH: fault tolerance broken\n");
  return 1;
}
