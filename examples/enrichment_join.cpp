// Stream enrichment: the paper's stream-to-relation join (§3.8.2 / §4.4,
// Listing 8). The Products relation arrives as a changelog stream that the
// job consumes as a *bootstrap stream* — fully materialized into each
// task's local store before any order is processed — and every order is
// enriched with the product's supplier.
//
// The demo also updates the relation mid-stream to show changelog
// semantics: later orders see the new supplier.
#include <cstdio>

#include "core/executor.h"
#include "workload/generators.h"

using namespace sqs;

namespace {

Status UpsertProduct(core::SamzaSqlEnvironment& env, int32_t product_id,
                     const std::string& name, int32_t supplier_id) {
  auto source = env.catalog->GetSource("Products");
  if (!source.ok()) return source.status();
  AvroRowSerde serde(source.value().schema);
  Producer producer(env.broker, env.clock);
  Row row{Value(product_id), Value(name), Value(supplier_id)};
  return producer.Send("Products", EncodeOrderedKey(row[0]), serde.SerializeToBytes(row))
      .status();
}

}  // namespace

int main() {
  auto env = core::SamzaSqlEnvironment::Make();
  if (auto st = workload::SetupPaperSources(*env, 4); !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  if (auto st = workload::ProduceProducts(*env, 50); !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  workload::OrdersGeneratorOptions options;
  options.num_products = 50;
  workload::OrdersGenerator generator(*env, options);
  if (auto r = generator.Produce(5'000); !r.ok()) {
    std::fprintf(stderr, "%s\n", r.status().ToString().c_str());
    return 1;
  }

  Config defaults;
  defaults.SetInt(cfg::kContainerCount, 2);
  core::QueryExecutor executor(env, defaults);

  // Listing 8: add the supplier to each order.
  auto submitted = executor.Execute(
      "SELECT STREAM "
      "  Orders.rowtime, Orders.orderId, Orders.productId, Orders.units, "
      "  Products.supplierId "
      "FROM Orders "
      "JOIN Products ON Orders.productId = Products.productId");
  if (!submitted.ok()) {
    std::fprintf(stderr, "%s\n", submitted.status().ToString().c_str());
    return 1;
  }
  if (auto ran = executor.RunJobsUntilQuiescent(); !ran.ok()) {
    std::fprintf(stderr, "%s\n", ran.status().ToString().c_str());
    return 1;
  }
  auto phase1 = executor.ReadOutputRows(submitted.value().output_topic);
  if (!phase1.ok()) {
    std::fprintf(stderr, "%s\n", phase1.status().ToString().c_str());
    return 1;
  }
  std::printf("enriched %zu orders; first three:\n", phase1.value().size());
  for (size_t i = 0; i < 3 && i < phase1.value().size(); ++i) {
    std::printf("  %s\n", RowToString(phase1.value()[i]).c_str());
  }

  // The relation is a changelog: product 7 moves to supplier 777, then more
  // orders arrive. The running join picks up the update.
  if (auto st = UpsertProduct(*env, 7, "product-7", 777); !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  if (auto r = generator.Produce(2'000); !r.ok()) {
    std::fprintf(stderr, "%s\n", r.status().ToString().c_str());
    return 1;
  }
  if (auto ran = executor.RunJobsUntilQuiescent(); !ran.ok()) {
    std::fprintf(stderr, "%s\n", ran.status().ToString().c_str());
    return 1;
  }
  auto phase2 = executor.ReadOutputRows(submitted.value().output_topic);
  if (!phase2.ok()) {
    std::fprintf(stderr, "%s\n", phase2.status().ToString().c_str());
    return 1;
  }

  // Count product-7 orders by supplier across the whole output.
  int64_t old_supplier = 0, new_supplier = 0;
  for (const Row& row : phase2.value()) {
    if (row[2].ToInt64() != 7) continue;
    if (row[4].ToInt64() == 777) {
      ++new_supplier;
    } else {
      ++old_supplier;
    }
  }
  std::printf("\nproduct 7 orders enriched with old supplier: %lld, with supplier 777 "
              "after the changelog update: %lld\n",
              static_cast<long long>(old_supplier),
              static_cast<long long>(new_supplier));
  return 0;
}
