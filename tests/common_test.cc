#include <gtest/gtest.h>

#include <memory>
#include <random>
#include <sstream>

#include "common/bytes.h"
#include "common/clock.h"
#include "common/config.h"
#include "common/hash.h"
#include "common/logging.h"
#include "common/status.h"
#include "common/value.h"

namespace sqs {
namespace {

TEST(StatusTest, OkByDefault) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, CarriesCodeAndMessage) {
  Status st = Status::ParseError("bad token");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), ErrorCode::kParseError);
  EXPECT_EQ(st.message(), "bad token");
  EXPECT_EQ(st.ToString(), "ParseError: bad token");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("missing"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), ErrorCode::kNotFound);
  EXPECT_THROW(r.value(), std::runtime_error);
}

TEST(ValueTest, KindsAndAccessors) {
  EXPECT_EQ(Value().kind(), TypeKind::kNull);
  EXPECT_EQ(Value(true).kind(), TypeKind::kBool);
  EXPECT_EQ(Value(int32_t{7}).kind(), TypeKind::kInt32);
  EXPECT_EQ(Value(int64_t{7}).kind(), TypeKind::kInt64);
  EXPECT_EQ(Value(3.5).kind(), TypeKind::kDouble);
  EXPECT_EQ(Value("hi").kind(), TypeKind::kString);
  EXPECT_EQ(Value(ValueArray{Value(int64_t{1})}).kind(), TypeKind::kArray);
  EXPECT_EQ(Value(ValueMap{{"k", Value(int64_t{1})}}).kind(), TypeKind::kMap);
  EXPECT_TRUE(Value().is_null());
  EXPECT_TRUE(Value(int32_t{1}).is_numeric());
  EXPECT_TRUE(Value(1.0).is_numeric());
  EXPECT_FALSE(Value("x").is_numeric());
}

TEST(ValueTest, NumericCrossKindEquality) {
  EXPECT_EQ(Value(int32_t{5}), Value(int64_t{5}));
  EXPECT_EQ(Value(int64_t{5}), Value(5.0));
  EXPECT_LT(Value(int64_t{4}), Value(4.5));
  EXPECT_LT(Value(4.5), Value(int64_t{5}));
}

TEST(ValueTest, NumericEqualityImpliesHashEquality) {
  EXPECT_EQ(Value(int32_t{5}).Hash(), Value(int64_t{5}).Hash());
  EXPECT_EQ(Value(int64_t{5}).Hash(), Value(5.0).Hash());
}

TEST(ValueTest, NullsSortFirst) {
  EXPECT_LT(Value::Null(), Value(int64_t{0}));
  EXPECT_LT(Value::Null(), Value("a"));
  EXPECT_EQ(Value::Null(), Value::Null());
}

TEST(ValueTest, StringOrdering) {
  EXPECT_LT(Value("abc"), Value("abd"));
  EXPECT_LT(Value("ab"), Value("abc"));
  EXPECT_EQ(Value("abc"), Value("abc"));
}

TEST(ValueTest, ArrayOrderingLexicographic) {
  Value a(ValueArray{Value(int64_t{1}), Value(int64_t{2})});
  Value b(ValueArray{Value(int64_t{1}), Value(int64_t{3})});
  Value c(ValueArray{Value(int64_t{1})});
  EXPECT_LT(a, b);
  EXPECT_LT(c, a);
  EXPECT_EQ(a, Value(ValueArray{Value(int64_t{1}), Value(int64_t{2})}));
}

TEST(ValueTest, ToStringForms) {
  EXPECT_EQ(Value::Null().ToString(), "NULL");
  EXPECT_EQ(Value(true).ToString(), "true");
  EXPECT_EQ(Value(int64_t{42}).ToString(), "42");
  EXPECT_EQ(Value("x").ToString(), "x");
  EXPECT_EQ(Value(ValueArray{Value(int64_t{1}), Value(int64_t{2})}).ToString(), "[1, 2]");
  EXPECT_EQ(RowToString({Value(int64_t{1}), Value("a")}), "(1, a)");
}

TEST(BytesTest, VarintRoundTripSpecificValues) {
  for (int64_t v : {int64_t{0}, int64_t{1}, int64_t{-1}, int64_t{63}, int64_t{64},
                    int64_t{-64}, int64_t{-65}, int64_t{1} << 40,
                    -(int64_t{1} << 40), INT64_MAX, INT64_MIN}) {
    BytesWriter w;
    w.WriteVarint(v);
    BytesReader r(w.data());
    auto got = r.ReadVarint();
    ASSERT_TRUE(got.ok()) << v;
    EXPECT_EQ(got.value(), v);
    EXPECT_TRUE(r.AtEnd());
  }
}

TEST(BytesTest, VarintRoundTripRandomized) {
  std::mt19937_64 rng(7);
  for (int i = 0; i < 5000; ++i) {
    int64_t v = static_cast<int64_t>(rng());
    BytesWriter w;
    w.WriteVarint(v);
    BytesReader r(w.data());
    ASSERT_EQ(r.ReadVarint().value(), v);
  }
}

TEST(BytesTest, SmallVarintsAreCompact) {
  BytesWriter w;
  w.WriteVarint(1);
  EXPECT_EQ(w.size(), 1u);  // zigzag(1) = 2, one byte
}

TEST(BytesTest, MixedStreamRoundTrip) {
  BytesWriter w;
  w.WriteBool(true);
  w.WriteVarint(-12345);
  w.WriteDouble(3.25);
  w.WriteString("hello world");
  w.WriteFixed32(0xDEADBEEF);
  w.WriteFixed64(0x0123456789ABCDEFull);
  BytesReader r(w.data());
  EXPECT_TRUE(r.ReadBool().value());
  EXPECT_EQ(r.ReadVarint().value(), -12345);
  EXPECT_EQ(r.ReadDouble().value(), 3.25);
  EXPECT_EQ(r.ReadString().value(), "hello world");
  EXPECT_EQ(r.ReadFixed32().value(), 0xDEADBEEF);
  EXPECT_EQ(r.ReadFixed64().value(), 0x0123456789ABCDEFull);
  EXPECT_TRUE(r.AtEnd());
}

TEST(BytesTest, TruncatedReadsFail) {
  BytesWriter w;
  w.WriteString("abcdef");
  Bytes data = w.Take();
  data.resize(3);  // cut mid-string
  BytesReader r(data);
  EXPECT_FALSE(r.ReadString().ok());

  BytesReader empty(Bytes{});
  EXPECT_FALSE(empty.ReadVarint().ok());
  EXPECT_FALSE(empty.ReadDouble().ok());
  EXPECT_FALSE(empty.ReadFixed64().ok());
}

TEST(ConfigTest, TypedGetters) {
  Config c;
  c.Set("a", "hello");
  c.SetInt("n", 42);
  c.SetBool("b", true);
  EXPECT_EQ(c.Get("a"), "hello");
  EXPECT_EQ(c.GetInt("n"), 42);
  EXPECT_TRUE(c.GetBool("b"));
  EXPECT_EQ(c.Get("missing", "dflt"), "dflt");
  EXPECT_EQ(c.GetInt("missing", 7), 7);
  EXPECT_FALSE(c.GetBool("missing"));
}

TEST(ConfigTest, SubsetStripsPrefix) {
  Config c;
  c.Set("stores.win.changelog", "t1");
  c.Set("stores.agg.changelog", "t2");
  c.Set("other.key", "x");
  auto sub = c.Subset("stores.");
  ASSERT_EQ(sub.size(), 2u);
  EXPECT_EQ(sub["win.changelog"], "t1");
  EXPECT_EQ(sub["agg.changelog"], "t2");
}

TEST(ConfigTest, ListRoundTrip) {
  Config c;
  c.SetList("inputs", {"orders", "products", "bids"});
  auto list = c.GetList("inputs");
  ASSERT_EQ(list.size(), 3u);
  EXPECT_EQ(list[0], "orders");
  EXPECT_EQ(list[2], "bids");
  EXPECT_TRUE(c.GetList("missing").empty());
}

TEST(ConfigTest, PropertiesRoundTrip) {
  Config c;
  c.Set("job.name", "filter-query");
  c.SetInt("job.container.count", 4);
  std::string text = c.ToProperties();
  auto parsed = Config::FromProperties(text);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().Get("job.name"), "filter-query");
  EXPECT_EQ(parsed.value().GetInt("job.container.count"), 4);
}

TEST(ConfigTest, PropertiesParsingRejectsGarbage) {
  EXPECT_FALSE(Config::FromProperties("no equals sign here").ok());
  // Comments and blank lines are fine.
  auto ok = Config::FromProperties("# comment\n\nkey=value\n");
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value().Get("key"), "value");
}

TEST(HashTest, DeterministicAndSpread) {
  EXPECT_EQ(Fnv1a64("hello"), Fnv1a64("hello"));
  EXPECT_NE(Fnv1a64("hello"), Fnv1a64("hellp"));
  EXPECT_NE(Fnv1a64(""), Fnv1a64("a"));
}

// The logger is a process-global singleton; restore defaults on every path.
class LoggingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Logger& logger = Logger::Instance();
    logger.SetSink(&out_);
    logger.SetClock(std::make_shared<ManualClock>(1786018496123));
    logger.SetLevel(LogLevel::kDebug);
    logger.SetFormat(LogFormat::kPlain);
  }
  void TearDown() override {
    Logger& logger = Logger::Instance();
    logger.SetSink(nullptr);
    logger.SetClock(nullptr);
    logger.SetLevel(LogLevel::kWarn);
    logger.SetFormat(LogFormat::kPlain);
  }
  std::string Drain() {
    std::string s = out_.str();
    out_.str("");
    return s;
  }
  std::ostringstream out_;
};

TEST_F(LoggingTest, PlainFormatHasTimestampComponentAndFields) {
  SQS_INFOC("container", "started", {"job", "q0"}, {"tasks", "4"});
  std::string line = Drain();
  // ISO-8601 UTC timestamp from the injected clock.
  EXPECT_NE(line.find("2026-08-06T12:14:56.123Z"), std::string::npos) << line;
  EXPECT_NE(line.find("INFO"), std::string::npos);
  EXPECT_NE(line.find("[container]"), std::string::npos);
  EXPECT_NE(line.find("started job=q0 tasks=4"), std::string::npos) << line;
  EXPECT_EQ(line.back(), '\n');
}

TEST_F(LoggingTest, JsonFormatEscapesAndCarriesFields) {
  Logger::Instance().SetFormat(LogFormat::kJson);
  SQS_WARNC("broker", "bad \"topic\"", {"name", "a\\b"});
  std::string line = Drain();
  EXPECT_NE(line.find("{\"ts_ms\":1786018496123,\"level\":\"WARN\""),
            std::string::npos)
      << line;
  EXPECT_NE(line.find("\"component\":\"broker\""), std::string::npos);
  EXPECT_NE(line.find("\"msg\":\"bad \\\"topic\\\"\""), std::string::npos) << line;
  EXPECT_NE(line.find("\"name\":\"a\\\\b\""), std::string::npos) << line;
}

TEST_F(LoggingTest, RecordsBelowLevelAreDropped) {
  Logger::Instance().SetLevel(LogLevel::kError);
  SQS_DEBUGC("shell", "noise");
  SQS_INFOC("shell", "noise");
  SQS_WARNC("shell", "noise");
  EXPECT_EQ(Drain(), "");
  SQS_ERRORC("shell", "kept");
  EXPECT_NE(Drain().find("kept"), std::string::npos);
  Logger::Instance().SetLevel(LogLevel::kOff);
  SQS_ERRORC("shell", "muted");
  EXPECT_EQ(Drain(), "");
}

TEST_F(LoggingTest, LegacyMacrosRouteToAppComponent) {
  SQS_WARN("old style " << 42);
  std::string line = Drain();
  EXPECT_NE(line.find("[app]"), std::string::npos) << line;
  EXPECT_NE(line.find("old style 42"), std::string::npos);
}

TEST_F(LoggingTest, ApplyLogConfigMapsKeysAndIgnoresAbsentOnes) {
  Config config;
  config.Set("log.level", "debug");
  config.Set("log.format", "json");
  ApplyLogConfig(config);
  EXPECT_EQ(Logger::Instance().level(), LogLevel::kDebug);
  EXPECT_EQ(Logger::Instance().format(), LogFormat::kJson);
  // Absent keys leave the current settings untouched.
  ApplyLogConfig(Config{});
  EXPECT_EQ(Logger::Instance().level(), LogLevel::kDebug);
  EXPECT_EQ(Logger::Instance().format(), LogFormat::kJson);
  Config off;
  off.Set("log.level", "off");
  off.Set("log.format", "plain");
  ApplyLogConfig(off);
  EXPECT_EQ(Logger::Instance().level(), LogLevel::kOff);
  EXPECT_EQ(Logger::Instance().format(), LogFormat::kPlain);
}

}  // namespace
}  // namespace sqs
