// Shared test fixtures: the paper's example schemas (§3.2) as a catalog.
#pragma once

#include <memory>

#include "sql/catalog.h"

namespace sqs::sql::testutil {

inline CatalogPtr PaperCatalog() {
  auto catalog = std::make_shared<Catalog>();

  SourceDef orders;
  orders.name = "Orders";
  orders.kind = SourceKind::kStream;
  orders.topic = "orders";
  orders.schema = Schema::Make("Orders", {{"rowtime", FieldType::Int64(), false},
                                          {"productId", FieldType::Int32(), false},
                                          {"orderId", FieldType::Int64(), false},
                                          {"units", FieldType::Int32(), false},
                                          {"pad", FieldType::String(), true}});
  if (!catalog->RegisterSource(orders).ok()) std::abort();

  SourceDef products;
  products.name = "Products";
  products.kind = SourceKind::kRelation;
  products.topic = "products";
  products.schema = Schema::Make("Products", {{"productId", FieldType::Int32(), false},
                                              {"name", FieldType::String(), false},
                                              {"supplierId", FieldType::Int32(), false}});
  if (!catalog->RegisterSource(products).ok()) std::abort();

  SourceDef suppliers;
  suppliers.name = "Suppliers";
  suppliers.kind = SourceKind::kRelation;
  suppliers.topic = "suppliers";
  suppliers.schema = Schema::Make("Suppliers", {{"supplierId", FieldType::Int32(), false},
                                                {"name", FieldType::String(), false},
                                                {"location", FieldType::String(), false}});
  if (!catalog->RegisterSource(suppliers).ok()) std::abort();

  for (const char* name : {"PacketsR1", "PacketsR2"}) {
    SourceDef packets;
    packets.name = name;
    packets.kind = SourceKind::kStream;
    packets.topic = name;
    packets.schema = Schema::Make(name, {{"rowtime", FieldType::Int64(), false},
                                         {"sourcetime", FieldType::Int64(), false},
                                         {"packetId", FieldType::Int64(), false}});
    if (!catalog->RegisterSource(packets).ok()) std::abort();
  }

  for (const char* name : {"Asks", "Bids"}) {
    SourceDef quotes;
    quotes.name = name;
    quotes.kind = SourceKind::kStream;
    quotes.topic = name;
    quotes.schema = Schema::Make(
        name, {{"rowtime", FieldType::Int64(), false},
               {"id", FieldType::Int64(), false},
               {"ticker", FieldType::String(), false},
               {"shares", FieldType::Int32(), false},
               {"price", FieldType::Double(), false}});
    if (!catalog->RegisterSource(quotes).ok()) std::abort();
  }

  return catalog;
}

}  // namespace sqs::sql::testutil
