// Profiling + flight-recorder + stall-watchdog tests: cooperative frame
// stacks and sampling, per-operator CPU attribution over a real fused
// filter run, the flight recorder's seqlock rings under concurrent
// writers, crash-dump forensics (flush hooks + dump file), the
// supervisor's dump-on-container-death path, and a wedged container
// detected by the monitor's watchdog (stall event, /readyz reason,
// dump-order oracle). See docs/PROFILING.md.
#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <cstdio>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "common/flightrec.h"
#include "common/profiler.h"
#include "core/executor.h"
#include "http/monitor.h"
#include "log/broker.h"
#include "log/producer.h"
#include "task/api.h"
#include "task/runner.h"
#include "workload/generators.h"

namespace sqs {
namespace {

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

// ---------------------------------------------------------------------------
// Profiler: frames, interning, sampling, attribution.

class ProfilerTest : public ::testing::Test {
 protected:
  void SetUp() override { Profiler::Instance().Reset(); }
  void TearDown() override { Profiler::Instance().Reset(); }
};

TEST_F(ProfilerTest, InternReturnsStableIdentity) {
  const char* a = Profiler::Intern("process");
  const char* b = Profiler::Intern(std::string("pro") + "cess");
  EXPECT_EQ(a, b);  // identity, not just equality
  EXPECT_STREQ(a, "process");
}

TEST_F(ProfilerTest, PushPopTracksDepth) {
  size_t base = Profiler::CurrentDepth();
  Profiler::PushFrame(Profiler::Intern("outer"));
  EXPECT_EQ(Profiler::CurrentDepth(), base + 1);
  {
    ProfiledFrame inner("inner");
    EXPECT_EQ(Profiler::CurrentDepth(), base + 2);
  }
  EXPECT_EQ(Profiler::CurrentDepth(), base + 1);
  Profiler::PopFrame();
  EXPECT_EQ(Profiler::CurrentDepth(), base);
}

TEST_F(ProfilerTest, SampleOnceCapturesCurrentStack) {
  ProfiledFrame process("process");
  ProfiledFrame op("op1-filter");
  EXPECT_GE(Profiler::Instance().SampleOnce(), 1u);
  EXPECT_GE(Profiler::Instance().TotalSamples(), 1);
  std::string folded = Profiler::Instance().CollapsedStacks();
  EXPECT_NE(folded.find("process;op1-filter 1"), std::string::npos) << folded;
}

TEST_F(ProfilerTest, OperatorAttributionPicksDeepestOperatorFrame) {
  {
    // Operator frame below a non-operator leaf: the operator wins.
    ProfiledFrame process("process");
    ProfiledFrame fused("fused<op0..op2>");
    ProfiledFrame decode("decode");
    Profiler::Instance().SampleOnce();
    Profiler::Instance().SampleOnce();
  }
  {
    // No operator frame anywhere: the leaf is the bucket.
    ProfiledFrame produce("produce");
    Profiler::Instance().SampleOnce();
  }
  std::map<std::string, int64_t> attr = Profiler::Instance().OperatorAttribution();
  EXPECT_EQ(attr["fused<op0..op2>"], 2);
  EXPECT_EQ(attr["produce"], 1);
  EXPECT_EQ(Profiler::Instance().TotalSamples(), 3);
  Profiler::Instance().ClearSamples();
  EXPECT_EQ(Profiler::Instance().TotalSamples(), 0);
}

TEST_F(ProfilerTest, IsOperatorLabelMatchesPlanLabels) {
  EXPECT_TRUE(Profiler::IsOperatorLabel("op0-scan"));
  EXPECT_TRUE(Profiler::IsOperatorLabel("op12-window"));
  EXPECT_TRUE(Profiler::IsOperatorLabel("fused<op1..op3>"));
  EXPECT_FALSE(Profiler::IsOperatorLabel("process"));
  EXPECT_FALSE(Profiler::IsOperatorLabel("decode"));
  EXPECT_FALSE(Profiler::IsOperatorLabel("operator"));  // no digit after "op"
}

TEST_F(ProfilerTest, StartStopSamplingLifecycle) {
  Profiler& prof = Profiler::Instance();
  EXPECT_FALSE(prof.sampling());
  EXPECT_FALSE(prof.StartSampling(0).ok());
  ASSERT_TRUE(prof.StartSampling(500).ok());
  EXPECT_TRUE(prof.sampling());
  EXPECT_DOUBLE_EQ(prof.hz(), 500.0);
  {
    // Give the sampler something to see on this thread.
    ProfiledFrame frame("process");
    ProfiledFrame op("op0-scan");
    for (int i = 0; i < 200 && prof.TotalSamples() == 0; ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  prof.StopSampling();
  EXPECT_FALSE(prof.sampling());
  EXPECT_GT(prof.TotalSamples(), 0);
  EXPECT_NE(prof.CollapsedStacks().find("process;op0-scan"), std::string::npos);
}

TEST_F(ProfilerTest, SampleForBurstCollectsSamples) {
  ProfiledFrame frame("process");
  ASSERT_TRUE(Profiler::Instance().SampleFor(30, 1000).ok());
  EXPECT_GT(Profiler::Instance().TotalSamples(), 0);
  EXPECT_FALSE(Profiler::Instance().SampleFor(0, 97).ok());
  EXPECT_FALSE(Profiler::Instance().SampleFor(10, 0).ok());
}

// The acceptance oracle from the issue: over a real fused filter run,
// CPU attribution must put >= 90% of samples on the fused stage label.
TEST_F(ProfilerTest, FusedFilterRunAttributesToFusedStage) {
  auto env = core::SamzaSqlEnvironment::Make();
  ASSERT_TRUE(workload::SetupPaperSources(*env, 2).ok());
  Config defaults;
  defaults.SetInt(cfg::kContainerCount, 1);
  core::QueryExecutor executor(env, defaults);
  workload::OrdersGenerator gen(*env, {});
  ASSERT_TRUE(gen.Produce(2000).ok());
  auto submitted = executor.Execute(
      "SELECT STREAM orderId, units * 2 AS doubled FROM Orders WHERE units > 50");
  ASSERT_TRUE(submitted.ok()) << submitted.status().ToString();

  // The worker drives the fused job; the main thread samples only while
  // the job is actually running (the produce phase would otherwise add
  // "produce"-rooted stacks that belong to the generator, not the query).
  std::atomic<bool> running{false};
  std::atomic<bool> stop{false};
  std::thread worker([&] {
    while (!stop.load()) {
      running.store(true);
      auto ran = executor.RunJobsUntilQuiescent();
      running.store(false);
      if (!ran.ok()) break;
      if (stop.load()) break;
      auto produced = gen.Produce(2000);
      if (!produced.ok()) break;
    }
  });
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(20);
  while (Profiler::Instance().TotalSamples() < 200 &&
         std::chrono::steady_clock::now() < deadline) {
    if (running.load()) {
      Profiler::Instance().SampleOnce();
    } else {
      std::this_thread::yield();
    }
  }
  stop.store(true);
  worker.join();

  int64_t total = Profiler::Instance().TotalSamples();
  ASSERT_GT(total, 0) << "sampler never caught the fused run on CPU";
  std::map<std::string, int64_t> attr = Profiler::Instance().OperatorAttribution();
  int64_t fused = 0;
  for (const auto& [label, count] : attr) {
    if (label.rfind("fused<", 0) == 0) fused += count;
  }
  EXPECT_GE(static_cast<double>(fused), 0.9 * static_cast<double>(total))
      << Profiler::Instance().CollapsedStacks();
}

// ---------------------------------------------------------------------------
// Flight recorder: rings, overflow accounting, dumps, concurrency.

class FlightRecorderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    FlightRecorder::Instance().SetEnabled(true);
    FlightRecorder::Instance().Clear();
  }
  void TearDown() override {
    FlightRecorder::Instance().SetEnabled(true);
    FlightRecorder::Instance().Clear();
  }
};

TEST_F(FlightRecorderTest, RecordSnapshotRoundTrip) {
  FlightRecorder::Record(FlightEventType::kCommit, "frt-job.task0", "offsets",
                         7, 42);
  FlightRecorder::Record(FlightEventType::kBatchRun, "frt-job.task1", "", 128, 1);
  std::vector<FlightEvent> events = FlightRecorder::Instance().Snapshot("frt-job.");
  ASSERT_EQ(events.size(), 2u);
  EXPECT_LT(events[0].seq, events[1].seq);  // seq-sorted, oldest first
  EXPECT_EQ(events[0].type, FlightEventType::kCommit);
  EXPECT_STREQ(events[0].scope, "frt-job.task0");
  EXPECT_STREQ(events[0].detail, "offsets");
  EXPECT_EQ(events[0].a, 7);
  EXPECT_EQ(events[0].b, 42);
  EXPECT_EQ(events[1].type, FlightEventType::kBatchRun);
  // Prefix filter excludes non-matching scopes.
  EXPECT_TRUE(FlightRecorder::Instance().Snapshot("other-job").empty());
}

TEST_F(FlightRecorderTest, OversizedPayloadsAreTruncatedNotTorn) {
  std::string long_scope(100, 's');
  std::string long_detail(300, 'd');
  FlightRecorder::Record(FlightEventType::kPlanBuilt, long_scope, long_detail);
  std::vector<FlightEvent> events = FlightRecorder::Instance().Snapshot("sss");
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(std::string(events[0].scope), std::string(47, 's'));
  EXPECT_EQ(std::string(events[0].detail), std::string(95, 'd'));
}

TEST_F(FlightRecorderTest, RingOverflowCountsDropped) {
  FlightRecorder& rec = FlightRecorder::Instance();
  int64_t dropped_before = rec.dropped();
  // Capacity applies to rings created after the call, so write from a fresh
  // thread — its ring is born at the new size regardless of test order.
  constexpr size_t kCap = 64;
  constexpr size_t kWrites = kCap + 50;
  rec.SetRingCapacity(kCap);
  std::thread writer([] {
    for (size_t i = 0; i < kWrites; ++i) {
      FlightRecorder::Record(FlightEventType::kCommit, "overflow-test",
                             std::to_string(i), static_cast<int64_t>(i));
    }
  });
  writer.join();
  rec.SetRingCapacity(FlightRecorder::kDefaultRingEvents);
  std::vector<FlightEvent> events = rec.Snapshot("overflow-test");
  ASSERT_EQ(events.size(), kCap);  // ring keeps the newest `kCap`
  // The survivors are the tail of the writes, in order.
  for (size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].a, static_cast<int64_t>(kWrites - kCap + i));
  }
  EXPECT_GE(rec.dropped() - dropped_before, static_cast<int64_t>(kWrites - kCap));
}

TEST_F(FlightRecorderTest, DisabledRecorderDropsNothingAndRecordsNothing) {
  FlightRecorder& rec = FlightRecorder::Instance();
  int64_t recorded_before = rec.recorded();
  rec.SetEnabled(false);
  EXPECT_FALSE(rec.enabled());
  FlightRecorder::Record(FlightEventType::kCommit, "disabled-test");
  EXPECT_EQ(rec.recorded(), recorded_before);
  EXPECT_TRUE(rec.Snapshot("disabled-test").empty());
  rec.SetEnabled(true);
  FlightRecorder::Record(FlightEventType::kCommit, "disabled-test");
  EXPECT_EQ(rec.Snapshot("disabled-test").size(), 1u);
}

TEST_F(FlightRecorderTest, DumpJsonLinesIsWellFormedPerLine) {
  FlightRecorder::Record(FlightEventType::kStall, "dump-job.container0",
                         "heartbeat \"stale\" while busy", 5000, 100);
  std::string dump = FlightRecorder::Instance().DumpJsonLines("dump-job.");
  std::istringstream in(dump);
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_EQ(line.find("{\"flightrec\":\"samzasql\",\"events\":1"), 0u) << line;
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_NE(line.find("\"type\":\"stall\""), std::string::npos) << line;
  EXPECT_NE(line.find("\"scope\":\"dump-job.container0\""), std::string::npos);
  // Embedded quotes are escaped so every line stays one JSON object.
  EXPECT_NE(line.find("heartbeat \\\"stale\\\" while busy"), std::string::npos);
  EXPECT_NE(line.find("\"a\":5000,\"b\":100"), std::string::npos);
}

// Multi-threaded writer integrity: concurrent writers on private rings plus
// a concurrent reader; no torn records (scope/detail/a/b must agree), types
// stay in range, per-thread payloads survive in write order.
TEST_F(FlightRecorderTest, ConcurrentWritersNeverTearRecords) {
  constexpr int kThreads = 4;
  constexpr int kEventsPerThread = 10'000;
  std::atomic<bool> done{false};
  std::thread reader([&] {
    while (!done.load()) {
      // Concurrent snapshots must never observe half-written slots.
      std::vector<FlightEvent> events =
          FlightRecorder::Instance().Snapshot("mt-test.");
      for (const FlightEvent& ev : events) {
        std::string scope(ev.scope);
        std::string detail(ev.detail);
        ASSERT_EQ(scope, "mt-test.t" + std::to_string(ev.a)) << scope;
        ASSERT_EQ(detail, "evt-" + std::to_string(ev.b)) << detail;
      }
    }
  });
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([t] {
      std::string scope = "mt-test.t" + std::to_string(t);
      for (int i = 0; i < kEventsPerThread; ++i) {
        FlightRecorder::Record(
            static_cast<FlightEventType>(i % 15), scope,
            "evt-" + std::to_string(i), t, i);
      }
    });
  }
  for (std::thread& w : writers) w.join();
  done.store(true);
  reader.join();

  std::vector<FlightEvent> events = FlightRecorder::Instance().Snapshot("mt-test.");
  ASSERT_FALSE(events.empty());
  std::map<int64_t, int64_t> last_b;  // per-writer: b must increase with seq
  uint64_t last_seq = 0;
  bool first = true;
  for (const FlightEvent& ev : events) {
    ASSERT_LE(static_cast<int>(ev.type),
              static_cast<int>(FlightEventType::kCrashDump));
    if (!first) ASSERT_GT(ev.seq, last_seq);  // strict global order, no dups
    first = false;
    last_seq = ev.seq;
    EXPECT_EQ(std::string(ev.scope), "mt-test.t" + std::to_string(ev.a));
    EXPECT_EQ(std::string(ev.detail), "evt-" + std::to_string(ev.b));
    auto it = last_b.find(ev.a);
    if (it != last_b.end()) EXPECT_GT(ev.b, it->second);
    last_b[ev.a] = ev.b;
  }
  EXPECT_EQ(last_b.size(), static_cast<size_t>(kThreads));
}

// ---------------------------------------------------------------------------
// Crash forensics: flush hooks + dump file.

TEST(CrashDumpTest, WriteCrashDumpRunsFlushHooksThenWritesFile) {
  FlightRecorder::Instance().SetEnabled(true);
  std::string path = ::testing::TempDir() + "/flightrec_crash_test.jsonl";
  std::remove(path.c_str());
  SetCrashDumpPath(path);
  static std::atomic<int> flushes{0};
  auto hook = [](void*) { flushes.fetch_add(1); };
  RegisterCrashFlush(hook, &flushes);

  FlightRecorder::Record(FlightEventType::kCommit, "crash-test.task0", "offsets");
  EXPECT_TRUE(WriteCrashDump("unit-test"));
  UnregisterCrashFlush(&flushes);
  SetCrashDumpPath("");

  EXPECT_GE(flushes.load(), 1);
  std::string dump = ReadFile(path);
  ASSERT_FALSE(dump.empty());
  EXPECT_NE(dump.find("\"flightrec\":\"samzasql\""), std::string::npos);
  // The dump records why it was taken, then the buffered events.
  EXPECT_NE(dump.find("\"type\":\"crash_dump\""), std::string::npos);
  EXPECT_NE(dump.find("unit-test"), std::string::npos);
  EXPECT_NE(dump.find("crash-test.task0"), std::string::npos);
  std::remove(path.c_str());
}

TEST(CrashDumpTest, NoPathMeansNoDump) {
  SetCrashDumpPath("");
  EXPECT_FALSE(WriteCrashDump("no-path"));
}

// Supervisor-observed container death: a crashing task under supervision
// must leave a flight-recorder dump (container_crash + restart context)
// at flightrec.dump.path even though the process itself survives.
TEST(CrashDumpTest, SupervisorDumpsRecorderOnContainerDeath) {
  FlightRecorder::Instance().SetEnabled(true);
  FlightRecorder::Instance().Clear();
  std::string path = ::testing::TempDir() + "/flightrec_supervisor_test.jsonl";
  std::remove(path.c_str());

  class CrashOnceTask : public StreamTask {
   public:
    Status Process(const IncomingMessage&, MessageCollector&,
                   TaskCoordinator&) override {
      static std::atomic<bool> crashed{false};
      if (!crashed.exchange(true)) {
        return Status::Unavailable("injected wedge");
      }
      return Status::Ok();
    }
  };
  TaskFactoryRegistry::Instance().Register(
      "crash-once", [] { return std::make_unique<CrashOnceTask>(); });

  auto broker = std::make_shared<Broker>();
  ASSERT_TRUE(broker->CreateTopic("crash-in", {.num_partitions = 1}).ok());
  Producer p(broker);
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(p.Send("crash-in", ToBytes("k"), ToBytes("v")).ok());
  }
  Config c;
  c.Set(cfg::kJobName, "crash-job");
  c.Set(cfg::kTaskInputs, "crash-in");
  c.Set(cfg::kTaskFactory, "crash-once");
  c.SetInt(cfg::kContainerCount, 1);
  c.SetInt(cfg::kContainerRestartMax, 3);
  c.SetInt(cfg::kContainerRestartBackoffMs, 1);
  c.Set(cfg::kFlightRecDumpPath, path);
  JobRunner runner(broker, c);
  ASSERT_TRUE(runner.Start().ok());
  auto ran = runner.RunUntilQuiescent();
  ASSERT_TRUE(ran.ok()) << ran.status().ToString();
  EXPECT_GE(runner.TotalRestarts(), 1);
  ASSERT_TRUE(runner.Stop().ok());

  std::string dump = ReadFile(path);
  ASSERT_FALSE(dump.empty()) << "supervisor wrote no dump to " << path;
  EXPECT_NE(dump.find("\"type\":\"container_crash\""), std::string::npos) << dump;
  EXPECT_NE(dump.find("crash-job.container0"), std::string::npos);
  EXPECT_NE(dump.find("injected wedge"), std::string::npos);
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Stall watchdog: a wedged container under the threaded driver.

// Task that blocks inside Process until the test releases it.
struct WedgeGate {
  std::mutex mu;
  std::condition_variable cv;
  bool block = false;
  bool entered = false;
};
WedgeGate& wedge_gate() {
  static auto* g = new WedgeGate;
  return *g;
}

class WedgeTask : public StreamTask {
 public:
  Status Process(const IncomingMessage&, MessageCollector&,
                 TaskCoordinator&) override {
    WedgeGate& gate = wedge_gate();
    std::unique_lock<std::mutex> lock(gate.mu);
    if (gate.block) {
      gate.entered = true;
      gate.cv.notify_all();
      gate.cv.wait(lock, [&] { return !gate.block; });
    }
    return Status::Ok();
  }
};

TEST(StallWatchdogTest, WedgedContainerFiresStallAndRecovers) {
  FlightRecorder::Instance().SetEnabled(true);
  FlightRecorder::Instance().Clear();
  Profiler::Instance().Reset();
  std::string dump_path = ::testing::TempDir() + "/flightrec_stall_test.jsonl";
  std::remove(dump_path.c_str());

  TaskFactoryRegistry::Instance().Register(
      "wedge", [] { return std::make_unique<WedgeTask>(); });
  auto clock = std::make_shared<ManualClock>(1'000'000);
  auto broker = std::make_shared<Broker>();
  ASSERT_TRUE(broker->CreateTopic("wedge-in", {.num_partitions = 1}).ok());
  Producer p(broker);
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(p.Send("wedge-in", ToBytes("k"), ToBytes("v")).ok());
  }
  Config c;
  c.Set(cfg::kJobName, "wedge-job");
  c.Set(cfg::kTaskInputs, "wedge-in");
  c.Set(cfg::kTaskFactory, "wedge");
  c.SetInt(cfg::kContainerCount, 1);
  c.SetInt(cfg::kCommitEveryMessages, 2);
  JobRunner runner(broker, c, clock);
  ASSERT_TRUE(runner.Start().ok());

  // Phase 1: a healthy drain lays down batch_run + checkpoint events so the
  // eventual dump shows normal progress before the stall.
  auto drained = runner.RunUntilQuiescent();
  ASSERT_TRUE(drained.ok()) << drained.status().ToString();
  ASSERT_EQ(drained.value(), 6);

  // Monitor over this runner via the provider (no HTTP needed): stall after
  // 100ms of stale heartbeat, no profile burst so the check is instant.
  Config mc;
  mc.SetInt(cfg::kWatchdogStallMs, 100);
  mc.SetInt(cfg::kWatchdogProfileMs, 0);
  mc.Set(cfg::kFlightRecDumpPath, dump_path);
  MonitorServer monitor(
      mc,
      [&runner, &clock] {
        MonitorJobView view;
        view.name = runner.job_name();
        view.containers_total = runner.NumContainers();
        view.containers_running = runner.NumRunningContainers();
        for (const auto& cs :
             runner.CollectContainerStatus(clock->NowMillis())) {
          view.containers.push_back({cs.id, cs.running, cs.busy,
                                     cs.heartbeat_age_ms});
        }
        view.snapshot = runner.metrics_registry()->Snapshot();
        return std::vector<MonitorJobView>{view};
      },
      clock);

  // Healthy containers never read as stalled, however long they idle.
  clock->Advance(10'000);
  monitor.RunWatchdogCheck();
  EXPECT_TRUE(monitor.StalledContainers().empty());
  EXPECT_TRUE(monitor.CheckReadiness().ready);

  // Phase 2: wedge the task and drive the container on its own thread (the
  // threaded supervisor driver). Process blocks, the heartbeat goes stale.
  {
    std::lock_guard<std::mutex> lock(wedge_gate().mu);
    wedge_gate().block = true;
    wedge_gate().entered = false;
  }
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(p.Send("wedge-in", ToBytes("k"), ToBytes("v")).ok());
  }
  std::thread driver([&runner] { (void)runner.RunThreadedUntilQuiescent(); });
  {
    std::unique_lock<std::mutex> lock(wedge_gate().mu);
    ASSERT_TRUE(wedge_gate().cv.wait_for(lock, std::chrono::seconds(10),
                                         [] { return wedge_gate().entered; }));
  }
  clock->Advance(5'000);  // heartbeat now 5000ms stale while busy

  monitor.RunWatchdogCheck();
  std::vector<std::string> stalled = monitor.StalledContainers();
  ASSERT_EQ(stalled.size(), 1u);
  EXPECT_EQ(stalled[0], "wedge-job.container0");
  MonitorServer::Readiness readiness = monitor.CheckReadiness();
  EXPECT_FALSE(readiness.ready);
  EXPECT_NE(readiness.reason.find("wedge-job.container0 stalled"),
            std::string::npos)
      << readiness.reason;
  EXPECT_NE(readiness.reason.find("100ms"), std::string::npos);
  // The heartbeat-age gauge is exported for dashboards.
  MetricsSnapshot self = monitor.self_metrics().Snapshot();
  auto age = self.gauges.find("wedge-job.container0.heartbeat_age_ms");
  ASSERT_NE(age, self.gauges.end());
  EXPECT_GE(age->second, 5'000);
  EXPECT_EQ(self.counters.at("monitor.watchdog_stalls"), 1);

  // A second check while still wedged is not a new stall (one-shot).
  monitor.RunWatchdogCheck();
  EXPECT_EQ(monitor.self_metrics().Snapshot().counters.at(
                "monitor.watchdog_stalls"),
            1);

  // Dump-order oracle: the automatic dump must show healthy progress
  // (commit, batch_run) strictly before the stall event.
  std::string dump = ReadFile(dump_path);
  ASSERT_FALSE(dump.empty()) << "watchdog wrote no dump to " << dump_path;
  EXPECT_NE(dump.find("\"type\":\"stall\""), std::string::npos);
  EXPECT_NE(dump.find("\"type\":\"commit\""), std::string::npos);
  EXPECT_NE(dump.find("\"type\":\"batch_run\""), std::string::npos);
  std::vector<FlightEvent> events =
      FlightRecorder::Instance().Snapshot("wedge-job");
  uint64_t last_commit_seq = 0, last_batch_seq = 0, stall_seq = 0;
  for (const FlightEvent& ev : events) {
    if (ev.type == FlightEventType::kBatchRun) last_batch_seq = ev.seq;
    if (ev.type == FlightEventType::kCommit) last_commit_seq = ev.seq;
    if (ev.type == FlightEventType::kStall && stall_seq == 0) stall_seq = ev.seq;
  }
  ASSERT_GT(last_commit_seq, 0u) << "no commit event recorded";
  ASSERT_GT(last_batch_seq, 0u) << "no batch_run event recorded";
  ASSERT_GT(stall_seq, 0u) << "no stall event recorded";
  EXPECT_GT(stall_seq, last_commit_seq);
  EXPECT_GT(stall_seq, last_batch_seq);

  // Phase 3: release the wedge; the run completes and the next check clears
  // the stall and restores readiness.
  {
    std::lock_guard<std::mutex> lock(wedge_gate().mu);
    wedge_gate().block = false;
  }
  wedge_gate().cv.notify_all();
  driver.join();
  monitor.RunWatchdogCheck();
  EXPECT_TRUE(monitor.StalledContainers().empty());
  EXPECT_TRUE(monitor.CheckReadiness().ready);
  bool cleared = false;
  for (const FlightEvent& ev : FlightRecorder::Instance().Snapshot("wedge-job")) {
    if (ev.type == FlightEventType::kStallCleared) cleared = true;
  }
  EXPECT_TRUE(cleared);

  ASSERT_TRUE(runner.Stop().ok());
  std::remove(dump_path.c_str());
}

}  // namespace
}  // namespace sqs
