#include <gtest/gtest.h>

#include <random>

#include "serde/json.h"
#include "serde/registry.h"
#include "serde/schema.h"
#include "serde/serde.h"

namespace sqs {
namespace {

SchemaPtr OrdersSchema() {
  return Schema::Make("Orders", {{"rowtime", FieldType::Int64(), false},
                                 {"productId", FieldType::Int32(), false},
                                 {"orderId", FieldType::Int64(), false},
                                 {"units", FieldType::Int32(), false},
                                 {"pad", FieldType::String(), true}});
}

Row SampleOrder() {
  return {Value(int64_t{1700000000000}), Value(int32_t{17}), Value(int64_t{12345}),
          Value(int32_t{30}), Value("xxxxxxxxxx")};
}

TEST(SchemaTest, FieldIndexLookup) {
  auto s = OrdersSchema();
  EXPECT_EQ(s->FieldIndex("rowtime"), 0u);
  EXPECT_EQ(s->FieldIndex("units"), 3u);
  EXPECT_FALSE(s->FieldIndex("nope").has_value());
}

TEST(SchemaTest, ValidateAcceptsConformingRow) {
  EXPECT_TRUE(OrdersSchema()->Validate(SampleOrder()).ok());
}

TEST(SchemaTest, ValidateRejectsArityMismatch) {
  Row row = SampleOrder();
  row.pop_back();
  EXPECT_FALSE(OrdersSchema()->Validate(row).ok());
}

TEST(SchemaTest, ValidateRejectsNullInNonNullable) {
  Row row = SampleOrder();
  row[0] = Value::Null();
  EXPECT_FALSE(OrdersSchema()->Validate(row).ok());
}

TEST(SchemaTest, ValidateAcceptsNullInNullable) {
  Row row = SampleOrder();
  row[4] = Value::Null();
  EXPECT_TRUE(OrdersSchema()->Validate(row).ok());
}

TEST(SchemaTest, ValidateAllowsIntWidening) {
  auto s = Schema::Make("T", {{"x", FieldType::Int64(), false}});
  EXPECT_TRUE(s->Validate({Value(int32_t{5})}).ok());
  auto d = Schema::Make("T", {{"x", FieldType::Double(), false}});
  EXPECT_TRUE(d->Validate({Value(int64_t{5})}).ok());
  // But not narrowing.
  auto i = Schema::Make("T", {{"x", FieldType::Int32(), false}});
  EXPECT_FALSE(i->Validate({Value(3.5)}).ok());
}

TEST(SchemaTest, CanonicalRoundTrip) {
  auto s = Schema::Make("Mixed", {{"a", FieldType::Int64(), false},
                                  {"b", FieldType::String(), true},
                                  {"c", FieldType::Array(TypeKind::kInt32), false},
                                  {"d", FieldType::Map(TypeKind::kDouble), true}});
  auto parsed = Schema::ParseCanonical(s->Canonical());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_TRUE(parsed.value()->Equals(*s));
}

TEST(SchemaTest, CanonicalParseRejectsGarbage) {
  EXPECT_FALSE(Schema::ParseCanonical("no parens").ok());
  EXPECT_FALSE(Schema::ParseCanonical("T(x)").ok());
  EXPECT_FALSE(Schema::ParseCanonical("T(x:floof)").ok());
}

TEST(AvroSerdeTest, RoundTripBasic) {
  AvroRowSerde serde(OrdersSchema());
  Row row = SampleOrder();
  Bytes bytes = serde.SerializeToBytes(row);
  auto back = serde.DeserializeBytes(bytes);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back.value(), row);
}

TEST(AvroSerdeTest, RoundTripNulls) {
  AvroRowSerde serde(OrdersSchema());
  Row row = SampleOrder();
  row[4] = Value::Null();
  auto back = serde.DeserializeBytes(serde.SerializeToBytes(row));
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back.value()[4].is_null());
}

TEST(AvroSerdeTest, NoFieldNamesOnWire) {
  // Positional encoding: the payload must be much smaller than the
  // reflective encoding which carries names.
  AvroRowSerde avro(OrdersSchema());
  ReflectiveRowSerde refl(OrdersSchema());
  Row row = SampleOrder();
  EXPECT_LT(avro.SerializeToBytes(row).size(), refl.SerializeToBytes(row).size());
}

TEST(AvroSerdeTest, RejectsNullInNonNullable) {
  AvroRowSerde serde(OrdersSchema());
  Row row = SampleOrder();
  row[1] = Value::Null();
  BytesWriter w;
  EXPECT_FALSE(serde.Serialize(row, w).ok());
}

TEST(AvroSerdeTest, RejectsArityMismatch) {
  AvroRowSerde serde(OrdersSchema());
  BytesWriter w;
  EXPECT_FALSE(serde.Serialize({Value(int64_t{1})}, w).ok());
}

TEST(AvroSerdeTest, TruncatedPayloadFails) {
  AvroRowSerde serde(OrdersSchema());
  Bytes bytes = serde.SerializeToBytes(SampleOrder());
  bytes.resize(bytes.size() / 2);
  EXPECT_FALSE(serde.DeserializeBytes(bytes).ok());
}

TEST(AvroSerdeTest, CollectionsRoundTrip) {
  auto s = Schema::Make("C", {{"tags", FieldType::Array(TypeKind::kString), false},
                              {"scores", FieldType::Map(TypeKind::kDouble), false}});
  AvroRowSerde serde(s);
  Row row = {Value(ValueArray{Value("a"), Value("b")}),
             Value(ValueMap{{"x", Value(1.5)}, {"y", Value(2.5)}})};
  auto back = serde.DeserializeBytes(serde.SerializeToBytes(row));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value(), row);
}

TEST(ReflectiveSerdeTest, RoundTrip) {
  ReflectiveRowSerde serde(OrdersSchema());
  Row row = SampleOrder();
  auto back = serde.DeserializeBytes(serde.SerializeToBytes(row));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value(), row);
}

TEST(ReflectiveSerdeTest, ResolvesFieldsByNameAcrossReorderedSchema) {
  // Writer uses one field order; reader's schema lists fields differently.
  auto writer_schema = Schema::Make(
      "T", {{"a", FieldType::Int64(), false}, {"b", FieldType::String(), false}});
  auto reader_schema = Schema::Make(
      "T", {{"b", FieldType::String(), true}, {"a", FieldType::Int64(), true}});
  ReflectiveRowSerde writer(writer_schema);
  ReflectiveRowSerde reader(reader_schema);
  Bytes bytes = writer.SerializeToBytes({Value(int64_t{9}), Value("s")});
  auto back = reader.DeserializeBytes(bytes);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value()[0], Value("s"));
  EXPECT_EQ(back.value()[1], Value(int64_t{9}));
}

TEST(ReflectiveSerdeTest, UnknownFieldsSkipped) {
  auto writer_schema = Schema::Make(
      "T", {{"a", FieldType::Int64(), false}, {"zz", FieldType::Int64(), false}});
  auto reader_schema = Schema::Make("T", {{"a", FieldType::Int64(), true}});
  ReflectiveRowSerde writer(writer_schema);
  ReflectiveRowSerde reader(reader_schema);
  auto back = reader.DeserializeBytes(
      writer.SerializeToBytes({Value(int64_t{1}), Value(int64_t{2})}));
  ASSERT_TRUE(back.ok());
  ASSERT_EQ(back.value().size(), 1u);
  EXPECT_EQ(back.value()[0], Value(int64_t{1}));
}

TEST(JsonTest, ParsesScalars) {
  EXPECT_EQ(ParseJson("42").value(), Value(int64_t{42}));
  EXPECT_EQ(ParseJson("-7").value(), Value(int64_t{-7}));
  EXPECT_EQ(ParseJson("2.5").value(), Value(2.5));
  EXPECT_EQ(ParseJson("true").value(), Value(true));
  EXPECT_EQ(ParseJson("null").value(), Value::Null());
  EXPECT_EQ(ParseJson("\"hi\\n\"").value(), Value("hi\n"));
}

TEST(JsonTest, ParsesNested) {
  auto v = ParseJson(R"({"a": [1, 2, {"b": true}], "c": "x"})");
  ASSERT_TRUE(v.ok()) << v.status().ToString();
  const ValueMap& m = v.value().as_map();
  ASSERT_EQ(m.size(), 2u);
  const ValueArray& arr = m.at("a").as_array();
  ASSERT_EQ(arr.size(), 3u);
  EXPECT_TRUE(arr[2].as_map().at("b").as_bool());
}

TEST(JsonTest, RejectsMalformed) {
  EXPECT_FALSE(ParseJson("{").ok());
  EXPECT_FALSE(ParseJson("[1,]").ok());
  EXPECT_FALSE(ParseJson("\"unterminated").ok());
  EXPECT_FALSE(ParseJson("1 2").ok());
  EXPECT_FALSE(ParseJson("tru").ok());
}

TEST(JsonTest, PrintParseRoundTrip) {
  Value v(ValueMap{{"n", Value(int64_t{5})},
                   {"s", Value("a\"b\\c")},
                   {"arr", Value(ValueArray{Value(true), Value::Null()})}});
  auto back = ParseJson(ToJson(v));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value(), v);
}

TEST(JsonRowSerdeTest, RoundTrip) {
  JsonRowSerde serde(OrdersSchema());
  Row row = SampleOrder();
  auto back = serde.DeserializeBytes(serde.SerializeToBytes(row));
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back.value(), row);
}

TEST(JsonRowSerdeTest, MissingNullableFieldBecomesNull) {
  auto s = Schema::Make("T", {{"a", FieldType::Int64(), false},
                              {"b", FieldType::String(), true}});
  JsonRowSerde serde(s);
  Bytes bytes = ToBytes(R"({"a": 1})");
  auto back = serde.DeserializeBytes(bytes);
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back.value()[1].is_null());
}

TEST(JsonRowSerdeTest, MissingRequiredFieldFails) {
  auto s = Schema::Make("T", {{"a", FieldType::Int64(), false}});
  JsonRowSerde serde(s);
  EXPECT_FALSE(serde.DeserializeBytes(ToBytes("{}")).ok());
}

TEST(OrderedKeyTest, PreservesIntegerOrder) {
  std::vector<int64_t> values = {INT64_MIN, -100, -1, 0, 1, 7, 100, INT64_MAX};
  for (size_t i = 0; i + 1 < values.size(); ++i) {
    EXPECT_LT(EncodeOrderedKey(Value(values[i])), EncodeOrderedKey(Value(values[i + 1])))
        << values[i] << " vs " << values[i + 1];
  }
}

TEST(OrderedKeyTest, PreservesDoubleOrder) {
  std::vector<double> values = {-1e30, -2.5, -0.0, 0.0, 1e-10, 3.5, 1e30};
  for (size_t i = 0; i + 1 < values.size(); ++i) {
    EXPECT_LE(EncodeOrderedKey(Value(values[i])), EncodeOrderedKey(Value(values[i + 1])));
  }
}

TEST(OrderedKeyTest, PreservesStringOrder) {
  EXPECT_LT(EncodeOrderedKey(Value("abc")), EncodeOrderedKey(Value("abd")));
  EXPECT_LT(EncodeOrderedKey(Value("ab")), EncodeOrderedKey(Value("abc")));
}

TEST(OrderedKeyTest, CompositeKeysOrderByFirstComponentThenSecond) {
  Row a = {Value(int64_t{1}), Value(int64_t{99})};
  Row b = {Value(int64_t{2}), Value(int64_t{0})};
  Row c = {Value(int64_t{2}), Value(int64_t{1})};
  EXPECT_LT(EncodeOrderedKey(a), EncodeOrderedKey(b));
  EXPECT_LT(EncodeOrderedKey(b), EncodeOrderedKey(c));
}

TEST(OrderedKeyTest, RandomizedIntegerOrderProperty) {
  std::mt19937_64 rng(11);
  for (int i = 0; i < 2000; ++i) {
    int64_t a = static_cast<int64_t>(rng());
    int64_t b = static_cast<int64_t>(rng());
    bool key_lt = EncodeOrderedKey(Value(a)) < EncodeOrderedKey(Value(b));
    EXPECT_EQ(key_lt, a < b) << a << " " << b;
  }
}

TEST(RegistryTest, RegisterAndFetch) {
  SchemaRegistry reg;
  auto r = reg.Register("Orders", OrdersSchema());
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().version, 1);
  auto latest = reg.GetLatest("Orders");
  ASSERT_TRUE(latest.ok());
  EXPECT_TRUE(latest.value().schema->Equals(*OrdersSchema()));
  auto by_id = reg.GetById(r.value().id);
  ASSERT_TRUE(by_id.ok());
  EXPECT_TRUE(by_id.value().schema->Equals(*OrdersSchema()));
}

TEST(RegistryTest, IdempotentReregistration) {
  SchemaRegistry reg;
  auto r1 = reg.Register("Orders", OrdersSchema());
  auto r2 = reg.Register("Orders", OrdersSchema());
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r1.value().id, r2.value().id);
  EXPECT_EQ(r2.value().version, 1);
}

TEST(RegistryTest, CompatibleEvolutionAddsVersion) {
  SchemaRegistry reg;
  ASSERT_TRUE(reg.Register("Orders", OrdersSchema()).ok());
  auto evolved = Schema::Make("Orders", {{"rowtime", FieldType::Int64(), false},
                                         {"productId", FieldType::Int32(), false},
                                         {"orderId", FieldType::Int64(), false},
                                         {"units", FieldType::Int32(), false},
                                         {"pad", FieldType::String(), true},
                                         {"channel", FieldType::String(), true}});
  auto r = reg.Register("Orders", evolved);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value().version, 2);
}

TEST(RegistryTest, RejectsFieldRemoval) {
  SchemaRegistry reg;
  ASSERT_TRUE(reg.Register("Orders", OrdersSchema()).ok());
  auto shrunk = Schema::Make("Orders", {{"rowtime", FieldType::Int64(), false}});
  EXPECT_FALSE(reg.Register("Orders", shrunk).ok());
}

TEST(RegistryTest, RejectsNonNullableNewField) {
  SchemaRegistry reg;
  auto base = Schema::Make("T", {{"a", FieldType::Int64(), false}});
  ASSERT_TRUE(reg.Register("T", base).ok());
  auto bad = Schema::Make("T", {{"a", FieldType::Int64(), false},
                                {"b", FieldType::Int64(), false}});
  EXPECT_FALSE(reg.Register("T", bad).ok());
}

TEST(RegistryTest, RejectsIncompatibleTypeChange) {
  SchemaRegistry reg;
  auto base = Schema::Make("T", {{"a", FieldType::String(), false}});
  ASSERT_TRUE(reg.Register("T", base).ok());
  auto bad = Schema::Make("T", {{"a", FieldType::Int64(), false}});
  EXPECT_FALSE(reg.Register("T", bad).ok());
}

TEST(RegistryTest, AllowsNumericWidening) {
  SchemaRegistry reg;
  auto base = Schema::Make("T", {{"a", FieldType::Int32(), false}});
  ASSERT_TRUE(reg.Register("T", base).ok());
  auto widened = Schema::Make("T", {{"a", FieldType::Int64(), false}});
  EXPECT_TRUE(reg.Register("T", widened).ok());
}

// Property: all three serdes round-trip randomized rows over a mixed schema.
class SerdeRoundTrip : public ::testing::TestWithParam<std::string> {};

TEST_P(SerdeRoundTrip, RandomizedRows) {
  auto schema = Schema::Make("R", {{"i32", FieldType::Int32(), false},
                                   {"i64", FieldType::Int64(), true},
                                   {"d", FieldType::Double(), false},
                                   {"s", FieldType::String(), true},
                                   {"b", FieldType::Bool(), false}});
  std::unique_ptr<RowSerde> serde;
  if (GetParam() == "avro") {
    serde = std::make_unique<AvroRowSerde>(schema);
  } else if (GetParam() == "reflective") {
    serde = std::make_unique<ReflectiveRowSerde>(schema);
  } else {
    serde = std::make_unique<JsonRowSerde>(schema);
  }
  std::mt19937_64 rng(GetParam().size() * 1000003);
  for (int i = 0; i < 300; ++i) {
    Row row;
    row.push_back(Value(static_cast<int32_t>(rng())));
    row.push_back(rng() % 4 == 0 ? Value::Null() : Value(static_cast<int64_t>(rng())));
    row.push_back(Value(static_cast<double>(static_cast<int64_t>(rng())) / 1024.0));
    if (rng() % 4 == 0) {
      row.push_back(Value::Null());
    } else {
      std::string s;
      for (size_t j = rng() % 20; j > 0; --j) s += static_cast<char>('a' + rng() % 26);
      row.push_back(Value(std::move(s)));
    }
    row.push_back(Value(static_cast<bool>(rng() % 2)));
    auto back = serde->DeserializeBytes(serde->SerializeToBytes(row));
    ASSERT_TRUE(back.ok()) << back.status().ToString();
    ASSERT_EQ(back.value(), row) << "iteration " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(AllSerdes, SerdeRoundTrip,
                         ::testing::Values("avro", "reflective", "json"));

}  // namespace
}  // namespace sqs
