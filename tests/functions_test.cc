// User-defined scalar function tests: registry rules, planner visibility,
// interpreter + compiled evaluation, constant folding, and end-to-end use
// in a streaming query.
#include <gtest/gtest.h>

#include "core/executor.h"
#include "sql/accumulator.h"
#include "sql/functions.h"
#include "sql/optimizer.h"
#include "sql/parser.h"
#include "workload/generators.h"

namespace sqs::sql {
namespace {

// Registers DOUBLE_IT / TAX once for the whole test binary.
void RegisterTestUdfs() {
  static bool done = [] {
    auto& reg = FunctionRegistry::Instance();
    Status st = reg.RegisterScalar(
        "DOUBLE_IT", 1, FieldType::Int64(), [](const std::vector<Value>& args) {
          if (args[0].is_null()) return Value::Null();
          return Value(args[0].ToInt64() * 2);
        });
    if (!st.ok()) std::abort();
    ScalarUdf tax;
    tax.name = "tax";  // case-insensitive registration
    tax.min_arity = 1;
    tax.max_arity = 2;
    tax.type_fn = [](const std::vector<FieldType>& args) -> Result<FieldType> {
      if (args[0].kind == TypeKind::kString) {
        return Status::ValidationError("TAX needs a numeric argument");
      }
      return FieldType::Double();
    };
    tax.eval_fn = [](const std::vector<Value>& args) {
      double rate = args.size() == 2 ? args[1].ToDouble() : 0.1;
      return Value(args[0].ToDouble() * rate);
    };
    st = reg.RegisterScalar(std::move(tax));
    if (!st.ok()) std::abort();
    return true;
  }();
  (void)done;
}

ColumnResolver UnitsResolver() {
  return [](const std::string&,
            const std::string& c) -> Result<std::pair<int, FieldType>> {
    if (c == "units") return std::make_pair(0, FieldType::Int32());
    return Status::NotFound(c);
  };
}

TEST(UdfTest, RegistryRejectsCollisions) {
  RegisterTestUdfs();
  auto& reg = FunctionRegistry::Instance();
  // Built-in scalar collision.
  EXPECT_EQ(reg.RegisterScalar("FLOOR", 1, FieldType::Int64(),
                               [](const std::vector<Value>&) { return Value::Null(); })
                .code(),
            ErrorCode::kAlreadyExists);
  // Aggregate collision.
  EXPECT_EQ(reg.RegisterScalar("COUNT", 1, FieldType::Int64(),
                               [](const std::vector<Value>&) { return Value::Null(); })
                .code(),
            ErrorCode::kAlreadyExists);
  // Duplicate UDF.
  EXPECT_EQ(reg.RegisterScalar("DOUBLE_IT", 1, FieldType::Int64(),
                               [](const std::vector<Value>&) { return Value::Null(); })
                .code(),
            ErrorCode::kAlreadyExists);
}

TEST(UdfTest, ResolvesAndEvaluatesInterpreted) {
  RegisterTestUdfs();
  auto e = ParseExpression("DOUBLE_IT(units) + 1").value();
  ASSERT_TRUE(ResolveExpr(*e, UnitsResolver(), false).ok());
  EXPECT_EQ(e->resolved_type.kind, TypeKind::kInt64);
  EXPECT_EQ(EvalExpr(*e, {Value(int32_t{21})}), Value(int64_t{43}));
}

TEST(UdfTest, CompiledEvaluationMatches) {
  RegisterTestUdfs();
  auto e = ParseExpression("tax(units, 0.25)").value();
  ASSERT_TRUE(ResolveExpr(*e, UnitsResolver(), false).ok());
  auto compiled = CompiledExpr::Compile(*e);
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
  Row row = {Value(int32_t{100})};
  EXPECT_EQ(compiled.value().Eval(row), Value(25.0));
  EXPECT_EQ(EvalExpr(*e, row), compiled.value().Eval(row));
}

TEST(UdfTest, VariadicArityChecked) {
  RegisterTestUdfs();
  auto ok1 = ParseExpression("TAX(units)").value();
  EXPECT_TRUE(ResolveExpr(*ok1, UnitsResolver(), false).ok());
  auto bad = ParseExpression("TAX(units, 1, 2)").value();
  EXPECT_FALSE(ResolveExpr(*bad, UnitsResolver(), false).ok());
}

TEST(UdfTest, TypeFunctionValidatesArguments) {
  RegisterTestUdfs();
  auto resolver = [](const std::string&,
                     const std::string& c) -> Result<std::pair<int, FieldType>> {
    if (c == "pad") return std::make_pair(0, FieldType::String());
    return Status::NotFound(c);
  };
  auto e = ParseExpression("TAX(pad)").value();
  auto st = ResolveExpr(*e, resolver, false);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("numeric"), std::string::npos);
}

TEST(UdfTest, UnknownFunctionStillFails) {
  auto e = ParseExpression("NO_SUCH_FN(1)").value();
  auto st = ResolveExpr(*e, UnitsResolver(), false);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("unknown function"), std::string::npos);
}

TEST(UdfTest, ConstantFoldingAppliesToPureUdfs) {
  RegisterTestUdfs();
  auto e = ParseExpression("DOUBLE_IT(21)").value();
  ASSERT_TRUE(ResolveExpr(*e, UnitsResolver(), false).ok());
  EXPECT_TRUE(FoldConstants(*e));
  EXPECT_EQ(e->kind, ExprKind::kLiteral);
  EXPECT_EQ(e->literal, Value(int64_t{42}));
}

TEST(UdfTest, EndToEndInStreamingQuery) {
  RegisterTestUdfs();
  auto env = core::SamzaSqlEnvironment::Make();
  ASSERT_TRUE(workload::SetupPaperSources(*env, 2).ok());
  workload::OrdersGenerator gen(*env, {});
  ASSERT_TRUE(gen.Produce(300).ok());
  core::QueryExecutor executor(env);
  auto submitted = executor.Execute(
      "SELECT STREAM orderId, DOUBLE_IT(units) AS du FROM Orders WHERE "
      "DOUBLE_IT(units) > 150");
  ASSERT_TRUE(submitted.ok()) << submitted.status().ToString();
  ASSERT_TRUE(executor.RunJobsUntilQuiescent().ok());
  auto rows = executor.ReadOutputRows(submitted.value().output_topic).value();
  auto oracle =
      executor.Execute("SELECT orderId, DOUBLE_IT(units) AS du FROM Orders "
                       "WHERE DOUBLE_IT(units) > 150");
  ASSERT_TRUE(oracle.ok());
  ASSERT_EQ(rows.size(), oracle.value().rows.size());
  EXPECT_GT(rows.size(), 0u);
  for (const Row& r : rows) {
    EXPECT_GT(r[1].ToInt64(), 150);
    EXPECT_EQ(r[1].ToInt64() % 2, 0);
  }
}

// --- user-defined aggregates ---

// SUMSQ(x): sum of squares, with serializable state.
class SumSqAccumulator : public UdafAccumulator {
 public:
  void Add(const Value& v) override {
    if (v.is_null()) return;
    double d = v.ToDouble();
    sum_ += d * d;
  }
  Value Result() const override { return Value(sum_); }
  void EncodeTo(BytesWriter& out) const override { out.WriteDouble(sum_); }
  Status DecodeFrom(BytesReader& in) override {
    SQS_ASSIGN_OR_RETURN(s, in.ReadDouble());
    sum_ = s;
    return Status::Ok();
  }

 private:
  double sum_ = 0;
};

void RegisterSumSq() {
  static bool done = [] {
    AggregateUdf udaf;
    udaf.name = "SUMSQ";
    udaf.type_fn = [](const FieldType& arg) -> Result<FieldType> {
      if (arg.kind == TypeKind::kString) {
        return Status::ValidationError("SUMSQ needs a numeric argument");
      }
      return FieldType::Double();
    };
    udaf.factory = [] { return std::make_unique<SumSqAccumulator>(); };
    if (!FunctionRegistry::Instance().RegisterAggregate(std::move(udaf)).ok()) {
      std::abort();
    }
    return true;
  }();
  (void)done;
}

TEST(UdafTest, RegistryRejectsCollisions) {
  RegisterSumSq();
  auto& reg = FunctionRegistry::Instance();
  AggregateUdf dup;
  dup.name = "SUM";  // built-in aggregate
  dup.type_fn = [](const FieldType&) -> Result<FieldType> { return FieldType::Double(); };
  dup.factory = [] { return std::make_unique<SumSqAccumulator>(); };
  EXPECT_EQ(reg.RegisterAggregate(std::move(dup)).code(), ErrorCode::kAlreadyExists);
  AggregateUdf dup2;
  dup2.name = "sumsq";
  dup2.type_fn = [](const FieldType&) -> Result<FieldType> { return FieldType::Double(); };
  dup2.factory = [] { return std::make_unique<SumSqAccumulator>(); };
  EXPECT_EQ(reg.RegisterAggregate(std::move(dup2)).code(), ErrorCode::kAlreadyExists);
}

TEST(UdafTest, AccumulatorStateRoundTrips) {
  RegisterSumSq();
  auto& reg = FunctionRegistry::Instance();
  int32_t id = reg.LookupAggregate("SUMSQ").value();
  auto acc = AnyAccumulator::Make(AggKind::kCount, id).value();
  acc.Add(Value(int64_t{3}));
  acc.Add(Value(int64_t{4}));
  EXPECT_EQ(acc.Result(), Value(25.0));
  BytesWriter writer;
  acc.EncodeTo(writer);
  Bytes bytes = writer.Take();
  BytesReader reader(bytes);
  auto restored = AnyAccumulator::Decode(AggKind::kCount, id, reader).value();
  EXPECT_EQ(restored.Result(), Value(25.0));
}

TEST(UdafTest, BatchGroupByUsesUdaf) {
  RegisterSumSq();
  auto env = core::SamzaSqlEnvironment::Make();
  ASSERT_TRUE(workload::SetupPaperSources(*env, 2).ok());
  workload::OrdersGenerator gen(*env, {});
  ASSERT_TRUE(gen.Produce(50).ok());
  core::QueryExecutor executor(env);
  auto result = executor.Execute(
      "SELECT SUMSQ(units) AS ss, SUM(units) AS s FROM Orders "
      "GROUP BY FLOOR(rowtime TO DAY)");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result.value().rows.size(), 1u);
  double ss = result.value().rows[0][0].as_double();
  int64_t sum = result.value().rows[0][1].as_int64();
  EXPECT_GT(ss, static_cast<double>(sum));  // sum of squares > sum for units > 1
}

TEST(UdafTest, StreamingWindowedUdafMatchesBatch) {
  RegisterSumSq();
  auto env = core::SamzaSqlEnvironment::Make();
  ASSERT_TRUE(workload::SetupPaperSources(*env, 4).ok());
  workload::OrdersGeneratorOptions options;
  options.num_products = 8;
  options.rowtime_step_ms = 400;
  workload::OrdersGenerator gen(*env, options);
  ASSERT_TRUE(gen.Produce(800).ok());
  // Watermark sentinels to close all windows.
  auto schema = env->catalog->GetSource("Orders").value().schema;
  AvroRowSerde serde(schema);
  Producer producer(env->broker, env->clock);
  for (int32_t p = 0; p < 4; ++p) {
    Row row{Value(gen.last_rowtime() + 3'600'000), Value(int32_t{9999}),
            Value(int64_t{-1}), Value(int32_t{0}), Value("s")};
    ASSERT_TRUE(
        producer.SendTo({"Orders", p}, Bytes{}, serde.SerializeToBytes(row)).ok());
  }
  Config defaults;
  defaults.SetInt(cfg::kContainerCount, 2);
  defaults.SetInt(cfg::kCommitEveryMessages, 64);
  core::QueryExecutor executor(env, defaults);
  auto submitted = executor.Execute(
      "SELECT STREAM productId, START(rowtime) AS ws, SUMSQ(units) AS ss "
      "FROM Orders GROUP BY TUMBLE(rowtime, INTERVAL '20' SECOND), productId");
  ASSERT_TRUE(submitted.ok()) << submitted.status().ToString();
  ASSERT_TRUE(executor.RunJobsUntilQuiescent().ok());
  auto rows = executor.ReadOutputRows(submitted.value().output_topic).value();
  auto oracle = executor.Execute(
      "SELECT productId, START(rowtime) AS ws, SUMSQ(units) AS ss "
      "FROM Orders GROUP BY TUMBLE(rowtime, INTERVAL '20' SECOND), productId");
  ASSERT_TRUE(oracle.ok());
  std::multiset<std::string> got, expected;
  for (const Row& r : rows) {
    if (r[0] != Value(int32_t{9999})) got.insert(RowToString(r));
  }
  for (const Row& r : oracle.value().rows) {
    if (r[0] != Value(int32_t{9999})) expected.insert(RowToString(r));
  }
  EXPECT_EQ(got, expected);
  EXPECT_GT(got.size(), 10u);
}

TEST(UdafTest, UdafRejectedWithoutAggregateContext) {
  RegisterSumSq();
  auto resolver = [](const std::string&,
                     const std::string& c) -> Result<std::pair<int, FieldType>> {
    if (c == "units") return std::make_pair(0, FieldType::Int32());
    return Status::NotFound(c);
  };
  auto e = ParseExpression("SUMSQ(units)").value();
  EXPECT_FALSE(ResolveExpr(*e, resolver, false).ok());  // not an agg context
  auto e2 = ParseExpression("SUMSQ(units)").value();
  EXPECT_TRUE(ResolveExpr(*e2, resolver, true).ok());
  EXPECT_EQ(e2->kind, ExprKind::kAggCall);
  EXPECT_EQ(e2->resolved_type.kind, TypeKind::kDouble);
}

}  // namespace
}  // namespace sqs::sql
