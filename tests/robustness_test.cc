// Robustness: the front end must fail cleanly (Status, never a crash or
// hang) on arbitrary garbage, the optimizer must be idempotent, and the
// runtime's at-least-once delivery contract must hold across crashes.
#include <gtest/gtest.h>

#include <random>
#include <set>

#include "log/fault_broker.h"
#include "log/producer.h"
#include "sql/optimizer.h"
#include "sql/parser.h"
#include "sql/planner.h"
#include "sql_test_util.h"
#include "task/runner.h"

namespace sqs::sql {
namespace {

TEST(RobustnessTest, LexerSurvivesRandomBytes) {
  std::mt19937_64 rng(17);
  for (int i = 0; i < 2000; ++i) {
    std::string input;
    size_t len = rng() % 60;
    for (size_t j = 0; j < len; ++j) {
      input += static_cast<char>(32 + rng() % 95);  // printable ASCII
    }
    (void)Lex(input);  // must return, ok or not — never crash
  }
}

TEST(RobustnessTest, ParserSurvivesRandomTokenSoup) {
  static const char* kTokens[] = {
      "SELECT", "STREAM", "FROM",  "WHERE",   "GROUP",  "BY",    "HAVING", "JOIN",
      "ON",     "AND",    "OR",    "NOT",     "(",      ")",     ",",      "*",
      "+",      "-",      "/",     "=",       "<",      ">",     "Orders", "units",
      "42",     "'str'",  "TUMBLE", "INTERVAL", "'1'",  "HOUR",  "OVER",   "AS",
      "CASE",   "WHEN",   "THEN",  "END",     "BETWEEN", "IN",   "IS",     "NULL",
  };
  std::mt19937_64 rng(23);
  for (int i = 0; i < 3000; ++i) {
    std::string input;
    size_t len = 1 + rng() % 14;
    for (size_t j = 0; j < len; ++j) {
      input += kTokens[rng() % (sizeof(kTokens) / sizeof(kTokens[0]))];
      input += ' ';
    }
    (void)ParseStatement(input);  // Status on failure, never a crash
  }
}

TEST(RobustnessTest, PlannerSurvivesParseableGarbage) {
  // Statements that parse but should be rejected (or planned) gracefully.
  auto catalog = testutil::PaperCatalog();
  QueryPlanner planner(catalog);
  const char* queries[] = {
      "SELECT STREAM units + pad FROM Orders",
      "SELECT STREAM SUM(units) FROM Orders",
      "SELECT STREAM * FROM Orders GROUP BY TUMBLE(pad, INTERVAL '1' HOUR)",
      "SELECT STREAM * FROM Orders JOIN Orders ON 1 = 1",
      "SELECT STREAM x.y FROM Orders",
      "SELECT STREAM units FROM Orders HAVING units > 1",
      "SELECT STREAM COUNT(units, units) FROM Orders GROUP BY "
      "TUMBLE(rowtime, INTERVAL '1' HOUR)",
      "SELECT STREAM * FROM Products JOIN Orders ON "
      "Products.productId = Orders.productId",
      "SELECT STREAM GREATEST(units) FROM Orders",
      "SELECT STREAM CASE WHEN units THEN 1 END FROM Orders",
  };
  for (const char* sql : queries) {
    auto stmt = ParseStatement(sql);
    if (!stmt.ok()) continue;  // some are parse errors: fine
    (void)planner.Plan(*stmt.value().select);  // must not crash
  }
}

TEST(RobustnessTest, OptimizerIsIdempotent) {
  auto catalog = testutil::PaperCatalog();
  QueryPlanner planner(catalog);
  const char* queries[] = {
      "SELECT STREAM * FROM Orders WHERE units > 10 + 15 AND productId < 100 - 1",
      "SELECT STREAM rowtime FROM (SELECT rowtime, units AS u FROM Orders) WHERE u > 5",
      "SELECT STREAM o.orderId FROM Orders o JOIN Products p ON "
      "o.productId = p.productId WHERE o.units > 50 AND p.supplierId > 3",
      "SELECT STREAM productId, COUNT(*) FROM Orders "
      "GROUP BY TUMBLE(rowtime, INTERVAL '1' HOUR), productId HAVING COUNT(*) > 1",
  };
  for (const char* sql : queries) {
    auto stmt = ParseStatement(sql).value();
    auto plan = planner.Plan(*stmt.select).value();
    OptimizerStats first;
    plan = Optimize(plan, &first);
    std::string once = plan->ToString();
    OptimizerStats second;
    plan = Optimize(plan, &second);
    EXPECT_EQ(second.Total(), 0) << sql << "\nafter first pass:\n" << once;
    EXPECT_EQ(plan->ToString(), once) << sql;
  }
}

TEST(RobustnessTest, DeepExpressionNesting) {
  // 200 nested parens/operators: recursion depth must be handled.
  std::string expr = "1";
  for (int i = 0; i < 200; ++i) expr = "(" + expr + " + 1)";
  auto parsed = ParseExpression(expr);
  ASSERT_TRUE(parsed.ok());
  auto resolver = [](const std::string&,
                     const std::string& c) -> Result<std::pair<int, FieldType>> {
    return Status::NotFound(c);
  };
  ASSERT_TRUE(ResolveExpr(*parsed.value(), resolver, false).ok());
  EXPECT_EQ(EvalExpr(*parsed.value(), {}), Value(int64_t{201}));
  auto compiled = CompiledExpr::Compile(*parsed.value());
  ASSERT_TRUE(compiled.ok());
  EXPECT_EQ(compiled.value().Eval({}), Value(int64_t{201}));
}

TEST(RobustnessTest, VeryLongSelectList) {
  std::string sql = "SELECT STREAM units";
  for (int i = 0; i < 300; ++i) sql += ", units + " + std::to_string(i) + " AS c" + std::to_string(i);
  sql += " FROM Orders";
  auto catalog = testutil::PaperCatalog();
  QueryPlanner planner(catalog);
  auto stmt = ParseStatement(sql);
  ASSERT_TRUE(stmt.ok());
  auto plan = planner.Plan(*stmt.value().select);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan.value()->schema->num_fields(), 301u);
}

}  // namespace
}  // namespace sqs::sql

// ---------------------------------------------------------------------------
// At-least-once equivalence under crashes (docs/FAULT_TOLERANCE.md): a crash
// between the output flush and the checkpoint write replays the
// already-flushed batch, so raw output contains duplicates — but deduped
// output is exactly the uninterrupted run. (The windowed-SQL variant, where
// dedup is by window key, lives in recovery_test.cc.)
// ---------------------------------------------------------------------------

namespace sqs {
namespace {

// Tags each output with its input coordinates so replayed messages are
// byte-identical to their first delivery (dedup by content is exact).
class AloEchoTask : public StreamTask {
 public:
  Status Process(const IncomingMessage& msg, MessageCollector& collector,
                 TaskCoordinator&) override {
    std::string tagged = FromBytes(msg.message.value) + "@" + msg.origin.topic + ":" +
                         std::to_string(msg.origin.partition) + ":" +
                         std::to_string(msg.offset);
    return collector.SendToPartition("out", msg.origin.partition, msg.message.key,
                                     ToBytes(tagged));
  }
};

TEST(AtLeastOnceTest, CrashBetweenOutputFlushAndCheckpointReplaysDuplicates) {
  TaskFactoryRegistry::Instance().Register(
      "alo-echo", [] { return std::make_unique<AloEchoTask>(); });

  auto inner = std::make_shared<Broker>();
  ASSERT_TRUE(inner->CreateTopic("in", {.num_partitions = 2}).ok());
  ASSERT_TRUE(inner->CreateTopic("out", {.num_partitions = 2}).ok());
  FaultPolicy policy;
  policy.topics = {"__cp_alo"};  // only checkpoint writes can fail
  auto fault = std::make_shared<FaultInjectingBroker>(inner, policy);

  Producer p(fault);
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(p.Send("in", ToBytes("k" + std::to_string(i)),
                       ToBytes("m" + std::to_string(i)))
                    .ok());
  }

  Config c;
  c.Set(cfg::kJobName, "alo-job");
  c.Set(cfg::kTaskInputs, "in");
  c.Set(cfg::kTaskFactory, "alo-echo");
  c.Set(cfg::kCheckpointTopic, "__cp_alo");
  c.SetInt(cfg::kContainerCount, 1);
  c.SetInt(cfg::kCommitEveryMessages, 10);
  JobRunner runner(fault, c);
  ASSERT_TRUE(runner.Start().ok());

  // The first commit's checkpoint append fails (no retries configured), so
  // the container crashes with its outputs already flushed to the broker.
  fault->FailNextAppends(1);
  auto crashed = runner.RunUntilQuiescent();
  ASSERT_FALSE(crashed.ok());
  EXPECT_EQ(crashed.status().code(), ErrorCode::kUnavailable);

  auto read_out = [&] {
    std::vector<std::string> out;
    for (int32_t part = 0; part < 2; ++part) {
      int64_t end = inner->EndOffset({"out", part}).value();
      if (end == 0) continue;
      auto batch = inner->Fetch({"out", part}, 0, static_cast<int32_t>(end)).value();
      for (const auto& m : batch) out.push_back(FromBytes(m.message.value));
    }
    return out;
  };
  size_t flushed_before_crash = read_out().size();
  EXPECT_GE(flushed_before_crash, 10u);  // the whole uncommitted batch

  // Recover (no checkpoint landed → replay from the beginning) and finish.
  ASSERT_TRUE(runner.KillContainer(0).ok());
  ASSERT_TRUE(runner.RestartContainer(0).ok());
  auto finished = runner.RunUntilQuiescent();
  ASSERT_TRUE(finished.ok()) << finished.status().ToString();

  std::vector<std::string> out = read_out();
  // Duplicates: everything flushed before the crash was replayed.
  EXPECT_GE(out.size(), 100u + flushed_before_crash);
  // Equivalence: deduped output is exactly one tag per input message.
  std::set<std::string> deduped(out.begin(), out.end());
  EXPECT_EQ(deduped.size(), 100u);
}

// The exactly-once twin of the test above: same job, same crash between the
// output flush and the checkpoint write, but task.delivery=exactly-once. The
// replayed batch re-sends the same (pid, epoch, seq) stamps, the broker
// drops them as duplicates, and the raw output — no dedup applied — is
// byte-equal to a crash-free run: exactly one tag per input message.
TEST(ExactlyOnceTest, CrashBetweenOutputFlushAndCheckpointDedupsAtBroker) {
  TaskFactoryRegistry::Instance().Register(
      "eo-echo", [] { return std::make_unique<AloEchoTask>(); });

  auto inner = std::make_shared<Broker>();
  ASSERT_TRUE(inner->CreateTopic("in", {.num_partitions = 2}).ok());
  ASSERT_TRUE(inner->CreateTopic("out", {.num_partitions = 2}).ok());
  FaultPolicy policy;
  policy.topics = {"__cp_eo"};  // only checkpoint writes can fail
  auto fault = std::make_shared<FaultInjectingBroker>(inner, policy);

  Producer p(fault);
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(p.Send("in", ToBytes("k" + std::to_string(i)),
                       ToBytes("m" + std::to_string(i)))
                    .ok());
  }

  Config c;
  c.Set(cfg::kJobName, "eo-job");
  c.Set(cfg::kTaskInputs, "in");
  c.Set(cfg::kTaskFactory, "eo-echo");
  c.Set(cfg::kCheckpointTopic, "__cp_eo");
  c.Set(cfg::kTaskDelivery, "exactly-once");
  c.SetInt(cfg::kContainerCount, 1);
  c.SetInt(cfg::kCommitEveryMessages, 10);
  JobRunner runner(fault, c);
  ASSERT_TRUE(runner.Start().ok());

  // The first transactional commit fails, crashing the container with its
  // outputs already flushed — the same crash point as the at-least-once run.
  fault->FailNextAppends(1);
  auto crashed = runner.RunUntilQuiescent();
  ASSERT_FALSE(crashed.ok());
  EXPECT_EQ(crashed.status().code(), ErrorCode::kUnavailable);

  auto read_out = [&] {
    std::vector<std::string> out;
    for (int32_t part = 0; part < 2; ++part) {
      int64_t end = inner->EndOffset({"out", part}).value();
      if (end == 0) continue;
      auto batch = inner->Fetch({"out", part}, 0, static_cast<int32_t>(end)).value();
      for (const auto& m : batch) out.push_back(FromBytes(m.message.value));
    }
    return out;
  };
  size_t flushed_before_crash = read_out().size();
  EXPECT_GE(flushed_before_crash, 10u);

  ASSERT_TRUE(runner.KillContainer(0).ok());
  ASSERT_TRUE(runner.RestartContainer(0).ok());
  auto finished = runner.RunUntilQuiescent();
  ASSERT_TRUE(finished.ok()) << finished.status().ToString();

  std::vector<std::string> out = read_out();
  // No checkpoint landed, so the whole input replays — and every replayed
  // send dedups at the broker. Raw output: exactly 100, zero duplicates.
  EXPECT_EQ(out.size(), 100u);
  std::set<std::string> deduped(out.begin(), out.end());
  EXPECT_EQ(deduped.size(), 100u);
  EXPECT_GE(inner->dups_dropped(), static_cast<int64_t>(flushed_before_crash));

  // Every output record left the idempotent producer with a valid CRC stamp.
  for (int32_t part = 0; part < 2; ++part) {
    auto batch = inner->Fetch({"out", part}, 0, 1000).value();
    for (const auto& m : batch) {
      EXPECT_TRUE(m.message.has_crc);
      EXPECT_TRUE(MessageCrcValid(m.message));
      EXPECT_NE(m.message.producer_id, 0u);
    }
  }
}

}  // namespace
}  // namespace sqs
