#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>

#include "task/api.h"
#include "task/checkpoint.h"
#include "task/container.h"
#include "task/model.h"
#include "task/runner.h"

namespace sqs {
namespace {

Message Msg(const std::string& key, const std::string& value) {
  Message m;
  m.key = ToBytes(key);
  m.value = ToBytes(value);
  return m;
}

// Forwards every message to topic "out", tagging the value with the input
// offset so downstream consumers can deduplicate replays.
class EchoTask : public StreamTask {
 public:
  Status Process(const IncomingMessage& msg, MessageCollector& collector,
                 TaskCoordinator&) override {
    std::string tagged = FromBytes(msg.message.value) + "@" + msg.origin.topic + ":" +
                         std::to_string(msg.origin.partition) + ":" +
                         std::to_string(msg.offset);
    return collector.SendToPartition("out", msg.origin.partition, msg.message.key,
                                     ToBytes(tagged));
  }
};

// Writes each input message into a changelog-backed store keyed by its
// (partition, offset) — an idempotent stateful task.
class StatefulTask : public StreamTask {
 public:
  Status Init(TaskContext& ctx) override {
    store_ = ctx.GetStore("state");
    if (!store_) return Status::StateError("store 'state' not configured");
    return Status::Ok();
  }
  Status Process(const IncomingMessage& msg, MessageCollector&, TaskCoordinator&) override {
    std::string key =
        std::to_string(msg.origin.partition) + ":" + std::to_string(msg.offset);
    store_->Put(ToBytes(key), msg.message.value);
    return Status::Ok();
  }

 private:
  KeyValueStorePtr store_;
};

// Records the order in which topics deliver (for the bootstrap test) into a
// shared log, and counts window firings.
struct Recording {
  std::vector<std::string> topics;
  std::atomic<int> windows{0};
};

class RecordingTask : public StreamTask {
 public:
  explicit RecordingTask(Recording* rec) : rec_(rec) {}
  Status Process(const IncomingMessage& msg, MessageCollector&, TaskCoordinator&) override {
    rec_->topics.push_back(msg.origin.topic);
    return Status::Ok();
  }
  Status Window(MessageCollector&, TaskCoordinator&) override {
    rec_->windows.fetch_add(1);
    return Status::Ok();
  }

 private:
  Recording* rec_;
};

std::vector<std::string> ReadAll(Broker& broker, const std::string& topic) {
  std::vector<std::string> out;
  int32_t nparts = broker.NumPartitions(topic).value();
  for (int32_t p = 0; p < nparts; ++p) {
    int64_t begin = broker.BeginOffset({topic, p}).value();
    int64_t end = broker.EndOffset({topic, p}).value();
    if (begin < end) {
      auto batch = broker.Fetch({topic, p}, begin, static_cast<int32_t>(end - begin)).value();
      for (const auto& m : batch) {
        out.push_back(FromBytes(m.message.value));
      }
    }
  }
  return out;
}

TEST(CheckpointCodecTest, RoundTrip) {
  Checkpoint cp;
  cp[{"orders", 0}] = 17;
  cp[{"orders", 3}] = 42;
  cp[{"products", 0}] = 5;
  auto back = CheckpointManager::DecodeCheckpoint(CheckpointManager::EncodeCheckpoint(cp));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value(), cp);
}

TEST(CheckpointManagerTest, LatestCheckpointWins) {
  auto broker = std::make_shared<Broker>();
  CheckpointManager mgr(broker, "__cp");
  ASSERT_TRUE(mgr.Start().ok());
  ASSERT_TRUE(mgr.WriteCheckpoint("Partition 0", {{{"t", 0}, 5}}).ok());
  ASSERT_TRUE(mgr.WriteCheckpoint("Partition 1", {{{"t", 1}, 9}}).ok());
  ASSERT_TRUE(mgr.WriteCheckpoint("Partition 0", {{{"t", 0}, 8}}).ok());
  auto cp = mgr.ReadLastCheckpoint("Partition 0");
  ASSERT_TRUE(cp.ok());
  EXPECT_EQ(cp.value().at({"t", 0}), 8);
  // Unknown task: empty checkpoint, not an error.
  EXPECT_TRUE(mgr.ReadLastCheckpoint("Partition 99").value().empty());
}

TEST(JobModelTest, TasksGroupedByPartitionAcrossStreams) {
  auto broker = std::make_shared<Broker>();
  ASSERT_TRUE(broker->CreateTopic("a", {.num_partitions = 4}).ok());
  ASSERT_TRUE(broker->CreateTopic("b", {.num_partitions = 4}).ok());
  Config config;
  config.Set(cfg::kTaskInputs, "a,b");
  config.SetInt(cfg::kContainerCount, 2);
  auto model = JobCoordinator::BuildJobModel(config, *broker);
  ASSERT_TRUE(model.ok()) << model.status().ToString();
  EXPECT_EQ(model.value().containers.size(), 2u);
  EXPECT_EQ(model.value().TaskCount(), 4);
  // Task for partition 2 consumes a[2] and b[2].
  const TaskModel& t2 = model.value().containers[0].tasks[1];  // round robin: 0,2 in c0
  EXPECT_EQ(t2.partition_id, 2);
  ASSERT_EQ(t2.input_partitions.size(), 2u);
  EXPECT_EQ(t2.input_partitions[0], (StreamPartition{"a", 2}));
  EXPECT_EQ(t2.input_partitions[1], (StreamPartition{"b", 2}));
}

TEST(JobModelTest, RejectsNonCoPartitionedInputs) {
  auto broker = std::make_shared<Broker>();
  ASSERT_TRUE(broker->CreateTopic("a", {.num_partitions = 4}).ok());
  ASSERT_TRUE(broker->CreateTopic("b", {.num_partitions = 8}).ok());
  Config config;
  config.Set(cfg::kTaskInputs, "a,b");
  EXPECT_FALSE(JobCoordinator::BuildJobModel(config, *broker).ok());
}

TEST(JobModelTest, ContainerCountClampedToPartitions) {
  auto broker = std::make_shared<Broker>();
  ASSERT_TRUE(broker->CreateTopic("a", {.num_partitions = 2}).ok());
  Config config;
  config.Set(cfg::kTaskInputs, "a");
  config.SetInt(cfg::kContainerCount, 16);
  auto model = JobCoordinator::BuildJobModel(config, *broker);
  ASSERT_TRUE(model.ok());
  EXPECT_EQ(model.value().containers.size(), 2u);
}

TEST(JobModelTest, BootstrapMustBeAnInput) {
  auto broker = std::make_shared<Broker>();
  ASSERT_TRUE(broker->CreateTopic("a", {.num_partitions = 2}).ok());
  Config config;
  config.Set(cfg::kTaskInputs, "a");
  config.Set(cfg::kBootstrapInputs, "zz");
  EXPECT_FALSE(JobCoordinator::BuildJobModel(config, *broker).ok());
}

class RunnerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    broker_ = std::make_shared<Broker>();
    ASSERT_TRUE(broker_->CreateTopic("in", {.num_partitions = 4}).ok());
    ASSERT_TRUE(broker_->CreateTopic("out", {.num_partitions = 4}).ok());
  }

  Config BaseConfig(const std::string& factory) {
    Config c;
    c.Set(cfg::kJobName, "test-job");
    c.Set(cfg::kTaskInputs, "in");
    c.Set(cfg::kTaskFactory, factory);
    c.SetInt(cfg::kContainerCount, 2);
    return c;
  }

  void Produce(int n) {
    Producer p(broker_);
    for (int i = 0; i < n; ++i) {
      ASSERT_TRUE(p.Send("in", ToBytes("k" + std::to_string(i)),
                         ToBytes("m" + std::to_string(i)))
                      .ok());
    }
  }

  BrokerPtr broker_;
};

TEST_F(RunnerTest, ProcessesAllInputOnce) {
  TaskFactoryRegistry::Instance().Register(
      "echo", [] { return std::make_unique<EchoTask>(); });
  Produce(100);
  JobRunner runner(broker_, BaseConfig("echo"));
  ASSERT_TRUE(runner.Start().ok());
  auto n = runner.RunUntilQuiescent();
  ASSERT_TRUE(n.ok()) << n.status().ToString();
  EXPECT_EQ(n.value(), 100);
  EXPECT_EQ(ReadAll(*broker_, "out").size(), 100u);
  ASSERT_TRUE(runner.Stop().ok());
}

TEST_F(RunnerTest, PicksUpLateInput) {
  TaskFactoryRegistry::Instance().Register(
      "echo2", [] { return std::make_unique<EchoTask>(); });
  Produce(10);
  JobRunner runner(broker_, BaseConfig("echo2"));
  ASSERT_TRUE(runner.Start().ok());
  EXPECT_EQ(runner.RunUntilQuiescent().value(), 10);
  Produce(5);
  EXPECT_EQ(runner.RunUntilQuiescent().value(), 5);
  EXPECT_EQ(runner.TotalProcessed(), 15);
}

TEST_F(RunnerTest, OutputPreservesInputPartition) {
  TaskFactoryRegistry::Instance().Register(
      "echo3", [] { return std::make_unique<EchoTask>(); });
  Produce(64);
  JobRunner runner(broker_, BaseConfig("echo3"));
  ASSERT_TRUE(runner.Start().ok());
  ASSERT_TRUE(runner.RunUntilQuiescent().ok());
  for (int p = 0; p < 4; ++p) {
    EXPECT_EQ(broker_->EndOffset({"out", p}).value(),
              broker_->EndOffset({"in", p}).value());
  }
}

TEST_F(RunnerTest, MissingFactoryFailsStart) {
  JobRunner runner(broker_, BaseConfig("no-such-factory"));
  EXPECT_FALSE(runner.Start().ok());
}

TEST_F(RunnerTest, KillRestartReplayIsDeterministicAfterDedup) {
  TaskFactoryRegistry::Instance().Register(
      "echo4", [] { return std::make_unique<EchoTask>(); });
  Produce(200);

  // Reference: uninterrupted run.
  std::set<std::string> reference;
  {
    auto broker2 = std::make_shared<Broker>();
    ASSERT_TRUE(broker2->CreateTopic("in", {.num_partitions = 4}).ok());
    ASSERT_TRUE(broker2->CreateTopic("out", {.num_partitions = 4}).ok());
    Producer p(broker2);
    for (int i = 0; i < 200; ++i) {
      ASSERT_TRUE(p.Send("in", ToBytes("k" + std::to_string(i)),
                         ToBytes("m" + std::to_string(i)))
                      .ok());
    }
    Config c;
    c.Set(cfg::kJobName, "test-job");
    c.Set(cfg::kTaskInputs, "in");
    c.Set(cfg::kTaskFactory, "echo4");
    c.SetInt(cfg::kContainerCount, 2);
    JobRunner runner(broker2, c);
    ASSERT_TRUE(runner.Start().ok());
    ASSERT_TRUE(runner.RunUntilQuiescent().ok());
    for (const auto& s : ReadAll(*broker2, "out")) reference.insert(s);
  }

  // Faulty run: process a little, kill container 0 (uncommitted work is
  // replayed after restart), finish.
  Config c = BaseConfig("echo4");
  c.SetInt(cfg::kCommitEveryMessages, 10);
  JobRunner runner(broker_, c);
  ASSERT_TRUE(runner.Start().ok());
  ASSERT_TRUE(runner.container(0)->RunUntilCaughtUp(37).ok());
  ASSERT_TRUE(runner.KillContainer(0).ok());
  ASSERT_TRUE(runner.RestartContainer(0).ok());
  ASSERT_TRUE(runner.RunUntilQuiescent().ok());

  auto out = ReadAll(*broker_, "out");
  EXPECT_GE(out.size(), 200u);  // at-least-once: duplicates allowed
  std::set<std::string> deduped(out.begin(), out.end());
  EXPECT_EQ(deduped, reference);  // but identical content after dedup
}

TEST_F(RunnerTest, StatefulStoreSurvivesKillRestart) {
  TaskFactoryRegistry::Instance().Register(
      "stateful", [] { return std::make_unique<StatefulTask>(); });
  Produce(120);
  Config c = BaseConfig("stateful");
  c.Set("stores.state.changelog", "state-changelog");
  c.SetInt(cfg::kCommitEveryMessages, 25);
  JobRunner runner(broker_, c);
  ASSERT_TRUE(runner.Start().ok());
  ASSERT_TRUE(runner.container(0)->RunUntilCaughtUp(41).ok());
  ASSERT_TRUE(runner.KillContainer(0).ok());
  ASSERT_TRUE(runner.RestartContainer(0).ok());
  ASSERT_TRUE(runner.RunUntilQuiescent().ok());
  ASSERT_TRUE(runner.Stop().ok());

  // Every input message (partition:offset) must be present exactly once in
  // the changelog-materialized state.
  ChangelogBackedStore verify(std::make_shared<InMemoryStore>(), broker_,
                              {"state-changelog", 0});
  size_t total = 0;
  for (int p = 0; p < 4; ++p) {
    ChangelogBackedStore part(std::make_shared<InMemoryStore>(), broker_,
                              {"state-changelog", p});
    ASSERT_TRUE(part.Restore().ok());
    int64_t in_end = broker_->EndOffset({"in", p}).value();
    EXPECT_EQ(part.Size(), static_cast<size_t>(in_end));
    for (int64_t o = 0; o < in_end; ++o) {
      EXPECT_TRUE(
          part.Get(ToBytes(std::to_string(p) + ":" + std::to_string(o))).has_value());
    }
    total += part.Size();
  }
  EXPECT_EQ(total, 120u);
}

TEST_F(RunnerTest, BootstrapStreamFullyDrainedFirst) {
  ASSERT_TRUE(broker_->CreateTopic("table", {.num_partitions = 4}).ok());
  auto rec = std::make_shared<Recording>();
  TaskFactoryRegistry::Instance().Register(
      "recording", [rec] { return std::make_unique<RecordingTask>(rec.get()); });

  Producer p(broker_);
  // Interleave table and stream writes.
  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE(p.Send("in", ToBytes("k" + std::to_string(i)), ToBytes("s")).ok());
    ASSERT_TRUE(p.Send("table", ToBytes("k" + std::to_string(i)), ToBytes("t")).ok());
  }

  Config c = BaseConfig("recording");
  c.Set(cfg::kTaskInputs, "in,table");
  c.Set(cfg::kBootstrapInputs, "table");
  c.SetInt(cfg::kContainerCount, 1);  // single container: one global order
  JobRunner runner(broker_, c);
  ASSERT_TRUE(runner.Start().ok());
  ASSERT_TRUE(runner.RunUntilQuiescent().ok());

  ASSERT_EQ(rec->topics.size(), 60u);
  // All "table" deliveries strictly precede all "in" deliveries.
  size_t first_stream = 0;
  while (first_stream < rec->topics.size() && rec->topics[first_stream] == "table") {
    ++first_stream;
  }
  EXPECT_EQ(first_stream, 30u);
  for (size_t i = first_stream; i < rec->topics.size(); ++i) {
    EXPECT_EQ(rec->topics[i], "in");
  }
}

TEST_F(RunnerTest, WindowTimerFiresOnClock) {
  auto rec = std::make_shared<Recording>();
  TaskFactoryRegistry::Instance().Register(
      "windowed", [rec] { return std::make_unique<RecordingTask>(rec.get()); });
  auto clock = std::make_shared<ManualClock>(1000);
  Config c = BaseConfig("windowed");
  c.SetInt(cfg::kWindowMs, 100);
  c.SetInt(cfg::kContainerCount, 1);
  JobRunner runner(broker_, c, clock);
  ASSERT_TRUE(runner.Start().ok());
  Produce(4);
  ASSERT_TRUE(runner.RunUntilQuiescent().ok());
  EXPECT_EQ(rec->windows.load(), 0);  // clock hasn't advanced
  clock->Advance(150);
  Produce(1);
  ASSERT_TRUE(runner.RunUntilQuiescent().ok());
  // One firing invokes Window() on each of the container's 4 tasks.
  EXPECT_EQ(rec->windows.load(), 4);
  clock->Advance(350);
  Produce(1);
  ASSERT_TRUE(runner.RunUntilQuiescent().ok());
  EXPECT_EQ(rec->windows.load(), 8);
}

TEST_F(RunnerTest, ContainerMetricsExposedViaSharedRegistry) {
  TaskFactoryRegistry::Instance().Register(
      "metrics-echo", [] { return std::make_unique<EchoTask>(); });
  Produce(100);
  Config c = BaseConfig("metrics-echo");
  c.SetInt(cfg::kCommitEveryMessages, 10);
  JobRunner runner(broker_, c);
  ASSERT_TRUE(runner.Start().ok());
  ASSERT_TRUE(runner.RunUntilQuiescent().ok());
  ASSERT_TRUE(runner.Stop().ok());

  MetricsSnapshot snap = runner.metrics_registry()->Snapshot();
  EXPECT_EQ(snap.counters["test-job.container0.processed"] +
                snap.counters["test-job.container1.processed"],
            100);
  EXPECT_GT(snap.counters["test-job.container0.commits"], 0);
  EXPECT_GT(snap.counters["test-job.container0.checkpoint_writes"], 0);
  EXPECT_GT(snap.counters["test-job.container0.checkpoint_bytes"], 0);
  EXPECT_GT(snap.timers["test-job.container0.busy_ns"], 0);
  // Batch dispatch records one latency sample per run (a contiguous slice of
  // messages for one task), not one per message — see docs/METRICS.md.
  int64_t latency_samples =
      snap.histograms["test-job.container0.process_latency_ns"].count +
      snap.histograms["test-job.container1.process_latency_ns"].count;
  EXPECT_GT(latency_samples, 0);
  EXPECT_LE(latency_samples, 100);
  // Quiescent: every per-partition consumer lag gauge reads zero.
  bool saw_lag_gauge = false;
  for (const auto& [name, value] : snap.gauges) {
    if (name.find(".lag.in.") != std::string::npos) {
      saw_lag_gauge = true;
      EXPECT_EQ(value, 0) << name;
    }
  }
  EXPECT_TRUE(saw_lag_gauge);
}

TEST_F(RunnerTest, ChangelogWriteVolumeCounted) {
  TaskFactoryRegistry::Instance().Register(
      "metrics-stateful", [] { return std::make_unique<StatefulTask>(); });
  Produce(40);
  Config c = BaseConfig("metrics-stateful");
  c.Set("stores.state.changelog", "state-changelog-metrics");
  JobRunner runner(broker_, c);
  ASSERT_TRUE(runner.Start().ok());
  ASSERT_TRUE(runner.RunUntilQuiescent().ok());
  MetricsSnapshot snap = runner.metrics_registry()->Snapshot();
  int64_t writes = 0, bytes = 0;
  for (const auto& [name, value] : snap.counters) {
    if (name.find(".store.state.changelog_writes") != std::string::npos) writes += value;
    if (name.find(".store.state.changelog_bytes") != std::string::npos) bytes += value;
  }
  EXPECT_EQ(writes, 40);  // one changelog append per input message
  EXPECT_GT(bytes, 0);
}

TEST_F(RunnerTest, ReporterEmitsJsonLinesOnInterval) {
  TaskFactoryRegistry::Instance().Register(
      "metrics-reporter-echo", [] { return std::make_unique<EchoTask>(); });
  Produce(20);
  auto clock = std::make_shared<ManualClock>(1000);
  Config c = BaseConfig("metrics-reporter-echo");
  c.SetInt(cfg::kContainerCount, 1);
  c.SetInt(cfg::kMetricsReporterIntervalMs, 100);
  const std::string path = "reporter_test_metrics.jsonl";
  std::remove(path.c_str());
  c.Set(cfg::kMetricsReporterPath, path);
  JobRunner runner(broker_, c, clock);
  ASSERT_TRUE(runner.Start().ok());
  ASSERT_TRUE(runner.RunUntilQuiescent().ok());
  {
    std::ifstream in(path);
    std::stringstream contents;
    contents << in.rdbuf();
    EXPECT_TRUE(contents.str().empty());  // interval has not elapsed yet
  }
  clock->Advance(150);
  Produce(1);
  ASSERT_TRUE(runner.RunUntilQuiescent().ok());
  ASSERT_TRUE(runner.Stop().ok());
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream contents;
  contents << in.rdbuf();
  EXPECT_NE(contents.str().find("\"name\":\"test-job.container0.processed\""),
            std::string::npos);
  EXPECT_NE(contents.str().find("\"type\":\"histogram\""), std::string::npos);
  std::remove(path.c_str());
}

TEST_F(RunnerTest, ThreadedRunProcessesEverything) {
  TaskFactoryRegistry::Instance().Register(
      "echo5", [] { return std::make_unique<EchoTask>(); });
  Produce(500);
  JobRunner runner(broker_, BaseConfig("echo5"));
  ASSERT_TRUE(runner.Start().ok());
  auto n = runner.RunThreadedUntilQuiescent();
  ASSERT_TRUE(n.ok()) << n.status().ToString();
  EXPECT_EQ(ReadAll(*broker_, "out").size(), 500u);
}

TEST_F(RunnerTest, ShutdownRequestStopsProcessing) {
  class ShutdownTask : public StreamTask {
   public:
    Status Process(const IncomingMessage&, MessageCollector&,
                   TaskCoordinator& coord) override {
      if (++count_ == 5) coord.RequestShutdown();
      return Status::Ok();
    }
    int count_ = 0;
  };
  TaskFactoryRegistry::Instance().Register(
      "shutdown", [] { return std::make_unique<ShutdownTask>(); });
  Produce(100);
  Config c = BaseConfig("shutdown");
  c.SetInt(cfg::kContainerCount, 1);
  JobRunner runner(broker_, c);
  ASSERT_TRUE(runner.Start().ok());
  ASSERT_TRUE(runner.container(0)->RunUntilCaughtUp().ok());
  EXPECT_TRUE(runner.container(0)->ShutdownRequested());
  EXPECT_LT(runner.TotalProcessed(), 100);
}

}  // namespace
}  // namespace sqs
