// Property sweep: for a broad set of queries, the streaming execution over
// randomized data must equal the reference (stream-history-as-table)
// evaluation — the paper's central semantics claim, parameterized.
// Also: fault tolerance of the stateful aggregate operator.
#include <gtest/gtest.h>

#include <set>

#include "core/executor.h"
#include "workload/generators.h"

namespace sqs::core {
namespace {

struct QueryCase {
  const char* name;
  const char* select_body;  // appended after SELECT [STREAM]
  int64_t orders = 1000;
  bool needs_products = false;
};

class EquivalenceSweep : public ::testing::TestWithParam<QueryCase> {};

TEST_P(EquivalenceSweep, StreamingEqualsBatch) {
  const QueryCase& qc = GetParam();
  auto env = SamzaSqlEnvironment::Make();
  ASSERT_TRUE(workload::SetupPaperSources(*env, 4).ok());
  workload::OrdersGeneratorOptions options;
  options.num_products = 15;
  options.seed = 1234;
  workload::OrdersGenerator gen(*env, options);
  ASSERT_TRUE(gen.Produce(qc.orders).ok());
  if (qc.needs_products) {
    ASSERT_TRUE(workload::ProduceProducts(*env, 15).ok());
  }

  Config defaults;
  defaults.SetInt(cfg::kContainerCount, 3);
  defaults.SetInt(cfg::kCommitEveryMessages, 64);
  QueryExecutor executor(env, defaults);

  auto submitted = executor.Execute(std::string("SELECT STREAM ") + qc.select_body);
  ASSERT_TRUE(submitted.ok()) << submitted.status().ToString();
  ASSERT_TRUE(executor.RunJobsUntilQuiescent().ok());
  auto rows = executor.ReadOutputRows(submitted.value().output_topic);
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();

  auto oracle = executor.Execute(std::string("SELECT ") + qc.select_body);
  ASSERT_TRUE(oracle.ok()) << oracle.status().ToString();

  std::multiset<std::string> got, expected;
  for (const Row& r : rows.value()) got.insert(RowToString(r));
  for (const Row& r : oracle.value().rows) expected.insert(RowToString(r));
  EXPECT_EQ(got, expected) << qc.select_body;
  EXPECT_FALSE(got.empty()) << "query produced nothing: " << qc.select_body;
}

INSTANTIATE_TEST_SUITE_P(
    Queries, EquivalenceSweep,
    ::testing::Values(
        QueryCase{"star", "* FROM Orders"},
        QueryCase{"filter_simple", "* FROM Orders WHERE units > 50"},
        QueryCase{"filter_compound",
                  "orderId FROM Orders WHERE units BETWEEN 20 AND 60 AND "
                  "productId IN (1, 3, 5) OR units = 99"},
        QueryCase{"filter_string", "orderId FROM Orders WHERE pad IS NOT NULL"},
        QueryCase{"project_arith",
                  "orderId, units * productId + 1 AS score, -units AS neg FROM Orders"},
        QueryCase{"project_case",
                  "orderId, CASE WHEN units > 66 THEN 'hi' WHEN units > 33 THEN 'mid' "
                  "ELSE 'lo' END AS bucket FROM Orders"},
        QueryCase{"project_funcs",
                  "orderId, GREATEST(units, 50) AS g, MOD(units, 7) AS m, "
                  "CAST(units AS DOUBLE) / 4 AS q FROM Orders"},
        QueryCase{"project_strings",
                  "orderId, UPPER(pad) AS up, CHAR_LENGTH(pad) AS len, "
                  "SUBSTRING(pad, 1, 4) AS head FROM Orders"},
        QueryCase{"floor_rowtime",
                  "orderId, FLOOR(rowtime TO SECOND) AS sec FROM Orders", 400},
        QueryCase{"subquery",
                  "big FROM (SELECT orderId AS big, units AS u FROM Orders) "
                  "WHERE u > 75"},
        QueryCase{"join_basic",
                  "Orders.orderId, Products.name FROM Orders JOIN Products ON "
                  "Orders.productId = Products.productId",
                  800, true},
        QueryCase{"join_filtered",
                  "Orders.orderId, Products.supplierId FROM Orders JOIN Products ON "
                  "Orders.productId = Products.productId "
                  "WHERE Orders.units > 40 AND Products.supplierId > 10",
                  800, true},
        QueryCase{"join_projected_expr",
                  "Orders.orderId, Orders.units + Products.supplierId AS blend "
                  "FROM Orders JOIN Products ON Orders.productId = Products.productId",
                  600, true},
        QueryCase{"window_sum",
                  "orderId, SUM(units) OVER (PARTITION BY productId ORDER BY rowtime "
                  "RANGE INTERVAL '2' SECOND PRECEDING) AS s FROM Orders",
                  600},
        QueryCase{"window_multi",
                  "orderId, "
                  "COUNT(*) OVER (PARTITION BY productId ORDER BY rowtime RANGE "
                  "INTERVAL '1' SECOND PRECEDING) AS c, "
                  "MAX(units) OVER (PARTITION BY productId ORDER BY rowtime RANGE "
                  "INTERVAL '3' SECOND PRECEDING) AS m FROM Orders",
                  500}),
    [](const ::testing::TestParamInfo<QueryCase>& info) { return info.param.name; });

TEST(AggregateFaultToleranceTest, TumblingAggregateSurvivesKillRestart) {
  // Stateful GROUP BY window aggregate: kill a container mid-stream; the
  // restarted container must restore window state + watermark from the
  // changelog and finish with the same per-window results.
  auto run = [](bool inject_failure) -> std::set<std::string> {
    auto env = SamzaSqlEnvironment::Make();
    if (!workload::SetupPaperSources(*env, 4).ok()) std::abort();
    workload::OrdersGeneratorOptions options;
    options.num_products = 8;
    options.rowtime_step_ms = 200;
    workload::OrdersGenerator gen(*env, options);
    if (!gen.Produce(1200).ok()) std::abort();
    // Sentinels close all windows.
    auto schema = env->catalog->GetSource("Orders").value().schema;
    AvroRowSerde serde(schema);
    Producer producer(env->broker, env->clock);
    for (int32_t p = 0; p < 4; ++p) {
      Row row{Value(gen.last_rowtime() + 3'600'000), Value(int32_t{9999}),
              Value(int64_t{-1}), Value(int32_t{0}), Value("sentinel")};
      if (!producer.SendTo({"Orders", p}, Bytes{}, serde.SerializeToBytes(row)).ok()) {
        std::abort();
      }
    }

    Config defaults;
    defaults.SetInt(cfg::kContainerCount, 2);
    defaults.SetInt(cfg::kCommitEveryMessages, 40);
    QueryExecutor executor(env, defaults);
    auto submitted = executor.Execute(
        "SELECT STREAM productId, START(rowtime) AS ws, COUNT(*) AS c, "
        "SUM(units) AS su FROM Orders "
        "GROUP BY TUMBLE(rowtime, INTERVAL '10' SECOND), productId");
    if (!submitted.ok()) std::abort();
    if (inject_failure) {
      JobRunner* job = executor.job(submitted.value().job_index);
      if (!job->container(0)->RunUntilCaughtUp(350).ok()) std::abort();
      if (!job->KillContainer(0).ok()) std::abort();
      if (!job->RestartContainer(0).ok()) std::abort();
    }
    if (!executor.RunJobsUntilQuiescent().ok()) std::abort();
    auto rows = executor.ReadOutputRows(submitted.value().output_topic);
    if (!rows.ok()) std::abort();
    std::set<std::string> distinct;
    for (const Row& r : rows.value()) {
      if (r[0] == Value(int32_t{9999})) continue;
      distinct.insert(RowToString(r));
    }
    return distinct;
  };

  std::set<std::string> clean = run(false);
  std::set<std::string> faulty = run(true);
  EXPECT_EQ(clean, faulty);
  EXPECT_GT(clean.size(), 20u);
}

}  // namespace
}  // namespace sqs::core
