#include <gtest/gtest.h>

#include <random>
#include <set>

#include "sql/batch_eval.h"
#include "sql/optimizer.h"
#include "sql/parser.h"
#include "sql/planner.h"
#include "sql_test_util.h"

namespace sqs::sql {
namespace {

using testutil::PaperCatalog;

class PlannerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    catalog_ = PaperCatalog();
    planner_ = std::make_unique<QueryPlanner>(catalog_);
  }

  Result<LogicalNodePtr> Plan(const std::string& sql) {
    auto stmt = ParseStatement(sql);
    if (!stmt.ok()) return stmt.status();
    if (!stmt.value().select) return Status::InvalidArgument("not a select");
    return planner_->Plan(*stmt.value().select);
  }

  LogicalNodePtr MustPlan(const std::string& sql) {
    auto plan = Plan(sql);
    if (!plan.ok()) {
      ADD_FAILURE() << "plan failed: " << plan.status().ToString() << "\n  " << sql;
      return nullptr;
    }
    return plan.value();
  }

  CatalogPtr catalog_;
  std::unique_ptr<QueryPlanner> planner_;
};

TEST_F(PlannerTest, SelectStarPlansScanProject) {
  auto plan = MustPlan("SELECT STREAM * FROM Orders");
  ASSERT_TRUE(plan);
  EXPECT_EQ(plan->kind, LogicalKind::kProject);
  EXPECT_EQ(plan->inputs[0]->kind, LogicalKind::kScan);
  EXPECT_EQ(plan->schema->num_fields(), 5u);
  EXPECT_TRUE(plan->is_stream);
  EXPECT_EQ(plan->rowtime_index, 0);
}

TEST_F(PlannerTest, FilterQueryShape) {
  auto plan = MustPlan(
      "SELECT STREAM rowtime, productId, units FROM Orders WHERE units > 25");
  ASSERT_TRUE(plan);
  ASSERT_EQ(plan->kind, LogicalKind::kProject);
  ASSERT_EQ(plan->inputs[0]->kind, LogicalKind::kFilter);
  EXPECT_EQ(plan->inputs[0]->predicate->ToString(), "($3 > 25)");
  EXPECT_EQ(plan->schema->field(0).name, "rowtime");
  EXPECT_EQ(plan->schema->field(2).name, "units");
  EXPECT_EQ(plan->rowtime_index, 0);
}

TEST_F(PlannerTest, WithoutStreamKeywordPlanIsBatch) {
  auto plan = MustPlan("SELECT * FROM Orders WHERE units > 25");
  ASSERT_TRUE(plan);
  EXPECT_FALSE(plan->is_stream);
}

TEST_F(PlannerTest, UnknownSourceFails) {
  auto plan = Plan("SELECT STREAM * FROM Nope");
  EXPECT_EQ(plan.status().code(), ErrorCode::kNotFound);
}

TEST_F(PlannerTest, UnknownColumnFails) {
  EXPECT_FALSE(Plan("SELECT STREAM bogus FROM Orders").ok());
  EXPECT_FALSE(Plan("SELECT STREAM rowtime FROM Orders WHERE bogus > 1").ok());
}

TEST_F(PlannerTest, TypeErrorsRejected) {
  EXPECT_FALSE(Plan("SELECT STREAM pad + 1 FROM Orders").ok());
  EXPECT_FALSE(Plan("SELECT STREAM * FROM Orders WHERE pad > units").ok());
  EXPECT_FALSE(Plan("SELECT STREAM * FROM Orders WHERE units + 1").ok());
}

TEST_F(PlannerTest, StreamKeywordOnPureRelationFails) {
  auto plan = Plan("SELECT STREAM * FROM Products");
  ASSERT_FALSE(plan.ok());
  EXPECT_NE(plan.status().message().find("stream source"), std::string::npos);
}

TEST_F(PlannerTest, AggregateWithoutWindowOnStreamFails) {
  auto plan = Plan("SELECT STREAM productId, COUNT(*) FROM Orders GROUP BY productId");
  ASSERT_FALSE(plan.ok());
  EXPECT_NE(plan.status().message().find("window"), std::string::npos);
}

TEST_F(PlannerTest, AggregateWithoutWindowOnRelationIsFine) {
  auto plan = MustPlan("SELECT supplierId, COUNT(*) FROM Products GROUP BY supplierId");
  ASSERT_TRUE(plan);
  ASSERT_EQ(plan->inputs[0]->kind, LogicalKind::kAggregate);
  EXPECT_EQ(plan->inputs[0]->group_window.type, GroupWindowSpec::Type::kNone);
}

TEST_F(PlannerTest, TumbleAggregateShape) {
  auto plan = MustPlan(
      "SELECT STREAM START(rowtime), COUNT(*) FROM Orders "
      "GROUP BY TUMBLE(rowtime, INTERVAL '1' HOUR)");
  ASSERT_TRUE(plan);
  ASSERT_EQ(plan->kind, LogicalKind::kProject);
  const LogicalNode& agg = *plan->inputs[0];
  ASSERT_EQ(agg.kind, LogicalKind::kAggregate);
  EXPECT_EQ(agg.group_window.type, GroupWindowSpec::Type::kTumble);
  EXPECT_EQ(agg.group_window.emit_ms, 3600000);
  EXPECT_EQ(agg.group_window.retain_ms, 3600000);
  EXPECT_EQ(agg.group_window.ts_index, 0);
  ASSERT_EQ(agg.aggs.size(), 1u);
  EXPECT_EQ(agg.aggs[0].kind, AggKind::kCount);
  // Output: [window_start, window_end, count]; project selects start + count.
  EXPECT_EQ(agg.schema->num_fields(), 3u);
}

TEST_F(PlannerTest, HopAggregateShape) {
  auto plan = MustPlan(
      "SELECT STREAM START(rowtime), END(rowtime), COUNT(*) FROM Orders "
      "GROUP BY HOP(rowtime, INTERVAL '30' MINUTE, INTERVAL '2' HOUR)");
  ASSERT_TRUE(plan);
  const LogicalNode& agg = *plan->inputs[0];
  EXPECT_EQ(agg.group_window.type, GroupWindowSpec::Type::kHop);
  EXPECT_EQ(agg.group_window.emit_ms, 1800000);
  EXPECT_EQ(agg.group_window.retain_ms, 7200000);
}

TEST_F(PlannerTest, FloorGroupByBecomesTumble) {
  auto plan = MustPlan(
      "SELECT STREAM FLOOR(rowtime TO HOUR), productId, COUNT(*), SUM(units) "
      "FROM Orders GROUP BY FLOOR(rowtime TO HOUR), productId");
  ASSERT_TRUE(plan);
  const LogicalNode& agg = *plan->inputs[0];
  ASSERT_EQ(agg.kind, LogicalKind::kAggregate);
  EXPECT_EQ(agg.group_window.type, GroupWindowSpec::Type::kTumble);
  EXPECT_EQ(agg.group_window.emit_ms, 3600000);
  ASSERT_EQ(agg.group_exprs.size(), 1u);  // productId (window handled apart)
  ASSERT_EQ(agg.aggs.size(), 2u);
  EXPECT_EQ(agg.aggs[0].kind, AggKind::kCount);
  EXPECT_EQ(agg.aggs[1].kind, AggKind::kSum);
}

TEST_F(PlannerTest, NonGroupedColumnInSelectFails) {
  auto plan = Plan(
      "SELECT STREAM orderId, COUNT(*) FROM Orders "
      "GROUP BY TUMBLE(rowtime, INTERVAL '1' HOUR)");
  ASSERT_FALSE(plan.ok());
  EXPECT_NE(plan.status().message().find("GROUP BY"), std::string::npos);
}

TEST_F(PlannerTest, HavingBecomesFilterOverAggregate) {
  auto plan = MustPlan(
      "SELECT STREAM productId, COUNT(*) AS c FROM Orders "
      "GROUP BY TUMBLE(rowtime, INTERVAL '1' HOUR), productId HAVING COUNT(*) > 2");
  ASSERT_TRUE(plan);
  ASSERT_EQ(plan->kind, LogicalKind::kProject);
  ASSERT_EQ(plan->inputs[0]->kind, LogicalKind::kFilter);
  EXPECT_EQ(plan->inputs[0]->inputs[0]->kind, LogicalKind::kAggregate);
}

TEST_F(PlannerTest, HavingWithoutGroupByFails) {
  EXPECT_FALSE(Plan("SELECT STREAM * FROM Orders HAVING units > 2").ok());
}

TEST_F(PlannerTest, AggregateInWhereFails) {
  EXPECT_FALSE(
      Plan("SELECT STREAM * FROM Orders WHERE COUNT(*) > 2").ok());
}

TEST_F(PlannerTest, SlidingWindowShape) {
  auto plan = MustPlan(
      "SELECT STREAM rowtime, productId, units, SUM(units) OVER "
      "(PARTITION BY productId ORDER BY rowtime RANGE INTERVAL '5' MINUTE PRECEDING) "
      "AS unitsLastFiveMinutes FROM Orders");
  ASSERT_TRUE(plan);
  ASSERT_EQ(plan->kind, LogicalKind::kProject);
  const LogicalNode& win = *plan->inputs[0];
  ASSERT_EQ(win.kind, LogicalKind::kSlidingWindow);
  ASSERT_EQ(win.window_calls.size(), 1u);
  EXPECT_EQ(win.window_calls[0].kind, AggKind::kSum);
  EXPECT_TRUE(win.window_calls[0].range_based);
  EXPECT_EQ(win.window_calls[0].preceding_ms, 300000);
  EXPECT_EQ(win.window_calls[0].ts_index, 0);
  EXPECT_EQ(plan->schema->field(3).name, "unitsLastFiveMinutes");
}

TEST_F(PlannerTest, MultipleWindowCallsShareNode) {
  auto plan = MustPlan(
      "SELECT STREAM units, "
      "SUM(units) OVER (PARTITION BY productId ORDER BY rowtime RANGE INTERVAL '5' "
      "MINUTE PRECEDING) AS s5, "
      "COUNT(*) OVER (PARTITION BY productId ORDER BY rowtime RANGE INTERVAL '1' "
      "HOUR PRECEDING) AS c60 FROM Orders");
  ASSERT_TRUE(plan);
  EXPECT_EQ(plan->inputs[0]->window_calls.size(), 2u);
}

TEST_F(PlannerTest, RangeWindowOverNonRowtimeFails) {
  auto plan = Plan(
      "SELECT STREAM SUM(units) OVER (ORDER BY orderId RANGE INTERVAL '5' MINUTE "
      "PRECEDING) FROM Orders");
  ASSERT_FALSE(plan.ok());
  EXPECT_NE(plan.status().message().find("rowtime"), std::string::npos);
}

TEST_F(PlannerTest, StreamRelationJoinShape) {
  auto plan = MustPlan(
      "SELECT STREAM Orders.rowtime, Orders.orderId, Orders.productId, Orders.units, "
      "Products.supplierId FROM Orders JOIN Products ON "
      "Orders.productId = Products.productId");
  ASSERT_TRUE(plan);
  ASSERT_EQ(plan->kind, LogicalKind::kProject);
  const LogicalNode& join = *plan->inputs[0];
  ASSERT_EQ(join.kind, LogicalKind::kJoin);
  EXPECT_EQ(join.join_type, JoinType::kStreamRelation);
  ASSERT_EQ(join.equi_keys.size(), 1u);
  EXPECT_EQ(join.equi_keys[0].first, 1);   // Orders.productId
  EXPECT_EQ(join.equi_keys[0].second, 0);  // Products.productId
  EXPECT_FALSE(join.residual);
  EXPECT_EQ(plan->schema->field(4).name, "supplierId");
}

TEST_F(PlannerTest, StreamStreamJoinShape) {
  auto plan = MustPlan(
      "SELECT STREAM GREATEST(PacketsR1.rowtime, PacketsR2.rowtime) AS rowtime, "
      "PacketsR1.sourcetime, PacketsR1.packetId, "
      "PacketsR2.rowtime - PacketsR1.rowtime AS timeToTravel "
      "FROM PacketsR1 JOIN PacketsR2 ON "
      "PacketsR1.rowtime BETWEEN PacketsR2.rowtime - INTERVAL '2' SECOND "
      "AND PacketsR2.rowtime + INTERVAL '2' SECOND "
      "AND PacketsR1.packetId = PacketsR2.packetId");
  ASSERT_TRUE(plan);
  const LogicalNode& join = *plan->inputs[0];
  ASSERT_EQ(join.kind, LogicalKind::kJoin);
  EXPECT_EQ(join.join_type, JoinType::kStreamStream);
  EXPECT_EQ(join.window_before_ms, 2000);
  EXPECT_EQ(join.window_after_ms, 2000);
  ASSERT_EQ(join.equi_keys.size(), 1u);
  EXPECT_EQ(join.equi_keys[0].first, 2);
  EXPECT_EQ(join.equi_keys[0].second, 2);
}

TEST_F(PlannerTest, StreamStreamJoinWithoutTimeBoundFails) {
  auto plan = Plan(
      "SELECT STREAM PacketsR1.packetId FROM PacketsR1 JOIN PacketsR2 "
      "ON PacketsR1.packetId = PacketsR2.packetId");
  ASSERT_FALSE(plan.ok());
  EXPECT_NE(plan.status().message().find("time bound"), std::string::npos);
}

TEST_F(PlannerTest, JoinWithoutEquiKeyFails) {
  EXPECT_FALSE(Plan(
                   "SELECT STREAM Orders.orderId FROM Orders JOIN Products ON "
                   "Orders.units > Products.supplierId")
                   .ok());
}

TEST_F(PlannerTest, AmbiguousColumnFails) {
  // productId exists in both Orders and Products.
  auto plan = Plan(
      "SELECT STREAM productId FROM Orders JOIN Products ON "
      "Orders.productId = Products.productId");
  ASSERT_FALSE(plan.ok());
  EXPECT_NE(plan.status().message().find("ambiguous"), std::string::npos);
}

TEST_F(PlannerTest, JoinNameClashGetsQualifiedField) {
  auto plan = MustPlan(
      "SELECT STREAM Orders.rowtime FROM Orders JOIN Products ON "
      "Orders.productId = Products.productId");
  ASSERT_TRUE(plan);
  const LogicalNode& join = *plan->inputs[0];
  // Products.productId collides with Orders.productId.
  EXPECT_TRUE(join.schema->FieldIndex("Products$productId").has_value());
}

TEST_F(PlannerTest, ViewInliningFromPaper) {
  // Listing 3: view + query over the view.
  auto script = ParseScript(
                    "CREATE VIEW HourlyOrderTotals (rowtime, productId, c, su) AS "
                    "SELECT FLOOR(rowtime TO HOUR), productId, COUNT(*), SUM(units) "
                    "FROM Orders GROUP BY FLOOR(rowtime TO HOUR), productId;")
                    .value();
  ASSERT_TRUE(catalog_
                  ->RegisterView(script[0].create_view->name,
                                 script[0].create_view->column_names,
                                 std::move(script[0].create_view->select))
                  .ok());
  auto plan = MustPlan(
      "SELECT STREAM rowtime, productId FROM HourlyOrderTotals WHERE c > 2 OR su > 10");
  ASSERT_TRUE(plan);
  EXPECT_TRUE(plan->is_stream);
  // Shape: Project <- Filter <- Project(rename) <- Project <- Aggregate ...
  EXPECT_EQ(plan->kind, LogicalKind::kProject);
  EXPECT_EQ(plan->schema->field(0).name, "rowtime");
}

TEST_F(PlannerTest, SubqueryEquivalentToView) {
  auto plan = MustPlan(
      "SELECT STREAM rowtime, productId FROM ("
      "SELECT FLOOR(rowtime TO HOUR) AS rowtime, productId, COUNT(*) AS c, "
      "SUM(units) AS su FROM Orders GROUP BY FLOOR(rowtime TO HOUR), productId) "
      "WHERE c > 2 OR su > 10");
  ASSERT_TRUE(plan);
  EXPECT_TRUE(plan->is_stream);
  EXPECT_EQ(plan->schema->num_fields(), 2u);
}

TEST_F(PlannerTest, ProjectionDroppingRowtimeDisablesTimeWindows) {
  // §7 item 2: dropping the timestamp prevents downstream time windows.
  auto plan = Plan(
      "SELECT STREAM COUNT(*) FROM (SELECT productId, units FROM Orders) "
      "GROUP BY TUMBLE(units, INTERVAL '1' HOUR)");
  ASSERT_FALSE(plan.ok());
}

// --- optimizer ---

class OptimizerTest : public PlannerTest {};

TEST_F(OptimizerTest, ConstantFolding) {
  auto plan = MustPlan("SELECT STREAM * FROM Orders WHERE units > 10 + 15");
  ASSERT_TRUE(plan);
  OptimizerStats stats;
  plan = Optimize(plan, &stats);
  EXPECT_GE(stats.constant_folds, 1);
  // Find the filter.
  LogicalNode* n = plan.get();
  while (n->kind != LogicalKind::kFilter) n = n->inputs[0].get();
  EXPECT_EQ(n->predicate->ToString(), "($3 > 25)");
}

TEST_F(OptimizerTest, RemovesIdentityProject) {
  auto plan = MustPlan("SELECT STREAM * FROM Orders");
  OptimizerStats stats;
  plan = Optimize(plan, &stats);
  EXPECT_EQ(stats.trivial_projects_removed, 1);
  EXPECT_EQ(plan->kind, LogicalKind::kScan);
  EXPECT_TRUE(plan->is_stream);  // streamness preserved on new root
}

TEST_F(OptimizerTest, MergesProjects) {
  auto plan = MustPlan(
      "SELECT STREAM rowtime FROM (SELECT rowtime, productId FROM Orders)");
  OptimizerStats stats;
  plan = Optimize(plan, &stats);
  EXPECT_GE(stats.projects_merged, 1);
  ASSERT_EQ(plan->kind, LogicalKind::kProject);
  EXPECT_EQ(plan->inputs[0]->kind, LogicalKind::kScan);
}

TEST_F(OptimizerTest, PushesFilterBelowProject) {
  auto plan = MustPlan(
      "SELECT STREAM rowtime FROM (SELECT rowtime, units AS u FROM Orders) WHERE u > 5");
  OptimizerStats stats;
  plan = Optimize(plan, &stats);
  EXPECT_GE(stats.filters_pushed_below_project, 1);
  // The filter should now sit directly on the scan.
  LogicalNode* n = plan.get();
  while (n->kind != LogicalKind::kFilter) {
    ASSERT_FALSE(n->inputs.empty());
    n = n->inputs[0].get();
  }
  EXPECT_EQ(n->inputs[0]->kind, LogicalKind::kScan);
  EXPECT_EQ(n->predicate->ToString(), "($3 > 5)");
}

TEST_F(OptimizerTest, PushesLeftFilterIntoJoin) {
  auto plan = MustPlan(
      "SELECT STREAM Orders.orderId FROM Orders JOIN Products ON "
      "Orders.productId = Products.productId WHERE Orders.units > 50");
  OptimizerStats stats;
  plan = Optimize(plan, &stats);
  EXPECT_GE(stats.filters_pushed_into_join, 1);
  // Left input of the join should now be a Filter over the Orders scan.
  LogicalNode* n = plan.get();
  while (n->kind != LogicalKind::kJoin) n = n->inputs[0].get();
  EXPECT_EQ(n->inputs[0]->kind, LogicalKind::kFilter);
  EXPECT_EQ(n->inputs[0]->inputs[0]->kind, LogicalKind::kScan);
}

TEST_F(OptimizerTest, DoesNotPushFilterIntoRelationSideOfStreamJoin) {
  auto plan = MustPlan(
      "SELECT STREAM Orders.orderId FROM Orders JOIN Products ON "
      "Orders.productId = Products.productId WHERE Products.supplierId > 5");
  OptimizerStats stats;
  plan = Optimize(plan, &stats);
  LogicalNode* n = plan.get();
  while (n->kind != LogicalKind::kJoin) n = n->inputs[0].get();
  // Relation side must remain a bare scan (bootstrap materialization).
  EXPECT_EQ(n->inputs[1]->kind, LogicalKind::kScan);
}

// Property: optimization preserves semantics on randomized data.
TEST_F(OptimizerTest, OptimizedPlanProducesSameResults) {
  const char* queries[] = {
      "SELECT rowtime, productId, units FROM Orders WHERE units > 25 + 25",
      "SELECT rowtime FROM (SELECT rowtime, units AS u FROM Orders) WHERE u > 50",
      "SELECT o.orderId, p.name FROM Orders o JOIN Products p ON "
      "o.productId = p.productId WHERE o.units > 30",
      "SELECT productId, COUNT(*), SUM(units) FROM Orders "
      "GROUP BY FLOOR(rowtime TO MINUTE), productId",
  };
  std::mt19937_64 rng(5);
  std::vector<Row> orders;
  for (int i = 0; i < 300; ++i) {
    orders.push_back({Value(static_cast<int64_t>(1000000 + rng() % 500000)),
                      Value(static_cast<int32_t>(rng() % 20)),
                      Value(static_cast<int64_t>(i)),
                      Value(static_cast<int32_t>(rng() % 100)),
                      Value(std::string("pad"))});
  }
  std::vector<Row> products;
  for (int p = 0; p < 20; ++p) {
    products.push_back({Value(static_cast<int32_t>(p)),
                        Value("product" + std::to_string(p)),
                        Value(static_cast<int32_t>(p % 5))});
  }
  TableProvider provider = [&](const SourceDef& src) -> Result<std::vector<Row>> {
    if (src.name == "Orders") return orders;
    if (src.name == "Products") return products;
    return Status::NotFound(src.name);
  };
  for (const char* sql : queries) {
    auto plan = MustPlan(sql);
    ASSERT_TRUE(plan) << sql;
    auto baseline = EvaluatePlan(*plan, provider);
    ASSERT_TRUE(baseline.ok()) << sql << ": " << baseline.status().ToString();
    auto optimized = Optimize(CloneLogical(*plan));
    auto opt_result = EvaluatePlan(*optimized, provider);
    ASSERT_TRUE(opt_result.ok()) << sql;
    // Compare as multisets (aggregates may reorder).
    auto key = [](const Row& r) { return RowToString(r); };
    std::multiset<std::string> a, b;
    for (const Row& r : baseline.value()) a.insert(key(r));
    for (const Row& r : opt_result.value()) b.insert(key(r));
    EXPECT_EQ(a, b) << sql;
  }
}

// --- batch evaluator semantics ---

class BatchEvalTest : public PlannerTest {
 protected:
  Result<std::vector<Row>> Run(const std::string& sql) {
    auto plan = Plan(sql);
    if (!plan.ok()) return plan.status();
    return EvaluatePlan(*plan.value(), provider_);
  }

  void SetUp() override {
    PlannerTest::SetUp();
    // Orders at minutes 0..9, product i%3, units 10*i.
    for (int i = 0; i < 10; ++i) {
      orders_.push_back({Value(int64_t{60000} * i), Value(static_cast<int32_t>(i % 3)),
                         Value(static_cast<int64_t>(i)), Value(static_cast<int32_t>(10 * i)),
                         Value("p")});
    }
    products_ = {{Value(int32_t{0}), Value("zero"), Value(int32_t{100})},
                 {Value(int32_t{1}), Value("one"), Value(int32_t{101})},
                 {Value(int32_t{2}), Value("two"), Value(int32_t{102})}};
    provider_ = [this](const SourceDef& src) -> Result<std::vector<Row>> {
      if (src.name == "Orders") return orders_;
      if (src.name == "Products") return products_;
      return Status::NotFound(src.name);
    };
  }

  std::vector<Row> orders_;
  std::vector<Row> products_;
  TableProvider provider_;
};

TEST_F(BatchEvalTest, FilterAndProject) {
  auto rows = Run("SELECT orderId, units FROM Orders WHERE units > 50").value();
  ASSERT_EQ(rows.size(), 4u);  // units 60,70,80,90
  EXPECT_EQ(rows[0][0], Value(int64_t{6}));
  EXPECT_EQ(rows[0][1], Value(int32_t{60}));
}

TEST_F(BatchEvalTest, GroupByAggregate) {
  auto rows =
      Run("SELECT productId, COUNT(*) AS c, SUM(units) AS su FROM Products "
          "JOIN Suppliers ON Products.supplierId = Suppliers.supplierId "
          "GROUP BY productId");
  // Suppliers table is empty (provider NotFound) — expect error.
  EXPECT_FALSE(rows.ok());
}

TEST_F(BatchEvalTest, TumblingAggregate) {
  // 5-minute tumbling count: minutes 0-4 -> 5 orders, minutes 5-9 -> 5 orders.
  auto rows = Run(
                  "SELECT START(rowtime) AS ws, COUNT(*) AS c, SUM(units) AS su "
                  "FROM Orders GROUP BY TUMBLE(rowtime, INTERVAL '5' MINUTE)")
                  .value();
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0][0], Value(int64_t{0}));
  EXPECT_EQ(rows[0][1], Value(int64_t{5}));
  EXPECT_EQ(rows[0][2], Value(int64_t{0 + 10 + 20 + 30 + 40}));
  EXPECT_EQ(rows[1][0], Value(int64_t{300000}));
  EXPECT_EQ(rows[1][2], Value(int64_t{50 + 60 + 70 + 80 + 90}));
}

TEST_F(BatchEvalTest, HoppingAggregateRowInMultipleWindows) {
  // emit 5 min, retain 10 min: each row lands in 2 windows.
  auto rows = Run(
                  "SELECT START(rowtime) AS ws, END(rowtime) AS we, COUNT(*) AS c "
                  "FROM Orders GROUP BY HOP(rowtime, INTERVAL '5' MINUTE, "
                  "INTERVAL '10' MINUTE)")
                  .value();
  // Windows starting at -5, 0, 5 minutes (those covering data).
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0][0], Value(int64_t{-300000}));
  EXPECT_EQ(rows[0][2], Value(int64_t{5}));  // minutes 0..4
  EXPECT_EQ(rows[1][0], Value(int64_t{0}));
  EXPECT_EQ(rows[1][2], Value(int64_t{10}));  // all ten minutes
  EXPECT_EQ(rows[2][0], Value(int64_t{300000}));
  EXPECT_EQ(rows[2][2], Value(int64_t{5}));  // minutes 5..9
  // END = START + retain.
  EXPECT_EQ(rows[1][1], Value(int64_t{600000}));
}

TEST_F(BatchEvalTest, GroupByKeyAndWindow) {
  auto rows = Run(
                  "SELECT productId, COUNT(*) AS c FROM Orders "
                  "GROUP BY FLOOR(rowtime TO HOUR), productId")
                  .value();
  // All rows are in hour 0; products 0,1,2 with counts 4,3,3.
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0][1], Value(int64_t{4}));
  EXPECT_EQ(rows[1][1], Value(int64_t{3}));
}

TEST_F(BatchEvalTest, SlidingWindowRange) {
  // 2-minute preceding sum of units per product.
  auto rows = Run(
                  "SELECT orderId, SUM(units) OVER (PARTITION BY productId ORDER BY "
                  "rowtime RANGE INTERVAL '3' MINUTE PRECEDING) AS s FROM Orders")
                  .value();
  ASSERT_EQ(rows.size(), 10u);
  // Product 0 orders at minutes 0,3,6,9 (units 0,30,60,90). 3-minute window
  // includes the previous order.
  EXPECT_EQ(rows[0][1], Value(int64_t{0}));        // only itself
  EXPECT_EQ(rows[3][1], Value(int64_t{0 + 30}));   // minute 3 includes minute 0
  EXPECT_EQ(rows[6][1], Value(int64_t{30 + 60}));  // minute 6 includes minute 3
  EXPECT_EQ(rows[9][1], Value(int64_t{60 + 90}));
}

TEST_F(BatchEvalTest, SlidingWindowRows) {
  auto rows = Run(
                  "SELECT orderId, COUNT(*) OVER (PARTITION BY productId ORDER BY "
                  "rowtime ROWS 1 PRECEDING) AS c FROM Orders")
                  .value();
  // First order of each product: window {self}; later: {previous, self}.
  EXPECT_EQ(rows[0][1], Value(int64_t{1}));
  EXPECT_EQ(rows[3][1], Value(int64_t{2}));
}

TEST_F(BatchEvalTest, StreamRelationJoin) {
  auto rows = Run(
                  "SELECT Orders.orderId, Products.name FROM Orders JOIN Products "
                  "ON Orders.productId = Products.productId WHERE Orders.units >= 80")
                  .value();
  ASSERT_EQ(rows.size(), 2u);  // orders 8 (product 2), 9 (product 0)
  EXPECT_EQ(rows[0][1], Value("two"));
  EXPECT_EQ(rows[1][1], Value("zero"));
}

TEST_F(BatchEvalTest, HavingFiltersGroups) {
  auto rows = Run(
                  "SELECT productId, COUNT(*) AS c FROM Orders "
                  "GROUP BY FLOOR(rowtime TO HOUR), productId HAVING COUNT(*) > 3")
                  .value();
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0], Value(int32_t{0}));
  EXPECT_EQ(rows[0][1], Value(int64_t{4}));
}

TEST_F(BatchEvalTest, AvgMinMax) {
  auto rows = Run(
                  "SELECT MIN(units), MAX(units), AVG(units) FROM Orders "
                  "GROUP BY FLOOR(rowtime TO DAY)")
                  .value();
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0], Value(int32_t{0}));
  EXPECT_EQ(rows[0][1], Value(int32_t{90}));
  EXPECT_EQ(rows[0][2], Value(45.0));
}

}  // namespace
}  // namespace sqs::sql
