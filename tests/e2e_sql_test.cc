// End-to-end tests: SQL text -> planner -> job config -> containers ->
// operators -> output topic, cross-checked against the reference (batch)
// evaluator — the paper's stated semantics goal: "producing the same
// results on a stream as if the same data were in a table".
#include <gtest/gtest.h>

#include <set>

#include "core/executor.h"
#include "workload/generators.h"

namespace sqs::core {
namespace {

using sql::SourceDef;

constexpr int32_t kPartitions = 4;

class E2eTest : public ::testing::Test {
 protected:
  void SetUp() override {
    env_ = SamzaSqlEnvironment::Make();
    ASSERT_TRUE(workload::SetupPaperSources(*env_, kPartitions).ok());
    Config defaults;
    defaults.SetInt(cfg::kContainerCount, 2);
    defaults.SetInt(cfg::kCommitEveryMessages, 100);
    executor_ = std::make_unique<QueryExecutor>(env_, defaults);
  }

  void ProduceOrders(int64_t count) {
    workload::OrdersGeneratorOptions options;
    options.num_products = 20;
    workload::OrdersGenerator gen(*env_, options);
    ASSERT_TRUE(gen.Produce(count).ok());
    last_rowtime_ = gen.last_rowtime();
  }

  // Send one far-future order to every partition so event-time watermarks
  // pass all open windows (closing them) in every task.
  void ProduceWatermarkSentinels(int64_t future_ms) {
    auto schema = env_->catalog->GetSource("Orders").value().schema;
    AvroRowSerde serde(schema);
    Producer producer(env_->broker, env_->clock);
    for (int32_t p = 0; p < kPartitions; ++p) {
      Row row{Value(last_rowtime_ + future_ms), Value(int32_t{9999}),
              Value(int64_t{-1}), Value(int32_t{0}), Value("sentinel")};
      ASSERT_TRUE(
          producer.SendTo({"Orders", p}, Bytes{}, serde.SerializeToBytes(row)).ok());
    }
  }

  std::multiset<std::string> AsMultiset(const std::vector<Row>& rows) {
    std::multiset<std::string> out;
    for (const Row& r : rows) out.insert(RowToString(r));
    return out;
  }

  // Run `streaming_sql` as a job, drain it, and compare its output rows to
  // the reference evaluation of `batch_sql`.
  void CheckAgainstOracle(const std::string& streaming_sql,
                          const std::string& batch_sql) {
    auto submitted = executor_->Execute(streaming_sql);
    ASSERT_TRUE(submitted.ok()) << submitted.status().ToString();
    ASSERT_EQ(submitted.value().kind,
              QueryExecutor::ExecutionResult::Kind::kJobSubmitted);
    auto ran = executor_->RunJobsUntilQuiescent();
    ASSERT_TRUE(ran.ok()) << ran.status().ToString();
    auto rows = executor_->ReadOutputRows(submitted.value().output_topic);
    ASSERT_TRUE(rows.ok()) << rows.status().ToString();

    auto oracle = executor_->Execute(batch_sql);
    ASSERT_TRUE(oracle.ok()) << oracle.status().ToString();
    EXPECT_EQ(AsMultiset(rows.value()), AsMultiset(oracle.value().rows))
        << streaming_sql;
  }

  EnvironmentPtr env_;
  std::unique_ptr<QueryExecutor> executor_;
  int64_t last_rowtime_ = 0;
};

TEST_F(E2eTest, FilterMatchesOracle) {
  ProduceOrders(1500);
  CheckAgainstOracle("SELECT STREAM * FROM Orders WHERE units > 50",
                     "SELECT * FROM Orders WHERE units > 50");
}

TEST_F(E2eTest, ProjectMatchesOracle) {
  ProduceOrders(1500);
  CheckAgainstOracle("SELECT STREAM rowtime, productId, units FROM Orders",
                     "SELECT rowtime, productId, units FROM Orders");
}

TEST_F(E2eTest, ProjectWithExpressionsMatchesOracle) {
  ProduceOrders(800);
  CheckAgainstOracle(
      "SELECT STREAM orderId, units * 2 AS double_units, "
      "CASE WHEN units > 50 THEN 'big' ELSE 'small' END AS bucket FROM Orders",
      "SELECT orderId, units * 2 AS double_units, "
      "CASE WHEN units > 50 THEN 'big' ELSE 'small' END AS bucket FROM Orders");
}

TEST_F(E2eTest, StreamRelationJoinMatchesOracle) {
  ProduceOrders(1200);
  ASSERT_TRUE(workload::ProduceProducts(*env_, 20).ok());
  CheckAgainstOracle(
      "SELECT STREAM Orders.rowtime, Orders.orderId, Orders.productId, Orders.units, "
      "Products.supplierId FROM Orders JOIN Products ON "
      "Orders.productId = Products.productId",
      "SELECT Orders.rowtime, Orders.orderId, Orders.productId, Orders.units, "
      "Products.supplierId FROM Orders JOIN Products ON "
      "Orders.productId = Products.productId");
}

TEST_F(E2eTest, JoinWithMissingProductsDropsRows) {
  ProduceOrders(600);
  // Only products 0..9 exist; orders reference 0..19.
  ASSERT_TRUE(workload::ProduceProducts(*env_, 10).ok());
  auto submitted = executor_->Execute(
      "SELECT STREAM Orders.orderId, Products.name FROM Orders JOIN Products "
      "ON Orders.productId = Products.productId");
  ASSERT_TRUE(submitted.ok()) << submitted.status().ToString();
  ASSERT_TRUE(executor_->RunJobsUntilQuiescent().ok());
  auto rows = executor_->ReadOutputRows(submitted.value().output_topic).value();
  EXPECT_GT(rows.size(), 0u);
  EXPECT_LT(rows.size(), 600u);  // inner join dropped unmatched products
}

TEST_F(E2eTest, SlidingWindowMatchesOracle) {
  ProduceOrders(1000);
  const char* window =
      "SUM(units) OVER (PARTITION BY productId ORDER BY rowtime "
      "RANGE INTERVAL '5' SECOND PRECEDING) AS unitsRecent";
  CheckAgainstOracle(
      std::string("SELECT STREAM rowtime, productId, units, ") + window + " FROM Orders",
      std::string("SELECT rowtime, productId, units, ") + window + " FROM Orders");
}

TEST_F(E2eTest, SlidingWindowCountAndAvgMatchOracle) {
  ProduceOrders(600);
  const char* calls =
      "COUNT(*) OVER (PARTITION BY productId ORDER BY rowtime RANGE INTERVAL '10' "
      "SECOND PRECEDING) AS c, "
      "AVG(units) OVER (PARTITION BY productId ORDER BY rowtime RANGE INTERVAL '10' "
      "SECOND PRECEDING) AS a";
  CheckAgainstOracle(std::string("SELECT STREAM orderId, ") + calls + " FROM Orders",
                     std::string("SELECT orderId, ") + calls + " FROM Orders");
}

TEST_F(E2eTest, SlidingWindowMinMaxMatchesOracle) {
  ProduceOrders(400);
  const char* calls =
      "MIN(units) OVER (PARTITION BY productId ORDER BY rowtime RANGE INTERVAL '8' "
      "SECOND PRECEDING) AS lo, "
      "MAX(units) OVER (PARTITION BY productId ORDER BY rowtime RANGE INTERVAL '8' "
      "SECOND PRECEDING) AS hi";
  CheckAgainstOracle(std::string("SELECT STREAM orderId, ") + calls + " FROM Orders",
                     std::string("SELECT orderId, ") + calls + " FROM Orders");
}

TEST_F(E2eTest, TumblingAggregateEmitsClosedWindows) {
  ProduceOrders(1200);
  ProduceWatermarkSentinels(3'600'000);

  auto submitted = executor_->Execute(
      "SELECT STREAM productId, START(rowtime) AS ws, COUNT(*) AS c, SUM(units) AS su "
      "FROM Orders GROUP BY TUMBLE(rowtime, INTERVAL '10' SECOND), productId");
  ASSERT_TRUE(submitted.ok()) << submitted.status().ToString();
  ASSERT_TRUE(executor_->RunJobsUntilQuiescent().ok());
  auto rows = executor_->ReadOutputRows(submitted.value().output_topic).value();

  // Oracle: batch evaluation, minus windows containing only sentinels.
  auto oracle = executor_->Execute(
      "SELECT productId, START(rowtime) AS ws, COUNT(*) AS c, SUM(units) AS su "
      "FROM Orders GROUP BY TUMBLE(rowtime, INTERVAL '10' SECOND), productId");
  ASSERT_TRUE(oracle.ok());
  std::multiset<std::string> expected;
  for (const Row& r : oracle.value().rows) {
    if (r[0] == Value(int32_t{9999})) continue;  // sentinel group
    expected.insert(RowToString(r));
  }
  std::multiset<std::string> got;
  for (const Row& r : rows) {
    if (r[0] == Value(int32_t{9999})) continue;
    got.insert(RowToString(r));
  }
  EXPECT_EQ(got, expected);
  EXPECT_GT(got.size(), 10u);  // sanity: multiple windows closed
}

TEST_F(E2eTest, HoppingAggregateMatchesOracle) {
  ProduceOrders(800);
  ProduceWatermarkSentinels(3'600'000);
  auto submitted = executor_->Execute(
      "SELECT STREAM productId, START(rowtime) AS ws, END(rowtime) AS we, "
      "COUNT(*) AS c FROM Orders GROUP BY "
      "HOP(rowtime, INTERVAL '5' SECOND, INTERVAL '10' SECOND), productId");
  ASSERT_TRUE(submitted.ok()) << submitted.status().ToString();
  ASSERT_TRUE(executor_->RunJobsUntilQuiescent().ok());
  auto rows = executor_->ReadOutputRows(submitted.value().output_topic).value();

  auto oracle = executor_->Execute(
      "SELECT productId, START(rowtime) AS ws, END(rowtime) AS we, COUNT(*) AS c "
      "FROM Orders GROUP BY HOP(rowtime, INTERVAL '5' SECOND, INTERVAL '10' SECOND), "
      "productId");
  ASSERT_TRUE(oracle.ok());
  std::multiset<std::string> expected;
  for (const Row& r : oracle.value().rows) {
    if (r[0] == Value(int32_t{9999})) continue;
    expected.insert(RowToString(r));
  }
  std::multiset<std::string> got;
  for (const Row& r : rows) {
    if (r[0] == Value(int32_t{9999})) continue;
    got.insert(RowToString(r));
  }
  EXPECT_EQ(got, expected);
}

TEST_F(E2eTest, StreamStreamJoinMatchesOracle) {
  workload::PacketsGeneratorOptions options;
  options.max_transit_ms = 1500;
  ASSERT_TRUE(workload::ProducePackets(*env_, 800, options).ok());

  // Grace must cover the bounded disorder in PacketsR2 (max transit).
  Config defaults;
  defaults.SetInt(cfg::kContainerCount, 2);
  defaults.SetInt(sqlcfg::kGraceMs, 4000);
  QueryExecutor executor(env_, defaults);

  const char* join_sql =
      "FROM PacketsR1 JOIN PacketsR2 ON "
      "PacketsR1.rowtime BETWEEN PacketsR2.rowtime - INTERVAL '2' SECOND "
      "AND PacketsR2.rowtime + INTERVAL '2' SECOND "
      "AND PacketsR1.packetId = PacketsR2.packetId";
  auto submitted = executor.Execute(
      std::string("SELECT STREAM PacketsR1.packetId, "
                  "PacketsR2.rowtime - PacketsR1.rowtime AS timeToTravel ") +
      join_sql);
  ASSERT_TRUE(submitted.ok()) << submitted.status().ToString();
  ASSERT_TRUE(executor.RunJobsUntilQuiescent().ok());
  auto rows = executor.ReadOutputRows(submitted.value().output_topic).value();

  auto oracle = executor.Execute(
      std::string("SELECT PacketsR1.packetId, "
                  "PacketsR2.rowtime - PacketsR1.rowtime AS timeToTravel ") +
      join_sql);
  ASSERT_TRUE(oracle.ok()) << oracle.status().ToString();
  EXPECT_EQ(AsMultiset(rows), AsMultiset(oracle.value().rows));
  EXPECT_GT(rows.size(), 500u);  // most packets reached R2 within the window
}

TEST_F(E2eTest, ViewPipelineFromPaperListing3) {
  ProduceOrders(1500);
  ProduceWatermarkSentinels(7'200'000);
  auto view = executor_->Execute(
      "CREATE VIEW HourlyOrderTotals (wstart, productId, c, su) AS "
      "SELECT START(rowtime), productId, COUNT(*), SUM(units) "
      "FROM Orders GROUP BY TUMBLE(rowtime, INTERVAL '10' SECOND), productId");
  ASSERT_TRUE(view.ok()) << view.status().ToString();
  auto submitted = executor_->Execute(
      "SELECT STREAM wstart, productId FROM HourlyOrderTotals WHERE c > 2 OR su > 10");
  ASSERT_TRUE(submitted.ok()) << submitted.status().ToString();
  ASSERT_TRUE(executor_->RunJobsUntilQuiescent().ok());
  auto rows = executor_->ReadOutputRows(submitted.value().output_topic).value();
  EXPECT_GT(rows.size(), 0u);
}

TEST_F(E2eTest, InsertIntoChainsQueries) {
  ProduceOrders(1000);
  // First job writes big orders into a derived stream; second consumes it.
  auto first = executor_->Execute(
      "INSERT INTO BigOrders SELECT STREAM rowtime, productId, orderId, units "
      "FROM Orders WHERE units > 80");
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  auto second = executor_->Execute(
      "SELECT STREAM orderId FROM BigOrders WHERE productId = 7");
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  ASSERT_TRUE(executor_->RunJobsUntilQuiescent().ok());

  auto big = executor_->ReadOutputRows("BigOrders").value();
  auto filtered = executor_->ReadOutputRows(second.value().output_topic).value();
  auto oracle = executor_->Execute(
      "SELECT orderId FROM Orders WHERE units > 80 AND productId = 7");
  ASSERT_TRUE(oracle.ok());
  EXPECT_EQ(AsMultiset(filtered), AsMultiset(oracle.value().rows));
  EXPECT_GT(big.size(), filtered.size());
}

TEST_F(E2eTest, ExplainReturnsPlan) {
  auto result = executor_->Execute("EXPLAIN SELECT STREAM * FROM Orders WHERE units > 5");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().kind, QueryExecutor::ExecutionResult::Kind::kExplained);
  EXPECT_NE(result.value().text.find("Filter"), std::string::npos);
  EXPECT_NE(result.value().text.find("Scan(Orders STREAM)"), std::string::npos);
}

TEST_F(E2eTest, BatchQueryReturnsRows) {
  ProduceOrders(200);
  auto result = executor_->Execute("SELECT COUNT(*) FROM Orders GROUP BY FLOOR(rowtime TO DAY)");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result.value().kind, QueryExecutor::ExecutionResult::Kind::kRows);
  ASSERT_EQ(result.value().rows.size(), 1u);
  EXPECT_EQ(result.value().rows[0][0], Value(int64_t{200}));
}

TEST_F(E2eTest, ScriptExecution) {
  ProduceOrders(100);
  auto results = executor_->ExecuteScript(
      "CREATE VIEW V AS SELECT rowtime, units FROM Orders WHERE units > 10;\n"
      "SELECT STREAM units FROM V;");
  ASSERT_TRUE(results.ok()) << results.status().ToString();
  ASSERT_EQ(results.value().size(), 2u);
  EXPECT_EQ(results.value()[0].kind, QueryExecutor::ExecutionResult::Kind::kViewCreated);
  EXPECT_EQ(results.value()[1].kind,
            QueryExecutor::ExecutionResult::Kind::kJobSubmitted);
  ASSERT_TRUE(executor_->RunJobsUntilQuiescent().ok());
  auto rows = executor_->ReadOutputRows(results.value()[1].output_topic).value();
  auto oracle = executor_->Execute("SELECT units FROM Orders WHERE units > 10").value();
  EXPECT_EQ(AsMultiset(rows), AsMultiset(oracle.rows));
}

TEST_F(E2eTest, FaultToleranceFilterQuery) {
  ProduceOrders(2000);
  auto submitted = executor_->Execute(
      "SELECT STREAM orderId, units FROM Orders WHERE units > 30");
  ASSERT_TRUE(submitted.ok());
  JobRunner* job = executor_->job(submitted.value().job_index);
  ASSERT_NE(job, nullptr);

  // Process part of the input, then kill container 0 (uncommitted progress
  // is lost and replayed).
  ASSERT_TRUE(job->container(0)->RunUntilCaughtUp(300).ok());
  ASSERT_TRUE(job->KillContainer(0).ok());
  ASSERT_TRUE(job->RestartContainer(0).ok());
  ASSERT_TRUE(executor_->RunJobsUntilQuiescent().ok());

  auto rows = executor_->ReadOutputRows(submitted.value().output_topic).value();
  auto oracle = executor_->Execute("SELECT orderId, units FROM Orders WHERE units > 30");
  ASSERT_TRUE(oracle.ok());
  // At-least-once: after dedup the outputs equal the oracle exactly.
  std::set<std::string> got, expected;
  for (const Row& r : rows) got.insert(RowToString(r));
  for (const Row& r : oracle.value().rows) expected.insert(RowToString(r));
  EXPECT_EQ(got, expected);
  EXPECT_GE(rows.size(), expected.size());
}

TEST_F(E2eTest, FaultToleranceJoinRestoresTableFromChangelog) {
  ProduceOrders(1000);
  ASSERT_TRUE(workload::ProduceProducts(*env_, 20).ok());
  auto submitted = executor_->Execute(
      "SELECT STREAM Orders.orderId, Products.supplierId FROM Orders JOIN Products "
      "ON Orders.productId = Products.productId");
  ASSERT_TRUE(submitted.ok()) << submitted.status().ToString();
  JobRunner* job = executor_->job(submitted.value().job_index);

  ASSERT_TRUE(job->container(0)->RunUntilCaughtUp(400).ok());
  ASSERT_TRUE(job->KillContainer(0).ok());
  ASSERT_TRUE(job->RestartContainer(0).ok());
  ASSERT_TRUE(executor_->RunJobsUntilQuiescent().ok());

  auto rows = executor_->ReadOutputRows(submitted.value().output_topic).value();
  auto oracle = executor_->Execute(
      "SELECT Orders.orderId, Products.supplierId FROM Orders JOIN Products "
      "ON Orders.productId = Products.productId");
  ASSERT_TRUE(oracle.ok());
  std::set<std::string> got, expected;
  for (const Row& r : rows) got.insert(RowToString(r));
  for (const Row& r : oracle.value().rows) expected.insert(RowToString(r));
  EXPECT_EQ(got, expected);
}

TEST_F(E2eTest, FaultToleranceSlidingWindowIsDeterministic) {
  // The §4.3 claim end to end: kill a container mid-stream; after restore
  // (changelog) + replay (checkpoint), the deduplicated sliding-window
  // output matches an uninterrupted run exactly — including the windows of
  // replayed tuples, which must not have been damaged by purges that
  // happened after the checkpoint.
  workload::OrdersGeneratorOptions options;
  options.num_products = 10;
  options.rowtime_step_ms = 1000;
  workload::OrdersGenerator gen(*env_, options);
  ASSERT_TRUE(gen.Produce(1500).ok());

  const char* sql =
      "SELECT STREAM rowtime, productId, units, SUM(units) OVER "
      "(PARTITION BY productId ORDER BY rowtime RANGE INTERVAL '30' SECOND "
      "PRECEDING) AS s FROM Orders";

  // Reference: uninterrupted run on a parallel environment with identical
  // data (same generator seed).
  std::set<std::string> reference;
  {
    auto env2 = SamzaSqlEnvironment::Make();
    ASSERT_TRUE(workload::SetupPaperSources(*env2, kPartitions).ok());
    workload::OrdersGenerator gen2(*env2, options);
    ASSERT_TRUE(gen2.Produce(1500).ok());
    Config defaults;
    defaults.SetInt(cfg::kContainerCount, 2);
    QueryExecutor executor2(env2, defaults);
    auto submitted = executor2.Execute(sql);
    ASSERT_TRUE(submitted.ok()) << submitted.status().ToString();
    ASSERT_TRUE(executor2.RunJobsUntilQuiescent().ok());
    auto rows = executor2.ReadOutputRows(submitted.value().output_topic).value();
    for (const Row& r : rows) reference.insert(RowToString(r));
  }

  Config defaults;
  defaults.SetInt(cfg::kContainerCount, 2);
  defaults.SetInt(cfg::kCommitEveryMessages, 50);
  QueryExecutor executor(env_, defaults);
  auto submitted = executor.Execute(sql);
  ASSERT_TRUE(submitted.ok()) << submitted.status().ToString();
  JobRunner* job = executor.job(submitted.value().job_index);
  ASSERT_TRUE(job->container(0)->RunUntilCaughtUp(400).ok());
  ASSERT_TRUE(job->KillContainer(0).ok());
  ASSERT_TRUE(job->RestartContainer(0).ok());
  ASSERT_TRUE(executor.RunJobsUntilQuiescent().ok());

  auto rows = executor.ReadOutputRows(submitted.value().output_topic).value();
  std::set<std::string> got;
  for (const Row& r : rows) got.insert(RowToString(r));
  EXPECT_EQ(got, reference);
  EXPECT_GE(rows.size(), reference.size());  // duplicates allowed, drift not
}

TEST_F(E2eTest, StreamingJobOnMissingTopicFails) {
  SourceDef ghost;
  ghost.name = "Ghost";
  ghost.kind = sql::SourceKind::kStream;
  ghost.topic = "ghost-topic";  // never created on the broker
  ghost.schema = Schema::Make("Ghost", {{"rowtime", FieldType::Int64(), false}});
  ASSERT_TRUE(env_->catalog->RegisterSource(ghost).ok());
  auto result = executor_->Execute("SELECT STREAM * FROM Ghost");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), ErrorCode::kNotFound);
}

TEST_F(E2eTest, InsertArityMismatchFails) {
  ProduceOrders(10);
  auto first = executor_->Execute(
      "INSERT INTO Derived SELECT STREAM rowtime, units FROM Orders");
  ASSERT_TRUE(first.ok());
  // Derived now has 2 columns; inserting 3 must fail.
  auto second = executor_->Execute(
      "INSERT INTO Derived SELECT STREAM rowtime, units, orderId FROM Orders");
  ASSERT_FALSE(second.ok());
  EXPECT_NE(second.status().message().find("arity"), std::string::npos);
}

}  // namespace
}  // namespace sqs::core
