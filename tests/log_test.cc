#include <gtest/gtest.h>

#include <array>
#include <bit>
#include <set>

#include "log/broker.h"
#include "log/consumer.h"
#include "log/producer.h"

namespace sqs {
namespace {

Message Msg(const std::string& key, const std::string& value) {
  Message m;
  m.key = ToBytes(key);
  m.value = ToBytes(value);
  return m;
}

class BrokerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    broker_ = std::make_shared<Broker>();
    ASSERT_TRUE(broker_->CreateTopic("t", {.num_partitions = 4}).ok());
  }
  BrokerPtr broker_;
};

TEST_F(BrokerTest, CreateTopicValidation) {
  EXPECT_FALSE(broker_->CreateTopic("", {.num_partitions = 1}).ok());
  EXPECT_FALSE(broker_->CreateTopic("bad", {.num_partitions = 0}).ok());
  EXPECT_EQ(broker_->CreateTopic("t", {.num_partitions = 1}).code(),
            ErrorCode::kAlreadyExists);
  EXPECT_TRUE(broker_->HasTopic("t"));
  EXPECT_FALSE(broker_->HasTopic("nope"));
  EXPECT_EQ(broker_->NumPartitions("t").value(), 4);
}

TEST_F(BrokerTest, OffsetsAreDenseFromZero) {
  for (int i = 0; i < 10; ++i) {
    auto off = broker_->Append({"t", 1}, Msg("k", "v" + std::to_string(i)));
    ASSERT_TRUE(off.ok());
    EXPECT_EQ(off.value(), i);
  }
  EXPECT_EQ(broker_->EndOffset({"t", 1}).value(), 10);
  EXPECT_EQ(broker_->BeginOffset({"t", 1}).value(), 0);
  // Other partitions are untouched.
  EXPECT_EQ(broker_->EndOffset({"t", 0}).value(), 0);
}

TEST_F(BrokerTest, FetchReturnsInOrder) {
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(broker_->Append({"t", 0}, Msg("k", std::to_string(i))).ok());
  }
  auto batch = broker_->Fetch({"t", 0}, 1, 3);
  ASSERT_TRUE(batch.ok());
  ASSERT_EQ(batch.value().size(), 3u);
  EXPECT_EQ(batch.value()[0].offset, 1);
  EXPECT_EQ(FromBytes(batch.value()[0].message.value), "1");
  EXPECT_EQ(batch.value()[2].offset, 3);
}

TEST_F(BrokerTest, FetchPastEndReturnsEmpty) {
  ASSERT_TRUE(broker_->Append({"t", 0}, Msg("k", "v")).ok());
  EXPECT_TRUE(broker_->Fetch({"t", 0}, 1, 10).value().empty());
  EXPECT_TRUE(broker_->Fetch({"t", 0}, 5, 10).value().empty());
}

TEST_F(BrokerTest, FetchUnknownPartitionFails) {
  EXPECT_FALSE(broker_->Fetch({"t", 9}, 0, 1).ok());
  EXPECT_FALSE(broker_->Fetch({"nope", 0}, 0, 1).ok());
}

TEST_F(BrokerTest, ReplayFromAnyOffsetYieldsIdenticalSuffix) {
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(broker_->Append({"t", 2}, Msg("k", std::to_string(i))).ok());
  }
  auto full = broker_->Fetch({"t", 2}, 0, 1000).value();
  for (int64_t start : {0, 17, 50, 99}) {
    auto replay = broker_->Fetch({"t", 2}, start, 1000).value();
    ASSERT_EQ(replay.size(), full.size() - start);
    for (size_t i = 0; i < replay.size(); ++i) {
      EXPECT_EQ(replay[i].offset, full[start + i].offset);
      EXPECT_EQ(replay[i].message.value, full[start + i].message.value);
    }
  }
}

TEST_F(BrokerTest, RetentionAdvancesLogStart) {
  ASSERT_TRUE(
      broker_->CreateTopic("r", {.num_partitions = 1, .retention_messages = 5}).ok());
  for (int i = 0; i < 12; ++i) {
    ASSERT_TRUE(broker_->Append({"r", 0}, Msg("k", std::to_string(i))).ok());
  }
  ASSERT_TRUE(broker_->EnforceRetention("r").ok());
  EXPECT_EQ(broker_->BeginOffset({"r", 0}).value(), 7);
  EXPECT_EQ(broker_->EndOffset({"r", 0}).value(), 12);
  // Reading below the new start fails; reading the survivors works and
  // offsets are stable.
  EXPECT_FALSE(broker_->Fetch({"r", 0}, 0, 10).ok());
  auto batch = broker_->Fetch({"r", 0}, 7, 10).value();
  ASSERT_EQ(batch.size(), 5u);
  EXPECT_EQ(FromBytes(batch[0].message.value), "7");
}

TEST_F(BrokerTest, CompactionKeepsLatestPerKey) {
  ASSERT_TRUE(broker_->CreateTopic("c", {.num_partitions = 1, .compacted = true}).ok());
  ASSERT_TRUE(broker_->Append({"c", 0}, Msg("a", "1")).ok());
  ASSERT_TRUE(broker_->Append({"c", 0}, Msg("b", "2")).ok());
  ASSERT_TRUE(broker_->Append({"c", 0}, Msg("a", "3")).ok());
  ASSERT_TRUE(broker_->Compact("c").ok());
  EXPECT_EQ(broker_->TopicSize("c").value(), 2);
  auto begin = broker_->BeginOffset({"c", 0}).value();
  auto batch = broker_->Fetch({"c", 0}, begin, 10).value();
  ASSERT_EQ(batch.size(), 2u);
  // Order of survivors preserved: b=2 then a=3.
  EXPECT_EQ(FromBytes(batch[0].message.value), "2");
  EXPECT_EQ(FromBytes(batch[1].message.value), "3");
  // Compacting a non-compacted topic is an error.
  EXPECT_FALSE(broker_->Compact("t").ok());
}

TEST_F(BrokerTest, DeleteTopic) {
  ASSERT_TRUE(broker_->DeleteTopic("t").ok());
  EXPECT_FALSE(broker_->HasTopic("t"));
  EXPECT_FALSE(broker_->DeleteTopic("t").ok());
}

TEST(ProducerTest, KeyedSendsAreDeterministic) {
  auto broker = std::make_shared<Broker>();
  ASSERT_TRUE(broker->CreateTopic("t", {.num_partitions = 8}).ok());
  Producer p1(broker), p2(broker);
  // Same key always lands in the same partition, from any producer.
  int32_t expected = Producer::PartitionForKey(ToBytes("user42"), 8);
  ASSERT_TRUE(p1.Send("t", ToBytes("user42"), ToBytes("a")).ok());
  ASSERT_TRUE(p2.Send("t", ToBytes("user42"), ToBytes("b")).ok());
  EXPECT_EQ(broker->EndOffset({"t", expected}).value(), 2);
}

TEST(ProducerTest, KeysSpreadAcrossPartitions) {
  auto broker = std::make_shared<Broker>();
  ASSERT_TRUE(broker->CreateTopic("t", {.num_partitions = 8}).ok());
  std::set<int32_t> used;
  for (int i = 0; i < 200; ++i) {
    used.insert(Producer::PartitionForKey(ToBytes("key" + std::to_string(i)), 8));
  }
  EXPECT_EQ(used.size(), 8u);  // all partitions hit with 200 keys
}

TEST(ProducerTest, UnkeyedRoundRobins) {
  auto broker = std::make_shared<Broker>();
  ASSERT_TRUE(broker->CreateTopic("t", {.num_partitions = 4}).ok());
  Producer p(broker);
  for (int i = 0; i < 8; ++i) ASSERT_TRUE(p.Send("t", ToBytes("v")).ok());
  for (int part = 0; part < 4; ++part) {
    EXPECT_EQ(broker->EndOffset({"t", part}).value(), 2);
  }
}

class ConsumerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    broker_ = std::make_shared<Broker>();
    ASSERT_TRUE(broker_->CreateTopic("t", {.num_partitions = 3}).ok());
    for (int p = 0; p < 3; ++p) {
      for (int i = 0; i < 10; ++i) {
        ASSERT_TRUE(
            broker_->Append({"t", p}, Msg("k", std::to_string(p * 100 + i))).ok());
      }
    }
  }
  BrokerPtr broker_;
};

TEST_F(ConsumerTest, PollDrainsAllAssignedPartitions) {
  Consumer c(broker_, 256);
  for (int p = 0; p < 3; ++p) ASSERT_TRUE(c.Assign({"t", p}, 0).ok());
  int total = 0;
  while (true) {
    auto batch = c.Poll();
    ASSERT_TRUE(batch.ok());
    if (batch.value().empty()) break;
    total += static_cast<int>(batch.value().size());
  }
  EXPECT_EQ(total, 30);
  EXPECT_TRUE(c.CaughtUp().value());
  EXPECT_EQ(c.Lag().value(), 0);
}

TEST_F(ConsumerTest, PreservesPerPartitionOrder) {
  Consumer c(broker_, 4);  // small batches force interleaving
  for (int p = 0; p < 3; ++p) ASSERT_TRUE(c.Assign({"t", p}, 0).ok());
  std::map<int32_t, int64_t> last_offset;
  while (true) {
    auto batch = c.Poll().value();
    if (batch.empty()) break;
    for (const auto& m : batch) {
      auto it = last_offset.find(m.origin.partition);
      if (it != last_offset.end()) EXPECT_GT(m.offset, it->second);
      last_offset[m.origin.partition] = m.offset;
    }
  }
  EXPECT_EQ(last_offset.size(), 3u);
}

TEST_F(ConsumerTest, AssignFromMidOffset) {
  Consumer c(broker_);
  ASSERT_TRUE(c.Assign({"t", 0}, 7).ok());
  auto batch = c.Poll().value();
  ASSERT_EQ(batch.size(), 3u);
  EXPECT_EQ(batch[0].offset, 7);
}

TEST_F(ConsumerTest, SeekRewinds) {
  Consumer c(broker_);
  ASSERT_TRUE(c.Assign({"t", 0}, 0).ok());
  while (!c.Poll().value().empty()) {
  }
  EXPECT_TRUE(c.CaughtUp().value());
  ASSERT_TRUE(c.Seek({"t", 0}, 5).ok());
  EXPECT_FALSE(c.CaughtUp().value());
  EXPECT_EQ(c.Lag().value(), 5);
  EXPECT_EQ(c.Poll().value()[0].offset, 5);
}

TEST_F(ConsumerTest, MaxPollBudgetRespected) {
  Consumer c(broker_, 5);
  for (int p = 0; p < 3; ++p) ASSERT_TRUE(c.Assign({"t", p}, 0).ok());
  auto batch = c.Poll().value();
  EXPECT_LE(batch.size(), 5u);
}

TEST_F(ConsumerTest, PerPartitionFetchCapShrinksBatches) {
  Consumer c(broker_, 256);
  c.SetMaxFetchPerPartition(2);
  for (int p = 0; p < 3; ++p) ASSERT_TRUE(c.Assign({"t", p}, 0).ok());
  auto batch = c.Poll().value();
  // 3 partitions x cap 2 = at most 6 per poll even though 30 are available.
  EXPECT_LE(batch.size(), 6u);
  EXPECT_GE(batch.size(), 1u);
}

TEST_F(ConsumerTest, RoundRobinStartPreventsStarvation) {
  Consumer c(broker_, 2);  // tiny budget: only first visited partition served
  c.SetMaxFetchPerPartition(2);
  for (int p = 0; p < 3; ++p) ASSERT_TRUE(c.Assign({"t", p}, 0).ok());
  std::set<int32_t> served;
  for (int i = 0; i < 6; ++i) {
    auto batch = c.Poll().value();
    for (const auto& m : batch) served.insert(m.origin.partition);
  }
  EXPECT_EQ(served.size(), 3u);
}

TEST_F(ConsumerTest, UnassignStopsDelivery) {
  Consumer c(broker_);
  ASSERT_TRUE(c.Assign({"t", 0}, 0).ok());
  ASSERT_TRUE(c.Assign({"t", 1}, 0).ok());
  ASSERT_TRUE(c.Unassign({"t", 1}).ok());
  int total = 0;
  while (true) {
    auto b = c.Poll().value();
    if (b.empty()) break;
    for (const auto& m : b) {
      EXPECT_EQ(m.origin.partition, 0);
      ++total;
    }
  }
  EXPECT_EQ(total, 10);
  EXPECT_FALSE(c.Unassign({"t", 1}).ok());
}

TEST_F(ConsumerTest, AssignValidation) {
  Consumer c(broker_);
  EXPECT_FALSE(c.Assign({"nope", 0}, 0).ok());
  EXPECT_FALSE(c.Assign({"t", 99}, 0).ok());
  EXPECT_FALSE(c.Position({"t", 0}).ok());
  EXPECT_FALSE(c.Seek({"t", 0}, 0).ok());
}

TEST(BrokerLatencyTest, FetchLatencyConsumesTime) {
  auto broker = std::make_shared<Broker>();
  ASSERT_TRUE(broker->CreateTopic("t", {.num_partitions = 1}).ok());
  ASSERT_TRUE(broker->Append({"t", 0}, Msg("k", "v")).ok());
  broker->SetFetchLatencyNanos(200000);  // 0.2 ms
  int64_t t0 = MonotonicNanos();
  for (int i = 0; i < 10; ++i) ASSERT_TRUE(broker->Fetch({"t", 0}, 0, 1).ok());
  int64_t elapsed = MonotonicNanos() - t0;
  EXPECT_GE(elapsed, 10 * 200000);
}

// Regression tests for StreamPartitionHasher. The original
// `hash(topic) * 31 + partition` mapped adjacent partitions of one topic to
// consecutive hash values: high bits never moved with the partition, and
// power-of-two bucket tables saw heavy low-bit collisions across topics.
TEST(StreamPartitionHasherTest, DeterministicPerKey) {
  StreamPartitionHasher hasher;
  EXPECT_EQ(hasher({"Orders", 3}), hasher({"Orders", 3}));
  EXPECT_NE(hasher({"Orders", 3}), hasher({"Orders", 4}));
  EXPECT_NE(hasher({"Orders", 3}), hasher({"Packets", 3}));
}

TEST(StreamPartitionHasherTest, AdjacentPartitionsAvalanche) {
  StreamPartitionHasher hasher;
  int64_t total_flipped = 0;
  int64_t high32_changed = 0;
  constexpr int kPairs = 256;
  for (int p = 0; p < kPairs; ++p) {
    uint64_t a = hasher({"Orders", p});
    uint64_t b = hasher({"Orders", p + 1});
    total_flipped += std::popcount(a ^ b);
    if ((a >> 32) != (b >> 32)) ++high32_changed;
  }
  // A +1 partition step must flip about half of the 64 output bits on
  // average (the old hasher flipped ~2) and must reach the high word.
  EXPECT_GE(total_flipped / kPairs, 24);
  EXPECT_GE(high32_changed, kPairs - 2);
}

TEST(StreamPartitionHasherTest, SpreadsOverPowerOfTwoBuckets) {
  StreamPartitionHasher hasher;
  constexpr size_t kBuckets = 64;
  constexpr int kTopics = 8;
  constexpr int kPartitions = 32;  // 256 keys, ideal load 4 per bucket
  std::array<int, kBuckets> load{};
  std::set<uint64_t> distinct;
  for (int t = 0; t < kTopics; ++t) {
    for (int p = 0; p < kPartitions; ++p) {
      uint64_t h = hasher({"topic-" + std::to_string(t), p});
      distinct.insert(h);
      ++load[h & (kBuckets - 1)];
    }
  }
  EXPECT_EQ(distinct.size(), size_t{kTopics * kPartitions});
  // No bucket may carry more than 4x the ideal load. The old hasher packed
  // each topic's partitions into runs, overloading shared low-bit residues.
  for (size_t b = 0; b < kBuckets; ++b) {
    EXPECT_LE(load[b], 16) << "bucket " << b << " overloaded";
  }
}

}  // namespace
}  // namespace sqs
