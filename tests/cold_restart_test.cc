// Kill-restart-verify harness for the durable log (docs/DURABILITY.md):
//  - crash matrix: one death test per registered crash point — the child
//    runs a durable workload with the point armed and _exits at that exact
//    boundary; the parent cold-restarts from the surviving segment files and
//    verifies the recovered log is a contiguous, uncorrupted prefix of the
//    acknowledged sequence (no gap, no duplicate, no fabricated record);
//  - torn-write soak: seeded power-loss storms through the fault-injecting
//    file layer across several broker generations, with the same prefix
//    invariant checked after every recovery;
//  - SQL-level cold restarts: a windowed exactly-once query killed mid-run
//    resumes from the recovered checkpoint/changelog/output topics in a
//    brand-new process image and its final output is byte-equal to the
//    batch oracle.
#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <random>
#include <set>
#include <string>
#include <vector>

#include "core/executor.h"
#include "io/crashpoint.h"
#include "io/fault_file.h"
#include "workload/generators.h"

namespace sqs::core {
namespace {

constexpr int32_t kPartitions = 4;

constexpr const char* kTumblingStream =
    "SELECT STREAM productId, START(rowtime) AS ws, COUNT(*) AS c, SUM(units) AS su "
    "FROM Orders GROUP BY TUMBLE(rowtime, INTERVAL '10' SECOND), productId";
constexpr const char* kTumblingBatch =
    "SELECT productId, START(rowtime) AS ws, COUNT(*) AS c, SUM(units) AS su "
    "FROM Orders GROUP BY TUMBLE(rowtime, INTERVAL '10' SECOND), productId";

// Deterministic per-test scratch dir. Death-test children (threadsafe style)
// re-execute the test preamble, so the path must be a pure function of the
// test identity: parent and child land on the same directory, and the wipe
// in the child happens before any crash artifacts exist.
std::string TestDir() {
  const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
  std::string dir = std::filesystem::temp_directory_path() /
                    ("sqs_cold_" + std::string(info->test_suite_name()) + "_" +
                     std::string(info->name()));
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

Message Msg(const std::string& key, const std::string& value) {
  Message m;
  m.key = ToBytes(key);
  m.value = ToBytes(value);
  return m;
}

DurableLogOptions DurableAt(const std::string& dir,
                            FsyncPolicy fsync = FsyncPolicy::kAlways,
                            io::FileFactoryPtr factory = nullptr,
                            int64_t segment_bytes = 256) {
  DurableLogOptions o;
  o.enabled = true;
  o.dir = dir;
  o.segment_bytes = segment_bytes;
  o.fsync = fsync;
  o.factory = std::move(factory);
  return o;
}

// ---------------------------------------------------------------------------
// Crash matrix: every registered crash point, kill-restart-verify
// ---------------------------------------------------------------------------

class CrashMatrix : public ::testing::TestWithParam<std::string> {};

// The workload the child dies inside. It deterministically drives every
// registered crash point at least once: appends (write + fsync + the initial
// roll), a segment roll under a tiny segment budget, a retention rewrite,
// and a checkpoint-barrier append. Exit codes: 86 = armed point fired (the
// only pass), 97 = setup failed, 99 = the armed point never fired.
[[noreturn]] void RunCrashWorkload(const std::string& dir, const std::string& point) {
  Broker broker;
  if (!broker.EnableDurability(DurableAt(dir)).ok()) _exit(97);
  TopicConfig data;
  data.num_partitions = 1;
  data.retention_messages = 4;
  if (!broker.CreateTopic("data", data).ok()) _exit(97);
  TopicConfig cp;
  cp.num_partitions = 1;
  cp.fsync_barrier = true;
  if (!broker.CreateTopic("cp", cp).ok()) _exit(97);
  // Armed only after setup: the point then fires on the data path below,
  // not inside topic-creation metadata appends.
  if (!io::ArmCrashPoint(point).ok()) _exit(97);
  for (int i = 0; i < 10; ++i) {
    (void)broker.Append({"data", 0}, Msg("k", "v" + std::to_string(i)));
  }
  (void)broker.EnforceRetention("data");
  (void)broker.Append({"cp", 0}, Msg("task-0", "offsets"));
  _exit(99);
}

TEST_P(CrashMatrix, ColdRestartAfterCrashIsPrefixConsistent) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  const std::string point = GetParam();
  const std::string dir = TestDir();

  EXPECT_EXIT(RunCrashWorkload(dir, point),
              ::testing::ExitedWithCode(io::kCrashPointExitCode), "");

  // Cold restart in the parent, from exactly the bytes the dead process
  // left behind. Recovery itself must succeed at every crash point.
  Broker recovered;
  ASSERT_TRUE(recovered.EnableDurability(DurableAt(dir)).ok()) << point;
  ASSERT_TRUE(recovered.HasTopic("data")) << point;
  ASSERT_TRUE(recovered.HasTopic("cp")) << point;

  // The oracle: append i carried value "v<i>" at offset i (one partition,
  // sequential appends). Whatever survived must be a contiguous,
  // value-faithful range [begin, end) of that sequence — no gap, no
  // duplicate, no torn record surfaced as data.
  auto begin = recovered.BeginOffset({"data", 0});
  auto end = recovered.EndOffset({"data", 0});
  ASSERT_TRUE(begin.ok() && end.ok()) << point;
  ASSERT_LE(begin.value(), end.value()) << point;
  ASSERT_LE(end.value(), 10) << point;
  auto fetched = recovered.Fetch({"data", 0}, begin.value(), 100);
  ASSERT_TRUE(fetched.ok()) << point;
  ASSERT_EQ(static_cast<int64_t>(fetched.value().size()),
            end.value() - begin.value())
      << point;
  int64_t expect_offset = begin.value();
  for (const auto& im : fetched.value()) {
    EXPECT_EQ(im.offset, expect_offset) << point;
    EXPECT_EQ(FromBytes(im.message.value), "v" + std::to_string(im.offset)) << point;
    ++expect_offset;
  }

  // The recovered log is live: the next append lands at the high watermark.
  auto next = recovered.Append({"data", 0}, Msg("k", "after-restart"));
  ASSERT_TRUE(next.ok()) << point;
  EXPECT_EQ(next.value(), end.value()) << point;
}

INSTANTIATE_TEST_SUITE_P(Points, CrashMatrix,
                         ::testing::ValuesIn(io::RegisteredCrashPoints()));

// ---------------------------------------------------------------------------
// Torn-write soak: seeded power loss across broker generations
// ---------------------------------------------------------------------------

class TornWriteSoak : public ::testing::TestWithParam<int> {};

TEST_P(TornWriteSoak, RecoveryIsPrefixConsistentAcrossPowerLossGenerations) {
  const int seed = GetParam();
  const std::string dir = TestDir();
  io::FileFaultPolicy policy;
  policy.seed = 0xbeefULL + static_cast<uint64_t>(seed);
  auto fault = std::make_shared<io::FaultInjectingFileFactory>(policy);
  std::mt19937_64 rng(static_cast<uint64_t>(seed) * 7919 + 13);

  // acked = offsets handed out by the (now dead) broker; synced = offsets
  // known durable at the last commit barrier. Recovery must surface a count
  // in [synced, acked]: nothing durable lost, nothing unacked fabricated.
  int64_t acked = 0;
  int64_t synced = 0;

  for (int generation = 0; generation < 5; ++generation) {
    auto broker = std::make_unique<Broker>();
    ASSERT_TRUE(
        broker->EnableDurability(DurableAt(dir, FsyncPolicy::kNever, fault, 128))
            .ok())
        << "generation " << generation;
    if (generation == 0) {
      TopicConfig one;
      one.num_partitions = 1;
      ASSERT_TRUE(broker->CreateTopic("t", one).ok());
    } else {
      ASSERT_TRUE(broker->HasTopic("t"));
      int64_t end = broker->EndOffset({"t", 0}).value();
      ASSERT_GE(end, synced) << "durably-synced records lost, generation "
                             << generation;
      ASSERT_LE(end, acked) << "records fabricated, generation " << generation;
      auto rows = broker->Fetch({"t", 0}, 0, 1 << 20);
      ASSERT_TRUE(rows.ok());
      ASSERT_EQ(static_cast<int64_t>(rows.value().size()), end);
      for (const auto& im : rows.value()) {
        ASSERT_EQ(FromBytes(im.message.value), "v" + std::to_string(im.offset))
            << "generation " << generation;
      }
      // Unsynced-unrecovered suffix = in-flight sends that were never
      // acked durable; the producer re-sends them, renumbered from `end`.
      acked = end;
      synced = end;
    }

    const int appends = 20 + static_cast<int>(rng() % 30);
    const int sync_at = static_cast<int>(rng() % appends);
    for (int i = 0; i < appends; ++i) {
      auto r = broker->Append({"t", 0}, Msg("k", "v" + std::to_string(acked)));
      ASSERT_TRUE(r.ok());
      ASSERT_EQ(r.value(), acked);
      ++acked;
      if (i == sync_at) {
        ASSERT_TRUE(broker->SyncDurableLog().ok());
        synced = acked;
      }
    }

    // Power loss: unsynced tails vanish, except a seeded torn prefix per
    // dirty file. The dying broker's destructor runs against the dead
    // machine (best-effort, all failures swallowed).
    fault->CrashAndDropUnsynced(/*torn_rate=*/0.8);
    broker.reset();
    fault->Revive();
  }
  // The storm actually tore files (seeded, hence deterministic per seed).
  EXPECT_GE(fault->torn_files() + fault->injected_bitflips(), 1);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TornWriteSoak, ::testing::Range(0, 6));

// ---------------------------------------------------------------------------
// SQL-level cold restart: exactly-once windowed query vs. batch oracle
// ---------------------------------------------------------------------------

class ColdRestartSql : public ::testing::Test {
 protected:
  static Config DurableDefaults() {
    Config defaults;
    defaults.SetInt(cfg::kContainerCount, 2);
    defaults.SetInt(cfg::kCommitEveryMessages, 50);
    defaults.Set(cfg::kTaskDelivery, "exactly-once");
    defaults.Set(cfg::kCheckpointTopic, "__cp_cold");
    defaults.SetInt(cfg::kRetryMaxAttempts, 3);
    defaults.SetInt(cfg::kRetryBackoffMs, 1);
    defaults.SetInt(cfg::kRetryBackoffMaxMs, 2);
    defaults.SetInt(cfg::kContainerRestartMax, 5);
    defaults.SetInt(cfg::kContainerRestartBackoffMs, 1);
    defaults.SetInt(cfg::kContainerRestartBackoffMaxMs, 4);
    return defaults;
  }

  // Fresh environment wired to the durable log at `dir` (recovering whatever
  // a previous incarnation left there), with the paper sources registered.
  EnvironmentPtr MakeDurableEnv(const std::string& dir) {
    EnvironmentPtr env = SamzaSqlEnvironment::Make();
    EXPECT_TRUE(
        env->broker->EnableDurability(DurableAt(dir, FsyncPolicy::kAlways, nullptr,
                                                /*segment_bytes=*/16 << 10))
            .ok());
    EXPECT_TRUE(workload::SetupPaperSources(*env, kPartitions).ok());
    return env;
  }

  void ProduceOrders(SamzaSqlEnvironment& env, int64_t count) {
    workload::OrdersGeneratorOptions options;
    options.num_products = 20;
    workload::OrdersGenerator gen(env, options);
    ASSERT_TRUE(gen.Produce(count).ok());
    last_rowtime_ = gen.last_rowtime();
  }

  void ProduceWatermarkSentinels(EnvironmentPtr& env) {
    auto schema = env->catalog->GetSource("Orders").value().schema;
    AvroRowSerde serde(schema);
    Producer producer(env->broker, env->clock);
    for (int32_t p = 0; p < kPartitions; ++p) {
      Row row{Value(last_rowtime_ + 3'600'000), Value(int32_t{9999}),
              Value(int64_t{-1}), Value(int32_t{0}), Value("sentinel")};
      ASSERT_TRUE(
          producer.SendTo({"Orders", p}, Bytes{}, serde.SerializeToBytes(row)).ok());
    }
  }

  static std::multiset<std::string> NonSentinel(const std::vector<Row>& rows) {
    std::multiset<std::string> out;
    for (const Row& r : rows) {
      if (r[0] == Value(int32_t{9999})) continue;
      out.insert(RowToString(r));
    }
    return out;
  }

  int64_t last_rowtime_ = 0;
};

// Full run, then cold restart: the output topic read back from a recovered
// broker in a fresh process image is byte-equal to what the job produced.
TEST_F(ColdRestartSql, CompletedJobOutputSurvivesColdRestartByteEqual) {
  const std::string dir = TestDir();
  std::multiset<std::string> expected;
  std::string output_topic;
  std::map<int32_t, int64_t> input_ends;
  {
    EnvironmentPtr env = MakeDurableEnv(dir);
    ProduceOrders(*env, 600);
    ProduceWatermarkSentinels(env);
    {
      QueryExecutor oracle(env);
      auto result = oracle.Execute(kTumblingBatch);
      ASSERT_TRUE(result.ok()) << result.status().ToString();
      expected = NonSentinel(result.value().rows);
    }
    ASSERT_GT(expected.size(), 10u);

    QueryExecutor executor(env, DurableDefaults());
    auto submitted = executor.Execute(kTumblingStream);
    ASSERT_TRUE(submitted.ok()) << submitted.status().ToString();
    output_topic = submitted.value().output_topic;
    ASSERT_TRUE(executor.RunJobsUntilQuiescent().ok());
    auto rows = executor.ReadOutputRows(output_topic);
    ASSERT_TRUE(rows.ok());
    ASSERT_EQ(NonSentinel(rows.value()), expected);
    for (int32_t p = 0; p < kPartitions; ++p) {
      input_ends[p] = env->broker->EndOffset({"Orders", p}).value();
    }
    // Environment (and with it the heap broker) dies here: a cold stop.
  }

  EnvironmentPtr env = MakeDurableEnv(dir);
  // Input, checkpoint, and output topics all came back from segments.
  for (int32_t p = 0; p < kPartitions; ++p) {
    EXPECT_EQ(env->broker->EndOffset({"Orders", p}).value(), input_ends[p]);
  }
  EXPECT_GT(env->broker->EndOffset({"__cp_cold", 0}).value(), 0);
  // Resume the completed query (the schema registry is heap state, so the
  // resubmission re-registers the output schema). The recovered checkpoints
  // say all input is consumed: the job replays nothing, emits nothing, and
  // the output topic still holds exactly the pre-restart rows.
  const int64_t output_end_before =
      env->broker->EndOffset({output_topic, 0}).value();
  QueryExecutor executor(env, DurableDefaults());
  auto submitted = executor.Execute(kTumblingStream);
  ASSERT_TRUE(submitted.ok()) << submitted.status().ToString();
  ASSERT_EQ(submitted.value().output_topic, output_topic);
  ASSERT_TRUE(executor.RunJobsUntilQuiescent().ok());
  EXPECT_EQ(env->broker->EndOffset({output_topic, 0}).value(), output_end_before);
  auto rows = executor.ReadOutputRows(output_topic);
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  EXPECT_EQ(NonSentinel(rows.value()), expected);
}

// Kill mid-run, cold restart, resume: the second incarnation picks up from
// the recovered checkpoints (same deterministic job name), replays through
// the recovered producer-dedup state, and the combined output is byte-equal
// to the oracle — exactly-once across a process boundary.
TEST_F(ColdRestartSql, InterruptedJobResumesAfterColdRestartByteEqual) {
  const std::string dir = TestDir();
  std::multiset<std::string> expected;
  std::string output_topic;
  {
    EnvironmentPtr env = MakeDurableEnv(dir);
    ProduceOrders(*env, 600);
    ProduceWatermarkSentinels(env);
    {
      QueryExecutor oracle(env);
      auto result = oracle.Execute(kTumblingBatch);
      ASSERT_TRUE(result.ok()) << result.status().ToString();
      expected = NonSentinel(result.value().rows);
    }
    ASSERT_GT(expected.size(), 10u);

    QueryExecutor executor(env, DurableDefaults());
    auto submitted = executor.Execute(kTumblingStream);
    ASSERT_TRUE(submitted.ok()) << submitted.status().ToString();
    output_topic = submitted.value().output_topic;
    JobRunner* job = executor.job(submitted.value().job_index);
    ASSERT_NE(job, nullptr);
    // Partial progress past at least one commit, then the "process" dies
    // with the job incomplete (fsync=always: every acked append is already
    // on stable storage; no explicit final sync).
    ASSERT_TRUE(job->container(0)->RunUntilCaughtUp(200).ok());
  }

  EnvironmentPtr env = MakeDurableEnv(dir);
  // The first incarnation's commits came back from disk.
  EXPECT_GT(env->broker->EndOffset({"__cp_cold", 0}).value(), 0);

  QueryExecutor executor(env, DurableDefaults());
  auto submitted = executor.Execute(kTumblingStream);
  ASSERT_TRUE(submitted.ok()) << submitted.status().ToString();
  // Deterministic naming: the resumed query is the same job, reading the
  // same checkpoint keys and writing the same output topic.
  ASSERT_EQ(submitted.value().output_topic, output_topic);
  ASSERT_TRUE(executor.RunJobsUntilQuiescent().ok());

  auto rows = executor.ReadOutputRows(output_topic);
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  EXPECT_EQ(NonSentinel(rows.value()), expected);
}

// ---------------------------------------------------------------------------
// Durability startup failures are fatal, never a silent downgrade
// ---------------------------------------------------------------------------

// log.durable=true promises crash safety; if the durable log cannot come up,
// running on heap-only (as the executor once did, with a warning) would
// silently break that promise. The constructor latches the error and every
// Execute / RunJobsUntilQuiescent call fails with it.
TEST(DurableStartup, FailedEnableDurabilityIsFatal) {
  const std::string dir = TestDir();
  // log.dir nested under a regular file: CreateDirs cannot succeed.
  { std::ofstream(dir + "/blocker") << "x"; }
  EnvironmentPtr env = SamzaSqlEnvironment::Make();
  Config defaults;
  defaults.Set(cfg::kLogDurable, "true");
  defaults.Set(cfg::kLogDir, dir + "/blocker/segments");
  QueryExecutor executor(env, defaults);
  EXPECT_FALSE(executor.startup_error().ok());
  EXPECT_FALSE(executor.Execute("SELECT 1 FROM Orders").ok());
  EXPECT_FALSE(executor.RunJobsUntilQuiescent().ok());
  EXPECT_FALSE(env->broker->durable());
}

TEST(DurableStartup, RejectedLogConfigIsFatalOnlyWhenDurableRequested) {
  EnvironmentPtr env = SamzaSqlEnvironment::Make();
  Config no_dir;
  no_dir.Set(cfg::kLogDurable, "true");  // missing log.dir
  QueryExecutor executor(env, no_dir);
  EXPECT_FALSE(executor.startup_error().ok());
  EXPECT_FALSE(executor.Execute("SELECT 1 FROM Orders").ok());

  // The same family of bad keys without log.durable merely warns: the user
  // never asked for durability, so nothing is silently lost.
  Config off;
  off.Set(cfg::kLogFsync, "bogus");
  QueryExecutor tolerant(env, off);
  EXPECT_TRUE(tolerant.startup_error().ok());
}

}  // namespace
}  // namespace sqs::core
