// Tracing tests: sampling determinism, ring-buffer eviction, span
// parent/child links and self-time telescoping, Chrome trace export, and
// end-to-end context propagation — through a filter/project pipeline, a
// windowed stream-stream join, and a two-job (insert -> scan) pipeline.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "common/logging.h"
#include "common/tracing.h"
#include "core/executor.h"
#include "workload/generators.h"

namespace sqs {
namespace {

class TracerTest : public ::testing::Test {
 protected:
  void SetUp() override { Tracer::Instance().Reset(); }
  void TearDown() override { Tracer::Instance().Reset(); }
};

TEST_F(TracerTest, DisabledByDefaultAndNeverSamples) {
  Tracer& tracer = Tracer::Instance();
  EXPECT_FALSE(tracer.enabled());
  for (int i = 0; i < 100; ++i) EXPECT_FALSE(tracer.MaybeStartTrace().valid());
  EXPECT_EQ(tracer.recorded_total(), 0);
}

TEST_F(TracerTest, SamplingIsDeterministicCounterBased) {
  Tracer& tracer = Tracer::Instance();
  tracer.Configure(0.25);
  EXPECT_TRUE(tracer.enabled());
  EXPECT_DOUBLE_EQ(tracer.sample_rate(), 0.25);
  std::vector<bool> first;
  for (int i = 0; i < 100; ++i) first.push_back(tracer.MaybeStartTrace().valid());
  int sampled = 0;
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(first[static_cast<size_t>(i)], i % 4 == 0) << "decision " << i;
    if (first[static_cast<size_t>(i)]) ++sampled;
  }
  EXPECT_EQ(sampled, 25);
  // Same input order after a reset -> the same tuples are traced.
  tracer.Reset();
  tracer.Configure(0.25);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(tracer.MaybeStartTrace().valid(), first[static_cast<size_t>(i)]);
  }
}

TEST_F(TracerTest, RateOneSamplesEverything) {
  Tracer& tracer = Tracer::Instance();
  tracer.Configure(1.0);
  std::set<uint64_t> ids;
  for (int i = 0; i < 10; ++i) {
    TraceContext ctx = tracer.MaybeStartTrace();
    ASSERT_TRUE(ctx.valid());
    EXPECT_EQ(ctx.span_id, 0u);  // root: first span under it has no parent
    ids.insert(ctx.trace_id);
  }
  EXPECT_EQ(ids.size(), 10u);  // fresh trace id each time
}

TEST_F(TracerTest, RingBufferEvictsOldestFirst) {
  Tracer& tracer = Tracer::Instance();
  tracer.Configure(1.0, /*capacity=*/4);
  for (int i = 0; i < 10; ++i) {
    Span s;
    s.trace_id = 1;
    s.span_id = static_cast<uint64_t>(i + 1);
    s.name = "s" + std::to_string(i);
    tracer.Record(s);
  }
  EXPECT_EQ(tracer.recorded_total(), 10);
  EXPECT_EQ(tracer.evicted(), 6);
  std::vector<Span> spans = tracer.Spans();
  ASSERT_EQ(spans.size(), 4u);
  // Oldest first: spans 6..9 survive.
  for (int i = 0; i < 4; ++i) EXPECT_EQ(spans[static_cast<size_t>(i)].name,
                                        "s" + std::to_string(i + 6));
  tracer.Clear();
  EXPECT_EQ(tracer.recorded_total(), 0);
  EXPECT_TRUE(tracer.Spans().empty());
  EXPECT_TRUE(tracer.enabled());  // Clear keeps configuration
}

TEST_F(TracerTest, TraceSpanLinksParentChildAndAmbientContext) {
  Tracer& tracer = Tracer::Instance();
  tracer.Configure(1.0);
  EXPECT_FALSE(CurrentTraceContext().valid());
  TraceContext root = tracer.MaybeStartTrace();
  {
    TraceSpan outer(root, "outer", "job.t");
    ASSERT_TRUE(outer.active());
    TraceContext ambient = CurrentTraceContext();
    EXPECT_EQ(ambient.trace_id, root.trace_id);
    EXPECT_EQ(ambient.span_id, outer.context().span_id);
    {
      TraceSpan inner(ambient, "inner", "job.t");
      ASSERT_TRUE(inner.active());
      EXPECT_EQ(CurrentTraceContext().span_id, inner.context().span_id);
    }
    // Restored to the outer span after the inner one closes.
    EXPECT_EQ(CurrentTraceContext().span_id, outer.context().span_id);
  }
  EXPECT_FALSE(CurrentTraceContext().valid());
  std::vector<Span> spans = tracer.Spans();
  ASSERT_EQ(spans.size(), 2u);  // recorded on destruction: inner, then outer
  EXPECT_EQ(spans[0].name, "inner");
  EXPECT_EQ(spans[1].name, "outer");
  EXPECT_EQ(spans[1].parent_span_id, 0u);
  EXPECT_EQ(spans[0].parent_span_id, spans[1].span_id);
  EXPECT_EQ(spans[0].trace_id, spans[1].trace_id);
}

TEST_F(TracerTest, InactiveSpanClearsAmbientContextForItsExtent) {
  Tracer& tracer = Tracer::Instance();
  tracer.Configure(1.0);
  TraceContext root = tracer.MaybeStartTrace();
  TraceSpan outer(root, "outer", "job.t");
  {
    // An untraced message flows through: nothing may attach to `outer`.
    TraceSpan untraced(TraceContext{}, "untraced", "job.t");
    EXPECT_FALSE(untraced.active());
    EXPECT_FALSE(CurrentTraceContext().valid());
  }
  EXPECT_TRUE(CurrentTraceContext().valid());
}

TEST_F(TracerTest, ComputeSpanStatsSelfTimeTelescopes) {
  // root(100) -> a(60) -> b(20); self: root=40, a=40, b=20.
  auto mk = [](uint64_t span, uint64_t parent, int64_t dur, const char* name,
               const char* scope) {
    Span s;
    s.trace_id = 7;
    s.span_id = span;
    s.parent_span_id = parent;
    s.duration_ns = dur;
    s.name = name;
    s.scope = scope;
    return s;
  };
  std::vector<Span> spans{mk(1, 0, 100, "process", "job.t"),
                          mk(2, 1, 60, "op0-scan", "job.t"),
                          mk(3, 2, 20, "op1-filter", "job.t"),
                          mk(4, 3, 15, "produce", "producer.out")};
  auto all = ComputeSpanStats(spans, "");
  EXPECT_EQ(all["process"].inclusive_ns, 100);
  EXPECT_EQ(all["process"].self_ns, 40);
  EXPECT_EQ(all["op0-scan"].self_ns, 40);
  EXPECT_EQ(all["op1-filter"].self_ns, 5);  // minus the 15ns producer child
  // Scoped to the job: the producer child is filtered out and NOT
  // subtracted, so job-scope self times telescope to the process time.
  auto scoped = ComputeSpanStats(spans, "job.");
  EXPECT_EQ(scoped.count("produce"), 0u);
  EXPECT_EQ(scoped["op1-filter"].self_ns, 20);
  int64_t total_self = 0;
  for (const auto& [name, st] : scoped) total_self += st.self_ns;
  EXPECT_EQ(total_self, scoped["process"].inclusive_ns);
}

TEST_F(TracerTest, ChromeTraceJsonShape) {
  Span s;
  s.trace_id = 3;
  s.span_id = 9;
  s.parent_span_id = 4;
  s.start_ns = 2'000;
  s.duration_ns = 1'500;
  s.name = "op2-filter";
  s.scope = "job.Partition 0";
  std::string json = SpansToChromeTraceJson({s});
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  // One thread-name metadata event per scope, then the complete event.
  EXPECT_NE(json.find("\"ph\":\"M\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"job.Partition 0\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ts\":2.000"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":1.500"), std::string::npos);
  EXPECT_NE(json.find("\"trace_id\":3"), std::string::npos);
  EXPECT_NE(json.find("\"parent_span_id\":4"), std::string::npos);
}

// ---------------------------------------------------------------------------
// End-to-end propagation through real jobs.

class TracingE2eTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Tracer::Instance().Reset();
    env_ = core::SamzaSqlEnvironment::Make();
    ASSERT_TRUE(workload::SetupPaperSources(*env_, 2).ok());
    Config defaults;
    defaults.SetInt(cfg::kContainerCount, 1);
    executor_ = std::make_unique<core::QueryExecutor>(env_, defaults);
  }
  void TearDown() override { Tracer::Instance().Reset(); }

  // Index span_id -> span for ancestry walks.
  static std::map<uint64_t, Span> ById(const std::vector<Span>& spans) {
    std::map<uint64_t, Span> by_id;
    for (const Span& s : spans) by_id[s.span_id] = s;
    return by_id;
  }

  // Walk parent links from `leaf` to the root, returning span names
  // root-first. Fails the test on a broken link.
  static std::vector<std::string> AncestryOf(const Span& leaf,
                                             const std::map<uint64_t, Span>& by_id) {
    std::vector<std::string> chain{leaf.name};
    Span cur = leaf;
    while (cur.parent_span_id != 0) {
      auto it = by_id.find(cur.parent_span_id);
      if (it == by_id.end()) {
        ADD_FAILURE() << "broken parent link from span " << cur.name;
        break;
      }
      EXPECT_EQ(it->second.trace_id, leaf.trace_id);
      cur = it->second;
      chain.insert(chain.begin(), cur.name);
    }
    return chain;
  }

  core::EnvironmentPtr env_;
  std::unique_ptr<core::QueryExecutor> executor_;
};

TEST_F(TracingE2eTest, TraceFollowsTupleProducerToInsert) {
  // Enable tracing BEFORE producing, so traces root at the producer append
  // (Figure 4: producer -> log -> scan -> operators -> insert). Fusion is
  // pinned off: this test covers the interpreted per-operator span chain.
  Config defaults;
  defaults.SetInt(cfg::kContainerCount, 1);
  defaults.Set(core::sqlcfg::kFusion, "off");
  executor_ = std::make_unique<core::QueryExecutor>(env_, defaults);
  Tracer::Instance().Configure(1.0);
  workload::OrdersGenerator gen(*env_, {});
  ASSERT_TRUE(gen.Produce(50).ok());

  auto submitted = executor_->Execute(
      "SELECT STREAM orderId, units * 2 AS doubled FROM Orders WHERE units >= 0");
  ASSERT_TRUE(submitted.ok()) << submitted.status().ToString();
  ASSERT_TRUE(executor_->RunJobsUntilQuiescent().ok());

  std::vector<Span> spans = Tracer::Instance().Spans();
  auto by_id = ById(spans);
  // Find an output append (insert -> producer.<output topic>) and walk up:
  // produce(root) -> process -> scan -> filter -> project -> insert -> produce.
  bool found = false;
  for (const Span& s : spans) {
    if (s.name != "produce" || s.scope.find("producer.samzasql-query-") != 0) {
      continue;
    }
    std::vector<std::string> chain = AncestryOf(s, by_id);
    ASSERT_GE(chain.size(), 6u) << "short chain";
    EXPECT_EQ(chain.front(), "produce");             // root: input append
    EXPECT_EQ(chain[1], "process");                  // container loop
    EXPECT_NE(chain[2].find("-scan"), std::string::npos);
    EXPECT_NE(chain[3].find("-filter"), std::string::npos);
    EXPECT_NE(chain[4].find("-project"), std::string::npos);
    EXPECT_NE(chain[5].find("-insert"), std::string::npos);
    found = true;
    break;
  }
  EXPECT_TRUE(found) << "no traced output append found among " << spans.size()
                     << " spans";
}

TEST_F(TracingE2eTest, TraceFollowsTupleThroughFusedStage) {
  // With fusion on (the default), the terminal filter/project chain is one
  // fused stage: produce -> process -> fused<..> -> encode -> produce, with
  // the serde boundary exposed as decode/encode child spans.
  Tracer::Instance().Configure(1.0);
  workload::OrdersGenerator gen(*env_, {});
  ASSERT_TRUE(gen.Produce(50).ok());

  auto submitted = executor_->Execute(
      "SELECT STREAM orderId, units * 2 AS doubled FROM Orders WHERE units >= 0");
  ASSERT_TRUE(submitted.ok()) << submitted.status().ToString();
  ASSERT_TRUE(executor_->RunJobsUntilQuiescent().ok());

  std::vector<Span> spans = Tracer::Instance().Spans();
  auto by_id = ById(spans);
  bool found = false;
  for (const Span& s : spans) {
    if (s.name != "produce" || s.scope.find("producer.samzasql-query-") != 0) {
      continue;
    }
    std::vector<std::string> chain = AncestryOf(s, by_id);
    ASSERT_GE(chain.size(), 5u) << "short chain";
    EXPECT_EQ(chain.front(), "produce");              // root: input append
    EXPECT_EQ(chain[1], "process");                   // container loop
    EXPECT_NE(chain[2].find("fused<"), std::string::npos) << chain[2];
    EXPECT_EQ(chain[3], "encode");                    // serialize + send
    found = true;
    break;
  }
  EXPECT_TRUE(found) << "no traced output append found among " << spans.size()
                     << " spans";
  // The per-operator spans of the interpreted DAG are gone.
  for (const Span& s : spans) {
    EXPECT_EQ(s.name.find("-filter"), std::string::npos) << s.name;
    EXPECT_EQ(s.name.find("-project"), std::string::npos) << s.name;
  }
}

TEST_F(TracingE2eTest, TraceCrossesWindowedJoin) {
  Tracer::Instance().Configure(1.0);
  ASSERT_TRUE(workload::ProducePackets(*env_, 100).ok());
  auto submitted = executor_->Execute(
      "SELECT STREAM PacketsR1.packetId, "
      "PacketsR2.rowtime - PacketsR1.rowtime AS timeToTravel "
      "FROM PacketsR1 JOIN PacketsR2 ON "
      "PacketsR1.rowtime BETWEEN PacketsR2.rowtime - INTERVAL '2' SECOND "
      "AND PacketsR2.rowtime + INTERVAL '2' SECOND "
      "AND PacketsR1.packetId = PacketsR2.packetId");
  ASSERT_TRUE(submitted.ok()) << submitted.status().ToString();
  ASSERT_TRUE(executor_->RunJobsUntilQuiescent().ok());

  std::vector<Span> spans = Tracer::Instance().Spans();
  auto by_id = ById(spans);
  int join_outputs = 0;
  for (const Span& s : spans) {
    if (s.name.find("-insert") == std::string::npos) continue;
    std::vector<std::string> chain = AncestryOf(s, by_id);
    // Join output tuples chain through the join operator span, which chains
    // to the scan of the side that triggered the match.
    bool through_join = false, through_scan = false;
    for (const std::string& name : chain) {
      if (name.find("-join") != std::string::npos) through_join = true;
      if (name.find("-scan") != std::string::npos) through_scan = true;
    }
    EXPECT_TRUE(through_join) << "insert without join ancestor";
    EXPECT_TRUE(through_scan) << "insert without scan ancestor";
    ++join_outputs;
  }
  EXPECT_GT(join_outputs, 0);
}

TEST_F(TracingE2eTest, TraceCrossesTwoJobPipeline) {
  // Config-driven enablement: the container reads tracing.sample.rate.
  Config defaults;
  defaults.SetInt(cfg::kContainerCount, 1);
  defaults.Set(cfg::kTracingSampleRate, "1");
  executor_ = std::make_unique<core::QueryExecutor>(env_, defaults);

  auto first = executor_->Execute(
      "INSERT INTO BigOrders SELECT STREAM rowtime, orderId, units "
      "FROM Orders WHERE units > 10");
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  // The first job's container Start() configures the tracer; produce after
  // submission so appends are sampled.
  workload::OrdersGenerator gen(*env_, {});
  ASSERT_TRUE(gen.Produce(50).ok());
  auto second = executor_->Execute(
      "SELECT STREAM orderId FROM BigOrders WHERE units > 50");
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  ASSERT_TRUE(executor_->RunJobsUntilQuiescent().ok());

  // At least one trace must have spans in BOTH job scopes: the insert of
  // job 0 stamps the intermediate topic's messages, job 1's scan continues
  // the same trace (Kappa pipeline, paper §2).
  std::map<uint64_t, std::set<std::string>> jobs_by_trace;
  for (const Span& s : Tracer::Instance().Spans()) {
    if (s.scope.find("samzasql-query-") == 0) {
      jobs_by_trace[s.trace_id].insert(s.scope.substr(0, s.scope.find('.')));
    }
  }
  bool crossed = false;
  for (const auto& [trace, jobs] : jobs_by_trace) {
    if (jobs.size() >= 2) crossed = true;
  }
  EXPECT_TRUE(crossed) << "no trace crossed the job boundary ("
                       << jobs_by_trace.size() << " traces seen)";
}

}  // namespace
}  // namespace sqs
