// Lexer, parser and expression-layer tests.
#include <gtest/gtest.h>

#include <random>

#include "sql/expr.h"
#include "sql/lexer.h"
#include "sql/parser.h"

namespace sqs::sql {
namespace {

TEST(LexerTest, KeywordsCaseInsensitive) {
  auto tokens = Lex("select Stream FROM where").value();
  ASSERT_EQ(tokens.size(), 5u);  // incl. end
  EXPECT_TRUE(tokens[0].IsKeyword("SELECT"));
  EXPECT_TRUE(tokens[1].IsKeyword("STREAM"));
  EXPECT_TRUE(tokens[2].IsKeyword("FROM"));
  EXPECT_TRUE(tokens[3].IsKeyword("WHERE"));
}

TEST(LexerTest, IdentifiersKeepCase) {
  auto tokens = Lex("productId \"Quoted Name\"").value();
  EXPECT_EQ(tokens[0].type, TokenType::kIdentifier);
  EXPECT_EQ(tokens[0].text, "productId");
  EXPECT_EQ(tokens[1].text, "Quoted Name");
}

TEST(LexerTest, NumbersAndStrings) {
  auto tokens = Lex("42 3.25 1e3 'it''s'").value();
  EXPECT_EQ(tokens[0].type, TokenType::kIntLiteral);
  EXPECT_EQ(tokens[0].int_value, 42);
  EXPECT_EQ(tokens[1].type, TokenType::kDoubleLiteral);
  EXPECT_EQ(tokens[1].double_value, 3.25);
  EXPECT_EQ(tokens[2].type, TokenType::kDoubleLiteral);
  EXPECT_EQ(tokens[2].double_value, 1000.0);
  EXPECT_EQ(tokens[3].type, TokenType::kStringLiteral);
  EXPECT_EQ(tokens[3].text, "it's");
}

TEST(LexerTest, OperatorsAndComments) {
  auto tokens = Lex("a <= b -- comment\n <> c /* block */ || d != e").value();
  std::vector<TokenType> types;
  for (const auto& t : tokens) types.push_back(t.type);
  EXPECT_EQ(types[1], TokenType::kLe);
  EXPECT_EQ(types[3], TokenType::kNeq);
  EXPECT_EQ(types[5], TokenType::kConcat);
  EXPECT_EQ(types[7], TokenType::kNeq);
}

TEST(LexerTest, Errors) {
  EXPECT_FALSE(Lex("'unterminated").ok());
  EXPECT_FALSE(Lex("\"unterminated").ok());
  EXPECT_FALSE(Lex("/* unterminated").ok());
  EXPECT_FALSE(Lex("a ! b").ok());
  EXPECT_FALSE(Lex("a | b").ok());
  EXPECT_FALSE(Lex("a # b").ok());
}

TEST(ParserTest, SelectStarStream) {
  auto stmt = ParseStatement("SELECT STREAM * FROM Orders").value();
  ASSERT_TRUE(stmt.select);
  EXPECT_TRUE(stmt.select->stream);
  ASSERT_EQ(stmt.select->items.size(), 1u);
  EXPECT_EQ(stmt.select->items[0].expr->kind, ExprKind::kStar);
  EXPECT_EQ(stmt.select->from.name, "Orders");
}

TEST(ParserTest, FilterQueryFromPaper) {
  // Listing 2.
  auto stmt = ParseStatement(
                  "SELECT STREAM rowtime, productId, units FROM Orders WHERE units > 25;")
                  .value();
  ASSERT_TRUE(stmt.select);
  EXPECT_EQ(stmt.select->items.size(), 3u);
  ASSERT_TRUE(stmt.select->where);
  EXPECT_EQ(stmt.select->where->ToString(), "(units > 25)");
}

TEST(ParserTest, SelectWithoutStreamIsRelational) {
  auto stmt = ParseStatement("SELECT * FROM Orders").value();
  EXPECT_FALSE(stmt.select->stream);
}

TEST(ParserTest, AliasForms) {
  auto stmt = ParseStatement("SELECT a AS x, b y FROM T t").value();
  EXPECT_EQ(stmt.select->items[0].alias, "x");
  EXPECT_EQ(stmt.select->items[1].alias, "y");
  EXPECT_EQ(stmt.select->from.alias, "t");
}

TEST(ParserTest, TumbleWindowFromPaper) {
  // Listing 4.
  auto stmt = ParseStatement(
                  "SELECT STREAM START(rowtime), COUNT(*) FROM Orders "
                  "GROUP BY TUMBLE(rowtime, INTERVAL '1' HOUR)")
                  .value();
  ASSERT_EQ(stmt.select->group_by.size(), 1u);
  const Expr& g = *stmt.select->group_by[0];
  EXPECT_EQ(g.func_name, "TUMBLE");
  ASSERT_EQ(g.children.size(), 2u);
  EXPECT_EQ(g.children[1]->literal.as_int64(), 3600000);
  EXPECT_TRUE(stmt.select->items[1].expr->star_arg);
}

TEST(ParserTest, HopWindowFromPaper) {
  // Listing 5: HOP(rowtime, INTERVAL '1:30' HOUR TO MINUTE, INTERVAL '2'
  // HOUR, TIME '0:30').
  auto stmt = ParseStatement(
                  "SELECT STREAM START(rowtime), COUNT(*) FROM Orders GROUP BY "
                  "HOP(rowtime, INTERVAL '1:30' HOUR TO MINUTE, INTERVAL '2' HOUR, "
                  "TIME '0:30')")
                  .value();
  const Expr& g = *stmt.select->group_by[0];
  EXPECT_EQ(g.func_name, "HOP");
  ASSERT_EQ(g.children.size(), 4u);
  EXPECT_EQ(g.children[1]->literal.as_int64(), 90 * 60 * 1000);
  EXPECT_EQ(g.children[2]->literal.as_int64(), 2 * 3600 * 1000);
  EXPECT_EQ(g.children[3]->literal.as_int64(), 30 * 60 * 1000);
}

TEST(ParserTest, FloorToHourInGroupBy) {
  // Listing 3 core.
  auto stmt = ParseStatement(
                  "SELECT FLOOR(rowtime TO HOUR), productId, COUNT(*), SUM(units) "
                  "FROM Orders GROUP BY FLOOR(rowtime TO HOUR), productId")
                  .value();
  ASSERT_EQ(stmt.select->group_by.size(), 2u);
  const Expr& g = *stmt.select->group_by[0];
  EXPECT_EQ(g.func_name, "FLOOR");
  ASSERT_EQ(g.children.size(), 2u);
  EXPECT_EQ(g.children[1]->literal.as_string(), "HOUR");
}

TEST(ParserTest, SlidingWindowFromPaper) {
  // Listing 6.
  auto stmt = ParseStatement(
                  "SELECT STREAM rowtime, productId, units, SUM(units) OVER "
                  "(PARTITION BY productId ORDER BY rowtime RANGE INTERVAL '1' HOUR "
                  "PRECEDING) unitsLastHour FROM Orders")
                  .value();
  const Expr& w = *stmt.select->items[3].expr;
  EXPECT_EQ(w.kind, ExprKind::kWindowCall);
  EXPECT_EQ(w.func_name, "SUM");
  ASSERT_TRUE(w.window);
  EXPECT_TRUE(w.window->range_based);
  EXPECT_EQ(w.window->preceding_millis, 3600000);
  EXPECT_EQ(w.window->order_by, "rowtime");
  ASSERT_EQ(w.window->partition_by.size(), 1u);
  EXPECT_EQ(stmt.select->items[3].alias, "unitsLastHour");
}

TEST(ParserTest, RowsWindow) {
  auto stmt = ParseStatement(
                  "SELECT STREAM AVG(price) OVER (PARTITION BY ticker ORDER BY rowtime "
                  "ROWS 10 PRECEDING) FROM Bids")
                  .value();
  const Expr& w = *stmt.select->items[0].expr;
  EXPECT_FALSE(w.window->range_based);
  EXPECT_EQ(w.window->preceding_rows, 10);
}

TEST(ParserTest, StreamToStreamJoinFromPaper) {
  // Listing 7 (with the paper's typos fixed).
  auto stmt = ParseStatement(
                  "SELECT STREAM GREATEST(PacketsR1.rowtime, PacketsR2.rowtime) AS rowtime, "
                  "PacketsR1.sourcetime, PacketsR1.packetId, "
                  "PacketsR2.rowtime - PacketsR1.rowtime AS timeToTravel "
                  "FROM PacketsR1 JOIN PacketsR2 ON "
                  "PacketsR1.rowtime BETWEEN PacketsR2.rowtime - INTERVAL '2' SECOND "
                  "AND PacketsR2.rowtime + INTERVAL '2' SECOND "
                  "AND PacketsR1.packetId = PacketsR2.packetId")
                  .value();
  ASSERT_EQ(stmt.select->joins.size(), 1u);
  EXPECT_EQ(stmt.select->joins[0].table.name, "PacketsR2");
  // The ON condition is a conjunction containing a BETWEEN.
  const Expr& cond = *stmt.select->joins[0].condition;
  EXPECT_EQ(cond.kind, ExprKind::kBinary);
  EXPECT_EQ(cond.binary_op, BinaryOp::kAnd);
}

TEST(ParserTest, StreamToRelationJoinFromPaper) {
  // Listing 8.
  auto stmt = ParseStatement(
                  "SELECT STREAM Orders.rowtime, Orders.orderId, Orders.productId, "
                  "Orders.units, Products.supplierId FROM Orders "
                  "JOIN Products ON Orders.productId = Products.productId")
                  .value();
  ASSERT_EQ(stmt.select->joins.size(), 1u);
  const Expr& cond = *stmt.select->joins[0].condition;
  EXPECT_EQ(cond.binary_op, BinaryOp::kEq);
  EXPECT_EQ(cond.children[0]->qualifier, "Orders");
  EXPECT_EQ(cond.children[1]->qualifier, "Products");
}

TEST(ParserTest, CreateViewFromPaper) {
  // Listing 3.
  auto stmts = ParseScript(
                   "CREATE VIEW HourlyOrderTotals (rowtime, productId, c, su) AS "
                   "SELECT FLOOR(rowtime TO HOUR), productId, COUNT(*), SUM(units) "
                   "FROM Orders GROUP BY FLOOR(rowtime TO HOUR), productId; "
                   "SELECT STREAM rowtime, productId FROM HourlyOrderTotals "
                   "WHERE c > 2 OR su > 10;")
                   .value();
  ASSERT_EQ(stmts.size(), 2u);
  ASSERT_TRUE(stmts[0].create_view);
  EXPECT_EQ(stmts[0].create_view->name, "HourlyOrderTotals");
  ASSERT_EQ(stmts[0].create_view->column_names.size(), 4u);
  ASSERT_TRUE(stmts[1].select);
}

TEST(ParserTest, SubqueryInFrom) {
  auto stmt = ParseStatement(
                  "SELECT STREAM rowtime, productId FROM ("
                  "SELECT FLOOR(rowtime TO HOUR) AS rowtime, productId, COUNT(*) AS c "
                  "FROM Orders GROUP BY FLOOR(rowtime TO HOUR), productId) "
                  "WHERE c > 2")
                  .value();
  ASSERT_TRUE(stmt.select->from.subquery);
  EXPECT_EQ(stmt.select->from.subquery->items.size(), 3u);
}

TEST(ParserTest, InsertInto) {
  auto stmt = ParseStatement("INSERT INTO BigOrders SELECT STREAM * FROM Orders "
                             "WHERE units > 100")
                  .value();
  ASSERT_TRUE(stmt.insert);
  EXPECT_EQ(stmt.insert->target, "BigOrders");
  EXPECT_TRUE(stmt.insert->select->stream);
}

TEST(ParserTest, Explain) {
  auto stmt = ParseStatement("EXPLAIN SELECT * FROM Orders").value();
  ASSERT_TRUE(stmt.explain);
}

TEST(ParserTest, OperatorPrecedence) {
  auto e = ParseExpression("1 + 2 * 3 - 4").value();
  EXPECT_EQ(e->ToString(), "((1 + (2 * 3)) - 4)");
  auto logical = ParseExpression("a OR b AND NOT c = 1").value();
  EXPECT_EQ(logical->ToString(), "(a OR (b AND NOT (c = 1)))");
}

TEST(ParserTest, CaseExpression) {
  auto e = ParseExpression(
               "CASE WHEN units > 100 THEN 'big' WHEN units > 10 THEN 'mid' "
               "ELSE 'small' END")
               .value();
  EXPECT_EQ(e->kind, ExprKind::kCase);
  EXPECT_TRUE(e->has_else);
  EXPECT_EQ(e->children.size(), 5u);
}

TEST(ParserTest, CastParses) {
  auto e = ParseExpression("CAST(units AS BIGINT)").value();
  EXPECT_EQ(e->kind, ExprKind::kCast);
  EXPECT_EQ(e->cast_type.kind, TypeKind::kInt64);
  EXPECT_FALSE(ParseExpression("CAST(units AS BLOB)").ok());
}

TEST(ParserTest, IntervalLiterals) {
  EXPECT_EQ(ParseExpression("INTERVAL '5' MINUTE").value()->literal.as_int64(), 300000);
  EXPECT_EQ(ParseExpression("INTERVAL '2' SECOND").value()->literal.as_int64(), 2000);
  EXPECT_EQ(ParseExpression("INTERVAL '1' DAY").value()->literal.as_int64(), 86400000);
  EXPECT_EQ(ParseExpression("INTERVAL '1:30' HOUR TO MINUTE").value()->literal.as_int64(),
            5400000);
  EXPECT_EQ(
      ParseExpression("INTERVAL '1:2:3' HOUR TO SECOND").value()->literal.as_int64(),
      3723000);
  EXPECT_FALSE(ParseExpression("INTERVAL '1:30' HOUR").ok());
  EXPECT_FALSE(ParseExpression("INTERVAL 'abc' HOUR").ok());
  EXPECT_FALSE(ParseExpression("INTERVAL '1' MINUTE TO HOUR").ok());
}

TEST(ParserTest, ParseErrors) {
  EXPECT_FALSE(ParseStatement("SELECT FROM Orders").ok());
  EXPECT_FALSE(ParseStatement("SELECT * Orders").ok());
  EXPECT_FALSE(ParseStatement("SELECT * FROM").ok());
  EXPECT_FALSE(ParseStatement("FROB * FROM Orders").ok());
  EXPECT_FALSE(ParseStatement("SELECT * FROM Orders JOIN").ok());
  EXPECT_FALSE(ParseStatement("SELECT * FROM Orders JOIN P").ok());  // missing ON
  EXPECT_FALSE(ParseStatement("SELECT * FROM Orders trailing garbage !").ok());
  EXPECT_FALSE(ParseStatement("SELECT CASE END FROM T").ok());
}

// --- expression evaluation ---

Row NoRow() { return {}; }

Value EvalConst(const std::string& text) {
  auto e = ParseExpression(text).value();
  // Constant expressions need no resolution.
  auto resolver = [](const std::string&,
                     const std::string& c) -> Result<std::pair<int, FieldType>> {
    return Status::NotFound("no columns: " + c);
  };
  auto st = ResolveExpr(*e, resolver, false);
  if (!st.ok()) throw std::runtime_error(st.ToString());
  return EvalExpr(*e, NoRow());
}

TEST(ExprEvalTest, Arithmetic) {
  EXPECT_EQ(EvalConst("1 + 2 * 3"), Value(int64_t{7}));
  EXPECT_EQ(EvalConst("10 / 4"), Value(int64_t{2}));       // integer division
  EXPECT_EQ(EvalConst("10.0 / 4"), Value(2.5));
  EXPECT_EQ(EvalConst("10 % 3"), Value(int64_t{1}));
  EXPECT_EQ(EvalConst("-(5)"), Value(int64_t{-5}));
  EXPECT_TRUE(EvalConst("1 / 0").is_null());
  EXPECT_TRUE(EvalConst("1 % 0").is_null());
}

TEST(ExprEvalTest, Comparisons) {
  EXPECT_EQ(EvalConst("1 < 2"), Value(true));
  EXPECT_EQ(EvalConst("2 <= 2"), Value(true));
  EXPECT_EQ(EvalConst("3 <> 3"), Value(false));
  EXPECT_EQ(EvalConst("'abc' < 'abd'"), Value(true));
  EXPECT_EQ(EvalConst("1.5 > 1"), Value(true));
  // NULL comparisons are FALSE (documented simplification).
  EXPECT_EQ(EvalConst("NULL = NULL"), Value(false));
}

TEST(ExprEvalTest, Logical) {
  EXPECT_EQ(EvalConst("TRUE AND FALSE"), Value(false));
  EXPECT_EQ(EvalConst("TRUE OR FALSE"), Value(true));
  EXPECT_EQ(EvalConst("NOT TRUE"), Value(false));
  EXPECT_EQ(EvalConst("NOT NULL IS NULL"), Value(false));
}

TEST(ExprEvalTest, BetweenInCase) {
  EXPECT_EQ(EvalConst("5 BETWEEN 1 AND 10"), Value(true));
  EXPECT_EQ(EvalConst("0 BETWEEN 1 AND 10"), Value(false));
  EXPECT_EQ(EvalConst("3 IN (1, 2, 3)"), Value(true));
  EXPECT_EQ(EvalConst("4 IN (1, 2, 3)"), Value(false));
  EXPECT_EQ(EvalConst("CASE WHEN 1 > 2 THEN 'a' ELSE 'b' END"), Value("b"));
  EXPECT_TRUE(EvalConst("CASE WHEN 1 > 2 THEN 'a' END").is_null());
}

TEST(ExprEvalTest, ScalarFunctions) {
  EXPECT_EQ(EvalConst("ABS(-7)"), Value(int64_t{7}));
  EXPECT_EQ(EvalConst("GREATEST(3, 9, 5)"), Value(int64_t{9}));
  EXPECT_EQ(EvalConst("LEAST(3, 9, 5)"), Value(int64_t{3}));
  EXPECT_EQ(EvalConst("UPPER('abc')"), Value("ABC"));
  EXPECT_EQ(EvalConst("LOWER('ABC')"), Value("abc"));
  EXPECT_EQ(EvalConst("CHAR_LENGTH('hello')"), Value(int32_t{5}));
  EXPECT_EQ(EvalConst("SUBSTRING('hello', 2, 3)"), Value("ell"));
  EXPECT_EQ(EvalConst("COALESCE(NULL, NULL, 5)"), Value(int64_t{5}));
  EXPECT_EQ(EvalConst("MOD(10, 3)"), Value(int64_t{1}));
  EXPECT_EQ(EvalConst("'a' || 'b'"), Value("ab"));
  EXPECT_EQ(EvalConst("SQRT(16)"), Value(4.0));
  EXPECT_EQ(EvalConst("POWER(2, 10)"), Value(1024.0));
  EXPECT_EQ(EvalConst("FLOOR(3.7)"), Value(3.0));
  EXPECT_EQ(EvalConst("CEIL(3.2)"), Value(4.0));
}

TEST(ExprEvalTest, FloorTimestampToUnits) {
  // 2015-08-30T18:27:41.500Z = 1440959261500
  int64_t ts = 1440959261500;
  EXPECT_EQ(FloorTimestampTo(ts, "SECOND").value(), 1440959261000);
  EXPECT_EQ(FloorTimestampTo(ts, "MINUTE").value(), 1440959220000);
  EXPECT_EQ(FloorTimestampTo(ts, "HOUR").value(), 1440957600000);
  EXPECT_EQ(FloorTimestampTo(ts, "DAY").value(), 1440892800000);
  EXPECT_FALSE(FloorTimestampTo(ts, "FORTNIGHT").ok());
  // Negative timestamps floor toward -infinity.
  EXPECT_EQ(FloorTimestampTo(-1, "SECOND").value(), -1000);
}

TEST(ExprEvalTest, Cast) {
  EXPECT_EQ(EvalConst("CAST(3.9 AS INTEGER)"), Value(int32_t{3}));
  EXPECT_EQ(EvalConst("CAST(3 AS DOUBLE)"), Value(3.0));
  EXPECT_EQ(EvalConst("CAST(42 AS VARCHAR)"), Value("42"));
  EXPECT_EQ(EvalConst("CAST(0 AS BOOLEAN)"), Value(false));
}

// Property: compiled evaluation == interpreted evaluation on randomized rows.
TEST(CompiledExprTest, MatchesInterpreterOnRandomRows) {
  auto resolver = [](const std::string&,
                     const std::string& c) -> Result<std::pair<int, FieldType>> {
    if (c == "a") return std::make_pair(0, FieldType::Int64());
    if (c == "b") return std::make_pair(1, FieldType::Int64());
    if (c == "d") return std::make_pair(2, FieldType::Double());
    if (c == "s") return std::make_pair(3, FieldType::String());
    return Status::NotFound("no column " + c);
  };
  const char* exprs[] = {
      "a + b * 2 - 3",
      "a > b AND d < 100.0",
      "a BETWEEN b - 10 AND b + 10",
      "CASE WHEN a > b THEN a ELSE b END",
      "GREATEST(a, b) + LEAST(a, b)",
      "a IN (1, 2, 3, b)",
      "s || '-' || CAST(a AS VARCHAR)",
      "COALESCE(NULL, a) % 7",
      "ABS(a - b) + FLOOR(d)",
      "NOT (a = b) OR s IS NULL",
  };
  std::mt19937_64 rng(99);
  for (const char* text : exprs) {
    auto e = ParseExpression(text).value();
    ASSERT_TRUE(ResolveExpr(*e, resolver, false).ok()) << text;
    auto compiled = CompiledExpr::Compile(*e);
    ASSERT_TRUE(compiled.ok()) << text;
    for (int i = 0; i < 200; ++i) {
      Row row = {Value(static_cast<int64_t>(rng() % 200) - 100),
                 Value(static_cast<int64_t>(rng() % 200) - 100),
                 Value(static_cast<double>(rng() % 1000) / 4.0),
                 Value(std::string(1, static_cast<char>('a' + rng() % 26)))};
      Value interpreted = EvalExpr(*e, row);
      Value compiled_result = compiled.value().Eval(row);
      ASSERT_EQ(interpreted, compiled_result)
          << text << " on " << RowToString(row);
    }
  }
}

TEST(CompiledExprTest, RejectsUnresolved) {
  auto e = ParseExpression("x + 1").value();
  EXPECT_FALSE(CompiledExpr::Compile(*e).ok());
}

}  // namespace
}  // namespace sqs::sql
