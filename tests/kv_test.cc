#include <gtest/gtest.h>

#include <random>

#include "kv/changelog.h"
#include "kv/store.h"
#include "kv/typed_store.h"
#include "serde/serde.h"

namespace sqs {
namespace {

Bytes B(const std::string& s) { return ToBytes(s); }

TEST(InMemoryStoreTest, BasicOps) {
  InMemoryStore store;
  EXPECT_FALSE(store.Get(B("k")).has_value());
  store.Put(B("k"), B("v"));
  ASSERT_TRUE(store.Get(B("k")).has_value());
  EXPECT_EQ(*store.Get(B("k")), B("v"));
  store.Put(B("k"), B("v2"));
  EXPECT_EQ(*store.Get(B("k")), B("v2"));
  EXPECT_EQ(store.Size(), 1u);
  store.Delete(B("k"));
  EXPECT_FALSE(store.Get(B("k")).has_value());
  EXPECT_EQ(store.Size(), 0u);
}

TEST(InMemoryStoreTest, RangeIsOrderedAndHalfOpen) {
  InMemoryStore store;
  for (char c = 'a'; c <= 'f'; ++c) store.Put(B(std::string(1, c)), B("v"));
  std::vector<std::string> seen;
  store.Range(B("b"), B("e"), [&](const Bytes& k, const Bytes&) {
    seen.push_back(FromBytes(k));
    return true;
  });
  ASSERT_EQ(seen.size(), 3u);
  EXPECT_EQ(seen[0], "b");
  EXPECT_EQ(seen[2], "d");
}

TEST(InMemoryStoreTest, RangeEarlyStop) {
  InMemoryStore store;
  for (char c = 'a'; c <= 'f'; ++c) store.Put(B(std::string(1, c)), B("v"));
  int count = 0;
  store.All([&](const Bytes&, const Bytes&) { return ++count < 2; });
  EXPECT_EQ(count, 2);
}

TEST(CachedStoreTest, ReadThroughAndBound) {
  auto backing = std::make_shared<InMemoryStore>();
  CachedStore cached(backing, 3);
  for (int i = 0; i < 10; ++i) {
    cached.Put(B("k" + std::to_string(i)), B("v" + std::to_string(i)));
  }
  EXPECT_LE(cached.CacheEntries(), 3u);
  EXPECT_EQ(cached.Size(), 10u);  // backing has everything
  // Reads are served correctly whether cached or not.
  for (int i = 0; i < 10; ++i) {
    auto v = cached.Get(B("k" + std::to_string(i)));
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(FromBytes(*v), "v" + std::to_string(i));
  }
}

TEST(CachedStoreTest, LruEvictsColdEntries) {
  auto backing = std::make_shared<InMemoryStore>();
  CachedStore cached(backing, 2);
  cached.Put(B("a"), B("1"));
  cached.Put(B("b"), B("2"));
  ASSERT_TRUE(cached.Get(B("a")).has_value());  // touch a: b is now LRU
  cached.Put(B("c"), B("3"));                   // evicts b from cache
  EXPECT_LE(cached.CacheEntries(), 2u);
  // b still retrievable from backing.
  EXPECT_EQ(FromBytes(*cached.Get(B("b"))), "2");
}

TEST(CachedStoreTest, DeleteRemovesEverywhere) {
  auto backing = std::make_shared<InMemoryStore>();
  CachedStore cached(backing, 4);
  cached.Put(B("a"), B("1"));
  cached.Delete(B("a"));
  EXPECT_FALSE(cached.Get(B("a")).has_value());
  EXPECT_FALSE(backing->Get(B("a")).has_value());
}

class ChangelogTest : public ::testing::Test {
 protected:
  void SetUp() override {
    broker_ = std::make_shared<Broker>();
    ASSERT_TRUE(
        broker_->CreateTopic("cl", {.num_partitions = 2, .compacted = true}).ok());
  }
  BrokerPtr broker_;
};

TEST_F(ChangelogTest, WritesMirroredToChangelog) {
  ChangelogBackedStore store(std::make_shared<InMemoryStore>(), broker_, {"cl", 0});
  store.Put(B("k1"), B("v1"));
  store.Put(B("k2"), B("v2"));
  store.Delete(B("k1"));
  EXPECT_EQ(broker_->EndOffset({"cl", 0}).value(), 3);
  // The other partition is untouched — partition isolation per task.
  EXPECT_EQ(broker_->EndOffset({"cl", 1}).value(), 0);
}

TEST_F(ChangelogTest, RestoreRebuildsExactState) {
  std::mt19937_64 rng(3);
  std::map<std::string, std::string> reference;
  {
    ChangelogBackedStore store(std::make_shared<InMemoryStore>(), broker_, {"cl", 0});
    for (int i = 0; i < 500; ++i) {
      std::string k = "k" + std::to_string(rng() % 50);
      if (rng() % 4 == 0) {
        store.Delete(B(k));
        reference.erase(k);
      } else {
        std::string v = "v" + std::to_string(rng());
        store.Put(B(k), B(v));
        reference[k] = v;
      }
    }
  }  // store destroyed: simulated container loss
  ChangelogBackedStore restored(std::make_shared<InMemoryStore>(), broker_, {"cl", 0});
  ASSERT_TRUE(restored.Restore().ok());
  EXPECT_EQ(restored.Size(), reference.size());
  for (const auto& [k, v] : reference) {
    auto got = restored.Get(B(k));
    ASSERT_TRUE(got.has_value()) << k;
    EXPECT_EQ(FromBytes(*got), v);
  }
}

TEST_F(ChangelogTest, RestoreAfterCompactionStillExact) {
  std::map<std::string, std::string> reference;
  {
    ChangelogBackedStore store(std::make_shared<InMemoryStore>(), broker_, {"cl", 0});
    for (int i = 0; i < 100; ++i) {
      std::string k = "k" + std::to_string(i % 10);
      std::string v = "v" + std::to_string(i);
      store.Put(B(k), B(v));
      reference[k] = v;
    }
  }
  ASSERT_TRUE(broker_->Compact("cl").ok());
  EXPECT_EQ(broker_->TopicSize("cl").value(), 10);
  ChangelogBackedStore restored(std::make_shared<InMemoryStore>(), broker_, {"cl", 0});
  ASSERT_TRUE(restored.Restore().ok());
  for (const auto& [k, v] : reference) {
    EXPECT_EQ(FromBytes(*restored.Get(B(k))), v);
  }
}

TEST_F(ChangelogTest, RestoreOnEmptyChangelogYieldsEmptyStore) {
  ChangelogBackedStore store(std::make_shared<InMemoryStore>(), broker_, {"cl", 1});
  ASSERT_TRUE(store.Restore().ok());
  EXPECT_EQ(store.Size(), 0u);
}

TEST(RowStoreTest, PutGetDeleteThroughSerde) {
  auto schema = Schema::Make("T", {{"a", FieldType::Int64(), false},
                                   {"s", FieldType::String(), false}});
  RowStore store(std::make_shared<InMemoryStore>(),
                 std::make_shared<AvroRowSerde>(schema));
  Row row = {Value(int64_t{7}), Value("hello")};
  store.Put(Value(int64_t{7}), row);
  auto got = store.Get(Value(int64_t{7}));
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, row);
  store.Delete(Value(int64_t{7}));
  EXPECT_FALSE(store.Get(Value(int64_t{7})).has_value());
}

TEST(RowStoreTest, RangeScanInKeyOrder) {
  auto schema = Schema::Make("T", {{"t", FieldType::Int64(), false}});
  RowStore store(std::make_shared<InMemoryStore>(),
                 std::make_shared<AvroRowSerde>(schema));
  for (int64_t t : {50, 10, 30, 20, 40}) {
    store.Put(Value(t), Row{Value(t)});
  }
  std::vector<int64_t> seen;
  store.Range(Value(int64_t{15}), Value(int64_t{45}),
              [&](const Row& r) {
                seen.push_back(r[0].as_int64());
                return true;
              });
  ASSERT_EQ(seen.size(), 3u);
  EXPECT_EQ(seen, (std::vector<int64_t>{20, 30, 40}));
}

TEST(RowStoreTest, CompositeKeys) {
  auto schema = Schema::Make("T", {{"v", FieldType::Int64(), false}});
  RowStore store(std::make_shared<InMemoryStore>(),
                 std::make_shared<AvroRowSerde>(schema));
  Row key1 = {Value(int64_t{100}), Value(int64_t{1})};
  Row key2 = {Value(int64_t{100}), Value(int64_t{2})};
  store.Put(key1, Row{Value(int64_t{11})});
  store.Put(key2, Row{Value(int64_t{22})});
  EXPECT_EQ((*store.Get(key1))[0].as_int64(), 11);
  EXPECT_EQ((*store.Get(key2))[0].as_int64(), 22);
}

TEST(ScalarStoreTest, RoundTripsAllKinds) {
  ScalarStore store(std::make_shared<InMemoryStore>());
  store.Put("i", Value(int64_t{-5}));
  store.Put("d", Value(2.5));
  store.Put("s", Value("str"));
  store.Put("b", Value(true));
  store.Put("n", Value::Null());
  EXPECT_EQ(*store.Get("i"), Value(int64_t{-5}));
  EXPECT_EQ(*store.Get("d"), Value(2.5));
  EXPECT_EQ(*store.Get("s"), Value("str"));
  EXPECT_EQ(*store.Get("b"), Value(true));
  EXPECT_TRUE(store.Get("n")->is_null());
  EXPECT_FALSE(store.Get("missing").has_value());
  store.Delete("i");
  EXPECT_FALSE(store.Get("i").has_value());
}

}  // namespace
}  // namespace sqs
