// Catalog tests: source registration rules, JSON model load/serialize
// round trip, rowtime detection, view bookkeeping.
#include <gtest/gtest.h>

#include "sql/catalog.h"
#include "sql/parser.h"

namespace sqs::sql {
namespace {

SourceDef MakeOrders() {
  SourceDef def;
  def.name = "Orders";
  def.kind = SourceKind::kStream;
  def.schema = Schema::Make("Orders", {{"rowtime", FieldType::Int64(), false},
                                       {"units", FieldType::Int32(), false}});
  return def;
}

TEST(CatalogTest, RegisterAndGet) {
  Catalog catalog;
  ASSERT_TRUE(catalog.RegisterSource(MakeOrders()).ok());
  EXPECT_TRUE(catalog.HasSource("Orders"));
  auto source = catalog.GetSource("Orders");
  ASSERT_TRUE(source.ok());
  EXPECT_EQ(source.value().topic, "Orders");  // defaults to the name
  EXPECT_TRUE(source.value().is_stream());
  EXPECT_FALSE(catalog.HasSource("Nope"));
  EXPECT_EQ(catalog.GetSource("Nope").status().code(), ErrorCode::kNotFound);
}

TEST(CatalogTest, DuplicateRegistrationFails) {
  Catalog catalog;
  ASSERT_TRUE(catalog.RegisterSource(MakeOrders()).ok());
  EXPECT_EQ(catalog.RegisterSource(MakeOrders()).code(), ErrorCode::kAlreadyExists);
}

TEST(CatalogTest, RowtimeAutoDetected) {
  Catalog catalog;
  ASSERT_TRUE(catalog.RegisterSource(MakeOrders()).ok());
  EXPECT_EQ(catalog.GetSource("Orders").value().rowtime_column, "rowtime");
}

TEST(CatalogTest, RowtimeMustBeBigint) {
  Catalog catalog;
  SourceDef def = MakeOrders();
  def.name = "Bad";
  def.schema = Schema::Make("Bad", {{"rowtime", FieldType::String(), false}});
  // Auto-detection skips a non-BIGINT "rowtime" column...
  ASSERT_TRUE(catalog.RegisterSource(def).ok());
  EXPECT_TRUE(catalog.GetSource("Bad").value().rowtime_column.empty());
  // ...but an explicit rowtime of the wrong type is an error.
  SourceDef def2 = MakeOrders();
  def2.name = "Bad2";
  def2.schema = Schema::Make("Bad2", {{"ts", FieldType::String(), false}});
  def2.rowtime_column = "ts";
  EXPECT_FALSE(catalog.RegisterSource(def2).ok());
  SourceDef def3 = MakeOrders();
  def3.name = "Bad3";
  def3.rowtime_column = "missing";
  EXPECT_FALSE(catalog.RegisterSource(def3).ok());
}

TEST(CatalogTest, ValidationOfBrokenDefs) {
  Catalog catalog;
  SourceDef nameless = MakeOrders();
  nameless.name.clear();
  EXPECT_FALSE(catalog.RegisterSource(nameless).ok());
  SourceDef schemaless = MakeOrders();
  schemaless.schema = nullptr;
  EXPECT_FALSE(catalog.RegisterSource(schemaless).ok());
}

TEST(CatalogTest, ViewRegistrationAndConflicts) {
  Catalog catalog;
  ASSERT_TRUE(catalog.RegisterSource(MakeOrders()).ok());
  auto stmt = ParseStatement("SELECT units FROM Orders").value();
  ASSERT_TRUE(catalog.RegisterView("V", {"u"}, std::move(stmt.select)).ok());
  EXPECT_TRUE(catalog.HasView("V"));
  auto view = catalog.GetView("V");
  ASSERT_TRUE(view.ok());
  EXPECT_EQ(view.value().column_names, std::vector<std::string>{"u"});
  ASSERT_NE(view.value().select, nullptr);

  // Name conflicts in either direction are rejected.
  auto stmt2 = ParseStatement("SELECT units FROM Orders").value();
  EXPECT_EQ(catalog.RegisterView("Orders", {}, std::move(stmt2.select)).code(),
            ErrorCode::kAlreadyExists);
  SourceDef clash = MakeOrders();
  clash.name = "V";
  EXPECT_EQ(catalog.RegisterSource(clash).code(), ErrorCode::kAlreadyExists);
}

TEST(CatalogTest, JsonModelLoad) {
  const char* model = R"({
    "schemas": [
      {"name": "Clicks", "type": "stream", "topic": "clicks", "format": "json",
       "rowtime": "ts",
       "fields": [
         {"name": "ts", "type": "long"},
         {"name": "url", "type": "string"},
         {"name": "tags", "type": "array<string>", "nullable": true},
         {"name": "score", "type": "double"}
       ]},
      {"name": "Users", "type": "table",
       "fields": [{"name": "id", "type": "int"}, {"name": "name", "type": "string"}]}
    ]})";
  Catalog catalog;
  SchemaRegistry registry;
  ASSERT_TRUE(catalog.LoadJsonModel(model, registry).ok());
  auto clicks = catalog.GetSource("Clicks").value();
  EXPECT_TRUE(clicks.is_stream());
  EXPECT_EQ(clicks.topic, "clicks");
  EXPECT_EQ(clicks.format, "json");
  EXPECT_EQ(clicks.rowtime_column, "ts");
  EXPECT_EQ(clicks.schema->num_fields(), 4u);
  EXPECT_EQ(clicks.schema->field(2).type.kind, TypeKind::kArray);
  EXPECT_TRUE(clicks.schema->field(2).nullable);
  auto users = catalog.GetSource("Users").value();
  EXPECT_FALSE(users.is_stream());
  EXPECT_EQ(users.topic, "Users");
  // Schemas were registered with the registry.
  EXPECT_TRUE(registry.HasSubject("Clicks"));
  EXPECT_TRUE(registry.HasSubject("Users"));
}

TEST(CatalogTest, JsonModelErrors) {
  Catalog catalog;
  SchemaRegistry registry;
  EXPECT_FALSE(catalog.LoadJsonModel("not json", registry).ok());
  EXPECT_FALSE(catalog.LoadJsonModel("[]", registry).ok());
  EXPECT_FALSE(catalog.LoadJsonModel(R"({"schemas": 5})", registry).ok());
  EXPECT_FALSE(
      catalog.LoadJsonModel(R"({"schemas": [{"type": "stream"}]})", registry).ok());
  EXPECT_FALSE(catalog
                   .LoadJsonModel(R"({"schemas": [{"name": "X", "fields": [
                     {"name": "a", "type": "blob"}]}]})",
                                  registry)
                   .ok());
  EXPECT_FALSE(catalog
                   .LoadJsonModel(R"({"schemas": [{"name": "X", "type": "weird",
                     "fields": []}]})",
                                  registry)
                   .ok());
}

TEST(CatalogTest, ModelRoundTrip) {
  Catalog catalog;
  SchemaRegistry registry;
  SourceDef orders = MakeOrders();
  orders.format = "json";
  ASSERT_TRUE(catalog.RegisterSource(orders).ok());
  SourceDef products;
  products.name = "Products";
  products.kind = SourceKind::kRelation;
  products.topic = "products-cl";
  products.schema = Schema::Make(
      "Products", {{"id", FieldType::Int32(), false},
                   {"tags", FieldType::Array(TypeKind::kString), true},
                   {"attrs", FieldType::Map(TypeKind::kDouble), true}});
  ASSERT_TRUE(catalog.RegisterSource(products).ok());

  std::string model = catalog.ToJsonModel();
  Catalog reloaded;
  ASSERT_TRUE(reloaded.LoadJsonModel(model, registry).ok());
  for (const char* name : {"Orders", "Products"}) {
    auto original = catalog.GetSource(name).value();
    auto copy = reloaded.GetSource(name).value();
    EXPECT_EQ(copy.kind, original.kind) << name;
    EXPECT_EQ(copy.topic, original.topic) << name;
    EXPECT_EQ(copy.format, original.format) << name;
    EXPECT_EQ(copy.rowtime_column, original.rowtime_column) << name;
    EXPECT_TRUE(copy.schema->Equals(*original.schema)) << name;
  }
}

}  // namespace
}  // namespace sqs::sql
