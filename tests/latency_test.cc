// End-to-end latency plumbing tests (docs/LATENCY.md): broker backlog byte
// ledger, ingest-stamp propagation through repartitioning and multi-job
// pipelines (with an oracle e2e latency under ManualClock), freshness-lag
// gauges under a stalled consumer, resource-ledger reconciliation, the
// stamping kill switch, and the monitor's SLO breach/clear transitions.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/flightrec.h"
#include "common/latency.h"
#include "common/metrics.h"
#include "http/monitor.h"
#include "log/broker.h"
#include "log/producer.h"
#include "task/api.h"
#include "task/runner.h"

namespace sqs {
namespace {

// Forwards every message, re-keyed by its value, so the keyed send hashes
// it to a (generally) different output partition — exercising stamp
// propagation across a repartition boundary.
class RepartitionTask : public StreamTask {
 public:
  explicit RepartitionTask(std::string out_topic)
      : out_topic_(std::move(out_topic)) {}
  Status Process(const IncomingMessage& msg, MessageCollector& collector,
                 TaskCoordinator&) override {
    return collector.Send(out_topic_, Bytes(msg.message.value),
                          Bytes(msg.message.value));
  }

 private:
  std::string out_topic_;
};

std::vector<IncomingMessage> FetchAll(Broker& broker, const std::string& topic) {
  std::vector<IncomingMessage> out;
  int32_t nparts = broker.NumPartitions(topic).value();
  for (int32_t p = 0; p < nparts; ++p) {
    int64_t begin = broker.BeginOffset({topic, p}).value();
    int64_t end = broker.EndOffset({topic, p}).value();
    if (begin < end) {
      auto batch =
          broker.Fetch({topic, p}, begin, static_cast<int32_t>(end - begin)).value();
      for (auto& m : batch) out.push_back(std::move(m));
    }
  }
  return out;
}

int64_t PayloadBytes(const std::vector<IncomingMessage>& msgs) {
  int64_t total = 0;
  for (const auto& m : msgs) {
    total += static_cast<int64_t>(m.message.key.size() + m.message.value.size());
  }
  return total;
}

// ---------------------------------------------------------------------------
// Broker backlog ledger

TEST(BrokerBacklogTest, CountsMessagesBytesAndOldestAppend) {
  auto clock = std::make_shared<ManualClock>(1000);
  auto broker_ptr = std::make_shared<Broker>();
  Broker& broker = *broker_ptr;
  ASSERT_TRUE(broker.CreateTopic("t", {.num_partitions = 1}).ok());
  Producer producer(broker_ptr, clock);
  ASSERT_TRUE(producer.SendTo({"t", 0}, ToBytes("k1"), ToBytes("aaaa")).ok());
  clock->Advance(10);
  ASSERT_TRUE(producer.SendTo({"t", 0}, ToBytes("k2"), ToBytes("bb")).ok());
  clock->Advance(10);
  ASSERT_TRUE(producer.SendTo({"t", 0}, ToBytes("k3"), ToBytes("c")).ok());

  PartitionBacklog all = broker.BacklogFrom({"t", 0}, 0).value();
  EXPECT_EQ(all.messages, 3);
  EXPECT_EQ(all.bytes, 6 + 4 + 3);  // key+value bytes of the three messages
  EXPECT_EQ(all.oldest_append_ms, 1000);

  PartitionBacklog tail = broker.BacklogFrom({"t", 0}, 2).value();
  EXPECT_EQ(tail.messages, 1);
  EXPECT_EQ(tail.bytes, 3);
  EXPECT_EQ(tail.oldest_append_ms, 1020);

  PartitionBacklog none = broker.BacklogFrom({"t", 0}, 3).value();
  EXPECT_EQ(none.messages, 0);
  EXPECT_EQ(none.bytes, 0);
  EXPECT_EQ(none.oldest_append_ms, -1);
}

TEST(BrokerBacklogTest, RetentionClampsToLogStart) {
  auto clock = std::make_shared<ManualClock>(5000);
  auto broker_ptr = std::make_shared<Broker>();
  Broker& broker = *broker_ptr;
  ASSERT_TRUE(
      broker.CreateTopic("t", {.num_partitions = 1, .retention_messages = 2}).ok());
  Producer producer(broker_ptr, clock);
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(producer.SendTo({"t", 0}, Bytes{}, ToBytes("mmmm")).ok());
    clock->Advance(100);
  }
  ASSERT_TRUE(broker.EnforceRetention("t").ok());
  ASSERT_EQ(broker.BeginOffset({"t", 0}).value(), 2);

  // An offset below the log start clamps: retained-away data is not backlog.
  PartitionBacklog clamped = broker.BacklogFrom({"t", 0}, 0).value();
  EXPECT_EQ(clamped.messages, 2);
  EXPECT_EQ(clamped.bytes, 8);
  EXPECT_EQ(clamped.oldest_append_ms, 5200);  // append time of offset 2
}

TEST(BrokerBacklogTest, CompactionRebuildsByteLedger) {
  auto broker_ptr = std::make_shared<Broker>();
  Broker& broker = *broker_ptr;
  ASSERT_TRUE(
      broker.CreateTopic("t", {.num_partitions = 1, .compacted = true}).ok());
  Producer producer(broker_ptr);
  ASSERT_TRUE(producer.SendTo({"t", 0}, ToBytes("a"), ToBytes("old-value")).ok());
  ASSERT_TRUE(producer.SendTo({"t", 0}, ToBytes("b"), ToBytes("kept")).ok());
  ASSERT_TRUE(producer.SendTo({"t", 0}, ToBytes("a"), ToBytes("new")).ok());
  ASSERT_TRUE(broker.Compact("t").ok());

  // After compaction, the ledger must price exactly the surviving entries.
  int64_t begin = broker.BeginOffset({"t", 0}).value();
  PartitionBacklog survivors = broker.BacklogFrom({"t", 0}, begin).value();
  std::vector<IncomingMessage> kept = FetchAll(broker, "t");
  EXPECT_EQ(survivors.messages, static_cast<int64_t>(kept.size()));
  EXPECT_EQ(survivors.bytes, PayloadBytes(kept));
  // And a suffix query still works against the rebuilt cumulative ledger.
  PartitionBacklog last = broker.BacklogFrom({"t", 0}, begin + 1).value();
  EXPECT_EQ(last.messages, survivors.messages - 1);
  EXPECT_LT(last.bytes, survivors.bytes);
}

// ---------------------------------------------------------------------------
// Ingest-stamp propagation + oracle e2e latency under ManualClock

class LatencyPipelineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    clock_ = std::make_shared<ManualClock>(1'000'000);
    broker_ = std::make_shared<Broker>();
    ASSERT_TRUE(broker_->CreateTopic("in", {.num_partitions = 2}).ok());
    ASSERT_TRUE(broker_->CreateTopic("mid", {.num_partitions = 2}).ok());
    ASSERT_TRUE(broker_->CreateTopic("out", {.num_partitions = 2}).ok());
  }

  Config StageConfig(const std::string& job, const std::string& input,
                     const std::string& factory) {
    Config c;
    c.Set(cfg::kJobName, job);
    c.Set(cfg::kTaskInputs, input);
    c.Set(cfg::kTaskFactory, factory);
    c.SetInt(cfg::kContainerCount, 2);
    return c;
  }

  void Produce(int n) {
    Producer p(broker_, clock_);
    for (int i = 0; i < n; ++i) {
      ASSERT_TRUE(p.Send("in", ToBytes("key" + std::to_string(i)),
                         ToBytes("val" + std::to_string(i)))
                      .ok());
    }
  }

  static HistogramStats JobHistogram(JobRunner& runner, const std::string& leaf) {
    MetricsSnapshot snap = runner.metrics_registry()->Snapshot();
    auto it = snap.histograms.find(runner.job_name() + "." + leaf);
    return it == snap.histograms.end() ? HistogramStats{} : it->second;
  }

  std::shared_ptr<ManualClock> clock_;
  BrokerPtr broker_;
};

TEST_F(LatencyPipelineTest, StampSurvivesRepartitionAndPipelineWithOracleE2e) {
  TaskFactoryRegistry::Instance().Register(
      "lat-stage1", [] { return std::make_unique<RepartitionTask>("mid"); });
  TaskFactoryRegistry::Instance().Register(
      "lat-stage2", [] { return std::make_unique<RepartitionTask>("out"); });
  const int64_t ingest_us = 1'000'000 * 1000;  // first append, in micros

  Produce(10);  // ingest stamped at T0 by the external producer

  JobRunner stage1(broker_, StageConfig("lat-s1", "in", "lat-stage1"), clock_);
  JobRunner stage2(broker_, StageConfig("lat-s2", "mid", "lat-stage2"), clock_);
  ASSERT_TRUE(stage1.Start().ok());
  ASSERT_TRUE(stage2.Start().ok());

  clock_->Advance(3);  // broker dwell before stage 1
  ASSERT_EQ(stage1.RunUntilQuiescent().value(), 10);
  clock_->Advance(4);  // broker dwell before stage 2
  ASSERT_EQ(stage2.RunUntilQuiescent().value(), 10);

  // The intermediate hop carries the original ingest stamp but its own
  // append time (the dwell basis for the next hop).
  for (const IncomingMessage& m : FetchAll(*broker_, "mid")) {
    EXPECT_EQ(m.message.ingest_us, ingest_us);
    EXPECT_EQ(m.message.append_us, ingest_us + 3000);
  }
  // The terminal hop still carries the first-append stamp: two jobs and a
  // repartition later, e2e is measured from the original ingest.
  ASSERT_EQ(FetchAll(*broker_, "out").size(), 10u);
  for (const IncomingMessage& m : FetchAll(*broker_, "out")) {
    EXPECT_EQ(m.message.ingest_us, ingest_us);
    EXPECT_EQ(m.message.append_us, ingest_us + 7000);
  }

  // Oracle latencies under the manual clock: stage 1 sinks 3ms after
  // ingest, stage 2 sinks 7ms after ingest; each hop waited exactly its
  // pre-run advance in the broker queue.
  HistogramStats s1 = JobHistogram(stage1, "e2e_latency_us");
  EXPECT_EQ(s1.count, 10);
  EXPECT_EQ(s1.min, 3000);
  EXPECT_EQ(s1.max, 3000);
  HistogramStats s2 = JobHistogram(stage2, "e2e_latency_us");
  EXPECT_EQ(s2.count, 10);
  EXPECT_EQ(s2.min, 7000);
  EXPECT_EQ(s2.max, 7000);
  // Dwell is stride-sampled (1 in 16 inputs), so the count depends on how
  // the 10 messages split across containers — only the bounds are exact.
  HistogramStats d1 = JobHistogram(stage1, "dwell_queue_us");
  EXPECT_GE(d1.count, 1);
  EXPECT_LE(d1.count, 10);
  EXPECT_EQ(d1.min, 3000);
  EXPECT_EQ(d1.max, 3000);
  HistogramStats d2 = JobHistogram(stage2, "dwell_queue_us");
  EXPECT_GE(d2.count, 1);
  EXPECT_LE(d2.count, 10);
  EXPECT_EQ(d2.min, 4000);
  EXPECT_EQ(d2.max, 4000);

  ASSERT_TRUE(stage1.Stop().ok());
  ASSERT_TRUE(stage2.Stop().ok());
}

TEST_F(LatencyPipelineTest, StampingKillSwitchZeroesStampsAndE2e) {
  TaskFactoryRegistry::Instance().Register(
      "lat-off", [] { return std::make_unique<RepartitionTask>("out"); });
  Produce(5);
  Config c = StageConfig("lat-off-job", "in", "lat-off");
  c.SetBool(cfg::kLatencyStampingEnable, false);
  JobRunner runner(broker_, c, clock_);
  ASSERT_TRUE(runner.Start().ok());
  ASSERT_EQ(runner.RunUntilQuiescent().value(), 5);
  for (const IncomingMessage& m : FetchAll(*broker_, "out")) {
    EXPECT_EQ(m.message.ingest_us, 0);
    EXPECT_EQ(m.message.append_us, 0);
  }
  EXPECT_EQ(JobHistogram(runner, "e2e_latency_us").count, 0);
  EXPECT_EQ(JobHistogram(runner, "dwell_queue_us").count, 0);
  ASSERT_TRUE(runner.Stop().ok());
  // The toggle is process-global; restore it for the rest of the suite.
  SetLatencyStampingEnabled(true);
}

// ---------------------------------------------------------------------------
// Freshness lag + backlog gauges under a stalled consumer

TEST_F(LatencyPipelineTest, StalledConsumerAgesFreshnessLag) {
  TaskFactoryRegistry::Instance().Register(
      "lat-stall", [] { return std::make_unique<RepartitionTask>("out"); });
  Config c = StageConfig("lat-stall-job", "in", "lat-stall");
  c.SetInt(cfg::kContainerCount, 1);
  JobRunner runner(broker_, c, clock_);
  ASSERT_TRUE(runner.Start().ok());

  Produce(5);
  ASSERT_EQ(runner.RunUntilQuiescent().value(), 5);
  auto gauge = [&](const char* leaf) {
    MetricsSnapshot snap = runner.metrics_registry()->Snapshot();
    auto it = snap.gauges.find("lat-stall-job.container0." + std::string(leaf));
    return it == snap.gauges.end() ? int64_t{-1} : it->second;
  };
  EXPECT_EQ(gauge("freshness_lag_ms"), 0);
  EXPECT_EQ(gauge("backlog_bytes"), 0);

  // New input lands but the consumer stalls; wall time passes. A zero-work
  // driver pass refreshes the gauges without consuming anything.
  int64_t consumed_bytes = PayloadBytes(FetchAll(*broker_, "in"));
  Produce(5);
  int64_t backlog_bytes = PayloadBytes(FetchAll(*broker_, "in")) - consumed_bytes;
  ASSERT_GT(backlog_bytes, 0);
  clock_->Advance(5000);
  ASSERT_EQ(runner.container(0)->RunUntilCaughtUp(0).value(), 0);
  EXPECT_EQ(gauge("freshness_lag_ms"), 5000);
  EXPECT_EQ(gauge("backlog_bytes"), backlog_bytes);

  // Catching up clears both.
  ASSERT_EQ(runner.RunUntilQuiescent().value(), 5);
  EXPECT_EQ(gauge("freshness_lag_ms"), 0);
  EXPECT_EQ(gauge("backlog_bytes"), 0);
  ASSERT_TRUE(runner.Stop().ok());
}

// ---------------------------------------------------------------------------
// Resource ledger reconciliation

TEST_F(LatencyPipelineTest, LedgerReconcilesWithBrokerContents) {
  TaskFactoryRegistry::Instance().Register(
      "lat-ledger", [] { return std::make_unique<RepartitionTask>("out"); });
  Produce(50);
  JobRunner runner(broker_, StageConfig("lat-ledger-job", "in", "lat-ledger"),
                   clock_);
  ASSERT_TRUE(runner.Start().ok());
  ASSERT_EQ(runner.RunUntilQuiescent().value(), 50);

  MonitorJobView view;
  view.name = runner.job_name();
  view.processed = runner.TotalProcessed();
  view.uptime_ms = runner.UptimeMs(clock_->NowMillis());
  view.snapshot = runner.metrics_registry()->Snapshot();
  ResourceLedger ledger = ComputeResourceLedger(view);

  EXPECT_EQ(ledger.rows_in, 50);
  EXPECT_EQ(ledger.rows_out, 50);
  EXPECT_EQ(ledger.bytes_in, PayloadBytes(FetchAll(*broker_, "in")));
  EXPECT_EQ(ledger.bytes_out, PayloadBytes(FetchAll(*broker_, "out")));
  EXPECT_GT(ledger.cpu_busy_ns, 0);
  EXPECT_EQ(ledger.cpu_busy_ns, runner.TotalBusyNanos());
  EXPECT_EQ(ledger.dlq_drops, 0);
  EXPECT_EQ(ledger.e2e.count, 50);
  EXPECT_EQ(ledger.freshness_lag_ms, 0);
  EXPECT_EQ(ledger.backlog_bytes, 0);
  ASSERT_TRUE(runner.Stop().ok());
}

// ---------------------------------------------------------------------------
// Monitor SLO breach / clear transitions

TEST(MonitorSloTest, BreachAndClearGateReadinessAndFlightRecorder) {
  auto clock = std::make_shared<ManualClock>(10'000);
  MetricsRegistry registry;
  Gauge& freshness = registry.GetGauge("slo-job.container0.freshness_lag_ms");
  Config config;
  config.SetInt(cfg::kLatencySloMs, 1000);
  MonitorServer monitor(
      config,
      [&registry] {
        MonitorJobView view;
        view.name = "slo-job";
        view.containers_total = 1;
        view.containers_running = 1;
        view.snapshot = registry.Snapshot();
        return std::vector<MonitorJobView>{view};
      },
      clock);
  FlightRecorder::Instance().Clear();

  // Under the SLO: ready, no events.
  freshness.Set(500);
  monitor.ForceTick();
  EXPECT_TRUE(monitor.CheckReadiness().ready);
  EXPECT_TRUE(FlightRecorder::Instance().Snapshot("slo-job").empty());

  // Breach: one slo_breach event, readiness 503s on the freshness leaf.
  freshness.Set(4500);
  clock->Advance(100);
  monitor.ForceTick();
  std::vector<FlightEvent> events = FlightRecorder::Instance().Snapshot("slo-job");
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].type, FlightEventType::kSloBreach);
  EXPECT_EQ(events[0].a, 4500);
  EXPECT_EQ(events[0].b, 1000);
  MonitorServer::Readiness readiness = monitor.CheckReadiness();
  EXPECT_FALSE(readiness.ready);
  EXPECT_NE(readiness.reason.find("freshness"), std::string::npos);

  // Still breached: no duplicate event.
  freshness.Set(6000);
  clock->Advance(100);
  monitor.ForceTick();
  EXPECT_EQ(FlightRecorder::Instance().Snapshot("slo-job").size(), 1u);

  // Cleared: one slo_cleared event, ready again.
  freshness.Set(0);
  clock->Advance(100);
  monitor.ForceTick();
  events = FlightRecorder::Instance().Snapshot("slo-job");
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[1].type, FlightEventType::kSloCleared);
  EXPECT_TRUE(monitor.CheckReadiness().ready);
}

}  // namespace
}  // namespace sqs
