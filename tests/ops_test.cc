// Operator-layer unit tests: exercising scan/filter/project/insert, the
// sliding-window operator (Algorithm 1), the tumble/hop aggregate operator,
// both joins, and the router directly, with a fake task context.
#include <gtest/gtest.h>

#include "ops/basic.h"
#include "ops/join.h"
#include "ops/router.h"
#include "ops/window.h"
#include "sql/parser.h"
#include "sql/planner.h"
#include "sql_test_util.h"

namespace sqs::ops {
namespace {

// Task context with on-demand in-memory stores.
class FakeTaskContext : public TaskContext {
 public:
  const std::string& task_name() const override { return name_; }
  int32_t partition_id() const override { return 0; }
  const Config& config() const override { return config_; }
  MetricsRegistry& metrics() override { return metrics_; }
  KeyValueStorePtr GetStore(const std::string& name) override {
    auto& slot = stores_[name];
    if (!slot) slot = std::make_shared<InMemoryStore>();
    return slot;
  }

  Config config_;

 private:
  std::string name_ = "Partition 0";
  MetricsRegistry metrics_;
  std::map<std::string, KeyValueStorePtr> stores_;
};

// Collector that records sends.
class RecordingCollector : public MessageCollector {
 public:
  struct Sent {
    std::string topic;
    int32_t partition;
    Bytes value;
  };
  Status Send(const std::string& topic, Bytes, Bytes value) override {
    sent.push_back({topic, -1, std::move(value)});
    return Status::Ok();
  }
  Status SendToPartition(const std::string& topic, int32_t partition, Bytes,
                         Bytes value) override {
    sent.push_back({topic, partition, std::move(value)});
    return Status::Ok();
  }
  std::vector<Sent> sent;
};

// Sink operator that records tuple events.
class SinkOperator : public Operator {
 public:
  std::string name() const override { return "sink"; }
  Status Init(OperatorContext&) override { return Status::Ok(); }
  std::vector<TupleEvent> events;

 protected:
  Status DoProcess(const TupleEvent& event, OperatorContext&) override {
    events.push_back(event);
    return Status::Ok();
  }
};

sql::ExprPtr ResolvedExpr(const std::string& text, SchemaPtr schema) {
  auto e = sql::ParseExpression(text).value();
  auto resolver = [&](const std::string&,
                      const std::string& c) -> Result<std::pair<int, FieldType>> {
    auto idx = schema->FieldIndex(c);
    if (!idx) return Status::NotFound(c);
    return std::make_pair(static_cast<int>(*idx), schema->field(*idx).type);
  };
  Status st = sql::ResolveExpr(*e, resolver, false);
  if (!st.ok()) throw std::runtime_error(st.ToString());
  return e;
}

SchemaPtr TestSchema() {
  return Schema::Make("T", {{"rowtime", FieldType::Int64(), false},
                            {"key", FieldType::Int32(), false},
                            {"val", FieldType::Int32(), false}});
}

TupleEvent Ev(int64_t ts, int32_t key, int32_t val, int64_t offset = 0,
              int32_t partition = 0) {
  TupleEvent e;
  e.row = {Value(ts), Value(key), Value(val)};
  e.rowtime = ts;
  e.partition = partition;
  e.offset = offset;
  return e;
}

class OpsTest : public ::testing::Test {
 protected:
  FakeTaskContext task_;
  RecordingCollector collector_;
  OperatorContext Ctx() {
    OperatorContext ctx;
    ctx.task = &task_;
    ctx.collector = &collector_;
    return ctx;
  }
};

TEST_F(OpsTest, FilterPassesAndDrops) {
  auto sink = std::make_shared<SinkOperator>();
  FilterOperator filter(ResolvedExpr("val > 10", TestSchema()));
  filter.SetNext(sink);
  auto ctx = Ctx();
  ASSERT_TRUE(filter.Init(ctx).ok());
  ASSERT_TRUE(filter.Process(Ev(1, 1, 5), ctx).ok());
  ASSERT_TRUE(filter.Process(Ev(2, 1, 15), ctx).ok());
  ASSERT_EQ(sink->events.size(), 1u);
  EXPECT_EQ(sink->events[0].row[2], Value(int32_t{15}));
}

TEST_F(OpsTest, ProjectComputesAndTracksRowtime) {
  auto sink = std::make_shared<SinkOperator>();
  std::vector<sql::ExprPtr> exprs;
  exprs.push_back(ResolvedExpr("rowtime", TestSchema()));
  exprs.push_back(ResolvedExpr("val * 2", TestSchema()));
  ProjectOperator project(std::move(exprs), 0);
  project.SetNext(sink);
  auto ctx = Ctx();
  ASSERT_TRUE(project.Init(ctx).ok());
  ASSERT_TRUE(project.Process(Ev(42, 1, 7), ctx).ok());
  ASSERT_EQ(sink->events.size(), 1u);
  EXPECT_EQ(sink->events[0].row, (Row{Value(int64_t{42}), Value(int32_t{14})}));
  EXPECT_EQ(sink->events[0].rowtime, 42);
}

TEST_F(OpsTest, ScanDecodesAndValidates) {
  auto schema = TestSchema();
  auto serde = std::make_shared<AvroRowSerde>(schema);
  auto sink = std::make_shared<SinkOperator>();
  ScanOperator scan(serde, schema, 0);
  scan.SetNext(sink);
  auto ctx = Ctx();
  ASSERT_TRUE(scan.Init(ctx).ok());

  IncomingMessage msg;
  msg.origin = {"t", 3};
  msg.offset = 9;
  msg.message.value = serde->SerializeToBytes({Value(int64_t{100}), Value(int32_t{1}),
                                               Value(int32_t{2})});
  ASSERT_TRUE(scan.ProcessMessage(msg, ctx).ok());
  ASSERT_EQ(sink->events.size(), 1u);
  EXPECT_EQ(sink->events[0].rowtime, 100);
  EXPECT_EQ(sink->events[0].partition, 3);
  EXPECT_EQ(sink->events[0].offset, 9);

  // Corrupt payload is rejected.
  msg.message.value.resize(2);
  EXPECT_FALSE(scan.ProcessMessage(msg, ctx).ok());
}

TEST_F(OpsTest, InsertSerializesAndPreservesPartition) {
  auto schema = TestSchema();
  InsertOperator insert("out", std::make_shared<AvroRowSerde>(schema));
  auto ctx = Ctx();
  ASSERT_TRUE(insert.Init(ctx).ok());
  ASSERT_TRUE(insert.Process(Ev(5, 2, 3, 0, 7), ctx).ok());
  ASSERT_EQ(collector_.sent.size(), 1u);
  EXPECT_EQ(collector_.sent[0].topic, "out");
  EXPECT_EQ(collector_.sent[0].partition, 7);
  AvroRowSerde serde(schema);
  auto back = serde.DeserializeBytes(collector_.sent[0].value);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value()[2], Value(int32_t{3}));
  EXPECT_EQ(insert.emitted(), 1);
}

TEST_F(OpsTest, OperatorRegistersAndAdvancesScopedMetrics) {
  // Metrics are scoped `<job>.<task>.<operator>.<metric>`: default job name
  // "job", task "Partition 0" sanitized to "Partition_0", standalone
  // operators use name() as their id.
  auto sink = std::make_shared<SinkOperator>();
  FilterOperator filter(ResolvedExpr("val > 10", TestSchema()));
  filter.SetNext(sink);
  auto ctx = Ctx();
  ASSERT_TRUE(filter.Init(ctx).ok());
  ASSERT_TRUE(filter.Process(Ev(100, 1, 5), ctx).ok());
  ASSERT_TRUE(filter.Process(Ev(200, 1, 15), ctx).ok());

  MetricsSnapshot snap = task_.metrics().Snapshot();
  EXPECT_EQ(snap.counters["job.Partition_0.filter.processed"], 2);
  EXPECT_EQ(snap.counters["job.Partition_0.filter.dropped"], 1);
  EXPECT_EQ(snap.histograms["job.Partition_0.filter.latency_ns"].count, 2);
  EXPECT_GT(snap.histograms["job.Partition_0.filter.latency_ns"].p99, 0);
  EXPECT_EQ(snap.gauges["job.Partition_0.filter.watermark_ms"], 200);
  // The sink downstream was also instrumented (one tuple passed the filter).
  EXPECT_EQ(snap.counters["job.Partition_0.sink.processed"], 1);
}

TEST_F(OpsTest, MetricIdOverridesScopeSegment) {
  auto sink = std::make_shared<SinkOperator>();
  FilterOperator filter(ResolvedExpr("val > 10", TestSchema()));
  filter.set_metric_id("op2-filter");
  filter.SetNext(sink);
  auto ctx = Ctx();
  ASSERT_TRUE(filter.Init(ctx).ok());
  ASSERT_TRUE(filter.Process(Ev(1, 1, 50), ctx).ok());
  MetricsSnapshot snap = task_.metrics().Snapshot();
  EXPECT_EQ(snap.counters["job.Partition_0.op2-filter.processed"], 1);
  EXPECT_EQ(snap.counters.count("job.Partition_0.filter.processed"), 0u);
}

sql::WindowCallSpec SumWindowCall(SchemaPtr schema, int64_t window_ms) {
  sql::WindowCallSpec spec;
  spec.kind = sql::AggKind::kSum;
  spec.arg = ResolvedExpr("val", schema);
  spec.partition_by.push_back(ResolvedExpr("key", schema));
  spec.ts_index = 0;
  spec.range_based = true;
  spec.preceding_ms = window_ms;
  spec.type = FieldType::Int64();
  spec.output_name = "w0";
  return spec;
}

TEST_F(OpsTest, SlidingWindowSumAdvancesAndPurges) {
  auto schema = TestSchema();
  std::vector<sql::WindowCallSpec> calls;
  calls.push_back(SumWindowCall(schema, 100));
  SlidingWindowOperator window(std::move(calls), "w");
  auto sink = std::make_shared<SinkOperator>();
  window.SetNext(sink);
  auto ctx = Ctx();
  ASSERT_TRUE(window.Init(ctx).ok());

  // Key 1: values at t=0,50,100,200. Window = 100ms preceding inclusive.
  ASSERT_TRUE(window.Process(Ev(0, 1, 10, 0), ctx).ok());
  ASSERT_TRUE(window.Process(Ev(50, 1, 20, 1), ctx).ok());
  ASSERT_TRUE(window.Process(Ev(100, 1, 30, 2), ctx).ok());
  ASSERT_TRUE(window.Process(Ev(200, 1, 40, 3), ctx).ok());
  // Other key unaffected.
  ASSERT_TRUE(window.Process(Ev(200, 2, 5, 4), ctx).ok());

  ASSERT_EQ(sink->events.size(), 5u);
  EXPECT_EQ(sink->events[0].row[3], Value(int64_t{10}));
  EXPECT_EQ(sink->events[1].row[3], Value(int64_t{30}));
  EXPECT_EQ(sink->events[2].row[3], Value(int64_t{60}));  // t in [0,100]
  EXPECT_EQ(sink->events[3].row[3], Value(int64_t{70}));  // t in [100,200]
  EXPECT_EQ(sink->events[4].row[3], Value(int64_t{5}));
}

TEST_F(OpsTest, SlidingWindowDuplicateDeliveryIsIdempotentAndDeterministic) {
  auto schema = TestSchema();
  std::vector<sql::WindowCallSpec> calls;
  calls.push_back(SumWindowCall(schema, 100));
  SlidingWindowOperator window(std::move(calls), "w");
  auto sink = std::make_shared<SinkOperator>();
  window.SetNext(sink);
  auto ctx = Ctx();
  ASSERT_TRUE(window.Init(ctx).ok());

  ASSERT_TRUE(window.Process(Ev(0, 1, 10, 0), ctx).ok());
  ASSERT_TRUE(window.Process(Ev(50, 1, 20, 1), ctx).ok());
  // Re-deliver the second tuple (same offset): same output value, no state
  // change.
  ASSERT_TRUE(window.Process(Ev(50, 1, 20, 1), ctx).ok());
  ASSERT_TRUE(window.Process(Ev(120, 1, 5, 2), ctx).ok());
  ASSERT_EQ(sink->events.size(), 4u);
  EXPECT_EQ(sink->events[1].row[3], sink->events[2].row[3]);
  EXPECT_EQ(sink->events[3].row[3], Value(int64_t{25}));  // 20 + 5; 10 expired
}

TEST_F(OpsTest, SlidingWindowReplayAfterLaterTuplesStillExact) {
  // A replayed tuple must see its original window even though later tuples
  // advanced the logical bound (physical purge waits for the committed
  // watermark).
  auto schema = TestSchema();
  std::vector<sql::WindowCallSpec> calls;
  calls.push_back(SumWindowCall(schema, 100));
  SlidingWindowOperator window(std::move(calls), "w");
  auto sink = std::make_shared<SinkOperator>();
  window.SetNext(sink);
  auto ctx = Ctx();
  ASSERT_TRUE(window.Init(ctx).ok());

  ASSERT_TRUE(window.Process(Ev(0, 1, 10, 0), ctx).ok());
  ASSERT_TRUE(window.Process(Ev(80, 1, 20, 1), ctx).ok());    // sum 30
  ASSERT_TRUE(window.Process(Ev(300, 1, 40, 2), ctx).ok());   // bound advanced to 200
  // Replay offset 1: original window [(-20),80] must still contain t=0.
  ASSERT_TRUE(window.Process(Ev(80, 1, 20, 1), ctx).ok());
  ASSERT_EQ(sink->events.size(), 4u);
  EXPECT_EQ(sink->events[3].row[3], sink->events[1].row[3]);
}

TEST_F(OpsTest, SlidingWindowRowsBased) {
  auto schema = TestSchema();
  sql::WindowCallSpec spec = SumWindowCall(schema, 0);
  spec.range_based = false;
  spec.preceding_rows = 1;  // current + 1 preceding
  std::vector<sql::WindowCallSpec> calls;
  calls.push_back(std::move(spec));
  SlidingWindowOperator window(std::move(calls), "w");
  auto sink = std::make_shared<SinkOperator>();
  window.SetNext(sink);
  auto ctx = Ctx();
  ASSERT_TRUE(window.Init(ctx).ok());

  ASSERT_TRUE(window.Process(Ev(0, 1, 1, 0), ctx).ok());
  ASSERT_TRUE(window.Process(Ev(1, 1, 2, 1), ctx).ok());
  ASSERT_TRUE(window.Process(Ev(2, 1, 4, 2), ctx).ok());
  ASSERT_EQ(sink->events.size(), 3u);
  EXPECT_EQ(sink->events[0].row[3], Value(int64_t{1}));
  EXPECT_EQ(sink->events[1].row[3], Value(int64_t{3}));
  EXPECT_EQ(sink->events[2].row[3], Value(int64_t{6}));
}

TEST_F(OpsTest, WindowAggregateEmitsOnWatermarkAndDiscardsLate) {
  auto schema = TestSchema();
  sql::GroupWindowSpec win;
  win.type = sql::GroupWindowSpec::Type::kTumble;
  win.ts_index = 0;
  win.emit_ms = 100;
  win.retain_ms = 100;
  std::vector<sql::ExprPtr> groups;
  groups.push_back(ResolvedExpr("key", schema));
  std::vector<sql::AggCallSpec> aggs;
  sql::AggCallSpec count;
  count.kind = sql::AggKind::kCount;
  count.type = FieldType::Int64();
  aggs.push_back(std::move(count));
  WindowAggregateOperator agg(std::move(groups), win, std::move(aggs), "agg");
  auto sink = std::make_shared<SinkOperator>();
  agg.SetNext(sink);
  auto ctx = Ctx();
  ASSERT_TRUE(agg.Init(ctx).ok());

  ASSERT_TRUE(agg.Process(Ev(10, 1, 0, 0), ctx).ok());
  ASSERT_TRUE(agg.Process(Ev(20, 1, 0, 1), ctx).ok());
  ASSERT_TRUE(agg.Process(Ev(90, 2, 0, 2), ctx).ok());
  EXPECT_TRUE(sink->events.empty());  // window [0,100) still open

  // Watermark passes 100: both groups' windows emit.
  ASSERT_TRUE(agg.Process(Ev(150, 1, 0, 3), ctx).ok());
  ASSERT_EQ(sink->events.size(), 2u);
  // Output layout: [key, window_start, window_end, count].
  EXPECT_EQ(sink->events[0].row[0], Value(int32_t{1}));
  EXPECT_EQ(sink->events[0].row[1], Value(int64_t{0}));
  EXPECT_EQ(sink->events[0].row[2], Value(int64_t{100}));
  EXPECT_EQ(sink->events[0].row[3], Value(int64_t{2}));
  EXPECT_EQ(sink->events[1].row[0], Value(int32_t{2}));

  // A tuple for the already-closed [0,100) window is discarded.
  ASSERT_TRUE(agg.Process(Ev(50, 1, 0, 4), ctx).ok());
  EXPECT_EQ(agg.discarded_late(), 1);
  EXPECT_EQ(task_.metrics().Snapshot().counters["job.Partition_0.window-aggregate.dropped"],
            1);
  ASSERT_TRUE(agg.Process(Ev(250, 1, 0, 5), ctx).ok());
  // The [100,200) window closed with only the t=150 tuple.
  ASSERT_EQ(sink->events.size(), 3u);
  EXPECT_EQ(sink->events[2].row[3], Value(int64_t{1}));
}

TEST_F(OpsTest, HoppingAggregateAssignsTupleToMultipleWindows) {
  auto schema = TestSchema();
  sql::GroupWindowSpec win;
  win.type = sql::GroupWindowSpec::Type::kHop;
  win.ts_index = 0;
  win.emit_ms = 50;
  win.retain_ms = 100;
  std::vector<sql::AggCallSpec> aggs;
  sql::AggCallSpec count;
  count.kind = sql::AggKind::kCount;
  count.type = FieldType::Int64();
  aggs.push_back(std::move(count));
  WindowAggregateOperator agg({}, win, std::move(aggs), "agg");
  auto sink = std::make_shared<SinkOperator>();
  agg.SetNext(sink);
  auto ctx = Ctx();
  ASSERT_TRUE(agg.Init(ctx).ok());

  ASSERT_TRUE(agg.Process(Ev(60, 1, 0, 0), ctx).ok());  // windows [0,100) & [50,150)
  ASSERT_TRUE(agg.Process(Ev(400, 1, 0, 1), ctx).ok()); // closes both
  ASSERT_GE(sink->events.size(), 2u);
  EXPECT_EQ(sink->events[0].row[0], Value(int64_t{0}));   // start
  EXPECT_EQ(sink->events[0].row[2], Value(int64_t{1}));   // count
  EXPECT_EQ(sink->events[1].row[0], Value(int64_t{50}));
}

TEST_F(OpsTest, StreamTableJoinLooksUpAndHonorsUpserts) {
  auto schema = TestSchema();
  auto right_schema = Schema::Make("R", {{"rkey", FieldType::Int32(), false},
                                         {"info", FieldType::String(), false}});
  StreamTableJoinOperator join({{1, 0}}, nullptr,
                               std::make_shared<AvroRowSerde>(right_schema), "j");
  auto sink = std::make_shared<SinkOperator>();
  join.SetNext(sink);
  auto ctx = Ctx();
  ASSERT_TRUE(join.Init(ctx).ok());

  // No match yet: dropped (inner join).
  ASSERT_TRUE(join.Process(Ev(1, 7, 0, 0), ctx).ok());
  EXPECT_TRUE(sink->events.empty());

  // Relation side (side=1) upsert for key 7.
  TupleEvent rel;
  rel.row = {Value(int32_t{7}), Value("first")};
  rel.side = 1;
  ASSERT_TRUE(join.Process(rel, ctx).ok());
  EXPECT_EQ(join.table_size(), 1u);

  ASSERT_TRUE(join.Process(Ev(2, 7, 0, 1), ctx).ok());
  ASSERT_EQ(sink->events.size(), 1u);
  EXPECT_EQ(sink->events[0].row[4], Value("first"));

  // Upsert replaces.
  rel.row = {Value(int32_t{7}), Value("second")};
  ASSERT_TRUE(join.Process(rel, ctx).ok());
  EXPECT_EQ(join.table_size(), 1u);
  ASSERT_TRUE(join.Process(Ev(3, 7, 0, 2), ctx).ok());
  EXPECT_EQ(sink->events[1].row[4], Value("second"));
}

TEST_F(OpsTest, StreamStreamJoinMatchesWithinWindowOnly) {
  auto schema = TestSchema();
  StreamStreamJoinOperator join({{1, 1}}, 0, 0, 1000, 1000, nullptr,
                                std::make_shared<AvroRowSerde>(schema),
                                std::make_shared<AvroRowSerde>(schema), "ssj");
  auto sink = std::make_shared<SinkOperator>();
  join.SetNext(sink);
  auto ctx = Ctx();
  ASSERT_TRUE(join.Init(ctx).ok());

  // Left at t=1000, right at t=1500 (in window), right at t=5000 (out).
  TupleEvent l = Ev(1000, 7, 1, 0);
  l.side = 0;
  ASSERT_TRUE(join.Process(l, ctx).ok());
  TupleEvent r1 = Ev(1500, 7, 2, 0);
  r1.side = 1;
  ASSERT_TRUE(join.Process(r1, ctx).ok());
  ASSERT_EQ(sink->events.size(), 1u);
  EXPECT_EQ(sink->events[0].rowtime, 1500);
  EXPECT_EQ(sink->events[0].row.size(), 6u);

  TupleEvent r2 = Ev(5000, 7, 3, 1);
  r2.side = 1;
  ASSERT_TRUE(join.Process(r2, ctx).ok());
  EXPECT_EQ(sink->events.size(), 1u);  // out of window: no new match

  // Different key never matches even within the window.
  TupleEvent r3 = Ev(1200, 8, 4, 2);
  r3.side = 1;
  ASSERT_TRUE(join.Process(r3, ctx).ok());
  EXPECT_EQ(sink->events.size(), 1u);
}

TEST_F(OpsTest, StreamStreamJoinPurgesByOppositeWatermark) {
  auto schema = TestSchema();
  StreamStreamJoinOperator join({{1, 1}}, 0, 0, 1000, 1000, nullptr,
                                std::make_shared<AvroRowSerde>(schema),
                                std::make_shared<AvroRowSerde>(schema), "ssj");
  auto sink = std::make_shared<SinkOperator>();
  join.SetNext(sink);
  auto ctx = Ctx();
  ASSERT_TRUE(join.Init(ctx).ok());

  for (int i = 0; i < 5; ++i) {
    TupleEvent r = Ev(1000 * i, 7, i, i);
    r.side = 1;
    ASSERT_TRUE(join.Process(r, ctx).ok());
  }
  EXPECT_EQ(join.right_buffer_size(), 5u);
  // Left watermark at t=10000 expires right entries older than 9000.
  TupleEvent l = Ev(10'000, 7, 9, 0);
  l.side = 0;
  ASSERT_TRUE(join.Process(l, ctx).ok());
  EXPECT_LT(join.right_buffer_size(), 5u);
}

TEST_F(OpsTest, RouterBuildsPlanAndRoutes) {
  auto catalog = sql::testutil::PaperCatalog();
  sql::QueryPlanner planner(catalog);
  auto stmt = sql::ParseStatement(
                  "SELECT STREAM rowtime, productId, units FROM Orders WHERE units > 10")
                  .value();
  auto plan = planner.Plan(*stmt.select).value();

  auto orders = catalog->GetSource("Orders").value();
  RouterConfig config;
  config.output_topic = "out";
  config.output_serde = std::make_shared<AvroRowSerde>(plan->schema);
  config.fusion = false;  // interpreted DAG: one operator per plan node
  auto router = MessageRouter::Build(*plan, config);
  ASSERT_TRUE(router.ok()) << router.status().ToString();
  EXPECT_EQ(router.value()->InputTopics(), std::vector<std::string>{"orders"});
  EXPECT_TRUE(router.value()->BootstrapTopics().empty());
  // Scan + Filter + Project + Insert.
  EXPECT_EQ(router.value()->num_operators(), 4u);
  EXPECT_EQ(router.value()->fused_stage(), nullptr);

  auto ctx = Ctx();
  ASSERT_TRUE(router.value()->Init(ctx).ok());
  AvroRowSerde in_serde(orders.schema);
  IncomingMessage msg;
  msg.origin = {"orders", 0};
  msg.offset = 0;
  msg.message.value = in_serde.SerializeToBytes(
      {Value(int64_t{1}), Value(int32_t{2}), Value(int64_t{3}), Value(int32_t{50}),
       Value("p")});
  ASSERT_TRUE(router.value()->Route(msg, ctx).ok());
  ASSERT_EQ(collector_.sent.size(), 1u);
  EXPECT_EQ(collector_.sent[0].topic, "out");

  // Unknown topic is an error.
  msg.origin = {"nope", 0};
  EXPECT_FALSE(router.value()->Route(msg, ctx).ok());
}

TEST_F(OpsTest, RouterFusesTerminalFilterProjectChain) {
  auto catalog = sql::testutil::PaperCatalog();
  sql::QueryPlanner planner(catalog);
  auto stmt = sql::ParseStatement(
                  "SELECT STREAM rowtime, productId, units FROM Orders WHERE units > 10")
                  .value();
  auto plan = planner.Plan(*stmt.select).value();

  auto orders = catalog->GetSource("Orders").value();
  RouterConfig config;
  config.output_topic = "out";
  config.output_serde = std::make_shared<AvroRowSerde>(plan->schema);
  auto router = MessageRouter::Build(*plan, config);  // fusion defaults on
  ASSERT_TRUE(router.ok()) << router.status().ToString();
  // The whole terminal scan<-filter<-project chain (plus the insert) is one
  // fused stage, so the router holds exactly one operator.
  EXPECT_EQ(router.value()->num_operators(), 1u);
  ASSERT_NE(router.value()->fused_stage(), nullptr);
  EXPECT_EQ(router.value()->fused_stage()->label(), "fused<op0..op2>");
  EXPECT_EQ(router.value()->InputTopics(), std::vector<std::string>{"orders"});

  auto ctx = Ctx();
  ASSERT_TRUE(router.value()->Init(ctx).ok());
  AvroRowSerde in_serde(orders.schema);
  IncomingMessage msg;
  msg.origin = {"orders", 0};
  msg.offset = 0;
  msg.message.value = in_serde.SerializeToBytes(
      {Value(int64_t{1}), Value(int32_t{2}), Value(int64_t{3}), Value(int32_t{50}),
       Value("p")});
  ASSERT_TRUE(router.value()->Route(msg, ctx).ok());
  ASSERT_EQ(collector_.sent.size(), 1u);
  EXPECT_EQ(collector_.sent[0].topic, "out");

  // A filtered-out tuple is dropped, not sent.
  msg.message.value = in_serde.SerializeToBytes(
      {Value(int64_t{2}), Value(int32_t{2}), Value(int64_t{4}), Value(int32_t{5}),
       Value("p")});
  ASSERT_TRUE(router.value()->Route(msg, ctx).ok());
  EXPECT_EQ(collector_.sent.size(), 1u);
}

TEST_F(OpsTest, RouterKeepsJoinPlansInterpretedUnderFusion) {
  auto catalog = sql::testutil::PaperCatalog();
  sql::QueryPlanner planner(catalog);
  auto stmt = sql::ParseStatement(
                  "SELECT STREAM Orders.orderId, Products.supplierId FROM Orders "
                  "JOIN Products ON Orders.productId = Products.productId")
                  .value();
  auto plan = planner.Plan(*stmt.select).value();
  RouterConfig config;
  config.output_topic = "out";
  config.output_serde = std::make_shared<AvroRowSerde>(plan->schema);
  auto router = MessageRouter::Build(*plan, config);
  ASSERT_TRUE(router.ok());
  // Chains under a join stay interpreted: no fused stage, >1 operators.
  EXPECT_EQ(router.value()->fused_stage(), nullptr);
  EXPECT_GT(router.value()->num_operators(), 1u);
}

TEST_F(OpsTest, RouterStoreNamesMatchBetweenPasses) {
  auto catalog = sql::testutil::PaperCatalog();
  sql::QueryPlanner planner(catalog);
  auto stmt = sql::ParseStatement(
                  "SELECT STREAM Orders.orderId, Products.supplierId FROM Orders "
                  "JOIN Products ON Orders.productId = Products.productId")
                  .value();
  auto plan = planner.Plan(*stmt.select).value();
  auto stores = MessageRouter::RequiredStores(*plan);
  ASSERT_TRUE(stores.ok());
  ASSERT_EQ(stores.value().size(), 1u);

  // Configure exactly the reported stores and build: Init must find them.
  RouterConfig config;
  config.output_topic = "out";
  config.output_serde = std::make_shared<AvroRowSerde>(plan->schema);
  auto router = MessageRouter::Build(*plan, config);
  ASSERT_TRUE(router.ok());
  EXPECT_FALSE(router.value()->BootstrapTopics().empty());
  auto ctx = Ctx();  // FakeTaskContext creates stores on demand
  EXPECT_TRUE(router.value()->Init(ctx).ok());
}

TEST_F(OpsTest, SerdeForFormatVariants) {
  auto schema = TestSchema();
  EXPECT_TRUE(SerdeForFormat("avro", schema).ok());
  EXPECT_TRUE(SerdeForFormat("json", schema).ok());
  EXPECT_TRUE(SerdeForFormat("reflective", schema).ok());
  EXPECT_TRUE(SerdeForFormat("", schema).ok());
  EXPECT_FALSE(SerdeForFormat("xml", schema).ok());
}

}  // namespace
}  // namespace sqs::ops
