// Concurrency stress: containers of a SQL job running in parallel threads
// against the shared broker must produce exactly the serial/oracle results
// (broker and checkpoint-topic thread safety, per-container isolation).
#include <gtest/gtest.h>

#include <set>

#include "core/executor.h"
#include "workload/generators.h"

namespace sqs::core {
namespace {

// Scheduler interface (docs/EXECUTION.md "Threaded execution"):
// executor.mode picks the scheduler, and a bad mode surfaces as
// RunJobsUntilQuiescent's error (the scheduler is built lazily there).
TEST(SchedulerTest, ModesParseAndBadModeSurfacesOnRun) {
  EXPECT_EQ(ParseExecutorMode("serial").value(), ExecutorMode::kSerial);
  EXPECT_EQ(ParseExecutorMode("threaded").value(), ExecutorMode::kThreaded);
  EXPECT_FALSE(ParseExecutorMode("fibers").ok());

  auto env = SamzaSqlEnvironment::Make();
  ASSERT_TRUE(workload::SetupPaperSources(*env, 4).ok());
  workload::OrdersGenerator gen(*env, {});
  ASSERT_TRUE(gen.Produce(1'000).ok());
  Config defaults;
  defaults.Set(cfg::kExecutorMode, "fibers");
  QueryExecutor executor(env, defaults);
  auto submitted = executor.Execute("SELECT STREAM orderId FROM Orders");
  ASSERT_TRUE(submitted.ok()) << submitted.status().ToString();
  auto ran = executor.RunJobsUntilQuiescent();
  ASSERT_FALSE(ran.ok());
  EXPECT_NE(ran.status().message().find("unknown executor.mode"),
            std::string::npos)
      << ran.status().ToString();
}

// Serial mode is the debugging baseline: same results as the threaded
// default, just single-threaded.
TEST(SchedulerTest, SerialModeMatchesThreadedDefault) {
  auto run_mode = [](const char* mode) {
    auto env = SamzaSqlEnvironment::Make();
    EXPECT_TRUE(workload::SetupPaperSources(*env, 4).ok());
    workload::OrdersGenerator gen(*env, {});
    EXPECT_TRUE(gen.Produce(5'000).ok());
    Config defaults;
    defaults.SetInt(cfg::kContainerCount, 2);
    if (mode != nullptr) defaults.Set(cfg::kExecutorMode, mode);
    QueryExecutor executor(env, defaults);
    auto submitted = executor.Execute(
        "SELECT STREAM orderId, units FROM Orders WHERE units > 40");
    EXPECT_TRUE(submitted.ok()) << submitted.status().ToString();
    auto ran = executor.RunJobsUntilQuiescent();
    EXPECT_TRUE(ran.ok()) << ran.status().ToString();
    auto rows = executor.ReadOutputRows(submitted.value().output_topic);
    EXPECT_TRUE(rows.ok()) << rows.status().ToString();
    std::multiset<std::string> out;
    for (const Row& r : rows.value()) out.insert(RowToString(r));
    return out;
  };
  std::multiset<std::string> serial = run_mode("serial");
  std::multiset<std::string> threaded = run_mode(nullptr);  // default
  EXPECT_FALSE(serial.empty());
  EXPECT_EQ(serial, threaded);
}

TEST(StressTest, ThreadedContainersMatchOracle) {
  auto env = SamzaSqlEnvironment::Make();
  ASSERT_TRUE(workload::SetupPaperSources(*env, 8).ok());
  workload::OrdersGenerator gen(*env, {});
  ASSERT_TRUE(gen.Produce(20'000).ok());

  Config defaults;
  defaults.SetInt(cfg::kContainerCount, 4);
  defaults.SetInt(cfg::kCommitEveryMessages, 500);
  QueryExecutor executor(env, defaults);
  auto submitted = executor.Execute(
      "SELECT STREAM orderId, units FROM Orders WHERE units > 40");
  ASSERT_TRUE(submitted.ok()) << submitted.status().ToString();

  JobRunner* job = executor.job(submitted.value().job_index);
  auto n = job->RunThreadedUntilQuiescent();
  ASSERT_TRUE(n.ok()) << n.status().ToString();
  EXPECT_EQ(n.value(), 20'000);

  auto rows = executor.ReadOutputRows(submitted.value().output_topic).value();
  auto oracle = executor.Execute("SELECT orderId, units FROM Orders WHERE units > 40");
  ASSERT_TRUE(oracle.ok());
  std::multiset<std::string> got, expected;
  for (const Row& r : rows) got.insert(RowToString(r));
  for (const Row& r : oracle.value().rows) expected.insert(RowToString(r));
  EXPECT_EQ(got, expected);
}

TEST(StressTest, ThreadedStatefulJoinMatchesOracle) {
  auto env = SamzaSqlEnvironment::Make();
  ASSERT_TRUE(workload::SetupPaperSources(*env, 8).ok());
  workload::OrdersGeneratorOptions options;
  options.num_products = 100;
  workload::OrdersGenerator gen(*env, options);
  ASSERT_TRUE(gen.Produce(10'000).ok());
  ASSERT_TRUE(workload::ProduceProducts(*env, 100).ok());

  Config defaults;
  defaults.SetInt(cfg::kContainerCount, 4);
  QueryExecutor executor(env, defaults);
  auto submitted = executor.Execute(
      "SELECT STREAM Orders.orderId, Products.supplierId FROM Orders JOIN Products "
      "ON Orders.productId = Products.productId");
  ASSERT_TRUE(submitted.ok()) << submitted.status().ToString();
  JobRunner* job = executor.job(submitted.value().job_index);
  ASSERT_TRUE(job->RunThreadedUntilQuiescent().ok());

  auto rows = executor.ReadOutputRows(submitted.value().output_topic).value();
  auto oracle = executor.Execute(
      "SELECT Orders.orderId, Products.supplierId FROM Orders JOIN Products "
      "ON Orders.productId = Products.productId");
  ASSERT_TRUE(oracle.ok());
  EXPECT_EQ(rows.size(), oracle.value().rows.size());
  std::multiset<std::string> got, expected;
  for (const Row& r : rows) got.insert(RowToString(r));
  for (const Row& r : oracle.value().rows) expected.insert(RowToString(r));
  EXPECT_EQ(got, expected);
}

TEST(StressTest, ManyQueriesShareOneEnvironment) {
  auto env = SamzaSqlEnvironment::Make();
  ASSERT_TRUE(workload::SetupPaperSources(*env, 4).ok());
  workload::OrdersGenerator gen(*env, {});
  ASSERT_TRUE(gen.Produce(2'000).ok());
  Config defaults;
  defaults.SetInt(cfg::kContainerCount, 2);
  QueryExecutor executor(env, defaults);
  // Ten jobs over the same input topic, each with its own checkpoint topic,
  // stores, and output.
  std::vector<std::string> outputs;
  for (int i = 0; i < 10; ++i) {
    auto submitted = executor.Execute(
        "SELECT STREAM orderId FROM Orders WHERE units > " + std::to_string(10 * i));
    ASSERT_TRUE(submitted.ok()) << submitted.status().ToString();
    outputs.push_back(submitted.value().output_topic);
  }
  ASSERT_TRUE(executor.RunJobsUntilQuiescent().ok());
  size_t previous = SIZE_MAX;
  for (int i = 0; i < 10; ++i) {
    auto rows = executor.ReadOutputRows(outputs[static_cast<size_t>(i)]).value();
    EXPECT_LE(rows.size(), previous);  // tighter filter -> fewer rows
    previous = rows.size();
  }
  EXPECT_LT(previous, 2000u);
}

}  // namespace
}  // namespace sqs::core
