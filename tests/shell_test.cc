// Shell tests: statement buffering, meta commands, table rendering, and a
// full scripted session.
#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>

#include "common/tracing.h"
#include "core/shell.h"
#include "workload/generators.h"

namespace sqs::core {
namespace {

class ShellTest : public ::testing::Test {
 protected:
  void SetUp() override {
    env_ = SamzaSqlEnvironment::Make();
    ASSERT_TRUE(workload::SetupPaperSources(*env_, 2).ok());
    workload::OrdersGenerator gen(*env_, {});
    ASSERT_TRUE(gen.Produce(200).ok());
    Config defaults;
    defaults.SetInt(cfg::kContainerCount, 1);
    shell_ = std::make_unique<Shell>(env_, defaults);
  }

  std::string Feed(const std::string& line) {
    std::ostringstream out;
    alive_ = shell_->ProcessLine(line, out);
    return out.str();
  }

  EnvironmentPtr env_;
  std::unique_ptr<Shell> shell_;
  bool alive_ = true;
};

TEST_F(ShellTest, BatchQueryRendersTable) {
  std::string out = Feed("SELECT COUNT(*) AS c FROM Orders GROUP BY FLOOR(rowtime TO DAY);");
  EXPECT_NE(out.find("| c "), std::string::npos);
  EXPECT_NE(out.find("200"), std::string::npos);
  EXPECT_NE(out.find("1 row(s)"), std::string::npos);
}

TEST_F(ShellTest, MultiLineStatementBuffersUntilSemicolon) {
  EXPECT_EQ(Feed("SELECT COUNT(*) AS c FROM Orders"), "");
  std::string out = Feed("GROUP BY FLOOR(rowtime TO DAY);");
  EXPECT_NE(out.find("200"), std::string::npos);
}

TEST_F(ShellTest, TwoStatementsOnOneLine) {
  std::string out = Feed(
      "SELECT COUNT(*) AS a FROM Orders GROUP BY FLOOR(rowtime TO DAY); "
      "SELECT COUNT(*) AS b FROM Orders GROUP BY FLOOR(rowtime TO DAY);");
  EXPECT_NE(out.find("| a "), std::string::npos);
  EXPECT_NE(out.find("| b "), std::string::npos);
}

TEST_F(ShellTest, SemicolonInsideStringLiteralIsNotASplit) {
  std::string out =
      Feed("SELECT COUNT(*) AS c FROM Orders WHERE pad <> 'x;y' GROUP BY "
           "FLOOR(rowtime TO DAY);");
  EXPECT_NE(out.find("200"), std::string::npos);
}

TEST_F(ShellTest, ErrorsAreReportedNotFatal) {
  std::string out = Feed("SELECT bogus FROM Orders;");
  EXPECT_NE(out.find("ERROR"), std::string::npos);
  EXPECT_TRUE(alive_);
  // Shell still works afterwards.
  out = Feed("SELECT COUNT(*) AS c FROM Orders GROUP BY FLOOR(rowtime TO DAY);");
  EXPECT_NE(out.find("200"), std::string::npos);
}

TEST_F(ShellTest, TablesAndDescribe) {
  std::string out = Feed("!tables");
  EXPECT_NE(out.find("stream Orders"), std::string::npos);
  EXPECT_NE(out.find("table  Products"), std::string::npos);
  out = Feed("!describe Orders");
  EXPECT_NE(out.find("rowtime"), std::string::npos);
  EXPECT_NE(out.find("units"), std::string::npos);
  out = Feed("!describe Nope");
  EXPECT_NE(out.find("ERROR"), std::string::npos);
}

TEST_F(ShellTest, StreamingFlow) {
  std::string out = Feed("SELECT STREAM orderId FROM Orders WHERE units > 95;");
  EXPECT_NE(out.find("job samzasql-query-0 submitted"), std::string::npos);
  out = Feed("!jobs");
  EXPECT_NE(out.find("samzasql-query-0"), std::string::npos);
  out = Feed("!run");
  EXPECT_NE(out.find("processed"), std::string::npos);
  out = Feed("!output samzasql-query-0-output 3");
  EXPECT_NE(out.find("orderId"), std::string::npos);
  EXPECT_NE(out.find("row(s)"), std::string::npos);
}

TEST_F(ShellTest, ShowMetricsWithNoJobsIsEmpty) {
  std::string out = Feed("SHOW METRICS;");
  EXPECT_NE(out.find("0 metric(s)"), std::string::npos);
}

TEST_F(ShellTest, ShowMetricsSurfacesWindowedJoinObservability) {
  // A windowed stream-stream join (paper §2: packet latency between two
  // routers), driven to quiescence, then inspected via SHOW METRICS.
  ASSERT_TRUE(workload::ProducePackets(*env_, 300).ok());
  std::string out = Feed(
      "SELECT STREAM PacketsR1.packetId, "
      "PacketsR2.rowtime - PacketsR1.rowtime AS timeToTravel "
      "FROM PacketsR1 JOIN PacketsR2 ON "
      "PacketsR1.rowtime BETWEEN PacketsR2.rowtime - INTERVAL '2' SECOND "
      "AND PacketsR2.rowtime + INTERVAL '2' SECOND "
      "AND PacketsR1.packetId = PacketsR2.packetId;");
  ASSERT_NE(out.find("submitted"), std::string::npos) << out;
  Feed("!run");

  std::string table = Feed("SHOW METRICS;");
  // Per-operator processed counters and latency percentiles.
  EXPECT_NE(table.find("scan.processed"), std::string::npos) << table;
  EXPECT_NE(table.find("stream-stream-join.processed"), std::string::npos) << table;
  EXPECT_NE(table.find("latency_ns"), std::string::npos);
  EXPECT_NE(table.find("p50="), std::string::npos);
  EXPECT_NE(table.find("p95="), std::string::npos);
  EXPECT_NE(table.find("p99="), std::string::npos);
  // Event-time progress and lag behind wall clock.
  EXPECT_NE(table.find("watermark_ms"), std::string::npos);
  EXPECT_NE(table.find("watermark_lag_ms"), std::string::npos);
  // Per-partition consumer lag gauges for both input topics.
  EXPECT_NE(table.find("lag.PacketsR1.0"), std::string::npos);
  EXPECT_NE(table.find("lag.PacketsR1.1"), std::string::npos);
  EXPECT_NE(table.find("lag.PacketsR2.0"), std::string::npos);

  std::string json = Feed("SHOW METRICS JSON;");
  EXPECT_NE(json.find("\"type\":\"histogram\""), std::string::npos);
  EXPECT_NE(json.find("\"p99\":"), std::string::npos);
  EXPECT_NE(json.find("\"ts_ms\":"), std::string::npos);
  // Lower-case keyword and leading whitespace also work.
  EXPECT_NE(Feed("  show metrics;").find("metric(s)"), std::string::npos);
}

// The tracer is process-global; these tests reset it around each run so state
// never leaks into (or from) other tests in this binary.
class TracedShellTest : public ShellTest {
 protected:
  void SetUp() override {
    Tracer::Instance().Reset();
    ShellTest::SetUp();
  }
  void TearDown() override { Tracer::Instance().Reset(); }

  // Parse "key=<int>" from the machine-readable EXPLAIN ANALYZE footer.
  static int64_t FooterValue(const std::string& text, const std::string& key) {
    size_t pos = text.find(key + "=");
    if (pos == std::string::npos) {
      ADD_FAILURE() << "footer key " << key << " missing in:\n" << text;
      return -1;
    }
    return std::atoll(text.c_str() + pos + key.size() + 1);
  }
};

TEST_F(TracedShellTest, ExplainAnalyzeAnnotatesPlanWithSpanStats) {
  // Fusion is on by default, so the terminal scan<-filter<-project chain
  // reports as one fused stage covering every plan line plus the insert.
  std::string out =
      Feed("EXPLAIN ANALYZE SELECT STREAM orderId, units * 2 AS doubled "
           "FROM Orders WHERE units > 50;");
  // Header names the profiled job and how many traces/spans were captured.
  EXPECT_NE(out.find("EXPLAIN ANALYZE samzasql-query-0 (traces="), std::string::npos)
      << out;
  // Every covered plan line carries the fused stage's annotation.
  EXPECT_NE(out.find("fused<op0..op2> count="), std::string::npos) << out;
  EXPECT_EQ(out.find("[no sampled spans]"), std::string::npos) << out;
  EXPECT_NE(out.find("incl="), std::string::npos);
  EXPECT_NE(out.find("self%="), std::string::npos);
  // The stream-insert root (subsumed by the stage) keeps its synthetic line.
  EXPECT_NE(out.find("insert -> samzasql-query-0-output"), std::string::npos) << out;
  // The container dispatches in batches: one "process" span per run.
  EXPECT_NE(out.find("process: count="), std::string::npos) << out;
  // Serde share now comes from the stage's decode/encode child spans.
  EXPECT_NE(out.find("serde share:"), std::string::npos);
  EXPECT_NE(out.find("decode+encode self ="), std::string::npos) << out;
  // Profiling must not leave the sample rate forced to 1.0.
  EXPECT_DOUBLE_EQ(Tracer::Instance().sample_rate(), 0.0);
}

TEST_F(TracedShellTest, ExplainAnalyzeInterpretedWhenFusionOff) {
  Config defaults;
  defaults.SetInt(cfg::kContainerCount, 1);
  defaults.Set(sqlcfg::kFusion, "off");
  shell_ = std::make_unique<Shell>(env_, defaults);
  std::string out =
      Feed("EXPLAIN ANALYZE SELECT STREAM orderId, units * 2 AS doubled "
           "FROM Orders WHERE units > 50;");
  // Every plan line carries a per-operator annotation with plan-unique ids.
  EXPECT_NE(out.find("op0-"), std::string::npos) << out;
  EXPECT_NE(out.find("-scan count="), std::string::npos) << out;
  EXPECT_NE(out.find("-insert count="), std::string::npos) << out;
  EXPECT_EQ(out.find("fused<"), std::string::npos) << out;
  EXPECT_NE(out.find("process: count="), std::string::npos) << out;
  EXPECT_NE(out.find("scan+insert self ="), std::string::npos) << out;
}

TEST_F(TracedShellTest, ExplainAnalyzeSelfTimesSumToContainerBusyTime) {
  // Acceptance criterion: on a windowed-join query, per-operator self times
  // must sum (within 10%) to the container's measured busy time for the
  // sampled tuples — no double counting, nothing unattributed.
  ASSERT_TRUE(workload::ProducePackets(*env_, 300).ok());
  std::string out = Feed(
      "EXPLAIN ANALYZE SELECT STREAM PacketsR1.packetId, "
      "PacketsR2.rowtime - PacketsR1.rowtime AS timeToTravel "
      "FROM PacketsR1 JOIN PacketsR2 ON "
      "PacketsR1.rowtime BETWEEN PacketsR2.rowtime - INTERVAL '2' SECOND "
      "AND PacketsR2.rowtime + INTERVAL '2' SECOND "
      "AND PacketsR1.packetId = PacketsR2.packetId;");
  EXPECT_NE(out.find("-join count="), std::string::npos) << out;
  int64_t total_self = FooterValue(out, "total_self_ns");
  int64_t op_self = FooterValue(out, "operator_self_ns");
  int64_t busy = FooterValue(out, "traced_busy_ns");
  ASSERT_GT(busy, 0) << out;
  ASSERT_GT(op_self, 0) << out;
  EXPECT_LE(std::abs(total_self - busy), busy / 10)
      << "total_self_ns=" << total_self << " traced_busy_ns=" << busy;
  // Operators can never account for more than the container busy time.
  EXPECT_LE(op_self, total_self);
}

TEST_F(TracedShellTest, ExplainAnalyzeRejectsBatchQueries) {
  std::string out =
      Feed("EXPLAIN ANALYZE SELECT COUNT(*) AS c FROM Orders "
           "GROUP BY FLOOR(rowtime TO DAY);");
  EXPECT_NE(out.find("ERROR"), std::string::npos) << out;
  // Plain EXPLAIN is untouched by the ANALYZE path.
  out = Feed("EXPLAIN SELECT STREAM orderId FROM Orders;");
  EXPECT_EQ(out.find("traces="), std::string::npos) << out;
  EXPECT_NE(out.find("Scan("), std::string::npos) << out;
}

TEST_F(TracedShellTest, ShowTraceSummarizesAndExportsSpans) {
  Feed("EXPLAIN ANALYZE SELECT STREAM orderId FROM Orders WHERE units > 10;");
  std::string out = Feed("SHOW TRACE;");
  EXPECT_NE(out.find("traces="), std::string::npos) << out;
  EXPECT_NE(out.find("sample_rate="), std::string::npos);
  EXPECT_NE(out.find("process"), std::string::npos) << out;
  // Scoped to one job, span names keep their plan-unique operator ids
  // (fused stages carry the covered id range in their label).
  out = Feed("SHOW TRACE samzasql-query-0;");
  EXPECT_NE(out.find("fused<op0"), std::string::npos) << out;
  // Chrome trace export for chrome://tracing / Perfetto.
  out = Feed("SHOW TRACE JSON;");
  EXPECT_NE(out.find("\"traceEvents\":["), std::string::npos) << out;
  EXPECT_NE(out.find("\"ph\":\"X\""), std::string::npos);
}

TEST_F(ShellTest, ShowDlqSummarizesDeadLetteredRecords) {
  // A shell whose jobs dead-letter poison instead of crashing.
  Config defaults;
  defaults.SetInt(cfg::kContainerCount, 1);
  defaults.Set(cfg::kTaskErrorPolicy, "dead-letter");
  shell_ = std::make_unique<Shell>(env_, defaults);

  std::string out = Feed("SHOW DLQ;");
  EXPECT_NE(out.find("no dead-letter topics"), std::string::npos) << out;

  // One undeserializable record amidst the valid orders.
  Producer raw(env_->broker);
  ASSERT_TRUE(raw.SendTo({"Orders", 1}, Bytes{}, Bytes{0xff}).ok());
  Feed("SELECT STREAM orderId FROM Orders WHERE units > 95;");
  Feed("!run");

  out = Feed("SHOW DLQ;");
  EXPECT_NE(out.find("samzasql-query-0.dlq"), std::string::npos) << out;
  EXPECT_NE(out.find("1 record(s)"), std::string::npos) << out;
  EXPECT_NE(out.find("origin=Orders[1]"), std::string::npos) << out;
  EXPECT_NE(out.find("error:"), std::string::npos) << out;

  std::string json = Feed("SHOW DLQ JSON;");
  EXPECT_NE(json.find("\"topic\":\"samzasql-query-0.dlq\""), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"records\":1"), std::string::npos);
  EXPECT_NE(json.find("\"task\":"), std::string::npos);
  EXPECT_NE(json.find("\"error\":"), std::string::npos);

  // A job filter that matches nothing reports that, not other jobs' queues.
  out = Feed("SHOW DLQ nosuchjob;");
  EXPECT_NE(out.find("no dead-letter topics for nosuchjob"), std::string::npos)
      << out;
}

TEST_F(ShellTest, UnknownMetaCommand) {
  EXPECT_NE(Feed("!frobnicate").find("unknown command"), std::string::npos);
}

TEST_F(ShellTest, QuitStopsShell) {
  Feed("!quit");
  EXPECT_FALSE(alive_);
}

TEST_F(ShellTest, ReplRunsScript) {
  std::istringstream in(
      "!tables\n"
      "SELECT COUNT(*) AS c FROM Orders GROUP BY FLOOR(rowtime TO DAY);\n"
      "!quit\n");
  std::ostringstream out;
  shell_->Repl(in, out);
  EXPECT_NE(out.str().find("stream Orders"), std::string::npos);
  EXPECT_NE(out.str().find("200"), std::string::npos);
}

TEST(ShellFormatTest, AlignsColumns) {
  auto schema = Schema::Make("T", {{"id", FieldType::Int64(), false},
                                   {"name", FieldType::String(), false}});
  std::vector<Row> rows = {{Value(int64_t{1}), Value("a")},
                           {Value(int64_t{1000}), Value("longer")}};
  std::string table = Shell::FormatTable(schema, rows);
  EXPECT_NE(table.find("| id   | name   |"), std::string::npos);
  EXPECT_NE(table.find("| 1000 | longer |"), std::string::npos);
  EXPECT_NE(table.find("2 row(s)"), std::string::npos);
}

TEST(ShellFormatTest, TruncatesLongResults) {
  auto schema = Schema::Make("T", {{"id", FieldType::Int64(), false}});
  std::vector<Row> rows;
  for (int64_t i = 0; i < 100; ++i) rows.push_back({Value(i)});
  std::string table = Shell::FormatTable(schema, rows, 5);
  EXPECT_NE(table.find("100 row(s) (showing first 5)"), std::string::npos);
}

}  // namespace
}  // namespace sqs::core
