// Durable-log unit tests (docs/DURABILITY.md):
//  - ScanFrames: every torn-tail shape classifies and truncates correctly;
//  - SegmentLog: round trips, rolling, torn-tail repair, staged-rewrite and
//    stale-generation sweeps at recovery;
//  - record codecs: partition records, topic meta, producer meta;
//  - crash-point registry: arming, countdowns, unknown-name rejection;
//  - FaultInjectingFileFactory: buffered-unsynced semantics, power loss with
//    torn prefixes, short writes, failed fsyncs, ENOSPC;
//  - Broker durability: cold-restart round trips, recovery of producer dedup
//    state (the duplicate-trailing-record case), retention/compaction
//    rewrites, the checkpoint fsync barrier, EnableDurability edge cases.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "common/config.h"
#include "io/crashpoint.h"
#include "io/fault_file.h"
#include "io/file.h"
#include "log/broker.h"
#include "log/durable_log.h"
#include "log/segment.h"

namespace sqs {
namespace {

// Deterministic per-test scratch directory (ctest runs each case in its own
// process, so the name must be unique per case, not random: death-test
// children must land on the same path as their parent).
std::string TestDir() {
  const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
  std::string dir = std::filesystem::temp_directory_path() /
                    ("sqs_dlog_" + std::string(info->test_suite_name()) + "_" +
                     std::string(info->name()));
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

Message Msg(const std::string& key, const std::string& value) {
  Message m;
  m.key = ToBytes(key);
  m.value = ToBytes(value);
  m.timestamp = 42;
  return m;
}

Bytes Payload(const std::string& s) { return ToBytes(s); }

// ---------------------------------------------------------------------------
// ScanFrames: tail classification
// ---------------------------------------------------------------------------

TEST(ScanFramesTest, EmptyFileIsCleanEnd) {
  SegmentScan scan = ScanFrames(Bytes{});
  EXPECT_EQ(scan.tail, SegmentScan::Tail::kCleanEnd);
  EXPECT_TRUE(scan.records.empty());
  EXPECT_EQ(scan.good_bytes, 0);
}

TEST(ScanFramesTest, ExactRecordBoundaryEndIsClean) {
  Bytes data;
  AppendFrame(&data, Payload("one").data(), 3);
  AppendFrame(&data, Payload("three").data(), 5);
  SegmentScan scan = ScanFrames(data);
  EXPECT_EQ(scan.tail, SegmentScan::Tail::kCleanEnd);
  ASSERT_EQ(scan.records.size(), 2u);
  EXPECT_EQ(scan.records[0], Payload("one"));
  EXPECT_EQ(scan.records[1], Payload("three"));
  EXPECT_EQ(scan.good_bytes, static_cast<int64_t>(data.size()));
}

TEST(ScanFramesTest, TornLengthPrefixTruncatesAtLastGoodFrame) {
  Bytes data;
  AppendFrame(&data, Payload("good").data(), 4);
  const int64_t good = static_cast<int64_t>(data.size());
  // Fewer than 8 header bytes after the good frame: a torn length prefix.
  data.push_back(0x05);
  data.push_back(0x00);
  data.push_back(0x00);
  SegmentScan scan = ScanFrames(data);
  EXPECT_EQ(scan.tail, SegmentScan::Tail::kTornLength);
  ASSERT_EQ(scan.records.size(), 1u);
  EXPECT_EQ(scan.good_bytes, good);
}

TEST(ScanFramesTest, TornPayloadTruncatesAtLastGoodFrame) {
  Bytes data;
  AppendFrame(&data, Payload("good").data(), 4);
  const int64_t good = static_cast<int64_t>(data.size());
  // Full header claiming 100 payload bytes, but only 10 present.
  Bytes torn;
  AppendFrame(&torn, Bytes(100, 0xAB).data(), 100);
  data.insert(data.end(), torn.begin(), torn.begin() + 18);
  SegmentScan scan = ScanFrames(data);
  EXPECT_EQ(scan.tail, SegmentScan::Tail::kTornPayload);
  ASSERT_EQ(scan.records.size(), 1u);
  EXPECT_EQ(scan.good_bytes, good);
}

TEST(ScanFramesTest, CorruptLengthOverrunningFileIsTornPayload) {
  Bytes data;
  AppendFrame(&data, Payload("good").data(), 4);
  const int64_t good = static_cast<int64_t>(data.size());
  Bytes frame;
  AppendFrame(&frame, Payload("next").data(), 4);
  frame[0] = 0xFF;  // length explodes: claims ~4GB, overruns the file
  frame[1] = 0xFF;
  frame[2] = 0xFF;
  data.insert(data.end(), frame.begin(), frame.end());
  SegmentScan scan = ScanFrames(data);
  EXPECT_EQ(scan.tail, SegmentScan::Tail::kTornPayload);
  ASSERT_EQ(scan.records.size(), 1u);
  EXPECT_EQ(scan.good_bytes, good);
}

TEST(ScanFramesTest, TornCrcBitRotIsBadCrc) {
  Bytes data;
  AppendFrame(&data, Payload("good").data(), 4);
  const int64_t good = static_cast<int64_t>(data.size());
  Bytes frame;
  AppendFrame(&frame, Payload("rotten").data(), 6);
  frame[4] ^= 0x01;  // flip one CRC bit: full frame present, checksum wrong
  data.insert(data.end(), frame.begin(), frame.end());
  SegmentScan scan = ScanFrames(data);
  EXPECT_EQ(scan.tail, SegmentScan::Tail::kBadCrc);
  ASSERT_EQ(scan.records.size(), 1u);
  EXPECT_EQ(scan.good_bytes, good);
}

TEST(ScanFramesTest, PayloadBitRotIsBadCrc) {
  Bytes data;
  AppendFrame(&data, Payload("payload").data(), 7);
  data[data.size() - 1] ^= 0x10;  // flip a payload bit instead
  SegmentScan scan = ScanFrames(data);
  EXPECT_EQ(scan.tail, SegmentScan::Tail::kBadCrc);
  EXPECT_TRUE(scan.records.empty());
  EXPECT_EQ(scan.good_bytes, 0);
}

// ---------------------------------------------------------------------------
// SegmentLog: round trips, rolling, repair at recovery
// ---------------------------------------------------------------------------

SegmentLogOptions SmallSegments(int64_t segment_bytes = 128,
                                FsyncPolicy fsync = FsyncPolicy::kNever) {
  SegmentLogOptions o;
  o.segment_bytes = segment_bytes;
  o.fsync = fsync;
  o.scope = "test";
  return o;
}

TEST(SegmentLogTest, RoundTripAcrossRolledSegments) {
  std::string dir = TestDir() + "/p0";
  std::vector<Bytes> written;
  {
    SegmentLog log(dir, SmallSegments(64));
    std::vector<Bytes> none;
    ASSERT_TRUE(log.Open(&none, nullptr).ok());
    EXPECT_TRUE(none.empty());
    for (int i = 0; i < 20; ++i) {
      Bytes p = Payload("record-" + std::to_string(i) + std::string(16, 'x'));
      ASSERT_TRUE(log.Append(p, i).ok());
      written.push_back(std::move(p));
    }
    ASSERT_TRUE(log.Close().ok());
  }
  // Tiny segment budget: the log must have rolled into several files.
  auto files = io::PosixFileFactory::Instance()->ListDir(dir);
  ASSERT_TRUE(files.ok());
  EXPECT_GT(files.value().size(), 1u);

  SegmentLog log(dir, SmallSegments(64));
  std::vector<Bytes> replayed;
  SegmentRecovery recovery;
  ASSERT_TRUE(log.Open(&replayed, &recovery).ok());
  EXPECT_EQ(replayed, written);
  EXPECT_EQ(recovery.records, 20);
  EXPECT_EQ(recovery.truncated_bytes, 0);
  EXPECT_EQ(recovery.dropped_segments, 0);
  EXPECT_EQ(recovery.first_base_offset, 0);
  ASSERT_TRUE(log.Close().ok());
}

TEST(SegmentLogTest, EmptySegmentFileRecoversCleanly) {
  std::string dir = TestDir() + "/p0";
  {
    SegmentLog log(dir, SmallSegments());
    std::vector<Bytes> none;
    ASSERT_TRUE(log.Open(&none, nullptr).ok());
    // Open an (empty) segment by appending then... no: just close. The
    // first Append creates the file, so write one record and truncate the
    // file to zero by hand below.
    ASSERT_TRUE(log.Append(Payload("x"), 7).ok());
    ASSERT_TRUE(log.Close().ok());
  }
  auto files = io::PosixFileFactory::Instance()->ListDir(dir);
  ASSERT_TRUE(files.ok());
  ASSERT_EQ(files.value().size(), 1u);
  // Zero-length segment: everything after the header write was lost.
  std::ofstream(dir + "/" + files.value()[0],
                std::ios::binary | std::ios::trunc);

  SegmentLog log(dir, SmallSegments());
  std::vector<Bytes> replayed;
  SegmentRecovery recovery;
  ASSERT_TRUE(log.Open(&replayed, &recovery).ok());
  EXPECT_TRUE(replayed.empty());
  EXPECT_EQ(recovery.truncated_bytes, 0);
  // The base offset still recovers from the file name: the log-start
  // position survives even with zero surviving records.
  EXPECT_EQ(recovery.first_base_offset, 7);
  // The repaired log accepts appends again.
  ASSERT_TRUE(log.Append(Payload("y"), 8).ok());
  ASSERT_TRUE(log.Close().ok());
}

TEST(SegmentLogTest, TornTailIsPhysicallyTruncatedAndLaterSegmentsDropped) {
  std::string dir = TestDir() + "/p0";
  {
    SegmentLog log(dir, SmallSegments(64));
    std::vector<Bytes> none;
    ASSERT_TRUE(log.Open(&none, nullptr).ok());
    for (int i = 0; i < 12; ++i) {
      ASSERT_TRUE(
          log.Append(Payload("record-" + std::to_string(i) + std::string(16, 'x')), i)
              .ok());
    }
    ASSERT_TRUE(log.Close().ok());
  }
  auto files = io::PosixFileFactory::Instance()->ListDir(dir);
  ASSERT_TRUE(files.ok());
  std::vector<std::string> names = files.value();
  std::sort(names.begin(), names.end());
  ASSERT_GE(names.size(), 3u);
  // Tear the middle segment: append half a header to it.
  {
    std::ofstream f(dir + "/" + names[1], std::ios::binary | std::ios::app);
    f.write("\x09\x00\x00", 3);
  }

  SegmentLog log(dir, SmallSegments(64));
  std::vector<Bytes> replayed;
  SegmentRecovery recovery;
  ASSERT_TRUE(log.Open(&replayed, &recovery).ok());
  // Everything before the tear survives; the torn bytes are gone from disk
  // and every segment after the torn one is dropped — recovery yields a
  // prefix, never a gap.
  EXPECT_GT(recovery.truncated_bytes, 0);
  EXPECT_GE(recovery.dropped_segments, 1);
  ASSERT_FALSE(replayed.empty());
  for (size_t i = 0; i < replayed.size(); ++i) {
    EXPECT_EQ(replayed[i],
              Payload("record-" + std::to_string(i) + std::string(16, 'x')));
  }
  auto after = io::PosixFileFactory::Instance()->ListDir(dir);
  ASSERT_TRUE(after.ok());
  EXPECT_LT(after.value().size(), names.size());
  ASSERT_TRUE(log.Close().ok());
}

TEST(SegmentLogTest, RewriteReplacesGenerationAndSweepsStagedTmp) {
  std::string dir = TestDir() + "/p0";
  SegmentLog log(dir, SmallSegments(1 << 20));
  std::vector<Bytes> none;
  ASSERT_TRUE(log.Open(&none, nullptr).ok());
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(log.Append(Payload("v" + std::to_string(i)), i).ok());
  }
  // Retention dropped the first four records.
  ASSERT_TRUE(log.Rewrite({Payload("v4"), Payload("v5")}, 4).ok());
  ASSERT_TRUE(log.Append(Payload("v6"), 6).ok());
  ASSERT_TRUE(log.Close().ok());

  // A crashed later rewrite leaves a staged .tmp behind; recovery sweeps it.
  {
    std::ofstream f(dir + "/0000000002-00000000000000000005.seg.tmp",
                    std::ios::binary);
    f.write("garbage", 7);
  }

  SegmentLog reopened(dir, SmallSegments(1 << 20));
  std::vector<Bytes> replayed;
  SegmentRecovery recovery;
  ASSERT_TRUE(reopened.Open(&replayed, &recovery).ok());
  EXPECT_EQ(replayed,
            (std::vector<Bytes>{Payload("v4"), Payload("v5"), Payload("v6")}));
  EXPECT_EQ(recovery.first_base_offset, 4);
  EXPECT_EQ(recovery.removed_tmp_files, 1);
  ASSERT_TRUE(reopened.Close().ok());
}

TEST(SegmentLogTest, FsyncPolicyParsesAndRejectsUnknown) {
  EXPECT_EQ(ParseFsyncPolicy("always").value(), FsyncPolicy::kAlways);
  EXPECT_EQ(ParseFsyncPolicy("interval").value(), FsyncPolicy::kInterval);
  EXPECT_EQ(ParseFsyncPolicy("never").value(), FsyncPolicy::kNever);
  EXPECT_FALSE(ParseFsyncPolicy("sometimes").ok());
  EXPECT_STREQ(FsyncPolicyName(FsyncPolicy::kAlways), "always");
}

// ---------------------------------------------------------------------------
// Record codecs
// ---------------------------------------------------------------------------

TEST(DurableCodecTest, LogRecordRoundTripsEveryField) {
  Message m = Msg("the-key", "the-value");
  m.timestamp = 123456789;
  m.ingest_us = 1111;
  m.append_us = 2222;
  m.producer_id = 77;
  m.producer_epoch = 3;
  m.sequence = 41;
  StampMessageCrc(m);

  Bytes payload = EncodeLogRecord(9001, m);
  auto decoded = DecodeLogRecord(payload);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  const auto& [offset, out] = decoded.value();
  EXPECT_EQ(offset, 9001);
  EXPECT_EQ(out.key, m.key);
  EXPECT_EQ(out.value, m.value);
  EXPECT_EQ(out.timestamp, m.timestamp);
  EXPECT_EQ(out.ingest_us, m.ingest_us);
  EXPECT_EQ(out.append_us, m.append_us);
  EXPECT_EQ(out.producer_id, m.producer_id);
  EXPECT_EQ(out.producer_epoch, m.producer_epoch);
  EXPECT_EQ(out.sequence, m.sequence);
  EXPECT_EQ(out.crc, m.crc);
  EXPECT_EQ(out.has_crc, m.has_crc);
  EXPECT_TRUE(MessageCrcValid(out));
}

TEST(DurableCodecTest, TopicAndProducerMetaRoundTrip) {
  TopicMetaRecord t;
  t.name = "weird topic/with:chars";
  t.num_partitions = 7;
  t.retention_messages = 500;
  t.compacted = true;
  t.fsync_barrier = true;
  auto t2 = DecodeTopicMeta(EncodeTopicMeta(t));
  ASSERT_TRUE(t2.ok());
  EXPECT_EQ(t2.value().name, t.name);
  EXPECT_EQ(t2.value().num_partitions, 7);
  EXPECT_EQ(t2.value().retention_messages, 500);
  EXPECT_TRUE(t2.value().compacted);
  EXPECT_TRUE(t2.value().fsync_barrier);
  EXPECT_FALSE(t2.value().deleted);

  ProducerMetaRecord p;
  p.name = "task-3";
  p.pid = 12;
  p.epoch = 4;
  auto p2 = DecodeProducerMeta(EncodeProducerMeta(p));
  ASSERT_TRUE(p2.ok());
  EXPECT_EQ(p2.value().name, "task-3");
  EXPECT_EQ(p2.value().pid, 12u);
  EXPECT_EQ(p2.value().epoch, 4);
}

TEST(DurableCodecTest, TopicDirNameEscapesUnsafeCharacters) {
  EXPECT_EQ(TopicDirName("plain-topic_1.x"), "t_plain-topic_1.x");
  std::string escaped = TopicDirName("a/b c");
  EXPECT_EQ(escaped.find('/'), std::string::npos);
  EXPECT_EQ(escaped.find(' '), std::string::npos);
  EXPECT_NE(TopicDirName("a/b"), TopicDirName("a_b"));
}

TEST(DurableCodecTest, TopicDirNameNeverAliasesReservedNames) {
  // "." and ".." would escape log.dir (DeleteTopic runs RemoveAllUnder on
  // the topic dir); "__meta" would collide with the meta-log directory.
  EXPECT_EQ(TopicDirName("."), "t_.");
  EXPECT_EQ(TopicDirName(".."), "t_..");
  EXPECT_EQ(TopicDirName("__meta"), "t___meta");
  for (const std::string name : {".", "..", "__meta", "%2E%2E", "t_x"}) {
    std::string dir = TopicDirName(name);
    EXPECT_NE(dir, ".");
    EXPECT_NE(dir, "..");
    EXPECT_NE(dir, "__meta");
    EXPECT_EQ(dir.find('/'), std::string::npos) << name;
  }
  // Distinct names stay distinct even with the prefix.
  EXPECT_NE(TopicDirName("t_x"), TopicDirName("x"));
}

TEST(DurableCodecTest, OptionsFromConfigValidates) {
  Config off;
  auto o = DurableLogOptions::FromConfig(off);
  ASSERT_TRUE(o.ok());
  EXPECT_FALSE(o.value().enabled);

  Config no_dir;
  no_dir.Set(cfg::kLogDurable, "true");
  EXPECT_FALSE(DurableLogOptions::FromConfig(no_dir).ok());

  Config full;
  full.Set(cfg::kLogDurable, "true");
  full.Set(cfg::kLogDir, "/tmp/x");
  full.SetInt(cfg::kLogSegmentBytes, 4096);
  full.Set(cfg::kLogFsync, "interval");
  full.SetInt(cfg::kLogFsyncIntervalMs, 9);
  auto f = DurableLogOptions::FromConfig(full);
  ASSERT_TRUE(f.ok());
  EXPECT_TRUE(f.value().enabled);
  EXPECT_EQ(f.value().dir, "/tmp/x");
  EXPECT_EQ(f.value().segment_bytes, 4096);
  EXPECT_EQ(f.value().fsync, FsyncPolicy::kInterval);
  EXPECT_EQ(f.value().fsync_interval_ms, 9);
}

// ---------------------------------------------------------------------------
// Crash-point registry
// ---------------------------------------------------------------------------

TEST(CrashPointTest, UnknownNameIsRejected) {
  EXPECT_FALSE(io::ArmCrashPoint("segment.append.no_such_point").ok());
  EXPECT_FALSE(io::ArmCrashPoint("segment.fsync.before:0").ok());
  EXPECT_FALSE(io::ArmCrashPoint("segment.fsync.before:x").ok());
  io::DisarmCrashPoints();
}

TEST(CrashPointTest, CountdownConsumesHitsAndDisarmClears) {
  ASSERT_TRUE(io::ArmCrashPoint("segment.fsync.before:3").ok());
  EXPECT_FALSE(io::CrashPointFires("segment.fsync.before"));
  EXPECT_FALSE(io::CrashPointFires("segment.fsync.after"));  // different point
  EXPECT_FALSE(io::CrashPointFires("segment.fsync.before"));
  EXPECT_TRUE(io::CrashPointFires("segment.fsync.before"));  // third hit fires
  io::DisarmCrashPoints();
  EXPECT_FALSE(io::CrashPointFires("segment.fsync.before"));
}

TEST(CrashPointTest, RegistryListsTheWholeMatrix) {
  const auto& points = io::RegisteredCrashPoints();
  EXPECT_GE(points.size(), 11u);
  for (const std::string& p : points) {
    ASSERT_TRUE(io::ArmCrashPoint(p).ok()) << p;
    io::DisarmCrashPoints();
  }
}

// ---------------------------------------------------------------------------
// FaultInjectingFileFactory
// ---------------------------------------------------------------------------

TEST(FaultFileTest, AppendsAreBufferedUntilSync) {
  std::string dir = TestDir();
  auto fault = std::make_shared<io::FaultInjectingFileFactory>(io::FileFaultPolicy{});
  auto file = fault->OpenAppend(dir + "/f");
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE(file.value()->Append("hello", 5).ok());
  EXPECT_EQ(fault->total_unsynced_bytes(), 5);
  // The inner file has nothing yet: the bytes live in the unsynced buffer.
  EXPECT_EQ(fault->ReadFile(dir + "/f").value().size(), 0u);
  ASSERT_TRUE(file.value()->Sync().ok());
  EXPECT_EQ(fault->total_unsynced_bytes(), 0);
  EXPECT_EQ(fault->ReadFile(dir + "/f").value(), Payload("hello"));
  ASSERT_TRUE(file.value()->Close().ok());
}

TEST(FaultFileTest, CrashDropsUnsyncedAndRefusesWritesUntilRevive) {
  std::string dir = TestDir();
  auto fault = std::make_shared<io::FaultInjectingFileFactory>(io::FileFaultPolicy{});
  auto file = fault->OpenAppend(dir + "/f");
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE(file.value()->Append("synced", 6).ok());
  ASSERT_TRUE(file.value()->Sync().ok());
  ASSERT_TRUE(file.value()->Append("lost", 4).ok());

  fault->CrashAndDropUnsynced(/*torn_rate=*/0.0);
  EXPECT_FALSE(file.value()->Append("dead", 4).ok());
  EXPECT_FALSE(fault->OpenAppend(dir + "/g").ok());
  // Reads still work: the recovery scan runs against the surviving image.
  EXPECT_EQ(fault->ReadFile(dir + "/f").value(), Payload("synced"));

  fault->Revive();
  auto again = fault->OpenAppend(dir + "/f");
  ASSERT_TRUE(again.ok());
  ASSERT_TRUE(again.value()->Append("!", 1).ok());
  ASSERT_TRUE(again.value()->Sync().ok());
  EXPECT_EQ(fault->ReadFile(dir + "/f").value(), Payload("synced!"));
}

TEST(FaultFileTest, TornCrashPersistsAStrictPrefixOfTheUnsyncedTail) {
  std::string dir = TestDir();
  io::FileFaultPolicy policy;
  policy.seed = 1234;
  auto fault = std::make_shared<io::FaultInjectingFileFactory>(policy);
  auto file = fault->OpenAppend(dir + "/f");
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE(file.value()->Append("synced", 6).ok());
  ASSERT_TRUE(file.value()->Sync().ok());
  Bytes tail(64, 0x5A);
  ASSERT_TRUE(file.value()->Append(tail.data(), tail.size()).ok());

  fault->CrashAndDropUnsynced(/*torn_rate=*/1.0);
  EXPECT_EQ(fault->torn_files(), 1);
  Bytes survived = fault->ReadFile(dir + "/f").value();
  // Strictly between: the synced prefix plus [1, 64) torn bytes.
  EXPECT_GT(survived.size(), 6u);
  EXPECT_LT(survived.size(), 6u + 64u);
  EXPECT_EQ(Bytes(survived.begin(), survived.begin() + 6), Payload("synced"));
}

TEST(FaultFileTest, ShortWritePersistsPrefixAndFailsUnavailable) {
  std::string dir = TestDir();
  auto fault = std::make_shared<io::FaultInjectingFileFactory>(io::FileFaultPolicy{});
  auto file = fault->OpenAppend(dir + "/f");
  ASSERT_TRUE(file.ok());
  fault->FailNextAppends(1);
  Bytes data(32, 0x42);
  Status st = file.value()->Append(data.data(), data.size());
  EXPECT_EQ(st.code(), ErrorCode::kUnavailable);
  EXPECT_EQ(fault->injected_short_writes(), 1);
  // A prefix (possibly empty) stuck: logical size < requested.
  EXPECT_LT(file.value()->size(), 32);
  ASSERT_TRUE(file.value()->Append("ok", 2).ok());
  ASSERT_TRUE(file.value()->Sync().ok());
}

TEST(FaultFileTest, ForcedFsyncFailureLeavesBytesUnsynced) {
  std::string dir = TestDir();
  auto fault = std::make_shared<io::FaultInjectingFileFactory>(io::FileFaultPolicy{});
  auto file = fault->OpenAppend(dir + "/f");
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE(file.value()->Append("abc", 3).ok());
  fault->FailNextFsyncs(1);
  EXPECT_EQ(file.value()->Sync().code(), ErrorCode::kUnavailable);
  EXPECT_EQ(fault->injected_fsync_failures(), 1);
  EXPECT_EQ(fault->total_unsynced_bytes(), 3);
  ASSERT_TRUE(file.value()->Sync().ok());  // retry succeeds
  EXPECT_EQ(fault->total_unsynced_bytes(), 0);
}

TEST(FaultFileTest, EnospcBudgetFailsAppendsAfterTheLimit) {
  std::string dir = TestDir();
  io::FileFaultPolicy policy;
  policy.enospc_after_bytes = 10;
  auto fault = std::make_shared<io::FaultInjectingFileFactory>(policy);
  auto file = fault->OpenAppend(dir + "/f");
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE(file.value()->Append("0123456789", 10).ok());
  Status st = file.value()->Append("x", 1);
  EXPECT_FALSE(st.ok());
  EXPECT_GE(fault->injected_enospc_failures(), 1);
}

TEST(FaultFileTest, PolicyParsesFromConfig) {
  Config c;
  c.SetInt(io::cfg::kIoFaultSeed, 99);
  c.Set(io::cfg::kIoFaultShortWriteRate, "0.25");
  c.Set(io::cfg::kIoFaultFsyncFailRate, "0.5");
  c.Set(io::cfg::kIoFaultBitflipRate, "0.125");
  c.SetInt(io::cfg::kIoFaultEnospcAfterBytes, 4096);
  io::FileFaultPolicy p = io::FileFaultPolicy::FromConfig(c);
  EXPECT_EQ(p.seed, 99u);
  EXPECT_DOUBLE_EQ(p.short_write_rate, 0.25);
  EXPECT_DOUBLE_EQ(p.fsync_fail_rate, 0.5);
  EXPECT_DOUBLE_EQ(p.bitflip_rate, 0.125);
  EXPECT_EQ(p.enospc_after_bytes, 4096);
}

// ---------------------------------------------------------------------------
// Broker durability: cold restarts at the broker API level
// ---------------------------------------------------------------------------

DurableLogOptions DurableAt(const std::string& dir,
                            FsyncPolicy fsync = FsyncPolicy::kAlways,
                            io::FileFactoryPtr factory = nullptr) {
  DurableLogOptions o;
  o.enabled = true;
  o.dir = dir;
  o.segment_bytes = 256;  // force rolling under test workloads
  o.fsync = fsync;
  o.factory = std::move(factory);
  return o;
}

TEST(DurableBrokerTest, ColdRestartRecoversTopicsOffsetsAndPayloads) {
  std::string dir = TestDir();
  {
    Broker broker;
    ASSERT_TRUE(broker.EnableDurability(DurableAt(dir)).ok());
    EXPECT_TRUE(broker.durable());
    ASSERT_TRUE(broker.CreateTopic("orders", {.num_partitions = 2}).ok());
    ASSERT_TRUE(
        broker.CreateTopic("audit", {.num_partitions = 1, .compacted = true}).ok());
    for (int i = 0; i < 10; ++i) {
      ASSERT_TRUE(broker
                      .Append({"orders", i % 2},
                              Msg("k" + std::to_string(i), "v" + std::to_string(i)))
                      .ok());
    }
    ASSERT_TRUE(broker.DeleteTopic("audit").ok());
  }

  Broker restarted;
  ASSERT_TRUE(restarted.EnableDurability(DurableAt(dir)).ok());
  EXPECT_TRUE(restarted.HasTopic("orders"));
  EXPECT_FALSE(restarted.HasTopic("audit"));  // delete survived the restart
  EXPECT_EQ(restarted.NumPartitions("orders").value(), 2);
  EXPECT_EQ(restarted.EndOffset({"orders", 0}).value(), 5);
  EXPECT_EQ(restarted.EndOffset({"orders", 1}).value(), 5);
  auto fetched = restarted.Fetch({"orders", 0}, 0, 100);
  ASSERT_TRUE(fetched.ok());
  ASSERT_EQ(fetched.value().size(), 5u);
  for (size_t i = 0; i < fetched.value().size(); ++i) {
    const auto& im = fetched.value()[i];
    EXPECT_EQ(im.offset, static_cast<int64_t>(i));
    EXPECT_EQ(FromBytes(im.message.key), "k" + std::to_string(2 * i));
    EXPECT_EQ(FromBytes(im.message.value), "v" + std::to_string(2 * i));
  }
  // The recovered log keeps accepting appends at the right offset.
  EXPECT_EQ(restarted.Append({"orders", 0}, Msg("k", "v")).value(), 5);
}

TEST(DurableBrokerTest, EnableDurabilityIsIdempotentAndRejectsSecondDir) {
  std::string dir = TestDir();
  Broker broker;
  ASSERT_TRUE(broker.EnableDurability(DurableAt(dir + "/a")).ok());
  EXPECT_TRUE(broker.EnableDurability(DurableAt(dir + "/a")).ok());  // same dir
  EXPECT_FALSE(broker.EnableDurability(DurableAt(dir + "/b")).ok());
  // enabled=false is always a no-op.
  EXPECT_TRUE(broker.EnableDurability(DurableLogOptions{}).ok());
  // Durable without a directory is a config error surfaced by FromConfig,
  // and EnableDurability itself also refuses it.
  DurableLogOptions no_dir;
  no_dir.enabled = true;
  EXPECT_FALSE(broker.EnableDurability(no_dir).ok());
}

TEST(DurableBrokerTest, HeapStateBootstrapsToDiskWhenDurabilityTurnsOn) {
  std::string dir = TestDir();
  {
    Broker broker;
    ASSERT_TRUE(broker.CreateTopic("pre", {.num_partitions = 1}).ok());
    for (int i = 0; i < 4; ++i) {
      ASSERT_TRUE(broker.Append({"pre", 0}, Msg("k", "v" + std::to_string(i))).ok());
    }
    // Durability turned on mid-life: existing heap contents must reach disk.
    ASSERT_TRUE(broker.EnableDurability(DurableAt(dir)).ok());
    ASSERT_TRUE(broker.Append({"pre", 0}, Msg("k", "v4")).ok());
  }
  Broker restarted;
  ASSERT_TRUE(restarted.EnableDurability(DurableAt(dir)).ok());
  auto fetched = restarted.Fetch({"pre", 0}, 0, 100);
  ASSERT_TRUE(fetched.ok());
  ASSERT_EQ(fetched.value().size(), 5u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(FromBytes(fetched.value()[i].message.value), "v" + std::to_string(i));
  }
}

TEST(DurableBrokerTest, RetentionAndCompactionRewritesSurviveRestart) {
  std::string dir = TestDir();
  {
    Broker broker;
    ASSERT_TRUE(broker.EnableDurability(DurableAt(dir)).ok());
    ASSERT_TRUE(broker
                    .CreateTopic("r", {.num_partitions = 1, .retention_messages = 3})
                    .ok());
    ASSERT_TRUE(broker.CreateTopic("c", {.num_partitions = 1, .compacted = true}).ok());
    for (int i = 0; i < 10; ++i) {
      ASSERT_TRUE(broker.Append({"r", 0}, Msg("k", "v" + std::to_string(i))).ok());
      ASSERT_TRUE(broker
                      .Append({"c", 0}, Msg("key" + std::to_string(i % 2),
                                            "val" + std::to_string(i)))
                      .ok());
    }
    ASSERT_TRUE(broker.EnforceRetention("r").ok());
    ASSERT_TRUE(broker.Compact("c").ok());
  }

  Broker restarted;
  ASSERT_TRUE(restarted.EnableDurability(DurableAt(dir)).ok());
  // Retention: offsets 7..9 survive, and the log-start offset itself was
  // carried through the rewrite (segment base name).
  EXPECT_EQ(restarted.BeginOffset({"r", 0}).value(), 7);
  EXPECT_EQ(restarted.EndOffset({"r", 0}).value(), 10);
  auto r = restarted.Fetch({"r", 0}, 7, 10);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r.value().size(), 3u);
  EXPECT_EQ(FromBytes(r.value()[0].message.value), "v7");
  // Compaction: newest value per key only.
  auto c = restarted.Fetch({"c", 0}, restarted.BeginOffset({"c", 0}).value(), 10);
  ASSERT_TRUE(c.ok());
  ASSERT_EQ(c.value().size(), 2u);
  EXPECT_EQ(FromBytes(c.value()[0].message.value), "val8");
  EXPECT_EQ(FromBytes(c.value()[1].message.value), "val9");
}

// The duplicate-trailing-record case: a producer's append lands durably, the
// process dies before the ack, and the restarted producer retries the same
// sequence. The rebuilt dedup state must ack it at the original offset
// instead of appending a duplicate.
TEST(DurableBrokerTest, ProducerDedupStateSurvivesColdRestart) {
  std::string dir = TestDir();
  uint64_t pid = 0;
  {
    Broker broker;
    ASSERT_TRUE(broker.EnableDurability(DurableAt(dir)).ok());
    ASSERT_TRUE(broker.CreateTopic("t", {.num_partitions = 1}).ok());
    auto identity = broker.RegisterProducer("task-0");
    ASSERT_TRUE(identity.ok());
    pid = identity.value().pid;
    for (int i = 0; i < 3; ++i) {
      Message m = Msg("k", "v" + std::to_string(i));
      m.producer_id = pid;
      m.producer_epoch = identity.value().epoch;
      m.sequence = i;
      ASSERT_TRUE(broker.Append({"t", 0}, std::move(m)).ok());
    }
  }

  Broker restarted;
  ASSERT_TRUE(restarted.EnableDurability(DurableAt(dir)).ok());
  // Same name: same pid, bumped epoch — identity survived via the meta log.
  auto identity = restarted.RegisterProducer("task-0");
  ASSERT_TRUE(identity.ok());
  EXPECT_EQ(identity.value().pid, pid);
  EXPECT_GE(identity.value().epoch, 1);

  // Retry of the last pre-crash sequence: deduped, acked at offset 2.
  Message dup = Msg("k", "v2");
  dup.producer_id = pid;
  dup.producer_epoch = identity.value().epoch;
  dup.sequence = 2;
  auto acked = restarted.Append({"t", 0}, std::move(dup));
  ASSERT_TRUE(acked.ok());
  EXPECT_EQ(acked.value(), 2);
  EXPECT_EQ(restarted.EndOffset({"t", 0}).value(), 3);
  EXPECT_GE(restarted.dups_dropped(), 1);

  // The next fresh sequence appends normally.
  Message next = Msg("k", "v3");
  next.producer_id = pid;
  next.producer_epoch = identity.value().epoch;
  next.sequence = 3;
  EXPECT_EQ(restarted.Append({"t", 0}, std::move(next)).value(), 3);
}

// A checkpoint-topic append is a commit barrier: everything dirty in the
// broker's durable log must hit stable storage before (and with) it. With
// log.fsync=never nothing syncs on its own, so observing the fault
// factory's unsynced-byte gauge around the barrier proves the ordering.
TEST(DurableBrokerTest, FsyncBarrierTopicFlushesAllDirtyPartitions) {
  std::string dir = TestDir();
  auto fault = std::make_shared<io::FaultInjectingFileFactory>(io::FileFaultPolicy{});
  Broker broker;
  ASSERT_TRUE(
      broker.EnableDurability(DurableAt(dir, FsyncPolicy::kNever, fault)).ok());
  ASSERT_TRUE(broker.CreateTopic("data", {.num_partitions = 2}).ok());
  ASSERT_TRUE(
      broker.CreateTopic("__cp", {.num_partitions = 1, .fsync_barrier = true}).ok());

  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(broker.Append({"data", i % 2}, Msg("k", "v" + std::to_string(i))).ok());
  }
  EXPECT_GT(fault->total_unsynced_bytes(), 0);

  ASSERT_TRUE(broker.Append({"__cp", 0}, Msg("task", "offsets")).ok());
  // The barrier forced the data partitions AND its own record down.
  EXPECT_EQ(fault->total_unsynced_bytes(), 0);

  // SyncDurableLog alone gives the same guarantee (shutdown path).
  ASSERT_TRUE(broker.Append({"data", 0}, Msg("k", "tail")).ok());
  EXPECT_GT(fault->total_unsynced_bytes(), 0);
  ASSERT_TRUE(broker.SyncDurableLog().ok());
  EXPECT_EQ(fault->total_unsynced_bytes(), 0);
}

TEST(SegmentLogTest, FailedFsyncRollsTheFrameBackOff) {
  std::string dir = TestDir();
  auto fault = std::make_shared<io::FaultInjectingFileFactory>(io::FileFaultPolicy{});
  SegmentLogOptions o;
  o.factory = fault;
  o.fsync = FsyncPolicy::kAlways;
  {
    SegmentLog log(dir, o);
    std::vector<Bytes> payloads;
    ASSERT_TRUE(log.Open(&payloads, nullptr).ok());
    ASSERT_TRUE(log.Append(Payload("a"), 0).ok());
    // The frame write lands, the fsync fails: the append must fail AND cut
    // the frame back off, so the caller's retry is the only surviving copy.
    fault->FailNextFsyncs(1);
    EXPECT_FALSE(log.Append(Payload("b"), 1).ok());
    ASSERT_TRUE(log.Append(Payload("b"), 1).ok());
    // Same contract on the force_sync (checkpoint barrier) path.
    fault->FailNextFsyncs(1);
    EXPECT_FALSE(log.Append(Payload("c"), 2, /*force_sync=*/true).ok());
    ASSERT_TRUE(log.Append(Payload("c"), 2, /*force_sync=*/true).ok());
    ASSERT_TRUE(log.Close().ok());
  }
  SegmentLog reopened(dir, o);
  std::vector<Bytes> payloads;
  ASSERT_TRUE(reopened.Open(&payloads, nullptr).ok());
  ASSERT_EQ(payloads.size(), 3u);
  EXPECT_EQ(FromBytes(payloads[0]), "a");
  EXPECT_EQ(FromBytes(payloads[1]), "b");
  EXPECT_EQ(FromBytes(payloads[2]), "c");
  ASSERT_TRUE(reopened.Close().ok());
}

// ---------------------------------------------------------------------------
// DurablePartitionLog: duplicate-offset tolerance at recovery
// ---------------------------------------------------------------------------

TEST(DurablePartitionLogTest, DuplicateTrailingOffsetCollapsesKeepLast) {
  std::string dir = TestDir();
  SegmentLogOptions o;
  {
    // Hand-build the poisoned image: the first offset-1 frame survived a
    // failed fsync whose rollback truncation also failed, and the producer's
    // retry appended the offset again.
    SegmentLog raw(dir, o);
    std::vector<Bytes> payloads;
    ASSERT_TRUE(raw.Open(&payloads, nullptr).ok());
    ASSERT_TRUE(raw.Append(EncodeLogRecord(0, Msg("k", "v0")), 0).ok());
    ASSERT_TRUE(raw.Append(EncodeLogRecord(1, Msg("k", "stale")), 1).ok());
    ASSERT_TRUE(raw.Append(EncodeLogRecord(1, Msg("k", "v1")), 1).ok());
    ASSERT_TRUE(raw.Append(EncodeLogRecord(2, Msg("k", "v2")), 2).ok());
    ASSERT_TRUE(raw.Close().ok());
  }
  DurablePartitionLog log(dir, o);
  std::vector<std::pair<int64_t, Message>> records;
  int64_t base = -1;
  SegmentRecovery recovery;
  ASSERT_TRUE(log.Open(&records, &base, &recovery).ok());
  EXPECT_EQ(recovery.duplicate_records, 1);
  ASSERT_EQ(records.size(), 3u);
  for (int64_t i = 0; i < 3; ++i) EXPECT_EQ(records[static_cast<size_t>(i)].first, i);
  EXPECT_EQ(FromBytes(records[1].second.value), "v1");  // keep-last
  ASSERT_TRUE(log.Close().ok());
}

TEST(DurablePartitionLogTest, OffsetGapStillFailsRecovery) {
  std::string dir = TestDir();
  SegmentLogOptions o;
  {
    SegmentLog raw(dir, o);
    std::vector<Bytes> payloads;
    ASSERT_TRUE(raw.Open(&payloads, nullptr).ok());
    ASSERT_TRUE(raw.Append(EncodeLogRecord(0, Msg("k", "v0")), 0).ok());
    ASSERT_TRUE(raw.Append(EncodeLogRecord(2, Msg("k", "v2")), 2).ok());
    ASSERT_TRUE(raw.Close().ok());
  }
  DurablePartitionLog log(dir, o);
  std::vector<std::pair<int64_t, Message>> records;
  int64_t base = -1;
  EXPECT_FALSE(log.Open(&records, &base, nullptr).ok());
}

// A failed fsync on the broker's exactly-once-adjacent append path: the
// producer retries, the retry must land at the same offset exactly once, and
// the cold restart must not see an offset discontinuity (the pre-fix failure
// mode permanently poisoned the partition).
TEST(DurableBrokerTest, FailedFsyncThenRetryDoesNotPoisonRecovery) {
  std::string dir = TestDir();
  auto fault = std::make_shared<io::FaultInjectingFileFactory>(io::FileFaultPolicy{});
  {
    Broker broker;
    ASSERT_TRUE(
        broker.EnableDurability(DurableAt(dir, FsyncPolicy::kAlways, fault)).ok());
    ASSERT_TRUE(broker.CreateTopic("t", {.num_partitions = 1}).ok());
    ASSERT_EQ(broker.Append({"t", 0}, Msg("k", "v0")).value(), 0);
    fault->FailNextFsyncs(1);
    EXPECT_FALSE(broker.Append({"t", 0}, Msg("k", "v1")).ok());
    EXPECT_EQ(broker.EndOffset({"t", 0}).value(), 1);  // heap never advanced
    ASSERT_EQ(broker.Append({"t", 0}, Msg("k", "v1")).value(), 1);
    ASSERT_EQ(broker.Append({"t", 0}, Msg("k", "v2")).value(), 2);
  }
  Broker restarted;
  ASSERT_TRUE(restarted.EnableDurability(DurableAt(dir)).ok());
  EXPECT_EQ(restarted.BeginOffset({"t", 0}).value(), 0);
  EXPECT_EQ(restarted.EndOffset({"t", 0}).value(), 3);
  auto fetched = restarted.Fetch({"t", 0}, 0, 10);
  ASSERT_TRUE(fetched.ok());
  ASSERT_EQ(fetched.value().size(), 3u);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(FromBytes(fetched.value()[i].message.value), "v" + std::to_string(i));
  }
}

// Reserved / path-hostile topic names must stay ordinary topics: "." and
// ".." previously mapped to path components (DeleteTopic("..") removed
// log.dir's parent wholesale) and "__meta" clobbered the meta-log segments.
TEST(DurableBrokerTest, ReservedTopicNamesCannotEscapeOrClobberMeta) {
  std::string root = TestDir();
  const std::string dir = root + "/data";
  { std::ofstream(root + "/sentinel") << "keep"; }
  {
    Broker broker;
    ASSERT_TRUE(broker.EnableDurability(DurableAt(dir)).ok());
    ASSERT_TRUE(broker.CreateTopic("normal", {.num_partitions = 1}).ok());
    ASSERT_TRUE(broker.Append({"normal", 0}, Msg("k", "v")).ok());
    for (const std::string name : {"..", ".", "__meta"}) {
      ASSERT_TRUE(broker.CreateTopic(name, {.num_partitions = 1}).ok()) << name;
      ASSERT_TRUE(broker.Append({name, 0}, Msg("k", "payload-" + name)).ok())
          << name;
    }
    ASSERT_TRUE(broker.DeleteTopic("..").ok());
  }
  // Nothing outside log.dir was touched, and the real meta dir is intact.
  EXPECT_TRUE(std::filesystem::exists(root + "/sentinel"));
  EXPECT_TRUE(std::filesystem::exists(dir + "/__meta/topics"));

  Broker restarted;
  ASSERT_TRUE(restarted.EnableDurability(DurableAt(dir)).ok());
  EXPECT_TRUE(restarted.HasTopic("normal"));
  EXPECT_TRUE(restarted.HasTopic("."));
  EXPECT_TRUE(restarted.HasTopic("__meta"));
  EXPECT_FALSE(restarted.HasTopic(".."));  // the delete survived, nothing else
  auto meta_topic = restarted.Fetch({"__meta", 0}, 0, 10);
  ASSERT_TRUE(meta_topic.ok());
  ASSERT_EQ(meta_topic.value().size(), 1u);
  EXPECT_EQ(FromBytes(meta_topic.value()[0].message.value), "payload-__meta");
  auto normal = restarted.Fetch({"normal", 0}, 0, 10);
  ASSERT_TRUE(normal.ok());
  ASSERT_EQ(normal.value().size(), 1u);
  EXPECT_EQ(FromBytes(normal.value()[0].message.value), "v");
}

// Forwards everything to the real filesystem but refuses to create
// directories whose path contains `needle` — fails topic-partition wiring
// after the topic-create meta record is already durable.
class FailDirFactory : public io::FileFactory {
 public:
  explicit FailDirFactory(std::string needle)
      : inner_(io::PosixFileFactory::Instance()), needle_(std::move(needle)) {}

  Result<io::LogFilePtr> OpenAppend(const std::string& path) override {
    return inner_->OpenAppend(path);
  }
  Result<Bytes> ReadFile(const std::string& path) override {
    return inner_->ReadFile(path);
  }
  Status CreateDirs(const std::string& path) override {
    if (path.find(needle_) != std::string::npos) {
      return Status::Unavailable("injected CreateDirs failure: " + path);
    }
    return inner_->CreateDirs(path);
  }
  Result<std::vector<std::string>> ListDir(const std::string& path) override {
    return inner_->ListDir(path);
  }
  Result<std::vector<std::string>> ListSubdirs(const std::string& path) override {
    return inner_->ListSubdirs(path);
  }
  Status RemoveFile(const std::string& path) override {
    return inner_->RemoveFile(path);
  }
  Status Rename(const std::string& from, const std::string& to) override {
    return inner_->Rename(from, to);
  }
  Status RemoveAllUnder(const std::string& path) override {
    return inner_->RemoveAllUnder(path);
  }
  bool Exists(const std::string& path) override { return inner_->Exists(path); }
  Status SyncDir(const std::string& path) override {
    return inner_->SyncDir(path);
  }

 private:
  io::FileFactoryPtr inner_;
  std::string needle_;
};

// A topic create whose disk bootstrap fails after the create record reached
// the meta log must leave a tombstone behind: the caller was told the create
// failed, so a restart must not resurrect the topic.
TEST(DurableBrokerTest, FailedTopicCreateIsTombstonedNotResurrected) {
  std::string dir = TestDir();
  {
    Broker broker;
    ASSERT_TRUE(broker
                    .EnableDurability(DurableAt(
                        dir, FsyncPolicy::kAlways,
                        std::make_shared<FailDirFactory>("/t_doomed")))
                    .ok());
    ASSERT_TRUE(broker.CreateTopic("ok", {.num_partitions = 1}).ok());
    EXPECT_FALSE(broker.CreateTopic("doomed", {.num_partitions = 1}).ok());
    EXPECT_FALSE(broker.HasTopic("doomed"));
  }
  Broker restarted;
  ASSERT_TRUE(restarted.EnableDurability(DurableAt(dir)).ok());
  EXPECT_TRUE(restarted.HasTopic("ok"));
  EXPECT_FALSE(restarted.HasTopic("doomed"));
  // The name is free for reuse once the fault is gone.
  EXPECT_TRUE(restarted.CreateTopic("doomed", {.num_partitions = 1}).ok());
}

TEST(DurableBrokerTest, DurableOffKeepsHeapOnlyBehavior) {
  std::string dir = TestDir();
  Broker broker;
  EXPECT_FALSE(broker.durable());
  ASSERT_TRUE(broker.CreateTopic("t", {.num_partitions = 1}).ok());
  ASSERT_TRUE(broker.Append({"t", 0}, Msg("k", "v")).ok());
  ASSERT_TRUE(broker.SyncDurableLog().ok());  // no-op, not an error
  // Nothing was written anywhere near the (never-registered) directory.
  EXPECT_FALSE(std::filesystem::exists(dir + "/t"));
}

}  // namespace
}  // namespace sqs
