// Unit tests for the metrics layer: log-bucketed histograms, scoped
// registries, snapshot/merge semantics, and the periodic reporter.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "common/metrics.h"
#include "common/metrics_reporter.h"

namespace sqs {
namespace {

// ---------------------------------------------------------------------------
// Histogram bucketing

TEST(HistogramTest, SmallValuesAreExact) {
  Histogram h;
  for (int64_t v = 0; v < 16; ++v) h.Record(v);
  EXPECT_EQ(h.Count(), 16);
  EXPECT_EQ(h.Min(), 0);
  EXPECT_EQ(h.Max(), 15);
  EXPECT_EQ(h.Sum(), 120);
  // Values below 2^kSubBucketBits land in their own bucket, so every
  // percentile of a single recorded value is that value exactly.
  Histogram single;
  single.Record(7);
  EXPECT_EQ(single.Percentile(50), 7);
  EXPECT_EQ(single.Percentile(99), 7);
}

TEST(HistogramTest, BucketIndexMonotoneAndBoundsConsistent) {
  int last = -1;
  for (int64_t v : std::vector<int64_t>{0, 1, 15, 16, 17, 31, 32, 100, 1000,
                                        1'000'000, 1'000'000'000, INT64_MAX / 2}) {
    int idx = Histogram::BucketIndex(v);
    EXPECT_GE(idx, last) << "bucket index must be monotone in value, v=" << v;
    last = idx;
    EXPECT_LE(Histogram::BucketLowerBound(idx), v)
        << "lower bound exceeds value for v=" << v;
    if (idx + 1 < Histogram::kNumBuckets) {
      EXPECT_GT(Histogram::BucketLowerBound(idx + 1), v)
          << "value should not reach the next bucket, v=" << v;
    }
  }
}

TEST(HistogramTest, RelativeErrorBoundedByBucketWidth) {
  // With 16 sub-buckets per power of two, the bucket midpoint is within
  // ~1/16 (6.25%) of any value in the bucket; allow 7% slack.
  Histogram h;
  const int64_t value = 123'456'789;
  h.Record(value);
  int64_t p50 = h.Percentile(50);
  double rel = std::abs(static_cast<double>(p50 - value)) / value;
  EXPECT_LT(rel, 0.07);
}

TEST(HistogramTest, PercentilesOrderedAndClamped) {
  Histogram h;
  for (int64_t v = 1; v <= 1000; ++v) h.Record(v * 1000);
  HistogramStats s = h.GetStats();
  EXPECT_EQ(s.count, 1000);
  EXPECT_EQ(s.min, 1000);
  EXPECT_EQ(s.max, 1'000'000);
  EXPECT_LE(s.p50, s.p95);
  EXPECT_LE(s.p95, s.p99);
  EXPECT_GE(s.p50, s.min);
  EXPECT_LE(s.p99, s.max);
  // p50 of a uniform 1k..1M spread is near 500k; bucket error is <7%.
  EXPECT_GT(s.p50, 450'000);
  EXPECT_LT(s.p50, 550'000);
  h.Reset();
  EXPECT_EQ(h.Count(), 0);
  EXPECT_EQ(h.GetStats().p99, 0);
}

TEST(HistogramTest, ConcurrentRecordLosesNothing) {
  Histogram h;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 50'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      for (int i = 0; i < kPerThread; ++i) h.Record((t + 1) * 100 + i % 16);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(h.Count(), static_cast<int64_t>(kThreads) * kPerThread);
  EXPECT_EQ(h.Min(), 100);
  EXPECT_EQ(h.Max(), 415);
}

// ---------------------------------------------------------------------------
// Registry + scopes

TEST(MetricsRegistryTest, SnapshotCoversAllFamilies) {
  MetricsRegistry registry;
  registry.GetCounter("c").Inc(3);
  registry.GetGauge("g").Set(-7);
  registry.GetTimer("t").Add(1000);
  registry.GetHistogram("h").Record(42);
  MetricsSnapshot snap = registry.Snapshot();
  EXPECT_EQ(snap.counters.at("c"), 3);
  EXPECT_EQ(snap.gauges.at("g"), -7);
  EXPECT_EQ(snap.timers.at("t"), 1000);
  EXPECT_EQ(snap.histograms.at("h").count, 1);
  EXPECT_FALSE(snap.empty());
  EXPECT_TRUE(MetricsSnapshot{}.empty());
}

TEST(MetricsRegistryTest, SameNameReturnsSameInstrument) {
  MetricsRegistry registry;
  EXPECT_EQ(&registry.GetCounter("x"), &registry.GetCounter("x"));
  EXPECT_EQ(&registry.GetHistogram("x"), &registry.GetHistogram("x"));
}

TEST(ScopedMetricsTest, SubBuildsDottedScopesAndSanitizes) {
  EXPECT_EQ(ScopedMetrics::Sanitize("Partition 0"), "Partition_0");
  EXPECT_EQ(ScopedMetrics::Sanitize("a.b c"), "a_b_c");
  MetricsRegistry registry;
  ScopedMetrics scope(&registry, "my job");
  scope.Sub("Partition 0").Sub("filter").counter("processed").Inc();
  MetricsSnapshot snap = registry.Snapshot();
  EXPECT_EQ(snap.counters.at("my_job.Partition_0.filter.processed"), 1);
}

TEST(ScopedMetricsTest, DefaultConstructedIsUnbound) {
  ScopedMetrics scope;
  EXPECT_FALSE(scope.bound());
}

// ---------------------------------------------------------------------------
// Merge + rendering

TEST(MergeSnapshotsTest, CountersSumGaugesLastWinHistogramsKeepLarger) {
  MetricsRegistry a, b;
  a.GetCounter("c").Inc(2);
  b.GetCounter("c").Inc(5);
  a.GetGauge("g").Set(1);
  b.GetGauge("g").Set(9);
  a.GetTimer("t").Add(10);
  b.GetTimer("t").Add(20);
  a.GetHistogram("h").Record(1);
  b.GetHistogram("h").Record(1);
  b.GetHistogram("h").Record(2);
  MetricsSnapshot merged = MergeSnapshots({a.Snapshot(), b.Snapshot()});
  EXPECT_EQ(merged.counters.at("c"), 7);
  EXPECT_EQ(merged.gauges.at("g"), 9);
  EXPECT_EQ(merged.timers.at("t"), 30);
  EXPECT_EQ(merged.histograms.at("h").count, 2);  // larger-count snapshot wins
}

TEST(RenderTest, JsonLinesOneObjectPerMetric) {
  MetricsRegistry registry;
  registry.GetCounter("job.t.op.processed").Inc(12);
  registry.GetGauge("job.t.op.watermark_ms").Set(5000);
  registry.GetHistogram("job.t.op.latency_ns").Record(1000);
  std::string lines = SnapshotToJsonLines(registry.Snapshot(), 1234);
  std::istringstream in(lines);
  std::string line;
  int n = 0;
  while (std::getline(in, line)) {
    ++n;
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    EXPECT_NE(line.find("\"ts_ms\":1234"), std::string::npos);
  }
  EXPECT_EQ(n, 3);
  EXPECT_NE(lines.find("\"name\":\"job.t.op.processed\",\"type\":\"counter\",\"value\":12"),
            std::string::npos);
  EXPECT_NE(lines.find("\"type\":\"histogram\""), std::string::npos);
  EXPECT_NE(lines.find("\"p99\":"), std::string::npos);
}

TEST(RenderTest, TableListsEveryMetricSorted) {
  MetricsRegistry registry;
  registry.GetCounter("b.counter").Inc(1);
  registry.GetGauge("a.gauge").Set(2);
  registry.GetHistogram("c.hist").Record(3);
  std::string table = SnapshotToTable(registry.Snapshot());
  size_t pa = table.find("a.gauge");
  size_t pb = table.find("b.counter");
  size_t pc = table.find("c.hist");
  ASSERT_NE(pa, std::string::npos);
  ASSERT_NE(pb, std::string::npos);
  ASSERT_NE(pc, std::string::npos);
  EXPECT_LT(pa, pb);
  EXPECT_LT(pb, pc);
  EXPECT_NE(table.find("3 metric(s)"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Reporter

TEST(MetricsReporterTest, ReportsOnlyAfterIntervalElapses) {
  auto registry = std::make_shared<MetricsRegistry>();
  registry->GetCounter("job.c").Inc(1);
  auto clock = std::make_shared<ManualClock>(1000);
  std::ostringstream out;
  MetricsReporter reporter(registry, &out, /*interval_ms=*/100, clock);
  EXPECT_FALSE(reporter.MaybeReport());
  clock->Advance(99);
  EXPECT_FALSE(reporter.MaybeReport());
  clock->Advance(1);
  EXPECT_TRUE(reporter.MaybeReport());
  EXPECT_NE(out.str().find("\"name\":\"job.c\""), std::string::npos);
  // Interval restarts from the report.
  EXPECT_FALSE(reporter.MaybeReport());
  clock->Advance(100);
  EXPECT_TRUE(reporter.MaybeReport());
}

TEST(MetricsReporterTest, ReportNowIgnoresInterval) {
  auto registry = std::make_shared<MetricsRegistry>();
  registry->GetCounter("job.c").Inc(4);
  auto clock = std::make_shared<ManualClock>(0);
  std::ostringstream out;
  MetricsReporter reporter(registry, &out, /*interval_ms=*/1'000'000, clock);
  reporter.ReportNow();
  EXPECT_NE(out.str().find("\"value\":4"), std::string::npos);
}

TEST(MetricsReporterTest, FileBackedReporterRotatesAtMaxBytes) {
  std::string dir = ::testing::TempDir();
  std::string path = dir + "/reporter_rotation.jsonl";
  std::remove(path.c_str());
  std::remove((path + ".1").c_str());

  auto registry = std::make_shared<MetricsRegistry>();
  registry->GetCounter("job.container0.processed").Inc(1);
  auto clock = std::make_shared<ManualClock>(0);
  int64_t report_bytes =
      static_cast<int64_t>(SnapshotToJsonLines(registry->Snapshot(), 0).size());
  // Cap below two reports: the second report must roll the file.
  MetricsReporter reporter(registry, path, /*interval_ms=*/1,
                           /*max_bytes=*/report_bytes + report_bytes / 2, clock);
  reporter.ReportNow();
  EXPECT_EQ(reporter.bytes_written(), report_bytes);
  EXPECT_FALSE(std::ifstream(path + ".1").good());

  reporter.ReportNow();
  // The first report moved to <path>.1; the active file holds only the second.
  EXPECT_EQ(reporter.bytes_written(), report_bytes);
  std::ifstream rolled(path + ".1", std::ios::binary | std::ios::ate);
  ASSERT_TRUE(rolled.good());
  EXPECT_EQ(static_cast<int64_t>(rolled.tellg()), report_bytes);
  std::ifstream active(path, std::ios::binary | std::ios::ate);
  ASSERT_TRUE(active.good());
  EXPECT_EQ(static_cast<int64_t>(active.tellg()), report_bytes);

  // A third report replaces the previous roll instead of accumulating files.
  reporter.ReportNow();
  std::ifstream rolled2(path + ".1", std::ios::binary | std::ios::ate);
  EXPECT_EQ(static_cast<int64_t>(rolled2.tellg()), report_bytes);
}

TEST(MetricsReporterTest, FileBackedReporterResumesExistingFileSize) {
  std::string dir = ::testing::TempDir();
  std::string path = dir + "/reporter_resume.jsonl";
  {
    std::ofstream seed(path, std::ios::trunc);
    seed << "previous run\n";
  }
  auto registry = std::make_shared<MetricsRegistry>();
  auto clock = std::make_shared<ManualClock>(0);
  MetricsReporter reporter(registry, path, /*interval_ms=*/1, /*max_bytes=*/0,
                           clock);
  // Rotation accounting starts from the pre-existing size, and max_bytes=0
  // disables rotation entirely.
  EXPECT_EQ(reporter.bytes_written(), 13);
  reporter.ReportNow();
  EXPECT_FALSE(std::ifstream(path + ".1").good());
}

TEST(RenderTest, TableHistogramRowShowsMinAndMax) {
  MetricsRegistry registry;
  Histogram& h = registry.GetHistogram("job.latency_ns");
  h.Record(3);
  h.Record(900);
  std::string table = SnapshotToTable(registry.Snapshot());
  EXPECT_NE(table.find("min=3"), std::string::npos) << table;
  EXPECT_NE(table.find("max=900"), std::string::npos) << table;
}

TEST(HistogramTest, EmptyStatsAreAllZero) {
  Histogram h;
  HistogramStats s = h.GetStats();
  EXPECT_EQ(s.count, 0);
  EXPECT_EQ(s.sum, 0);
  EXPECT_EQ(s.min, 0);
  EXPECT_EQ(s.max, 0);
  EXPECT_EQ(s.p50, 0);
  EXPECT_EQ(s.p99, 0);
  EXPECT_TRUE(s.buckets.empty());
  EXPECT_EQ(h.Min(), 0);
  EXPECT_EQ(h.Max(), 0);
  EXPECT_EQ(h.Percentile(99), 0);
}

TEST(HistogramTest, StatsIncludeMinMaxAndOccupiedBuckets) {
  Histogram h;
  for (int64_t v : {2, 2, 50, 7000}) h.Record(v);
  HistogramStats s = h.GetStats();
  EXPECT_EQ(s.min, 2);
  EXPECT_EQ(s.max, 7000);
  // Three distinct buckets (2, ~50, ~7000), cumulative counts ending at 4.
  ASSERT_EQ(s.buckets.size(), 3u);
  EXPECT_EQ(s.buckets[0].second, 2);
  EXPECT_EQ(s.buckets.back().second, 4);
  for (const auto& [le, cumulative] : s.buckets) {
    (void)cumulative;
    EXPECT_GE(le, 0);
  }
  // Every recorded value is covered by a bucket whose bound is >= it.
  EXPECT_GE(s.buckets.back().first, 7000);
}

}  // namespace
}  // namespace sqs
