// Crash-recovery and fault-injection tests (docs/FAULT_TOLERANCE.md):
//  - FaultInjectingBroker: seeded schedules, forced failures, blackouts;
//  - Retrier: only Unavailable retried, counters move, budgets respected;
//  - ChangelogBackedStore: append failure is a sticky health error (never an
//    exception) that blocks the commit, and Restore() clears it;
//  - CheckpointManager: restore is one pass over checkpoint history per
//    container, not one per task;
//  - task.error.policy: poison messages fail / skip / dead-letter;
//  - container supervisor: killed or crashed containers restart through the
//    full recovery path and the job's output still matches the oracle;
//  - recovery_soak: seeded random fault storms over a windowed query
//    (run with `ctest -R recovery_soak`).
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "core/executor.h"
#include "kv/changelog.h"
#include "kv/store.h"
#include "log/fault_broker.h"
#include "task/checkpoint.h"
#include "workload/generators.h"

namespace sqs::core {
namespace {

constexpr int32_t kPartitions = 4;

// The windowed-aggregation pair used throughout: streaming job vs. batch
// oracle. Window outputs are idempotent by (window start, productId), so
// at-least-once replays dedup to exactly the oracle rows.
constexpr const char* kTumblingStream =
    "SELECT STREAM productId, START(rowtime) AS ws, COUNT(*) AS c, SUM(units) AS su "
    "FROM Orders GROUP BY TUMBLE(rowtime, INTERVAL '10' SECOND), productId";
constexpr const char* kTumblingBatch =
    "SELECT productId, START(rowtime) AS ws, COUNT(*) AS c, SUM(units) AS su "
    "FROM Orders GROUP BY TUMBLE(rowtime, INTERVAL '10' SECOND), productId";

Message Msg(const std::string& key, const std::string& value) {
  Message m;
  m.key = ToBytes(key);
  m.value = ToBytes(value);
  return m;
}

// ---------------------------------------------------------------------------
// FaultInjectingBroker unit tests
// ---------------------------------------------------------------------------

TEST(FaultBrokerTest, SeededScheduleIsDeterministic) {
  auto make = [](uint64_t seed) {
    auto inner = std::make_shared<Broker>();
    EXPECT_TRUE(inner->CreateTopic("t", {.num_partitions = 1}).ok());
    FaultPolicy policy;
    policy.seed = seed;
    policy.append_fail_rate = 0.5;
    return std::make_shared<FaultInjectingBroker>(inner, policy);
  };
  auto pattern = [](FaultInjectingBroker& b) {
    std::string p;
    for (int i = 0; i < 200; ++i) {
      p += b.Append({"t", 0}, Msg("k", "v")).ok() ? '.' : 'X';
    }
    return p;
  };
  auto a = make(7);
  auto b = make(7);
  auto c = make(8);
  std::string pa = pattern(*a);
  EXPECT_EQ(pa, pattern(*b));     // same seed: identical failure schedule
  EXPECT_NE(pa, pattern(*c));     // different seed: different schedule
  EXPECT_NE(pa.find('.'), std::string::npos);
  EXPECT_NE(pa.find('X'), std::string::npos);
  EXPECT_GT(a->injected_append_failures(), 0);
}

TEST(FaultBrokerTest, ForcedFailuresBlackoutsAndMetadataPassThrough) {
  auto inner = std::make_shared<Broker>();
  ASSERT_TRUE(inner->CreateTopic("t", {.num_partitions = 2}).ok());
  FaultInjectingBroker fb(inner, FaultPolicy{});  // no random faults

  ASSERT_TRUE(fb.Append({"t", 0}, Msg("k", "v")).ok());

  fb.FailNextAppends(2);
  auto a1 = fb.Append({"t", 0}, Msg("k", "v"));
  auto a2 = fb.Append({"t", 0}, Msg("k", "v"));
  ASSERT_FALSE(a1.ok());
  EXPECT_EQ(a1.status().code(), ErrorCode::kUnavailable);
  EXPECT_FALSE(a2.ok());
  EXPECT_TRUE(fb.Append({"t", 0}, Msg("k", "v")).ok());  // tokens spent

  fb.FailNextFetches(1);
  auto f1 = fb.Fetch({"t", 0}, 0, 10);
  ASSERT_FALSE(f1.ok());
  EXPECT_EQ(f1.status().code(), ErrorCode::kUnavailable);
  EXPECT_TRUE(fb.Fetch({"t", 0}, 0, 10).ok());

  // Blackout fails one partition's data path; metadata and the other
  // partition keep working; Heal restores it.
  fb.BlackoutPartition({"t", 1});
  EXPECT_FALSE(fb.Append({"t", 1}, Msg("k", "v")).ok());
  EXPECT_FALSE(fb.Fetch({"t", 1}, 0, 10).ok());
  EXPECT_TRUE(fb.EndOffset({"t", 1}).ok());
  EXPECT_TRUE(fb.Append({"t", 0}, Msg("k", "v")).ok());
  fb.Heal({"t", 1});
  EXPECT_TRUE(fb.Append({"t", 1}, Msg("k", "v")).ok());

  EXPECT_EQ(fb.injected_append_failures(), 3);
  EXPECT_EQ(fb.injected_fetch_failures(), 2);
  EXPECT_GT(fb.AppendCount("t"), 0);
  EXPECT_GT(fb.FetchCount("t"), 0);
}

// ---------------------------------------------------------------------------
// Retrier unit tests
// ---------------------------------------------------------------------------

TEST(RetrierTest, RetriesOnlyUnavailableAndCountsOutcomes) {
  MetricsRegistry registry;
  Counter& retries = ScopedMetrics(&registry, "t").counter("retries");
  Counter& giveups = ScopedMetrics(&registry, "t").counter("giveups");
  Retrier retrier(RetryPolicy{.max_attempts = 5, .backoff_ms = 1, .backoff_max_ms = 2});
  retrier.BindMetrics(&retries, &giveups);

  // Transient failure: two Unavailable then success.
  int calls = 0;
  Status st = retrier.Run([&]() -> Status {
    return ++calls <= 2 ? Status::Unavailable("transient") : Status::Ok();
  });
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(retries.Get(), 2);
  EXPECT_EQ(giveups.Get(), 0);

  // Non-retryable code: surfaced immediately, no retries.
  calls = 0;
  st = retrier.Run([&]() -> Status {
    ++calls;
    return Status::InvalidArgument("poison");
  });
  EXPECT_EQ(st.code(), ErrorCode::kInvalidArgument);
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(retries.Get(), 2);

  // Budget exhaustion: max_attempts calls, then the error with a giveup.
  retrier.SetPolicy(RetryPolicy{.max_attempts = 3, .backoff_ms = 1, .backoff_max_ms = 1});
  calls = 0;
  st = retrier.Run([&]() -> Status {
    ++calls;
    return Status::Unavailable("permanent");
  });
  EXPECT_EQ(st.code(), ErrorCode::kUnavailable);
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(retries.Get(), 4);
  EXPECT_EQ(giveups.Get(), 1);
}

TEST(RetrierTest, ProducerSendSurvivesTransientAppendFailures) {
  auto inner = std::make_shared<Broker>();
  ASSERT_TRUE(inner->CreateTopic("t", {.num_partitions = 1}).ok());
  auto fb = std::make_shared<FaultInjectingBroker>(inner, FaultPolicy{});
  Producer producer(fb);
  producer.SetRetryPolicy(RetryPolicy{.max_attempts = 4, .backoff_ms = 1, .backoff_max_ms = 2});
  fb->FailNextAppends(2);
  ASSERT_TRUE(producer.Send("t", ToBytes("k"), ToBytes("v")).ok());
  EXPECT_EQ(inner->EndOffset({"t", 0}).value(), 1);
  EXPECT_EQ(fb->injected_append_failures(), 2);
}

// ---------------------------------------------------------------------------
// ChangelogBackedStore: sticky error instead of an exception
// ---------------------------------------------------------------------------

TEST(ChangelogStickyErrorTest, AppendFailureIsStickyAndRestoreClearsIt) {
  auto inner = std::make_shared<Broker>();
  ASSERT_TRUE(inner->CreateTopic("cl", {.num_partitions = 1}).ok());
  auto fb = std::make_shared<FaultInjectingBroker>(inner, FaultPolicy{});
  ChangelogBackedStore store(std::make_shared<InMemoryStore>(), fb, {"cl", 0});

  store.Put(ToBytes("a"), ToBytes("1"));
  ASSERT_TRUE(store.health().ok());

  // The failing Put must not throw, must not touch the backing store, and
  // must leave a sticky Unavailable health error.
  fb->FailNextAppends(1);
  store.Put(ToBytes("b"), ToBytes("2"));
  EXPECT_FALSE(store.health().ok());
  EXPECT_EQ(store.health().code(), ErrorCode::kUnavailable);
  EXPECT_FALSE(store.Get(ToBytes("b")).has_value());

  // While unhealthy, further writes are refused (no divergence).
  store.Put(ToBytes("c"), ToBytes("3"));
  store.Delete(ToBytes("a"));
  EXPECT_FALSE(store.Get(ToBytes("c")).has_value());
  EXPECT_EQ(inner->EndOffset({"cl", 0}).value(), 1);  // only "a" was logged

  // Restore replays the changelog and clears the sticky error.
  ASSERT_TRUE(store.Restore().ok());
  EXPECT_TRUE(store.health().ok());
  EXPECT_TRUE(store.Get(ToBytes("a")).has_value());
  store.Put(ToBytes("d"), ToBytes("4"));
  EXPECT_TRUE(store.health().ok());
  EXPECT_TRUE(store.Get(ToBytes("d")).has_value());
}

TEST(ChangelogStickyErrorTest, RetryPolicyAbsorbsTransientAppendFailures) {
  auto inner = std::make_shared<Broker>();
  ASSERT_TRUE(inner->CreateTopic("cl", {.num_partitions = 1}).ok());
  auto fb = std::make_shared<FaultInjectingBroker>(inner, FaultPolicy{});
  ChangelogBackedStore store(std::make_shared<InMemoryStore>(), fb, {"cl", 0});
  store.SetRetryPolicy(RetryPolicy{.max_attempts = 4, .backoff_ms = 1, .backoff_max_ms = 2});
  fb->FailNextAppends(2);
  store.Put(ToBytes("a"), ToBytes("1"));
  EXPECT_TRUE(store.health().ok());
  EXPECT_TRUE(store.Get(ToBytes("a")).has_value());
  EXPECT_EQ(inner->EndOffset({"cl", 0}).value(), 1);
}

// A store whose changelog append was lost must block the commit: the
// checkpoint may never advance past state that was not durably logged. With
// the supervisor on, the container crashes at the commit boundary, restarts,
// restores from the changelog, and replays — final state is complete.
TEST(ChangelogStickyErrorTest, UnhealthyStoreBlocksCommitAndSupervisorRecovers) {
  class RecoveryStatefulTask : public StreamTask {
   public:
    Status Init(TaskContext& ctx) override {
      store_ = ctx.GetStore("state");
      if (!store_) return Status::StateError("store 'state' not configured");
      return Status::Ok();
    }
    Status Process(const IncomingMessage& msg, MessageCollector&, TaskCoordinator&) override {
      std::string key =
          std::to_string(msg.origin.partition) + ":" + std::to_string(msg.offset);
      store_->Put(ToBytes(key), msg.message.value);
      return Status::Ok();
    }

   private:
    KeyValueStorePtr store_;
  };
  TaskFactoryRegistry::Instance().Register(
      "recovery-stateful", [] { return std::make_unique<RecoveryStatefulTask>(); });

  auto inner = std::make_shared<Broker>();
  ASSERT_TRUE(inner->CreateTopic("in", {.num_partitions = 2}).ok());
  FaultPolicy policy;
  policy.topics = {"state-cl-gate"};  // only the changelog misbehaves
  auto fb = std::make_shared<FaultInjectingBroker>(inner, policy);

  Producer p(fb);
  for (int i = 0; i < 80; ++i) {
    ASSERT_TRUE(p.Send("in", ToBytes("k" + std::to_string(i)),
                       ToBytes("m" + std::to_string(i)))
                    .ok());
  }

  Config c;
  c.Set(cfg::kJobName, "gate-job");
  c.Set(cfg::kTaskInputs, "in");
  c.Set(cfg::kTaskFactory, "recovery-stateful");
  c.Set("stores.state.changelog", "state-cl-gate");
  c.SetInt(cfg::kContainerCount, 1);
  c.SetInt(cfg::kCommitEveryMessages, 10);
  c.SetInt(cfg::kContainerRestartMax, 3);
  c.SetInt(cfg::kContainerRestartBackoffMs, 1);
  JobRunner runner(fb, c);
  ASSERT_TRUE(runner.Start().ok());

  fb->FailNextAppends(1);  // one changelog write is lost mid-batch
  auto ran = runner.RunUntilQuiescent();
  ASSERT_TRUE(ran.ok()) << ran.status().ToString();
  EXPECT_GE(runner.TotalRestarts(), 1);

  // Every input message is in the recovered state exactly once.
  size_t total = 0;
  for (int part = 0; part < 2; ++part) {
    ChangelogBackedStore verify(std::make_shared<InMemoryStore>(), inner,
                                {"state-cl-gate", part});
    ASSERT_TRUE(verify.Restore().ok());
    int64_t in_end = inner->EndOffset({"in", part}).value();
    EXPECT_EQ(verify.Size(), static_cast<size_t>(in_end));
    for (int64_t o = 0; o < in_end; ++o) {
      EXPECT_TRUE(verify
                      .Get(ToBytes(std::to_string(part) + ":" + std::to_string(o)))
                      .has_value());
    }
    total += verify.Size();
  }
  EXPECT_EQ(total, 80u);
}

// ---------------------------------------------------------------------------
// CheckpointManager: one scan per container, not per task
// ---------------------------------------------------------------------------

TEST(CheckpointScanTest, RestoreScansHistoryOncePerManagerNotPerTask) {
  auto inner = std::make_shared<Broker>();
  auto fb = std::make_shared<FaultInjectingBroker>(inner, FaultPolicy{});

  CheckpointManager writer(fb, "__cp_scan");
  ASSERT_TRUE(writer.Start().ok());
  for (int round = 0; round < 6; ++round) {
    for (int t = 0; t < 8; ++t) {
      ASSERT_TRUE(writer
                      .WriteCheckpoint("Partition " + std::to_string(t),
                                       {{{"in", t}, round}})
                      .ok());
    }
  }

  // A fresh manager models a restarted container restoring all 8 tasks.
  CheckpointManager reader(fb, "__cp_scan");
  ASSERT_TRUE(reader.Start().ok());
  int64_t before = fb->FetchCount("__cp_scan");
  for (int t = 0; t < 8; ++t) {
    auto cp = reader.ReadLastCheckpoint("Partition " + std::to_string(t));
    ASSERT_TRUE(cp.ok());
    EXPECT_EQ(cp.value().at({"in", t}), 5);  // latest round wins
  }
  // All 48 records fit one fetch batch: 8 task restores cost 1 fetch total.
  EXPECT_EQ(fb->FetchCount("__cp_scan") - before, 1);

  // Re-reads are cache hits; a manager's own write advances its frontier,
  // so reading it back refetches nothing.
  ASSERT_TRUE(reader.ReadLastCheckpoint("Partition 3").ok());
  ASSERT_TRUE(reader.WriteCheckpoint("Partition 0", {{{"in", 0}, 99}}).ok());
  auto cp = reader.ReadLastCheckpoint("Partition 0");
  ASSERT_TRUE(cp.ok());
  EXPECT_EQ(cp.value().at({"in", 0}), 99);
  EXPECT_EQ(fb->FetchCount("__cp_scan") - before, 1);
}

TEST(CheckpointScanTest, WritesAndRestoreRetryTransientFailures) {
  auto inner = std::make_shared<Broker>();
  auto fb = std::make_shared<FaultInjectingBroker>(inner, FaultPolicy{});
  CheckpointManager mgr(fb, "__cp_retry");
  mgr.SetRetryPolicy(RetryPolicy{.max_attempts = 4, .backoff_ms = 1, .backoff_max_ms = 2});
  ASSERT_TRUE(mgr.Start().ok());
  fb->FailNextAppends(2);
  ASSERT_TRUE(mgr.WriteCheckpoint("Partition 0", {{{"in", 0}, 7}}).ok());

  CheckpointManager reader(fb, "__cp_retry");
  reader.SetRetryPolicy(RetryPolicy{.max_attempts = 4, .backoff_ms = 1, .backoff_max_ms = 2});
  ASSERT_TRUE(reader.Start().ok());
  fb->FailNextFetches(2);
  auto cp = reader.ReadLastCheckpoint("Partition 0");
  ASSERT_TRUE(cp.ok()) << cp.status().ToString();
  EXPECT_EQ(cp.value().at({"in", 0}), 7);
}

// ---------------------------------------------------------------------------
// SQL-level fixture: windowed job + fault broker + supervisor
// ---------------------------------------------------------------------------

class RecoveryTest : public ::testing::Test {
 protected:
  void MakeEnv() {
    env_ = SamzaSqlEnvironment::Make();
    ASSERT_TRUE(workload::SetupPaperSources(*env_, kPartitions).ok());
  }

  void ProduceOrders(int64_t count) {
    workload::OrdersGeneratorOptions options;
    options.num_products = 20;
    workload::OrdersGenerator gen(*env_, options);
    ASSERT_TRUE(gen.Produce(count).ok());
    last_rowtime_ = gen.last_rowtime();
  }

  // One far-future order per partition so event-time watermarks close every
  // open window in every task (same trick as the e2e suite).
  void ProduceWatermarkSentinels(int64_t future_ms) {
    auto schema = env_->catalog->GetSource("Orders").value().schema;
    AvroRowSerde serde(schema);
    Producer producer(env_->broker, env_->clock);
    for (int32_t p = 0; p < kPartitions; ++p) {
      Row row{Value(last_rowtime_ + future_ms), Value(int32_t{9999}),
              Value(int64_t{-1}), Value(int32_t{0}), Value("sentinel")};
      ASSERT_TRUE(
          producer.SendTo({"Orders", p}, Bytes{}, serde.SerializeToBytes(row)).ok());
    }
  }

  // Ground truth for the tumbling query: the batch oracle, evaluated before
  // any fault injection is armed, as a deduped set without sentinel groups.
  std::set<std::string> OracleWindows() {
    QueryExecutor oracle(env_);
    auto result = oracle.Execute(kTumblingBatch);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    return DedupNonSentinel(result.value().rows);
  }

  // Wrap the environment's broker in a fault injector. Every job submitted
  // afterwards (and every recovery path) runs through it.
  void WrapFaults(FaultPolicy policy) {
    fault_ = std::make_shared<FaultInjectingBroker>(env_->broker, std::move(policy));
    env_->broker = fault_;
  }

  static Config SupervisedDefaults() {
    Config defaults;
    defaults.SetInt(cfg::kContainerCount, 2);
    defaults.SetInt(cfg::kCommitEveryMessages, 50);
    defaults.SetInt(cfg::kContainerRestartMax, 5);
    defaults.SetInt(cfg::kContainerRestartBackoffMs, 1);
    defaults.SetInt(cfg::kContainerRestartBackoffMaxMs, 4);
    defaults.SetInt(cfg::kRetryMaxAttempts, 3);
    defaults.SetInt(cfg::kRetryBackoffMs, 1);
    defaults.SetInt(cfg::kRetryBackoffMaxMs, 2);
    return defaults;
  }

  static std::set<std::string> DedupNonSentinel(const std::vector<Row>& rows) {
    std::set<std::string> out;
    for (const Row& r : rows) {
      if (r[0] == Value(int32_t{9999})) continue;  // sentinel group
      out.insert(RowToString(r));
    }
    return out;
  }

  // Counter sum across containers, matched by metric-name suffix.
  static int64_t SumCounters(JobRunner* job, const std::string& suffix) {
    MetricsSnapshot snap = job->metrics_registry()->Snapshot();
    int64_t total = 0;
    for (const auto& [name, value] : snap.counters) {
      if (name.size() >= suffix.size() &&
          name.compare(name.size() - suffix.size(), suffix.size(), suffix) == 0) {
        total += value;
      }
    }
    return total;
  }

  EnvironmentPtr env_;
  std::shared_ptr<FaultInjectingBroker> fault_;
  std::unique_ptr<QueryExecutor> executor_;
  int64_t last_rowtime_ = 0;
};

// Tentpole scenario 1: kill a container mid-window. The supervisor (not a
// manual RestartContainer) brings it back through Restore + checkpoint
// replay, and the deduped output equals the uninterrupted oracle.
TEST_F(RecoveryTest, SupervisorRestartsKilledContainerAndOutputMatchesOracle) {
  MakeEnv();
  ProduceOrders(1600);
  ProduceWatermarkSentinels(3'600'000);
  std::set<std::string> expected = OracleWindows();

  executor_ = std::make_unique<QueryExecutor>(env_, SupervisedDefaults());
  auto submitted = executor_->Execute(kTumblingStream);
  ASSERT_TRUE(submitted.ok()) << submitted.status().ToString();
  JobRunner* job = executor_->job(submitted.value().job_index);
  ASSERT_NE(job, nullptr);

  // Kill after partial progress: open windows and uncheckpointed positions
  // die with the container.
  ASSERT_TRUE(job->container(0)->RunUntilCaughtUp(400).ok());
  ASSERT_TRUE(job->KillContainer(0).ok());

  auto ran = executor_->RunJobsUntilQuiescent();
  ASSERT_TRUE(ran.ok()) << ran.status().ToString();

  auto rows = executor_->ReadOutputRows(submitted.value().output_topic);
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  EXPECT_EQ(DedupNonSentinel(rows.value()), expected);
  EXPECT_GT(expected.size(), 10u);  // sanity: many windows closed

  EXPECT_GE(job->TotalRestarts(), 1);
  EXPECT_GE(job->ContainerRestarts(0), 1);
  EXPECT_GE(SumCounters(job, ".supervisor.container_restarts"), 1);
  // The restart count is visible to the monitor (/jobs, /readyz reason).
  auto views = executor_->CollectJobViews();
  ASSERT_EQ(views.size(), 1u);
  EXPECT_GE(views[0].restarts, 1);
}

// Tentpole scenario 2: crash after output flush but before the checkpoint
// lands. Forced append failures are scoped to the checkpoint topic, so the
// commit fails with outputs already flushed; replay produces duplicate
// window emissions which dedup back to the oracle (at-least-once).
TEST_F(RecoveryTest, CrashBetweenOutputFlushAndCheckpointDedupsToOracle) {
  MakeEnv();
  ProduceOrders(1600);
  ProduceWatermarkSentinels(3'600'000);
  std::set<std::string> expected = OracleWindows();

  FaultPolicy policy;
  policy.topics = {"__cp_recovery"};
  WrapFaults(policy);

  Config defaults = SupervisedDefaults();
  defaults.Set(cfg::kCheckpointTopic, "__cp_recovery");
  executor_ = std::make_unique<QueryExecutor>(env_, defaults);
  auto submitted = executor_->Execute(kTumblingStream);
  ASSERT_TRUE(submitted.ok()) << submitted.status().ToString();
  JobRunner* job = executor_->job(submitted.value().job_index);

  // retry.max.attempts=3, so 6 tokens sink two whole checkpoint writes
  // (initial attempt + 2 retries each): two separate commit-time crashes.
  fault_->FailNextAppends(6);
  auto ran = executor_->RunJobsUntilQuiescent();
  ASSERT_TRUE(ran.ok()) << ran.status().ToString();
  EXPECT_GE(job->TotalRestarts(), 1);
  EXPECT_GE(SumCounters(job, ".giveups"), 1);

  auto rows = executor_->ReadOutputRows(submitted.value().output_topic);
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  EXPECT_EQ(DedupNonSentinel(rows.value()), expected);
}

// Tentpole scenario 3: transient fetch failures hit while the restarted
// container is restoring (changelog replay + checkpoint read). The recovery
// path itself retries and completes; a second kill later exercises
// kill-restart-kill.
TEST_F(RecoveryTest, RecoveryPathRetriesTransientFailuresDuringRestore) {
  MakeEnv();
  ProduceOrders(1200);
  ProduceWatermarkSentinels(3'600'000);
  std::set<std::string> expected = OracleWindows();

  WrapFaults(FaultPolicy{});  // forced failures only
  executor_ = std::make_unique<QueryExecutor>(env_, SupervisedDefaults());
  auto submitted = executor_->Execute(kTumblingStream);
  ASSERT_TRUE(submitted.ok()) << submitted.status().ToString();
  JobRunner* job = executor_->job(submitted.value().job_index);

  ASSERT_TRUE(job->container(0)->RunUntilCaughtUp(300).ok());
  ASSERT_TRUE(job->KillContainer(0).ok());
  // The next data fetches — the restarted container's restore reads — fail
  // twice; retry.max.attempts=3 absorbs them.
  fault_->FailNextFetches(2);
  auto ran = executor_->RunJobsUntilQuiescent();
  ASSERT_TRUE(ran.ok()) << ran.status().ToString();
  EXPECT_GE(job->TotalRestarts(), 1);

  // Kill again after full quiescence, append more input, recover again.
  ASSERT_TRUE(job->KillContainer(1).ok());
  ran = executor_->RunJobsUntilQuiescent();
  ASSERT_TRUE(ran.ok()) << ran.status().ToString();
  EXPECT_GE(job->TotalRestarts(), 2);

  auto rows = executor_->ReadOutputRows(submitted.value().output_topic);
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  EXPECT_EQ(DedupNonSentinel(rows.value()), expected);
}

// A permanently blacked-out input partition makes the owning container
// crash-loop; the restart budget bounds the loop and the job surfaces a
// clean error instead of hanging.
TEST_F(RecoveryTest, RestartBudgetExhaustionSurfacesCleanError) {
  MakeEnv();
  ProduceOrders(400);
  WrapFaults(FaultPolicy{});

  Config defaults = SupervisedDefaults();
  defaults.SetInt(cfg::kContainerRestartMax, 2);
  executor_ = std::make_unique<QueryExecutor>(env_, defaults);
  auto submitted = executor_->Execute(kTumblingStream);
  ASSERT_TRUE(submitted.ok()) << submitted.status().ToString();
  JobRunner* job = executor_->job(submitted.value().job_index);

  fault_->BlackoutPartition({"Orders", 0});
  auto ran = executor_->RunJobsUntilQuiescent();
  ASSERT_FALSE(ran.ok());
  EXPECT_NE(ran.status().message().find("restart budget exhausted"),
            std::string::npos)
      << ran.status().ToString();
  EXPECT_EQ(job->TotalRestarts(), 2);
  auto views = executor_->CollectJobViews();
  ASSERT_EQ(views.size(), 1u);
  EXPECT_EQ(views[0].restarts, 2);
}

// ---------------------------------------------------------------------------
// task.error.policy: poison messages
// ---------------------------------------------------------------------------

class PoisonTest : public RecoveryTest {
 protected:
  // 400 valid orders plus one undeserializable record on partition 2.
  void SeedPoison() {
    MakeEnv();
    ProduceOrders(400);
    Producer raw(env_->broker);
    poison_offset_ = env_->broker->EndOffset({"Orders", 2}).value();
    ASSERT_TRUE(raw.SendTo({"Orders", 2}, Bytes{}, Bytes{0xff}).ok());
  }

  Config PolicyDefaults(const std::string& policy) {
    Config defaults;
    defaults.SetInt(cfg::kContainerCount, 2);
    defaults.SetInt(cfg::kCommitEveryMessages, 50);
    defaults.Set(cfg::kTaskErrorPolicy, policy);
    return defaults;
  }

  static constexpr const char* kProjection =
      "SELECT STREAM rowtime, productId, units FROM Orders";

  int64_t poison_offset_ = 0;
};

TEST_F(PoisonTest, FailPolicySurfacesTheDeserializationError) {
  SeedPoison();
  executor_ = std::make_unique<QueryExecutor>(env_, PolicyDefaults("fail"));
  auto submitted = executor_->Execute(kProjection);
  ASSERT_TRUE(submitted.ok()) << submitted.status().ToString();
  auto ran = executor_->RunJobsUntilQuiescent();
  ASSERT_FALSE(ran.ok());
  EXPECT_NE(ran.status().code(), ErrorCode::kUnavailable);
}

// Poison is deterministic: with policy=fail the supervisor replays straight
// back into the same message, so the restart budget must terminate the loop.
TEST_F(PoisonTest, FailPolicyUnderSupervisorExhaustsBudgetNotForever) {
  SeedPoison();
  Config defaults = PolicyDefaults("fail");
  defaults.SetInt(cfg::kContainerRestartMax, 2);
  defaults.SetInt(cfg::kContainerRestartBackoffMs, 1);
  executor_ = std::make_unique<QueryExecutor>(env_, defaults);
  auto submitted = executor_->Execute(kProjection);
  ASSERT_TRUE(submitted.ok()) << submitted.status().ToString();
  auto ran = executor_->RunJobsUntilQuiescent();
  ASSERT_FALSE(ran.ok());
  EXPECT_NE(ran.status().message().find("restart budget exhausted"),
            std::string::npos)
      << ran.status().ToString();
  EXPECT_EQ(executor_->job(submitted.value().job_index)->TotalRestarts(), 2);
}

TEST_F(PoisonTest, SkipPolicyDropsPoisonAndProcessesEverythingElse) {
  SeedPoison();
  executor_ = std::make_unique<QueryExecutor>(env_, PolicyDefaults("skip"));
  auto submitted = executor_->Execute(kProjection);
  ASSERT_TRUE(submitted.ok()) << submitted.status().ToString();
  auto ran = executor_->RunJobsUntilQuiescent();
  ASSERT_TRUE(ran.ok()) << ran.status().ToString();
  auto rows = executor_->ReadOutputRows(submitted.value().output_topic);
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  EXPECT_EQ(rows.value().size(), 400u);  // every valid row, poison dropped
  EXPECT_EQ(SumCounters(executor_->job(submitted.value().job_index), ".dropped"), 1);
}

TEST_F(PoisonTest, DeadLetterPolicyRoutesPoisonWithProvenance) {
  SeedPoison();
  Config defaults = PolicyDefaults("dead-letter");
  defaults.Set(cfg::kTaskDlqTopic, "orders.dlq");
  executor_ = std::make_unique<QueryExecutor>(env_, defaults);
  auto submitted = executor_->Execute(kProjection);
  ASSERT_TRUE(submitted.ok()) << submitted.status().ToString();
  auto ran = executor_->RunJobsUntilQuiescent();
  ASSERT_TRUE(ran.ok()) << ran.status().ToString();
  auto rows = executor_->ReadOutputRows(submitted.value().output_topic);
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  EXPECT_EQ(rows.value().size(), 400u);
  EXPECT_EQ(SumCounters(executor_->job(submitted.value().job_index), ".dropped"), 1);

  // The DLQ carries the original bytes plus provenance and the error text,
  // on the same partition as the origin.
  ASSERT_TRUE(env_->broker->HasTopic("orders.dlq"));
  auto batch = env_->broker->Fetch({"orders.dlq", 2}, 0, 16);
  ASSERT_TRUE(batch.ok());
  ASSERT_EQ(batch.value().size(), 1u);
  auto record = DecodeDeadLetter(batch.value()[0].message.value);
  ASSERT_TRUE(record.ok()) << record.status().ToString();
  EXPECT_EQ(record.value().origin, (StreamPartition{"Orders", 2}));
  EXPECT_EQ(record.value().offset, poison_offset_);
  EXPECT_EQ(record.value().value, Bytes{0xff});
  EXPECT_FALSE(record.value().error.empty());
  EXPECT_FALSE(record.value().task_name.empty());
}

TEST_F(PoisonTest, UnknownPolicyIsRejectedAtStart) {
  auto parsed = ParseTaskErrorPolicy("quarantine");
  EXPECT_FALSE(parsed.ok());
  EXPECT_EQ(ParseTaskErrorPolicy("").value(), TaskErrorPolicy::kFail);
  EXPECT_EQ(ParseTaskErrorPolicy("skip").value(), TaskErrorPolicy::kSkip);
  EXPECT_EQ(ParseTaskErrorPolicy("dead-letter").value(), TaskErrorPolicy::kDeadLetter);
}

// ---------------------------------------------------------------------------
// Seeded soak: random fault storm + adversarial kill, 8 seeds.
// Run selectively with `ctest -R recovery_soak`.
// ---------------------------------------------------------------------------

class recovery_soak : public ::testing::TestWithParam<int> {};

TEST_P(recovery_soak, WindowedQuerySurvivesSeededFaultStorm) {
  const int seed = GetParam();
  auto env = SamzaSqlEnvironment::Make();
  ASSERT_TRUE(workload::SetupPaperSources(*env, kPartitions).ok());

  workload::OrdersGeneratorOptions options;
  options.num_products = 20;
  workload::OrdersGenerator gen(*env, options);
  ASSERT_TRUE(gen.Produce(600).ok());
  {
    auto schema = env->catalog->GetSource("Orders").value().schema;
    AvroRowSerde serde(schema);
    Producer producer(env->broker, env->clock);
    for (int32_t p = 0; p < kPartitions; ++p) {
      Row row{Value(gen.last_rowtime() + 3'600'000), Value(int32_t{9999}),
              Value(int64_t{-1}), Value(int32_t{0}), Value("sentinel")};
      ASSERT_TRUE(
          producer.SendTo({"Orders", p}, Bytes{}, serde.SerializeToBytes(row)).ok());
    }
  }

  // Oracle before faults are armed (the batch evaluator is not retried).
  std::set<std::string> expected;
  {
    QueryExecutor oracle(env);
    auto result = oracle.Execute(kTumblingBatch);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    for (const Row& r : result.value().rows) {
      if (r[0] == Value(int32_t{9999})) continue;
      expected.insert(RowToString(r));
    }
  }

  FaultPolicy policy;
  policy.seed = 0x5eedull + static_cast<uint64_t>(seed);
  policy.append_fail_rate = 0.03;
  policy.fetch_fail_rate = 0.03;
  policy.latency_nanos = 1000;
  policy.latency_rate = 0.02;
  policy.topics = {"Orders", "__cp_soak"};
  auto fault = std::make_shared<FaultInjectingBroker>(env->broker, policy);
  env->broker = fault;

  Config defaults;
  defaults.SetInt(cfg::kContainerCount, 2);
  defaults.SetInt(cfg::kCommitEveryMessages, 50);
  defaults.Set(cfg::kCheckpointTopic, "__cp_soak");
  defaults.SetInt(cfg::kRetryMaxAttempts, 6);
  defaults.SetInt(cfg::kRetryBackoffMs, 1);
  defaults.SetInt(cfg::kRetryBackoffMaxMs, 4);
  defaults.SetInt(cfg::kContainerRestartMax, 8);
  defaults.SetInt(cfg::kContainerRestartBackoffMs, 1);
  defaults.SetInt(cfg::kContainerRestartBackoffMaxMs, 4);
  QueryExecutor executor(env, defaults);

  auto submitted = executor.Execute(kTumblingStream);
  ASSERT_TRUE(submitted.ok()) << submitted.status().ToString();
  JobRunner* job = executor.job(submitted.value().job_index);

  // Seed-dependent adversarial kill point (a crash here is fine too — the
  // container is then already dead and the supervisor handles it).
  (void)job->container(0)->RunUntilCaughtUp(60 + 40 * seed);
  (void)job->KillContainer(0);

  auto ran = executor.RunJobsUntilQuiescent();
  ASSERT_TRUE(ran.ok()) << ran.status().ToString();
  EXPECT_GE(job->TotalRestarts(), 1);

  auto rows = executor.ReadOutputRows(submitted.value().output_topic);
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  std::set<std::string> got;
  for (const Row& r : rows.value()) {
    if (r[0] == Value(int32_t{9999})) continue;
    got.insert(RowToString(r));
  }
  EXPECT_EQ(got, expected);
}

INSTANTIATE_TEST_SUITE_P(Seeds, recovery_soak, ::testing::Range(0, 8));

}  // namespace
}  // namespace sqs::core
