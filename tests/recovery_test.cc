// Crash-recovery and fault-injection tests (docs/FAULT_TOLERANCE.md):
//  - FaultInjectingBroker: seeded schedules, forced failures, blackouts;
//  - Retrier: only Unavailable retried, counters move, budgets respected;
//  - ChangelogBackedStore: append failure is a sticky health error (never an
//    exception) that blocks the commit, and Restore() clears it;
//  - CheckpointManager: restore is one pass over checkpoint history per
//    container, not one per task;
//  - task.error.policy: poison messages fail / skip / dead-letter;
//  - container supervisor: killed or crashed containers restart through the
//    full recovery path and the job's output still matches the oracle;
//  - recovery_soak: seeded random fault storms over a windowed query
//    (run with `ctest -R recovery_soak`).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <random>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/crc32c.h"
#include "common/tracing.h"
#include "core/executor.h"
#include "kv/changelog.h"
#include "kv/store.h"
#include "log/fault_broker.h"
#include "task/checkpoint.h"
#include "workload/generators.h"

namespace sqs::core {
namespace {

constexpr int32_t kPartitions = 4;

// The windowed-aggregation pair used throughout: streaming job vs. batch
// oracle. Window outputs are idempotent by (window start, productId), so
// at-least-once replays dedup to exactly the oracle rows.
constexpr const char* kTumblingStream =
    "SELECT STREAM productId, START(rowtime) AS ws, COUNT(*) AS c, SUM(units) AS su "
    "FROM Orders GROUP BY TUMBLE(rowtime, INTERVAL '10' SECOND), productId";
constexpr const char* kTumblingBatch =
    "SELECT productId, START(rowtime) AS ws, COUNT(*) AS c, SUM(units) AS su "
    "FROM Orders GROUP BY TUMBLE(rowtime, INTERVAL '10' SECOND), productId";

Message Msg(const std::string& key, const std::string& value) {
  Message m;
  m.key = ToBytes(key);
  m.value = ToBytes(value);
  return m;
}

// ---------------------------------------------------------------------------
// FaultInjectingBroker unit tests
// ---------------------------------------------------------------------------

TEST(FaultBrokerTest, SeededScheduleIsDeterministic) {
  auto make = [](uint64_t seed) {
    auto inner = std::make_shared<Broker>();
    EXPECT_TRUE(inner->CreateTopic("t", {.num_partitions = 1}).ok());
    FaultPolicy policy;
    policy.seed = seed;
    policy.append_fail_rate = 0.5;
    return std::make_shared<FaultInjectingBroker>(inner, policy);
  };
  auto pattern = [](FaultInjectingBroker& b) {
    std::string p;
    for (int i = 0; i < 200; ++i) {
      p += b.Append({"t", 0}, Msg("k", "v")).ok() ? '.' : 'X';
    }
    return p;
  };
  auto a = make(7);
  auto b = make(7);
  auto c = make(8);
  std::string pa = pattern(*a);
  EXPECT_EQ(pa, pattern(*b));     // same seed: identical failure schedule
  EXPECT_NE(pa, pattern(*c));     // different seed: different schedule
  EXPECT_NE(pa.find('.'), std::string::npos);
  EXPECT_NE(pa.find('X'), std::string::npos);
  EXPECT_GT(a->injected_append_failures(), 0);
}

TEST(FaultBrokerTest, ForcedFailuresBlackoutsAndMetadataPassThrough) {
  auto inner = std::make_shared<Broker>();
  ASSERT_TRUE(inner->CreateTopic("t", {.num_partitions = 2}).ok());
  FaultInjectingBroker fb(inner, FaultPolicy{});  // no random faults

  ASSERT_TRUE(fb.Append({"t", 0}, Msg("k", "v")).ok());

  fb.FailNextAppends(2);
  auto a1 = fb.Append({"t", 0}, Msg("k", "v"));
  auto a2 = fb.Append({"t", 0}, Msg("k", "v"));
  ASSERT_FALSE(a1.ok());
  EXPECT_EQ(a1.status().code(), ErrorCode::kUnavailable);
  EXPECT_FALSE(a2.ok());
  EXPECT_TRUE(fb.Append({"t", 0}, Msg("k", "v")).ok());  // tokens spent

  fb.FailNextFetches(1);
  auto f1 = fb.Fetch({"t", 0}, 0, 10);
  ASSERT_FALSE(f1.ok());
  EXPECT_EQ(f1.status().code(), ErrorCode::kUnavailable);
  EXPECT_TRUE(fb.Fetch({"t", 0}, 0, 10).ok());

  // Blackout fails one partition's data path; metadata and the other
  // partition keep working; Heal restores it.
  fb.BlackoutPartition({"t", 1});
  EXPECT_FALSE(fb.Append({"t", 1}, Msg("k", "v")).ok());
  EXPECT_FALSE(fb.Fetch({"t", 1}, 0, 10).ok());
  EXPECT_TRUE(fb.EndOffset({"t", 1}).ok());
  EXPECT_TRUE(fb.Append({"t", 0}, Msg("k", "v")).ok());
  fb.Heal({"t", 1});
  EXPECT_TRUE(fb.Append({"t", 1}, Msg("k", "v")).ok());

  EXPECT_EQ(fb.injected_append_failures(), 3);
  EXPECT_EQ(fb.injected_fetch_failures(), 2);
  EXPECT_GT(fb.AppendCount("t"), 0);
  EXPECT_GT(fb.FetchCount("t"), 0);
}

// ---------------------------------------------------------------------------
// Retrier unit tests
// ---------------------------------------------------------------------------

TEST(RetrierTest, RetriesOnlyUnavailableAndCountsOutcomes) {
  MetricsRegistry registry;
  Counter& retries = ScopedMetrics(&registry, "t").counter("retries");
  Counter& giveups = ScopedMetrics(&registry, "t").counter("giveups");
  Retrier retrier(RetryPolicy{.max_attempts = 5, .backoff_ms = 1, .backoff_max_ms = 2});
  retrier.BindMetrics(&retries, &giveups);

  // Transient failure: two Unavailable then success.
  int calls = 0;
  Status st = retrier.Run([&]() -> Status {
    return ++calls <= 2 ? Status::Unavailable("transient") : Status::Ok();
  });
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(retries.Get(), 2);
  EXPECT_EQ(giveups.Get(), 0);

  // Non-retryable code: surfaced immediately, no retries.
  calls = 0;
  st = retrier.Run([&]() -> Status {
    ++calls;
    return Status::InvalidArgument("poison");
  });
  EXPECT_EQ(st.code(), ErrorCode::kInvalidArgument);
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(retries.Get(), 2);

  // Budget exhaustion: max_attempts calls, then the error with a giveup.
  retrier.SetPolicy(RetryPolicy{.max_attempts = 3, .backoff_ms = 1, .backoff_max_ms = 1});
  calls = 0;
  st = retrier.Run([&]() -> Status {
    ++calls;
    return Status::Unavailable("permanent");
  });
  EXPECT_EQ(st.code(), ErrorCode::kUnavailable);
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(retries.Get(), 4);
  EXPECT_EQ(giveups.Get(), 1);
}

// retry.deadline.ms: a wall-clock budget orthogonal to max_attempts. With a
// huge attempt budget but a tiny deadline, a permanently-Unavailable call
// gives up quickly via the deadline path — counted separately from
// attempt-budget giveups so dashboards can tell the two pressures apart.
TEST(RetrierTest, DeadlineBudgetStopsRetriesBeforeAttemptBudget) {
  MetricsRegistry registry;
  Counter& retries = ScopedMetrics(&registry, "t").counter("retries");
  Counter& giveups = ScopedMetrics(&registry, "t").counter("giveups");
  Counter& deadline = ScopedMetrics(&registry, "t").counter("giveup_deadline");
  Retrier retrier(RetryPolicy{
      .max_attempts = 1'000'000, .backoff_ms = 5, .backoff_max_ms = 10,
      .deadline_ms = 40});
  retrier.BindMetrics(&retries, &giveups, &deadline);

  int calls = 0;
  int64_t start = MonotonicNanos();
  Status st = retrier.Run([&]() -> Status {
    ++calls;
    return Status::Unavailable("down hard");
  });
  int64_t elapsed_ms = (MonotonicNanos() - start) / 1'000'000;
  EXPECT_EQ(st.code(), ErrorCode::kUnavailable);
  // Far fewer calls than the attempt budget, and no runaway wall time: the
  // deadline is checked between attempts, so an in-flight call is never cut
  // short but no new backoff starts past the budget.
  EXPECT_LT(calls, 1000);
  EXPECT_GE(calls, 2);  // at least one retry happened before the deadline
  EXPECT_LT(elapsed_ms, 5000);
  EXPECT_EQ(giveups.Get(), 0);
  EXPECT_EQ(deadline.Get(), 1);

  // deadline_ms parses from config next to the other retry.* knobs, and 0
  // (the default) means no deadline.
  Config config;
  config.SetInt(cfg::kRetryMaxAttempts, 7);
  config.SetInt(cfg::kRetryDeadlineMs, 250);
  RetryPolicy parsed = RetryPolicy::FromConfig(config);
  EXPECT_EQ(parsed.max_attempts, 7);
  EXPECT_EQ(parsed.deadline_ms, 250);
  EXPECT_EQ(RetryPolicy{}.deadline_ms, 0);
}

TEST(RetrierTest, ProducerSendSurvivesTransientAppendFailures) {
  auto inner = std::make_shared<Broker>();
  ASSERT_TRUE(inner->CreateTopic("t", {.num_partitions = 1}).ok());
  auto fb = std::make_shared<FaultInjectingBroker>(inner, FaultPolicy{});
  Producer producer(fb);
  producer.SetRetryPolicy(RetryPolicy{.max_attempts = 4, .backoff_ms = 1, .backoff_max_ms = 2});
  fb->FailNextAppends(2);
  ASSERT_TRUE(producer.Send("t", ToBytes("k"), ToBytes("v")).ok());
  EXPECT_EQ(inner->EndOffset({"t", 0}).value(), 1);
  EXPECT_EQ(fb->injected_append_failures(), 2);
}

// ---------------------------------------------------------------------------
// ChangelogBackedStore: sticky error instead of an exception
// ---------------------------------------------------------------------------

TEST(ChangelogStickyErrorTest, AppendFailureIsStickyAndRestoreClearsIt) {
  auto inner = std::make_shared<Broker>();
  ASSERT_TRUE(inner->CreateTopic("cl", {.num_partitions = 1}).ok());
  auto fb = std::make_shared<FaultInjectingBroker>(inner, FaultPolicy{});
  ChangelogBackedStore store(std::make_shared<InMemoryStore>(), fb, {"cl", 0});

  store.Put(ToBytes("a"), ToBytes("1"));
  ASSERT_TRUE(store.health().ok());

  // The failing Put must not throw, must not touch the backing store, and
  // must leave a sticky Unavailable health error.
  fb->FailNextAppends(1);
  store.Put(ToBytes("b"), ToBytes("2"));
  EXPECT_FALSE(store.health().ok());
  EXPECT_EQ(store.health().code(), ErrorCode::kUnavailable);
  EXPECT_FALSE(store.Get(ToBytes("b")).has_value());

  // While unhealthy, further writes are refused (no divergence).
  store.Put(ToBytes("c"), ToBytes("3"));
  store.Delete(ToBytes("a"));
  EXPECT_FALSE(store.Get(ToBytes("c")).has_value());
  EXPECT_EQ(inner->EndOffset({"cl", 0}).value(), 1);  // only "a" was logged

  // Restore replays the changelog and clears the sticky error.
  ASSERT_TRUE(store.Restore().ok());
  EXPECT_TRUE(store.health().ok());
  EXPECT_TRUE(store.Get(ToBytes("a")).has_value());
  store.Put(ToBytes("d"), ToBytes("4"));
  EXPECT_TRUE(store.health().ok());
  EXPECT_TRUE(store.Get(ToBytes("d")).has_value());
}

TEST(ChangelogStickyErrorTest, RetryPolicyAbsorbsTransientAppendFailures) {
  auto inner = std::make_shared<Broker>();
  ASSERT_TRUE(inner->CreateTopic("cl", {.num_partitions = 1}).ok());
  auto fb = std::make_shared<FaultInjectingBroker>(inner, FaultPolicy{});
  ChangelogBackedStore store(std::make_shared<InMemoryStore>(), fb, {"cl", 0});
  store.SetRetryPolicy(RetryPolicy{.max_attempts = 4, .backoff_ms = 1, .backoff_max_ms = 2});
  fb->FailNextAppends(2);
  store.Put(ToBytes("a"), ToBytes("1"));
  EXPECT_TRUE(store.health().ok());
  EXPECT_TRUE(store.Get(ToBytes("a")).has_value());
  EXPECT_EQ(inner->EndOffset({"cl", 0}).value(), 1);
}

// A store whose changelog append was lost must block the commit: the
// checkpoint may never advance past state that was not durably logged. With
// the supervisor on, the container crashes at the commit boundary, restarts,
// restores from the changelog, and replays — final state is complete.
TEST(ChangelogStickyErrorTest, UnhealthyStoreBlocksCommitAndSupervisorRecovers) {
  class RecoveryStatefulTask : public StreamTask {
   public:
    Status Init(TaskContext& ctx) override {
      store_ = ctx.GetStore("state");
      if (!store_) return Status::StateError("store 'state' not configured");
      return Status::Ok();
    }
    Status Process(const IncomingMessage& msg, MessageCollector&, TaskCoordinator&) override {
      std::string key =
          std::to_string(msg.origin.partition) + ":" + std::to_string(msg.offset);
      store_->Put(ToBytes(key), msg.message.value);
      return Status::Ok();
    }

   private:
    KeyValueStorePtr store_;
  };
  TaskFactoryRegistry::Instance().Register(
      "recovery-stateful", [] { return std::make_unique<RecoveryStatefulTask>(); });

  auto inner = std::make_shared<Broker>();
  ASSERT_TRUE(inner->CreateTopic("in", {.num_partitions = 2}).ok());
  FaultPolicy policy;
  policy.topics = {"state-cl-gate"};  // only the changelog misbehaves
  auto fb = std::make_shared<FaultInjectingBroker>(inner, policy);

  Producer p(fb);
  for (int i = 0; i < 80; ++i) {
    ASSERT_TRUE(p.Send("in", ToBytes("k" + std::to_string(i)),
                       ToBytes("m" + std::to_string(i)))
                    .ok());
  }

  Config c;
  c.Set(cfg::kJobName, "gate-job");
  c.Set(cfg::kTaskInputs, "in");
  c.Set(cfg::kTaskFactory, "recovery-stateful");
  c.Set("stores.state.changelog", "state-cl-gate");
  c.SetInt(cfg::kContainerCount, 1);
  c.SetInt(cfg::kCommitEveryMessages, 10);
  c.SetInt(cfg::kContainerRestartMax, 3);
  c.SetInt(cfg::kContainerRestartBackoffMs, 1);
  JobRunner runner(fb, c);
  ASSERT_TRUE(runner.Start().ok());

  fb->FailNextAppends(1);  // one changelog write is lost mid-batch
  auto ran = runner.RunUntilQuiescent();
  ASSERT_TRUE(ran.ok()) << ran.status().ToString();
  EXPECT_GE(runner.TotalRestarts(), 1);

  // Every input message is in the recovered state exactly once.
  size_t total = 0;
  for (int part = 0; part < 2; ++part) {
    ChangelogBackedStore verify(std::make_shared<InMemoryStore>(), inner,
                                {"state-cl-gate", part});
    ASSERT_TRUE(verify.Restore().ok());
    int64_t in_end = inner->EndOffset({"in", part}).value();
    EXPECT_EQ(verify.Size(), static_cast<size_t>(in_end));
    for (int64_t o = 0; o < in_end; ++o) {
      EXPECT_TRUE(verify
                      .Get(ToBytes(std::to_string(part) + ":" + std::to_string(o)))
                      .has_value());
    }
    total += verify.Size();
  }
  EXPECT_EQ(total, 80u);
}

// ---------------------------------------------------------------------------
// CRC32C + corruption injection (end-to-end integrity)
// ---------------------------------------------------------------------------

TEST(Crc32cTest, KnownVectorsAndExtendComposition) {
  // The Castagnoli check value: CRC32C("123456789") = 0xE3069283.
  EXPECT_EQ(Crc32c("123456789", 9), 0xE3069283u);
  EXPECT_EQ(Crc32c("", 0), 0u);
  // Extend composes: crc(a || b) == extend(crc(a), b). MessageCrc relies on
  // this to checksum key || value without concatenating them.
  const std::string a = "hello ", b = "world", ab = a + b;
  EXPECT_EQ(Crc32cExtend(Crc32c(a.data(), a.size()), b.data(), b.size()),
            Crc32c(ab.data(), ab.size()));
  // Any single bit flip changes the CRC.
  std::string flipped = ab;
  flipped[3] ^= 0x10;
  EXPECT_NE(Crc32c(flipped.data(), flipped.size()), Crc32c(ab.data(), ab.size()));
}

TEST(Crc32cTest, MessageStampAndValidate) {
  Message m = Msg("key", "value");
  EXPECT_TRUE(MessageCrcValid(m));  // unstamped legacy message: no check
  StampMessageCrc(m);
  EXPECT_TRUE(m.has_crc);
  EXPECT_TRUE(MessageCrcValid(m));
  m.value[0] ^= 0x01;
  EXPECT_FALSE(MessageCrcValid(m));
  m.value[0] ^= 0x01;
  m.key[1] ^= 0x80;  // the key is covered too
  EXPECT_FALSE(MessageCrcValid(m));
}

TEST(CorruptionTest, InjectedBitFlipFailsCrcAndRefetchHeals) {
  auto inner = std::make_shared<Broker>();
  ASSERT_TRUE(inner->CreateTopic("t", {.num_partitions = 1}).ok());
  auto fb = std::make_shared<FaultInjectingBroker>(inner, FaultPolicy{});
  Producer p(fb);  // stamps CRC32C on every send
  ASSERT_TRUE(p.SendTo({"t", 0}, ToBytes("k"), ToBytes("hello")).ok());

  fb->CorruptNextMessages(1);
  auto bad = fb->Fetch({"t", 0}, 0, 10);
  ASSERT_TRUE(bad.ok());
  ASSERT_EQ(bad.value().size(), 1u);
  EXPECT_FALSE(MessageCrcValid(bad.value()[0].message));
  EXPECT_EQ(fb->injected_corruptions(), 1);

  // Corruption hits the fetched copy, not the log: a refetch is clean.
  auto good = fb->Fetch({"t", 0}, 0, 10);
  ASSERT_TRUE(good.ok());
  EXPECT_TRUE(MessageCrcValid(good.value()[0].message));
  EXPECT_EQ(good.value()[0].message.value, ToBytes("hello"));
}

TEST(CorruptionTest, ChangelogRestoreRetriesPastCorruptFetch) {
  auto inner = std::make_shared<Broker>();
  ASSERT_TRUE(inner->CreateTopic("cl", {.num_partitions = 1}).ok());
  auto fb = std::make_shared<FaultInjectingBroker>(inner, FaultPolicy{});
  ChangelogBackedStore store(std::make_shared<InMemoryStore>(), fb, {"cl", 0});
  store.SetRetryPolicy(RetryPolicy{.max_attempts = 4, .backoff_ms = 1, .backoff_max_ms = 2});
  store.Put(ToBytes("a"), ToBytes("1"));
  store.Put(ToBytes("b"), ToBytes("2"));
  ASSERT_TRUE(store.health().ok());

  // One corrupted replay fetch: the CRC check inside the retried lambda
  // converts it to Unavailable and the refetch restores clean state.
  fb->CorruptNextMessages(1);
  ASSERT_TRUE(store.Restore().ok());
  EXPECT_EQ(store.Get(ToBytes("a")), ToBytes("1"));
  EXPECT_EQ(store.Get(ToBytes("b")), ToBytes("2"));
  EXPECT_GE(fb->injected_corruptions(), 1);
}

TEST(CorruptionTest, PolicyParsesCorruptKeysFromConfig) {
  Config c;
  c.Set(cfg::kFaultCorruptRate, "0.25");
  c.Set(cfg::kFaultCorruptTopics, "Orders");
  FaultPolicy policy = FaultPolicy::FromConfig(c);
  EXPECT_DOUBLE_EQ(policy.corrupt_rate, 0.25);
  EXPECT_EQ(policy.corrupt_topics, std::vector<std::string>{"Orders"});
  EXPECT_TRUE(policy.any_faults());
}

// ---------------------------------------------------------------------------
// Idempotent producer: sequence dedup, epoch fencing, sequence resume
// ---------------------------------------------------------------------------

TEST(IdempotentProducerTest, BrokerDedupsSequencesAndAcksAtLastOffset) {
  Broker b;
  ASSERT_TRUE(b.CreateTopic("t", {.num_partitions = 1}).ok());
  auto reg = b.RegisterProducer("p");
  ASSERT_TRUE(reg.ok());
  ProducerIdentity id = reg.value();
  EXPECT_NE(id.pid, 0u);
  EXPECT_EQ(id.epoch, 0);

  auto stamped = [&](int64_t seq, int32_t epoch) {
    Message m = Msg("k", "v" + std::to_string(seq));
    m.producer_id = id.pid;
    m.producer_epoch = epoch;
    m.sequence = seq;
    StampMessageCrc(m);
    return m;
  };
  EXPECT_EQ(b.Append({"t", 0}, stamped(0, 0)).value(), 0);
  EXPECT_EQ(b.Append({"t", 0}, stamped(1, 0)).value(), 1);
  // A duplicate (retried or replayed) append acks at the producer's last
  // appended offset without growing the log.
  EXPECT_EQ(b.Append({"t", 0}, stamped(1, 0)).value(), 1);
  EXPECT_EQ(b.Append({"t", 0}, stamped(0, 0)).value(), 1);
  EXPECT_EQ(b.EndOffset({"t", 0}).value(), 2);
  EXPECT_EQ(b.dups_dropped(), 2);

  // A sequence gap means lost messages — hard error, not silent reorder.
  auto gap = b.Append({"t", 0}, stamped(5, 0));
  ASSERT_FALSE(gap.ok());
  EXPECT_EQ(gap.status().code(), ErrorCode::kStateError);

  // An unregistered pid is rejected.
  Message rogue = Msg("k", "v");
  rogue.producer_id = id.pid + 999;
  rogue.producer_epoch = 0;
  rogue.sequence = 0;
  auto unknown = b.Append({"t", 0}, std::move(rogue));
  ASSERT_FALSE(unknown.ok());
  EXPECT_EQ(unknown.status().code(), ErrorCode::kStateError);
}

TEST(IdempotentProducerTest, StaleEpochIsFencedAndReplayDedupsAcrossEpochs) {
  Broker b;
  ASSERT_TRUE(b.CreateTopic("t", {.num_partitions = 1}).ok());
  ProducerIdentity e0 = b.RegisterProducer("p").value();
  auto stamped = [&](int64_t seq, int32_t epoch) {
    Message m = Msg("k", "v" + std::to_string(seq));
    m.producer_id = e0.pid;
    m.producer_epoch = epoch;
    m.sequence = seq;
    StampMessageCrc(m);
    return m;
  };
  EXPECT_EQ(b.Append({"t", 0}, stamped(0, 0)).value(), 0);

  // Re-registration models a restart: same pid, bumped epoch.
  ProducerIdentity e1 = b.RegisterProducer("p").value();
  EXPECT_EQ(e1.pid, e0.pid);
  EXPECT_EQ(e1.epoch, 1);

  // The zombie (old epoch) is fenced with a non-retryable error.
  auto fenced = b.Append({"t", 0}, stamped(1, 0));
  ASSERT_FALSE(fenced.ok());
  EXPECT_EQ(fenced.status().code(), ErrorCode::kFenced);
  EXPECT_EQ(b.fenced_appends(), 1);

  // Dedup state survives the epoch bump: the restarted incarnation's
  // deterministic replay re-sends seq 0 and it dedups instead of duplicating.
  EXPECT_EQ(b.Append({"t", 0}, stamped(0, 1)).value(), 0);
  EXPECT_EQ(b.Append({"t", 0}, stamped(1, 1)).value(), 1);
  EXPECT_EQ(b.EndOffset({"t", 0}).value(), 2);
}

TEST(IdempotentProducerTest, RestartedProducerReplaysWithoutDuplicatesAndResumes) {
  auto b = std::make_shared<Broker>();
  ASSERT_TRUE(b->CreateTopic("t", {.num_partitions = 1}).ok());

  Producer p1(b);
  ASSERT_TRUE(p1.EnableIdempotence("job.Partition 0").ok());
  EXPECT_TRUE(p1.idempotent());
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(p1.SendTo({"t", 0}, ToBytes("k"), ToBytes("m" + std::to_string(i))).ok());
  }
  EXPECT_EQ(b->EndOffset({"t", 0}).value(), 3);

  // Crash with no checkpoint: the new incarnation replays from scratch with
  // the same sequences — every send dedups, the log does not grow.
  Producer p2(b);
  ASSERT_TRUE(p2.EnableIdempotence("job.Partition 0").ok());
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(p2.SendTo({"t", 0}, ToBytes("k"), ToBytes("m" + std::to_string(i))).ok());
  }
  EXPECT_EQ(b->EndOffset({"t", 0}).value(), 3);
  EXPECT_EQ(b->dups_dropped(), 3);

  // The fenced predecessor can no longer append.
  auto stale = p1.SendTo({"t", 0}, ToBytes("k"), ToBytes("zombie"));
  ASSERT_FALSE(stale.ok());
  EXPECT_EQ(stale.status().code(), ErrorCode::kFenced);

  // Checkpointed restart: sequences resume where the checkpoint left them,
  // so new output continues the stream instead of replaying it.
  Producer p3(b);
  ASSERT_TRUE(p3.EnableIdempotence("job.Partition 0").ok());
  p3.ResumeSequences(p2.sequences());
  EXPECT_EQ(p3.SendTo({"t", 0}, ToBytes("k"), ToBytes("m3")).value(), 3);
  EXPECT_EQ(b->EndOffset({"t", 0}).value(), 4);
}

// ---------------------------------------------------------------------------
// Transactional checkpoint codec: v2 wire format + legacy compatibility
// ---------------------------------------------------------------------------

TEST(TaskCheckpointCodecTest, TransactionalRoundTripAndLegacyCompat) {
  TaskCheckpoint cp;
  cp.input_offsets = {{{"in", 0}, 5}, {{"in", 1}, 7}};
  cp.changelog_offsets = {{{"cl", 0}, 11}};
  cp.producer_sequences = {{{"out", 0}, 3}, {{"out", 1}, 9}};

  Bytes enc = CheckpointManager::EncodeTaskCheckpoint(cp);
  auto dec = CheckpointManager::DecodeTaskCheckpoint(enc);
  ASSERT_TRUE(dec.ok()) << dec.status().ToString();
  EXPECT_EQ(dec.value().input_offsets, cp.input_offsets);
  EXPECT_EQ(dec.value().changelog_offsets, cp.changelog_offsets);
  EXPECT_EQ(dec.value().producer_sequences, cp.producer_sequences);

  // Offsets-only checkpoints keep the legacy encoding byte-for-byte, so an
  // at-least-once job writes records an old reader still understands.
  TaskCheckpoint plain;
  plain.input_offsets = cp.input_offsets;
  EXPECT_EQ(CheckpointManager::EncodeTaskCheckpoint(plain),
            CheckpointManager::EncodeCheckpoint(cp.input_offsets));

  // Legacy bytes decode as a TaskCheckpoint with empty state/sequence maps.
  auto legacy = CheckpointManager::DecodeTaskCheckpoint(
      CheckpointManager::EncodeCheckpoint(cp.input_offsets));
  ASSERT_TRUE(legacy.ok());
  EXPECT_EQ(legacy.value().input_offsets, cp.input_offsets);
  EXPECT_TRUE(legacy.value().changelog_offsets.empty());
  EXPECT_TRUE(legacy.value().producer_sequences.empty());

  // The offsets-only view of a v2 record is its input-offsets map.
  auto v1_view = CheckpointManager::DecodeCheckpoint(enc);
  ASSERT_TRUE(v1_view.ok());
  EXPECT_EQ(v1_view.value(), cp.input_offsets);
}

TEST(TaskCheckpointCodecTest, WriteAndRestoreTransactionalCheckpoint) {
  auto b = std::make_shared<Broker>();
  CheckpointManager writer(b, "__cp_txn");
  ASSERT_TRUE(writer.Start().ok());
  TaskCheckpoint cp;
  cp.input_offsets = {{{"in", 0}, 42}};
  cp.changelog_offsets = {{{"cl", 0}, 17}};
  cp.producer_sequences = {{{"out", 0}, 8}};
  ASSERT_TRUE(writer.WriteTaskCheckpoint("Partition 0", cp).ok());

  // A restarted container reads all three maps back from one record.
  CheckpointManager reader(b, "__cp_txn");
  ASSERT_TRUE(reader.Start().ok());
  auto got = reader.ReadLastTaskCheckpoint("Partition 0");
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(got.value().input_offsets, cp.input_offsets);
  EXPECT_EQ(got.value().changelog_offsets, cp.changelog_offsets);
  EXPECT_EQ(got.value().producer_sequences, cp.producer_sequences);

  // A task with no checkpoint reads an empty record, not an error.
  auto none = reader.ReadLastTaskCheckpoint("Partition 9");
  ASSERT_TRUE(none.ok());
  EXPECT_TRUE(none.value().empty());
}

// ---------------------------------------------------------------------------
// CheckpointManager: one scan per container, not per task
// ---------------------------------------------------------------------------

TEST(CheckpointScanTest, RestoreScansHistoryOncePerManagerNotPerTask) {
  auto inner = std::make_shared<Broker>();
  auto fb = std::make_shared<FaultInjectingBroker>(inner, FaultPolicy{});

  CheckpointManager writer(fb, "__cp_scan");
  ASSERT_TRUE(writer.Start().ok());
  for (int round = 0; round < 6; ++round) {
    for (int t = 0; t < 8; ++t) {
      ASSERT_TRUE(writer
                      .WriteCheckpoint("Partition " + std::to_string(t),
                                       {{{"in", t}, round}})
                      .ok());
    }
  }

  // A fresh manager models a restarted container restoring all 8 tasks.
  CheckpointManager reader(fb, "__cp_scan");
  ASSERT_TRUE(reader.Start().ok());
  int64_t before = fb->FetchCount("__cp_scan");
  for (int t = 0; t < 8; ++t) {
    auto cp = reader.ReadLastCheckpoint("Partition " + std::to_string(t));
    ASSERT_TRUE(cp.ok());
    EXPECT_EQ(cp.value().at({"in", t}), 5);  // latest round wins
  }
  // All 48 records fit one fetch batch: 8 task restores cost 1 fetch total.
  EXPECT_EQ(fb->FetchCount("__cp_scan") - before, 1);

  // Re-reads are cache hits; a manager's own write advances its frontier,
  // so reading it back refetches nothing.
  ASSERT_TRUE(reader.ReadLastCheckpoint("Partition 3").ok());
  ASSERT_TRUE(reader.WriteCheckpoint("Partition 0", {{{"in", 0}, 99}}).ok());
  auto cp = reader.ReadLastCheckpoint("Partition 0");
  ASSERT_TRUE(cp.ok());
  EXPECT_EQ(cp.value().at({"in", 0}), 99);
  EXPECT_EQ(fb->FetchCount("__cp_scan") - before, 1);
}

TEST(CheckpointScanTest, WritesAndRestoreRetryTransientFailures) {
  auto inner = std::make_shared<Broker>();
  auto fb = std::make_shared<FaultInjectingBroker>(inner, FaultPolicy{});
  CheckpointManager mgr(fb, "__cp_retry");
  mgr.SetRetryPolicy(RetryPolicy{.max_attempts = 4, .backoff_ms = 1, .backoff_max_ms = 2});
  ASSERT_TRUE(mgr.Start().ok());
  fb->FailNextAppends(2);
  ASSERT_TRUE(mgr.WriteCheckpoint("Partition 0", {{{"in", 0}, 7}}).ok());

  CheckpointManager reader(fb, "__cp_retry");
  reader.SetRetryPolicy(RetryPolicy{.max_attempts = 4, .backoff_ms = 1, .backoff_max_ms = 2});
  ASSERT_TRUE(reader.Start().ok());
  fb->FailNextFetches(2);
  auto cp = reader.ReadLastCheckpoint("Partition 0");
  ASSERT_TRUE(cp.ok()) << cp.status().ToString();
  EXPECT_EQ(cp.value().at({"in", 0}), 7);
}

// ---------------------------------------------------------------------------
// SQL-level fixture: windowed job + fault broker + supervisor
// ---------------------------------------------------------------------------

class RecoveryTest : public ::testing::Test {
 protected:
  void MakeEnv() {
    env_ = SamzaSqlEnvironment::Make();
    ASSERT_TRUE(workload::SetupPaperSources(*env_, kPartitions).ok());
  }

  void ProduceOrders(int64_t count) {
    workload::OrdersGeneratorOptions options;
    options.num_products = 20;
    workload::OrdersGenerator gen(*env_, options);
    ASSERT_TRUE(gen.Produce(count).ok());
    last_rowtime_ = gen.last_rowtime();
  }

  // One far-future order per partition so event-time watermarks close every
  // open window in every task (same trick as the e2e suite).
  void ProduceWatermarkSentinels(int64_t future_ms) {
    auto schema = env_->catalog->GetSource("Orders").value().schema;
    AvroRowSerde serde(schema);
    Producer producer(env_->broker, env_->clock);
    for (int32_t p = 0; p < kPartitions; ++p) {
      Row row{Value(last_rowtime_ + future_ms), Value(int32_t{9999}),
              Value(int64_t{-1}), Value(int32_t{0}), Value("sentinel")};
      ASSERT_TRUE(
          producer.SendTo({"Orders", p}, Bytes{}, serde.SerializeToBytes(row)).ok());
    }
  }

  // Ground truth for the tumbling query: the batch oracle, evaluated before
  // any fault injection is armed, as a deduped set without sentinel groups.
  std::set<std::string> OracleWindows() {
    QueryExecutor oracle(env_);
    auto result = oracle.Execute(kTumblingBatch);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    return DedupNonSentinel(result.value().rows);
  }

  // Wrap the environment's broker in a fault injector. Every job submitted
  // afterwards (and every recovery path) runs through it.
  void WrapFaults(FaultPolicy policy) {
    fault_ = std::make_shared<FaultInjectingBroker>(env_->broker, std::move(policy));
    env_->broker = fault_;
  }

  static Config SupervisedDefaults() {
    Config defaults;
    defaults.SetInt(cfg::kContainerCount, 2);
    defaults.SetInt(cfg::kCommitEveryMessages, 50);
    defaults.SetInt(cfg::kContainerRestartMax, 5);
    defaults.SetInt(cfg::kContainerRestartBackoffMs, 1);
    defaults.SetInt(cfg::kContainerRestartBackoffMaxMs, 4);
    defaults.SetInt(cfg::kRetryMaxAttempts, 3);
    defaults.SetInt(cfg::kRetryBackoffMs, 1);
    defaults.SetInt(cfg::kRetryBackoffMaxMs, 2);
    return defaults;
  }

  static std::set<std::string> DedupNonSentinel(const std::vector<Row>& rows) {
    std::set<std::string> out;
    for (const Row& r : rows) {
      if (r[0] == Value(int32_t{9999})) continue;  // sentinel group
      out.insert(RowToString(r));
    }
    return out;
  }

  // Counter sum across containers, matched by metric-name suffix.
  static int64_t SumCounters(JobRunner* job, const std::string& suffix) {
    MetricsSnapshot snap = job->metrics_registry()->Snapshot();
    int64_t total = 0;
    for (const auto& [name, value] : snap.counters) {
      if (name.size() >= suffix.size() &&
          name.compare(name.size() - suffix.size(), suffix.size(), suffix) == 0) {
        total += value;
      }
    }
    return total;
  }

  EnvironmentPtr env_;
  std::shared_ptr<FaultInjectingBroker> fault_;
  std::unique_ptr<QueryExecutor> executor_;
  int64_t last_rowtime_ = 0;
};

// Tentpole scenario 1: kill a container mid-window. The supervisor (not a
// manual RestartContainer) brings it back through Restore + checkpoint
// replay, and the deduped output equals the uninterrupted oracle.
TEST_F(RecoveryTest, SupervisorRestartsKilledContainerAndOutputMatchesOracle) {
  MakeEnv();
  ProduceOrders(1600);
  ProduceWatermarkSentinels(3'600'000);
  std::set<std::string> expected = OracleWindows();

  executor_ = std::make_unique<QueryExecutor>(env_, SupervisedDefaults());
  auto submitted = executor_->Execute(kTumblingStream);
  ASSERT_TRUE(submitted.ok()) << submitted.status().ToString();
  JobRunner* job = executor_->job(submitted.value().job_index);
  ASSERT_NE(job, nullptr);

  // Kill after partial progress: open windows and uncheckpointed positions
  // die with the container.
  ASSERT_TRUE(job->container(0)->RunUntilCaughtUp(400).ok());
  ASSERT_TRUE(job->KillContainer(0).ok());

  auto ran = executor_->RunJobsUntilQuiescent();
  ASSERT_TRUE(ran.ok()) << ran.status().ToString();

  auto rows = executor_->ReadOutputRows(submitted.value().output_topic);
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  EXPECT_EQ(DedupNonSentinel(rows.value()), expected);
  EXPECT_GT(expected.size(), 10u);  // sanity: many windows closed

  EXPECT_GE(job->TotalRestarts(), 1);
  EXPECT_GE(job->ContainerRestarts(0), 1);
  EXPECT_GE(SumCounters(job, ".supervisor.container_restarts"), 1);
  // The restart count is visible to the monitor (/jobs, /readyz reason).
  auto views = executor_->CollectJobViews();
  ASSERT_EQ(views.size(), 1u);
  EXPECT_GE(views[0].restarts, 1);
}

// Tentpole scenario 2: crash after output flush but before the checkpoint
// lands. Forced append failures are scoped to the checkpoint topic, so the
// commit fails with outputs already flushed; replay produces duplicate
// window emissions which dedup back to the oracle (at-least-once).
TEST_F(RecoveryTest, CrashBetweenOutputFlushAndCheckpointDedupsToOracle) {
  MakeEnv();
  ProduceOrders(1600);
  ProduceWatermarkSentinels(3'600'000);
  std::set<std::string> expected = OracleWindows();

  FaultPolicy policy;
  policy.topics = {"__cp_recovery"};
  WrapFaults(policy);

  Config defaults = SupervisedDefaults();
  defaults.Set(cfg::kCheckpointTopic, "__cp_recovery");
  executor_ = std::make_unique<QueryExecutor>(env_, defaults);
  auto submitted = executor_->Execute(kTumblingStream);
  ASSERT_TRUE(submitted.ok()) << submitted.status().ToString();
  JobRunner* job = executor_->job(submitted.value().job_index);

  // retry.max.attempts=3, so 6 tokens sink two whole checkpoint writes
  // (initial attempt + 2 retries each): two separate commit-time crashes.
  fault_->FailNextAppends(6);
  auto ran = executor_->RunJobsUntilQuiescent();
  ASSERT_TRUE(ran.ok()) << ran.status().ToString();
  EXPECT_GE(job->TotalRestarts(), 1);
  EXPECT_GE(SumCounters(job, ".giveups"), 1);

  auto rows = executor_->ReadOutputRows(submitted.value().output_topic);
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  EXPECT_EQ(DedupNonSentinel(rows.value()), expected);
}

// Tentpole scenario 3: transient fetch failures hit while the restarted
// container is restoring (changelog replay + checkpoint read). The recovery
// path itself retries and completes; a second kill later exercises
// kill-restart-kill.
TEST_F(RecoveryTest, RecoveryPathRetriesTransientFailuresDuringRestore) {
  MakeEnv();
  ProduceOrders(1200);
  ProduceWatermarkSentinels(3'600'000);
  std::set<std::string> expected = OracleWindows();

  WrapFaults(FaultPolicy{});  // forced failures only
  executor_ = std::make_unique<QueryExecutor>(env_, SupervisedDefaults());
  auto submitted = executor_->Execute(kTumblingStream);
  ASSERT_TRUE(submitted.ok()) << submitted.status().ToString();
  JobRunner* job = executor_->job(submitted.value().job_index);

  ASSERT_TRUE(job->container(0)->RunUntilCaughtUp(300).ok());
  ASSERT_TRUE(job->KillContainer(0).ok());
  // The next data fetches — the restarted container's restore reads — fail
  // twice; retry.max.attempts=3 absorbs them.
  fault_->FailNextFetches(2);
  auto ran = executor_->RunJobsUntilQuiescent();
  ASSERT_TRUE(ran.ok()) << ran.status().ToString();
  EXPECT_GE(job->TotalRestarts(), 1);

  // Kill again after full quiescence, append more input, recover again.
  ASSERT_TRUE(job->KillContainer(1).ok());
  ran = executor_->RunJobsUntilQuiescent();
  ASSERT_TRUE(ran.ok()) << ran.status().ToString();
  EXPECT_GE(job->TotalRestarts(), 2);

  auto rows = executor_->ReadOutputRows(submitted.value().output_topic);
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  EXPECT_EQ(DedupNonSentinel(rows.value()), expected);
}

// A permanently blacked-out input partition makes the owning container
// crash-loop; the restart budget bounds the loop and the job surfaces a
// clean error instead of hanging.
TEST_F(RecoveryTest, RestartBudgetExhaustionSurfacesCleanError) {
  MakeEnv();
  ProduceOrders(400);
  WrapFaults(FaultPolicy{});

  Config defaults = SupervisedDefaults();
  defaults.SetInt(cfg::kContainerRestartMax, 2);
  executor_ = std::make_unique<QueryExecutor>(env_, defaults);
  auto submitted = executor_->Execute(kTumblingStream);
  ASSERT_TRUE(submitted.ok()) << submitted.status().ToString();
  JobRunner* job = executor_->job(submitted.value().job_index);

  fault_->BlackoutPartition({"Orders", 0});
  auto ran = executor_->RunJobsUntilQuiescent();
  ASSERT_FALSE(ran.ok());
  EXPECT_NE(ran.status().message().find("restart budget exhausted"),
            std::string::npos)
      << ran.status().ToString();
  EXPECT_EQ(job->TotalRestarts(), 2);
  auto views = executor_->CollectJobViews();
  ASSERT_EQ(views.size(), 1u);
  EXPECT_EQ(views[0].restarts, 2);
}

// The same budget exhaustion under the threaded executor must surface the
// first real crash error, not a generic wrapper: the terminal status names
// both the exhausted budget and the blackout that caused the crash loop.
// (Before the fix, the threaded path reported only
// "a container failed during threaded run".)
TEST_F(RecoveryTest, ThreadedBudgetExhaustionCarriesFirstCrashError) {
  MakeEnv();
  ProduceOrders(400);
  WrapFaults(FaultPolicy{});

  Config defaults = SupervisedDefaults();
  defaults.SetInt(cfg::kContainerRestartMax, 2);
  defaults.Set(cfg::kExecutorMode, "threaded");
  executor_ = std::make_unique<QueryExecutor>(env_, defaults);
  auto submitted = executor_->Execute(kTumblingStream);
  ASSERT_TRUE(submitted.ok()) << submitted.status().ToString();
  JobRunner* job = executor_->job(submitted.value().job_index);

  fault_->BlackoutPartition({"Orders", 0});
  auto ran = executor_->RunJobsUntilQuiescent();
  ASSERT_FALSE(ran.ok());
  const std::string msg = ran.status().message();
  EXPECT_NE(msg.find("restart budget exhausted"), std::string::npos) << msg;
  EXPECT_NE(msg.find("partition blackout"), std::string::npos) << msg;
  EXPECT_EQ(msg.find("a container failed during threaded run"),
            std::string::npos)
      << msg;
  EXPECT_EQ(job->TotalRestarts(), 2);
}

// ---------------------------------------------------------------------------
// task.error.policy: poison messages
// ---------------------------------------------------------------------------

class PoisonTest : public RecoveryTest {
 protected:
  // 400 valid orders plus one undeserializable record on partition 2.
  void SeedPoison() {
    MakeEnv();
    ProduceOrders(400);
    Producer raw(env_->broker);
    poison_offset_ = env_->broker->EndOffset({"Orders", 2}).value();
    ASSERT_TRUE(raw.SendTo({"Orders", 2}, Bytes{}, Bytes{0xff}).ok());
  }

  Config PolicyDefaults(const std::string& policy) {
    Config defaults;
    defaults.SetInt(cfg::kContainerCount, 2);
    defaults.SetInt(cfg::kCommitEveryMessages, 50);
    defaults.Set(cfg::kTaskErrorPolicy, policy);
    return defaults;
  }

  static constexpr const char* kProjection =
      "SELECT STREAM rowtime, productId, units FROM Orders";

  int64_t poison_offset_ = 0;
};

TEST_F(PoisonTest, FailPolicySurfacesTheDeserializationError) {
  SeedPoison();
  executor_ = std::make_unique<QueryExecutor>(env_, PolicyDefaults("fail"));
  auto submitted = executor_->Execute(kProjection);
  ASSERT_TRUE(submitted.ok()) << submitted.status().ToString();
  auto ran = executor_->RunJobsUntilQuiescent();
  ASSERT_FALSE(ran.ok());
  EXPECT_NE(ran.status().code(), ErrorCode::kUnavailable);
}

// Poison is deterministic: with policy=fail the supervisor replays straight
// back into the same message, so the restart budget must terminate the loop.
TEST_F(PoisonTest, FailPolicyUnderSupervisorExhaustsBudgetNotForever) {
  SeedPoison();
  Config defaults = PolicyDefaults("fail");
  defaults.SetInt(cfg::kContainerRestartMax, 2);
  defaults.SetInt(cfg::kContainerRestartBackoffMs, 1);
  executor_ = std::make_unique<QueryExecutor>(env_, defaults);
  auto submitted = executor_->Execute(kProjection);
  ASSERT_TRUE(submitted.ok()) << submitted.status().ToString();
  auto ran = executor_->RunJobsUntilQuiescent();
  ASSERT_FALSE(ran.ok());
  EXPECT_NE(ran.status().message().find("restart budget exhausted"),
            std::string::npos)
      << ran.status().ToString();
  EXPECT_EQ(executor_->job(submitted.value().job_index)->TotalRestarts(), 2);
}

TEST_F(PoisonTest, SkipPolicyDropsPoisonAndProcessesEverythingElse) {
  SeedPoison();
  executor_ = std::make_unique<QueryExecutor>(env_, PolicyDefaults("skip"));
  auto submitted = executor_->Execute(kProjection);
  ASSERT_TRUE(submitted.ok()) << submitted.status().ToString();
  auto ran = executor_->RunJobsUntilQuiescent();
  ASSERT_TRUE(ran.ok()) << ran.status().ToString();
  auto rows = executor_->ReadOutputRows(submitted.value().output_topic);
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  EXPECT_EQ(rows.value().size(), 400u);  // every valid row, poison dropped
  EXPECT_EQ(SumCounters(executor_->job(submitted.value().job_index), ".dropped"), 1);
}

TEST_F(PoisonTest, DeadLetterPolicyRoutesPoisonWithProvenance) {
  SeedPoison();
  Config defaults = PolicyDefaults("dead-letter");
  defaults.Set(cfg::kTaskDlqTopic, "orders.dlq");
  executor_ = std::make_unique<QueryExecutor>(env_, defaults);
  auto submitted = executor_->Execute(kProjection);
  ASSERT_TRUE(submitted.ok()) << submitted.status().ToString();
  auto ran = executor_->RunJobsUntilQuiescent();
  ASSERT_TRUE(ran.ok()) << ran.status().ToString();
  auto rows = executor_->ReadOutputRows(submitted.value().output_topic);
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  EXPECT_EQ(rows.value().size(), 400u);
  EXPECT_EQ(SumCounters(executor_->job(submitted.value().job_index), ".dropped"), 1);

  // The DLQ carries the original bytes plus provenance and the error text,
  // on the same partition as the origin.
  ASSERT_TRUE(env_->broker->HasTopic("orders.dlq"));
  auto batch = env_->broker->Fetch({"orders.dlq", 2}, 0, 16);
  ASSERT_TRUE(batch.ok());
  ASSERT_EQ(batch.value().size(), 1u);
  auto record = DecodeDeadLetter(batch.value()[0].message.value);
  ASSERT_TRUE(record.ok()) << record.status().ToString();
  EXPECT_EQ(record.value().origin, (StreamPartition{"Orders", 2}));
  EXPECT_EQ(record.value().offset, poison_offset_);
  EXPECT_EQ(record.value().value, Bytes{0xff});
  EXPECT_FALSE(record.value().error.empty());
  EXPECT_FALSE(record.value().task_name.empty());
}

TEST_F(PoisonTest, UnknownPolicyIsRejectedAtStart) {
  auto parsed = ParseTaskErrorPolicy("quarantine");
  EXPECT_FALSE(parsed.ok());
  EXPECT_EQ(ParseTaskErrorPolicy("").value(), TaskErrorPolicy::kFail);
  EXPECT_EQ(ParseTaskErrorPolicy("skip").value(), TaskErrorPolicy::kSkip);
  EXPECT_EQ(ParseTaskErrorPolicy("dead-letter").value(), TaskErrorPolicy::kDeadLetter);
  EXPECT_FALSE(ParseDeliveryMode("exactly-twice").ok());
  EXPECT_EQ(ParseDeliveryMode("").value(), DeliveryMode::kAtLeastOnce);
  EXPECT_EQ(ParseDeliveryMode("at-least-once").value(), DeliveryMode::kAtLeastOnce);
  EXPECT_EQ(ParseDeliveryMode("exactly-once").value(), DeliveryMode::kExactlyOnce);
  EXPECT_FALSE(ParseTaskCorruptPolicy("skip").ok());
  EXPECT_EQ(ParseTaskCorruptPolicy("").value(), TaskCorruptPolicy::kFail);
  EXPECT_EQ(ParseTaskCorruptPolicy("dead-letter").value(),
            TaskCorruptPolicy::kDeadLetter);
}

// A dead-lettered record keeps the trace context of the message that carried
// it, so `SHOW DLQ` / replay tooling can correlate it with the ingest trace.
TEST_F(PoisonTest, DeadLetterPreservesTraceContext) {
  Tracer::Instance().Configure(1.0, 4096);  // the poison send starts a trace
  SeedPoison();
  Tracer::Instance().Configure(0.0, 4096);

  // The original message on the log carries a valid trace context.
  auto original = env_->broker->Fetch({"Orders", 2}, poison_offset_, 1);
  ASSERT_TRUE(original.ok());
  ASSERT_EQ(original.value().size(), 1u);
  TraceContext sent = original.value()[0].message.trace;
  ASSERT_TRUE(sent.valid());

  Config defaults = PolicyDefaults("dead-letter");
  defaults.Set(cfg::kTaskDlqTopic, "traced.dlq");
  executor_ = std::make_unique<QueryExecutor>(env_, defaults);
  auto submitted = executor_->Execute(kProjection);
  ASSERT_TRUE(submitted.ok()) << submitted.status().ToString();
  auto ran = executor_->RunJobsUntilQuiescent();
  ASSERT_TRUE(ran.ok()) << ran.status().ToString();

  auto batch = env_->broker->Fetch({"traced.dlq", 2}, 0, 16);
  ASSERT_TRUE(batch.ok());
  ASSERT_EQ(batch.value().size(), 1u);
  auto record = DecodeDeadLetter(batch.value()[0].message.value);
  ASSERT_TRUE(record.ok()) << record.status().ToString();
  EXPECT_EQ(record.value().trace.trace_id, sent.trace_id);
  EXPECT_TRUE(record.value().trace.sampled);
}

// ---------------------------------------------------------------------------
// Exactly-once delivery: kill/restart + zombie fencing over the threaded
// driver; output must equal the batch oracle EXACTLY (no dedup applied).
// ---------------------------------------------------------------------------

class ExactlyOnceSqlTest : public RecoveryTest {
 protected:
  static std::multiset<std::string> MultisetNonSentinel(const std::vector<Row>& rows) {
    std::multiset<std::string> out;
    for (const Row& r : rows) {
      if (r[0] == Value(int32_t{9999})) continue;
      out.insert(RowToString(r));
    }
    return out;
  }
};

TEST_F(ExactlyOnceSqlTest, ThreadedKillRestartMatchesOracleExactlyAndFencesZombie) {
  MakeEnv();
  ProduceOrders(1600);
  ProduceWatermarkSentinels(3'600'000);
  std::set<std::string> expected = OracleWindows();

  Config defaults = SupervisedDefaults();
  defaults.Set(cfg::kTaskDelivery, "exactly-once");
  defaults.Set(cfg::kCheckpointTopic, "__cp_eo_sql");
  executor_ = std::make_unique<QueryExecutor>(env_, defaults);
  auto submitted = executor_->Execute(kTumblingStream);
  ASSERT_TRUE(submitted.ok()) << submitted.status().ToString();
  JobRunner* job = executor_->job(submitted.value().job_index);
  ASSERT_NE(job, nullptr);

  // Kill container 0 mid-batch: uncommitted state and positions die with it,
  // with some of its output already flushed to the broker.
  ASSERT_TRUE(job->container(0)->RunUntilCaughtUp(400).ok());
  ASSERT_TRUE(job->KillContainer(0).ok());

  // A zombie incarnation steals the producer name of a task that is still
  // live (container 1 owns partition 1). The live task's next stamped append
  // is fenced — it crashes without checkpointing, the supervisor restarts
  // it, and the restart's registration fences the zombie right back.
  Producer zombie(env_->broker);
  ASSERT_TRUE(
      zombie.EnableIdempotence(job->job_name() + ".Partition 1").ok());

  auto ran = job->RunThreadedUntilQuiescent();
  ASSERT_TRUE(ran.ok()) << ran.status().ToString();
  EXPECT_GE(job->TotalRestarts(), 1);

  // The zombie's append is rejected with the non-retryable fencing error and
  // leaves no trace in the log.
  const std::string& out_topic = submitted.value().output_topic;
  int64_t end_before = env_->broker->EndOffset({out_topic, 0}).value();
  auto stale = zombie.SendTo({out_topic, 0}, Bytes{}, ToBytes("zombie"));
  ASSERT_FALSE(stale.ok());
  EXPECT_EQ(stale.status().code(), ErrorCode::kFenced);
  EXPECT_EQ(env_->broker->EndOffset({out_topic, 0}).value(), end_before);
  EXPECT_GE(env_->broker->fenced_appends(), 2);  // live task + zombie
  EXPECT_GE(SumCounters(job, ".producer_fenced"), 1);

  // EXACT equality, not dedup-equality: every oracle window appears exactly
  // once. Replayed emissions deduplicated at the broker.
  auto rows = executor_->ReadOutputRows(out_topic);
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  std::multiset<std::string> got = MultisetNonSentinel(rows.value());
  EXPECT_EQ(got.size(), expected.size());
  EXPECT_EQ(std::set<std::string>(got.begin(), got.end()), expected);
  EXPECT_GT(expected.size(), 10u);
}

// The zombie-fencing scenario above, run *continuously*: kills and a zombie
// registration land while pool workers are actively driving containers and
// a load thread keeps appending orders mid-run. The raw output must still
// be byte-equal to the batch oracle (computed after all input is on the
// log). Seeds vary the kill schedule and the generator stream.
class eo_threaded_chaos : public ExactlyOnceSqlTest,
                          public ::testing::WithParamInterface<int> {};

TEST_P(eo_threaded_chaos, ContinuousKillsUnderLoadStayByteEqualToOracle) {
  const int seed = GetParam();
  MakeEnv();

  // First tranche lands before the job starts; the load thread appends the
  // rest while the threaded run is in flight.
  workload::OrdersGeneratorOptions options;
  options.num_products = 20;
  options.seed = 42 + static_cast<uint64_t>(seed);
  workload::OrdersGenerator gen(*env_, options);
  ASSERT_TRUE(gen.Produce(800).ok());

  Config defaults = SupervisedDefaults();
  defaults.SetInt(cfg::kContainerRestartMax, 32);
  defaults.Set(cfg::kTaskDelivery, "exactly-once");
  defaults.Set(cfg::kCheckpointTopic, "__cp_eo_chaos");
  defaults.Set(cfg::kExecutorMode, "threaded");
  executor_ = std::make_unique<QueryExecutor>(env_, defaults);
  auto submitted = executor_->Execute(kTumblingStream);
  ASSERT_TRUE(submitted.ok()) << submitted.status().ToString();
  JobRunner* job = executor_->job(submitted.value().job_index);
  ASSERT_NE(job, nullptr);

  std::atomic<bool> load_done{false};
  std::thread load([&] {
    for (int i = 0; i < 8; ++i) {
      auto produced = gen.Produce(100);
      EXPECT_TRUE(produced.ok()) << produced.status().ToString();
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    load_done.store(true);
  });

  // Chaos: seed-scheduled kills of random containers plus one mid-run
  // zombie registration stealing a live task's producer name. Kills may
  // land mid-batch, between rounds, or on an already-dead slot — all fine.
  std::atomic<bool> chaos_done{false};
  std::thread chaos([&] {
    std::mt19937_64 rng(0xc4a05ull + static_cast<uint64_t>(seed));
    for (int i = 0; i < 4; ++i) {
      std::this_thread::sleep_for(
          std::chrono::milliseconds(1 + static_cast<int>(rng() % 4)));
      (void)job->KillContainer(static_cast<int32_t>(rng() % 2));
      if (i == 1) {
        Producer zombie(env_->broker);
        EXPECT_TRUE(
            zombie.EnableIdempotence(job->job_name() + ".Partition 1").ok());
      }
    }
    chaos_done.store(true);
  });

  // Drive to quiescence repeatedly until both threads finish — a run can go
  // quiescent while more input or kills are still on the way. Collect any
  // error and join before asserting so the threads never outlive the test.
  Status run_error;
  while (!load_done.load() || !chaos_done.load()) {
    auto ran = executor_->RunJobsUntilQuiescent();
    if (!ran.ok()) {
      run_error = ran.status();
      break;
    }
  }
  load.join();
  chaos.join();
  ASSERT_TRUE(run_error.ok()) << run_error.ToString();

  // All input is on the log now: close every window, compute the oracle
  // over the complete history, and drain the streaming job.
  last_rowtime_ = gen.last_rowtime();
  ProduceWatermarkSentinels(3'600'000);
  std::set<std::string> expected = OracleWindows();
  auto ran = executor_->RunJobsUntilQuiescent();
  ASSERT_TRUE(ran.ok()) << ran.status().ToString();
  EXPECT_GE(job->TotalRestarts(), 1);

  auto rows = executor_->ReadOutputRows(submitted.value().output_topic);
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  std::multiset<std::string> got = MultisetNonSentinel(rows.value());
  EXPECT_EQ(got.size(), expected.size());
  EXPECT_EQ(std::set<std::string>(got.begin(), got.end()), expected);
  EXPECT_GT(expected.size(), 10u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, eo_threaded_chaos, ::testing::Range(0, 4));

// ---------------------------------------------------------------------------
// Seeded soak: random fault storm + adversarial kill, 8 seeds.
// Run selectively with `ctest -R recovery_soak`.
// ---------------------------------------------------------------------------

class recovery_soak : public ::testing::TestWithParam<int> {};

TEST_P(recovery_soak, WindowedQuerySurvivesSeededFaultStorm) {
  const int seed = GetParam();
  auto env = SamzaSqlEnvironment::Make();
  ASSERT_TRUE(workload::SetupPaperSources(*env, kPartitions).ok());

  workload::OrdersGeneratorOptions options;
  options.num_products = 20;
  workload::OrdersGenerator gen(*env, options);
  ASSERT_TRUE(gen.Produce(600).ok());
  {
    auto schema = env->catalog->GetSource("Orders").value().schema;
    AvroRowSerde serde(schema);
    Producer producer(env->broker, env->clock);
    for (int32_t p = 0; p < kPartitions; ++p) {
      Row row{Value(gen.last_rowtime() + 3'600'000), Value(int32_t{9999}),
              Value(int64_t{-1}), Value(int32_t{0}), Value("sentinel")};
      ASSERT_TRUE(
          producer.SendTo({"Orders", p}, Bytes{}, serde.SerializeToBytes(row)).ok());
    }
  }

  // Oracle before faults are armed (the batch evaluator is not retried).
  std::set<std::string> expected;
  {
    QueryExecutor oracle(env);
    auto result = oracle.Execute(kTumblingBatch);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    for (const Row& r : result.value().rows) {
      if (r[0] == Value(int32_t{9999})) continue;
      expected.insert(RowToString(r));
    }
  }

  FaultPolicy policy;
  policy.seed = 0x5eedull + static_cast<uint64_t>(seed);
  policy.append_fail_rate = 0.03;
  policy.fetch_fail_rate = 0.03;
  policy.latency_nanos = 1000;
  policy.latency_rate = 0.02;
  policy.topics = {"Orders", "__cp_soak"};
  auto fault = std::make_shared<FaultInjectingBroker>(env->broker, policy);
  env->broker = fault;

  Config defaults;
  defaults.SetInt(cfg::kContainerCount, 2);
  defaults.SetInt(cfg::kCommitEveryMessages, 50);
  defaults.Set(cfg::kCheckpointTopic, "__cp_soak");
  defaults.SetInt(cfg::kRetryMaxAttempts, 6);
  defaults.SetInt(cfg::kRetryBackoffMs, 1);
  defaults.SetInt(cfg::kRetryBackoffMaxMs, 4);
  defaults.SetInt(cfg::kContainerRestartMax, 8);
  defaults.SetInt(cfg::kContainerRestartBackoffMs, 1);
  defaults.SetInt(cfg::kContainerRestartBackoffMaxMs, 4);
  QueryExecutor executor(env, defaults);

  auto submitted = executor.Execute(kTumblingStream);
  ASSERT_TRUE(submitted.ok()) << submitted.status().ToString();
  JobRunner* job = executor.job(submitted.value().job_index);

  // Seed-dependent adversarial kill point (a crash here is fine too — the
  // container is then already dead and the supervisor handles it).
  (void)job->container(0)->RunUntilCaughtUp(60 + 40 * seed);
  (void)job->KillContainer(0);

  auto ran = executor.RunJobsUntilQuiescent();
  ASSERT_TRUE(ran.ok()) << ran.status().ToString();
  EXPECT_GE(job->TotalRestarts(), 1);

  auto rows = executor.ReadOutputRows(submitted.value().output_topic);
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  std::set<std::string> got;
  for (const Row& r : rows.value()) {
    if (r[0] == Value(int32_t{9999})) continue;
    got.insert(RowToString(r));
  }
  EXPECT_EQ(got, expected);
}

INSTANTIATE_TEST_SUITE_P(Seeds, recovery_soak, ::testing::Range(0, 8));

// ---------------------------------------------------------------------------
// Exactly-once soak: the same seeded fault storm PLUS payload corruption on
// the input topic, under task.delivery=exactly-once. The bar is higher than
// the at-least-once soak's set-equality: the raw output must be byte-equal
// to the batch oracle — zero duplicates and zero corrupt records downstream
// (each corruption detection crashes the container; the replay refetches the
// clean log copy). Run with `ctest -R recovery_soak`.
// ---------------------------------------------------------------------------

class recovery_soak_exactly_once : public ::testing::TestWithParam<int> {};

TEST_P(recovery_soak_exactly_once, WindowedQueryIsByteEqualToOracleUnderCorruption) {
  const int seed = GetParam();
  auto env = SamzaSqlEnvironment::Make();
  ASSERT_TRUE(workload::SetupPaperSources(*env, kPartitions).ok());

  workload::OrdersGeneratorOptions options;
  options.num_products = 20;
  workload::OrdersGenerator gen(*env, options);
  ASSERT_TRUE(gen.Produce(600).ok());
  {
    auto schema = env->catalog->GetSource("Orders").value().schema;
    AvroRowSerde serde(schema);
    Producer producer(env->broker, env->clock);
    for (int32_t p = 0; p < kPartitions; ++p) {
      Row row{Value(gen.last_rowtime() + 3'600'000), Value(int32_t{9999}),
              Value(int64_t{-1}), Value(int32_t{0}), Value("sentinel")};
      ASSERT_TRUE(
          producer.SendTo({"Orders", p}, Bytes{}, serde.SerializeToBytes(row)).ok());
    }
  }

  std::set<std::string> expected;
  {
    QueryExecutor oracle(env);
    auto result = oracle.Execute(kTumblingBatch);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    for (const Row& r : result.value().rows) {
      if (r[0] == Value(int32_t{9999})) continue;
      expected.insert(RowToString(r));
    }
  }

  FaultPolicy policy;
  policy.seed = 0xec0ull + static_cast<uint64_t>(seed);
  policy.append_fail_rate = 0.03;
  policy.fetch_fail_rate = 0.03;
  policy.latency_nanos = 1000;
  policy.latency_rate = 0.02;
  policy.topics = {"Orders", "__cp_soak_eo"};
  // Bit-flip corruption on input fetches only; every detection costs one
  // container restart under the default fail policy, so the budget is wider
  // than the at-least-once soak's.
  policy.corrupt_rate = 0.001;
  policy.corrupt_topics = {"Orders"};
  auto fault = std::make_shared<FaultInjectingBroker>(env->broker, policy);
  env->broker = fault;

  Config defaults;
  defaults.SetInt(cfg::kContainerCount, 2);
  defaults.SetInt(cfg::kCommitEveryMessages, 50);
  defaults.Set(cfg::kTaskDelivery, "exactly-once");
  defaults.Set(cfg::kCheckpointTopic, "__cp_soak_eo");
  defaults.SetInt(cfg::kRetryMaxAttempts, 6);
  defaults.SetInt(cfg::kRetryBackoffMs, 1);
  defaults.SetInt(cfg::kRetryBackoffMaxMs, 4);
  defaults.SetInt(cfg::kContainerRestartMax, 24);
  defaults.SetInt(cfg::kContainerRestartBackoffMs, 1);
  defaults.SetInt(cfg::kContainerRestartBackoffMaxMs, 4);
  QueryExecutor executor(env, defaults);

  auto submitted = executor.Execute(kTumblingStream);
  ASSERT_TRUE(submitted.ok()) << submitted.status().ToString();
  JobRunner* job = executor.job(submitted.value().job_index);

  (void)job->container(0)->RunUntilCaughtUp(60 + 40 * seed);
  (void)job->KillContainer(0);

  auto ran = executor.RunJobsUntilQuiescent();
  ASSERT_TRUE(ran.ok()) << ran.status().ToString();
  EXPECT_GE(job->TotalRestarts(), 1);

  auto rows = executor.ReadOutputRows(submitted.value().output_topic);
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  std::multiset<std::string> got;
  for (const Row& r : rows.value()) {
    if (r[0] == Value(int32_t{9999})) continue;
    got.insert(RowToString(r));
  }
  // Byte-equality with the oracle: each window exactly once, nothing extra.
  std::multiset<std::string> expected_ms(expected.begin(), expected.end());
  EXPECT_EQ(got, expected_ms);
}

INSTANTIATE_TEST_SUITE_P(Seeds, recovery_soak_exactly_once, ::testing::Range(0, 8));

}  // namespace
}  // namespace sqs::core
