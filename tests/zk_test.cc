#include <gtest/gtest.h>

#include "zk/zookeeper.h"

namespace sqs {
namespace {

TEST(ZkTest, CreateGet) {
  ZooKeeperSim zk;
  ASSERT_TRUE(zk.Create("/a", "va").ok());
  EXPECT_EQ(zk.Get("/a").value(), "va");
}

TEST(ZkTest, CreateRequiresParent) {
  ZooKeeperSim zk;
  EXPECT_EQ(zk.Create("/a/b", "x").code(), ErrorCode::kNotFound);
  ASSERT_TRUE(zk.Create("/a", "").ok());
  EXPECT_TRUE(zk.Create("/a/b", "x").ok());
}

TEST(ZkTest, CreateRecursiveMakesParents) {
  ZooKeeperSim zk;
  ASSERT_TRUE(zk.CreateRecursive("/samzasql/queries/q1/sql", "SELECT 1").ok());
  EXPECT_TRUE(zk.Exists("/samzasql"));
  EXPECT_TRUE(zk.Exists("/samzasql/queries/q1"));
  EXPECT_EQ(zk.Get("/samzasql/queries/q1/sql").value(), "SELECT 1");
}

TEST(ZkTest, DuplicateCreateFails) {
  ZooKeeperSim zk;
  ASSERT_TRUE(zk.Create("/a", "1").ok());
  EXPECT_EQ(zk.Create("/a", "2").code(), ErrorCode::kAlreadyExists);
  EXPECT_EQ(zk.Get("/a").value(), "1");
}

TEST(ZkTest, SetUpdatesExisting) {
  ZooKeeperSim zk;
  ASSERT_TRUE(zk.Create("/a", "1").ok());
  ASSERT_TRUE(zk.Set("/a", "2").ok());
  EXPECT_EQ(zk.Get("/a").value(), "2");
  EXPECT_EQ(zk.Set("/missing", "x").code(), ErrorCode::kNotFound);
}

TEST(ZkTest, PutCreatesOrUpdates) {
  ZooKeeperSim zk;
  ASSERT_TRUE(zk.Put("/p/q", "1").ok());
  EXPECT_EQ(zk.Get("/p/q").value(), "1");
  ASSERT_TRUE(zk.Put("/p/q", "2").ok());
  EXPECT_EQ(zk.Get("/p/q").value(), "2");
}

TEST(ZkTest, DeleteRefusesNonEmpty) {
  ZooKeeperSim zk;
  ASSERT_TRUE(zk.CreateRecursive("/a/b", "x").ok());
  EXPECT_FALSE(zk.Delete("/a").ok());
  ASSERT_TRUE(zk.Delete("/a/b").ok());
  EXPECT_TRUE(zk.Delete("/a").ok());
  EXPECT_FALSE(zk.Exists("/a"));
}

TEST(ZkTest, ListReturnsImmediateChildrenSorted) {
  ZooKeeperSim zk;
  ASSERT_TRUE(zk.CreateRecursive("/jobs/b/task", "").ok());
  ASSERT_TRUE(zk.CreateRecursive("/jobs/a", "").ok());
  ASSERT_TRUE(zk.CreateRecursive("/jobs/c", "").ok());
  auto children = zk.List("/jobs");
  ASSERT_TRUE(children.ok());
  ASSERT_EQ(children.value().size(), 3u);
  EXPECT_EQ(children.value()[0], "a");
  EXPECT_EQ(children.value()[1], "b");
  EXPECT_EQ(children.value()[2], "c");
  // Grandchildren are not included.
  EXPECT_EQ(zk.List("/jobs/b").value(), std::vector<std::string>{"task"});
}

TEST(ZkTest, PathValidation) {
  ZooKeeperSim zk;
  EXPECT_FALSE(zk.Create("noslash", "").ok());
  EXPECT_FALSE(zk.Create("/trailing/", "").ok());
  EXPECT_FALSE(zk.Create("/a//b", "").ok());
  EXPECT_FALSE(zk.Create("", "").ok());
}

TEST(ZkTest, WatchesFireOnCreateChangeDelete) {
  ZooKeeperSim zk;
  std::vector<std::pair<ZooKeeperSim::EventType, std::string>> events;
  zk.Watch("/w", [&](ZooKeeperSim::EventType t, const std::string& p) {
    events.emplace_back(t, p);
  });
  ASSERT_TRUE(zk.Create("/w", "1").ok());
  ASSERT_TRUE(zk.Set("/w", "2").ok());
  ASSERT_TRUE(zk.Delete("/w").ok());
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].first, ZooKeeperSim::EventType::kCreated);
  EXPECT_EQ(events[1].first, ZooKeeperSim::EventType::kChanged);
  EXPECT_EQ(events[2].first, ZooKeeperSim::EventType::kDeleted);
}

TEST(ZkTest, WatchOnOtherPathDoesNotFire) {
  ZooKeeperSim zk;
  int fired = 0;
  zk.Watch("/x", [&](ZooKeeperSim::EventType, const std::string&) { ++fired; });
  ASSERT_TRUE(zk.Create("/y", "1").ok());
  EXPECT_EQ(fired, 0);
}

}  // namespace
}  // namespace sqs
