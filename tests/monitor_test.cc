// Monitoring subsystem tests: Prometheus text exposition (validated with a
// small parser), the embedded HTTP server, the metrics history ring, the
// alert engine's pending/firing/resolved lifecycle, and the full monitor
// wired into a QueryExecutor running a windowed join — including the
// /readyz 200 -> 503 -> 200 flip as consumer lag crosses the threshold.
#include <gtest/gtest.h>

#include <cctype>
#include <cstdlib>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "common/alerts.h"
#include "common/buildinfo.h"
#include "common/flightrec.h"
#include "common/history.h"
#include "common/metrics.h"
#include "common/profiler.h"
#include "common/prometheus.h"
#include "core/shell.h"
#include "http/http_server.h"
#include "http/monitor.h"
#include "workload/generators.h"

namespace sqs::core {
namespace {

// ---------------------------------------------------------------------------
// A minimal Prometheus 0.0.4 exposition parser used to validate /metrics
// output structurally (names, labels, types, bucket invariants).

struct PromSample {
  std::string name;  // full sample name, e.g. "samzasql_latency_ns_bucket"
  std::map<std::string, std::string> labels;
  double value = 0;
};

struct PromExposition {
  // family -> counter|gauge|histogram|summary
  std::map<std::string, std::string> types;
  std::vector<PromSample> samples;
};

bool ValidPromName(const std::string& name) {
  if (name.empty()) return false;
  for (size_t i = 0; i < name.size(); ++i) {
    char c = name[i];
    bool ok = std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == ':' ||
              (i > 0 && std::isdigit(static_cast<unsigned char>(c)));
    if (!ok) return false;
  }
  return true;
}

// Parses one exposition document, recording a test failure on any malformed
// line (void helper so gtest's fatal ASSERT macros are usable).
void ParseExpositionInto(const std::string& text, PromExposition& out) {
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (line.compare(0, 7, "# HELP ") == 0) continue;
    if (line.compare(0, 7, "# TYPE ") == 0) {
      std::istringstream rest(line.substr(7));
      std::string family, type;
      rest >> family >> type;
      EXPECT_TRUE(ValidPromName(family)) << line;
      EXPECT_TRUE(type == "counter" || type == "gauge" || type == "histogram" ||
                  type == "summary")
          << line;
      out.types[family] = type;
      continue;
    }
    ASSERT_NE(line[0], '#') << "unknown comment form: " << line;
    PromSample sample;
    size_t name_end = line.find_first_of("{ ");
    ASSERT_NE(name_end, std::string::npos) << line;
    sample.name = line.substr(0, name_end);
    EXPECT_TRUE(ValidPromName(sample.name)) << line;
    size_t pos = name_end;
    if (line[pos] == '{') {
      ++pos;
      while (pos < line.size() && line[pos] != '}') {
        size_t eq = line.find('=', pos);
        ASSERT_NE(eq, std::string::npos) << line;
        std::string key = line.substr(pos, eq - pos);
        EXPECT_TRUE(ValidPromName(key)) << line;
        ASSERT_EQ(line[eq + 1], '"') << line;
        std::string value;
        size_t i = eq + 2;
        for (; i < line.size() && line[i] != '"'; ++i) {
          if (line[i] == '\\') {
            ++i;
            ASSERT_LT(i, line.size()) << line;
            value += line[i] == 'n' ? '\n' : line[i];
          } else {
            value += line[i];
          }
        }
        ASSERT_LT(i, line.size()) << "unterminated label value: " << line;
        sample.labels[key] = value;
        pos = i + 1;
        if (pos < line.size() && line[pos] == ',') ++pos;
      }
      ASSERT_LT(pos, line.size()) << "unterminated label set: " << line;
      ++pos;  // '}'
    }
    ASSERT_EQ(line[pos], ' ') << line;
    std::string value_text = line.substr(pos + 1);
    char* end = nullptr;
    sample.value = std::strtod(value_text.c_str(), &end);
    EXPECT_EQ(end, value_text.c_str() + value_text.size())
        << "bad sample value: " << line;
    out.samples.push_back(std::move(sample));
  }
  // Every sample must belong to a declared family (histogram and summary
  // series hang off the base family's TYPE line).
  for (const PromSample& s : out.samples) {
    std::string family = s.name;
    for (const char* suffix : {"_bucket", "_sum", "_count"}) {
      size_t len = std::string(suffix).size();
      if (family.size() > len &&
          family.compare(family.size() - len, len, suffix) == 0) {
        std::string base = family.substr(0, family.size() - len);
        if (out.types.count(base) &&
            (out.types[base] == "histogram" || out.types[base] == "summary")) {
          family = base;
        }
      }
    }
    EXPECT_TRUE(out.types.count(family)) << "sample without TYPE: " << s.name;
  }
}

PromExposition ParseExposition(const std::string& text) {
  PromExposition out;
  ParseExpositionInto(text, out);
  return out;
}

// ---------------------------------------------------------------------------
// Prometheus rendering

TEST(PrometheusTest, NameSanitization) {
  EXPECT_EQ(PrometheusName("processed"), "processed");
  EXPECT_EQ(PrometheusName("op2-filter"), "op2_filter");
  EXPECT_EQ(PrometheusName("9lives"), "_9lives");
  EXPECT_EQ(PrometheusName("a.b c"), "a_b_c");
  EXPECT_EQ(PrometheusName(""), "_");
}

TEST(PrometheusTest, LabelValueEscaping) {
  EXPECT_EQ(PrometheusLabelValue("plain"), "plain");
  EXPECT_EQ(PrometheusLabelValue("a\"b"), "a\\\"b");
  EXPECT_EQ(PrometheusLabelValue("a\\b"), "a\\\\b");
  EXPECT_EQ(PrometheusLabelValue("a\nb"), "a\\nb");
}

TEST(PrometheusTest, ScalarFamiliesAndScopeLabels) {
  MetricsRegistry registry;
  registry.GetCounter("q0.Partition_0.op2-filter.processed").Inc(42);
  registry.GetGauge("q0.Partition_0.op3-window.watermark_ms").Set(5000);
  registry.GetTimer("q0.container0.busy_ns").Add(2'500'000'000);
  std::string text = RenderPrometheus(registry.Snapshot());
  PromExposition exp = ParseExposition(text);

  EXPECT_EQ(exp.types.at("samzasql_processed_total"), "counter");
  EXPECT_EQ(exp.types.at("samzasql_watermark_ms"), "gauge");
  EXPECT_EQ(exp.types.at("samzasql_busy_ns_seconds_total"), "counter");
  bool found = false;
  for (const PromSample& s : exp.samples) {
    if (s.name == "samzasql_processed_total") {
      found = true;
      // The dotted scope — including the plan-generated operator id with its
      // '-' — survives as an escaped label value, not a mangled name.
      EXPECT_EQ(s.labels.at("scope"), "q0.Partition_0.op2-filter");
      EXPECT_EQ(s.value, 42);
    }
    if (s.name == "samzasql_busy_ns_seconds_total") {
      EXPECT_DOUBLE_EQ(s.value, 2.5);  // ns -> s
    }
  }
  EXPECT_TRUE(found);
}

TEST(PrometheusTest, LagGaugesBecomeConsumerLagFamily) {
  MetricsRegistry registry;
  registry.GetGauge("samzasql-query-0.container0.lag.PacketsR1.0").Set(7);
  registry.GetGauge("samzasql-query-0.container0.lag.PacketsR1.1").Set(9);
  PromExposition exp = ParseExposition(RenderPrometheus(registry.Snapshot()));
  EXPECT_EQ(exp.types.at("samzasql_consumer_lag"), "gauge");
  std::set<std::string> partitions;
  for (const PromSample& s : exp.samples) {
    ASSERT_EQ(s.name, "samzasql_consumer_lag");
    EXPECT_EQ(s.labels.at("scope"), "samzasql-query-0.container0");
    EXPECT_EQ(s.labels.at("topic"), "PacketsR1");
    partitions.insert(s.labels.at("partition"));
  }
  EXPECT_EQ(partitions, (std::set<std::string>{"0", "1"}));
}

TEST(PrometheusTest, RetryCountersBecomeOpLabeledFamilies) {
  MetricsRegistry registry;
  registry.GetCounter("q0.container0.retry.send.retries").Inc(3);
  registry.GetCounter("q0.container0.retry.fetch.retries").Inc(2);
  registry.GetCounter("q0.container0.retry.changelog.retries").Inc(5);
  registry.GetCounter("q0.container0.retry.checkpoint.giveups").Inc(1);
  PromExposition exp = ParseExposition(RenderPrometheus(registry.Snapshot()));

  // One retries_total / giveups_total family each, with the operation as a
  // label — not four differently named families.
  EXPECT_EQ(exp.types.at("samzasql_retries_total"), "counter");
  EXPECT_EQ(exp.types.at("samzasql_giveups_total"), "counter");
  std::map<std::string, double> retries_by_op;
  for (const PromSample& s : exp.samples) {
    if (s.name == "samzasql_retries_total") {
      EXPECT_EQ(s.labels.at("scope"), "q0.container0");
      retries_by_op[s.labels.at("op")] = s.value;
    }
    if (s.name == "samzasql_giveups_total") {
      EXPECT_EQ(s.labels.at("scope"), "q0.container0");
      EXPECT_EQ(s.labels.at("op"), "checkpoint");
      EXPECT_EQ(s.value, 1);
    }
  }
  EXPECT_EQ(retries_by_op.at("send"), 3);
  EXPECT_EQ(retries_by_op.at("fetch"), 2);
  EXPECT_EQ(retries_by_op.at("changelog"), 5);
}

TEST(PrometheusTest, HistogramBucketsMonotoneAndConsistentWithSnapshot) {
  MetricsRegistry registry;
  Histogram& h = registry.GetHistogram("q0.t0.op1-project.latency_ns");
  for (int64_t v : {1, 5, 17, 17, 300, 5000, 5000, 123'456}) h.Record(v);
  MetricsSnapshot snap = registry.Snapshot();
  PromExposition exp = ParseExposition(RenderPrometheus(snap));
  EXPECT_EQ(exp.types.at("samzasql_latency_ns"), "histogram");

  double last_le = -1, last_cumulative = -1, count = -1, sum = -1, inf = -1;
  for (const PromSample& s : exp.samples) {
    if (s.name == "samzasql_latency_ns_bucket") {
      if (s.labels.at("le") == "+Inf") {
        inf = s.value;
        continue;
      }
      double le = std::atof(s.labels.at("le").c_str());
      EXPECT_GT(le, last_le) << "le bounds must strictly increase";
      EXPECT_GE(s.value, last_cumulative) << "cumulative counts must not drop";
      last_le = le;
      last_cumulative = s.value;
    } else if (s.name == "samzasql_latency_ns_count") {
      count = s.value;
    } else if (s.name == "samzasql_latency_ns_sum") {
      sum = s.value;
    }
  }
  const HistogramStats& stats = snap.histograms.at("q0.t0.op1-project.latency_ns");
  EXPECT_EQ(count, static_cast<double>(stats.count));
  EXPECT_EQ(sum, static_cast<double>(stats.sum));
  EXPECT_EQ(inf, count) << "+Inf bucket must equal _count";
  EXPECT_EQ(last_cumulative, count) << "all recordings are finite here";
  // Companion range gauges.
  EXPECT_EQ(exp.types.at("samzasql_latency_ns_min"), "gauge");
  EXPECT_EQ(exp.types.at("samzasql_latency_ns_max"), "gauge");
}

TEST(PrometheusTest, SnapshotBucketExportIsCumulative) {
  Histogram h;
  for (int64_t v : {1, 1, 2, 100, 100, 100}) h.Record(v);
  HistogramStats stats = h.GetStats();
  ASSERT_FALSE(stats.buckets.empty());
  int64_t last_le = -1, last_cum = 0;
  for (const auto& [le, cumulative] : stats.buckets) {
    EXPECT_GT(le, last_le);
    EXPECT_GE(cumulative, last_cum);
    last_le = le;
    last_cum = cumulative;
  }
  EXPECT_EQ(last_cum, stats.count);
}

// ---------------------------------------------------------------------------
// HTTP server

TEST(HttpServerTest, ServesRequestsOnEphemeralPort) {
  HttpServer server(0, [](const HttpRequest& req) {
    HttpResponse res;
    if (req.path == "/echo") {
      res.body = "path=" + req.path + " query=" + req.query;
    } else {
      res.status = 404;
      res.body = "nope";
    }
    return res;
  });
  ASSERT_TRUE(server.Start().ok());
  ASSERT_GT(server.port(), 0);

  auto res = HttpGet("127.0.0.1", server.port(), "/echo?a=1");
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  EXPECT_EQ(res.value().status, 200);
  EXPECT_EQ(res.value().body, "path=/echo query=a=1");

  auto missing = HttpGet("127.0.0.1", server.port(), "/other");
  ASSERT_TRUE(missing.ok());
  EXPECT_EQ(missing.value().status, 404);

  EXPECT_EQ(server.requests_served(), 2);
  server.Stop();
  EXPECT_FALSE(server.running());
  // Stop is idempotent and the port is released for later binds.
  server.Stop();
}

TEST(HttpServerTest, StartTwiceFailsAndStopUnblocksAccept) {
  HttpServer server(0, [](const HttpRequest&) { return HttpResponse{}; });
  ASSERT_TRUE(server.Start().ok());
  EXPECT_FALSE(server.Start().ok());
  server.Stop();  // must return (accept() unblocked) rather than hang
}

// ---------------------------------------------------------------------------
// Metrics history ring

TEST(MetricsHistoryTest, RingKeepsMostRecentSamples) {
  MetricsHistory history(4);
  MetricsRegistry registry;
  Counter& c = registry.GetCounter("job.processed");
  for (int64_t t = 1; t <= 10; ++t) {
    c.Inc(10);
    history.Record(t * 1000, registry.Snapshot());
  }
  std::vector<MetricsHistory::Point> points = history.Series("job.processed");
  ASSERT_EQ(points.size(), 4u);
  EXPECT_EQ(points.front().ts_ms, 7000);
  EXPECT_EQ(points.back().ts_ms, 10000);
  EXPECT_EQ(points.back().value, 100.0);
  // (100-70) counts over 3 seconds.
  EXPECT_DOUBLE_EQ(history.RatePerSec("job.processed"), 10.0);
  EXPECT_TRUE(history.Series("unknown").empty());
  EXPECT_EQ(history.RatePerSec("unknown"), 0.0);
}

TEST(MetricsHistoryTest, RecordsHistogramCountAndP99) {
  MetricsHistory history;
  MetricsRegistry registry;
  registry.GetHistogram("job.latency_ns").Record(100);
  history.Record(1000, registry.Snapshot());
  EXPECT_EQ(history.Series("job.latency_ns.count").size(), 1u);
  EXPECT_EQ(history.Series("job.latency_ns.p99").size(), 1u);
  std::string json = history.ToJson();
  EXPECT_NE(json.find("\"name\":\"job.latency_ns.count\""), std::string::npos);
  EXPECT_NE(json.find("\"rate_per_s\":"), std::string::npos);
  // Prefix filter.
  EXPECT_EQ(history.ToJson("other.").find("latency"), std::string::npos);
}

TEST(MetricsHistoryTest, SparklineScalesToRange) {
  std::vector<MetricsHistory::Point> ramp;
  for (int i = 0; i <= 8; ++i) {
    ramp.push_back({i * 1000, static_cast<double>(i)});
  }
  std::string spark = AsciiSparkline(ramp);
  ASSERT_EQ(spark.size(), ramp.size());
  EXPECT_EQ(spark.front(), ' ');   // min of range
  EXPECT_EQ(spark.back(), '@');    // max of range
  // Flat series renders at the low end, not mid-scale noise.
  std::string flat = AsciiSparkline({{0, 5.0}, {1000, 5.0}, {2000, 5.0}});
  EXPECT_EQ(flat, "   ");
}

// ---------------------------------------------------------------------------
// Alert engine

TEST(AlertEngineTest, ParsesRuleGrammar) {
  auto rules = AlertEngine::ParseRules(
      "consumer_lag>10000 for 5s; dropped rate>0;watermark_lag_ms >= 60000 for 2m");
  ASSERT_TRUE(rules.ok()) << rules.status().ToString();
  ASSERT_EQ(rules.value().size(), 3u);
  EXPECT_EQ(rules.value()[0].selector, "consumer_lag");
  EXPECT_EQ(rules.value()[0].for_ms, 5000);
  EXPECT_EQ(rules.value()[0].text, "consumer_lag>10000 for 5000ms");
  EXPECT_TRUE(rules.value()[1].rate);
  EXPECT_EQ(rules.value()[1].for_ms, 0);
  EXPECT_EQ(rules.value()[2].op, ">=");
  EXPECT_EQ(rules.value()[2].for_ms, 120'000);

  EXPECT_TRUE(AlertEngine::ParseRules("").ok());
  EXPECT_FALSE(AlertEngine::ParseRules("no_comparator").ok());
  EXPECT_FALSE(AlertEngine::ParseRules("x>abc").ok());
  EXPECT_FALSE(AlertEngine::ParseRules("x>1 for 5parsecs").ok());
  EXPECT_FALSE(AlertEngine::ParseRules("x bogus>1").ok());
}

TEST(AlertEngineTest, PendingFiringResolvedLifecycle) {
  AlertEngine engine(AlertEngine::ParseRules("consumer_lag>100 for 1s").value());
  MetricsRegistry registry;
  Gauge& lag = registry.GetGauge("q0.container0.lag.Orders.0");

  lag.Set(500);
  engine.Evaluate(10'000, registry.Snapshot(), nullptr);
  ASSERT_EQ(engine.Statuses().size(), 1u);
  EXPECT_EQ(engine.Statuses()[0].state, AlertState::kPending);
  EXPECT_EQ(engine.FiringCount(), 0);

  // Still pending inside the `for` window, firing once it has held 1s.
  engine.Evaluate(10'500, registry.Snapshot(), nullptr);
  EXPECT_EQ(engine.Statuses()[0].state, AlertState::kPending);
  engine.Evaluate(11'000, registry.Snapshot(), nullptr);
  EXPECT_EQ(engine.Statuses()[0].state, AlertState::kFiring);
  EXPECT_EQ(engine.FiringCount(), 1);
  EXPECT_EQ(engine.Statuses()[0].subject, "q0.container0.lag.Orders.0");
  EXPECT_EQ(engine.Statuses()[0].value, 500.0);

  lag.Set(0);
  engine.Evaluate(12'000, registry.Snapshot(), nullptr);
  EXPECT_EQ(engine.Statuses()[0].state, AlertState::kInactive);
  EXPECT_EQ(engine.Statuses()[0].fired_count, 1);
  EXPECT_EQ(engine.FiringCount(), 0);

  std::string json = engine.ToJson(12'000);
  EXPECT_NE(json.find("\"state\":\"inactive\""), std::string::npos);
  EXPECT_NE(json.find("\"fired_count\":1"), std::string::npos);
}

TEST(AlertEngineTest, ConditionInterruptionResetsPending) {
  AlertEngine engine(AlertEngine::ParseRules("consumer_lag>100 for 1s").value());
  MetricsRegistry registry;
  Gauge& lag = registry.GetGauge("q.c.lag.T.0");
  lag.Set(500);
  engine.Evaluate(1000, registry.Snapshot(), nullptr);
  lag.Set(0);
  engine.Evaluate(1500, registry.Snapshot(), nullptr);
  lag.Set(500);
  engine.Evaluate(1900, registry.Snapshot(), nullptr);
  // The hold restarted at 1900; 1s has not elapsed since.
  engine.Evaluate(2800, registry.Snapshot(), nullptr);
  EXPECT_EQ(engine.Statuses()[0].state, AlertState::kPending);
  engine.Evaluate(2900, registry.Snapshot(), nullptr);
  EXPECT_EQ(engine.Statuses()[0].state, AlertState::kFiring);
}

TEST(AlertEngineTest, RateRulesReadHistory) {
  AlertEngine engine(AlertEngine::ParseRules("dropped rate>0").value());
  MetricsHistory history;
  MetricsRegistry registry;
  Counter& dropped = registry.GetCounter("q0.t0.op1-window.dropped");
  history.Record(1000, registry.Snapshot());
  engine.Evaluate(1000, registry.Snapshot(), &history);
  EXPECT_EQ(engine.Statuses()[0].state, AlertState::kInactive);

  dropped.Inc(10);
  history.Record(2000, registry.Snapshot());
  engine.Evaluate(2000, registry.Snapshot(), &history);
  // for_ms=0: fires the same tick the condition first holds.
  EXPECT_EQ(engine.Statuses()[0].state, AlertState::kFiring);
  EXPECT_EQ(engine.Statuses()[0].value, 10.0);
}

TEST(AlertEngineTest, MissingMetricNeverTrips) {
  AlertEngine engine(AlertEngine::ParseRules("throughput<5").value());
  MetricsRegistry registry;  // no matching metric
  engine.Evaluate(1000, registry.Snapshot(), nullptr);
  EXPECT_EQ(engine.Statuses()[0].state, AlertState::kInactive);
}

// ---------------------------------------------------------------------------
// MonitorServer + executor integration

constexpr const char* kJoinSql =
    "SELECT STREAM PacketsR1.packetId, "
    "PacketsR2.rowtime - PacketsR1.rowtime AS timeToTravel "
    "FROM PacketsR1 JOIN PacketsR2 ON "
    "PacketsR1.rowtime BETWEEN PacketsR2.rowtime - INTERVAL '2' SECOND "
    "AND PacketsR2.rowtime + INTERVAL '2' SECOND "
    "AND PacketsR1.packetId = PacketsR2.packetId";

class MonitorIntegrationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    clock_ = std::make_shared<ManualClock>(1'000'000);
    env_ = SamzaSqlEnvironment::Make(clock_);
    ASSERT_TRUE(workload::SetupPaperSources(*env_, 2).ok());
    ASSERT_TRUE(workload::ProducePackets(*env_, 300).ok());
    Config defaults;
    defaults.SetInt(cfg::kContainerCount, 1);
    defaults.SetBool(cfg::kMonitorEnable, true);
    defaults.SetInt(cfg::kMonitorPort, 0);
    defaults.SetInt(cfg::kMonitorReadyMaxConsumerLag, 10);
    defaults.Set(cfg::kAlertRules, "consumer_lag>10 for 1s");
    executor_ = std::make_unique<QueryExecutor>(env_, defaults);
  }

  HttpResponse Get(const std::string& path) {
    auto res = HttpGet("127.0.0.1", executor_->monitor().port(), path);
    EXPECT_TRUE(res.ok()) << res.status().ToString();
    return res.ok() ? res.value() : HttpResponse{};
  }

  std::shared_ptr<ManualClock> clock_;
  EnvironmentPtr env_;
  std::unique_ptr<QueryExecutor> executor_;
};

TEST_F(MonitorIntegrationTest, MetricsEndpointServesValidExposition) {
  ASSERT_TRUE(executor_->Execute(kJoinSql).ok());
  ASSERT_TRUE(executor_->monitor().http_running());
  ASSERT_GT(executor_->monitor().port(), 0);

  HttpResponse health = Get("/healthz");
  EXPECT_EQ(health.status, 200);
  EXPECT_EQ(health.body, "ok\n");

  ASSERT_TRUE(executor_->RunJobsUntilQuiescent().ok());
  HttpResponse metrics = Get("/metrics");
  EXPECT_EQ(metrics.status, 200);
  EXPECT_EQ(metrics.content_type, kPrometheusContentType);
  PromExposition exp = ParseExposition(metrics.body);
  EXPECT_FALSE(exp.samples.empty());
  EXPECT_EQ(exp.types.at("samzasql_consumer_lag"), "gauge");
  EXPECT_EQ(exp.types.at("samzasql_processed_total"), "counter");
  EXPECT_EQ(exp.types.at("samzasql_process_latency_ns"), "histogram");
  bool join_scope = false;
  for (const PromSample& s : exp.samples) {
    auto it = s.labels.find("scope");
    if (it != s.labels.end() &&
        it->second.find("stream-stream-join") != std::string::npos) {
      join_scope = true;
    }
  }
  EXPECT_TRUE(join_scope) << "join operator metrics missing from exposition";

  // Resource-ledger families ride along in the exposition, one sample per
  // job, plus the e2e latency quantile summary (docs/LATENCY.md).
  EXPECT_EQ(exp.types.at("samzasql_job_rows_in_total"), "counter");
  EXPECT_EQ(exp.types.at("samzasql_job_e2e_latency_us"), "summary");
  bool ledger_rows = false;
  for (const PromSample& s : exp.samples) {
    if (s.name == "samzasql_job_rows_in_total" &&
        s.labels.count("job") && s.value > 0) {
      ledger_rows = true;
    }
  }
  EXPECT_TRUE(ledger_rows) << "job ledger reports no processed rows";

  HttpResponse jobs = Get("/jobs");
  EXPECT_EQ(jobs.status, 200);
  EXPECT_EQ(jobs.content_type, "application/json");
  EXPECT_NE(jobs.body.find("\"name\":\"samzasql-query-0\""), std::string::npos);
  EXPECT_NE(jobs.body.find("\"containers_running\":1"), std::string::npos);
  // Ledger enrichment of the /jobs payload: live rows/bytes/latency fields.
  for (const char* key :
       {"\"rows_in\":", "\"rows_out\":", "\"bytes_in\":", "\"bytes_out\":",
        "\"cpu_busy_ns\":", "\"uptime_ms\":", "\"freshness_lag_ms\":",
        "\"backlog_bytes\":", "\"e2e_latency_us\":"}) {
    EXPECT_NE(jobs.body.find(key), std::string::npos) << key;
  }

  HttpResponse index = Get("/");
  EXPECT_NE(index.body.find("/metrics"), std::string::npos);
  EXPECT_EQ(Get("/nope").status, 404);
}

TEST_F(MonitorIntegrationTest, ReadyzFlipsWithConsumerLag) {
  ASSERT_TRUE(executor_->Execute(kJoinSql).ok());
  // 300 packets of backlog per input: far over the threshold of 10.
  HttpResponse ready = Get("/readyz");
  EXPECT_EQ(ready.status, 503);
  EXPECT_NE(ready.body.find("consumer lag"), std::string::npos) << ready.body;

  ASSERT_TRUE(executor_->RunJobsUntilQuiescent().ok());
  ready = Get("/readyz");
  EXPECT_EQ(ready.status, 200) << ready.body;
  EXPECT_EQ(ready.body, "ready\n");

  // New backlog appears; lag gauges refresh on the next container poll.
  ASSERT_TRUE(workload::ProducePackets(*env_, 200).ok());
  ASSERT_TRUE(executor_->job(0)->container(0)->RunUntilCaughtUp(0).ok());
  ready = Get("/readyz");
  EXPECT_EQ(ready.status, 503);

  // A killed container is not ready regardless of lag.
  ASSERT_TRUE(executor_->RunJobsUntilQuiescent().ok());
  ASSERT_TRUE(executor_->job(0)->KillContainer(0).ok());
  ready = Get("/readyz");
  EXPECT_EQ(ready.status, 503);
  EXPECT_NE(ready.body.find("containers running"), std::string::npos) << ready.body;
  // A restarted container resumes from its last checkpoint, so it may report
  // replay lag until driven back to quiescence.
  ASSERT_TRUE(executor_->job(0)->RestartContainer(0).ok());
  ASSERT_TRUE(executor_->RunJobsUntilQuiescent().ok());
  EXPECT_EQ(Get("/readyz").status, 200);
}

TEST_F(MonitorIntegrationTest, AlertTransitionsUnderManualClock) {
  ASSERT_TRUE(executor_->Execute(kJoinSql).ok());
  MonitorServer& monitor = executor_->monitor();
  ASSERT_TRUE(monitor.rules_status().ok());

  // Backlog > 10: the rule's condition holds -> pending on the first tick.
  monitor.ForceTick();
  ASSERT_EQ(monitor.alerts().Statuses().size(), 1u);
  EXPECT_EQ(monitor.alerts().Statuses()[0].state, AlertState::kPending);

  clock_->Advance(1000);
  monitor.ForceTick();
  EXPECT_EQ(monitor.alerts().Statuses()[0].state, AlertState::kFiring);
  HttpResponse alerts = Get("/alerts");
  EXPECT_EQ(alerts.content_type, "application/json");
  EXPECT_NE(alerts.body.find("\"state\":\"firing\""), std::string::npos);
  EXPECT_NE(alerts.body.find("\"firing\":1"), std::string::npos);
  // The firing count is exported as a gauge for scrapers too.
  EXPECT_NE(Get("/metrics").body.find("samzasql_alerts_firing"), std::string::npos);

  // Draining the backlog resolves the alert on the next tick.
  ASSERT_TRUE(executor_->RunJobsUntilQuiescent().ok());
  clock_->Advance(1000);
  monitor.ForceTick();
  EXPECT_EQ(monitor.alerts().Statuses()[0].state, AlertState::kInactive);
  EXPECT_EQ(monitor.alerts().Statuses()[0].fired_count, 1);
  EXPECT_NE(Get("/alerts").body.find("\"state\":\"inactive\""), std::string::npos);
}

TEST_F(MonitorIntegrationTest, HistoryEndpointAccumulatesTicks) {
  ASSERT_TRUE(executor_->Execute(kJoinSql).ok());
  ASSERT_TRUE(executor_->RunJobsUntilQuiescent().ok());
  clock_->Advance(1000);
  executor_->monitor().Tick();
  HttpResponse history = Get("/history");
  EXPECT_EQ(history.status, 200);
  EXPECT_EQ(history.content_type, "application/json");
  EXPECT_NE(history.body.find("\"series\":["), std::string::npos);
  EXPECT_NE(history.body.find("processed"), std::string::npos);
  // ?job= filters to one job's series.
  HttpResponse filtered = Get("/history?job=samzasql-query-0");
  EXPECT_NE(filtered.body.find("samzasql-query-0"), std::string::npos);
  HttpResponse other = Get("/history?job=no-such-job");
  EXPECT_EQ(other.body.find("processed"), std::string::npos) << other.body;
}

TEST(MonitorServerTest, DisabledByDefaultButHistoryStillWorks) {
  auto env = SamzaSqlEnvironment::Make();
  QueryExecutor executor(env, Config());
  EXPECT_FALSE(executor.monitor().http_running());
  EXPECT_EQ(executor.monitor().port(), 0);
  executor.monitor().ForceTick();
  // Self-metrics tick even with no jobs submitted.
  EXPECT_FALSE(executor.monitor().history().Keys().empty());
  MonitorServer::Readiness ready = executor.monitor().CheckReadiness();
  EXPECT_TRUE(ready.ready);
}

TEST(MonitorServerTest, BadAlertRulesDisableAlertingNotConstruction) {
  Config config;
  config.Set(cfg::kAlertRules, "completely bogus");
  MonitorServer monitor(config, nullptr);
  EXPECT_FALSE(monitor.rules_status().ok());
  EXPECT_TRUE(monitor.alerts().empty());
  monitor.ForceTick();  // must not crash with no provider and no rules
}

// ---------------------------------------------------------------------------
// Shell surface

class MonitorShellTest : public ::testing::Test {
 protected:
  void SetUp() override {
    env_ = SamzaSqlEnvironment::Make();
    ASSERT_TRUE(workload::SetupPaperSources(*env_, 2).ok());
    ASSERT_TRUE(workload::ProducePackets(*env_, 100).ok());
    Config defaults;
    defaults.SetInt(cfg::kContainerCount, 1);
    defaults.Set(cfg::kAlertRules, "consumer_lag>999999 for 1s");
    shell_ = std::make_unique<Shell>(env_, defaults);
  }

  std::string Feed(const std::string& line) {
    std::ostringstream out;
    shell_->ProcessLine(line, out);
    return out.str();
  }

  EnvironmentPtr env_;
  std::unique_ptr<Shell> shell_;
};

TEST_F(MonitorShellTest, ShowHistoryRendersSparklines) {
  std::string empty = Feed("SHOW HISTORY;");
  EXPECT_NE(empty.find("no history samples"), std::string::npos);

  Feed("SELECT STREAM packetId FROM PacketsR1;");
  Feed("!run");  // RunJobsUntilQuiescent ticks the monitor
  std::string out = Feed("SHOW HISTORY;");
  EXPECT_NE(out.find("series"), std::string::npos);
  EXPECT_NE(out.find("rate/s"), std::string::npos);
  EXPECT_NE(out.find("processed"), std::string::npos) << out;

  // Job filter keeps only that job's series.
  out = Feed("SHOW HISTORY samzasql-query-0;");
  EXPECT_NE(out.find("samzasql-query-0"), std::string::npos) << out;
  out = Feed("SHOW HISTORY no-such-job;");
  EXPECT_NE(out.find("no history samples for no-such-job"), std::string::npos) << out;

  std::string json = Feed("SHOW HISTORY JSON;");
  EXPECT_NE(json.find("\"series\":["), std::string::npos);
}

TEST_F(MonitorShellTest, ShowAlertsRendersRuleStates) {
  std::string out = Feed("SHOW ALERTS;");
  EXPECT_NE(out.find("consumer_lag>999999 for 1000ms"), std::string::npos) << out;
  EXPECT_NE(out.find("inactive"), std::string::npos);
  std::string json = Feed("SHOW ALERTS JSON;");
  EXPECT_NE(json.find("\"alerts\":["), std::string::npos);
  EXPECT_NE(json.find("\"firing\":0"), std::string::npos);
  // !help advertises the new statements.
  std::string help = Feed("!help");
  EXPECT_NE(help.find("SHOW HISTORY"), std::string::npos);
  EXPECT_NE(help.find("SHOW ALERTS"), std::string::npos);
}

TEST_F(MonitorIntegrationTest, MetricsCarryBuildInfoAndProcessGauges) {
  ASSERT_TRUE(executor_->Execute(kJoinSql).ok());
  HttpResponse metrics = Get("/metrics");
  ASSERT_EQ(metrics.status, 200);
  PromExposition exp = ParseExposition(metrics.body);
  EXPECT_EQ(exp.types.at("samzasql_build_info"), "gauge");
  bool build_info = false;
  double uptime = -1, rss = -1;
  for (const PromSample& s : exp.samples) {
    if (s.name == "samzasql_build_info") {
      build_info = true;
      EXPECT_EQ(s.value, 1.0);
      EXPECT_EQ(s.labels.at("version"), GetBuildInfo().version);
      EXPECT_EQ(s.labels.at("git_sha"), GetBuildInfo().git_sha);
      EXPECT_EQ(s.labels.at("build_type"), GetBuildInfo().build_type);
      EXPECT_FALSE(s.labels.at("version").empty());
    }
    if (s.name == "samzasql_process_uptime_seconds") uptime = s.value;
    if (s.name == "samzasql_process_rss_bytes") rss = s.value;
  }
  EXPECT_TRUE(build_info) << "samzasql_build_info missing from /metrics";
  EXPECT_GT(uptime, 0.0);
  EXPECT_GT(rss, 0.0);  // /proc/self/statm is available on Linux
}

TEST_F(MonitorIntegrationTest, DebugProfileEndpointServesCollapsedStacks) {
  ASSERT_TRUE(executor_->Execute(kJoinSql).ok());
  Profiler::Instance().Reset();
  // Accumulate a deterministic sample, then keep the background sampler
  // running so the handler serves the accumulation instead of blocking on
  // a multi-second burst.
  {
    ProfiledFrame process("process");
    ProfiledFrame op("op0-scan");
    Profiler::Instance().SampleOnce();
  }
  ASSERT_TRUE(Profiler::Instance().StartSampling(19).ok());
  HttpResponse profile = Get("/debug/profile");
  Profiler::Instance().Reset();
  EXPECT_EQ(profile.status, 200);
  EXPECT_NE(profile.body.find("process;op0-scan"), std::string::npos)
      << profile.body;
}

TEST_F(MonitorIntegrationTest, DebugEventsEndpointServesJsonLines) {
  ASSERT_TRUE(executor_->Execute(kJoinSql).ok());
  FlightRecorder::Instance().SetEnabled(true);
  FlightRecorder::Record(FlightEventType::kCommit, "debug-ep-job.task0",
                         "offsets", 3);
  HttpResponse events = Get("/debug/events?job=debug-ep-job");
  EXPECT_EQ(events.status, 200);
  EXPECT_EQ(events.content_type, "application/x-ndjson");
  EXPECT_EQ(events.body.find("{\"flightrec\":\"samzasql\""), 0u) << events.body;
  EXPECT_NE(events.body.find("\"type\":\"commit\""), std::string::npos);
  EXPECT_NE(events.body.find("debug-ep-job.task0"), std::string::npos);
  // The job filter excludes everything else — including this query's own
  // plan_built/job_submit events.
  EXPECT_EQ(events.body.find("samzasql-query-0"), std::string::npos);
  // The executor's own submission left flight-recorder breadcrumbs too.
  HttpResponse all = Get("/debug/events");
  EXPECT_NE(all.body.find("\"type\":\"job_submit\""), std::string::npos);
  // The index advertises the debug endpoints.
  HttpResponse index = Get("/");
  EXPECT_NE(index.body.find("/debug/profile"), std::string::npos);
  EXPECT_NE(index.body.find("/debug/events"), std::string::npos);
}

TEST_F(MonitorShellTest, ShowProfileRendersAttributionTable) {
  Profiler::Instance().Reset();
  std::string idle = Feed("SHOW PROFILE;");
  EXPECT_NE(idle.find("samples=0"), std::string::npos) << idle;
  EXPECT_NE(idle.find("profile.hz"), std::string::npos);  // hint how to enable

  {
    ProfiledFrame process("process");
    ProfiledFrame op("fused<op0..op1>");
    Profiler::Instance().SampleOnce();
    Profiler::Instance().SampleOnce();
  }
  std::string out = Feed("SHOW PROFILE;");
  EXPECT_NE(out.find("samples=2"), std::string::npos) << out;
  EXPECT_NE(out.find("fused<op0..op1>"), std::string::npos);
  EXPECT_NE(out.find("100.0%"), std::string::npos) << out;
  EXPECT_NE(out.find("flamegraph.pl"), std::string::npos);
  EXPECT_NE(out.find("process;fused<op0..op1> 2"), std::string::npos);

  std::string json = Feed("SHOW PROFILE JSON;");
  EXPECT_NE(json.find("\"samples\":2"), std::string::npos) << json;
  EXPECT_NE(json.find("\"label\":\"fused<op0..op1>\""), std::string::npos);
  EXPECT_NE(json.find("\"sampling\":false"), std::string::npos);
  Profiler::Instance().Reset();
}

TEST_F(MonitorShellTest, ShowEventsRendersFlightRecorderRing) {
  FlightRecorder::Instance().SetEnabled(true);
  FlightRecorder::Record(FlightEventType::kStall, "shell-ev-job.container0",
                         "heartbeat stale while busy", 5000, 100);
  std::string out = Feed("SHOW EVENTS shell-ev-job;");
  EXPECT_NE(out.find("stall"), std::string::npos) << out;
  EXPECT_NE(out.find("shell-ev-job.container0"), std::string::npos);
  EXPECT_NE(out.find("heartbeat stale while busy"), std::string::npos);
  // The unfiltered listing carries the recorder's accounting header.
  std::string all = Feed("SHOW EVENTS;");
  EXPECT_NE(all.find("recorded="), std::string::npos) << all;
  EXPECT_NE(all.find("dropped="), std::string::npos);
  std::string json = Feed("SHOW EVENTS JSON;");
  EXPECT_EQ(json.find("{\"flightrec\":\"samzasql\""), 0u) << json;
  // !help advertises the profiling surface.
  std::string help = Feed("!help");
  EXPECT_NE(help.find("SHOW PROFILE"), std::string::npos);
  EXPECT_NE(help.find("SHOW EVENTS"), std::string::npos);
}

TEST(MonitorShellNoRulesTest, ShowAlertsExplainsMissingRules) {
  auto env = SamzaSqlEnvironment::Make();
  Shell shell(env, Config());
  std::ostringstream out;
  shell.ProcessLine("SHOW ALERTS;", out);
  EXPECT_NE(out.str().find("no alert rules configured"), std::string::npos);
}

}  // namespace
}  // namespace sqs::core
