// Fused-pipeline equivalence suite: the fused mainline (sql.fusion=on, the
// default) must be byte-identical to the interpreted operator DAG
// (sql.fusion=off) on the same seeded inputs — including under exactly-once
// crash-replay at batch boundaries. Also unit-level coverage for the fusion
// planner (PlanFusedStages), the kernel's raw-byte predicate classification,
// and the serde layer's lazy projected decode.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "core/executor.h"
#include "sql/batch_eval.h"
#include "sql/optimizer.h"
#include "sql/parser.h"
#include "sql/planner.h"
#include "sql_test_util.h"
#include "workload/generators.h"

namespace sqs::core {
namespace {

// ---------------------------------------------------------------------------
// End-to-end byte equivalence: fused vs interpreted.

// Runs `query` on a fresh seeded environment and returns the raw output
// bytes, per partition, in log order.
Result<std::vector<std::vector<Bytes>>> RunQueryRaw(
    const std::string& query, bool fusion, const std::string& out_format = "",
    int64_t orders = 600) {
  auto env = SamzaSqlEnvironment::Make();
  SQS_RETURN_IF_ERROR(workload::SetupPaperSources(*env, 2));
  workload::OrdersGeneratorOptions options;
  options.num_products = 15;
  options.seed = 77;
  workload::OrdersGenerator gen(*env, options);
  SQS_ASSIGN_OR_RETURN(produced, gen.Produce(orders));
  (void)produced;

  Config defaults;
  defaults.SetInt(cfg::kContainerCount, 1);
  defaults.SetInt(cfg::kCommitEveryMessages, 64);
  if (!fusion) defaults.Set(sqlcfg::kFusion, "off");
  if (!out_format.empty()) defaults.Set(sqlcfg::kOutputFormat, out_format);
  QueryExecutor executor(env, defaults);
  SQS_ASSIGN_OR_RETURN(submitted, executor.Execute(query));
  SQS_ASSIGN_OR_RETURN(quiesced, executor.RunJobsUntilQuiescent());
  (void)quiesced;

  const std::string& topic = submitted.output_topic;
  SQS_ASSIGN_OR_RETURN(nparts, env->broker->NumPartitions(topic));
  std::vector<std::vector<Bytes>> out(static_cast<size_t>(nparts));
  for (int32_t p = 0; p < nparts; ++p) {
    SQS_ASSIGN_OR_RETURN(end, env->broker->EndOffset({topic, p}));
    SQS_ASSIGN_OR_RETURN(msgs, env->broker->Fetch({topic, p}, 0,
                                                  static_cast<int32_t>(end)));
    for (const IncomingMessage& m : msgs) out[p].push_back(m.message.value);
  }
  return out;
}

struct FusionCase {
  const char* name;
  const char* query;
  const char* out_format = "";  // "" = avro
};

class FusionByteEquivalence : public ::testing::TestWithParam<FusionCase> {};

TEST_P(FusionByteEquivalence, FusedOutputBytesMatchInterpreted) {
  const FusionCase& fc = GetParam();
  auto fused = RunQueryRaw(fc.query, /*fusion=*/true, fc.out_format);
  ASSERT_TRUE(fused.ok()) << fused.status().ToString();
  auto interpreted = RunQueryRaw(fc.query, /*fusion=*/false, fc.out_format);
  ASSERT_TRUE(interpreted.ok()) << interpreted.status().ToString();

  ASSERT_EQ(fused.value().size(), interpreted.value().size());
  size_t total = 0;
  for (size_t p = 0; p < fused.value().size(); ++p) {
    EXPECT_EQ(fused.value()[p], interpreted.value()[p])
        << "partition " << p << " of " << fc.query;
    total += fused.value()[p].size();
  }
  EXPECT_GT(total, 0u) << "query produced nothing: " << fc.query;
}

INSTANTIATE_TEST_SUITE_P(
    Queries, FusionByteEquivalence,
    ::testing::Values(
        // Identity projection over an identical schema: the passthrough path
        // forwards the original message bytes without any decode.
        FusionCase{"star_passthrough", "SELECT STREAM * FROM Orders"},
        // Passthrough + raw-byte predicate.
        FusionCase{"filter_passthrough",
                   "SELECT STREAM * FROM Orders WHERE units > 50"},
        FusionCase{"filter_project",
                   "SELECT STREAM orderId, units * 2 AS doubled FROM Orders "
                   "WHERE units > 50"},
        // Mixed raw + residual conjuncts, OR forces a residual predicate.
        FusionCase{"filter_compound",
                   "SELECT STREAM orderId FROM Orders WHERE units BETWEEN 20 "
                   "AND 60 AND productId IN (1, 3, 5) OR units = 99"},
        FusionCase{"strings_nullable",
                   "SELECT STREAM orderId, UPPER(pad) AS up FROM Orders "
                   "WHERE pad IS NOT NULL"},
        // Predicate rebasing through a subquery's projection.
        FusionCase{"subquery_rebase",
                   "SELECT STREAM big FROM (SELECT orderId AS big, units AS u "
                   "FROM Orders) WHERE u > 75"},
        FusionCase{"double_compare",
                   "SELECT STREAM orderId, CAST(units AS DOUBLE) / 4 AS q "
                   "FROM Orders WHERE CAST(units AS DOUBLE) / 4 > 12.25"},
        // Non-avro output exercises the re-serialize (non-passthrough) path
        // with a different sink encoding.
        FusionCase{"json_output",
                   "SELECT STREAM orderId, units FROM Orders WHERE units > 30",
                   "json"}),
    [](const ::testing::TestParamInfo<FusionCase>& info) {
      return info.param.name;
    });

// ---------------------------------------------------------------------------
// Exactly-once crash-replay at batch boundaries.

TEST(FusionExactlyOnceTest, CrashReplayAtBatchBoundariesIsByteIdentical) {
  // Same fused query under exactly-once delivery, with and without a
  // mid-stream kill+restart: per-batch producer sequencing must make the
  // replayed log byte-identical to the clean run.
  auto run = [](bool inject_kill) -> Result<std::vector<std::vector<Bytes>>> {
    auto env = SamzaSqlEnvironment::Make();
    SQS_RETURN_IF_ERROR(workload::SetupPaperSources(*env, 2));
    workload::OrdersGeneratorOptions options;
    options.num_products = 15;
    options.seed = 99;
    workload::OrdersGenerator gen(*env, options);
    SQS_ASSIGN_OR_RETURN(produced, gen.Produce(1000));
    (void)produced;

    Config defaults;
    defaults.SetInt(cfg::kContainerCount, 2);
    defaults.SetInt(cfg::kCommitEveryMessages, 40);
    defaults.Set(cfg::kTaskDelivery, "exactly-once");
    defaults.Set(cfg::kCheckpointTopic, "__cp_fusion_eo");
    QueryExecutor executor(env, defaults);
    SQS_ASSIGN_OR_RETURN(
        submitted,
        executor.Execute("SELECT STREAM orderId, units * 2 AS doubled "
                         "FROM Orders WHERE units > 20"));
    if (inject_kill) {
      JobRunner* job = executor.job(submitted.job_index);
      // Kill mid-stream: positions/state since the last transactional
      // checkpoint die, with part of the batch's output already flushed.
      SQS_ASSIGN_OR_RETURN(caught, job->container(0)->RunUntilCaughtUp(250));
      (void)caught;
      SQS_RETURN_IF_ERROR(job->KillContainer(0));
      SQS_RETURN_IF_ERROR(job->RestartContainer(0));
    }
    SQS_ASSIGN_OR_RETURN(quiesced, executor.RunJobsUntilQuiescent());
  (void)quiesced;

    const std::string& topic = submitted.output_topic;
    SQS_ASSIGN_OR_RETURN(nparts, env->broker->NumPartitions(topic));
    std::vector<std::vector<Bytes>> out(static_cast<size_t>(nparts));
    for (int32_t p = 0; p < nparts; ++p) {
      SQS_ASSIGN_OR_RETURN(end, env->broker->EndOffset({topic, p}));
      SQS_ASSIGN_OR_RETURN(msgs, env->broker->Fetch({topic, p}, 0,
                                                    static_cast<int32_t>(end)));
      for (const IncomingMessage& m : msgs) out[p].push_back(m.message.value);
    }
    return out;
  };

  auto clean = run(false);
  ASSERT_TRUE(clean.ok()) << clean.status().ToString();
  auto faulty = run(true);
  ASSERT_TRUE(faulty.ok()) << faulty.status().ToString();
  ASSERT_EQ(clean.value().size(), faulty.value().size());
  size_t total = 0;
  for (size_t p = 0; p < clean.value().size(); ++p) {
    EXPECT_EQ(clean.value()[p], faulty.value()[p]) << "partition " << p;
    total += clean.value()[p].size();
  }
  EXPECT_GT(total, 100u);
}

// ---------------------------------------------------------------------------
// Lazy decode: trailing malformed bytes after the last referenced column
// must not fail the fused path (the walk stops early by design).

TEST(FusionLazyDecodeTest, MalformedTrailingFieldsAreToleratedWhenUnreferenced) {
  auto run = [](bool fusion) -> Result<int64_t> {
    auto env = SamzaSqlEnvironment::Make();
    SQS_RETURN_IF_ERROR(workload::SetupPaperSources(*env, 2));
    workload::OrdersGeneratorOptions options;
    options.seed = 5;
    workload::OrdersGenerator gen(*env, options);
    SQS_ASSIGN_OR_RETURN(produced, gen.Produce(100));
    (void)produced;

    // A record whose rowtime/productId prefix is valid avro but whose tail
    // (orderId onward) is garbage: full deserialization fails, a projected
    // decode of fields {rowtime, productId} never reads that far.
    {
      auto schema = env->catalog->GetSource("Orders").value().schema;
      auto prefix = Schema::Make(
          "OrdersPrefix", {schema->field(0), schema->field(1)});
      AvroRowSerde prefix_serde(prefix);
      Bytes value = prefix_serde.SerializeToBytes(
          {Value(int64_t{1'000}), Value(int32_t{3})});
      value.push_back(0xff);  // dangling varint continuation: poison tail
      Producer raw(env->broker, env->clock);
      SQS_ASSIGN_OR_RETURN(off, raw.SendTo({"Orders", 0}, Bytes{}, value));
      (void)off;
    }

    Config defaults;
    defaults.SetInt(cfg::kContainerCount, 1);
    defaults.Set(cfg::kTaskErrorPolicy, "skip");
    if (!fusion) defaults.Set(sqlcfg::kFusion, "off");
    QueryExecutor executor(env, defaults);
    SQS_ASSIGN_OR_RETURN(
        submitted,
        executor.Execute("SELECT STREAM rowtime, productId FROM Orders"));
    SQS_ASSIGN_OR_RETURN(quiesced, executor.RunJobsUntilQuiescent());
  (void)quiesced;
    SQS_ASSIGN_OR_RETURN(rows, executor.ReadOutputRows(submitted.output_topic));
    return static_cast<int64_t>(rows.size());
  };

  // Fused: the poison tail is never decoded, all 101 records come through.
  auto fused = run(true);
  ASSERT_TRUE(fused.ok()) << fused.status().ToString();
  EXPECT_EQ(fused.value(), 101);
  // Interpreted: the scan's full decode hits the garbage and skips the row.
  auto interpreted = run(false);
  ASSERT_TRUE(interpreted.ok()) << interpreted.status().ToString();
  EXPECT_EQ(interpreted.value(), 100);
}

}  // namespace
}  // namespace sqs::core

// ---------------------------------------------------------------------------
// Unit tests for the fusion planner and kernel (sql namespace).

namespace sqs::sql {
namespace {

LogicalNodePtr PlanQuery(const CatalogPtr& catalog, const std::string& text) {
  auto stmt = ParseStatement(text).value();
  QueryPlanner planner(catalog);
  auto plan = planner.Plan(*stmt.select).value();
  return Optimize(plan);
}

TEST(PlanFusedStagesTest, FusesTerminalFilterProjectChain) {
  auto catalog = testutil::PaperCatalog();
  auto plan = PlanQuery(catalog,
                        "SELECT STREAM orderId, units * 2 AS doubled "
                        "FROM Orders WHERE units > 50");
  auto specs = PlanFusedStages(*plan);
  ASSERT_EQ(specs.size(), 1u);
  const FusedStageSpec& spec = specs[0];
  EXPECT_EQ(spec.first_op, 0);
  EXPECT_EQ(spec.last_op, 2);
  EXPECT_TRUE(spec.reaches_root);
  EXPECT_EQ(spec.label, "fused<op0..op2>");
  ASSERT_EQ(spec.predicates.size(), 1u);
  ASSERT_EQ(spec.projections.size(), 2u);
  // Orders scan schema: rowtime(0), productId(1), orderId(2), units(3), pad(4).
  // Referenced: rowtime (event time), orderId and units; not productId/pad.
  ASSERT_EQ(spec.referenced.size(), 5u);
  EXPECT_TRUE(spec.referenced[0]);
  EXPECT_FALSE(spec.referenced[1]);
  EXPECT_TRUE(spec.referenced[2]);
  EXPECT_TRUE(spec.referenced[3]);
  EXPECT_FALSE(spec.referenced[4]);
}

TEST(PlanFusedStagesTest, BareScanFusesAsSingleOpStage) {
  auto catalog = testutil::PaperCatalog();
  auto plan = PlanQuery(catalog, "SELECT STREAM * FROM Orders");
  auto specs = PlanFusedStages(*plan);
  ASSERT_EQ(specs.size(), 1u);
  EXPECT_TRUE(specs[0].projections.empty()) << "identity projection expected";
  EXPECT_TRUE(specs[0].predicates.empty());
}

TEST(PlanFusedStagesTest, JoinPlansAreNotFused) {
  auto catalog = testutil::PaperCatalog();
  auto plan = PlanQuery(catalog,
                        "SELECT STREAM Orders.orderId, Products.supplierId "
                        "FROM Orders JOIN Products ON "
                        "Orders.productId = Products.productId");
  EXPECT_TRUE(PlanFusedStages(*plan).empty());
}

TEST(PlanFusedStagesTest, PredicatesRebaseThroughSubqueryProjection) {
  auto catalog = testutil::PaperCatalog();
  auto plan = PlanQuery(catalog,
                        "SELECT STREAM big FROM (SELECT orderId AS big, "
                        "units AS u FROM Orders) WHERE u > 75");
  auto specs = PlanFusedStages(*plan);
  ASSERT_EQ(specs.size(), 1u);
  ASSERT_EQ(specs[0].predicates.size(), 1u);
  // "u" is the inner projection's alias for scan column units (index 3):
  // after rebasing, the predicate references the scan schema directly.
  std::vector<int> cols;
  CollectColumnIndices(*specs[0].predicates[0], cols);
  ASSERT_EQ(cols.size(), 1u);
  EXPECT_EQ(cols[0], 3);
  // Output projection "big" maps to scan column orderId (index 2).
  ASSERT_EQ(specs[0].projections.size(), 1u);
}

TEST(FusedStageKernelTest, ClassifiesColumnLiteralComparisonsAsRawPredicates) {
  auto catalog = testutil::PaperCatalog();
  auto serde = std::make_shared<AvroRowSerde>(
      catalog->GetSource("Orders").value().schema);
  auto plan = PlanQuery(catalog,
                        "SELECT STREAM * FROM Orders "
                        "WHERE units > 10 AND pad = 'x' AND 5 < orderId");
  auto specs = PlanFusedStages(*plan);
  ASSERT_EQ(specs.size(), 1u);
  auto kernel = FusedStageKernel::Compile(specs[0], serde, /*passthrough=*/false);
  ASSERT_TRUE(kernel.ok()) << kernel.status().ToString();
  // All three conjuncts compare a column with a literal (one flipped), so
  // all evaluate on raw bytes during the decode walk.
  EXPECT_EQ(kernel.value().num_raw_predicates(), 3u);
}

TEST(FusedStageKernelTest, NonComparableConjunctsFallBackToResidual) {
  auto catalog = testutil::PaperCatalog();
  auto serde = std::make_shared<AvroRowSerde>(
      catalog->GetSource("Orders").value().schema);
  auto plan = PlanQuery(catalog,
                        "SELECT STREAM * FROM Orders "
                        "WHERE units + 1 > 10 OR productId = 2");
  auto specs = PlanFusedStages(*plan);
  ASSERT_EQ(specs.size(), 1u);
  auto kernel = FusedStageKernel::Compile(specs[0], serde, /*passthrough=*/false);
  ASSERT_TRUE(kernel.ok()) << kernel.status().ToString();
  // The lone conjunct is a disjunction over an arithmetic expression: not a
  // raw column/literal comparison, so it compiles to a residual predicate.
  EXPECT_EQ(kernel.value().num_raw_predicates(), 0u);
}

TEST(FusedStageKernelTest, RawPredicateShortCircuitsBeforeFullDecode) {
  auto catalog = testutil::PaperCatalog();
  auto schema = catalog->GetSource("Orders").value().schema;
  auto serde = std::make_shared<AvroRowSerde>(schema);
  auto plan = PlanQuery(catalog,
                        "SELECT STREAM orderId FROM Orders WHERE productId = 7");
  auto specs = PlanFusedStages(*plan);
  ASSERT_EQ(specs.size(), 1u);
  auto kernel = FusedStageKernel::Compile(specs[0], serde, /*passthrough=*/false);
  ASSERT_TRUE(kernel.ok()) << kernel.status().ToString();
  ASSERT_EQ(kernel.value().num_raw_predicates(), 1u);

  AvroRowSerde full(schema);
  Bytes pass = full.SerializeToBytes({Value(int64_t{10}), Value(int32_t{7}),
                                      Value(int64_t{1}), Value(int32_t{4}),
                                      Value("p")});
  auto hit = kernel.value().Apply(pass);
  ASSERT_TRUE(hit.ok()) << hit.status().ToString();
  EXPECT_TRUE(hit.value().pass);
  ASSERT_EQ(hit.value().row.size(), 1u);
  EXPECT_EQ(hit.value().row[0], Value(int64_t{1}));

  Bytes fail = full.SerializeToBytes({Value(int64_t{10}), Value(int32_t{8}),
                                      Value(int64_t{1}), Value(int32_t{4}),
                                      Value("p")});
  auto miss = kernel.value().Apply(fail);
  ASSERT_TRUE(miss.ok()) << miss.status().ToString();
  EXPECT_FALSE(miss.value().pass);
}

TEST(DeserializeProjectedTest, DecodesWantedPrefixAndToleratesPoisonTail) {
  auto catalog = testutil::PaperCatalog();
  auto schema = catalog->GetSource("Orders").value().schema;
  AvroRowSerde serde(schema);
  Bytes bytes = serde.SerializeToBytes({Value(int64_t{99}), Value(int32_t{2}),
                                        Value(int64_t{5}), Value(int32_t{7}),
                                        Value("pad")});

  // Only rowtime + orderId wanted: productId is skipped (stays Null), units
  // and pad are never even walked.
  std::vector<bool> wanted{true, false, true, false, false};
  BytesReader in(bytes);
  auto row = serde.DeserializeProjected(in, wanted);
  ASSERT_TRUE(row.ok()) << row.status().ToString();
  ASSERT_EQ(row.value().size(), 5u);
  EXPECT_EQ(row.value()[0], Value(int64_t{99}));
  EXPECT_TRUE(row.value()[1].is_null());
  EXPECT_EQ(row.value()[2], Value(int64_t{5}));
  EXPECT_TRUE(row.value()[3].is_null());
  EXPECT_TRUE(row.value()[4].is_null());

  // Corrupt everything after orderId: projected decode still succeeds, the
  // full decode fails.
  Bytes truncated(bytes.begin(), bytes.begin() + 4);  // rowtime+productId+orderId
  truncated.push_back(0xff);
  BytesReader in2(truncated);
  auto lazy = serde.DeserializeProjected(in2, wanted);
  EXPECT_TRUE(lazy.ok()) << lazy.status().ToString();
  BytesReader in3(truncated);
  EXPECT_FALSE(serde.Deserialize(in3).ok());
}

}  // namespace
}  // namespace sqs::sql
