
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/catalog_test.cc" "tests/CMakeFiles/samzasql_tests.dir/catalog_test.cc.o" "gcc" "tests/CMakeFiles/samzasql_tests.dir/catalog_test.cc.o.d"
  "/root/repo/tests/common_test.cc" "tests/CMakeFiles/samzasql_tests.dir/common_test.cc.o" "gcc" "tests/CMakeFiles/samzasql_tests.dir/common_test.cc.o.d"
  "/root/repo/tests/e2e_sql_test.cc" "tests/CMakeFiles/samzasql_tests.dir/e2e_sql_test.cc.o" "gcc" "tests/CMakeFiles/samzasql_tests.dir/e2e_sql_test.cc.o.d"
  "/root/repo/tests/equivalence_test.cc" "tests/CMakeFiles/samzasql_tests.dir/equivalence_test.cc.o" "gcc" "tests/CMakeFiles/samzasql_tests.dir/equivalence_test.cc.o.d"
  "/root/repo/tests/functions_test.cc" "tests/CMakeFiles/samzasql_tests.dir/functions_test.cc.o" "gcc" "tests/CMakeFiles/samzasql_tests.dir/functions_test.cc.o.d"
  "/root/repo/tests/kv_test.cc" "tests/CMakeFiles/samzasql_tests.dir/kv_test.cc.o" "gcc" "tests/CMakeFiles/samzasql_tests.dir/kv_test.cc.o.d"
  "/root/repo/tests/log_test.cc" "tests/CMakeFiles/samzasql_tests.dir/log_test.cc.o" "gcc" "tests/CMakeFiles/samzasql_tests.dir/log_test.cc.o.d"
  "/root/repo/tests/ops_test.cc" "tests/CMakeFiles/samzasql_tests.dir/ops_test.cc.o" "gcc" "tests/CMakeFiles/samzasql_tests.dir/ops_test.cc.o.d"
  "/root/repo/tests/planner_test.cc" "tests/CMakeFiles/samzasql_tests.dir/planner_test.cc.o" "gcc" "tests/CMakeFiles/samzasql_tests.dir/planner_test.cc.o.d"
  "/root/repo/tests/robustness_test.cc" "tests/CMakeFiles/samzasql_tests.dir/robustness_test.cc.o" "gcc" "tests/CMakeFiles/samzasql_tests.dir/robustness_test.cc.o.d"
  "/root/repo/tests/serde_test.cc" "tests/CMakeFiles/samzasql_tests.dir/serde_test.cc.o" "gcc" "tests/CMakeFiles/samzasql_tests.dir/serde_test.cc.o.d"
  "/root/repo/tests/shell_test.cc" "tests/CMakeFiles/samzasql_tests.dir/shell_test.cc.o" "gcc" "tests/CMakeFiles/samzasql_tests.dir/shell_test.cc.o.d"
  "/root/repo/tests/sql_frontend_test.cc" "tests/CMakeFiles/samzasql_tests.dir/sql_frontend_test.cc.o" "gcc" "tests/CMakeFiles/samzasql_tests.dir/sql_frontend_test.cc.o.d"
  "/root/repo/tests/stress_test.cc" "tests/CMakeFiles/samzasql_tests.dir/stress_test.cc.o" "gcc" "tests/CMakeFiles/samzasql_tests.dir/stress_test.cc.o.d"
  "/root/repo/tests/task_test.cc" "tests/CMakeFiles/samzasql_tests.dir/task_test.cc.o" "gcc" "tests/CMakeFiles/samzasql_tests.dir/task_test.cc.o.d"
  "/root/repo/tests/zk_test.cc" "tests/CMakeFiles/samzasql_tests.dir/zk_test.cc.o" "gcc" "tests/CMakeFiles/samzasql_tests.dir/zk_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/samzasql.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
