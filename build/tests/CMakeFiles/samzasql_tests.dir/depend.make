# Empty dependencies file for samzasql_tests.
# This may be replaced when dependencies are built.
