file(REMOVE_RECURSE
  "CMakeFiles/bench_usability.dir/bench_usability.cc.o"
  "CMakeFiles/bench_usability.dir/bench_usability.cc.o.d"
  "bench_usability"
  "bench_usability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_usability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
