# Empty dependencies file for bench_ablation_serde.
# This may be replaced when dependencies are built.
