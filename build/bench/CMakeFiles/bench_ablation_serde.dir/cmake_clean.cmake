file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_serde.dir/bench_ablation_serde.cc.o"
  "CMakeFiles/bench_ablation_serde.dir/bench_ablation_serde.cc.o.d"
  "bench_ablation_serde"
  "bench_ablation_serde.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_serde.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
