# Empty compiler generated dependencies file for bench_project.
# This may be replaced when dependencies are built.
