file(REMOVE_RECURSE
  "CMakeFiles/bench_project.dir/bench_project.cc.o"
  "CMakeFiles/bench_project.dir/bench_project.cc.o.d"
  "bench_project"
  "bench_project.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_project.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
