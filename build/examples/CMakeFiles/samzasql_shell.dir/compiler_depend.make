# Empty compiler generated dependencies file for samzasql_shell.
# This may be replaced when dependencies are built.
