file(REMOVE_RECURSE
  "CMakeFiles/samzasql_shell.dir/samzasql_shell.cpp.o"
  "CMakeFiles/samzasql_shell.dir/samzasql_shell.cpp.o.d"
  "samzasql_shell"
  "samzasql_shell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/samzasql_shell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
