# Empty compiler generated dependencies file for packet_latency.
# This may be replaced when dependencies are built.
