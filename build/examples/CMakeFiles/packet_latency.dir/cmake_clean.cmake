file(REMOVE_RECURSE
  "CMakeFiles/packet_latency.dir/packet_latency.cpp.o"
  "CMakeFiles/packet_latency.dir/packet_latency.cpp.o.d"
  "packet_latency"
  "packet_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/packet_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
