# Empty dependencies file for enrichment_join.
# This may be replaced when dependencies are built.
