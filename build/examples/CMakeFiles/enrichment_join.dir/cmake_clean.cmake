file(REMOVE_RECURSE
  "CMakeFiles/enrichment_join.dir/enrichment_join.cpp.o"
  "CMakeFiles/enrichment_join.dir/enrichment_join.cpp.o.d"
  "enrichment_join"
  "enrichment_join.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/enrichment_join.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
