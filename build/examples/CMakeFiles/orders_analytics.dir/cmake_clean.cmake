file(REMOVE_RECURSE
  "CMakeFiles/orders_analytics.dir/orders_analytics.cpp.o"
  "CMakeFiles/orders_analytics.dir/orders_analytics.cpp.o.d"
  "orders_analytics"
  "orders_analytics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/orders_analytics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
