# Empty dependencies file for orders_analytics.
# This may be replaced when dependencies are built.
