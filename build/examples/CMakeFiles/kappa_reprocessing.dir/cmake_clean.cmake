file(REMOVE_RECURSE
  "CMakeFiles/kappa_reprocessing.dir/kappa_reprocessing.cpp.o"
  "CMakeFiles/kappa_reprocessing.dir/kappa_reprocessing.cpp.o.d"
  "kappa_reprocessing"
  "kappa_reprocessing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kappa_reprocessing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
