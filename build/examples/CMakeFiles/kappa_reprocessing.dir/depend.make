# Empty dependencies file for kappa_reprocessing.
# This may be replaced when dependencies are built.
