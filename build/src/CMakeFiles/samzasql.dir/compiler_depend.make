# Empty compiler generated dependencies file for samzasql.
# This may be replaced when dependencies are built.
