
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baseline/native_tasks.cc" "src/CMakeFiles/samzasql.dir/baseline/native_tasks.cc.o" "gcc" "src/CMakeFiles/samzasql.dir/baseline/native_tasks.cc.o.d"
  "/root/repo/src/common/config.cc" "src/CMakeFiles/samzasql.dir/common/config.cc.o" "gcc" "src/CMakeFiles/samzasql.dir/common/config.cc.o.d"
  "/root/repo/src/common/metrics.cc" "src/CMakeFiles/samzasql.dir/common/metrics.cc.o" "gcc" "src/CMakeFiles/samzasql.dir/common/metrics.cc.o.d"
  "/root/repo/src/common/status.cc" "src/CMakeFiles/samzasql.dir/common/status.cc.o" "gcc" "src/CMakeFiles/samzasql.dir/common/status.cc.o.d"
  "/root/repo/src/common/value.cc" "src/CMakeFiles/samzasql.dir/common/value.cc.o" "gcc" "src/CMakeFiles/samzasql.dir/common/value.cc.o.d"
  "/root/repo/src/core/executor.cc" "src/CMakeFiles/samzasql.dir/core/executor.cc.o" "gcc" "src/CMakeFiles/samzasql.dir/core/executor.cc.o.d"
  "/root/repo/src/core/shell.cc" "src/CMakeFiles/samzasql.dir/core/shell.cc.o" "gcc" "src/CMakeFiles/samzasql.dir/core/shell.cc.o.d"
  "/root/repo/src/core/task.cc" "src/CMakeFiles/samzasql.dir/core/task.cc.o" "gcc" "src/CMakeFiles/samzasql.dir/core/task.cc.o.d"
  "/root/repo/src/kv/changelog.cc" "src/CMakeFiles/samzasql.dir/kv/changelog.cc.o" "gcc" "src/CMakeFiles/samzasql.dir/kv/changelog.cc.o.d"
  "/root/repo/src/kv/store.cc" "src/CMakeFiles/samzasql.dir/kv/store.cc.o" "gcc" "src/CMakeFiles/samzasql.dir/kv/store.cc.o.d"
  "/root/repo/src/log/broker.cc" "src/CMakeFiles/samzasql.dir/log/broker.cc.o" "gcc" "src/CMakeFiles/samzasql.dir/log/broker.cc.o.d"
  "/root/repo/src/log/consumer.cc" "src/CMakeFiles/samzasql.dir/log/consumer.cc.o" "gcc" "src/CMakeFiles/samzasql.dir/log/consumer.cc.o.d"
  "/root/repo/src/log/producer.cc" "src/CMakeFiles/samzasql.dir/log/producer.cc.o" "gcc" "src/CMakeFiles/samzasql.dir/log/producer.cc.o.d"
  "/root/repo/src/ops/basic.cc" "src/CMakeFiles/samzasql.dir/ops/basic.cc.o" "gcc" "src/CMakeFiles/samzasql.dir/ops/basic.cc.o.d"
  "/root/repo/src/ops/join.cc" "src/CMakeFiles/samzasql.dir/ops/join.cc.o" "gcc" "src/CMakeFiles/samzasql.dir/ops/join.cc.o.d"
  "/root/repo/src/ops/router.cc" "src/CMakeFiles/samzasql.dir/ops/router.cc.o" "gcc" "src/CMakeFiles/samzasql.dir/ops/router.cc.o.d"
  "/root/repo/src/ops/window.cc" "src/CMakeFiles/samzasql.dir/ops/window.cc.o" "gcc" "src/CMakeFiles/samzasql.dir/ops/window.cc.o.d"
  "/root/repo/src/serde/json.cc" "src/CMakeFiles/samzasql.dir/serde/json.cc.o" "gcc" "src/CMakeFiles/samzasql.dir/serde/json.cc.o.d"
  "/root/repo/src/serde/registry.cc" "src/CMakeFiles/samzasql.dir/serde/registry.cc.o" "gcc" "src/CMakeFiles/samzasql.dir/serde/registry.cc.o.d"
  "/root/repo/src/serde/schema.cc" "src/CMakeFiles/samzasql.dir/serde/schema.cc.o" "gcc" "src/CMakeFiles/samzasql.dir/serde/schema.cc.o.d"
  "/root/repo/src/serde/serde.cc" "src/CMakeFiles/samzasql.dir/serde/serde.cc.o" "gcc" "src/CMakeFiles/samzasql.dir/serde/serde.cc.o.d"
  "/root/repo/src/sql/ast.cc" "src/CMakeFiles/samzasql.dir/sql/ast.cc.o" "gcc" "src/CMakeFiles/samzasql.dir/sql/ast.cc.o.d"
  "/root/repo/src/sql/batch_eval.cc" "src/CMakeFiles/samzasql.dir/sql/batch_eval.cc.o" "gcc" "src/CMakeFiles/samzasql.dir/sql/batch_eval.cc.o.d"
  "/root/repo/src/sql/catalog.cc" "src/CMakeFiles/samzasql.dir/sql/catalog.cc.o" "gcc" "src/CMakeFiles/samzasql.dir/sql/catalog.cc.o.d"
  "/root/repo/src/sql/expr.cc" "src/CMakeFiles/samzasql.dir/sql/expr.cc.o" "gcc" "src/CMakeFiles/samzasql.dir/sql/expr.cc.o.d"
  "/root/repo/src/sql/functions.cc" "src/CMakeFiles/samzasql.dir/sql/functions.cc.o" "gcc" "src/CMakeFiles/samzasql.dir/sql/functions.cc.o.d"
  "/root/repo/src/sql/lexer.cc" "src/CMakeFiles/samzasql.dir/sql/lexer.cc.o" "gcc" "src/CMakeFiles/samzasql.dir/sql/lexer.cc.o.d"
  "/root/repo/src/sql/logical.cc" "src/CMakeFiles/samzasql.dir/sql/logical.cc.o" "gcc" "src/CMakeFiles/samzasql.dir/sql/logical.cc.o.d"
  "/root/repo/src/sql/optimizer.cc" "src/CMakeFiles/samzasql.dir/sql/optimizer.cc.o" "gcc" "src/CMakeFiles/samzasql.dir/sql/optimizer.cc.o.d"
  "/root/repo/src/sql/parser.cc" "src/CMakeFiles/samzasql.dir/sql/parser.cc.o" "gcc" "src/CMakeFiles/samzasql.dir/sql/parser.cc.o.d"
  "/root/repo/src/sql/planner.cc" "src/CMakeFiles/samzasql.dir/sql/planner.cc.o" "gcc" "src/CMakeFiles/samzasql.dir/sql/planner.cc.o.d"
  "/root/repo/src/task/api.cc" "src/CMakeFiles/samzasql.dir/task/api.cc.o" "gcc" "src/CMakeFiles/samzasql.dir/task/api.cc.o.d"
  "/root/repo/src/task/checkpoint.cc" "src/CMakeFiles/samzasql.dir/task/checkpoint.cc.o" "gcc" "src/CMakeFiles/samzasql.dir/task/checkpoint.cc.o.d"
  "/root/repo/src/task/container.cc" "src/CMakeFiles/samzasql.dir/task/container.cc.o" "gcc" "src/CMakeFiles/samzasql.dir/task/container.cc.o.d"
  "/root/repo/src/task/model.cc" "src/CMakeFiles/samzasql.dir/task/model.cc.o" "gcc" "src/CMakeFiles/samzasql.dir/task/model.cc.o.d"
  "/root/repo/src/task/runner.cc" "src/CMakeFiles/samzasql.dir/task/runner.cc.o" "gcc" "src/CMakeFiles/samzasql.dir/task/runner.cc.o.d"
  "/root/repo/src/workload/generators.cc" "src/CMakeFiles/samzasql.dir/workload/generators.cc.o" "gcc" "src/CMakeFiles/samzasql.dir/workload/generators.cc.o.d"
  "/root/repo/src/zk/zookeeper.cc" "src/CMakeFiles/samzasql.dir/zk/zookeeper.cc.o" "gcc" "src/CMakeFiles/samzasql.dir/zk/zookeeper.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
