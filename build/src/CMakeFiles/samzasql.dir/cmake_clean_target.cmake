file(REMOVE_RECURSE
  "libsamzasql.a"
)
