// Changelog-backed store: every write is mirrored to one partition of a
// (compacted) changelog topic; Restore() rebuilds the in-memory state by
// replaying that partition. This is how Samza makes task-local state
// fault tolerant (§2), and how the paper's sliding-window operator and
// stream-to-relation join survive task failure (§4.3–4.4).
#pragma once

#include <memory>
#include <string>

#include "common/metrics.h"
#include "common/status.h"
#include "kv/store.h"
#include "log/broker.h"

namespace sqs {

class ChangelogBackedStore : public KeyValueStore {
 public:
  // `sp` is the changelog partition for this task (same partition id as the
  // task's input partitions, so restore-after-reschedule finds its data).
  ChangelogBackedStore(KeyValueStorePtr backing, BrokerPtr broker, StreamPartition sp)
      : backing_(std::move(backing)), broker_(std::move(broker)), sp_(std::move(sp)) {}

  std::optional<Bytes> Get(const Bytes& key) const override { return backing_->Get(key); }

  void Put(const Bytes& key, Bytes value) override;
  void Delete(const Bytes& key) override;

  void Range(const Bytes& from, const Bytes& to, const RangeCallback& cb) const override {
    backing_->Range(from, to, cb);
  }
  void All(const RangeCallback& cb) const override { backing_->All(cb); }
  size_t Size() const override { return backing_->Size(); }
  void Clear() override;

  // Replay the changelog partition from the beginning into the (cleared)
  // backing store. An empty changelog value is a tombstone (delete).
  Status Restore();

  const StreamPartition& changelog_partition() const { return sp_; }

  // Attach write-volume instruments (scoped `changelog_writes` /
  // `changelog_bytes` counters). Optional; writes are uncounted until bound.
  void BindMetrics(Counter* writes, Counter* bytes) {
    writes_ = writes;
    bytes_ = bytes;
  }

 private:
  void CountWrite(size_t key_bytes, size_t value_bytes) {
    if (writes_ == nullptr) return;
    writes_->Inc();
    bytes_->Inc(static_cast<int64_t>(key_bytes + value_bytes));
  }

  KeyValueStorePtr backing_;
  BrokerPtr broker_;
  StreamPartition sp_;
  Counter* writes_ = nullptr;  // changelog appends (puts + tombstones)
  Counter* bytes_ = nullptr;   // key + value bytes appended
};

}  // namespace sqs
