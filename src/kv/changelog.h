// Changelog-backed store: every write is mirrored to one partition of a
// (compacted) changelog topic; Restore() rebuilds the in-memory state by
// replaying that partition. This is how Samza makes task-local state
// fault tolerant (§2), and how the paper's sliding-window operator and
// stream-to-relation join survive task failure (§4.3–4.4).
#pragma once

#include <memory>
#include <string>

#include "common/metrics.h"
#include "common/retry.h"
#include "common/status.h"
#include "kv/store.h"
#include "log/broker.h"

namespace sqs {

class ChangelogBackedStore : public KeyValueStore {
 public:
  // `sp` is the changelog partition for this task (same partition id as the
  // task's input partitions, so restore-after-reschedule finds its data).
  ChangelogBackedStore(KeyValueStorePtr backing, BrokerPtr broker, StreamPartition sp)
      : backing_(std::move(backing)), broker_(std::move(broker)), sp_(std::move(sp)) {}

  std::optional<Bytes> Get(const Bytes& key) const override { return backing_->Get(key); }

  // Put/Delete mirror the write to the changelog first. A broker append
  // failure (after retries) does NOT throw and does NOT apply the write to
  // the backing store — it records a sticky error instead, which the
  // container checks via health() before committing. KeyValueStore's write
  // signatures stay void, so operator code is unchanged; the failure
  // surfaces as a clean task error at the commit boundary rather than an
  // exception unwinding through Status-based code.
  void Put(const Bytes& key, Bytes value) override;
  void Delete(const Bytes& key) override;

  // Ok until a changelog append has permanently failed; then the first
  // failure, sticky until Restore() rebuilds consistent state.
  Status health() const { return health_; }

  void Range(const Bytes& from, const Bytes& to, const RangeCallback& cb) const override {
    backing_->Range(from, to, cb);
  }
  void All(const RangeCallback& cb) const override { backing_->All(cb); }
  size_t Size() const override { return backing_->Size(); }
  int64_t SizeBytes() const override { return backing_->SizeBytes(); }
  void Clear() override;

  // Replay the changelog partition from the beginning into the (cleared)
  // backing store. An empty changelog value is a tombstone (delete).
  // Success resets the sticky health error: replayed state is exactly what
  // the changelog holds, so the store is consistent again.
  //
  // `up_to` < 0 replays everything (the at-least-once default); otherwise
  // replay stops at that offset (exclusive) — exactly-once restore truncates
  // at the checkpointed high-watermark so state never gets ahead of the
  // committed input position. Records are CRC-verified as they are fetched.
  Status Restore(int64_t up_to = -1);

  const StreamPartition& changelog_partition() const { return sp_; }

  // Transient (Unavailable) changelog append/fetch failures are retried
  // under this policy; default is no retry.
  void SetRetryPolicy(RetryPolicy policy) { retrier_.SetPolicy(policy); }
  void BindRetryMetrics(Counter* retries, Counter* giveups,
                        Counter* giveup_deadline = nullptr) {
    retrier_.BindMetrics(retries, giveups, giveup_deadline);
  }

  // Attach write-volume instruments (scoped `changelog_writes` /
  // `changelog_bytes` counters). Optional; writes are uncounted until bound.
  void BindMetrics(Counter* writes, Counter* bytes) {
    writes_ = writes;
    bytes_ = bytes;
  }

 private:
  Status AppendWithRetry(const Bytes& key, const Bytes& value);
  void CountWrite(size_t key_bytes, size_t value_bytes) {
    if (writes_ == nullptr) return;
    writes_->Inc();
    bytes_->Inc(static_cast<int64_t>(key_bytes + value_bytes));
  }

  KeyValueStorePtr backing_;
  BrokerPtr broker_;
  StreamPartition sp_;
  Status health_;  // sticky first changelog failure
  Retrier retrier_;
  Counter* writes_ = nullptr;  // changelog appends (puts + tombstones)
  Counter* bytes_ = nullptr;   // key + value bytes appended
};

}  // namespace sqs
