#include "kv/store.h"

#include "common/clock.h"

#include <list>

namespace sqs {

std::optional<Bytes> CachedStore::Get(const Bytes& key) const {
  auto it = cache_.find(key);
  if (it != cache_.end()) {
    Touch(key);
    return it->second.first;
  }
  auto v = backing_->Get(key);
  if (v) Insert(key, *v);
  return v;
}

void CachedStore::Put(const Bytes& key, Bytes value) {
  backing_->Put(key, value);
  Insert(key, std::move(value));
}

void CachedStore::Delete(const Bytes& key) {
  backing_->Delete(key);
  auto it = cache_.find(key);
  if (it != cache_.end()) {
    lru_.erase(it->second.second);
    cache_.erase(it);
  }
}

void CachedStore::Touch(const Bytes& key) const {
  auto it = cache_.find(key);
  if (it == cache_.end()) return;
  lru_.erase(it->second.second);
  lru_.push_front(key);
  it->second.second = lru_.begin();
}

void CachedStore::Insert(const Bytes& key, Bytes value) const {
  auto it = cache_.find(key);
  if (it != cache_.end()) {
    it->second.first = std::move(value);
    Touch(key);
    return;
  }
  lru_.push_front(key);
  cache_[key] = {std::move(value), lru_.begin()};
  while (cache_.size() > max_entries_ && !lru_.empty()) {
    cache_.erase(lru_.back());
    lru_.pop_back();
  }
}

}  // namespace sqs

namespace sqs {

void LatencyStore::Spin(int64_t nanos) {
  if (nanos <= 0) return;
  int64_t until = MonotonicNanos() + nanos;
  while (MonotonicNanos() < until) {
    // busy-wait: simulated store access must consume real CPU time
  }
}

}  // namespace sqs
