#include "kv/changelog.h"

#include "common/logging.h"

namespace sqs {

void ChangelogBackedStore::Put(const Bytes& key, Bytes value) {
  Message m;
  m.key = key;
  m.value = value;
  auto st = broker_->Append(sp_, std::move(m));
  if (!st.ok()) {
    throw std::runtime_error("changelog append failed: " + st.status().ToString());
  }
  CountWrite(key.size(), value.size());
  backing_->Put(key, std::move(value));
}

void ChangelogBackedStore::Delete(const Bytes& key) {
  Message m;
  m.key = key;
  m.value = Bytes{};  // tombstone
  auto st = broker_->Append(sp_, std::move(m));
  if (!st.ok()) {
    throw std::runtime_error("changelog append failed: " + st.status().ToString());
  }
  CountWrite(key.size(), 0);
  backing_->Delete(key);
}

void ChangelogBackedStore::Clear() { backing_->Clear(); }

Status ChangelogBackedStore::Restore() {
  backing_->Clear();
  SQS_ASSIGN_OR_RETURN(begin, broker_->BeginOffset(sp_));
  SQS_ASSIGN_OR_RETURN(end, broker_->EndOffset(sp_));
  int64_t pos = begin;
  int64_t restored = 0;
  while (pos < end) {
    SQS_ASSIGN_OR_RETURN(batch, broker_->Fetch(sp_, pos, 1024));
    if (batch.empty()) break;
    for (auto& m : batch) {
      if (m.message.value.empty()) {
        backing_->Delete(m.message.key);
      } else {
        backing_->Put(m.message.key, std::move(m.message.value));
      }
      ++restored;
    }
    pos += static_cast<int64_t>(batch.size());
  }
  SQS_DEBUG("restored " << restored << " changelog entries from " << sp_.ToString());
  return Status::Ok();
}

}  // namespace sqs
