#include "kv/changelog.h"

#include <algorithm>

#include "common/logging.h"

namespace sqs {

Status ChangelogBackedStore::AppendWithRetry(const Bytes& key, const Bytes& value) {
  return retrier_.Run([&]() -> Status {
    Message m;
    m.key = key;
    m.value = value;
    StampMessageCrc(m);
    auto r = broker_->Append(sp_, std::move(m));
    return r.ok() ? Status::Ok() : r.status();
  });
}

void ChangelogBackedStore::Put(const Bytes& key, Bytes value) {
  if (!health_.ok()) return;  // already failed; don't diverge further
  Status st = AppendWithRetry(key, value);
  if (!st.ok()) {
    health_ = st;
    SQS_ERRORC("changelog", "append failed, store unhealthy until restore",
               {"partition", sp_.ToString()}, {"error", st.ToString()});
    return;  // backing store untouched: it never holds un-logged state
  }
  CountWrite(key.size(), value.size());
  backing_->Put(key, std::move(value));
}

void ChangelogBackedStore::Delete(const Bytes& key) {
  if (!health_.ok()) return;
  Status st = AppendWithRetry(key, Bytes{});  // tombstone
  if (!st.ok()) {
    health_ = st;
    SQS_ERRORC("changelog", "tombstone append failed, store unhealthy until restore",
               {"partition", sp_.ToString()}, {"error", st.ToString()});
    return;
  }
  CountWrite(key.size(), 0);
  backing_->Delete(key);
}

void ChangelogBackedStore::Clear() { backing_->Clear(); }

Status ChangelogBackedStore::Restore(int64_t up_to) {
  backing_->Clear();
  SQS_ASSIGN_OR_RETURN(begin, broker_->BeginOffset(sp_));
  SQS_ASSIGN_OR_RETURN(end, broker_->EndOffset(sp_));
  if (up_to >= 0 && up_to < end) end = up_to;
  int64_t pos = begin;
  int64_t restored = 0;
  while (pos < end) {
    std::vector<IncomingMessage> batch;
    int32_t limit = static_cast<int32_t>(std::min<int64_t>(1024, end - pos));
    SQS_RETURN_IF_ERROR(retrier_.Run([&]() -> Status {
      auto r = broker_->Fetch(sp_, pos, limit);
      if (!r.ok()) return r.status();
      batch = std::move(r).value();
      // CRC check inside the retried fetch: the injector corrupts the
      // fetched copies, not the log, so a refetch heals it — the same
      // transient class as an Unavailable fetch.
      for (const auto& m : batch) {
        if (!MessageCrcValid(m.message)) {
          return Status::Unavailable("changelog crc mismatch at " +
                                     sp_.ToString() + "@" +
                                     std::to_string(m.offset));
        }
      }
      return Status::Ok();
    }));
    if (batch.empty()) break;
    for (auto& m : batch) {
      if (m.message.value.empty()) {
        backing_->Delete(m.message.key);
      } else {
        backing_->Put(m.message.key, std::move(m.message.value));
      }
      ++restored;
    }
    pos += static_cast<int64_t>(batch.size());
  }
  // Replayed state matches the changelog exactly — any sticky write failure
  // from the previous incarnation is moot now.
  health_ = Status::Ok();
  SQS_DEBUG("restored " << restored << " changelog entries from " << sp_.ToString());
  return Status::Ok();
}

}  // namespace sqs
