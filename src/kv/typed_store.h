// Typed views over a byte-oriented KeyValueStore. Each access pays a real
// serialize/deserialize through the configured serde — this is the cost
// center the paper's evaluation identifies: the sliding-window operator is
// dominated by KV read/write (Figure 6), and the SQL join is ~2x slower
// than native because its state uses Kryo-style deserialization (§5.1).
#pragma once

#include <optional>
#include <utility>

#include "common/status.h"
#include "common/value.h"
#include "kv/store.h"
#include "serde/serde.h"

namespace sqs {

// Rows keyed by an order-preserving encoded key.
class RowStore {
 public:
  RowStore(KeyValueStorePtr store, RowSerdePtr serde)
      : store_(std::move(store)), serde_(std::move(serde)) {}

  void Put(const Value& key, const Row& row) {
    store_->Put(EncodeOrderedKey(key), serde_->SerializeToBytes(row));
  }
  void Put(const Row& composite_key, const Row& row) {
    store_->Put(EncodeOrderedKey(composite_key), serde_->SerializeToBytes(row));
  }

  std::optional<Row> Get(const Value& key) const { return GetRaw(EncodeOrderedKey(key)); }
  std::optional<Row> Get(const Row& composite_key) const {
    return GetRaw(EncodeOrderedKey(composite_key));
  }

  void Delete(const Value& key) { store_->Delete(EncodeOrderedKey(key)); }
  void Delete(const Row& composite_key) { store_->Delete(EncodeOrderedKey(composite_key)); }

  // In-order scan of keys in [from, to) (encoded ordering == value ordering
  // for same-kind scalar keys). Callback returns false to stop.
  void Range(const Value& from, const Value& to,
             const std::function<bool(const Row&)>& cb) const {
    store_->Range(EncodeOrderedKey(from), EncodeOrderedKey(to),
                  [&](const Bytes&, const Bytes& v) {
                    auto row = serde_->DeserializeBytes(v);
                    if (!row.ok()) {
                      throw std::runtime_error("row store corrupt: " + row.status().ToString());
                    }
                    return cb(row.value());
                  });
  }

  size_t Size() const { return store_->Size(); }
  KeyValueStore& raw() { return *store_; }

 private:
  std::optional<Row> GetRaw(const Bytes& key) const {
    auto bytes = store_->Get(key);
    if (!bytes) return std::nullopt;
    auto row = serde_->DeserializeBytes(*bytes);
    if (!row.ok()) {
      throw std::runtime_error("row store corrupt: " + row.status().ToString());
    }
    return std::move(row).value();
  }

  KeyValueStorePtr store_;
  RowSerdePtr serde_;
};

// Scalar values keyed by string (window bounds, running aggregates, ...).
class ScalarStore {
 public:
  explicit ScalarStore(KeyValueStorePtr store) : store_(std::move(store)) {}

  void Put(const std::string& key, const Value& v) {
    BytesWriter w(16);
    Status st = SerializeTaggedValue(v, w);
    if (!st.ok()) throw std::runtime_error(st.ToString());
    store_->Put(ToBytes(key), w.Take());
  }

  std::optional<Value> Get(const std::string& key) const {
    auto bytes = store_->Get(ToBytes(key));
    if (!bytes) return std::nullopt;
    BytesReader r(*bytes);
    auto v = DeserializeTaggedValue(r);
    if (!v.ok()) throw std::runtime_error("scalar store corrupt: " + v.status().ToString());
    return std::move(v).value();
  }

  void Delete(const std::string& key) { store_->Delete(ToBytes(key)); }

 private:
  KeyValueStorePtr store_;
};

}  // namespace sqs
