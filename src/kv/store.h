// Local key-value state stores, mirroring Samza's managed task-local
// storage (§2 "Fault-tolerant Local State"). Byte-oriented interface with
// ordered iteration (needed by the sliding-window operator's time-indexed
// message store) plus typed wrappers in typed_store.h.
#pragma once

#include <cstdint>
#include <functional>
#include <list>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"

namespace sqs {

class KeyValueStore {
 public:
  virtual ~KeyValueStore() = default;

  virtual std::optional<Bytes> Get(const Bytes& key) const = 0;
  virtual void Put(const Bytes& key, Bytes value) = 0;
  virtual void Delete(const Bytes& key) = 0;

  // In-order scan of [from, to). Callback returns false to stop early.
  using RangeCallback = std::function<bool(const Bytes& key, const Bytes& value)>;
  virtual void Range(const Bytes& from, const Bytes& to, const RangeCallback& cb) const = 0;

  // In-order scan of the whole store.
  virtual void All(const RangeCallback& cb) const = 0;

  virtual size_t Size() const = 0;

  // Resident payload bytes (keys + values). Feeds the per-job resource
  // ledger's state high-water mark (docs/LATENCY.md); stores that cannot
  // account cheaply may report 0.
  virtual int64_t SizeBytes() const { return 0; }

  virtual void Clear() = 0;
};

using KeyValueStorePtr = std::shared_ptr<KeyValueStore>;

// Ordered in-memory store (std::map keyed bytewise). Plays the role of
// Samza's RocksDB-backed store; bytewise ordering matches EncodeOrderedKey.
class InMemoryStore : public KeyValueStore {
 public:
  std::optional<Bytes> Get(const Bytes& key) const override {
    auto it = map_.find(key);
    if (it == map_.end()) return std::nullopt;
    return it->second;
  }
  void Put(const Bytes& key, Bytes value) override {
    auto it = map_.find(key);
    if (it == map_.end()) {
      bytes_ += static_cast<int64_t>(key.size() + value.size());
      map_.emplace(key, std::move(value));
    } else {
      bytes_ += static_cast<int64_t>(value.size()) -
                static_cast<int64_t>(it->second.size());
      it->second = std::move(value);
    }
  }
  void Delete(const Bytes& key) override {
    auto it = map_.find(key);
    if (it == map_.end()) return;
    bytes_ -= static_cast<int64_t>(it->first.size() + it->second.size());
    map_.erase(it);
  }

  void Range(const Bytes& from, const Bytes& to, const RangeCallback& cb) const override {
    for (auto it = map_.lower_bound(from); it != map_.end() && it->first < to; ++it) {
      if (!cb(it->first, it->second)) return;
    }
  }
  void All(const RangeCallback& cb) const override {
    for (const auto& [k, v] : map_) {
      if (!cb(k, v)) return;
    }
  }

  size_t Size() const override { return map_.size(); }
  int64_t SizeBytes() const override { return bytes_; }
  void Clear() override {
    map_.clear();
    bytes_ = 0;
  }

 private:
  std::map<Bytes, Bytes> map_;
  int64_t bytes_ = 0;  // incremental Σ key+value sizes of live entries
};

// Write-through cache wrapper (Samza's CachedStore): bounds the number of
// cached entries; reads hit the cache first. Invariant: cache is a subset
// of the backing store's live entries.
class CachedStore : public KeyValueStore {
 public:
  CachedStore(KeyValueStorePtr backing, size_t max_entries)
      : backing_(std::move(backing)), max_entries_(max_entries) {}

  std::optional<Bytes> Get(const Bytes& key) const override;
  void Put(const Bytes& key, Bytes value) override;
  void Delete(const Bytes& key) override;
  void Range(const Bytes& from, const Bytes& to, const RangeCallback& cb) const override {
    backing_->Range(from, to, cb);
  }
  void All(const RangeCallback& cb) const override { backing_->All(cb); }
  size_t Size() const override { return backing_->Size(); }
  int64_t SizeBytes() const override { return backing_->SizeBytes(); }
  void Clear() override {
    cache_.clear();
    lru_.clear();
    backing_->Clear();
  }

  size_t CacheEntries() const { return cache_.size(); }

 private:
  void Touch(const Bytes& key) const;
  void Insert(const Bytes& key, Bytes value) const;

  KeyValueStorePtr backing_;
  size_t max_entries_;
  // LRU bookkeeping; mutable because Get() updates recency.
  mutable std::map<Bytes, std::pair<Bytes, std::list<Bytes>::iterator>> cache_;
  mutable std::list<Bytes> lru_;  // front = most recent
};

// Models the access latency of a disk-backed store (the paper's task-local
// stores are RocksDB instances whose read/write cost dominates the sliding
// window throughput, Figure 6; on EC2 they even hit I/O throttling). Each
// Get/Put/Delete spins for `latency_nanos` of real CPU time on top of the
// wrapped store's work, so measured throughput reflects store-bound
// behaviour. Scans charge once per visited entry.
class LatencyStore : public KeyValueStore {
 public:
  LatencyStore(KeyValueStorePtr backing, int64_t latency_nanos)
      : backing_(std::move(backing)), latency_nanos_(latency_nanos) {}

  std::optional<Bytes> Get(const Bytes& key) const override {
    Spin(latency_nanos_);
    return backing_->Get(key);
  }
  void Put(const Bytes& key, Bytes value) override {
    Spin(latency_nanos_);
    backing_->Put(key, std::move(value));
  }
  void Delete(const Bytes& key) override {
    Spin(latency_nanos_);
    backing_->Delete(key);
  }
  void Range(const Bytes& from, const Bytes& to, const RangeCallback& cb) const override {
    backing_->Range(from, to, [&](const Bytes& k, const Bytes& v) {
      Spin(latency_nanos_ / 4);  // sequential reads are cheaper than seeks
      return cb(k, v);
    });
  }
  void All(const RangeCallback& cb) const override {
    backing_->All(cb);
  }
  size_t Size() const override { return backing_->Size(); }
  int64_t SizeBytes() const override { return backing_->SizeBytes(); }
  void Clear() override { backing_->Clear(); }

 private:
  static void Spin(int64_t nanos);

  KeyValueStorePtr backing_;
  int64_t latency_nanos_;
};

}  // namespace sqs
