#include "ops/fused.h"

#include "common/latency.h"

namespace sqs::ops {

bool FusedStageCanPassthrough(const sql::FusedStageSpec& spec,
                              const RowSerde& input_serde,
                              const RowSerde& output_serde) {
  if (!spec.projections.empty()) return false;
  const auto* in = dynamic_cast<const AvroRowSerde*>(&input_serde);
  const auto* out = dynamic_cast<const AvroRowSerde*>(&output_serde);
  if (in == nullptr || out == nullptr) return false;
  const Schema& a = *in->schema();
  const Schema& b = *out->schema();
  if (a.num_fields() != b.num_fields()) return false;
  for (size_t i = 0; i < a.num_fields(); ++i) {
    // Positional encoding: field names are not on the wire, so only the
    // kind/element/nullability layout must match.
    if (!(a.field(i).type == b.field(i).type) ||
        a.field(i).nullable != b.field(i).nullable) {
      return false;
    }
  }
  return true;
}

Status FusedStageOperator::Init(OperatorContext&) {
  // Keyed output needs the key column's decoded value, so it stays on the
  // re-serialize path (key sends are rare for filter/project pipelines).
  passthrough_ = key_index_ < 0 &&
                 FusedStageCanPassthrough(spec_, *input_serde_, *output_serde_);
  std::vector<int> extra;
  if (key_index_ >= 0) extra.push_back(key_index_);
  SQS_ASSIGN_OR_RETURN(kernel,
                       sql::FusedStageKernel::Compile(spec_, input_serde_,
                                                      passthrough_, extra));
  kernel_ = std::move(kernel);
  // The plan node is only valid during build/init (the task frees its plan
  // after Init); everything the stage needs is copied into spec_/kernel_.
  spec_.scan = nullptr;
  return Status::Ok();
}

Status FusedStageOperator::Evaluate(const IncomingMessage& msg, PendingSend& out) {
  SQS_ASSIGN_OR_RETURN(result, kernel_.Apply(msg.message.value));
  out.pass = result.pass;
  if (!result.pass || passthrough_) return Status::Ok();
  if (key_index_ >= 0) {
    out.key = EncodeOrderedKey(result.row[static_cast<size_t>(key_index_)]);
  }
  out.row = std::move(result.row);
  return Status::Ok();
}

Status FusedStageOperator::SendOne(const IncomingMessage& msg, PendingSend& pending,
                                   OperatorContext& ctx) {
  // Both the per-message and the batched (phase-2) paths funnel through
  // here, so this one scope propagates the input's ingest stamp onto every
  // fused-stage output (common/latency.h).
  IngestScope ingest(msg.message.ingest_us);
  if (passthrough_) {
    ++emitted_;
    return ctx.collector->SendToPartition(topic_, msg.origin.partition, Bytes{},
                                          Bytes(msg.message.value));
  }
  BytesWriter writer(64);
  SQS_RETURN_IF_ERROR(output_serde_->Serialize(pending.row, writer));
  ++emitted_;
  if (key_index_ >= 0) {
    return ctx.collector->Send(topic_, std::move(pending.key), writer.Take());
  }
  return ctx.collector->SendToPartition(topic_, msg.origin.partition, Bytes{},
                                        writer.Take());
}

Status FusedStageOperator::ProcessMessage(const IncomingMessage& message,
                                          OperatorContext& ctx) {
  EnsureMetrics(ctx);
  TraceContext parent = CurrentTraceContext();
  if (!parent.valid()) parent = message.message.trace;
  TraceSpan span(parent, TraceName(), TraceScopeName(), message.origin.partition);
  int64_t t0 = MonotonicNanos();
  PendingSend pending;
  Status st;
  {
    TraceSpan decode(CurrentTraceContext(), "decode", TraceScopeName(),
                     message.origin.partition);
    st = Evaluate(message, pending);
  }
  if (st.ok()) {
    if (pending.pass) {
      TraceSpan encode(CurrentTraceContext(), "encode", TraceScopeName(),
                       message.origin.partition);
      st = SendOne(message, pending, ctx);
    } else {
      CountDropped();
    }
  }
  RecordTuple(MonotonicNanos() - t0, message.message.timestamp);
  return st;
}

Status FusedStageOperator::ProcessMessages(const IncomingMessage* msgs, size_t count,
                                           OperatorContext& ctx, size_t* consumed) {
  if (count == 0) {
    if (consumed) *consumed = 0;
    return Status::Ok();
  }
  EnsureMetrics(ctx);
  TraceContext parent = CurrentTraceContext();  // the batch's "process" span
  if (!parent.valid()) parent = msgs[0].message.trace;
  TraceSpan span(parent, TraceName(), TraceScopeName(), msgs[0].origin.partition);
  int64_t t0 = MonotonicNanos();

  // Phase 1: run the kernel over the whole run. On a kernel error the
  // already-evaluated prefix still gets sent below, then the error is
  // surfaced with `consumed` at the failing message.
  std::vector<PendingSend> pendings(count);
  size_t evaluated = count;
  Status result;
  {
    TraceSpan decode(CurrentTraceContext(), "decode", TraceScopeName(),
                     msgs[0].origin.partition);
    for (size_t i = 0; i < count; ++i) {
      Status st = Evaluate(msgs[i], pendings[i]);
      if (!st.ok()) {
        result = st;
        evaluated = i;
        break;
      }
    }
  }

  // Phase 2: send survivors in input order (per-message producer sequencing,
  // so exactly-once replay is indistinguishable from the per-message path).
  size_t done = evaluated;
  bool send_failed = false;
  {
    TraceSpan encode(CurrentTraceContext(), "encode", TraceScopeName(),
                     msgs[0].origin.partition);
    for (size_t i = 0; i < evaluated; ++i) {
      if (!pendings[i].pass) {
        CountDropped();
        continue;
      }
      Status st = SendOne(msgs[i], pendings[i], ctx);
      if (!st.ok()) {
        result = st;
        done = i;
        send_failed = true;
        break;
      }
    }
  }
  (void)send_failed;

  int64_t max_ts = 0;
  for (size_t i = 0; i < done; ++i) {
    if (msgs[i].message.timestamp > max_ts) max_ts = msgs[i].message.timestamp;
  }
  RecordBatch(MonotonicNanos() - t0, static_cast<int64_t>(done), max_ts);
  if (consumed) *consumed = done;
  return result;
}

}  // namespace sqs::ops
