#include "ops/join.h"

#include <limits>

namespace sqs::ops {

namespace {

void AppendOrderedTs(Bytes& key, int64_t ts) {
  uint64_t u = static_cast<uint64_t>(ts) ^ (1ull << 63);
  for (int i = 7; i >= 0; --i) key.push_back(static_cast<uint8_t>(u >> (8 * i)));
}

void AppendFixed32(Bytes& key, uint32_t v) {
  for (int i = 3; i >= 0; --i) key.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

bool Truthy(const Value& v) { return v.kind() == TypeKind::kBool && v.as_bool(); }

}  // namespace

// ---------------------------------------------------------------------------
// StreamTableJoinOperator
// ---------------------------------------------------------------------------

Status StreamTableJoinOperator::Init(OperatorContext& ctx) {
  if (residual_) {
    SQS_ASSIGN_OR_RETURN(compiled, sql::CompiledExpr::Compile(*residual_));
    compiled_residual_ = std::move(compiled);
  }
  table_ = ctx.task->GetStore(store_prefix_ + "-table");
  if (!table_) {
    return Status::StateError("join table store not configured: " + store_prefix_ +
                              "-table");
  }
  return Status::Ok();
}

Status StreamTableJoinOperator::DoProcess(const TupleEvent& event, OperatorContext& ctx) {
  if (event.side == 1) {
    // Relation changelog tuple: upsert into the cached table keyed by the
    // join key (last write wins — changelog semantics).
    Row key_values;
    key_values.reserve(equi_keys_.size());
    for (const auto& [l, r] : equi_keys_) {
      (void)l;
      key_values.push_back(event.row[static_cast<size_t>(r)]);
    }
    BytesWriter writer(64);
    SQS_RETURN_IF_ERROR(right_serde_->Serialize(event.row, writer));
    table_->Put(EncodeOrderedKey(key_values), writer.Take());
    return Status::Ok();
  }

  // Stream tuple: lookup.
  Row key_values;
  key_values.reserve(equi_keys_.size());
  for (const auto& [l, r] : equi_keys_) {
    (void)r;
    key_values.push_back(event.row[static_cast<size_t>(l)]);
  }
  auto stored = table_->Get(EncodeOrderedKey(key_values));
  if (!stored) {
    CountDropped();  // inner join: no match, no output
    return Status::Ok();
  }

  // The deserialization below is the paper's identified join cost center —
  // with the reflective ("kryo") serde it is what makes SQL ~2x slower.
  SQS_ASSIGN_OR_RETURN(right_row, right_serde_->DeserializeBytes(*stored));

  TupleEvent out;
  out.row = event.row;
  out.row.insert(out.row.end(), right_row.begin(), right_row.end());
  out.rowtime = event.rowtime;
  out.partition = event.partition;
  out.offset = event.offset;
  if (compiled_residual_ && !Truthy(compiled_residual_->Eval(out.row))) {
    return Status::Ok();
  }
  return EmitNext(std::move(out), ctx);
}

// ---------------------------------------------------------------------------
// StreamStreamJoinOperator
// ---------------------------------------------------------------------------

Status StreamStreamJoinOperator::Init(OperatorContext& ctx) {
  if (residual_) {
    SQS_ASSIGN_OR_RETURN(compiled, sql::CompiledExpr::Compile(*residual_));
    compiled_residual_ = std::move(compiled);
  }
  left_ = ctx.task->GetStore(store_prefix_ + "-left");
  right_ = ctx.task->GetStore(store_prefix_ + "-right");
  meta_ = ctx.task->GetStore(store_prefix_ + "-meta");
  if (!left_ || !right_ || !meta_) {
    return Status::StateError("stream-stream join stores not configured: " +
                              store_prefix_);
  }
  auto load = [&](const char* key, int64_t& out) -> Status {
    if (auto v = meta_->Get(ToBytes(key))) {
      BytesReader reader(*v);
      SQS_ASSIGN_OR_RETURN(wm, reader.ReadVarint());
      out = wm;
    }
    return Status::Ok();
  };
  left_watermark_ = INT64_MIN;
  right_watermark_ = INT64_MIN;
  SQS_RETURN_IF_ERROR(load("lwm", left_watermark_));
  SQS_RETURN_IF_ERROR(load("rwm", right_watermark_));
  return Status::Ok();
}

Status StreamStreamJoinOperator::SaveWatermark(const char* key, int64_t value) {
  BytesWriter writer(8);
  writer.WriteVarint(value);
  meta_->Put(ToBytes(key), writer.Take());
  return Status::Ok();
}

Status StreamStreamJoinOperator::Purge(KeyValueStore& store, int64_t cutoff_ts) {
  Bytes upper;
  AppendOrderedTs(upper, cutoff_ts);
  std::vector<Bytes> expired;
  store.Range(Bytes{}, upper, [&](const Bytes& k, const Bytes&) {
    expired.push_back(k);
    return true;
  });
  for (const Bytes& k : expired) store.Delete(k);
  return Status::Ok();
}

Status StreamStreamJoinOperator::DoProcess(const TupleEvent& event, OperatorContext& ctx) {
  const bool is_left = event.side == 0;
  KeyValueStore& own = is_left ? *left_ : *right_;
  KeyValueStore& other = is_left ? *right_ : *left_;
  const RowSerde& own_serde = is_left ? *left_serde_ : *right_serde_;
  const RowSerde& other_serde = is_left ? *right_serde_ : *left_serde_;

  int64_t ts = event.row[static_cast<size_t>(is_left ? left_ts_index_
                                                     : right_ts_index_)]
                   .ToInt64();

  // Buffer the tuple, keyed by (ts, partition, offset) for idempotence.
  Bytes key;
  AppendOrderedTs(key, ts);
  AppendFixed32(key, static_cast<uint32_t>(event.partition));
  AppendOrderedTs(key, event.offset);
  if (!own.Get(key)) {
    BytesWriter writer(64);
    SQS_RETURN_IF_ERROR(own_serde.Serialize(event.row, writer));
    own.Put(key, writer.Take());
  }

  // Matching time range on the other side:
  //   left arrival:  rts in [lts - after, lts + before]
  //   right arrival: lts in [rts - before, rts + after]
  int64_t lo = is_left ? ts - after_ms_ : ts - before_ms_;
  int64_t hi = is_left ? ts + before_ms_ : ts + after_ms_;
  Bytes from, to;
  AppendOrderedTs(from, lo);
  AppendOrderedTs(to, hi + 1);

  std::vector<Row> matches;
  other.Range(from, to, [&](const Bytes&, const Bytes& v) {
    auto row = other_serde.DeserializeBytes(v);
    if (row.ok()) matches.push_back(std::move(row).value());
    return true;
  });

  for (Row& match : matches) {
    // Combined row is always [left fields..., right fields...].
    TupleEvent out;
    if (is_left) {
      out.row = event.row;
      out.row.insert(out.row.end(), match.begin(), match.end());
    } else {
      out.row = std::move(match);
      out.row.insert(out.row.end(), event.row.begin(), event.row.end());
    }
    const size_t right_base = out.row.size() - (is_left ? out.row.size() - event.row.size()
                                                        : event.row.size());
    bool keys_match = true;
    for (const auto& [l, r] : equi_keys_) {
      const Value& lv = out.row[static_cast<size_t>(l)];
      const Value& rv = out.row[right_base + static_cast<size_t>(r)];
      if (lv.is_null() || rv.is_null() || lv.Compare(rv) != 0) {
        keys_match = false;
        break;
      }
    }
    if (!keys_match) continue;
    if (compiled_residual_ && !Truthy(compiled_residual_->Eval(out.row))) continue;
    int64_t lts = out.row[static_cast<size_t>(left_ts_index_)].ToInt64();
    int64_t rts = out.row[right_base + static_cast<size_t>(right_ts_index_)].ToInt64();
    out.rowtime = std::max(lts, rts);
    out.partition = event.partition;
    out.offset = event.offset;
    SQS_RETURN_IF_ERROR(EmitNext(std::move(out), ctx));
  }

  // Advance watermarks and purge the *other* side's no-longer-matchable
  // entries (plus our own on our watermark).
  if (is_left) {
    if (ts > left_watermark_) {
      left_watermark_ = ts;
      SQS_RETURN_IF_ERROR(SaveWatermark("lwm", left_watermark_));
      // Right entries with rts < lwm - after can never match future lefts
      // (left timestamps are monotonic per partition, §3.8.1).
      SQS_RETURN_IF_ERROR(Purge(*right_, left_watermark_ - after_ms_ - grace_ms_));
    }
  } else {
    if (ts > right_watermark_) {
      right_watermark_ = ts;
      SQS_RETURN_IF_ERROR(SaveWatermark("rwm", right_watermark_));
      SQS_RETURN_IF_ERROR(Purge(*left_, right_watermark_ - before_ms_ - grace_ms_));
    }
  }
  return Status::Ok();
}

}  // namespace sqs::ops
