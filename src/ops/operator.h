// Physical operator layer (paper §4.2–4.4). A SamzaSQL task hosts a
// *message router*: a DAG of operators built from the physical plan at task
// init. Scan operators sit at the leaves (one per input stream) and convert
// serialized records to the tuple-as-array representation (AvroToArray);
// the stream-insert operator at the root converts back (ArrayToAvro) and
// writes to the output stream — exactly the message processing flow of
// Figure 4, including its overheads.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/metrics.h"
#include "common/status.h"
#include "common/tracing.h"
#include "common/value.h"
#include "serde/serde.h"
#include "task/api.h"

namespace sqs::ops {

// A tuple flowing between operators.
struct TupleEvent {
  Row row;
  int64_t rowtime = 0;      // event time from the tuple (0 when absent)
  int32_t partition = 0;    // originating input partition id
  int64_t offset = 0;       // originating input offset (for idempotence)
  int side = 0;             // for joins: 0 = left input, 1 = right input
  TraceContext trace;       // sampled-tracing context (invalid = untraced)
};

class Operator;
using OperatorPtr = std::shared_ptr<Operator>;

// Shared services available to operators at init time.
struct OperatorContext {
  TaskContext* task = nullptr;                 // stores, config, metrics
  MessageCollector* collector = nullptr;       // bound per Process call
};

// A raw-message entry point into the operator DAG. Interpreted scans and
// fused stages both implement it, so the router dispatches input messages
// to either through one interface (see docs/EXECUTION.md).
class SourceOperator {
 public:
  virtual ~SourceOperator() = default;

  // Feed one raw input message.
  virtual Status ProcessMessage(const IncomingMessage& message,
                                OperatorContext& ctx) = 0;

  // Feed a contiguous run of messages. On success `consumed` (if non-null)
  // is `count`; on error it is the index of the failing message, and every
  // message before it has been fully processed (its sends issued) — the
  // container's error policy resumes after that message. The default is the
  // per-message loop; fused stages override it to amortize per-message
  // overheads.
  virtual Status ProcessMessages(const IncomingMessage* msgs, size_t count,
                                 OperatorContext& ctx, size_t* consumed) {
    for (size_t i = 0; i < count; ++i) {
      if (consumed) *consumed = i;
      SQS_RETURN_IF_ERROR(ProcessMessage(msgs[i], ctx));
    }
    if (consumed) *consumed = count;
    return Status::Ok();
  }
};

class Operator {
 public:
  virtual ~Operator() = default;

  virtual std::string name() const = 0;

  // One-time setup (compile expressions, open stores). Called at task init —
  // the paper's task-side "operator code generation" step.
  virtual Status Init(OperatorContext& ctx) = 0;

  // Instrumented entry point: lazily binds the operator's scoped metrics
  // (`<job>.<task>.<operator>.*`) from the task context on first use, then
  // counts the tuple, times DoProcess (inclusive of downstream operators —
  // see docs/METRICS.md), and advances the event-time watermark gauges.
  // When the event carries a sampled trace context, the call is also wrapped
  // in a span named after the plan-unique operator id, scoped `<job>.<task>`.
  Status Process(const TupleEvent& event, OperatorContext& ctx);

  // Timer callback (window emission). Default: no-op.
  virtual Status OnTimer(OperatorContext& /*ctx*/) { return Status::Ok(); }

  // Called just before the task's offsets are checkpointed (replay-safe
  // cleanup barrier). Default: no-op.
  virtual Status OnCommit(OperatorContext& /*ctx*/) { return Status::Ok(); }

  // Wire a downstream operator. `side` tells a binary downstream operator
  // (join) which input this edge feeds.
  void SetNext(OperatorPtr next, int side = 0) {
    next_ = std::move(next);
    next_side_ = side;
  }
  Operator* next() const { return next_.get(); }

  // Metric namespace segment for this operator. The router sets plan-unique
  // ids ("op2-filter"); an operator used standalone defaults to name().
  void set_metric_id(std::string id) { metric_id_ = std::move(id); }
  std::string metric_id() const { return metric_id_.empty() ? name() : metric_id_; }

 protected:
  // Process one tuple, forwarding results downstream via EmitNext().
  virtual Status DoProcess(const TupleEvent& event, OperatorContext& ctx) = 0;

  // Forward an event downstream, tagging the configured side. The ambient
  // trace context (this operator's span, if sampled) becomes the emitted
  // event's parent, so derived tuples — window emissions, join outputs —
  // chain to the operator that produced them.
  Status EmitNext(TupleEvent event, OperatorContext& ctx) {
    if (!next_) return Status::Ok();
    event.side = next_side_;
    event.trace = CurrentTraceContext();
    return next_->Process(event, ctx);
  }

  // Resolve this operator's scoped instruments from ctx.task->metrics().
  // Idempotent and cheap after the first call.
  void EnsureMetrics(OperatorContext& ctx);

  // Count one processed tuple: latency sample plus watermark / watermark-lag
  // gauge updates (rowtime 0 means "no event time" and is skipped).
  void RecordTuple(int64_t latency_nanos, int64_t rowtime);

  // Batch-mode accounting (see docs/METRICS.md "Batch semantics"): counts
  // `n` processed tuples but records ONE latency sample covering the whole
  // run; `rowtime` is the run's max event time.
  void RecordBatch(int64_t latency_nanos, int64_t n, int64_t rowtime);

  // Count a tuple this operator intentionally did not forward (filter miss,
  // late arrival past the grace period).
  void CountDropped(int64_t n = 1) {
    if (dropped_) dropped_->Inc(n);
  }

  // Span identity for instrumented entry points (Process, scan's
  // ProcessMessage). Name lazily binds to metric_id() on first use; scope is
  // bound together with the metrics in EnsureMetrics.
  const std::string& TraceName() {
    if (trace_name_.empty()) trace_name_ = metric_id();
    return trace_name_;
  }
  const std::string& TraceScopeName() const { return trace_scope_; }

 private:
  OperatorPtr next_;
  int next_side_ = 0;
  std::string metric_id_;
  // Cached span identity: name = metric_id() (bound on first Process),
  // scope = `<job>.<task>` (bound with the metrics).
  std::string trace_name_;
  std::string trace_scope_;

  void UpdateWatermark(int64_t rowtime);

  // Scoped instruments, bound on first Process with a task context.
  Counter* processed_ = nullptr;
  Counter* dropped_ = nullptr;
  Histogram* latency_ = nullptr;
  Gauge* watermark_ = nullptr;
  Gauge* watermark_lag_ = nullptr;
  std::shared_ptr<Clock> clock_;
  int64_t max_rowtime_seen_ = INT64_MIN;
};

}  // namespace sqs::ops
