// Physical operator layer (paper §4.2–4.4). A SamzaSQL task hosts a
// *message router*: a DAG of operators built from the physical plan at task
// init. Scan operators sit at the leaves (one per input stream) and convert
// serialized records to the tuple-as-array representation (AvroToArray);
// the stream-insert operator at the root converts back (ArrayToAvro) and
// writes to the output stream — exactly the message processing flow of
// Figure 4, including its overheads.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/value.h"
#include "serde/serde.h"
#include "task/api.h"

namespace sqs::ops {

// A tuple flowing between operators.
struct TupleEvent {
  Row row;
  int64_t rowtime = 0;      // event time from the tuple (0 when absent)
  int32_t partition = 0;    // originating input partition id
  int64_t offset = 0;       // originating input offset (for idempotence)
  int side = 0;             // for joins: 0 = left input, 1 = right input
};

class Operator;
using OperatorPtr = std::shared_ptr<Operator>;

// Shared services available to operators at init time.
struct OperatorContext {
  TaskContext* task = nullptr;                 // stores, config, metrics
  MessageCollector* collector = nullptr;       // bound per Process call
};

class Operator {
 public:
  virtual ~Operator() = default;

  virtual std::string name() const = 0;

  // One-time setup (compile expressions, open stores). Called at task init —
  // the paper's task-side "operator code generation" step.
  virtual Status Init(OperatorContext& ctx) = 0;

  // Process one tuple, forwarding results downstream via next().
  virtual Status Process(const TupleEvent& event, OperatorContext& ctx) = 0;

  // Timer callback (window emission). Default: no-op.
  virtual Status OnTimer(OperatorContext& /*ctx*/) { return Status::Ok(); }

  // Called just before the task's offsets are checkpointed (replay-safe
  // cleanup barrier). Default: no-op.
  virtual Status OnCommit(OperatorContext& /*ctx*/) { return Status::Ok(); }

  // Wire a downstream operator. `side` tells a binary downstream operator
  // (join) which input this edge feeds.
  void SetNext(OperatorPtr next, int side = 0) {
    next_ = std::move(next);
    next_side_ = side;
  }
  Operator* next() const { return next_.get(); }

 protected:
  // Forward an event downstream, tagging the configured side.
  Status EmitNext(TupleEvent event, OperatorContext& ctx) {
    if (!next_) return Status::Ok();
    event.side = next_side_;
    return next_->Process(event, ctx);
  }

 private:
  OperatorPtr next_;
  int next_side_ = 0;
};

}  // namespace sqs::ops
