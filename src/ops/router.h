// MessageRouter: the DAG of streaming SQL operators instantiated from the
// physical plan inside a SamzaSQL task (paper §4.2: "operator and message
// router generation ... happens during Samza stream task initialization").
// Incoming messages are dispatched by topic to the matching scan operator(s)
// and flow through the operator chain to the stream-insert at the root.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "ops/basic.h"
#include "ops/fused.h"
#include "ops/join.h"
#include "ops/operator.h"
#include "ops/window.h"
#include "sql/logical.h"

namespace sqs::ops {

struct RouterConfig {
  std::string output_topic;
  RowSerdePtr output_serde;
  // Serde used for join/window state rows. The paper's implementation used
  // Kryo-style generic serialization here (the 2x join gap, §5.1); pass a
  // ReflectiveRowSerde factory to reproduce, AvroRowSerde for the ablation.
  std::string state_serde = "reflective";  // "reflective" | "avro"
  int64_t grace_ms = 0;
  // Skip the RecordToArray / ArrayToRecord copies of Figure 4 (the paper's
  // §7 item 5 planned optimization; ablation A1 in DESIGN.md).
  bool fuse_conversions = false;
  // Hash-partition output by this column instead of preserving the input
  // partition (-1 = preserve).
  int out_key_index = -1;
  // Compile terminal Scan <- Filter*/Project* chains into one fused stage
  // (sql.fusion, default on; see docs/EXECUTION.md). Join/window/aggregate
  // plans always use the interpreted operator DAG.
  bool fusion = true;
};

class MessageRouter {
 public:
  // Builds the operator DAG for `plan` (an optimized logical plan).
  static Result<std::unique_ptr<MessageRouter>> Build(const sql::LogicalNode& plan,
                                                      const RouterConfig& config);

  // Store names the plan's stateful operators require, in the same order
  // Build() assigns them. Used by the job config generator (shell side).
  static Result<std::vector<std::string>> RequiredStores(const sql::LogicalNode& plan);

  Status Init(OperatorContext& ctx);

  // Dispatch one raw input message to the source(s) reading its topic.
  Status Route(const IncomingMessage& message, OperatorContext& ctx);

  // Dispatch a contiguous run of messages, grouping same-topic runs into
  // one SourceOperator::ProcessMessages call (the fused batch path). On
  // error `consumed` is the index of the failing message; everything before
  // it has been fully processed. Topics read by several sources (self-
  // joins) fall back to per-message dispatch to preserve interleaving.
  Status RouteBatch(const IncomingMessage* msgs, size_t count,
                    OperatorContext& ctx, size_t* consumed);

  // The fused terminal stage, or nullptr when the plan runs interpreted.
  const FusedStageOperator* fused_stage() const { return fused_stage_.get(); }

  // Fire window timers (early-results emission).
  Status OnTimer(OperatorContext& ctx);

  // Pre-checkpoint barrier, forwarded to all operators.
  Status OnCommit(OperatorContext& ctx);

  // Topics this router consumes; relation-backed topics must be configured
  // as bootstrap inputs.
  std::vector<std::string> InputTopics() const;
  std::vector<std::string> BootstrapTopics() const;

  size_t num_operators() const { return operators_.size(); }

 private:
  struct SourceBinding {
    std::string topic;
    bool bootstrap = false;
    std::shared_ptr<SourceOperator> source;
  };

  std::vector<OperatorPtr> operators_;  // all, in build order
  std::vector<SourceBinding> sources_;
  std::map<std::string, std::vector<SourceOperator*>> by_topic_;
  std::shared_ptr<FusedStageOperator> fused_stage_;
};

// Serde for a source according to its declared format.
Result<RowSerdePtr> SerdeForFormat(const std::string& format, SchemaPtr schema);

}  // namespace sqs::ops
