// Join operators.
//
// StreamTableJoinOperator — paper §4.4: the relation is materialized into a
// task-local KV store from its changelog stream, which the job consumes as
// a *bootstrap stream* (fully drained before any other input). Stream
// tuples then look up the cached relation rows by equi-key and emit joined
// rows. Stored rows pass through a pluggable serde — the paper's SQL
// implementation used Kryo-style generic serialization here, which is why
// its join was ~2x slower than the native task (§5.1); ours defaults to
// the reflective serde to reproduce that, switchable for the ablation.
//
// StreamStreamJoinOperator — paper §3.8.1: windowed join over two streams.
// Each side's recent tuples are kept in a time-indexed KV store; an
// arriving tuple scans the other side's store over the time bound, filters
// by equi-key + residual, and emits combined rows. Expired entries are
// purged using the opposite side's watermark.
#pragma once

#include <optional>

#include "kv/store.h"
#include "ops/operator.h"
#include "sql/expr.h"
#include "sql/logical.h"

namespace sqs::ops {

class StreamTableJoinOperator : public Operator {
 public:
  // `equi_keys`: (left index, right index) pairs. `right_serde` stores and
  // loads the relation rows. Needs task store "<prefix>-table".
  StreamTableJoinOperator(std::vector<std::pair<int, int>> equi_keys,
                          sql::ExprPtr residual, RowSerdePtr right_serde,
                          std::string store_prefix)
      : equi_keys_(std::move(equi_keys)),
        residual_(std::move(residual)),
        right_serde_(std::move(right_serde)),
        store_prefix_(std::move(store_prefix)) {}

  std::string name() const override { return "stream-table-join"; }
  Status Init(OperatorContext& ctx) override;

  static std::vector<std::string> RequiredStores(const std::string& prefix) {
    return {prefix + "-table"};
  }

 protected:
  Status DoProcess(const TupleEvent& event, OperatorContext& ctx) override;

 public:

  size_t table_size() const { return table_ ? table_->Size() : 0; }

 private:
  std::vector<std::pair<int, int>> equi_keys_;
  sql::ExprPtr residual_;
  RowSerdePtr right_serde_;
  std::string store_prefix_;
  std::optional<sql::CompiledExpr> compiled_residual_;
  KeyValueStorePtr table_;
};

class StreamStreamJoinOperator : public Operator {
 public:
  // Accepts combined rows where left.ts - right.ts in [-before, +after].
  // Needs task stores "<prefix>-left", "<prefix>-right", "<prefix>-meta".
  StreamStreamJoinOperator(std::vector<std::pair<int, int>> equi_keys,
                           int left_ts_index, int right_ts_index,
                           int64_t before_ms, int64_t after_ms, sql::ExprPtr residual,
                           RowSerdePtr left_serde, RowSerdePtr right_serde,
                           std::string store_prefix, int64_t grace_ms = 0)
      : equi_keys_(std::move(equi_keys)),
        left_ts_index_(left_ts_index),
        right_ts_index_(right_ts_index),
        before_ms_(before_ms),
        after_ms_(after_ms),
        residual_(std::move(residual)),
        left_serde_(std::move(left_serde)),
        right_serde_(std::move(right_serde)),
        store_prefix_(std::move(store_prefix)),
        grace_ms_(grace_ms) {}

  std::string name() const override { return "stream-stream-join"; }
  Status Init(OperatorContext& ctx) override;

  static std::vector<std::string> RequiredStores(const std::string& prefix) {
    return {prefix + "-left", prefix + "-right", prefix + "-meta"};
  }

 protected:
  Status DoProcess(const TupleEvent& event, OperatorContext& ctx) override;

 public:

  size_t left_buffer_size() const { return left_ ? left_->Size() : 0; }
  size_t right_buffer_size() const { return right_ ? right_->Size() : 0; }

 private:
  Status Purge(KeyValueStore& store, int64_t cutoff_ts);
  Status SaveWatermark(const char* key, int64_t value);

  std::vector<std::pair<int, int>> equi_keys_;
  int left_ts_index_;
  int right_ts_index_;
  int64_t before_ms_;
  int64_t after_ms_;
  sql::ExprPtr residual_;
  RowSerdePtr left_serde_;
  RowSerdePtr right_serde_;
  std::string store_prefix_;
  int64_t grace_ms_;

  std::optional<sql::CompiledExpr> compiled_residual_;
  KeyValueStorePtr left_;   // enc(ts)|part|offset -> serialized left row
  KeyValueStorePtr right_;  // enc(ts)|part|offset -> serialized right row
  KeyValueStorePtr meta_;   // watermarks
  int64_t left_watermark_ = INT64_MIN;
  int64_t right_watermark_ = INT64_MIN;
};

}  // namespace sqs::ops
