#include "ops/operator.h"

namespace sqs::ops {

void Operator::EnsureMetrics(OperatorContext& ctx) {
  if (processed_ != nullptr || ctx.task == nullptr) return;
  ScopedMetrics scope(&ctx.task->metrics(),
                      ctx.task->config().Get(cfg::kJobName, "job"));
  trace_scope_ = ctx.task->config().Get(cfg::kJobName, "job") + "." +
                 ctx.task->task_name();
  scope = scope.Sub(ctx.task->task_name()).Sub(metric_id());
  processed_ = &scope.counter("processed");
  dropped_ = &scope.counter("dropped");
  latency_ = &scope.histogram("latency_ns");
  watermark_ = &scope.gauge("watermark_ms");
  watermark_lag_ = &scope.gauge("watermark_lag_ms");
  clock_ = ctx.task->clock();
}

void Operator::UpdateWatermark(int64_t rowtime) {
  if (rowtime == 0) return;
  if (rowtime > max_rowtime_seen_) {
    max_rowtime_seen_ = rowtime;
    watermark_->Set(rowtime);
  }
  // Lag of the tuple being processed right now behind wall (or simulated)
  // clock time — the operator's view of event-time progress.
  if (clock_) watermark_lag_->Set(clock_->NowMillis() - rowtime);
}

void Operator::RecordTuple(int64_t latency_nanos, int64_t rowtime) {
  if (processed_ == nullptr) return;
  processed_->Inc();
  latency_->Record(latency_nanos);
  UpdateWatermark(rowtime);
}

void Operator::RecordBatch(int64_t latency_nanos, int64_t n, int64_t rowtime) {
  if (processed_ == nullptr || n <= 0) return;
  processed_->Inc(n);
  latency_->Record(latency_nanos);
  UpdateWatermark(rowtime);
}

Status Operator::Process(const TupleEvent& event, OperatorContext& ctx) {
  EnsureMetrics(ctx);
  TraceSpan span(event.trace, TraceName(), trace_scope_, event.partition);
  if (processed_ == nullptr) return DoProcess(event, ctx);
  int64_t rowtime = event.rowtime;
  int64_t t0 = MonotonicNanos();
  Status st = DoProcess(event, ctx);
  RecordTuple(MonotonicNanos() - t0, rowtime);
  return st;
}

}  // namespace sqs::ops
