#include "ops/basic.h"

#include "common/latency.h"

namespace sqs::ops {

Status ScanOperator::ProcessMessage(const IncomingMessage& message,
                                    OperatorContext& ctx) {
  EnsureMetrics(ctx);
  // Parent preference: the container's per-message "process" span (ambient)
  // when running inside a container loop; the message's own stamped context
  // when fed directly (tests, native harnesses).
  TraceContext parent = CurrentTraceContext();
  if (!parent.valid()) parent = message.message.trace;
  TraceSpan span(parent, TraceName(), TraceScopeName(), message.origin.partition);
  // Ambient latency scope for the whole operator chain: any send the
  // downstream operators issue (InsertOperator through the collector)
  // inherits this input's ingest stamp (common/latency.h).
  IngestScope ingest(message.message.ingest_us);
  int64_t t0 = MonotonicNanos();
  Status st = DecodeAndEmit(message, ctx);
  // rowtime is only known post-decode; the router-facing watermark for scan
  // falls back to the message's log-append timestamp.
  RecordTuple(MonotonicNanos() - t0, message.message.timestamp);
  return st;
}

Status ScanOperator::DecodeAndEmit(const IncomingMessage& message,
                                   OperatorContext& ctx) {
  SQS_ASSIGN_OR_RETURN(record, serde_->DeserializeBytes(message.message.value));
  TupleEvent event;
  event.rowtime = rowtime_index_ >= 0
                      ? record[static_cast<size_t>(rowtime_index_)].ToInt64()
                      : message.message.timestamp;
  if (fuse_conversions_) {
    event.row = std::move(record);
  } else {
    // RecordToArray (Figure 4): the decoded record is validated against the
    // declared schema (SamzaSQL "requires all the messages in a topic to be
    // in the same message format with the same schema", §3.1) and copied
    // field-by-field into the array representation the generated
    // expressions run over. Native tasks skip both steps.
    SQS_RETURN_IF_ERROR(schema_->Validate(record));
    event.row.reserve(record.size());
    for (const Value& field : record) event.row.push_back(field);
  }
  event.partition = message.origin.partition;
  event.offset = message.offset;
  return EmitNext(std::move(event), ctx);
}

Status FilterOperator::Init(OperatorContext&) {
  SQS_ASSIGN_OR_RETURN(compiled, sql::CompiledExpr::Compile(*predicate_));
  compiled_ = std::move(compiled);
  return Status::Ok();
}

Status FilterOperator::DoProcess(const TupleEvent& event, OperatorContext& ctx) {
  Value v = compiled_->Eval(event.row);
  if (v.kind() == TypeKind::kBool && v.as_bool()) {
    return EmitNext(event, ctx);
  }
  CountDropped();
  return Status::Ok();
}

Status ProjectOperator::Init(OperatorContext&) {
  compiled_.clear();
  compiled_.reserve(exprs_.size());
  for (const auto& e : exprs_) {
    SQS_ASSIGN_OR_RETURN(compiled, sql::CompiledExpr::Compile(*e));
    compiled_.push_back(std::move(compiled));
  }
  return Status::Ok();
}

Status ProjectOperator::DoProcess(const TupleEvent& event, OperatorContext& ctx) {
  TupleEvent out;
  out.row.reserve(compiled_.size());
  for (const auto& c : compiled_) out.row.push_back(c.Eval(event.row));
  out.rowtime = out_rowtime_index_ >= 0
                    ? out.row[static_cast<size_t>(out_rowtime_index_)].ToInt64()
                    : event.rowtime;
  out.partition = event.partition;
  out.offset = event.offset;
  return EmitNext(std::move(out), ctx);
}

Status InsertOperator::DoProcess(const TupleEvent& event, OperatorContext& ctx) {
  BytesWriter writer(64);
  if (fuse_conversions_) {
    SQS_RETURN_IF_ERROR(serde_->Serialize(event.row, writer));
  } else {
    // ArrayToRecord (Figure 4): rebuild the output record from the array
    // before serializing — the second conversion the paper profiles.
    Row record;
    record.reserve(event.row.size());
    for (const Value& field : event.row) record.push_back(field);
    SQS_RETURN_IF_ERROR(serde_->Serialize(record, writer));
  }
  ++emitted_;
  if (key_index_ >= 0) {
    Bytes key = EncodeOrderedKey(event.row[static_cast<size_t>(key_index_)]);
    return ctx.collector->Send(topic_, std::move(key), writer.Take());
  }
  return ctx.collector->SendToPartition(topic_, event.partition, Bytes{}, writer.Take());
}

}  // namespace sqs::ops
