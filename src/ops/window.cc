#include "ops/window.h"

#include <limits>

#include "common/logging.h"
#include "sql/accumulator.h"

namespace sqs::ops {

namespace {

// Fixed-width big-endian offset-binary encoding of a timestamp so bytewise
// key order == time order.
void AppendOrderedTs(Bytes& key, int64_t ts) {
  uint64_t u = static_cast<uint64_t>(ts) ^ (1ull << 63);
  for (int i = 7; i >= 0; --i) key.push_back(static_cast<uint8_t>(u >> (8 * i)));
}

int64_t DecodeOrderedTs(const Bytes& key, size_t pos) {
  uint64_t u = 0;
  for (int i = 0; i < 8; ++i) u = (u << 8) | key[pos + static_cast<size_t>(i)];
  return static_cast<int64_t>(u ^ (1ull << 63));
}

void AppendFixed32(Bytes& key, uint32_t v) {
  for (int i = 3; i >= 0; --i) key.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

Value EvalArg(const std::optional<sql::CompiledExpr>& arg, const Row& row) {
  return arg ? arg->Eval(row) : Value(int64_t{1});
}

// Aligned start of the newest window containing ts.
int64_t AlignedStart(int64_t ts, int64_t emit_ms, int64_t align_ms) {
  int64_t shifted = ts - align_ms;
  int64_t q = shifted / emit_ms;
  if (shifted < 0 && shifted % emit_ms != 0) --q;
  return q * emit_ms + align_ms;
}

}  // namespace

// ---------------------------------------------------------------------------
// SlidingWindowOperator
// ---------------------------------------------------------------------------

std::vector<std::string> SlidingWindowOperator::RequiredStores(
    const std::string& prefix, size_t num_calls) {
  std::vector<std::string> out;
  for (size_t i = 0; i < num_calls; ++i) {
    out.push_back(prefix + "-msgs-" + std::to_string(i));
    out.push_back(prefix + "-agg-" + std::to_string(i));
  }
  return out;
}

Status SlidingWindowOperator::Init(OperatorContext& ctx) {
  runtimes_.clear();
  for (size_t i = 0; i < calls_.size(); ++i) {
    const sql::WindowCallSpec& spec = calls_[i];
    CallRuntime rt;
    if (spec.arg) {
      SQS_ASSIGN_OR_RETURN(compiled, sql::CompiledExpr::Compile(*spec.arg));
      rt.arg = std::move(compiled);
    }
    for (const auto& p : spec.partition_by) {
      SQS_ASSIGN_OR_RETURN(compiled, sql::CompiledExpr::Compile(*p));
      rt.partition_by.push_back(std::move(compiled));
    }
    rt.messages = ctx.task->GetStore(store_prefix_ + "-msgs-" + std::to_string(i));
    rt.aggs = ctx.task->GetStore(store_prefix_ + "-agg-" + std::to_string(i));
    if (!rt.messages || !rt.aggs) {
      return Status::StateError("sliding window stores not configured under prefix " +
                                store_prefix_);
    }
    // Restore the committed watermark (replay-safe purge horizon).
    static const Bytes kMetaKey = {0xFF, 'c', 'w', 'm'};
    if (auto cwm = rt.aggs->Get(kMetaKey)) {
      BytesReader reader(*cwm);
      SQS_ASSIGN_OR_RETURN(v, reader.ReadVarint());
      rt.committed_watermark = v;
      rt.watermark = v;
    }
    runtimes_.push_back(std::move(rt));
  }
  return Status::Ok();
}

Result<Value> SlidingWindowOperator::ProcessCall(size_t /*index*/,
                                                 const sql::WindowCallSpec& spec,
                                                 CallRuntime& rt,
                                                 const TupleEvent& event) {
  // Partition key prefix.
  Row pkey_values;
  pkey_values.reserve(rt.partition_by.size());
  for (const auto& p : rt.partition_by) pkey_values.push_back(p.Eval(event.row));
  Bytes prefix = EncodeOrderedKey(pkey_values);

  int64_t ts = event.row[static_cast<size_t>(spec.ts_index)].ToInt64();
  Value arg_value = EvalArg(rt.arg, event.row);

  // Message-store key: (pkey, ts, input partition, input offset) — the
  // offset component makes re-deliveries idempotent (Algorithm 1 restores
  // the message store and replays; an existing key means "already applied").
  Bytes msg_key = prefix;
  AppendOrderedTs(msg_key, ts);
  AppendFixed32(msg_key, static_cast<uint32_t>(event.partition));
  AppendOrderedTs(msg_key, event.offset);

  if (ts > rt.watermark) rt.watermark = ts;

  // Load running aggregate state:
  //   varint(logical lower bound) + varint(window row count) + AggState.
  auto agg_bytes = rt.aggs->Get(prefix);
  int64_t bound = std::numeric_limits<int64_t>::min();
  int64_t window_count = 0;
  sql::AggState state(spec.kind);
  if (agg_bytes) {
    BytesReader reader(*agg_bytes);
    SQS_ASSIGN_OR_RETURN(b, reader.ReadVarint());
    bound = b;
    SQS_ASSIGN_OR_RETURN(count, reader.ReadVarint());
    window_count = count;
    SQS_ASSIGN_OR_RETURN(decoded, sql::AggState::Decode(spec.kind, reader));
    state = std::move(decoded);
  }

  const bool duplicate = rt.messages->Get(msg_key).has_value();
  const bool need_recompute = !sql::AggState::SupportsRemove(spec.kind);

  if (duplicate) {
    // Replayed tuple (restore + replay after a failure): recompute its
    // original aggregate from the message store over exactly its logical
    // window [ts - W, ts], bounded above by this tuple's own key so that
    // entries that originally arrived later are excluded. Entries in that
    // range are guaranteed present: physical purging stops at the committed
    // watermark (below), and replay never rewinds past a checkpoint.
    if (!spec.range_based) {
      // ROWS windows purge eagerly (bounded count, not time); replays are
      // absorbed idempotently but recompute over the retained rows.
      sql::AggState fresh(spec.kind);
      Bytes upper = prefix;
      AppendOrderedTs(upper, std::numeric_limits<int64_t>::max());
      rt.messages->Range(prefix, upper, [&](const Bytes&, const Bytes& v) {
        BytesReader r(v);
        auto val = DeserializeTaggedValue(r);
        if (val.ok()) fresh.Add(val.value());
        return true;
      });
      return fresh.Result();
    }
    sql::AggState fresh(spec.kind);
    Bytes lower = prefix;
    AppendOrderedTs(lower, ts - spec.preceding_ms);
    Bytes upper = msg_key;
    upper.push_back(0);  // half-open range -> include msg_key itself
    rt.messages->Range(lower, upper, [&](const Bytes&, const Bytes& v) {
      BytesReader r(v);
      auto val = DeserializeTaggedValue(r);
      if (val.ok()) fresh.Add(val.value());
      return true;
    });
    return fresh.Result();
  }

  // Save message in the message store (Algorithm 1 line 1).
  BytesWriter value_writer(16);
  SQS_RETURN_IF_ERROR(SerializeTaggedValue(arg_value, value_writer));
  rt.messages->Put(msg_key, value_writer.Take());
  ++window_count;

  if (spec.range_based) {
    // Logical window advance: retract entries in [bound, ts - W) from the
    // running aggregates. The entries stay in the store until the committed
    // watermark passes them (replayed tuples may still need them).
    int64_t new_bound = ts - spec.preceding_ms;
    if (new_bound > bound) {
      if (!need_recompute) {
        Bytes lower = prefix;
        AppendOrderedTs(lower, bound);
        Bytes upper = prefix;
        AppendOrderedTs(upper, new_bound);
        rt.messages->Range(lower, upper, [&](const Bytes&, const Bytes& v) {
          BytesReader r(v);
          auto val = DeserializeTaggedValue(r);
          if (val.ok()) {
            state.Remove(val.value());
            --window_count;
          }
          return true;
        });
      }
      bound = new_bound;
    }
    // Physical purge up to the replay-safe horizon. Before the first commit
    // nothing may be purged (replay can rewind to the very beginning).
    int64_t horizon = std::numeric_limits<int64_t>::min();
    if (rt.committed_watermark != std::numeric_limits<int64_t>::min()) {
      horizon = std::min(bound, rt.committed_watermark - spec.preceding_ms);
    }
    if (horizon > std::numeric_limits<int64_t>::min()) {
      Bytes upper = prefix;
      AppendOrderedTs(upper, horizon);
      std::vector<Bytes> expired;
      rt.messages->Range(prefix, upper, [&](const Bytes& k, const Bytes&) {
        expired.push_back(k);
        return true;
      });
      for (const Bytes& k : expired) rt.messages->Delete(k);
    }
  } else {
    // ROWS window: drop oldest entries beyond preceding_rows + 1 (eager;
    // the logical and physical windows coincide).
    int64_t excess = window_count - (spec.preceding_rows + 1);
    if (excess > 0) {
      Bytes upper = prefix;
      AppendOrderedTs(upper, std::numeric_limits<int64_t>::max());
      std::vector<Bytes> expired;
      rt.messages->Range(prefix, upper, [&](const Bytes& k, const Bytes& v) {
        if (static_cast<int64_t>(expired.size()) >= excess) return false;
        expired.push_back(k);
        if (!need_recompute) {
          BytesReader r(v);
          auto val = DeserializeTaggedValue(r);
          if (val.ok()) state.Remove(val.value());
        }
        return true;
      });
      for (const Bytes& k : expired) rt.messages->Delete(k);
      window_count -= static_cast<int64_t>(expired.size());
    }
  }

  // Fold in the current tuple (Algorithm 1 "compute new aggregate values
  // adding current tuple").
  Value result;
  if (need_recompute) {
    // MIN/MAX (no retraction): recompute over the logical window.
    sql::AggState fresh(spec.kind);
    Bytes lower = prefix;
    if (spec.range_based) {
      AppendOrderedTs(lower, ts - spec.preceding_ms);
    }
    Bytes upper = prefix;
    AppendOrderedTs(upper, std::numeric_limits<int64_t>::max());
    rt.messages->Range(lower, upper, [&](const Bytes&, const Bytes& v) {
      BytesReader r(v);
      auto val = DeserializeTaggedValue(r);
      if (val.ok()) fresh.Add(val.value());
      return true;
    });
    result = fresh.Result();
  } else {
    state.Add(arg_value);
    result = state.Result();
  }

  BytesWriter agg_writer(32);
  agg_writer.WriteVarint(bound);
  agg_writer.WriteVarint(window_count);
  state.EncodeTo(agg_writer);
  rt.aggs->Put(prefix, agg_writer.Take());
  return result;
}

Status SlidingWindowOperator::OnCommit(OperatorContext&) {
  // Persist the committed watermark: replay never rewinds past this commit,
  // so entries older than (committed watermark - window) become physically
  // purgeable. Stored under a key no EncodeOrderedKey prefix can produce.
  static const Bytes kMetaKey = {0xFF, 'c', 'w', 'm'};
  for (auto& rt : runtimes_) {
    if (rt.watermark == std::numeric_limits<int64_t>::min()) continue;
    BytesWriter writer(8);
    writer.WriteVarint(rt.watermark);
    rt.aggs->Put(kMetaKey, writer.Take());
    rt.committed_watermark = rt.watermark;
  }
  return Status::Ok();
}

Status SlidingWindowOperator::DoProcess(const TupleEvent& event, OperatorContext& ctx) {
  TupleEvent out = event;
  for (size_t i = 0; i < calls_.size(); ++i) {
    SQS_ASSIGN_OR_RETURN(value, ProcessCall(i, calls_[i], runtimes_[i], event));
    out.row.push_back(std::move(value));
  }
  return EmitNext(std::move(out), ctx);
}

// ---------------------------------------------------------------------------
// WindowAggregateOperator
// ---------------------------------------------------------------------------

std::vector<std::string> WindowAggregateOperator::RequiredStores(
    const std::string& prefix) {
  return {prefix + "-state", prefix + "-meta"};
}

Status WindowAggregateOperator::Init(OperatorContext& ctx) {
  compiled_groups_.clear();
  for (const auto& g : group_exprs_) {
    SQS_ASSIGN_OR_RETURN(compiled, sql::CompiledExpr::Compile(*g));
    compiled_groups_.push_back(std::move(compiled));
  }
  compiled_args_.clear();
  for (const auto& a : aggs_) {
    if (a.arg) {
      SQS_ASSIGN_OR_RETURN(compiled, sql::CompiledExpr::Compile(*a.arg));
      compiled_args_.push_back(std::move(compiled));
    } else {
      compiled_args_.push_back(std::nullopt);
    }
  }
  state_ = ctx.task->GetStore(store_prefix_ + "-state");
  bookkeep_ = ctx.task->GetStore(store_prefix_ + "-meta");
  if (!state_ || !bookkeep_) {
    return Status::StateError("window aggregate stores not configured under prefix " +
                              store_prefix_);
  }
  watermark_ = INT64_MIN;
  applied_offsets_.clear();
  if (auto wm = bookkeep_->Get(ToBytes("wm"))) {
    BytesReader reader(*wm);
    SQS_ASSIGN_OR_RETURN(v, reader.ReadVarint());
    watermark_ = v;
  }
  return Status::Ok();
}

Status WindowAggregateOperator::EmitWindow(const Bytes& state_key,
                                           const Bytes& state_value,
                                           const TupleEvent& source,
                                           OperatorContext& ctx) {
  int64_t window_start = DecodeOrderedTs(state_key, 0);
  BytesReader reader(state_value);
  // State layout: group row (tagged) + one accumulator per aggregate.
  SQS_ASSIGN_OR_RETURN(group_row_value, DeserializeTaggedValue(reader));
  TupleEvent out;
  out.partition = source.partition;
  out.offset = source.offset;
  out.rowtime = window_start;
  for (const Value& g : group_row_value.as_array()) out.row.push_back(g);
  out.row.push_back(Value(window_start));
  out.row.push_back(Value(window_start + window_.retain_ms));
  for (const auto& agg : aggs_) {
    SQS_ASSIGN_OR_RETURN(acc,
                         sql::AnyAccumulator::Decode(agg.kind, agg.udaf_id, reader));
    out.row.push_back(acc.Result());
  }
  return EmitNext(std::move(out), ctx);
}

Status WindowAggregateOperator::AdvanceWatermark(int64_t watermark,
                                                 const TupleEvent& source,
                                                 OperatorContext& ctx) {
  if (watermark <= watermark_) return Status::Ok();
  watermark_ = watermark;
  BytesWriter writer(8);
  writer.WriteVarint(watermark_);
  bookkeep_->Put(ToBytes("wm"), writer.Take());

  // Close every window whose end + grace has passed. Keys are ordered by
  // window start, so scan from the beginning and stop at the first open one.
  std::vector<std::pair<Bytes, Bytes>> closed;
  state_->All([&](const Bytes& k, const Bytes& v) {
    int64_t start = DecodeOrderedTs(k, 0);
    if (start + window_.retain_ms + grace_ms_ > watermark_) return false;
    closed.emplace_back(k, v);
    return true;
  });
  for (const auto& [k, v] : closed) {
    SQS_RETURN_IF_ERROR(EmitWindow(k, v, source, ctx));
    state_->Delete(k);
  }
  return Status::Ok();
}

Status WindowAggregateOperator::DoProcess(const TupleEvent& event, OperatorContext& ctx) {
  // Replay idempotence: per input partition, offsets arrive in order, so a
  // tuple at or below the applied high-water mark has already been folded
  // into the (changelog-restored) window state — re-applying it would
  // double count. Its window either is still open (will emit correctly) or
  // already emitted before the failure (the output topic is durable).
  {
    auto it = applied_offsets_.find(event.partition);
    if (it == applied_offsets_.end()) {
      Bytes key = {0xFF, 'o', 'f', 'f'};
      AppendFixed32(key, static_cast<uint32_t>(event.partition));
      int64_t stored = std::numeric_limits<int64_t>::min();
      if (auto v = bookkeep_->Get(key)) {
        BytesReader reader(*v);
        SQS_ASSIGN_OR_RETURN(off, reader.ReadVarint());
        stored = off;
      }
      it = applied_offsets_.emplace(event.partition, stored).first;
    }
    if (event.offset <= it->second) return Status::Ok();  // replayed duplicate
    it->second = event.offset;
    Bytes key = {0xFF, 'o', 'f', 'f'};
    AppendFixed32(key, static_cast<uint32_t>(event.partition));
    BytesWriter writer(8);
    writer.WriteVarint(event.offset);
    bookkeep_->Put(key, writer.Take());
  }

  const bool windowed = window_.type != sql::GroupWindowSpec::Type::kNone;
  int64_t ts = windowed
                   ? event.row[static_cast<size_t>(window_.ts_index)].ToInt64()
                   : 0;

  // Which windows does this tuple fall into?
  std::vector<int64_t> starts;
  if (windowed) {
    int64_t newest = AlignedStart(ts, window_.emit_ms, window_.align_ms);
    for (int64_t s = newest; s > ts - window_.retain_ms; s -= window_.emit_ms) {
      starts.push_back(s);
    }
  } else {
    starts.push_back(0);
  }

  Row group_values;
  group_values.reserve(compiled_groups_.size());
  for (const auto& g : compiled_groups_) group_values.push_back(g.Eval(event.row));
  Bytes group_key = EncodeOrderedKey(group_values);

  for (int64_t start : starts) {
    // Late beyond grace: the window was already emitted and purged — the
    // tuple is discarded (paper §3 timeout policy).
    if (windowed && start + window_.retain_ms + grace_ms_ <= watermark_) {
      ++discarded_late_;
      CountDropped();
      continue;
    }
    Bytes key;
    AppendOrderedTs(key, start);
    key.insert(key.end(), group_key.begin(), group_key.end());

    std::vector<sql::AnyAccumulator> states;
    auto existing = state_->Get(key);
    if (existing) {
      BytesReader reader(*existing);
      SQS_ASSIGN_OR_RETURN(group_row, DeserializeTaggedValue(reader));
      (void)group_row;
      for (const auto& agg : aggs_) {
        SQS_ASSIGN_OR_RETURN(acc,
                             sql::AnyAccumulator::Decode(agg.kind, agg.udaf_id, reader));
        states.push_back(std::move(acc));
      }
    } else {
      for (const auto& agg : aggs_) {
        SQS_ASSIGN_OR_RETURN(acc, sql::AnyAccumulator::Make(agg.kind, agg.udaf_id));
        states.push_back(std::move(acc));
      }
    }
    for (size_t i = 0; i < aggs_.size(); ++i) {
      states[i].Add(EvalArg(compiled_args_[i], event.row));
    }
    BytesWriter writer(64);
    SQS_RETURN_IF_ERROR(SerializeTaggedValue(Value(ValueArray(group_values.begin(),
                                                              group_values.end())),
                                             writer));
    for (const auto& st : states) st.EncodeTo(writer);
    state_->Put(key, writer.Take());
  }

  if (windowed) {
    SQS_RETURN_IF_ERROR(AdvanceWatermark(ts, event, ctx));
  }
  return Status::Ok();
}

Status WindowAggregateOperator::OnTimer(OperatorContext& ctx) {
  // Early results: emit current partial aggregates for all open windows
  // (without purging — the final emission still happens at close).
  std::vector<std::pair<Bytes, Bytes>> open;
  state_->All([&](const Bytes& k, const Bytes& v) {
    open.emplace_back(k, v);
    return true;
  });
  TupleEvent source;  // partition 0: timer emissions are task-local
  for (const auto& [k, v] : open) {
    SQS_RETURN_IF_ERROR(EmitWindow(k, v, source, ctx));
  }
  return Status::Ok();
}

}  // namespace sqs::ops
