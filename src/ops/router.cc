#include "ops/router.h"

#include <algorithm>

#include "common/flightrec.h"
#include "serde/json.h"

namespace sqs::ops {

Result<RowSerdePtr> SerdeForFormat(const std::string& format, SchemaPtr schema) {
  if (format == "avro" || format.empty()) {
    return RowSerdePtr(std::make_shared<AvroRowSerde>(std::move(schema)));
  }
  if (format == "json") {
    return RowSerdePtr(std::make_shared<JsonRowSerde>(std::move(schema)));
  }
  if (format == "reflective") {
    return RowSerdePtr(std::make_shared<ReflectiveRowSerde>(std::move(schema)));
  }
  return Status::InvalidArgument("unknown message format: " + format);
}

namespace {

// Shared plan traversal so Build() and RequiredStores() assign identical
// store prefixes (operator ids are preorder positions).
class Builder {
 public:
  Builder(const RouterConfig* config, MessageRouter* router,
          std::vector<std::string>* stores_out)
      : config_(config), router_(router), stores_out_(stores_out) {}

  Result<OperatorPtr> BuildNode(const sql::LogicalNode& node);

  // Registers a built operator under its plan-unique metric id
  // ("op<preorder-id>-<name>") so per-operator metrics from different plan
  // nodes of the same kind stay distinguishable.
  void Register(const std::string& prefix, const OperatorPtr& op) {
    op->set_metric_id(prefix + "-" + op->name());
    operators_.push_back(op);
  }

  int next_id() const { return next_id_; }

  std::vector<OperatorPtr> operators_;
  std::vector<std::pair<std::string, bool>> scan_topics_;  // topic, bootstrap
  std::vector<std::shared_ptr<ScanOperator>> scan_ops_;

 private:
  Result<RowSerdePtr> StateSerde(SchemaPtr schema) const {
    return SerdeForFormat(config_ ? config_->state_serde : "reflective",
                          std::move(schema));
  }

  const RouterConfig* config_;   // null during RequiredStores traversal
  MessageRouter* router_;        // unused; kept for future bindings
  std::vector<std::string>* stores_out_;
  int next_id_ = 0;
};

Result<OperatorPtr> Builder::BuildNode(const sql::LogicalNode& node) {
  const int id = next_id_++;
  const std::string prefix = "op" + std::to_string(id);
  const bool collecting = config_ == nullptr;

  switch (node.kind) {
    case sql::LogicalKind::kScan: {
      OperatorPtr op;
      if (!collecting) {
        SQS_ASSIGN_OR_RETURN(serde,
                             SerdeForFormat(node.source.format, node.source.schema));
        int rowtime = -1;
        if (!node.source.rowtime_column.empty()) {
          auto idx = node.source.schema->FieldIndex(node.source.rowtime_column);
          if (idx) rowtime = static_cast<int>(*idx);
        }
        auto scan = std::make_shared<ScanOperator>(serde, node.source.schema, rowtime,
                                                   config_->fuse_conversions);
        scan_ops_.push_back(scan);
        scan_topics_.emplace_back(node.source.topic, !node.source.is_stream());
        op = scan;
        Register(prefix, op);
      } else {
        scan_topics_.emplace_back(node.source.topic, !node.source.is_stream());
      }
      return op;
    }

    case sql::LogicalKind::kFilter: {
      SQS_ASSIGN_OR_RETURN(child, BuildNode(*node.inputs[0]));
      OperatorPtr op;
      if (!collecting) {
        op = std::make_shared<FilterOperator>(node.predicate->Clone());
        child->SetNext(op, 0);
        Register(prefix, op);
      }
      return op;
    }

    case sql::LogicalKind::kProject: {
      SQS_ASSIGN_OR_RETURN(child, BuildNode(*node.inputs[0]));
      OperatorPtr op;
      if (!collecting) {
        std::vector<sql::ExprPtr> exprs;
        exprs.reserve(node.exprs.size());
        for (const auto& e : node.exprs) exprs.push_back(e->Clone());
        op = std::make_shared<ProjectOperator>(std::move(exprs), node.rowtime_index);
        child->SetNext(op, 0);
        Register(prefix, op);
      }
      return op;
    }

    case sql::LogicalKind::kSlidingWindow: {
      SQS_ASSIGN_OR_RETURN(child, BuildNode(*node.inputs[0]));
      if (stores_out_) {
        for (auto& s :
             SlidingWindowOperator::RequiredStores(prefix, node.window_calls.size())) {
          stores_out_->push_back(std::move(s));
        }
      }
      OperatorPtr op;
      if (!collecting) {
        std::vector<sql::WindowCallSpec> calls;
        for (const auto& c : node.window_calls) {
          sql::WindowCallSpec copy;
          copy.kind = c.kind;
          if (c.arg) copy.arg = c.arg->Clone();
          for (const auto& p : c.partition_by) copy.partition_by.push_back(p->Clone());
          copy.ts_index = c.ts_index;
          copy.range_based = c.range_based;
          copy.preceding_ms = c.preceding_ms;
          copy.preceding_rows = c.preceding_rows;
          copy.output_name = c.output_name;
          copy.type = c.type;
          calls.push_back(std::move(copy));
        }
        op = std::make_shared<SlidingWindowOperator>(std::move(calls), prefix);
        child->SetNext(op, 0);
        Register(prefix, op);
      }
      return op;
    }

    case sql::LogicalKind::kAggregate: {
      SQS_ASSIGN_OR_RETURN(child, BuildNode(*node.inputs[0]));
      if (stores_out_) {
        for (auto& s : WindowAggregateOperator::RequiredStores(prefix)) {
          stores_out_->push_back(std::move(s));
        }
      }
      OperatorPtr op;
      if (!collecting) {
        if (node.group_window.type == sql::GroupWindowSpec::Type::kNone) {
          return Status::Unsupported(
              "streaming aggregate requires a group window (TUMBLE/HOP/FLOOR)");
        }
        std::vector<sql::ExprPtr> groups;
        for (const auto& g : node.group_exprs) groups.push_back(g->Clone());
        std::vector<sql::AggCallSpec> aggs;
        for (const auto& a : node.aggs) {
          sql::AggCallSpec copy;
          copy.kind = a.kind;
          copy.udaf_id = a.udaf_id;
          if (a.arg) copy.arg = a.arg->Clone();
          copy.output_name = a.output_name;
          copy.type = a.type;
          aggs.push_back(std::move(copy));
        }
        op = std::make_shared<WindowAggregateOperator>(
            std::move(groups), node.group_window, std::move(aggs), prefix,
            config_->grace_ms);
        child->SetNext(op, 0);
        Register(prefix, op);
      }
      return op;
    }

    case sql::LogicalKind::kJoin: {
      SQS_ASSIGN_OR_RETURN(left, BuildNode(*node.inputs[0]));
      SQS_ASSIGN_OR_RETURN(right, BuildNode(*node.inputs[1]));
      if (node.join_type == sql::JoinType::kStreamRelation) {
        if (stores_out_) {
          for (auto& s : StreamTableJoinOperator::RequiredStores(prefix)) {
            stores_out_->push_back(std::move(s));
          }
        }
        OperatorPtr op;
        if (!collecting) {
          SQS_ASSIGN_OR_RETURN(serde, StateSerde(node.inputs[1]->schema));
          op = std::make_shared<StreamTableJoinOperator>(
              node.equi_keys, node.residual ? node.residual->Clone() : nullptr, serde,
              prefix);
          left->SetNext(op, 0);
          right->SetNext(op, 1);
          Register(prefix, op);
        }
        return op;
      }
      if (stores_out_) {
        for (auto& s : StreamStreamJoinOperator::RequiredStores(prefix)) {
          stores_out_->push_back(std::move(s));
        }
      }
      OperatorPtr op;
      if (!collecting) {
        SQS_ASSIGN_OR_RETURN(left_serde, StateSerde(node.inputs[0]->schema));
        SQS_ASSIGN_OR_RETURN(right_serde, StateSerde(node.inputs[1]->schema));
        op = std::make_shared<StreamStreamJoinOperator>(
            node.equi_keys, node.left_ts_index, node.right_ts_index,
            node.window_before_ms, node.window_after_ms,
            node.residual ? node.residual->Clone() : nullptr, left_serde, right_serde,
            prefix, config_->grace_ms);
        left->SetNext(op, 0);
        right->SetNext(op, 1);
        Register(prefix, op);
      }
      return op;
    }
  }
  return Status::Internal("unhandled logical node in router build");
}

}  // namespace

Result<std::unique_ptr<MessageRouter>> MessageRouter::Build(
    const sql::LogicalNode& plan, const RouterConfig& config) {
  auto router = std::make_unique<MessageRouter>();

  // Fusion: when the whole plan is one terminal Scan <- Filter*/Project*
  // chain, replace the interpreted DAG (scan -> ... -> insert) with a
  // single fused stage that owns the serde boundary on both sides.
  if (config.fusion) {
    std::vector<sql::FusedStageSpec> specs = sql::PlanFusedStages(plan);
    if (specs.size() == 1 && specs[0].first_op == 0 && specs[0].reaches_root) {
      sql::FusedStageSpec spec = std::move(specs[0]);
      const sql::SourceDef& source = spec.scan->source;
      SQS_ASSIGN_OR_RETURN(input_serde,
                           SerdeForFormat(source.format, source.schema));
      const std::string label = spec.label;
      auto fused = std::make_shared<FusedStageOperator>(
          std::move(spec), input_serde, config.output_topic,
          config.output_serde, config.out_key_index);
      fused->set_metric_id(label);
      FlightRecorder::Record(FlightEventType::kPlanBuilt, source.topic, label);
      router->operators_.push_back(fused);
      router->fused_stage_ = fused;
      SourceBinding binding;
      binding.topic = source.topic;
      binding.bootstrap = !source.is_stream();
      binding.source = fused;
      router->by_topic_[binding.topic].push_back(fused.get());
      router->sources_.push_back(std::move(binding));
      return router;
    }
  }

  Builder builder(&config, router.get(), nullptr);
  SQS_ASSIGN_OR_RETURN(root, builder.BuildNode(plan));

  auto insert = std::make_shared<InsertOperator>(config.output_topic,
                                                 config.output_serde,
                                                 config.out_key_index,
                                                 config.fuse_conversions);
  root->SetNext(insert, 0);
  builder.Register("op" + std::to_string(builder.next_id()), insert);

  router->operators_ = std::move(builder.operators_);
  FlightRecorder::Record(FlightEventType::kPlanBuilt, config.output_topic,
                         "interpreted", static_cast<int64_t>(router->operators_.size()));
  for (size_t i = 0; i < builder.scan_ops_.size(); ++i) {
    SourceBinding binding;
    binding.topic = builder.scan_topics_[i].first;
    binding.bootstrap = builder.scan_topics_[i].second;
    binding.source = builder.scan_ops_[i];
    router->by_topic_[binding.topic].push_back(binding.source.get());
    router->sources_.push_back(std::move(binding));
  }
  return router;
}

Result<std::vector<std::string>> MessageRouter::RequiredStores(
    const sql::LogicalNode& plan) {
  std::vector<std::string> stores;
  Builder builder(nullptr, nullptr, &stores);
  SQS_RETURN_IF_ERROR(builder.BuildNode(plan).status());
  return stores;
}

Status MessageRouter::Init(OperatorContext& ctx) {
  for (auto& op : operators_) {
    SQS_RETURN_IF_ERROR(op->Init(ctx));
  }
  return Status::Ok();
}

Status MessageRouter::Route(const IncomingMessage& message, OperatorContext& ctx) {
  auto it = by_topic_.find(message.origin.topic);
  if (it == by_topic_.end()) {
    return Status::Internal("no scan for topic " + message.origin.topic);
  }
  for (SourceOperator* source : it->second) {
    SQS_RETURN_IF_ERROR(source->ProcessMessage(message, ctx));
  }
  return Status::Ok();
}

Status MessageRouter::RouteBatch(const IncomingMessage* msgs, size_t count,
                                 OperatorContext& ctx, size_t* consumed) {
  size_t done = 0;
  while (done < count) {
    const std::string& topic = msgs[done].origin.topic;
    size_t end = done + 1;
    while (end < count && msgs[end].origin.topic == topic) ++end;
    auto it = by_topic_.find(topic);
    if (it == by_topic_.end()) {
      if (consumed) *consumed = done;
      return Status::Internal("no scan for topic " + topic);
    }
    if (it->second.size() == 1) {
      size_t run_consumed = 0;
      Status st = it->second[0]->ProcessMessages(msgs + done, end - done, ctx,
                                                 &run_consumed);
      done += run_consumed;
      if (!st.ok()) {
        if (consumed) *consumed = done;
        return st;
      }
    } else {
      // A topic feeding several sources (self-join): keep the per-message
      // fan-out order every source sees on the per-message path.
      for (size_t i = done; i < end; ++i) {
        for (SourceOperator* source : it->second) {
          Status st = source->ProcessMessage(msgs[i], ctx);
          if (!st.ok()) {
            if (consumed) *consumed = i;
            return st;
          }
        }
      }
      done = end;
    }
  }
  if (consumed) *consumed = count;
  return Status::Ok();
}

Status MessageRouter::OnTimer(OperatorContext& ctx) {
  for (auto& op : operators_) {
    SQS_RETURN_IF_ERROR(op->OnTimer(ctx));
  }
  return Status::Ok();
}

Status MessageRouter::OnCommit(OperatorContext& ctx) {
  for (auto& op : operators_) {
    SQS_RETURN_IF_ERROR(op->OnCommit(ctx));
  }
  return Status::Ok();
}

std::vector<std::string> MessageRouter::InputTopics() const {
  std::vector<std::string> out;
  for (const auto& s : sources_) {
    if (std::find(out.begin(), out.end(), s.topic) == out.end()) out.push_back(s.topic);
  }
  return out;
}

std::vector<std::string> MessageRouter::BootstrapTopics() const {
  std::vector<std::string> out;
  for (const auto& s : sources_) {
    if (s.bootstrap &&
        std::find(out.begin(), out.end(), s.topic) == out.end()) {
      out.push_back(s.topic);
    }
  }
  return out;
}

}  // namespace sqs::ops
