// Stateless operators: scan (deserialize + record->array), filter, project,
// and stream-insert (array->record + serialize + send).
#pragma once

#include "ops/operator.h"
#include "sql/expr.h"
#include "sql/logical.h"

namespace sqs::ops {

// Leaf operator: deserializes an incoming message into a record and, unless
// `fuse_conversions` is set, copies it into the tuple-as-array working
// representation — the explicit "AvroToArray" step of Figure 4 that the
// paper's CPU profiling identified as the main SQL overhead. Hand-written
// native tasks skip this copy (they work on the decoded record directly);
// fuse_conversions = the paper's §7 item 5 future-work optimization.
class ScanOperator : public Operator, public SourceOperator {
 public:
  ScanOperator(RowSerdePtr serde, SchemaPtr schema, int rowtime_index,
               bool fuse_conversions = false)
      : serde_(std::move(serde)),
        schema_(std::move(schema)),
        rowtime_index_(rowtime_index),
        fuse_conversions_(fuse_conversions) {}

  std::string name() const override { return "scan"; }
  Status Init(OperatorContext&) override { return Status::Ok(); }

  // Scan is fed raw bytes by the router, not TupleEvents. Instrumented the
  // same way as Process: the latency sample covers deserialize + validate +
  // RecordToArray + the entire downstream pipeline.
  Status ProcessMessage(const IncomingMessage& message,
                        OperatorContext& ctx) override;

 protected:
  Status DoProcess(const TupleEvent& event, OperatorContext& ctx) override {
    return EmitNext(event, ctx);  // pre-decoded path (used in tests)
  }

 private:
  Status DecodeAndEmit(const IncomingMessage& message, OperatorContext& ctx);

  RowSerdePtr serde_;
  SchemaPtr schema_;
  int rowtime_index_;
  bool fuse_conversions_;
};

class FilterOperator : public Operator {
 public:
  explicit FilterOperator(sql::ExprPtr predicate) : predicate_(std::move(predicate)) {}

  std::string name() const override { return "filter"; }
  Status Init(OperatorContext&) override;

 protected:
  Status DoProcess(const TupleEvent& event, OperatorContext& ctx) override;

 private:
  sql::ExprPtr predicate_;
  std::optional<sql::CompiledExpr> compiled_;
};

class ProjectOperator : public Operator {
 public:
  explicit ProjectOperator(std::vector<sql::ExprPtr> exprs, int out_rowtime_index)
      : exprs_(std::move(exprs)), out_rowtime_index_(out_rowtime_index) {}

  std::string name() const override { return "project"; }
  Status Init(OperatorContext&) override;

 protected:
  Status DoProcess(const TupleEvent& event, OperatorContext& ctx) override;

 private:
  std::vector<sql::ExprPtr> exprs_;
  int out_rowtime_index_;
  std::vector<sql::CompiledExpr> compiled_;
};

// Root operator: serializes the Row back into the output message format and
// sends it to the output topic (the "ArrayToAvro" + insert step of Fig. 4).
// Partition-preserving by default so per-partition ordering survives the
// pipeline; set a key index to hash-partition by a column instead.
class InsertOperator : public Operator {
 public:
  InsertOperator(std::string output_topic, RowSerdePtr serde, int key_index = -1,
                 bool fuse_conversions = false)
      : topic_(std::move(output_topic)),
        serde_(std::move(serde)),
        key_index_(key_index),
        fuse_conversions_(fuse_conversions) {}

  std::string name() const override { return "insert"; }
  Status Init(OperatorContext&) override { return Status::Ok(); }

  int64_t emitted() const { return emitted_; }

 protected:
  Status DoProcess(const TupleEvent& event, OperatorContext& ctx) override;

 private:
  std::string topic_;
  RowSerdePtr serde_;
  int key_index_;
  bool fuse_conversions_;
  int64_t emitted_ = 0;
};

}  // namespace sqs::ops
