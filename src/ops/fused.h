// Fused pipeline stage (paper §7 item 5, mainlined): one operator that
// executes a whole Scan <- Filter*/Project* chain plus the stream-insert,
// compiled from a FusedStageSpec. Per record it decodes only the plan's
// referenced columns (lazily, via FusedStageKernel), evaluates predicates on
// the raw decoded scalars with early exit, projects, and re-serializes only
// the surviving columns — for byte-compatible Avro input/output with the
// identity projection it forwards the ORIGINAL value bytes untouched, the
// same zero-copy a hand-written native task does.
//
// The stage is message-fed (a SourceOperator) and terminal (it owns the
// send), so a fused plan has no per-operator dispatch at all. Interpreted
// operators (joins, windows, aggregates) keep the classic DAG; the router
// hosts both behind the SourceOperator interface. See docs/EXECUTION.md.
#pragma once

#include <string>
#include <vector>

#include "ops/operator.h"
#include "sql/batch_eval.h"
#include "sql/optimizer.h"

namespace sqs::ops {

class FusedStageOperator : public Operator, public SourceOperator {
 public:
  // `input_serde` decodes the scanned topic; `output_serde` encodes the
  // stage output. `out_key_index` >= 0 hash-partitions output by that
  // column of the output row; otherwise sends preserve the input partition.
  FusedStageOperator(sql::FusedStageSpec spec, RowSerdePtr input_serde,
                     std::string output_topic, RowSerdePtr output_serde,
                     int out_key_index = -1)
      : spec_(std::move(spec)),
        input_serde_(std::move(input_serde)),
        topic_(std::move(output_topic)),
        output_serde_(std::move(output_serde)),
        key_index_(out_key_index) {}

  std::string name() const override { return "fused"; }

  // Decides passthrough eligibility and compiles the kernel.
  Status Init(OperatorContext& ctx) override;

  // Solo path: one message, one stage span (used for traced messages so
  // span chains stay per-message).
  Status ProcessMessage(const IncomingMessage& message,
                        OperatorContext& ctx) override;

  // Batch path: one stage span for the whole run, with child "decode" and
  // "encode" spans so EXPLAIN ANALYZE's serde share stays meaningful.
  // Evaluates the kernel over every message first, then sends the survivors
  // in input order (exactly-once sequencing matches per-message replay).
  Status ProcessMessages(const IncomingMessage* msgs, size_t count,
                         OperatorContext& ctx, size_t* consumed) override;

  bool passthrough() const { return passthrough_; }
  const std::string& label() const { return spec_.label; }
  int64_t emitted() const { return emitted_; }

 protected:
  // TupleEvent entry is not used; the stage is fed raw messages.
  Status DoProcess(const TupleEvent&, OperatorContext&) override {
    return Status::Internal("fused stage is message-fed");
  }

 private:
  struct PendingSend {
    bool pass = false;
    Row row;          // output row (non-passthrough)
    Bytes key;        // encoded key (key_index_ >= 0)
  };

  // Kernel apply + key extraction for one message; fills `out`.
  Status Evaluate(const IncomingMessage& msg, PendingSend& out);
  // Serialize (or forward) + send one surviving record.
  Status SendOne(const IncomingMessage& msg, PendingSend& pending,
                 OperatorContext& ctx);

  sql::FusedStageSpec spec_;
  RowSerdePtr input_serde_;
  std::string topic_;
  RowSerdePtr output_serde_;
  int key_index_;

  sql::FusedStageKernel kernel_;
  bool passthrough_ = false;
  int64_t emitted_ = 0;
};

// True when the stage may forward original value bytes for surviving
// records: identity projection, Avro on both sides, and field-compatible
// schemas (same kinds/nullability position by position — names don't matter,
// the encoding is positional).
bool FusedStageCanPassthrough(const sql::FusedStageSpec& spec,
                              const RowSerde& input_serde,
                              const RowSerde& output_serde);

}  // namespace sqs::ops
