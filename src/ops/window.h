// Window operators.
//
// SlidingWindowOperator — paper §4.3 / Algorithm 1. For each OVER call:
// messages are saved into a KV-backed message store keyed by
// (partition-key, timestamp, input partition, offset); on each arrival the
// window advances (expired entries purged, running aggregates adjusted) and
// the latest aggregate value is appended to the tuple and sent downstream.
// All state lives in changelog-backed task stores, so a task failure
// restores the window (message store + aggregate values + bounds) and
// replayed inputs are absorbed idempotently (the (partition, offset) key
// dedupes re-deliveries), giving deterministic window output under
// re-delivery — the paper's §1 claim.
//
// WindowAggregateOperator — hopping/tumbling GROUP BY windows (paper §3.6;
// listed as future work item 4, implemented here). State per
// (group key, window start) is a set of running aggregates; windows emit
// when the per-partition watermark (max rowtime seen) passes window end,
// and late tuples beyond the grace period are discarded — the paper's §3
// early-results/timeout policy.
#pragma once

#include <cstdint>
#include <limits>
#include <map>
#include <optional>

#include "kv/store.h"
#include "ops/operator.h"
#include "sql/expr.h"
#include "sql/logical.h"

namespace sqs::ops {

class SlidingWindowOperator : public Operator {
 public:
  // `store_prefix`: task stores "<prefix>-msgs-<i>" and "<prefix>-agg-<i>"
  // must be configured for each window call i.
  SlidingWindowOperator(std::vector<sql::WindowCallSpec> calls, std::string store_prefix)
      : calls_(std::move(calls)), store_prefix_(std::move(store_prefix)) {}

  std::string name() const override { return "sliding-window"; }
  Status Init(OperatorContext& ctx) override;
  // Persists the committed watermark: the replay-safe physical purge
  // horizon (entries older than committed watermark - window width can no
  // longer be needed by any replayed tuple).
  Status OnCommit(OperatorContext& ctx) override;

 protected:
  Status DoProcess(const TupleEvent& event, OperatorContext& ctx) override;

 public:
  // Store names this operator needs, given the call count (used by the job
  // config generator).
  static std::vector<std::string> RequiredStores(const std::string& prefix,
                                                 size_t num_calls);

 private:
  struct CallRuntime {
    std::optional<sql::CompiledExpr> arg;  // empty for COUNT(*)
    std::vector<sql::CompiledExpr> partition_by;
    KeyValueStorePtr messages;  // (pkey, ts, part, offset) -> tagged arg value
    KeyValueStorePtr aggs;      // pkey -> bound + count + encoded AggState
    // Highest event time seen / persisted at the last checkpoint.
    int64_t watermark = std::numeric_limits<int64_t>::min();
    int64_t committed_watermark = std::numeric_limits<int64_t>::min();
  };

  Result<Value> ProcessCall(size_t index, const sql::WindowCallSpec& spec,
                            CallRuntime& rt, const TupleEvent& event);

  std::vector<sql::WindowCallSpec> calls_;
  std::string store_prefix_;
  std::vector<CallRuntime> runtimes_;
};

class WindowAggregateOperator : public Operator {
 public:
  // Needs task stores "<prefix>-state" (window agg state) configured.
  WindowAggregateOperator(std::vector<sql::ExprPtr> group_exprs,
                          sql::GroupWindowSpec window,
                          std::vector<sql::AggCallSpec> aggs, std::string store_prefix,
                          int64_t grace_ms = 0)
      : group_exprs_(std::move(group_exprs)),
        window_(window),
        aggs_(std::move(aggs)),
        store_prefix_(std::move(store_prefix)),
        grace_ms_(grace_ms) {}

  std::string name() const override { return "window-aggregate"; }
  Status Init(OperatorContext& ctx) override;
  // Early-results emission (paper §3: partial results as soon as a window
  // boundary condition is met): OnTimer emits current partials for all open
  // windows without closing them.
  Status OnTimer(OperatorContext& ctx) override;

 protected:
  Status DoProcess(const TupleEvent& event, OperatorContext& ctx) override;

 public:

  static std::vector<std::string> RequiredStores(const std::string& prefix);

  int64_t discarded_late() const { return discarded_late_; }

 private:
  // Emit [groups..., window_start, window_end, aggs...] downstream.
  Status EmitWindow(const Bytes& state_key, const Bytes& state_value,
                    const TupleEvent& source, OperatorContext& ctx);
  Status AdvanceWatermark(int64_t watermark, const TupleEvent& source,
                          OperatorContext& ctx);

  std::vector<sql::ExprPtr> group_exprs_;
  sql::GroupWindowSpec window_;
  std::vector<sql::AggCallSpec> aggs_;
  std::string store_prefix_;
  int64_t grace_ms_;

  std::vector<sql::CompiledExpr> compiled_groups_;
  std::vector<std::optional<sql::CompiledExpr>> compiled_args_;
  KeyValueStorePtr state_;     // (window_start, group key) -> agg states
  KeyValueStorePtr bookkeep_;  // watermark + per-partition applied offsets
  int64_t watermark_ = INT64_MIN;
  int64_t discarded_late_ = 0;
  // Replay-idempotence high-water marks (cache of bookkeep_ entries).
  std::map<int32_t, int64_t> applied_offsets_;
};

}  // namespace sqs::ops
