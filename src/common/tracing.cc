#include "common/tracing.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/clock.h"
#include "common/profiler.h"

namespace sqs {

namespace {

thread_local TraceContext g_current_context;

void AppendJsonEscaped(std::ostringstream& os, std::string_view s) {
  for (char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          os << ' ';
        } else {
          os << c;
        }
    }
  }
}

}  // namespace

Tracer& Tracer::Instance() {
  static Tracer tracer;
  return tracer;
}

void Tracer::Configure(double sample_rate, size_t capacity) {
  std::lock_guard<std::mutex> lock(mu_);
  if (capacity == 0) capacity = 1;
  if (capacity != capacity_) {
    ring_.clear();
    ring_.shrink_to_fit();
    write_ = 0;
    recorded_ = 0;
    capacity_ = capacity;
  }
  if (sample_rate <= 0) {
    sample_every_.store(0, std::memory_order_relaxed);
    return;
  }
  sample_every_.store(
      std::max<int64_t>(1, std::llround(1.0 / std::min(1.0, sample_rate))),
      std::memory_order_relaxed);
}

double Tracer::sample_rate() const {
  int64_t every = sample_every_.load(std::memory_order_relaxed);
  return every > 0 ? 1.0 / static_cast<double>(every) : 0.0;
}

TraceContext Tracer::MaybeStartTrace() {
  int64_t every = sample_every_.load(std::memory_order_relaxed);
  if (every <= 0) return {};
  uint64_t seq = trace_seq_.fetch_add(1, std::memory_order_relaxed);
  if (seq % static_cast<uint64_t>(every) != 0) return {};
  TraceContext ctx;
  ctx.trace_id = ++next_id_;
  ctx.span_id = 0;  // root: the first span under this context has no parent
  ctx.sampled = true;
  return ctx;
}

void Tracer::Record(Span span) {
  std::lock_guard<std::mutex> lock(mu_);
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(span));
  } else {
    ring_[write_ % capacity_] = std::move(span);
  }
  ++write_;
  ++recorded_;
}

std::vector<Span> Tracer::Spans() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Span> out;
  out.reserve(ring_.size());
  if (ring_.size() < capacity_) {
    out = ring_;
  } else {
    // Ring is full: oldest entry sits at the next write position.
    for (size_t i = 0; i < capacity_; ++i) {
      out.push_back(ring_[(write_ + i) % capacity_]);
    }
  }
  return out;
}

int64_t Tracer::recorded_total() const {
  std::lock_guard<std::mutex> lock(mu_);
  return recorded_;
}

int64_t Tracer::evicted() const {
  std::lock_guard<std::mutex> lock(mu_);
  return recorded_ - static_cast<int64_t>(ring_.size());
}

void Tracer::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  ring_.clear();
  write_ = 0;
  recorded_ = 0;
}

void Tracer::Reset() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    ring_.clear();
    ring_.shrink_to_fit();
    write_ = 0;
    recorded_ = 0;
    capacity_ = kDefaultCapacity;
  }
  sample_every_.store(0, std::memory_order_relaxed);
  trace_seq_.store(0, std::memory_order_relaxed);
  next_id_.store(0, std::memory_order_relaxed);
}

TraceContext CurrentTraceContext() { return g_current_context; }

TraceSpan::TraceSpan(const TraceContext& parent, std::string_view name,
                     std::string_view scope, int64_t tag) {
  // Every span — sampled or not — contributes a frame to the thread's
  // cooperative profiling stack, so the sampler and the stall-watchdog
  // burst always see what this thread is doing (docs/PROFILING.md).
  Profiler::PushFrame(Profiler::Intern(name));
  prev_ = g_current_context;
  if (parent.valid() && Tracer::Instance().enabled()) {
    active_ = true;
    span_.trace_id = parent.trace_id;
    span_.span_id = Tracer::Instance().NextSpanId();
    span_.parent_span_id = parent.span_id;
    span_.name.assign(name);
    span_.scope.assign(scope);
    span_.tag = tag;
    span_.start_ns = MonotonicNanos();
    g_current_context = TraceContext{span_.trace_id, span_.span_id, true};
  } else {
    // Clear the ambient context so nothing started in this extent attaches
    // to an unrelated earlier span.
    g_current_context = TraceContext{};
  }
}

TraceSpan::~TraceSpan() {
  if (active_) {
    span_.duration_ns = MonotonicNanos() - span_.start_ns;
    Tracer::Instance().Record(std::move(span_));
  }
  g_current_context = prev_;
  Profiler::PopFrame();
}

TraceContext TraceSpan::context() const {
  if (!active_) return {};
  return TraceContext{span_.trace_id, span_.span_id, true};
}

std::map<std::string, SpanStats> ComputeSpanStats(const std::vector<Span>& spans,
                                                  const std::string& scope_prefix) {
  auto in_scope = [&](const Span& s) {
    return scope_prefix.empty() ||
           s.scope.compare(0, scope_prefix.size(), scope_prefix) == 0;
  };
  // Sum of in-scope child durations per parent span id; ring eviction can
  // orphan children, in which case their time simply stays with nobody.
  std::map<uint64_t, int64_t> child_ns;
  for (const Span& s : spans) {
    if (s.parent_span_id != 0 && in_scope(s)) {
      child_ns[s.parent_span_id] += s.duration_ns;
    }
  }
  std::map<std::string, SpanStats> stats;
  for (const Span& s : spans) {
    if (!in_scope(s)) continue;
    SpanStats& st = stats[s.name];
    st.count += 1;
    st.inclusive_ns += s.duration_ns;
    auto it = child_ns.find(s.span_id);
    int64_t self = s.duration_ns - (it == child_ns.end() ? 0 : it->second);
    st.self_ns += std::max<int64_t>(0, self);
  }
  return stats;
}

std::string SpansToChromeTraceJson(const std::vector<Span>& spans) {
  // Stable small thread ids per scope so Perfetto groups spans by component.
  std::map<std::string, int> tids;
  for (const Span& s : spans) {
    tids.emplace(s.scope, static_cast<int>(tids.size()) + 1);
  }
  std::ostringstream os;
  os << "{\"traceEvents\":[";
  bool first = true;
  for (const auto& [scope, tid] : tids) {
    if (!first) os << ",";
    first = false;
    os << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":" << tid
       << ",\"args\":{\"name\":\"";
    AppendJsonEscaped(os, scope);
    os << "\"}}";
  }
  os.setf(std::ios::fixed);
  os.precision(3);
  for (const Span& s : spans) {
    if (!first) os << ",";
    first = false;
    os << "{\"name\":\"";
    AppendJsonEscaped(os, s.name);
    os << "\",\"cat\":\"";
    AppendJsonEscaped(os, s.scope);
    os << "\",\"ph\":\"X\",\"pid\":1,\"tid\":" << tids[s.scope]
       << ",\"ts\":" << static_cast<double>(s.start_ns) / 1000.0
       << ",\"dur\":" << static_cast<double>(s.duration_ns) / 1000.0
       << ",\"args\":{\"trace_id\":" << s.trace_id << ",\"span_id\":" << s.span_id
       << ",\"parent_span_id\":" << s.parent_span_id << ",\"tag\":" << s.tag
       << "}}";
  }
  os << "]}";
  return os.str();
}

}  // namespace sqs
