#include "common/metrics_reporter.h"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <sstream>

#include "common/flightrec.h"

namespace sqs {

namespace {

void CrashFlushReporter(void* arg) {
  static_cast<MetricsReporter*>(arg)->ReportNow();
}

}  // namespace

namespace {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

MetricsSnapshot MergeSnapshots(const std::vector<MetricsSnapshot>& snapshots) {
  MetricsSnapshot merged;
  for (const MetricsSnapshot& s : snapshots) {
    for (const auto& [k, v] : s.counters) merged.counters[k] += v;
    for (const auto& [k, v] : s.gauges) merged.gauges[k] = v;
    for (const auto& [k, v] : s.timers) merged.timers[k] += v;
    for (const auto& [k, v] : s.histograms) {
      auto it = merged.histograms.find(k);
      if (it == merged.histograms.end() || v.count > it->second.count) {
        merged.histograms[k] = v;
      }
    }
  }
  return merged;
}

std::string SnapshotToJsonLines(const MetricsSnapshot& snapshot, int64_t ts_ms) {
  std::ostringstream os;
  auto scalar = [&](const std::string& name, const char* type, int64_t value) {
    os << "{\"ts_ms\":" << ts_ms << ",\"name\":\"" << JsonEscape(name)
       << "\",\"type\":\"" << type << "\",\"value\":" << value << "}\n";
  };
  for (const auto& [k, v] : snapshot.counters) scalar(k, "counter", v);
  for (const auto& [k, v] : snapshot.gauges) scalar(k, "gauge", v);
  for (const auto& [k, v] : snapshot.timers) scalar(k, "timer", v);
  for (const auto& [k, h] : snapshot.histograms) {
    os << "{\"ts_ms\":" << ts_ms << ",\"name\":\"" << JsonEscape(k)
       << "\",\"type\":\"histogram\",\"count\":" << h.count << ",\"sum\":" << h.sum
       << ",\"min\":" << h.min << ",\"max\":" << h.max << ",\"p50\":" << h.p50
       << ",\"p95\":" << h.p95 << ",\"p99\":" << h.p99 << "}\n";
  }
  return os.str();
}

std::string SnapshotToTable(const MetricsSnapshot& snapshot) {
  struct RowText {
    std::string name, type, value;
  };
  std::vector<RowText> rows;
  for (const auto& [k, v] : snapshot.counters) {
    rows.push_back({k, "counter", std::to_string(v)});
  }
  for (const auto& [k, v] : snapshot.gauges) {
    rows.push_back({k, "gauge", std::to_string(v)});
  }
  for (const auto& [k, v] : snapshot.timers) {
    rows.push_back({k, "timer", std::to_string(v) + " ns"});
  }
  for (const auto& [k, h] : snapshot.histograms) {
    std::ostringstream v;
    v << "count=" << h.count << " min=" << h.min << " p50=" << h.p50
      << " p95=" << h.p95 << " p99=" << h.p99 << " max=" << h.max;
    rows.push_back({k, "histogram", v.str()});
  }
  std::sort(rows.begin(), rows.end(),
            [](const RowText& a, const RowText& b) { return a.name < b.name; });

  size_t name_w = 6, type_w = 4, value_w = 5;
  for (const RowText& r : rows) {
    name_w = std::max(name_w, r.name.size());
    type_w = std::max(type_w, r.type.size());
    value_w = std::max(value_w, r.value.size());
  }
  std::ostringstream os;
  auto rule = [&] {
    os << '+' << std::string(name_w + 2, '-') << '+' << std::string(type_w + 2, '-')
       << '+' << std::string(value_w + 2, '-') << "+\n";
  };
  auto line = [&](const std::string& a, const std::string& b, const std::string& c) {
    os << "| " << a << std::string(name_w - a.size() + 1, ' ') << "| " << b
       << std::string(type_w - b.size() + 1, ' ') << "| " << c
       << std::string(value_w - c.size() + 1, ' ') << "|\n";
  };
  rule();
  line("metric", "type", "value");
  rule();
  for (const RowText& r : rows) line(r.name, r.type, r.value);
  rule();
  os << rows.size() << " metric(s)\n";
  return os.str();
}

MetricsReporter::MetricsReporter(std::shared_ptr<MetricsRegistry> registry,
                                 std::ostream* out, int64_t interval_ms,
                                 std::shared_ptr<Clock> clock)
    : registry_(std::move(registry)),
      out_(out),
      interval_ms_(interval_ms),
      clock_(clock ? std::move(clock) : SystemClock::Instance()),
      last_report_ms_(clock_->NowMillis()) {
  RegisterCrashFlush(&CrashFlushReporter, this);
}

MetricsReporter::MetricsReporter(std::shared_ptr<MetricsRegistry> registry,
                                 std::string path, int64_t interval_ms,
                                 int64_t max_bytes, std::shared_ptr<Clock> clock)
    : registry_(std::move(registry)),
      out_(nullptr),
      interval_ms_(interval_ms),
      clock_(clock ? std::move(clock) : SystemClock::Instance()),
      last_report_ms_(clock_->NowMillis()),
      path_(std::move(path)),
      max_bytes_(max_bytes) {
  // Rotation counts from the file's existing size, so restarted containers
  // appending to a previous run's file still honor the cap.
  std::ifstream existing(path_, std::ios::binary | std::ios::ate);
  if (existing) bytes_written_ = static_cast<int64_t>(existing.tellg());
  file_.open(path_, std::ios::app);
  RegisterCrashFlush(&CrashFlushReporter, this);
}

MetricsReporter::~MetricsReporter() { UnregisterCrashFlush(this); }

void MetricsReporter::Emit(const std::string& payload) {
  if (out_ != nullptr) {
    *out_ << payload;
    out_->flush();
    return;
  }
  if (max_bytes_ > 0 && bytes_written_ > 0 &&
      bytes_written_ + static_cast<int64_t>(payload.size()) > max_bytes_) {
    file_.close();
    std::rename(path_.c_str(), (path_ + ".1").c_str());
    file_.open(path_, std::ios::trunc);
    bytes_written_ = 0;
  }
  file_ << payload;
  file_.flush();
  bytes_written_ += static_cast<int64_t>(payload.size());
}

bool MetricsReporter::MaybeReport() {
  int64_t now = clock_->NowMillis();
  if (now - last_report_ms_ < interval_ms_) return false;
  last_report_ms_ = now;
  Emit(SnapshotToJsonLines(registry_->Snapshot(), now));
  return true;
}

void MetricsReporter::ReportNow() {
  int64_t now = clock_->NowMillis();
  last_report_ms_ = now;
  Emit(SnapshotToJsonLines(registry_->Snapshot(), now));
}

}  // namespace sqs
