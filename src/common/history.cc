#include "common/history.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace sqs {

MetricsHistory::MetricsHistory(size_t max_samples_per_key)
    : max_samples_(std::max<size_t>(2, max_samples_per_key)) {}

void MetricsHistory::Append(const std::string& key, int64_t ts_ms, double value) {
  Ring& ring = series_[key];
  if (ring.points.empty()) ring.points.resize(max_samples_);
  ring.points[ring.next] = {ts_ms, value};
  ring.next = (ring.next + 1) % max_samples_;
  if (ring.size < max_samples_) ++ring.size;
}

void MetricsHistory::Record(int64_t ts_ms, const MetricsSnapshot& snapshot) {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [k, v] : snapshot.counters) {
    Append(k, ts_ms, static_cast<double>(v));
  }
  for (const auto& [k, v] : snapshot.gauges) {
    Append(k, ts_ms, static_cast<double>(v));
  }
  for (const auto& [k, v] : snapshot.timers) {
    Append(k, ts_ms, static_cast<double>(v));
  }
  for (const auto& [k, h] : snapshot.histograms) {
    Append(k + ".count", ts_ms, static_cast<double>(h.count));
    Append(k + ".p99", ts_ms, static_cast<double>(h.p99));
  }
}

std::vector<MetricsHistory::Point> MetricsHistory::Unroll(const Ring& ring) const {
  std::vector<Point> out;
  out.reserve(ring.size);
  size_t start = (ring.next + max_samples_ - ring.size) % max_samples_;
  for (size_t i = 0; i < ring.size; ++i) {
    out.push_back(ring.points[(start + i) % max_samples_]);
  }
  return out;
}

std::vector<std::string> MetricsHistory::Keys() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> keys;
  keys.reserve(series_.size());
  for (const auto& [k, ring] : series_) keys.push_back(k);
  return keys;
}

std::vector<MetricsHistory::Point> MetricsHistory::Series(
    const std::string& key) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = series_.find(key);
  if (it == series_.end()) return {};
  return Unroll(it->second);
}

double MetricsHistory::RateOf(const std::vector<Point>& points) {
  if (points.size() < 2) return 0;
  int64_t dt_ms = points.back().ts_ms - points.front().ts_ms;
  if (dt_ms <= 0) return 0;
  return (points.back().value - points.front().value) * 1000.0 /
         static_cast<double>(dt_ms);
}

double MetricsHistory::RatePerSec(const std::string& key) const {
  return RateOf(Series(key));
}

std::string MetricsHistory::ToJson(const std::string& key_prefix) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream os;
  os << "{\"samples\":" << max_samples_ << ",\"series\":[";
  bool first = true;
  for (const auto& [key, ring] : series_) {
    if (!key_prefix.empty() &&
        key.compare(0, key_prefix.size(), key_prefix) != 0) {
      continue;
    }
    std::vector<Point> points = Unroll(ring);
    if (!first) os << ",";
    first = false;
    char rate[32];
    std::snprintf(rate, sizeof(rate), "%.6g", RateOf(points));
    os << "{\"name\":\"" << key << "\",\"rate_per_s\":" << rate
       << ",\"points\":[";
    for (size_t i = 0; i < points.size(); ++i) {
      if (i) os << ",";
      char value[32];
      std::snprintf(value, sizeof(value), "%.10g", points[i].value);
      os << "[" << points[i].ts_ms << "," << value << "]";
    }
    os << "]}";
  }
  os << "]}";
  return os.str();
}

void MetricsHistory::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  series_.clear();
}

std::string AsciiSparkline(const std::vector<MetricsHistory::Point>& points) {
  static constexpr char kRamp[] = " .:-=+*#%@";
  constexpr int kLevels = sizeof(kRamp) - 2;  // highest usable index
  if (points.empty()) return "";
  double lo = points[0].value, hi = points[0].value;
  for (const auto& p : points) {
    lo = std::min(lo, p.value);
    hi = std::max(hi, p.value);
  }
  std::string out;
  out.reserve(points.size());
  for (const auto& p : points) {
    int level = 0;
    if (hi > lo) {
      level = static_cast<int>((p.value - lo) / (hi - lo) * kLevels + 0.5);
      level = std::clamp(level, 0, kLevels);
    }
    out += kRamp[level];
  }
  return out;
}

}  // namespace sqs
