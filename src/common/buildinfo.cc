#include "common/buildinfo.h"

#include <unistd.h>

#include <cstdio>
#include <sstream>

#include "common/clock.h"

#ifndef SAMZASQL_VERSION
#define SAMZASQL_VERSION "dev"
#endif
#ifndef SAMZASQL_GIT_SHA
#define SAMZASQL_GIT_SHA "unknown"
#endif
#ifndef SAMZASQL_BUILD_TYPE
#define SAMZASQL_BUILD_TYPE "unknown"
#endif

namespace sqs {

namespace {

// Captured at static-initialization time; close enough to process start for
// an uptime gauge.
const int64_t g_start_ns = MonotonicNanos();

}  // namespace

const BuildInfo& GetBuildInfo() {
  static const BuildInfo* info = new BuildInfo{
      SAMZASQL_VERSION, SAMZASQL_GIT_SHA, SAMZASQL_BUILD_TYPE};
  return *info;
}

double ProcessUptimeSeconds() {
  return static_cast<double>(MonotonicNanos() - g_start_ns) / 1e9;
}

int64_t ProcessRssBytes() {
  std::FILE* f = std::fopen("/proc/self/statm", "r");
  if (f == nullptr) return 0;
  long long size_pages = 0;
  long long rss_pages = 0;
  int matched = std::fscanf(f, "%lld %lld", &size_pages, &rss_pages);
  std::fclose(f);
  if (matched != 2) return 0;
  long page = sysconf(_SC_PAGESIZE);
  if (page <= 0) page = 4096;
  return static_cast<int64_t>(rss_pages) * page;
}

std::string RenderBuildInfoPrometheus() {
  const BuildInfo& info = GetBuildInfo();
  std::ostringstream os;
  os << "# HELP samzasql_build_info Build identity (value is always 1).\n"
     << "# TYPE samzasql_build_info gauge\n"
     << "samzasql_build_info{version=\"" << info.version << "\",git_sha=\""
     << info.git_sha << "\",build_type=\"" << info.build_type << "\"} 1\n"
     << "# HELP samzasql_process_uptime_seconds Seconds since process start.\n"
     << "# TYPE samzasql_process_uptime_seconds gauge\n"
     << "samzasql_process_uptime_seconds " << ProcessUptimeSeconds() << "\n"
     << "# HELP samzasql_process_rss_bytes Resident set size in bytes.\n"
     << "# TYPE samzasql_process_rss_bytes gauge\n"
     << "samzasql_process_rss_bytes " << ProcessRssBytes() << "\n";
  return os.str();
}

}  // namespace sqs
