#include "common/alerts.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "common/logging.h"

namespace sqs {

namespace {

std::string Trim(const std::string& s) {
  size_t start = s.find_first_not_of(" \t\r\n");
  if (start == std::string::npos) return "";
  size_t end = s.find_last_not_of(" \t\r\n");
  return s.substr(start, end - start + 1);
}

// Does `name` refer to the selected metric? Either the whole dotted name,
// a dotted suffix, or — for the "consumer_lag" aggregate — any
// per-partition lag gauge (`<scope>.lag.<topic>.<partition>`).
bool Matches(const std::string& selector, const std::string& name) {
  if (selector == "consumer_lag") return name.find(".lag.") != std::string::npos;
  if (name == selector) return true;
  if (name.size() > selector.size() + 1 &&
      name.compare(name.size() - selector.size() - 1, 1, ".") == 0 &&
      name.compare(name.size() - selector.size(), selector.size(), selector) == 0) {
    return true;
  }
  return false;
}

bool Compare(double value, const std::string& op, double threshold) {
  if (op == ">") return value > threshold;
  if (op == ">=") return value >= threshold;
  if (op == "<") return value < threshold;
  return value <= threshold;  // "<="
}

Result<int64_t> ParseDuration(const std::string& raw) {
  char* end = nullptr;
  long long n = std::strtoll(raw.c_str(), &end, 10);
  std::string unit = Trim(end);
  if (end == raw.c_str() || n < 0) {
    return Status::ParseError("alert rule: bad duration '" + raw + "'");
  }
  if (unit == "ms") return static_cast<int64_t>(n);
  if (unit == "s") return static_cast<int64_t>(n) * 1000;
  if (unit == "m") return static_cast<int64_t>(n) * 60'000;
  return Status::ParseError("alert rule: bad duration unit '" + raw +
                            "' (use ms, s, or m)");
}

std::string FormatValue(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

}  // namespace

const char* AlertStateName(AlertState state) {
  switch (state) {
    case AlertState::kInactive: return "inactive";
    case AlertState::kPending: return "pending";
    case AlertState::kFiring: return "firing";
  }
  return "?";
}

AlertEngine::AlertEngine(std::vector<AlertRule> rules)
    : rules_(std::move(rules)) {
  entries_.reserve(rules_.size());
  for (const AlertRule& rule : rules_) {
    Entry entry;
    entry.rule = rule;
    entries_.push_back(std::move(entry));
  }
}

Result<std::vector<AlertRule>> AlertEngine::ParseRules(const std::string& spec) {
  std::vector<AlertRule> rules;
  std::stringstream ss(spec);
  std::string piece;
  while (std::getline(ss, piece, ';')) {
    std::string rule_text = Trim(piece);
    if (rule_text.empty()) continue;

    // Find the comparator (the first '<' or '>').
    size_t op_pos = rule_text.find_first_of("<>");
    if (op_pos == std::string::npos || op_pos == 0) {
      return Status::ParseError("alert rule missing comparator: '" + rule_text +
                                "'");
    }
    AlertRule rule;
    rule.op = rule_text.substr(op_pos, 1);
    size_t rhs_pos = op_pos + 1;
    if (rhs_pos < rule_text.size() && rule_text[rhs_pos] == '=') {
      rule.op += '=';
      ++rhs_pos;
    }

    // Left side: selector, optionally followed by the "rate" keyword.
    std::istringstream lhs(rule_text.substr(0, op_pos));
    std::string word, extra;
    lhs >> rule.selector >> word >> extra;
    if (!extra.empty()) {
      return Status::ParseError("alert rule: unexpected '" + extra + "' in '" +
                                rule_text + "'");
    }
    if (word == "rate") {
      rule.rate = true;
    } else if (!word.empty()) {
      return Status::ParseError("alert rule: unexpected '" + word + "' in '" +
                                rule_text + "' (only 'rate' may follow the metric)");
    }
    if (rule.selector.empty()) {
      return Status::ParseError("alert rule missing metric: '" + rule_text + "'");
    }

    // Right side: threshold, optionally "for <duration>".
    std::string rhs = Trim(rule_text.substr(rhs_pos));
    size_t for_pos = rhs.find("for ");
    std::string number = Trim(for_pos == std::string::npos ? rhs : rhs.substr(0, for_pos));
    char* end = nullptr;
    rule.threshold = std::strtod(number.c_str(), &end);
    if (number.empty() || end != number.c_str() + number.size()) {
      return Status::ParseError("alert rule: bad threshold '" + number +
                                "' in '" + rule_text + "'");
    }
    if (for_pos != std::string::npos) {
      SQS_ASSIGN_OR_RETURN(for_ms, ParseDuration(Trim(rhs.substr(for_pos + 4))));
      rule.for_ms = for_ms;
    }

    std::ostringstream canon;
    canon << rule.selector << (rule.rate ? " rate" : "") << rule.op
          << FormatValue(rule.threshold);
    if (rule.for_ms > 0) canon << " for " << rule.for_ms << "ms";
    rule.text = canon.str();
    rules.push_back(std::move(rule));
  }
  return rules;
}

bool AlertEngine::Condition(const Entry& entry, const MetricsSnapshot& snapshot,
                            const MetricsHistory* history, double* value,
                            std::string* subject) const {
  const AlertRule& rule = entry.rule;
  bool found = false;
  double worst = 0;
  std::string worst_name;
  // "Worst" = the value most likely to breach: max for '>' rules, min
  // for '<' rules, so one breaching series is enough to trip the alert.
  const bool want_max = rule.op[0] == '>';
  auto consider = [&](const std::string& name, double v) {
    if (!Matches(rule.selector, name)) return;
    if (!found || (want_max ? v > worst : v < worst)) {
      worst = v;
      worst_name = name;
    }
    found = true;
  };
  if (rule.rate) {
    if (history != nullptr) {
      for (const auto& [name, v] : snapshot.counters) {
        (void)v;
        if (Matches(rule.selector, name)) {
          double r = history->RatePerSec(name);
          if (!found || (want_max ? r > worst : r < worst)) {
            worst = r;
            worst_name = name;
          }
          found = true;
        }
      }
    }
  } else {
    for (const auto& [name, v] : snapshot.gauges) consider(name, static_cast<double>(v));
    for (const auto& [name, v] : snapshot.counters) consider(name, static_cast<double>(v));
  }
  *value = found ? worst : 0;
  *subject = worst_name;
  // A selector that matches nothing never trips (otherwise every '<' rule
  // would fire on jobs that have not minted the metric yet).
  return found && Compare(worst, rule.op, rule.threshold);
}

void AlertEngine::Evaluate(int64_t now_ms, const MetricsSnapshot& snapshot,
                           const MetricsHistory* history) {
  std::lock_guard<std::mutex> lock(mu_);
  for (Entry& entry : entries_) {
    double value = 0;
    std::string subject;
    bool holds = Condition(entry, snapshot, history, &value, &subject);
    entry.value = value;
    if (!subject.empty()) entry.subject = subject;

    if (!holds) {
      if (entry.state == AlertState::kFiring) {
        SQS_INFOC("alerts", "alert resolved", {"rule", entry.rule.text},
                  {"value", FormatValue(value)}, {"subject", entry.subject});
      }
      entry.state = AlertState::kInactive;
      entry.since_ms = 0;
      continue;
    }
    if (entry.state == AlertState::kInactive) {
      entry.state = AlertState::kPending;
      entry.since_ms = now_ms;
      SQS_DEBUGC("alerts", "alert pending", {"rule", entry.rule.text},
                 {"value", FormatValue(value)}, {"subject", entry.subject});
    }
    if (entry.state == AlertState::kPending &&
        now_ms - entry.since_ms >= entry.rule.for_ms) {
      entry.state = AlertState::kFiring;
      ++entry.fired_count;
      SQS_WARNC("alerts", "alert firing", {"rule", entry.rule.text},
                {"value", FormatValue(value)}, {"subject", entry.subject},
                {"held_ms", std::to_string(now_ms - entry.since_ms)});
    }
  }
}

std::vector<AlertStatus> AlertEngine::Statuses() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<AlertStatus> out;
  out.reserve(entries_.size());
  for (const Entry& entry : entries_) {
    AlertStatus status;
    status.rule = entry.rule;
    status.state = entry.state;
    status.since_ms = entry.since_ms;
    status.value = entry.value;
    status.subject = entry.subject;
    status.fired_count = entry.fired_count;
    out.push_back(std::move(status));
  }
  return out;
}

int64_t AlertEngine::FiringCount() const {
  std::lock_guard<std::mutex> lock(mu_);
  int64_t n = 0;
  for (const Entry& entry : entries_) {
    if (entry.state == AlertState::kFiring) ++n;
  }
  return n;
}

std::string AlertEngine::ToJson(int64_t now_ms) const {
  std::vector<AlertStatus> statuses = Statuses();
  std::ostringstream os;
  os << "{\"ts_ms\":" << now_ms << ",\"firing\":" << FiringCount()
     << ",\"alerts\":[";
  for (size_t i = 0; i < statuses.size(); ++i) {
    const AlertStatus& s = statuses[i];
    if (i) os << ",";
    os << "{\"rule\":\"" << s.rule.text << "\",\"state\":\""
       << AlertStateName(s.state) << "\",\"value\":" << FormatValue(s.value)
       << ",\"subject\":\"" << s.subject << "\",\"since_ms\":" << s.since_ms
       << ",\"fired_count\":" << s.fired_count << "}";
  }
  os << "]}";
  return os.str();
}

}  // namespace sqs
