#include "common/value.h"

#include <cmath>
#include <functional>
#include <sstream>

namespace sqs {

const char* TypeKindName(TypeKind kind) {
  switch (kind) {
    case TypeKind::kNull: return "NULL";
    case TypeKind::kBool: return "BOOLEAN";
    case TypeKind::kInt32: return "INTEGER";
    case TypeKind::kInt64: return "BIGINT";
    case TypeKind::kDouble: return "DOUBLE";
    case TypeKind::kString: return "VARCHAR";
    case TypeKind::kArray: return "ARRAY";
    case TypeKind::kMap: return "MAP";
  }
  return "UNKNOWN";
}

int64_t Value::ToInt64() const {
  switch (kind()) {
    case TypeKind::kBool: return as_bool() ? 1 : 0;
    case TypeKind::kInt32: return as_int32();
    case TypeKind::kInt64: return as_int64();
    case TypeKind::kDouble: return static_cast<int64_t>(as_double());
    default: return 0;
  }
}

double Value::ToDouble() const {
  switch (kind()) {
    case TypeKind::kBool: return as_bool() ? 1.0 : 0.0;
    case TypeKind::kInt32: return as_int32();
    case TypeKind::kInt64: return static_cast<double>(as_int64());
    case TypeKind::kDouble: return as_double();
    default: return 0.0;
  }
}

namespace {
int CompareDouble(double a, double b) {
  if (a < b) return -1;
  if (a > b) return 1;
  return 0;
}
}  // namespace

int Value::Compare(const Value& other) const {
  const bool lnull = is_null();
  const bool rnull = other.is_null();
  if (lnull || rnull) return (lnull ? 0 : 1) - (rnull ? 0 : 1);

  if (is_numeric() && other.is_numeric()) {
    // Compare exactly within integers, via double across kinds.
    if (kind() != TypeKind::kDouble && other.kind() != TypeKind::kDouble) {
      int64_t a = ToInt64(), b = other.ToInt64();
      return a < b ? -1 : (a > b ? 1 : 0);
    }
    return CompareDouble(ToDouble(), other.ToDouble());
  }
  if (kind() != other.kind()) {
    return static_cast<int>(kind()) < static_cast<int>(other.kind()) ? -1 : 1;
  }
  switch (kind()) {
    case TypeKind::kBool:
      return static_cast<int>(as_bool()) - static_cast<int>(other.as_bool());
    case TypeKind::kString:
      return as_string().compare(other.as_string());
    case TypeKind::kArray: {
      const ValueArray& a = as_array();
      const ValueArray& b = other.as_array();
      size_t n = std::min(a.size(), b.size());
      for (size_t i = 0; i < n; ++i) {
        int c = a[i].Compare(b[i]);
        if (c != 0) return c;
      }
      return a.size() < b.size() ? -1 : (a.size() > b.size() ? 1 : 0);
    }
    case TypeKind::kMap: {
      const ValueMap& a = as_map();
      const ValueMap& b = other.as_map();
      auto ia = a.begin();
      auto ib = b.begin();
      for (; ia != a.end() && ib != b.end(); ++ia, ++ib) {
        int c = ia->first.compare(ib->first);
        if (c != 0) return c;
        c = ia->second.Compare(ib->second);
        if (c != 0) return c;
      }
      if (ia != a.end()) return 1;
      if (ib != b.end()) return -1;
      return 0;
    }
    default:
      return 0;
  }
}

std::string Value::ToString() const {
  switch (kind()) {
    case TypeKind::kNull: return "NULL";
    case TypeKind::kBool: return as_bool() ? "true" : "false";
    case TypeKind::kInt32: return std::to_string(as_int32());
    case TypeKind::kInt64: return std::to_string(as_int64());
    case TypeKind::kDouble: {
      std::ostringstream os;
      os << as_double();
      return os.str();
    }
    case TypeKind::kString: return as_string();
    case TypeKind::kArray: {
      std::string out = "[";
      const ValueArray& a = as_array();
      for (size_t i = 0; i < a.size(); ++i) {
        if (i) out += ", ";
        out += a[i].ToString();
      }
      return out + "]";
    }
    case TypeKind::kMap: {
      std::string out = "{";
      bool first = true;
      for (const auto& [k, v] : as_map()) {
        if (!first) out += ", ";
        first = false;
        out += k + ": " + v.ToString();
      }
      return out + "}";
    }
  }
  return "?";
}

size_t Value::Hash() const {
  constexpr size_t kSeed = 0x9e3779b97f4a7c15ull;
  switch (kind()) {
    case TypeKind::kNull: return kSeed;
    case TypeKind::kBool: return std::hash<bool>{}(as_bool()) ^ kSeed;
    case TypeKind::kInt32: return std::hash<int64_t>{}(as_int32());
    case TypeKind::kInt64: return std::hash<int64_t>{}(as_int64());
    case TypeKind::kDouble: {
      double d = as_double();
      // Hash integral doubles like their integer counterparts so that
      // numeric equality implies hash equality.
      if (d == std::floor(d) && std::abs(d) < 9.2e18) {
        return std::hash<int64_t>{}(static_cast<int64_t>(d));
      }
      return std::hash<double>{}(d);
    }
    case TypeKind::kString: return std::hash<std::string>{}(as_string());
    case TypeKind::kArray: {
      size_t h = kSeed;
      for (const Value& v : as_array()) h = h * 1099511628211ull ^ v.Hash();
      return h;
    }
    case TypeKind::kMap: {
      size_t h = kSeed;
      for (const auto& [k, v] : as_map()) {
        h = h * 1099511628211ull ^ std::hash<std::string>{}(k);
        h = h * 1099511628211ull ^ v.Hash();
      }
      return h;
    }
  }
  return 0;
}

std::string RowToString(const Row& row) {
  std::string out = "(";
  for (size_t i = 0; i < row.size(); ++i) {
    if (i) out += ", ";
    out += row[i].ToString();
  }
  return out + ")";
}

}  // namespace sqs
