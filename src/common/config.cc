#include "common/config.h"

#include <cstdlib>
#include <sstream>

namespace sqs {

int64_t Config::GetInt(const std::string& key, int64_t def) const {
  auto it = props_.find(key);
  if (it == props_.end() || it->second.empty()) return def;
  return std::strtoll(it->second.c_str(), nullptr, 10);
}

double Config::GetDouble(const std::string& key, double def) const {
  auto it = props_.find(key);
  if (it == props_.end() || it->second.empty()) return def;
  return std::strtod(it->second.c_str(), nullptr);
}

bool Config::GetBool(const std::string& key, bool def) const {
  auto it = props_.find(key);
  if (it == props_.end()) return def;
  return it->second == "true" || it->second == "1";
}

std::map<std::string, std::string> Config::Subset(const std::string& prefix) const {
  std::map<std::string, std::string> out;
  for (auto it = props_.lower_bound(prefix); it != props_.end(); ++it) {
    if (it->first.compare(0, prefix.size(), prefix) != 0) break;
    out.emplace(it->first.substr(prefix.size()), it->second);
  }
  return out;
}

std::vector<std::string> Config::GetList(const std::string& key) const {
  std::vector<std::string> out;
  std::string raw = Get(key);
  if (raw.empty()) return out;
  std::stringstream ss(raw);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

void Config::SetList(const std::string& key, const std::vector<std::string>& values) {
  std::string joined;
  for (size_t i = 0; i < values.size(); ++i) {
    if (i) joined += ',';
    joined += values[i];
  }
  props_[key] = joined;
}

std::string Config::ToProperties() const {
  std::string out;
  for (const auto& [k, v] : props_) {
    out += k;
    out += '=';
    out += v;
    out += '\n';
  }
  return out;
}

Result<Config> Config::FromProperties(const std::string& text) {
  std::map<std::string, std::string> props;
  std::stringstream ss(text);
  std::string line;
  int lineno = 0;
  while (std::getline(ss, line)) {
    ++lineno;
    if (line.empty() || line[0] == '#') continue;
    size_t eq = line.find('=');
    if (eq == std::string::npos) {
      return Status::ParseError("config line " + std::to_string(lineno) +
                                " missing '=': " + line);
    }
    props[line.substr(0, eq)] = line.substr(eq + 1);
  }
  return Config(std::move(props));
}

}  // namespace sqs
