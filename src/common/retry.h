// Retry with capped exponential backoff + jitter for transient (Unavailable)
// failures on the broker data path. Producers, consumers, changelog stores,
// and the checkpoint manager all share this one implementation so retry
// semantics — what is retryable, how backoff grows, which counters move —
// are identical everywhere (docs/FAULT_TOLERANCE.md).
//
// Only ErrorCode::kUnavailable is retried: every other code is a logic or
// data error that a retry cannot fix and must surface immediately.
#pragma once

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <thread>

#include "common/clock.h"
#include "common/config.h"
#include "common/flightrec.h"
#include "common/metrics.h"
#include "common/status.h"

namespace sqs {

// `retry.*` configuration keys (parsed by RetryPolicy::FromConfig). Declared
// here rather than task/api.h because common/ cannot depend on task/.
namespace cfg {
// Total attempts per operation, including the first (1 = no retry).
inline constexpr const char* kRetryMaxAttempts = "retry.max.attempts";
// Initial backoff before the first retry; doubles per retry up to the cap.
inline constexpr const char* kRetryBackoffMs = "retry.backoff.ms";
inline constexpr const char* kRetryBackoffMaxMs = "retry.backoff.max.ms";
// Total elapsed wall-time budget per operation in milliseconds (0 = no
// deadline). Attempt-count budgets bound work; during a broker cold restart
// the relevant bound is time — a caller must give up before its own SLO
// burns, no matter how many cheap attempts fit in the window.
inline constexpr const char* kRetryDeadlineMs = "retry.deadline.ms";
}  // namespace cfg

struct RetryPolicy {
  int32_t max_attempts = 1;  // 1 = retries disabled
  int64_t backoff_ms = 10;
  int64_t backoff_max_ms = 1000;
  int64_t deadline_ms = 0;  // 0 = unbounded elapsed time

  static RetryPolicy FromConfig(const Config& config) {
    RetryPolicy p;
    p.max_attempts =
        static_cast<int32_t>(config.GetInt(cfg::kRetryMaxAttempts, 1));
    p.backoff_ms = config.GetInt(cfg::kRetryBackoffMs, 10);
    p.backoff_max_ms = config.GetInt(cfg::kRetryBackoffMaxMs, 1000);
    p.deadline_ms = config.GetInt(cfg::kRetryDeadlineMs, 0);
    if (p.max_attempts < 1) p.max_attempts = 1;
    if (p.backoff_ms < 0) p.backoff_ms = 0;
    if (p.backoff_max_ms < p.backoff_ms) p.backoff_max_ms = p.backoff_ms;
    if (p.deadline_ms < 0) p.deadline_ms = 0;
    return p;
  }

  bool enabled() const { return max_attempts > 1; }
};

// Runs operations under a RetryPolicy. Sleeping uses real wall time
// (std::this_thread::sleep_for), never the injectable Clock: backoff must
// elapse even under ManualClock, and tests simply configure ~1ms backoffs.
class Retrier {
 public:
  Retrier() = default;
  explicit Retrier(RetryPolicy policy) : policy_(policy) {}

  void SetPolicy(RetryPolicy policy) { policy_ = policy; }
  const RetryPolicy& policy() const { return policy_; }

  // Optional counters: `retries` increments once per re-attempt, `giveups`
  // once per operation that exhausts its attempt budget, `giveup_deadline`
  // once per operation that gives up because its elapsed-time budget
  // (retry.deadline.ms) ran out with attempts still remaining.
  void BindMetrics(Counter* retries, Counter* giveups,
                   Counter* giveup_deadline = nullptr) {
    retries_ = retries;
    giveups_ = giveups;
    giveup_deadline_ = giveup_deadline;
  }

  // fn: () -> Status. Retries while fn returns Unavailable and both budgets
  // (attempts, elapsed wall time) remain; any other status (or Ok) is
  // returned as-is immediately. The deadline is checked after each failed
  // attempt: an in-flight fn() is never interrupted, so one attempt can
  // overshoot the budget, but no backoff sleep starts past it.
  template <typename Fn>
  Status Run(Fn&& fn) {
    int64_t backoff = policy_.backoff_ms;
    const int64_t deadline_ns =
        policy_.deadline_ms > 0
            ? MonotonicNanos() + policy_.deadline_ms * 1'000'000
            : 0;
    for (int32_t attempt = 1;; ++attempt) {
      Status st = fn();
      if (st.ok() || st.code() != ErrorCode::kUnavailable) return st;
      if (attempt >= policy_.max_attempts) {
        if (giveups_ != nullptr) giveups_->Inc();
        FlightRecorder::Record(FlightEventType::kRetryGiveup, "retry",
                               st.ToString(), attempt);
        return st;
      }
      if (deadline_ns != 0 && MonotonicNanos() >= deadline_ns) {
        if (giveup_deadline_ != nullptr) giveup_deadline_->Inc();
        FlightRecorder::Record(FlightEventType::kRetryGiveup, "retry.deadline",
                               st.ToString(), attempt, policy_.deadline_ms);
        return st;
      }
      if (retries_ != nullptr) retries_->Inc();
      SleepWithJitter(backoff);
      backoff = std::min(backoff * 2, policy_.backoff_max_ms);
    }
  }

 private:
  // Full-jitter-lite: sleep a uniform duration in [backoff/2, backoff] so
  // simultaneously-failing containers don't retry in lockstep.
  void SleepWithJitter(int64_t backoff_ms) {
    if (backoff_ms <= 0) return;
    jitter_state_ = jitter_state_ * 6364136223846793005ull + 1442695040888963407ull;
    int64_t half = backoff_ms / 2;
    int64_t span = backoff_ms - half + 1;
    int64_t sleep_ms = half + static_cast<int64_t>((jitter_state_ >> 33) %
                                                   static_cast<uint64_t>(span));
    std::this_thread::sleep_for(std::chrono::milliseconds(sleep_ms));
  }

  RetryPolicy policy_;
  Counter* retries_ = nullptr;
  Counter* giveups_ = nullptr;
  Counter* giveup_deadline_ = nullptr;
  uint64_t jitter_state_ = 0x853c49e6748fea9bull;
};

}  // namespace sqs
