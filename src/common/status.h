// Lightweight Status / Result types for recoverable errors (parse errors,
// validation failures, missing metadata). Unrecoverable programming errors
// use assertions/exceptions instead.
#pragma once

#include <cassert>
#include <optional>
#include <stdexcept>
#include <string>
#include <utility>
#include <variant>

namespace sqs {

enum class ErrorCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kParseError,
  kValidationError,
  kPlanError,
  kSerdeError,
  kStateError,
  kUnsupported,
  // Transient infrastructure failure (broker unreachable, injected fault).
  // The only code the retry layer (common/retry.h) considers retryable.
  kUnavailable,
  kInternal,
  // An idempotent producer's epoch is stale: a newer incarnation registered
  // under the same name and the broker rejects the zombie's appends.
  // Deliberately not retryable — retrying cannot un-fence a producer.
  kFenced,
  // Payload bytes failed their integrity check (CRC32C mismatch).
  kDataLoss,
};

// to_string for diagnostics.
const char* ErrorCodeName(ErrorCode code);

// A Status is either OK or carries an error code + message.
class Status {
 public:
  Status() : code_(ErrorCode::kOk) {}
  Status(ErrorCode code, std::string message)
      : code_(code), message_(std::move(message)) {
    assert(code != ErrorCode::kOk);
  }

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string m) {
    return Status(ErrorCode::kInvalidArgument, std::move(m));
  }
  static Status NotFound(std::string m) {
    return Status(ErrorCode::kNotFound, std::move(m));
  }
  static Status AlreadyExists(std::string m) {
    return Status(ErrorCode::kAlreadyExists, std::move(m));
  }
  static Status ParseError(std::string m) {
    return Status(ErrorCode::kParseError, std::move(m));
  }
  static Status ValidationError(std::string m) {
    return Status(ErrorCode::kValidationError, std::move(m));
  }
  static Status PlanError(std::string m) {
    return Status(ErrorCode::kPlanError, std::move(m));
  }
  static Status SerdeError(std::string m) {
    return Status(ErrorCode::kSerdeError, std::move(m));
  }
  static Status StateError(std::string m) {
    return Status(ErrorCode::kStateError, std::move(m));
  }
  static Status Unsupported(std::string m) {
    return Status(ErrorCode::kUnsupported, std::move(m));
  }
  static Status Unavailable(std::string m) {
    return Status(ErrorCode::kUnavailable, std::move(m));
  }
  static Status Internal(std::string m) {
    return Status(ErrorCode::kInternal, std::move(m));
  }
  static Status Fenced(std::string m) {
    return Status(ErrorCode::kFenced, std::move(m));
  }
  static Status DataLoss(std::string m) {
    return Status(ErrorCode::kDataLoss, std::move(m));
  }

  bool ok() const { return code_ == ErrorCode::kOk; }
  ErrorCode code() const { return code_; }
  const std::string& message() const { return message_; }

  std::string ToString() const {
    if (ok()) return "OK";
    return std::string(ErrorCodeName(code_)) + ": " + message_;
  }

 private:
  ErrorCode code_;
  std::string message_;
};

// Result<T>: either a value or an error Status.
template <typename T>
class Result {
 public:
  Result(T value) : data_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Result(Status status) : data_(std::move(status)) {  // NOLINT
    assert(!std::get<Status>(data_).ok() && "Result from OK status");
  }

  bool ok() const { return std::holds_alternative<T>(data_); }

  const T& value() const& {
    if (!ok()) throw std::runtime_error("Result::value on error: " + status().ToString());
    return std::get<T>(data_);
  }
  T& value() & {
    if (!ok()) throw std::runtime_error("Result::value on error: " + status().ToString());
    return std::get<T>(data_);
  }
  T&& value() && {
    if (!ok()) throw std::runtime_error("Result::value on error: " + status().ToString());
    return std::get<T>(std::move(data_));
  }

  Status status() const {
    if (ok()) return Status::Ok();
    return std::get<Status>(data_);
  }

 private:
  std::variant<T, Status> data_;
};

#define SQS_RETURN_IF_ERROR(expr)                  \
  do {                                             \
    ::sqs::Status _st = (expr);                    \
    if (!_st.ok()) return _st;                     \
  } while (0)

#define SQS_ASSIGN_OR_RETURN(lhs, expr)            \
  auto lhs##_result = (expr);                      \
  if (!lhs##_result.ok()) return lhs##_result.status(); \
  auto lhs = std::move(lhs##_result).value()

}  // namespace sqs
