// Sampled distributed tracing for the message flow of paper §4.2 Figure 4:
// producer append -> log -> scan (Avro->Array) -> operators -> insert
// (Array->Avro) -> downstream job. A TraceContext travels inside Message /
// TupleEvent (and across repartitioning and multi-job pipelines, because the
// broker stores the Message verbatim); spans land in a bounded ring buffer on
// the process-wide Tracer and export as Chrome trace format JSON.
//
// Cost model: the sampling decision is a relaxed atomic increment at each
// trace root (head-based — one decision per tuple lifetime, honored by every
// downstream hop); the unsampled path through a span scope is two branches
// and a thread-local save/restore, no allocation and no lock. Only sampled
// spans take the buffer mutex.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace sqs {

// Propagated half of a span: which trace a message/tuple belongs to and
// which span caused it (the parent of whatever the receiver starts).
// trace_id 0 / sampled false = not traced; such contexts add no payload.
struct TraceContext {
  uint64_t trace_id = 0;
  uint64_t span_id = 0;  // parent span for work started under this context
  bool sampled = false;

  bool valid() const { return sampled && trace_id != 0; }
};

// One completed timed section. `scope` locates the span in the system
// (`<job>.<task>` for operator/process spans, `producer.<topic>` /
// `consumer` for the log layer); `name` is the operation (plan-unique
// operator id like "op2-scan", or "process" / "produce" / "poll").
struct Span {
  uint64_t trace_id = 0;
  uint64_t span_id = 0;
  uint64_t parent_span_id = 0;
  int64_t start_ns = 0;     // MonotonicNanos at span start
  int64_t duration_ns = 0;  // inclusive of child spans
  std::string name;
  std::string scope;
  int64_t tag = 0;  // small numeric payload: partition, batch size, ...
};

// Aggregate per span name, the basis of EXPLAIN ANALYZE. `self_ns` is
// inclusive time minus the time of child spans *within the same scope
// filter*, so for a job-scoped query the self times of all operators
// telescope exactly to the root ("process") spans' inclusive time.
struct SpanStats {
  int64_t count = 0;
  int64_t inclusive_ns = 0;
  int64_t self_ns = 0;
};

// Process-wide trace collector. A single instance is shared by every job in
// the process (shell, containers, producers, consumers) so one trace can
// cross job boundaries the way the paper's Kappa pipelines chain topics.
// Disabled (sample rate 0) unless a job config or the shell enables it.
class Tracer {
 public:
  static Tracer& Instance();

  // Enable with a head-sampling rate in (0,1] and a span ring capacity.
  // rate r samples every round(1/r)-th trace root deterministically (no
  // RNG), so runs with the same input order trace the same tuples.
  // rate <= 0 disables. Reconfiguring with a new capacity drops buffered
  // spans; same capacity keeps them.
  void Configure(double sample_rate, size_t capacity = kDefaultCapacity);

  bool enabled() const { return sample_every_ > 0; }
  double sample_rate() const;
  size_t capacity() const { return capacity_; }

  // Head sampling decision at a trace root (producer append with no active
  // context, or container ingest of an untraced message). Returns a sampled
  // context with a fresh trace id, or an invalid context.
  TraceContext MaybeStartTrace();

  uint64_t NextSpanId() { return ++next_id_; }

  // Append to the ring; evicts the oldest span when full.
  void Record(Span span);

  // Buffered spans, oldest first.
  std::vector<Span> Spans() const;
  int64_t recorded_total() const;
  int64_t evicted() const;

  // Drop buffered spans, keep configuration.
  void Clear();
  // Back to disabled defaults (tests).
  void Reset();

  static constexpr size_t kDefaultCapacity = 65536;

 private:
  Tracer() = default;

  mutable std::mutex mu_;
  std::vector<Span> ring_;
  size_t write_ = 0;       // next ring slot
  int64_t recorded_ = 0;   // total Record() calls since Clear/Reset
  size_t capacity_ = kDefaultCapacity;
  // Sampling/config state. Relaxed atomics would do; plain 64-bit members
  // behind the decision counter keep it simple. sample_every_ 0 = disabled.
  std::atomic<int64_t> sample_every_{0};
  std::atomic<uint64_t> trace_seq_{0};
  std::atomic<uint64_t> next_id_{0};
};

// Ambient trace context of the current thread: set by TraceSpan, read by
// layers that cannot thread it explicitly (the producer stamping outgoing
// messages under MessageCollector's trace-unaware API).
TraceContext CurrentTraceContext();

// RAII span. If `parent` is sampled and the tracer is enabled, allocates a
// span id, installs itself as the thread's current context, and records the
// span on destruction; otherwise clears the ambient context for its extent
// (so nothing downstream mis-parents to an older span) and records nothing.
class TraceSpan {
 public:
  TraceSpan(const TraceContext& parent, std::string_view name,
            std::string_view scope, int64_t tag = 0);
  ~TraceSpan();
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  bool active() const { return active_; }
  void set_tag(int64_t tag) { span_.tag = tag; }
  // Context for stamping messages/tuples caused by this span.
  TraceContext context() const;

 private:
  Span span_;
  TraceContext prev_;
  bool active_ = false;
};

// Per-name aggregates over `spans`, restricted to spans whose scope starts
// with `scope_prefix` (empty = all). Children outside the filter are not
// subtracted from self time, so filtered self times still telescope to the
// filtered roots' inclusive time.
std::map<std::string, SpanStats> ComputeSpanStats(const std::vector<Span>& spans,
                                                  const std::string& scope_prefix);

// Chrome trace format (chrome://tracing, Perfetto): one complete event
// ("ph":"X") per span, one metadata thread-name event per distinct scope.
std::string SpansToChromeTraceJson(const std::vector<Span>& spans);

}  // namespace sqs
