// Structured leveled logger. Every record carries a timestamp, a component
// scope ("shell", "container", "broker", ...) and optional key=value fields,
// rendered either as aligned plain text or as JSON lines (`log.format`).
// Disabled below the configured level at runtime; the macros check the level
// before formatting anything, and hot paths never log — the single sink
// mutex is therefore not a throughput concern.
#pragma once

#include <iosfwd>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/clock.h"

namespace sqs {

class Config;

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };
enum class LogFormat { kPlain = 0, kJson = 1 };

// Ordered key=value pairs attached to one record.
using LogFields = std::vector<std::pair<std::string, std::string>>;

class Logger {
 public:
  static Logger& Instance() {
    static Logger logger;
    return logger;
  }

  void SetLevel(LogLevel level) { level_ = level; }
  LogLevel level() const { return level_; }
  void SetFormat(LogFormat format) { format_ = format; }
  LogFormat format() const { return format_; }
  // Redirect records (tests); nullptr = stderr. The sink must outlive use.
  void SetSink(std::ostream* sink) { sink_ = sink; }
  // Timestamp source; nullptr = system clock (deterministic tests inject).
  void SetClock(std::shared_ptr<Clock> clock) { clock_ = std::move(clock); }

  // Plain:  2026-08-06T12:00:00.123Z INFO  [container] started job=q0 id=1
  // JSON:   {"ts_ms":...,"level":"INFO","component":"container",
  //          "msg":"started","job":"q0","id":"1"}
  void Log(LogLevel level, std::string_view component, std::string_view msg,
           const LogFields& fields = {});

  // Legacy single-string entry point (component "app").
  void Log(LogLevel level, const std::string& msg) { Log(level, "app", msg); }

  // Flush the sink stream. Part of the crash-forensics path: the fatal
  // signal / terminate handlers call this before writing the flight
  // recorder dump so buffered records are not lost with the process.
  void Flush();

 private:
  Logger() = default;
  LogLevel level_ = LogLevel::kWarn;
  LogFormat format_ = LogFormat::kPlain;
  std::ostream* sink_ = nullptr;
  std::shared_ptr<Clock> clock_;
  std::mutex mu_;
};

// Apply `log.level` (debug|info|warn|error|off) and `log.format`
// (plain|json) from a job config; keys that are absent leave the current
// setting untouched.
void ApplyLogConfig(const Config& config);

// Component-scoped structured record; trailing arguments are {key, value}
// field initializers:
//   SQS_LOGC(::sqs::LogLevel::kInfo, "container", "started",
//            {"job", job_name}, {"id", std::to_string(id)});
#define SQS_LOGC(lvl, component, expr, ...)                         \
  do {                                                              \
    if (static_cast<int>(lvl) >=                                    \
        static_cast<int>(::sqs::Logger::Instance().level())) {      \
      std::ostringstream _os;                                       \
      _os << expr;                                                  \
      ::sqs::Logger::Instance().Log(lvl, component, _os.str(),      \
                                    ::sqs::LogFields{__VA_ARGS__}); \
    }                                                               \
  } while (0)

#define SQS_DEBUGC(component, expr, ...) \
  SQS_LOGC(::sqs::LogLevel::kDebug, component, expr, ##__VA_ARGS__)
#define SQS_INFOC(component, expr, ...) \
  SQS_LOGC(::sqs::LogLevel::kInfo, component, expr, ##__VA_ARGS__)
#define SQS_WARNC(component, expr, ...) \
  SQS_LOGC(::sqs::LogLevel::kWarn, component, expr, ##__VA_ARGS__)
#define SQS_ERRORC(component, expr, ...) \
  SQS_LOGC(::sqs::LogLevel::kError, component, expr, ##__VA_ARGS__)

// Legacy component-less macros (component "app").
#define SQS_LOG(lvl, expr) SQS_LOGC(lvl, "app", expr)
#define SQS_DEBUG(expr) SQS_LOG(::sqs::LogLevel::kDebug, expr)
#define SQS_INFO(expr) SQS_LOG(::sqs::LogLevel::kInfo, expr)
#define SQS_WARN(expr) SQS_LOG(::sqs::LogLevel::kWarn, expr)
#define SQS_ERROR(expr) SQS_LOG(::sqs::LogLevel::kError, expr)

}  // namespace sqs
