// Minimal leveled logger. Disabled below the configured level at runtime;
// kept deliberately simple (single mutex) because hot paths never log.
#pragma once

#include <iostream>
#include <mutex>
#include <sstream>
#include <string>

namespace sqs {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

class Logger {
 public:
  static Logger& Instance() {
    static Logger logger;
    return logger;
  }

  void SetLevel(LogLevel level) { level_ = level; }
  LogLevel level() const { return level_; }

  void Log(LogLevel level, const std::string& msg) {
    if (level < level_) return;
    static const char* names[] = {"DEBUG", "INFO", "WARN", "ERROR"};
    std::lock_guard<std::mutex> lock(mu_);
    std::cerr << "[" << names[static_cast<int>(level)] << "] " << msg << "\n";
  }

 private:
  Logger() = default;
  LogLevel level_ = LogLevel::kWarn;
  std::mutex mu_;
};

#define SQS_LOG(lvl, expr)                                          \
  do {                                                              \
    if (static_cast<int>(lvl) >=                                    \
        static_cast<int>(::sqs::Logger::Instance().level())) {      \
      std::ostringstream _os;                                       \
      _os << expr;                                                  \
      ::sqs::Logger::Instance().Log(lvl, _os.str());                \
    }                                                               \
  } while (0)

#define SQS_DEBUG(expr) SQS_LOG(::sqs::LogLevel::kDebug, expr)
#define SQS_INFO(expr) SQS_LOG(::sqs::LogLevel::kInfo, expr)
#define SQS_WARN(expr) SQS_LOG(::sqs::LogLevel::kWarn, expr)
#define SQS_ERROR(expr) SQS_LOG(::sqs::LogLevel::kError, expr)

}  // namespace sqs
