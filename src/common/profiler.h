// In-process sampling profiler: dependency-free CPU attribution for the
// streaming engine. Instead of unwinding native frames (libunwind), every
// TraceSpan maintains a cooperative per-thread label stack — interned,
// immortal `const char*` frames — and a sampler walks all registered
// threads at `profile.hz`, aggregating the observed stacks into folded
// form. The output is flamegraph-ready collapsed-stack text plus a
// per-operator CPU-attribution table (EXPLAIN ANALYZE, SHOW PROFILE,
// GET /debug/profile).
//
// Cost model: frame push/pop is a thread-local lookup plus two relaxed
// stores and one release store; labels are interned through a thread-local
// memo so steady-state interning takes no lock. Sampling reads other
// threads' frames with relaxed atomics — a racing sample may observe a
// momentarily inconsistent stack (wrong attribution for that one sample),
// never a torn pointer, because every frame value is an immortal interned
// string. See docs/PROFILING.md.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace sqs {

class Profiler {
 public:
  // Frames beyond this depth are counted but not recorded (the sampler sees
  // a truncated stack). Far deeper than any plan the engine builds.
  static constexpr size_t kMaxDepth = 32;

  static Profiler& Instance();

  // Immortal interned copy of `label`; the returned pointer is stable for
  // the process lifetime and may be compared by identity.
  static const char* Intern(std::string_view label);

  // --- frame tracking (always on; called by TraceSpan) ---
  // `label` must be an interned/immortal pointer (see Intern).
  static void PushFrame(const char* label);
  static void PopFrame();
  // Current stack depth of the calling thread (tests).
  static size_t CurrentDepth();

  // --- timer-driven sampling ---
  // Start the background sampler thread at `hz` (clamped to [1, 1000]).
  // Restarting with a new rate stops the previous thread first. Samples
  // accumulate into the folded-stack aggregation until ClearSamples().
  Status StartSampling(double hz);
  void StopSampling();
  bool sampling() const { return sampling_.load(std::memory_order_relaxed); }
  double hz() const { return hz_.load(std::memory_order_relaxed); }

  // One-shot burst: sample at `hz` for `duration_ms`, blocking the calling
  // thread (watchdog stall bursts, GET /debug/profile). Runs alongside or
  // instead of the background sampler; samples land in the same aggregation.
  Status SampleFor(int64_t duration_ms, double hz);

  // Sample every registered thread once, right now. Returns the number of
  // non-idle stacks captured. Deterministic test hook + sampler body.
  size_t SampleOnce();

  // --- aggregated output ---
  // Collapsed-stack text, flamegraph.pl-compatible:
  //   process;fused<op0..op2>;decode 42\n
  // sorted by count descending, then lexicographically.
  std::string CollapsedStacks() const;

  // Per-operator CPU attribution: each sample is attributed to its deepest
  // operator frame (labels like "op2-filter" / "fused<op0..op2>"); samples
  // with no operator frame attribute to their leaf frame. Returns
  // label -> sample count.
  std::map<std::string, int64_t> OperatorAttribution() const;

  int64_t TotalSamples() const;
  void ClearSamples();

  // Stop sampling and drop all samples (tests).
  void Reset();

  // True if `label` names a plan operator (op<k>-... or fused<...>).
  static bool IsOperatorLabel(std::string_view label);

 private:
  Profiler() = default;

  void SamplerLoop(double hz);

  std::atomic<bool> sampling_{false};
  std::atomic<double> hz_{0.0};
};

// RAII profiling frame for code that wants attribution without a TraceSpan
// (benchmark harnesses, tests). Interns on construction.
class ProfiledFrame {
 public:
  explicit ProfiledFrame(std::string_view label) {
    Profiler::PushFrame(Profiler::Intern(label));
  }
  ~ProfiledFrame() { Profiler::PopFrame(); }
  ProfiledFrame(const ProfiledFrame&) = delete;
  ProfiledFrame& operator=(const ProfiledFrame&) = delete;
};

}  // namespace sqs
