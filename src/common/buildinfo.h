// Build identity + process gauges for the Prometheus endpoint:
// samzasql_build_info{version,git_sha,build_type} 1, process uptime, and
// resident set size. The version/sha/build-type come in as compile
// definitions from CMake (see src/CMakeLists.txt); RSS is read from
// /proc/self/statm (0 on platforms without procfs).
#pragma once

#include <cstdint>
#include <string>

namespace sqs {

struct BuildInfo {
  std::string version;
  std::string git_sha;
  std::string build_type;
};

const BuildInfo& GetBuildInfo();

// Seconds since this process first touched the observability layer (a
// static initializer in buildinfo.cc, i.e. effectively process start).
double ProcessUptimeSeconds();

// Current resident set size in bytes; 0 if unavailable.
int64_t ProcessRssBytes();

// The three families rendered as Prometheus text exposition 0.0.4 (with
// HELP/TYPE headers), appended to /metrics by the MonitorServer.
std::string RenderBuildInfoPrometheus();

}  // namespace sqs
