// Pipeline-latency stamping support (docs/LATENCY.md). A message is
// stamped with its first producer-append wall time (`Message::ingest_us`)
// and carries that stamp verbatim through repartitions and downstream jobs,
// exactly like TraceContext. The stamp travels between the consume side and
// the produce side of one hop through an ambient thread-local: the container
// (or operator) sets an IngestScope around Process, and any send issued
// inside the scope propagates the input's ingest time onto the output
// message — so the sink-side send can record true source-to-sink latency.
//
// Stamping is process-global and on by default; `latency.stamping.enable=
// false` turns the whole layer off (the bench_latency overhead arm).
#pragma once

#include <cstdint>

namespace sqs {

// Process-global stamping toggle (`latency.stamping.enable`, default on).
void SetLatencyStampingEnabled(bool enabled);
bool LatencyStampingEnabled();

// Ambient ingest timestamp of the message currently being processed on this
// thread, in microseconds since epoch; 0 = no message context (a send
// outside any scope becomes a fresh ingest root).
int64_t CurrentIngestMicros();

// RAII ambient scope: saves the current thread-local ingest stamp, installs
// `ingest_us` (when > 0 and stamping is enabled), restores on destruction.
// Nesting with the same value is harmless — scopes telescope.
class IngestScope {
 public:
  explicit IngestScope(int64_t ingest_us);
  ~IngestScope();
  IngestScope(const IngestScope&) = delete;
  IngestScope& operator=(const IngestScope&) = delete;

 private:
  int64_t saved_;
};

}  // namespace sqs
