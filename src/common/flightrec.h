// Always-on flight recorder: a lock-free-per-thread bounded ring of
// structured engine events (container state transitions, commits,
// checkpoint publishes, supervisor restarts, fencing, DLQ drops, retry
// giveups, batch-run boundaries) kept cheap enough to leave on in
// production. When the process wedges or dies, the last N events per
// thread explain what the engine was doing.
//
// Design: each writer thread owns one ring; a slot is a seqlock (odd
// version = write in progress, readers retry/skip), so writers never block
// and a concurrent snapshot can never observe a half-written record — torn
// slots are detected by the version check and skipped. Events carry a
// global sequence number (one relaxed fetch_add) so a merged dump is
// totally ordered. Eviction is counted per ring (`dropped`).
//
// Dumps are JSON lines: on demand (GET /debug/events, SHOW EVENTS), on
// supervisor-observed container death, and from the fatal-signal /
// std::terminate crash path (`flightrec.dump.path`), which first runs the
// registered crash-flush hooks (structured logger, metrics reporters) so
// the tail of those files survives the crash. See docs/PROFILING.md.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace sqs {

enum class FlightEventType : uint8_t {
  kContainerStart = 0,
  kContainerStop,
  kContainerCrash,
  kSupervisorRestart,
  kCommit,
  kCheckpoint,
  kBatchRun,
  kDlqDrop,
  kRetryGiveup,
  kFenced,
  kJobSubmit,
  kPlanBuilt,
  kStall,
  kStallCleared,
  kCrashDump,
  kSloBreach,
  kSloCleared,
  kSegmentRoll,
  kFsync,
  kRecoveryTruncation,
};

// Stable lowercase identifier ("commit", "batch_run", ...), used in dumps.
const char* FlightEventTypeName(FlightEventType type);

// POD event record. Fixed-size char payloads (NUL-terminated, truncated on
// overflow) keep slots copyable without allocation, which the seqlock and
// the async-signal dump path both rely on.
struct FlightEvent {
  int64_t ts_ms = 0;    // wall clock
  int64_t mono_ns = 0;  // monotonic timestamp
  uint64_t seq = 0;     // global publish order (dump sort key)
  int32_t thread = 0;   // ring ordinal of the writing thread
  FlightEventType type = FlightEventType::kContainerStart;
  int64_t a = 0;  // small numeric payloads (count, offset, attempt, ...)
  int64_t b = 0;
  char scope[48] = {};   // where: "<job>.container<id>", "<job>.<task>", ...
  char detail[96] = {};  // free-form context (error message, label, ...)
};

class FlightRecorder {
 public:
  static constexpr size_t kDefaultRingEvents = 256;

  static FlightRecorder& Instance();

  // Record an event on the calling thread's ring. Never blocks, never
  // allocates after the ring exists. No-op while disabled.
  static void Record(FlightEventType type, std::string_view scope,
                     std::string_view detail = {}, int64_t a = 0, int64_t b = 0);

  // Recording toggle (`flightrec.enable`, default on).
  void SetEnabled(bool enabled);
  bool enabled() const;

  // Per-thread ring capacity (`flightrec.ring.events`). Applies to rings
  // created after the call; existing rings keep their size.
  void SetRingCapacity(size_t events);
  size_t ring_capacity() const;

  // Merged consistent copy of every ring, sorted by seq (oldest first).
  // `scope_prefix` filters (empty = all).
  std::vector<FlightEvent> Snapshot(std::string_view scope_prefix = {}) const;

  // JSON-lines dump: one meta line ({"flightrec":...,"dropped":N}) followed
  // by one object per event, seq-ordered.
  std::string DumpJsonLines(std::string_view scope_prefix = {}) const;

  // Best-effort async-signal dump: fixed buffers + write(2), no allocation,
  // ring order (not seq-sorted; each line carries "seq" for offline sort).
  void DumpToFd(int fd) const;

  // DumpJsonLines to a file; returns false if the file cannot be written.
  bool DumpToPath(const std::string& path, std::string_view scope_prefix = {}) const;

  // Events evicted by ring wrap-around, across all rings.
  int64_t dropped() const;
  // Events recorded since process start (survives Clear()).
  int64_t recorded() const;

  // Drop all buffered events (tests).
  void Clear();

 private:
  FlightRecorder() = default;
};

// --- crash forensics -------------------------------------------------------

// Where the fatal-signal/terminate handlers write the flight-recorder dump
// (`flightrec.dump.path`); empty = no automatic dump file.
void SetCrashDumpPath(std::string_view path);
const char* CrashDumpPath();

// Install SIGSEGV/SIGABRT/SIGBUS/SIGILL/SIGFPE handlers and a
// std::terminate hook that flush registered sinks and write the flight
// recorder dump before re-raising. Idempotent.
void InstallCrashHandlers();

// Crash-flush registry: hooks that persist buffered observability state
// (metrics reporters, the structured logger) before the dump is written.
// `arg` identifies the registration for UnregisterCrashFlush.
using CrashFlushFn = void (*)(void* arg);
void RegisterCrashFlush(CrashFlushFn fn, void* arg);
void UnregisterCrashFlush(void* arg);

// Flush the structured logger plus every registered hook, then write the
// dump to CrashDumpPath() (if set), recording a kCrashDump event first.
// Returns true if a dump file was written. Public so the terminate hook,
// the supervisor, and tests share one code path.
bool WriteCrashDump(const char* reason);

}  // namespace sqs
