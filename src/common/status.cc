#include "common/status.h"

namespace sqs {

const char* ErrorCodeName(ErrorCode code) {
  switch (code) {
    case ErrorCode::kOk: return "OK";
    case ErrorCode::kInvalidArgument: return "InvalidArgument";
    case ErrorCode::kNotFound: return "NotFound";
    case ErrorCode::kAlreadyExists: return "AlreadyExists";
    case ErrorCode::kParseError: return "ParseError";
    case ErrorCode::kValidationError: return "ValidationError";
    case ErrorCode::kPlanError: return "PlanError";
    case ErrorCode::kSerdeError: return "SerdeError";
    case ErrorCode::kStateError: return "StateError";
    case ErrorCode::kUnsupported: return "Unsupported";
    case ErrorCode::kUnavailable: return "Unavailable";
    case ErrorCode::kInternal: return "Internal";
    case ErrorCode::kFenced: return "Fenced";
    case ErrorCode::kDataLoss: return "DataLoss";
  }
  return "Unknown";
}

}  // namespace sqs
