#include "common/flightrec.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <exception>
#include <memory>
#include <mutex>
#include <sstream>

#include "common/clock.h"
#include "common/logging.h"

namespace sqs {

namespace {

// ---------------------------------------------------------------------------
// Per-thread rings with per-slot seqlocks. One writer per ring (the owning
// thread); readers (snapshot/dump) validate the slot version before and
// after copying and skip torn slots. Ring objects are leaked so a snapshot
// or crash dump can never race a thread's exit.
// ---------------------------------------------------------------------------

struct Slot {
  std::atomic<uint64_t> version{0};  // odd = write in progress
  FlightEvent ev;
};

struct Ring {
  explicit Ring(size_t capacity, int32_t ord)
      : slots(capacity), ordinal(ord) {}
  std::vector<Slot> slots;
  uint64_t next = 0;  // writer-only event index
  std::atomic<uint64_t> written{0};
  std::atomic<bool> live{true};
  int32_t ordinal = 0;
};

struct RingRegistry {
  std::mutex mu;
  std::vector<std::unique_ptr<Ring>> rings;
};

RingRegistry& ring_registry() {
  static auto* r = new RingRegistry;
  return *r;
}

std::atomic<bool> g_enabled{true};
std::atomic<size_t> g_ring_capacity{FlightRecorder::kDefaultRingEvents};
std::atomic<uint64_t> g_seq{0};
std::atomic<int64_t> g_recorded{0};

Ring* CurrentRing() {
  thread_local struct Handle {
    Ring* ring = nullptr;
    Handle() {
      size_t cap = g_ring_capacity.load(std::memory_order_relaxed);
      if (cap < 8) cap = 8;
      RingRegistry& r = ring_registry();
      std::lock_guard<std::mutex> lock(r.mu);
      auto owned =
          std::make_unique<Ring>(cap, static_cast<int32_t>(r.rings.size()));
      ring = owned.get();
      r.rings.push_back(std::move(owned));
    }
    ~Handle() { ring->live.store(false, std::memory_order_release); }
  } handle;
  return handle.ring;
}

void CopyTruncated(char* dst, size_t dst_size, std::string_view src) {
  size_t n = std::min(src.size(), dst_size - 1);
  std::memcpy(dst, src.data(), n);
  dst[n] = '\0';
}

void AppendJsonEscaped(std::ostringstream& os, const char* s) {
  for (; *s; ++s) {
    char c = *s;
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          os << ' ';
        } else {
          os << c;
        }
    }
  }
}

// snprintf one event as a JSON line into `buf`. Returns chars written (no
// allocation; used by the async-signal dump path).
int FormatEventLine(const FlightEvent& ev, char* buf, size_t buf_size) {
  // scope/detail are truncated ASCII-ish payloads written by our own call
  // sites; quotes/backslashes are not escaped here (best-effort crash path).
  return std::snprintf(
      buf, buf_size,
      "{\"seq\":%llu,\"ts_ms\":%lld,\"mono_ns\":%lld,\"type\":\"%s\","
      "\"thread\":%d,\"scope\":\"%s\",\"detail\":\"%s\",\"a\":%lld,\"b\":%lld}\n",
      static_cast<unsigned long long>(ev.seq),
      static_cast<long long>(ev.ts_ms), static_cast<long long>(ev.mono_ns),
      FlightEventTypeName(ev.type), ev.thread, ev.scope, ev.detail,
      static_cast<long long>(ev.a), static_cast<long long>(ev.b));
}

bool HasPrefix(const char* s, std::string_view prefix) {
  return prefix.empty() || std::string_view(s).substr(0, prefix.size()) == prefix;
}

}  // namespace

const char* FlightEventTypeName(FlightEventType type) {
  switch (type) {
    case FlightEventType::kContainerStart: return "container_start";
    case FlightEventType::kContainerStop: return "container_stop";
    case FlightEventType::kContainerCrash: return "container_crash";
    case FlightEventType::kSupervisorRestart: return "supervisor_restart";
    case FlightEventType::kCommit: return "commit";
    case FlightEventType::kCheckpoint: return "checkpoint";
    case FlightEventType::kBatchRun: return "batch_run";
    case FlightEventType::kDlqDrop: return "dlq_drop";
    case FlightEventType::kRetryGiveup: return "retry_giveup";
    case FlightEventType::kFenced: return "fenced";
    case FlightEventType::kJobSubmit: return "job_submit";
    case FlightEventType::kPlanBuilt: return "plan_built";
    case FlightEventType::kStall: return "stall";
    case FlightEventType::kStallCleared: return "stall_cleared";
    case FlightEventType::kCrashDump: return "crash_dump";
    case FlightEventType::kSloBreach: return "slo_breach";
    case FlightEventType::kSloCleared: return "slo_cleared";
    case FlightEventType::kSegmentRoll: return "segment_roll";
    case FlightEventType::kFsync: return "fsync";
    case FlightEventType::kRecoveryTruncation: return "recovery_truncation";
  }
  return "unknown";
}

FlightRecorder& FlightRecorder::Instance() {
  static FlightRecorder* recorder = new FlightRecorder;
  return *recorder;
}

void FlightRecorder::Record(FlightEventType type, std::string_view scope,
                            std::string_view detail, int64_t a, int64_t b) {
  if (!g_enabled.load(std::memory_order_relaxed)) return;
  Ring* ring = CurrentRing();
  Slot& slot = ring->slots[ring->next % ring->slots.size()];
  uint64_t v = slot.version.load(std::memory_order_relaxed);
  slot.version.store(v + 1, std::memory_order_release);  // odd: in progress
  FlightEvent& ev = slot.ev;
  ev.ts_ms = SystemClock::Instance()->NowMillis();
  ev.mono_ns = MonotonicNanos();
  ev.seq = g_seq.fetch_add(1, std::memory_order_relaxed);
  ev.thread = ring->ordinal;
  ev.type = type;
  ev.a = a;
  ev.b = b;
  CopyTruncated(ev.scope, sizeof(ev.scope), scope);
  CopyTruncated(ev.detail, sizeof(ev.detail), detail);
  slot.version.store(v + 2, std::memory_order_release);  // even: stable
  ring->next++;
  ring->written.store(ring->next, std::memory_order_release);
  g_recorded.fetch_add(1, std::memory_order_relaxed);
}

void FlightRecorder::SetEnabled(bool enabled) {
  g_enabled.store(enabled, std::memory_order_relaxed);
}

bool FlightRecorder::enabled() const {
  return g_enabled.load(std::memory_order_relaxed);
}

void FlightRecorder::SetRingCapacity(size_t events) {
  if (events < 8) events = 8;
  g_ring_capacity.store(events, std::memory_order_relaxed);
}

size_t FlightRecorder::ring_capacity() const {
  return g_ring_capacity.load(std::memory_order_relaxed);
}

std::vector<FlightEvent> FlightRecorder::Snapshot(
    std::string_view scope_prefix) const {
  std::vector<FlightEvent> out;
  RingRegistry& r = ring_registry();
  std::lock_guard<std::mutex> lock(r.mu);
  for (const auto& ring : r.rings) {
    const size_t cap = ring->slots.size();
    const uint64_t w = ring->written.load(std::memory_order_acquire);
    const uint64_t start = w > cap ? w - cap : 0;
    for (uint64_t i = start; i < w; ++i) {
      const Slot& slot = ring->slots[i % cap];
      uint64_t v1 = slot.version.load(std::memory_order_acquire);
      if (v1 & 1) continue;  // write in progress
      FlightEvent copy = slot.ev;
      std::atomic_thread_fence(std::memory_order_acquire);
      uint64_t v2 = slot.version.load(std::memory_order_relaxed);
      if (v1 != v2) continue;  // torn: overwritten during the copy
      if (!HasPrefix(copy.scope, scope_prefix)) continue;
      out.push_back(copy);
    }
  }
  std::sort(out.begin(), out.end(),
            [](const FlightEvent& a, const FlightEvent& b) { return a.seq < b.seq; });
  return out;
}

std::string FlightRecorder::DumpJsonLines(std::string_view scope_prefix) const {
  std::vector<FlightEvent> events = Snapshot(scope_prefix);
  std::ostringstream os;
  os << "{\"flightrec\":\"samzasql\",\"events\":" << events.size()
     << ",\"dropped\":" << dropped() << ",\"recorded\":" << recorded() << "}\n";
  for (const FlightEvent& ev : events) {
    os << "{\"seq\":" << ev.seq << ",\"ts_ms\":" << ev.ts_ms
       << ",\"mono_ns\":" << ev.mono_ns << ",\"type\":\""
       << FlightEventTypeName(ev.type) << "\",\"thread\":" << ev.thread
       << ",\"scope\":\"";
    AppendJsonEscaped(os, ev.scope);
    os << "\",\"detail\":\"";
    AppendJsonEscaped(os, ev.detail);
    os << "\",\"a\":" << ev.a << ",\"b\":" << ev.b << "}\n";
  }
  return os.str();
}

void FlightRecorder::DumpToFd(int fd) const {
  char buf[512];
  int n = std::snprintf(buf, sizeof(buf),
                        "{\"flightrec\":\"samzasql\",\"dropped\":%lld}\n",
                        static_cast<long long>(dropped()));
  if (n > 0) {
    ssize_t ignored = write(fd, buf, static_cast<size_t>(n));
    (void)ignored;
  }
  // Ring order, not seq order: sorting needs allocation, which the
  // fatal-signal path cannot afford. Lines carry "seq" for offline sorting.
  RingRegistry& r = ring_registry();
  // The registry mutex is only taken by thread creation; on the crash path
  // a deadlock here would suppress the dump, so rely on creation being rare
  // and brief and take it (best effort: a crash *inside* registration loses
  // the dump, nothing worse).
  std::lock_guard<std::mutex> lock(r.mu);
  for (const auto& ring : r.rings) {
    const size_t cap = ring->slots.size();
    const uint64_t w = ring->written.load(std::memory_order_acquire);
    const uint64_t start = w > cap ? w - cap : 0;
    for (uint64_t i = start; i < w; ++i) {
      const Slot& slot = ring->slots[i % cap];
      uint64_t v1 = slot.version.load(std::memory_order_acquire);
      if (v1 & 1) continue;
      FlightEvent copy = slot.ev;
      std::atomic_thread_fence(std::memory_order_acquire);
      if (slot.version.load(std::memory_order_relaxed) != v1) continue;
      n = FormatEventLine(copy, buf, sizeof(buf));
      if (n > 0) {
        ssize_t ignored = write(fd, buf, static_cast<size_t>(n));
        (void)ignored;
      }
    }
  }
}

bool FlightRecorder::DumpToPath(const std::string& path,
                                std::string_view scope_prefix) const {
  // POSIX I/O rather than ofstream so the dump can be fsynced: this path
  // runs from std::terminate and shutdown forensics, where the process (or
  // machine) may die immediately after — the dump must be durable, not
  // merely buffered.
  int fd = open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return false;
  std::string body = DumpJsonLines(scope_prefix);
  size_t off = 0;
  while (off < body.size()) {
    ssize_t n = write(fd, body.data() + off, body.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      close(fd);
      return false;
    }
    off += static_cast<size_t>(n);
  }
  bool synced = fsync(fd) == 0;
  close(fd);
  return synced;
}

int64_t FlightRecorder::dropped() const {
  int64_t total = 0;
  RingRegistry& r = ring_registry();
  std::lock_guard<std::mutex> lock(r.mu);
  for (const auto& ring : r.rings) {
    uint64_t w = ring->written.load(std::memory_order_acquire);
    uint64_t cap = ring->slots.size();
    if (w > cap) total += static_cast<int64_t>(w - cap);
  }
  return total;
}

int64_t FlightRecorder::recorded() const {
  return g_recorded.load(std::memory_order_relaxed);
}

void FlightRecorder::Clear() {
  RingRegistry& r = ring_registry();
  std::lock_guard<std::mutex> lock(r.mu);
  for (auto& ring : r.rings) {
    // Only safe against the ring's own writer if that thread is quiescent;
    // tests call Clear() between runs, never concurrently with recording.
    for (Slot& slot : ring->slots) {
      slot.version.store(0, std::memory_order_relaxed);
      slot.ev = FlightEvent{};
    }
    ring->next = 0;
    ring->written.store(0, std::memory_order_release);
  }
}

// ---------------------------------------------------------------------------
// Crash forensics: dump path, flush hooks, signal + terminate handlers.
// ---------------------------------------------------------------------------

namespace {

char g_dump_path[512] = {};
std::mutex g_dump_path_mu;

constexpr size_t kMaxFlushHooks = 16;
struct FlushHook {
  CrashFlushFn fn = nullptr;
  void* arg = nullptr;
};
FlushHook g_flush_hooks[kMaxFlushHooks];
std::mutex g_flush_mu;

std::atomic<bool> g_handlers_installed{false};
std::terminate_handler g_prev_terminate = nullptr;

void RunCrashFlushHooks() {
  Logger::Instance().Flush();
  std::lock_guard<std::mutex> lock(g_flush_mu);
  for (const FlushHook& hook : g_flush_hooks) {
    if (hook.fn != nullptr) hook.fn(hook.arg);
  }
}

// Fatal-signal handler: banner to stderr, best-effort flush, dump, then
// re-raise with the default disposition so the exit status is honest.
// The flush hooks and the dump-path read are not strictly async-signal-safe
// (they may allocate); for a forensics path on an already-dying process
// that trade is deliberate — worst case the dump is lost, never corruption
// of healthy state.
void CrashSignalHandler(int sig) {
  static std::atomic<bool> in_crash{false};
  if (!in_crash.exchange(true)) {
    char banner[96];
    int n = std::snprintf(banner, sizeof(banner),
                          "samzasql: fatal signal %d, writing flight recorder dump\n",
                          sig);
    if (n > 0) {
      ssize_t ignored = write(STDERR_FILENO, banner, static_cast<size_t>(n));
      (void)ignored;
    }
    RunCrashFlushHooks();
    const char* path = CrashDumpPath();
    if (path[0] != '\0') {
      int fd = open(path, O_WRONLY | O_CREAT | O_TRUNC, 0644);
      if (fd >= 0) {
        FlightRecorder::Instance().DumpToFd(fd);
        // The process dies on the re-raise below without ever returning to
        // code that could flush: without an fsync the dump sits in page
        // cache, and a machine-level crash right after would lose the one
        // artifact explaining it (the same torn-write window the durable
        // log closes for data — docs/DURABILITY.md).
        fsync(fd);
        close(fd);
      }
    }
  }
  std::signal(sig, SIG_DFL);
  std::raise(sig);
}

void CrashTerminateHandler() {
  WriteCrashDump("std::terminate");
  if (g_prev_terminate != nullptr) g_prev_terminate();
  std::abort();
}

}  // namespace

void SetCrashDumpPath(std::string_view path) {
  std::lock_guard<std::mutex> lock(g_dump_path_mu);
  CopyTruncated(g_dump_path, sizeof(g_dump_path), path);
}

const char* CrashDumpPath() { return g_dump_path; }

void RegisterCrashFlush(CrashFlushFn fn, void* arg) {
  std::lock_guard<std::mutex> lock(g_flush_mu);
  for (FlushHook& hook : g_flush_hooks) {
    if (hook.fn == nullptr) {
      hook.fn = fn;
      hook.arg = arg;
      return;
    }
  }
  // Table full: drop the registration; crash flushing is best effort.
}

void UnregisterCrashFlush(void* arg) {
  std::lock_guard<std::mutex> lock(g_flush_mu);
  for (FlushHook& hook : g_flush_hooks) {
    if (hook.arg == arg) {
      hook.fn = nullptr;
      hook.arg = nullptr;
    }
  }
}

bool WriteCrashDump(const char* reason) {
  FlightRecorder::Record(FlightEventType::kCrashDump, "crash", reason);
  RunCrashFlushHooks();
  const char* path = CrashDumpPath();
  if (path[0] == '\0') return false;
  return FlightRecorder::Instance().DumpToPath(path);
}

void InstallCrashHandlers() {
  if (g_handlers_installed.exchange(true)) return;
  struct sigaction sa;
  std::memset(&sa, 0, sizeof(sa));
  sa.sa_handler = CrashSignalHandler;
  sigemptyset(&sa.sa_mask);
  for (int sig : {SIGSEGV, SIGABRT, SIGBUS, SIGILL, SIGFPE}) {
    sigaction(sig, &sa, nullptr);
  }
  g_prev_terminate = std::set_terminate(CrashTerminateHandler);
}

}  // namespace sqs
