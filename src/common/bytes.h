// Binary encode/decode helpers used by the serde layer and the log.
// Varint/zigzag encoding mirrors Avro's binary encoding so that the
// "avro" serde has realistic per-byte costs.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace sqs {

using Bytes = std::vector<uint8_t>;

class BytesWriter {
 public:
  BytesWriter() = default;
  explicit BytesWriter(size_t reserve) { buf_.reserve(reserve); }

  void WriteByte(uint8_t b) { buf_.push_back(b); }
  void WriteRaw(const void* data, size_t n) {
    const auto* p = static_cast<const uint8_t*>(data);
    buf_.insert(buf_.end(), p, p + n);
  }

  // Zigzag varint (Avro long encoding).
  void WriteVarint(int64_t v) {
    uint64_t z = (static_cast<uint64_t>(v) << 1) ^ static_cast<uint64_t>(v >> 63);
    while (z >= 0x80) {
      buf_.push_back(static_cast<uint8_t>(z) | 0x80);
      z >>= 7;
    }
    buf_.push_back(static_cast<uint8_t>(z));
  }

  void WriteDouble(double d) {
    uint64_t bits;
    std::memcpy(&bits, &d, sizeof(bits));
    for (int i = 0; i < 8; ++i) buf_.push_back(static_cast<uint8_t>(bits >> (8 * i)));
  }

  void WriteBool(bool b) { buf_.push_back(b ? 1 : 0); }

  void WriteString(std::string_view s) {
    WriteVarint(static_cast<int64_t>(s.size()));
    WriteRaw(s.data(), s.size());
  }

  void WriteBytes(const Bytes& b) {
    WriteVarint(static_cast<int64_t>(b.size()));
    WriteRaw(b.data(), b.size());
  }

  // Fixed-width little-endian (used for framing, offsets).
  void WriteFixed32(uint32_t v) {
    for (int i = 0; i < 4; ++i) buf_.push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
  void WriteFixed64(uint64_t v) {
    for (int i = 0; i < 8; ++i) buf_.push_back(static_cast<uint8_t>(v >> (8 * i)));
  }

  const Bytes& data() const { return buf_; }
  Bytes Take() { return std::move(buf_); }
  size_t size() const { return buf_.size(); }

 private:
  Bytes buf_;
};

class BytesReader {
 public:
  explicit BytesReader(const Bytes& data) : data_(data.data()), size_(data.size()) {}
  BytesReader(const uint8_t* data, size_t size) : data_(data), size_(size) {}

  bool AtEnd() const { return pos_ >= size_; }
  size_t remaining() const { return size_ - pos_; }
  size_t position() const { return pos_; }

  Result<uint8_t> ReadByte() {
    if (pos_ >= size_) return Status::SerdeError("unexpected end of buffer");
    return data_[pos_++];
  }

  // Advance past `n` bytes without decoding them (lazy-field skipping).
  Status Skip(size_t n) {
    if (n > remaining()) return Status::SerdeError("skip past end of buffer");
    pos_ += n;
    return Status::Ok();
  }

  // Advance past one zigzag varint without decoding its value.
  Status SkipVarint() {
    int seen = 0;
    while (true) {
      if (pos_ >= size_) return Status::SerdeError("truncated varint");
      uint8_t b = data_[pos_++];
      if (!(b & 0x80)) return Status::Ok();
      if (++seen > 9) return Status::SerdeError("varint too long");
    }
  }

  Result<int64_t> ReadVarint() {
    uint64_t z = 0;
    int shift = 0;
    while (true) {
      if (pos_ >= size_) return Status::SerdeError("truncated varint");
      uint8_t b = data_[pos_++];
      z |= static_cast<uint64_t>(b & 0x7F) << shift;
      if (!(b & 0x80)) break;
      shift += 7;
      if (shift > 63) return Status::SerdeError("varint too long");
    }
    return static_cast<int64_t>((z >> 1) ^ (~(z & 1) + 1));
  }

  Result<double> ReadDouble() {
    if (remaining() < 8) return Status::SerdeError("truncated double");
    uint64_t bits = 0;
    for (int i = 0; i < 8; ++i) bits |= static_cast<uint64_t>(data_[pos_ + i]) << (8 * i);
    pos_ += 8;
    double d;
    std::memcpy(&d, &bits, sizeof(d));
    return d;
  }

  Result<bool> ReadBool() {
    SQS_ASSIGN_OR_RETURN(b, ReadByte());
    return b != 0;
  }

  Result<std::string> ReadString() {
    SQS_ASSIGN_OR_RETURN(len, ReadVarint());
    if (len < 0 || static_cast<uint64_t>(len) > remaining()) {
      return Status::SerdeError("truncated string");
    }
    std::string s(reinterpret_cast<const char*>(data_ + pos_), static_cast<size_t>(len));
    pos_ += static_cast<size_t>(len);
    return s;
  }

  Result<Bytes> ReadBytes() {
    SQS_ASSIGN_OR_RETURN(len, ReadVarint());
    if (len < 0 || static_cast<uint64_t>(len) > remaining()) {
      return Status::SerdeError("truncated bytes");
    }
    Bytes b(data_ + pos_, data_ + pos_ + len);
    pos_ += static_cast<size_t>(len);
    return b;
  }

  Result<uint32_t> ReadFixed32() {
    if (remaining() < 4) return Status::SerdeError("truncated fixed32");
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<uint32_t>(data_[pos_ + i]) << (8 * i);
    pos_ += 4;
    return v;
  }

  Result<uint64_t> ReadFixed64() {
    if (remaining() < 8) return Status::SerdeError("truncated fixed64");
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(data_[pos_ + i]) << (8 * i);
    pos_ += 8;
    return v;
  }

 private:
  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
};

inline Bytes ToBytes(std::string_view s) {
  return Bytes(s.begin(), s.end());
}
inline std::string FromBytes(const Bytes& b) {
  return std::string(b.begin(), b.end());
}

}  // namespace sqs
