#include "common/profiler.h"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <memory>
#include <mutex>
#include <sstream>
#include <thread>
#include <unordered_map>
#include <unordered_set>

#include "common/clock.h"

namespace sqs {

namespace {

// ---------------------------------------------------------------------------
// Label interning. The global arena is an unordered_set<std::string> (node
// based, so c_str() pointers are stable); each thread keeps a memo so the
// steady state takes no lock. Both are intentionally leaked: frames read by
// the sampler must stay valid past any thread's exit.
// ---------------------------------------------------------------------------

struct SvHash {
  using is_transparent = void;
  size_t operator()(std::string_view s) const {
    return std::hash<std::string_view>{}(s);
  }
};
struct SvEq {
  using is_transparent = void;
  bool operator()(std::string_view a, std::string_view b) const { return a == b; }
};

const char* InternGlobal(std::string_view label) {
  static std::mutex* mu = new std::mutex;
  static auto* arena = new std::unordered_set<std::string, SvHash, SvEq>;
  std::lock_guard<std::mutex> lock(*mu);
  auto it = arena->find(label);
  if (it == arena->end()) it = arena->emplace(label).first;
  return it->c_str();
}

// ---------------------------------------------------------------------------
// Per-thread frame stacks. Single writer (the owning thread), racy readers
// (the sampler): frame slots hold immortal interned pointers, so a stale or
// mid-update read yields a *wrong* stack for one sample, never an invalid
// pointer. Depth is published with release so a sampler that observes depth
// d also observes the frames below it.
// ---------------------------------------------------------------------------

struct ThreadFrames {
  std::atomic<uint32_t> depth{0};
  std::atomic<const char*> frames[Profiler::kMaxDepth] = {};
  std::atomic<bool> live{true};
};

struct FrameRegistry {
  std::mutex mu;
  std::vector<std::unique_ptr<ThreadFrames>> threads;
};

FrameRegistry& frame_registry() {
  static auto* r = new FrameRegistry;
  return *r;
}

ThreadFrames* CurrentThreadFrames() {
  thread_local struct Handle {
    ThreadFrames* tf = nullptr;
    Handle() {
      auto owned = std::make_unique<ThreadFrames>();
      tf = owned.get();
      FrameRegistry& r = frame_registry();
      std::lock_guard<std::mutex> lock(r.mu);
      r.threads.push_back(std::move(owned));
    }
    ~Handle() { tf->live.store(false, std::memory_order_release); }
  } handle;
  return handle.tf;
}

// Sampler thread state (separate from the Profiler object so the singleton
// stays trivially destructible-free).
struct SamplerState {
  std::mutex mu;
  std::condition_variable cv;
  std::thread thread;
  bool stop = false;
};

SamplerState& sampler_state() {
  static auto* s = new SamplerState;
  return *s;
}

// Folded-stack aggregation: stack (vector of interned pointers, root first)
// -> sample count.
struct SampleStore {
  mutable std::mutex mu;
  std::map<std::vector<const char*>, int64_t> counts;
  int64_t total = 0;
};

SampleStore& sample_store() {
  static auto* s = new SampleStore;
  return *s;
}

double ClampHz(double hz) { return std::min(1000.0, std::max(1.0, hz)); }

}  // namespace

Profiler& Profiler::Instance() {
  static Profiler* profiler = new Profiler;
  return *profiler;
}

const char* Profiler::Intern(std::string_view label) {
  thread_local std::unordered_map<std::string, const char*, SvHash, SvEq> memo;
  auto it = memo.find(label);
  if (it != memo.end()) return it->second;
  const char* interned = InternGlobal(label);
  memo.emplace(std::string(label), interned);
  return interned;
}

void Profiler::PushFrame(const char* label) {
  ThreadFrames* tf = CurrentThreadFrames();
  uint32_t d = tf->depth.load(std::memory_order_relaxed);
  if (d < kMaxDepth) tf->frames[d].store(label, std::memory_order_relaxed);
  tf->depth.store(d + 1, std::memory_order_release);
}

void Profiler::PopFrame() {
  ThreadFrames* tf = CurrentThreadFrames();
  uint32_t d = tf->depth.load(std::memory_order_relaxed);
  if (d > 0) tf->depth.store(d - 1, std::memory_order_release);
}

size_t Profiler::CurrentDepth() {
  return CurrentThreadFrames()->depth.load(std::memory_order_relaxed);
}

size_t Profiler::SampleOnce() {
  std::vector<std::vector<const char*>> stacks;
  {
    FrameRegistry& r = frame_registry();
    std::lock_guard<std::mutex> lock(r.mu);
    for (const auto& tf : r.threads) {
      if (!tf->live.load(std::memory_order_acquire)) continue;
      uint32_t d = tf->depth.load(std::memory_order_acquire);
      if (d == 0) continue;  // idle thread: not on the engine's CPU paths
      if (d > kMaxDepth) d = kMaxDepth;
      std::vector<const char*> stack;
      stack.reserve(d);
      for (uint32_t i = 0; i < d; ++i) {
        const char* f = tf->frames[i].load(std::memory_order_relaxed);
        if (f == nullptr) break;  // racing push: frame not yet stored
        stack.push_back(f);
      }
      if (!stack.empty()) stacks.push_back(std::move(stack));
    }
  }
  if (stacks.empty()) return 0;
  SampleStore& store = sample_store();
  std::lock_guard<std::mutex> lock(store.mu);
  for (auto& stack : stacks) {
    store.counts[std::move(stack)] += 1;
    store.total += 1;
  }
  return stacks.size();
}

void Profiler::SamplerLoop(double hz) {
  const auto period = std::chrono::nanoseconds(
      static_cast<int64_t>(1e9 / ClampHz(hz)));
  SamplerState& s = sampler_state();
  std::unique_lock<std::mutex> lock(s.mu);
  while (!s.stop) {
    lock.unlock();
    SampleOnce();
    lock.lock();
    s.cv.wait_for(lock, period, [&] { return s.stop; });
  }
}

Status Profiler::StartSampling(double hz) {
  if (hz <= 0) return Status::InvalidArgument("profile hz must be > 0");
  StopSampling();
  SamplerState& s = sampler_state();
  {
    std::lock_guard<std::mutex> lock(s.mu);
    s.stop = false;
  }
  hz_.store(ClampHz(hz), std::memory_order_relaxed);
  sampling_.store(true, std::memory_order_relaxed);
  s.thread = std::thread([this, hz] { SamplerLoop(hz); });
  return Status::Ok();
}

void Profiler::StopSampling() {
  SamplerState& s = sampler_state();
  {
    std::lock_guard<std::mutex> lock(s.mu);
    s.stop = true;
  }
  s.cv.notify_all();
  if (s.thread.joinable()) s.thread.join();
  sampling_.store(false, std::memory_order_relaxed);
  hz_.store(0.0, std::memory_order_relaxed);
}

Status Profiler::SampleFor(int64_t duration_ms, double hz) {
  if (duration_ms <= 0) return Status::InvalidArgument("burst duration must be > 0");
  if (hz <= 0) return Status::InvalidArgument("profile hz must be > 0");
  const auto period =
      std::chrono::nanoseconds(static_cast<int64_t>(1e9 / ClampHz(hz)));
  const int64_t end_ns = MonotonicNanos() + duration_ms * 1000000;
  while (MonotonicNanos() < end_ns) {
    SampleOnce();
    std::this_thread::sleep_for(period);
  }
  return Status::Ok();
}

std::string Profiler::CollapsedStacks() const {
  std::vector<std::pair<std::string, int64_t>> lines;
  {
    SampleStore& store = sample_store();
    std::lock_guard<std::mutex> lock(store.mu);
    lines.reserve(store.counts.size());
    for (const auto& [stack, count] : store.counts) {
      std::string folded;
      for (size_t i = 0; i < stack.size(); ++i) {
        if (i) folded += ';';
        folded += stack[i];
      }
      lines.emplace_back(std::move(folded), count);
    }
  }
  std::sort(lines.begin(), lines.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  std::ostringstream os;
  for (const auto& [folded, count] : lines) {
    os << folded << ' ' << count << '\n';
  }
  return os.str();
}

bool Profiler::IsOperatorLabel(std::string_view label) {
  if (label.rfind("fused<", 0) == 0) return true;
  return label.size() >= 3 && label[0] == 'o' && label[1] == 'p' &&
         label[2] >= '0' && label[2] <= '9';
}

std::map<std::string, int64_t> Profiler::OperatorAttribution() const {
  std::map<std::string, int64_t> out;
  SampleStore& store = sample_store();
  std::lock_guard<std::mutex> lock(store.mu);
  for (const auto& [stack, count] : store.counts) {
    const char* bucket = stack.back();  // leaf, unless an operator frame wins
    for (auto it = stack.rbegin(); it != stack.rend(); ++it) {
      if (IsOperatorLabel(*it)) {
        bucket = *it;
        break;
      }
    }
    out[bucket] += count;
  }
  return out;
}

int64_t Profiler::TotalSamples() const {
  SampleStore& store = sample_store();
  std::lock_guard<std::mutex> lock(store.mu);
  return store.total;
}

void Profiler::ClearSamples() {
  SampleStore& store = sample_store();
  std::lock_guard<std::mutex> lock(store.mu);
  store.counts.clear();
  store.total = 0;
}

void Profiler::Reset() {
  StopSampling();
  ClearSamples();
}

}  // namespace sqs
