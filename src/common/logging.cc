#include "common/logging.h"

#include <cstdio>
#include <ctime>
#include <iostream>

#include "common/config.h"

namespace sqs {

namespace {

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

// 2026-08-06T12:00:00.123Z
std::string FormatTimestamp(int64_t epoch_ms) {
  std::time_t secs = static_cast<std::time_t>(epoch_ms / 1000);
  std::tm tm{};
  gmtime_r(&secs, &tm);
  char buf[48];  // sized for %04d expanding on out-of-range tm_year
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02dT%02d:%02d:%02d.%03dZ",
                tm.tm_year + 1900, tm.tm_mon + 1, tm.tm_mday, tm.tm_hour,
                tm.tm_min, tm.tm_sec, static_cast<int>(epoch_ms % 1000));
  return buf;
}

void AppendJsonEscaped(std::ostream& os, std::string_view s) {
  for (char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          os << ' ';
        } else {
          os << c;
        }
    }
  }
}

}  // namespace

void Logger::Log(LogLevel level, std::string_view component,
                 std::string_view msg, const LogFields& fields) {
  if (static_cast<int>(level) < static_cast<int>(level_)) return;
  int64_t now_ms = clock_ ? clock_->NowMillis() : SystemClock().NowMillis();
  std::lock_guard<std::mutex> lock(mu_);
  std::ostream& os = sink_ ? *sink_ : std::cerr;
  if (format_ == LogFormat::kJson) {
    os << "{\"ts_ms\":" << now_ms << ",\"level\":\"" << LevelName(level)
       << "\",\"component\":\"";
    AppendJsonEscaped(os, component);
    os << "\",\"msg\":\"";
    AppendJsonEscaped(os, msg);
    os << "\"";
    for (const auto& [key, value] : fields) {
      os << ",\"";
      AppendJsonEscaped(os, key);
      os << "\":\"";
      AppendJsonEscaped(os, value);
      os << "\"";
    }
    os << "}\n";
  } else {
    char padded[8];
    std::snprintf(padded, sizeof(padded), "%-5s", LevelName(level));
    os << FormatTimestamp(now_ms) << " " << padded << " [" << component << "] "
       << msg;
    for (const auto& [key, value] : fields) {
      os << " " << key << "=" << value;
    }
    os << "\n";
  }
  os.flush();
}

void Logger::Flush() {
  std::lock_guard<std::mutex> lock(mu_);
  (sink_ ? *sink_ : std::cerr).flush();
}

void ApplyLogConfig(const Config& config) {
  Logger& logger = Logger::Instance();
  std::string level = config.Get("log.level");
  if (level == "debug") {
    logger.SetLevel(LogLevel::kDebug);
  } else if (level == "info") {
    logger.SetLevel(LogLevel::kInfo);
  } else if (level == "warn") {
    logger.SetLevel(LogLevel::kWarn);
  } else if (level == "error") {
    logger.SetLevel(LogLevel::kError);
  } else if (level == "off") {
    logger.SetLevel(LogLevel::kOff);
  }
  std::string format = config.Get("log.format");
  if (format == "json") {
    logger.SetFormat(LogFormat::kJson);
  } else if (format == "plain") {
    logger.SetFormat(LogFormat::kPlain);
  }
}

}  // namespace sqs
