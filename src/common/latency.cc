#include "common/latency.h"

#include <atomic>

namespace sqs {

namespace {

std::atomic<bool> g_stamping_enabled{true};
thread_local int64_t t_ingest_us = 0;

}  // namespace

void SetLatencyStampingEnabled(bool enabled) {
  g_stamping_enabled.store(enabled, std::memory_order_relaxed);
}

bool LatencyStampingEnabled() {
  return g_stamping_enabled.load(std::memory_order_relaxed);
}

int64_t CurrentIngestMicros() { return t_ingest_us; }

IngestScope::IngestScope(int64_t ingest_us) : saved_(t_ingest_us) {
  if (ingest_us > 0 && LatencyStampingEnabled()) t_ingest_us = ingest_us;
}

IngestScope::~IngestScope() { t_ingest_us = saved_; }

}  // namespace sqs
