// Clock abstraction: production code uses SystemClock; tests and the
// deterministic-replay harness use ManualClock so that window boundaries
// and checkpoint timing are reproducible.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>

namespace sqs {

class Clock {
 public:
  virtual ~Clock() = default;
  // Milliseconds since epoch.
  virtual int64_t NowMillis() const = 0;
  // Microseconds since epoch. The default derives from NowMillis() so a
  // ManualClock stays deterministic (advancing 5ms advances exactly
  // 5000us); SystemClock overrides with real microsecond resolution for
  // the ingest-to-sink latency stamps (common/latency.h).
  virtual int64_t NowMicros() const { return NowMillis() * 1000; }
};

class SystemClock : public Clock {
 public:
  int64_t NowMillis() const override {
    return std::chrono::duration_cast<std::chrono::milliseconds>(
               std::chrono::system_clock::now().time_since_epoch())
        .count();
  }
  int64_t NowMicros() const override {
    return std::chrono::duration_cast<std::chrono::microseconds>(
               std::chrono::system_clock::now().time_since_epoch())
        .count();
  }
  static std::shared_ptr<Clock> Instance() {
    static std::shared_ptr<Clock> clock = std::make_shared<SystemClock>();
    return clock;
  }
};

class ManualClock : public Clock {
 public:
  explicit ManualClock(int64_t start_millis = 0) : now_(start_millis) {}
  int64_t NowMillis() const override { return now_.load(std::memory_order_relaxed); }
  void Advance(int64_t delta_millis) { now_.fetch_add(delta_millis, std::memory_order_relaxed); }
  void Set(int64_t millis) { now_.store(millis, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> now_;
};

// Monotonic nanosecond timer for throughput measurement.
inline int64_t MonotonicNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace sqs
