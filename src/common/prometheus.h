// Prometheus text exposition (format 0.0.4) rendered from MetricsSnapshot.
// The dot-separated internal names (`<job>.<task>.<operator>.<metric>`, see
// docs/METRICS.md) become one metric *family* per leaf metric with the
// owning scope as a label, so a single family aggregates across jobs, tasks
// and operators:
//
//   samzasql_processed_total{scope="samzasql-query-0.Partition_0.op2-scan"} 42
//   samzasql_consumer_lag{scope="q0.container0",topic="Orders",partition="1"} 7
//
// Rendering rules:
//  - counters  -> `samzasql_<leaf>_total` (counter)
//  - gauges    -> `samzasql_<leaf>` (gauge); per-partition lag gauges
//                 (`...lag.<topic>.<partition>`) become the dedicated
//                 `samzasql_consumer_lag` family with topic/partition labels
//  - timers    -> `samzasql_<leaf>_seconds_total` (counter, ns -> s)
//  - histograms-> `samzasql_<leaf>` histogram: cumulative `_bucket{le=...}`
//                 series ending at `le="+Inf"`, plus `_sum` / `_count`, and
//                 companion `_min` / `_max` gauges from the recorded range
// Family and label names are sanitized to [a-zA-Z_:][a-zA-Z0-9_:]*; label
// values escape backslash, double quote, and newline per the spec.
#pragma once

#include <string>

#include "common/metrics.h"

namespace sqs {

// The Content-Type a /metrics endpoint must serve for format 0.0.4.
inline constexpr const char* kPrometheusContentType =
    "text/plain; version=0.0.4; charset=utf-8";

// Sanitize an arbitrary string into a valid metric/label name: invalid
// characters become '_', and a leading digit is prefixed with '_'.
std::string PrometheusName(const std::string& raw);

// Escape a label value: \ -> \\, " -> \", newline -> \n.
std::string PrometheusLabelValue(const std::string& raw);

// Render a whole snapshot in exposition format, families sorted by name,
// each preceded by its # HELP / # TYPE header.
std::string RenderPrometheus(const MetricsSnapshot& snapshot);

}  // namespace sqs
