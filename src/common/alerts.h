// AlertEngine: declarative threshold alerting over metrics snapshots and the
// metrics history ring. Rules come from the `alert.rules` config key as a
// ';'-separated list:
//
//   alert.rules=consumer_lag>10000 for 5s; dropped rate>0; watermark_lag_ms>60000 for 2s
//
// Rule grammar (whitespace-insensitive around operators):
//
//   rule     := selector ["rate"] op number ["for" duration]
//   selector := "consumer_lag"            max over per-partition lag gauges
//             | <metric leaf or suffix>   matched against dotted metric names
//   op       := ">" | ">=" | "<" | "<="
//   duration := <int> ("ms" | "s" | "m")
//
// "rate" compares the per-second rate of matching counters from the history
// ring instead of the level (e.g. `dropped rate>0` fires while any operator
// is actively dropping tuples). A rule's condition must hold for `for`
// (default 0) before it transitions pending -> firing; when the condition
// clears, a firing alert logs a structured "resolved" event and returns to
// inactive. Evaluate() is driven by the monitor's history tick, so alert
// timing is deterministic under an injected clock.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "common/history.h"
#include "common/metrics.h"
#include "common/status.h"

namespace sqs {

struct AlertRule {
  std::string selector;     // metric leaf/suffix or "consumer_lag"
  bool rate = false;        // compare history rate instead of the level
  std::string op = ">";     // ">", ">=", "<", "<="
  double threshold = 0;
  int64_t for_ms = 0;       // how long the condition must hold before firing
  std::string text;         // canonical rule text (used as the alert name)
};

enum class AlertState { kInactive, kPending, kFiring };
const char* AlertStateName(AlertState state);

struct AlertStatus {
  AlertRule rule;
  AlertState state = AlertState::kInactive;
  int64_t since_ms = 0;      // when the condition started holding
  double value = 0;          // last evaluated value
  std::string subject;       // metric name that produced the value
  int64_t fired_count = 0;   // lifetime pending->firing transitions
};

class AlertEngine {
 public:
  AlertEngine() = default;
  explicit AlertEngine(std::vector<AlertRule> rules);

  // Parse an `alert.rules` config value. Empty input yields no rules.
  static Result<std::vector<AlertRule>> ParseRules(const std::string& spec);

  // Evaluate every rule against one snapshot at `now_ms`; `history` supplies
  // rates for `rate` rules (may be null: rate rules then read 0). Emits
  // structured log events on pending/firing/resolved transitions.
  void Evaluate(int64_t now_ms, const MetricsSnapshot& snapshot,
                const MetricsHistory* history);

  std::vector<AlertStatus> Statuses() const;
  int64_t FiringCount() const;
  bool empty() const { return rules_.empty(); }
  size_t num_rules() const { return rules_.size(); }

  // {"firing":N,"alerts":[{"rule":...,"state":...,...},...]}
  std::string ToJson(int64_t now_ms) const;

 private:
  struct Entry {
    AlertRule rule;
    AlertState state = AlertState::kInactive;
    int64_t since_ms = 0;
    double value = 0;
    std::string subject;
    int64_t fired_count = 0;
  };

  bool Condition(const Entry& entry, const MetricsSnapshot& snapshot,
                 const MetricsHistory* history, double* value,
                 std::string* subject) const;

  mutable std::mutex mu_;
  std::vector<AlertRule> rules_;
  std::vector<Entry> entries_;
};

}  // namespace sqs
