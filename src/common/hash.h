// Stable hashes used for key partitioning (producer -> partition) so that
// partition assignment is deterministic across runs and replays.
#pragma once

#include <cstdint>
#include <string_view>

#include "common/bytes.h"

namespace sqs {

inline uint64_t Fnv1a64(const void* data, size_t n) {
  const auto* p = static_cast<const uint8_t*>(data);
  uint64_t h = 1469598103934665603ull;
  for (size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return h;
}

inline uint64_t Fnv1a64(std::string_view s) { return Fnv1a64(s.data(), s.size()); }
inline uint64_t Fnv1a64(const Bytes& b) { return Fnv1a64(b.data(), b.size()); }

}  // namespace sqs
