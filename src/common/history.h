// MetricsHistory: a fixed-capacity time-series ring over registry snapshots.
// The monitor samples every job's registry on a clock-driven interval
// (`metrics.history.interval.ms`), keeping the most recent
// `metrics.history.samples` points per metric key, so rates (msgs/sec, lag
// slope) can be computed without an external scraper. Counters, gauges and
// timers record their value; histograms record `<name>.count` and
// `<name>.p99`. Readers (the HTTP /history endpoint, the shell's
// SHOW HISTORY, the alert engine's rate rules) and the sampling writer run
// on different threads, so every entry point locks.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/metrics.h"

namespace sqs {

class MetricsHistory {
 public:
  struct Point {
    int64_t ts_ms = 0;
    double value = 0;
  };

  static constexpr size_t kDefaultSamples = 120;

  explicit MetricsHistory(size_t max_samples_per_key = kDefaultSamples);

  // Append one sample per scalar series in the snapshot.
  void Record(int64_t ts_ms, const MetricsSnapshot& snapshot);

  std::vector<std::string> Keys() const;

  // Retained points in chronological order; empty for unknown keys.
  std::vector<Point> Series(const std::string& key) const;

  // Change per second across the retained window: (last - first) / elapsed.
  // 0 with fewer than two samples or no elapsed time. Meaningful as a rate
  // for counters and as a slope for gauges (e.g. consumer lag growth).
  double RatePerSec(const std::string& key) const;

  size_t max_samples() const { return max_samples_; }

  // {"samples":N,"series":[{"name":...,"rate_per_s":...,"points":[[ts,v],...]},...]}
  // restricted to keys starting with `key_prefix` (empty = all).
  std::string ToJson(const std::string& key_prefix = "") const;

  void Clear();

 private:
  struct Ring {
    std::vector<Point> points;  // capacity max_samples_, circular
    size_t next = 0;            // insert position
    size_t size = 0;
  };

  void Append(const std::string& key, int64_t ts_ms, double value);
  std::vector<Point> Unroll(const Ring& ring) const;
  static double RateOf(const std::vector<Point>& points);

  mutable std::mutex mu_;
  size_t max_samples_;
  std::map<std::string, Ring> series_;
};

// Fixed-ramp ASCII sparkline of a value series (min..max scaled over
// " .:-=+*#%@"); a flat series renders at the low end. Used by SHOW HISTORY.
std::string AsciiSparkline(const std::vector<MetricsHistory::Point>& points);

}  // namespace sqs
