// Value: the dynamically-typed cell used in SamzaSQL rows ("tuple as array",
// the calling convention the paper's generated operators use — Figure 4).
// Supports the paper's data model (§3.1): integers, floating point, strings,
// booleans, timestamps/dates, and nestable arrays / maps.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <variant>
#include <vector>

namespace sqs {

enum class TypeKind {
  kNull = 0,
  kBool,
  kInt32,
  kInt64,     // also used for timestamps (epoch millis) and intervals (millis)
  kDouble,
  kString,
  kArray,
  kMap,
};

const char* TypeKindName(TypeKind kind);

class Value;
using ValueArray = std::vector<Value>;
using ValueMap = std::map<std::string, Value>;

// A Row is a tuple represented as a flat array of values, positionally
// matching a Schema. This is the representation SQL operators work over.
using Row = std::vector<Value>;

class Value {
 public:
  Value() : data_(std::monostate{}) {}
  explicit Value(bool b) : data_(b) {}
  explicit Value(int32_t i) : data_(i) {}
  explicit Value(int64_t i) : data_(i) {}
  explicit Value(double d) : data_(d) {}
  explicit Value(std::string s) : data_(std::move(s)) {}
  explicit Value(const char* s) : data_(std::string(s)) {}
  explicit Value(ValueArray a) : data_(std::make_shared<ValueArray>(std::move(a))) {}
  explicit Value(ValueMap m) : data_(std::make_shared<ValueMap>(std::move(m))) {}

  static Value Null() { return Value(); }

  TypeKind kind() const {
    switch (data_.index()) {
      case 0: return TypeKind::kNull;
      case 1: return TypeKind::kBool;
      case 2: return TypeKind::kInt32;
      case 3: return TypeKind::kInt64;
      case 4: return TypeKind::kDouble;
      case 5: return TypeKind::kString;
      case 6: return TypeKind::kArray;
      case 7: return TypeKind::kMap;
    }
    return TypeKind::kNull;
  }

  bool is_null() const { return data_.index() == 0; }
  bool is_numeric() const {
    TypeKind k = kind();
    return k == TypeKind::kInt32 || k == TypeKind::kInt64 || k == TypeKind::kDouble;
  }

  bool as_bool() const { return std::get<bool>(data_); }
  int32_t as_int32() const { return std::get<int32_t>(data_); }
  int64_t as_int64() const { return std::get<int64_t>(data_); }
  double as_double() const { return std::get<double>(data_); }
  const std::string& as_string() const { return std::get<std::string>(data_); }
  const ValueArray& as_array() const { return *std::get<std::shared_ptr<ValueArray>>(data_); }
  const ValueMap& as_map() const { return *std::get<std::shared_ptr<ValueMap>>(data_); }

  // Numeric widening accessors (null -> 0; used by aggregates and arithmetic
  // after the validator has proven numeric types).
  int64_t ToInt64() const;
  double ToDouble() const;

  // Total ordering for use in ordered containers and ORDER BY. Nulls sort
  // first; numerics compare by value across int/double; otherwise values of
  // different kinds compare by kind.
  int Compare(const Value& other) const;

  bool operator==(const Value& other) const { return Compare(other) == 0; }
  bool operator!=(const Value& other) const { return Compare(other) != 0; }
  bool operator<(const Value& other) const { return Compare(other) < 0; }

  std::string ToString() const;

  // Stable hash (used by the hash partitioner and GROUP BY key maps).
  size_t Hash() const;

 private:
  std::variant<std::monostate, bool, int32_t, int64_t, double, std::string,
               std::shared_ptr<ValueArray>, std::shared_ptr<ValueMap>>
      data_;
};

std::string RowToString(const Row& row);

struct ValueHasher {
  size_t operator()(const Value& v) const { return v.Hash(); }
};

struct RowHasher {
  size_t operator()(const Row& row) const {
    size_t h = 1469598103934665603ull;
    for (const Value& v : row) {
      h ^= v.Hash();
      h *= 1099511628211ull;
    }
    return h;
  }
};

}  // namespace sqs
