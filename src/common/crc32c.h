// CRC32C (Castagnoli, reflected polynomial 0x82F63B78): the checksum Kafka
// stores per record batch. Used here for end-to-end payload integrity — the
// producer stamps every log/changelog message, and fetch/restore paths
// verify before handing bytes to a task (docs/FAULT_TOLERANCE.md).
//
// Software table implementation: portable, no ISA extensions required. The
// extend form composes — Crc32cExtend(Crc32c(a, na), b, nb) equals
// Crc32c over the concatenation a||b — which is how the message checksum
// covers key and value without copying them into one buffer.
#pragma once

#include <cstddef>
#include <cstdint>

namespace sqs {

// CRC of `data[0, n)` continuing from a previous CRC (0 = fresh start).
uint32_t Crc32cExtend(uint32_t crc, const void* data, size_t n);

inline uint32_t Crc32c(const void* data, size_t n) {
  return Crc32cExtend(0, data, n);
}

}  // namespace sqs
