#include "common/metrics.h"

#include <cctype>

#include "common/clock.h"

namespace sqs {

int64_t Histogram::Min() const {
  int64_t v = min_.load(std::memory_order_relaxed);
  return v == INT64_MAX ? 0 : v;
}

int64_t Histogram::Max() const {
  int64_t v = max_.load(std::memory_order_relaxed);
  return v == INT64_MIN ? 0 : v;
}

int64_t Histogram::Percentile(double p) const {
  int64_t total = Count();
  if (total <= 0) return 0;
  if (p < 0) p = 0;
  if (p > 100) p = 100;
  // Rank of the target recording (1-based, ceil).
  int64_t rank = static_cast<int64_t>(p / 100.0 * static_cast<double>(total) + 0.5);
  if (rank < 1) rank = 1;
  if (rank > total) rank = total;
  int64_t cumulative = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    int64_t n = buckets_[i].load(std::memory_order_relaxed);
    if (n == 0) continue;
    cumulative += n;
    if (cumulative >= rank) {
      int64_t lo = BucketLowerBound(i);
      int64_t width = i + 1 < kNumBuckets ? BucketLowerBound(i + 1) - lo : 1;
      int64_t mid = lo + (width - 1) / 2;
      // Clamp to the observed range so small samples stay sharp.
      int64_t min = Min(), max = Max();
      if (mid < min) mid = min;
      if (mid > max) mid = max;
      return mid;
    }
  }
  return Max();
}

HistogramStats Histogram::GetStats() const {
  HistogramStats s;
  s.count = Count();
  s.sum = Sum();
  s.min = Min();
  s.max = Max();
  s.p50 = Percentile(50);
  s.p95 = Percentile(95);
  s.p99 = Percentile(99);
  // Cumulative occupied buckets. The inclusive upper bound of bucket i is
  // one below the next bucket's lower bound (values are integers); the last
  // bucket has no successor and is capped at INT64_MAX.
  int64_t cumulative = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    int64_t n = buckets_[i].load(std::memory_order_relaxed);
    if (n == 0) continue;
    cumulative += n;
    int64_t le =
        i + 1 < kNumBuckets ? BucketLowerBound(i + 1) - 1 : INT64_MAX;
    s.buckets.emplace_back(le, cumulative);
  }
  return s;
}

void Histogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(INT64_MAX, std::memory_order_relaxed);
  max_.store(INT64_MIN, std::memory_order_relaxed);
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot out;
  for (const auto& [k, c] : counters_) out.counters[k] = c->Get();
  for (const auto& [k, g] : gauges_) out.gauges[k] = g->Get();
  for (const auto& [k, t] : timers_) out.timers[k] = t->TotalNanos();
  for (const auto& [k, h] : histograms_) out.histograms[k] = h->GetStats();
  return out;
}

std::string ScopedMetrics::Sanitize(const std::string& segment) {
  std::string out = segment;
  for (char& c : out) {
    if (c == '.' || std::isspace(static_cast<unsigned char>(c))) c = '_';
  }
  return out;
}

ScopedTimer::ScopedTimer(Timer& timer)
    : timer_(timer), start_nanos_(MonotonicNanos()) {}

ScopedTimer::~ScopedTimer() { timer_.Add(MonotonicNanos() - start_nanos_); }

}  // namespace sqs
