#include "common/metrics.h"

#include "common/clock.h"

namespace sqs {

ScopedTimer::ScopedTimer(Timer& timer)
    : timer_(timer), start_nanos_(MonotonicNanos()) {}

ScopedTimer::~ScopedTimer() { timer_.Add(MonotonicNanos() - start_nanos_); }

}  // namespace sqs
