// Minimal metrics registry: counters, gauges, and busy-time timers.
// Containers report per-task metrics here; the bench harness reads
// messages-processed counters and busy-time timers to compute throughput
// the way the paper does (avg container throughput x container count).
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace sqs {

class Counter {
 public:
  void Inc(int64_t delta = 1) { value_.fetch_add(delta, std::memory_order_relaxed); }
  int64_t Get() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  int64_t Get() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

// Accumulates nanoseconds of busy time.
class Timer {
 public:
  void Add(int64_t nanos) { nanos_.fetch_add(nanos, std::memory_order_relaxed); }
  int64_t TotalNanos() const { return nanos_.load(std::memory_order_relaxed); }
  void Reset() { nanos_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> nanos_{0};
};

class MetricsRegistry {
 public:
  Counter& GetCounter(const std::string& name) {
    std::lock_guard<std::mutex> lock(mu_);
    auto& slot = counters_[name];
    if (!slot) slot = std::make_unique<Counter>();
    return *slot;
  }
  Gauge& GetGauge(const std::string& name) {
    std::lock_guard<std::mutex> lock(mu_);
    auto& slot = gauges_[name];
    if (!slot) slot = std::make_unique<Gauge>();
    return *slot;
  }
  Timer& GetTimer(const std::string& name) {
    std::lock_guard<std::mutex> lock(mu_);
    auto& slot = timers_[name];
    if (!slot) slot = std::make_unique<Timer>();
    return *slot;
  }

  std::map<std::string, int64_t> SnapshotCounters() const {
    std::lock_guard<std::mutex> lock(mu_);
    std::map<std::string, int64_t> out;
    for (const auto& [k, c] : counters_) out[k] = c->Get();
    return out;
  }

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Timer>> timers_;
};

// RAII scope that adds elapsed wall time to a Timer.
class ScopedTimer {
 public:
  explicit ScopedTimer(Timer& timer);
  ~ScopedTimer();
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Timer& timer_;
  int64_t start_nanos_;
};

}  // namespace sqs
