// Metrics registry: counters, gauges, busy-time timers, and log-bucketed
// latency histograms, addressed by dot-separated scoped names
// (`job.task.operator.metric` — see docs/METRICS.md for the full scheme).
// Containers report per-task and per-operator metrics here; the bench
// harness reads processed counters and busy-time timers from the same
// snapshots to compute throughput the way the paper does (avg container
// throughput x container count), so benches and production share one
// measurement path.
#pragma once

#include <atomic>
#include <bit>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace sqs {

class Counter {
 public:
  void Inc(int64_t delta = 1) { value_.fetch_add(delta, std::memory_order_relaxed); }
  int64_t Get() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  int64_t Get() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

// Accumulates nanoseconds of busy time.
class Timer {
 public:
  void Add(int64_t nanos) { nanos_.fetch_add(nanos, std::memory_order_relaxed); }
  int64_t TotalNanos() const { return nanos_.load(std::memory_order_relaxed); }
  void Reset() { nanos_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> nanos_{0};
};

// Aggregate view of a Histogram at snapshot time. Percentile values are
// bucket midpoints, so they carry the histogram's bounded relative error.
struct HistogramStats {
  int64_t count = 0;
  int64_t sum = 0;
  int64_t min = 0;
  int64_t max = 0;
  int64_t p50 = 0;
  int64_t p95 = 0;
  int64_t p99 = 0;
  // Occupied buckets as (inclusive upper bound, cumulative count) pairs:
  // bounds strictly increasing, cumulative counts non-decreasing, the last
  // cumulative count covering every recording seen by the scan. This is what
  // the Prometheus exposition renders as `_bucket{le="..."}` series.
  std::vector<std::pair<int64_t, int64_t>> buckets;
};

// Log-bucketed histogram with a lock-free record path (HdrHistogram-style
// layout: values < 16 are exact, above that each power of two is split into
// 16 sub-buckets, bounding relative error at 1/16 ≈ 6.25%). Record() is a
// handful of relaxed atomic adds, safe to call concurrently from every
// container thread; readers see a weakly consistent but monotone view.
class Histogram {
 public:
  static constexpr int kSubBucketBits = 4;
  static constexpr int kSubBuckets = 1 << kSubBucketBits;  // 16
  static constexpr int kNumBuckets = (64 - kSubBucketBits + 1) * kSubBuckets;

  void Record(int64_t value) {
    buckets_[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
    AtomicMin(min_, value);
    AtomicMax(max_, value);
  }

  int64_t Count() const { return count_.load(std::memory_order_relaxed); }
  int64_t Sum() const { return sum_.load(std::memory_order_relaxed); }
  int64_t Min() const;
  int64_t Max() const;

  // Value at percentile p (0..100): the midpoint of the bucket containing
  // the p-th ranked recording, clamped to [Min(), Max()]. Returns 0 when
  // nothing has been recorded.
  int64_t Percentile(double p) const;

  HistogramStats GetStats() const;

  void Reset();

  // Bucket layout (exposed for tests): values <= 0 land in bucket 0.
  static int BucketIndex(int64_t value) {
    uint64_t v = value <= 0 ? 0 : static_cast<uint64_t>(value);
    if (v < kSubBuckets) return static_cast<int>(v);
    int top = 63 - std::countl_zero(v);  // index of the most significant bit
    return (top - kSubBucketBits + 1) * kSubBuckets +
           static_cast<int>((v >> (top - kSubBucketBits)) & (kSubBuckets - 1));
  }
  static int64_t BucketLowerBound(int index) {
    if (index < kSubBuckets) return index;
    int block = index / kSubBuckets;
    int sub = index % kSubBuckets;
    int top = block + kSubBucketBits - 1;
    return static_cast<int64_t>(kSubBuckets + sub) << (top - kSubBucketBits);
  }

 private:
  static void AtomicMin(std::atomic<int64_t>& slot, int64_t v) {
    int64_t cur = slot.load(std::memory_order_relaxed);
    while (v < cur && !slot.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  static void AtomicMax(std::atomic<int64_t>& slot, int64_t v) {
    int64_t cur = slot.load(std::memory_order_relaxed);
    while (v > cur && !slot.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }

  std::atomic<int64_t> buckets_[kNumBuckets] = {};
  std::atomic<int64_t> count_{0};
  std::atomic<int64_t> sum_{0};
  std::atomic<int64_t> min_{INT64_MAX};
  std::atomic<int64_t> max_{INT64_MIN};
};

// One consistent view of every metric family. "Consistent" means a single
// pass under the registry lock over a stable set of instruments; individual
// atomic reads are relaxed, so a snapshot taken while writers are active
// can be mid-update between metrics (documented weak consistency).
struct MetricsSnapshot {
  std::map<std::string, int64_t> counters;
  std::map<std::string, int64_t> gauges;
  std::map<std::string, int64_t> timers;  // total busy nanoseconds
  std::map<std::string, HistogramStats> histograms;

  bool empty() const {
    return counters.empty() && gauges.empty() && timers.empty() && histograms.empty();
  }
};

class MetricsRegistry {
 public:
  Counter& GetCounter(const std::string& name) {
    std::lock_guard<std::mutex> lock(mu_);
    auto& slot = counters_[name];
    if (!slot) slot = std::make_unique<Counter>();
    return *slot;
  }
  Gauge& GetGauge(const std::string& name) {
    std::lock_guard<std::mutex> lock(mu_);
    auto& slot = gauges_[name];
    if (!slot) slot = std::make_unique<Gauge>();
    return *slot;
  }
  Timer& GetTimer(const std::string& name) {
    std::lock_guard<std::mutex> lock(mu_);
    auto& slot = timers_[name];
    if (!slot) slot = std::make_unique<Timer>();
    return *slot;
  }
  Histogram& GetHistogram(const std::string& name) {
    std::lock_guard<std::mutex> lock(mu_);
    auto& slot = histograms_[name];
    if (!slot) slot = std::make_unique<Histogram>();
    return *slot;
  }

  // All four families in one pass (replaces the old SnapshotCounters, which
  // silently ignored gauges and timers).
  MetricsSnapshot Snapshot() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Timer>> timers_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

// Lightweight view of a registry under a dot-separated name prefix, so a
// layer can mint `<scope>.<metric>` instruments without string-building at
// every call site. Scope segments are sanitized ('.' and whitespace become
// '_') so task names like "Partition 0" stay one segment.
class ScopedMetrics {
 public:
  ScopedMetrics() = default;
  ScopedMetrics(MetricsRegistry* registry, const std::string& scope)
      : registry_(registry), scope_(Sanitize(scope)) {}

  bool bound() const { return registry_ != nullptr; }
  const std::string& scope() const { return scope_; }

  // Child scope: `<scope>.<segment>`.
  ScopedMetrics Sub(const std::string& segment) const {
    ScopedMetrics child;
    child.registry_ = registry_;
    child.scope_ = scope_.empty() ? Sanitize(segment) : scope_ + "." + Sanitize(segment);
    return child;
  }

  Counter& counter(const std::string& name) const {
    return registry_->GetCounter(Name(name));
  }
  Gauge& gauge(const std::string& name) const { return registry_->GetGauge(Name(name)); }
  Timer& timer(const std::string& name) const { return registry_->GetTimer(Name(name)); }
  Histogram& histogram(const std::string& name) const {
    return registry_->GetHistogram(Name(name));
  }

  // Replaces '.' and whitespace inside a single segment with '_'.
  static std::string Sanitize(const std::string& segment);

 private:
  std::string Name(const std::string& metric) const {
    return scope_.empty() ? metric : scope_ + "." + metric;
  }

  MetricsRegistry* registry_ = nullptr;
  std::string scope_;
};

// RAII scope that adds elapsed wall time to a Timer.
class ScopedTimer {
 public:
  explicit ScopedTimer(Timer& timer);
  ~ScopedTimer();
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Timer& timer_;
  int64_t start_nanos_;
};

}  // namespace sqs
