// Property-based configuration, mirroring Samza's job configuration files.
// A SamzaSQL query compiles into one of these (JobConfigGenerator), and the
// task side reads it back at init — the paper's two-step planning (§4.2).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"

namespace sqs {

class Config {
 public:
  Config() = default;
  explicit Config(std::map<std::string, std::string> props)
      : props_(std::move(props)) {}

  void Set(const std::string& key, std::string value) {
    props_[key] = std::move(value);
  }
  void SetInt(const std::string& key, int64_t value) {
    props_[key] = std::to_string(value);
  }
  void SetBool(const std::string& key, bool value) {
    props_[key] = value ? "true" : "false";
  }

  bool Has(const std::string& key) const { return props_.count(key) > 0; }

  std::string Get(const std::string& key, const std::string& def = "") const {
    auto it = props_.find(key);
    return it == props_.end() ? def : it->second;
  }
  int64_t GetInt(const std::string& key, int64_t def = 0) const;
  double GetDouble(const std::string& key, double def = 0.0) const;
  bool GetBool(const std::string& key, bool def = false) const;

  // All keys with the given prefix, with the prefix stripped.
  std::map<std::string, std::string> Subset(const std::string& prefix) const;

  // Comma-separated list values.
  std::vector<std::string> GetList(const std::string& key) const;
  void SetList(const std::string& key, const std::vector<std::string>& values);

  const std::map<std::string, std::string>& properties() const { return props_; }

  // Serialize to / parse from "key=value\n" lines (the .properties format
  // Samza jobs ship with).
  std::string ToProperties() const;
  static Result<Config> FromProperties(const std::string& text);

 private:
  std::map<std::string, std::string> props_;
};

}  // namespace sqs
