// MetricsReporter: turns MetricsRegistry snapshots into (a) JSON lines for
// offline analysis and (b) an aligned human-readable table (the shell's
// SHOW METRICS). A reporter instance wraps one registry and emits to a
// stream on a clock-driven interval; the free functions are the shared
// formatting path so the shell, the reporter, and tests render identically.
#pragma once

#include <cstdint>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/metrics.h"

namespace sqs {

// Union of several snapshots (e.g. one per job). Same-name collisions:
// counters and timers sum, gauges keep the latest (last snapshot wins),
// histograms keep the stats with the larger count (bucket data is not
// preserved across snapshots, so true merging is impossible post-snapshot —
// avoided in practice because each job has its own name scope).
MetricsSnapshot MergeSnapshots(const std::vector<MetricsSnapshot>& snapshots);

// One JSON object per metric per line, e.g.
//   {"ts_ms":170...,"name":"job.container0.processed","type":"counter","value":42}
// Histogram lines carry count/sum/min/max/p50/p95/p99 instead of "value".
std::string SnapshotToJsonLines(const MetricsSnapshot& snapshot, int64_t ts_ms);

// Aligned table with one row per metric: name | type | value. Histograms
// render their count and percentiles in the value column.
std::string SnapshotToTable(const MetricsSnapshot& snapshot);

class MetricsReporter {
 public:
  // Emits JSON lines for `registry` to `out` every `interval_ms` of clock
  // time. `out` must outlive the reporter.
  MetricsReporter(std::shared_ptr<MetricsRegistry> registry, std::ostream* out,
                  int64_t interval_ms, std::shared_ptr<Clock> clock = nullptr);

  // File-backed variant: the reporter owns the stream, appends to `path`,
  // and — when `max_bytes` > 0 — rolls the file to `<path>.1` (replacing any
  // previous roll) before a report would push it past `max_bytes`, so
  // long-running jobs keep at most ~2x max_bytes of metrics on disk.
  MetricsReporter(std::shared_ptr<MetricsRegistry> registry, std::string path,
                  int64_t interval_ms, int64_t max_bytes,
                  std::shared_ptr<Clock> clock = nullptr);

  // Unregisters the crash-flush hook the constructors installed (the fatal
  // signal / terminate handlers flush every live reporter so the tail of
  // the JSON-lines file survives a crash — see common/flightrec.h).
  ~MetricsReporter();

  // Emits if at least interval_ms elapsed since the last report. Returns
  // true when a report was written.
  bool MaybeReport();

  // Unconditional snapshot + emit (also the flush-on-shutdown path).
  void ReportNow();

  int64_t interval_ms() const { return interval_ms_; }
  // Bytes currently in the active file (file-backed reporters only).
  int64_t bytes_written() const { return bytes_written_; }
  const std::string& path() const { return path_; }

 private:
  void Emit(const std::string& payload);

  std::shared_ptr<MetricsRegistry> registry_;
  std::ostream* out_;
  int64_t interval_ms_;
  std::shared_ptr<Clock> clock_;
  int64_t last_report_ms_;
  // File-backed mode.
  std::string path_;
  int64_t max_bytes_ = 0;
  int64_t bytes_written_ = 0;
  std::ofstream file_;
};

}  // namespace sqs
