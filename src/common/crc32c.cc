#include "common/crc32c.h"

namespace sqs {
namespace {

// 8 slices of 256 entries each: slicing-by-8 processes 8 bytes per step
// with table lookups only, ~3-4x the single-table byte loop — messages are
// checksummed twice (stamp + verify), so this is on the hot send path.
struct Crc32cTables {
  uint32_t t[8][256];
  Crc32cTables() {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int k = 0; k < 8; ++k) {
        crc = (crc >> 1) ^ ((crc & 1) ? 0x82f63b78u : 0);
      }
      t[0][i] = crc;
    }
    for (uint32_t i = 0; i < 256; ++i) {
      for (int s = 1; s < 8; ++s) {
        t[s][i] = (t[s - 1][i] >> 8) ^ t[0][t[s - 1][i] & 0xff];
      }
    }
  }
};

const Crc32cTables& Tables() {
  static const Crc32cTables tables;
  return tables;
}

}  // namespace

uint32_t Crc32cExtend(uint32_t crc, const void* data, size_t n) {
  const Crc32cTables& tb = Tables();
  const uint8_t* p = static_cast<const uint8_t*>(data);
  crc = ~crc;
  while (n >= 8) {
    uint32_t lo = crc ^ (static_cast<uint32_t>(p[0]) |
                         static_cast<uint32_t>(p[1]) << 8 |
                         static_cast<uint32_t>(p[2]) << 16 |
                         static_cast<uint32_t>(p[3]) << 24);
    crc = tb.t[7][lo & 0xff] ^ tb.t[6][(lo >> 8) & 0xff] ^
          tb.t[5][(lo >> 16) & 0xff] ^ tb.t[4][lo >> 24] ^ tb.t[3][p[4]] ^
          tb.t[2][p[5]] ^ tb.t[1][p[6]] ^ tb.t[0][p[7]];
    p += 8;
    n -= 8;
  }
  while (n--) {
    crc = tb.t[0][(crc ^ *p++) & 0xff] ^ (crc >> 8);
  }
  return ~crc;
}

}  // namespace sqs
