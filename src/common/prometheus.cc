#include "common/prometheus.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <map>
#include <sstream>
#include <vector>

namespace sqs {

namespace {

bool ValidNameChar(char c, bool first) {
  if (std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == ':') {
    return true;
  }
  return !first && std::isdigit(static_cast<unsigned char>(c));
}

std::vector<std::string> SplitDots(const std::string& name) {
  std::vector<std::string> segments;
  size_t start = 0;
  while (start <= name.size()) {
    size_t dot = name.find('.', start);
    if (dot == std::string::npos) {
      segments.push_back(name.substr(start));
      break;
    }
    segments.push_back(name.substr(start, dot - start));
    start = dot + 1;
  }
  return segments;
}

bool AllDigits(const std::string& s) {
  if (s.empty()) return false;
  for (char c : s) {
    if (!std::isdigit(static_cast<unsigned char>(c))) return false;
  }
  return true;
}

// Split a dotted internal name into the leaf metric and the label set.
// The per-partition lag gauges (`<scope>.lag.<topic>.<partition>`) get the
// dedicated `consumer_lag` family with topic/partition labels — their leaf
// segment is a bare partition number, which cannot name a family.
struct FamilyKey {
  std::string leaf;  // pre-sanitization metric leaf ("processed", ...)
  // Ordered label pairs, values unescaped.
  std::vector<std::pair<std::string, std::string>> labels;
};

FamilyKey SplitName(const std::string& name) {
  FamilyKey key;
  std::vector<std::string> segments = SplitDots(name);
  if (segments.size() >= 4 && AllDigits(segments.back()) &&
      segments[segments.size() - 3] == "lag") {
    key.leaf = "consumer_lag";
    std::string scope;
    for (size_t i = 0; i + 3 < segments.size(); ++i) {
      if (i) scope += '.';
      scope += segments[i];
    }
    key.labels.emplace_back("scope", scope);
    key.labels.emplace_back("topic", segments[segments.size() - 2]);
    key.labels.emplace_back("partition", segments.back());
    return key;
  }
  // Per-partition freshness / backlog gauges
  // (`<scope>.{freshness,backlog}.<topic>.<partition>`, docs/LATENCY.md)
  // follow the consumer-lag shape. They get their own families — named
  // apart from the container rollup leaves `freshness_lag_ms` /
  // `backlog_bytes` so one family never mixes label sets.
  if (segments.size() >= 4 && AllDigits(segments.back()) &&
      (segments[segments.size() - 3] == "freshness" ||
       segments[segments.size() - 3] == "backlog")) {
    key.leaf = segments[segments.size() - 3] == "freshness"
                   ? "partition_freshness_ms"
                   : "partition_backlog_bytes";
    std::string scope;
    for (size_t i = 0; i + 3 < segments.size(); ++i) {
      if (i) scope += '.';
      scope += segments[i];
    }
    key.labels.emplace_back("scope", scope);
    key.labels.emplace_back("topic", segments[segments.size() - 2]);
    key.labels.emplace_back("partition", segments.back());
    return key;
  }
  // Per-operation retry counters (`<scope>.retry.<op>.{retries,giveups}`,
  // op = send|fetch|changelog|checkpoint) collapse into one retries_total /
  // giveups_total family with the operation as a label, so alerting can
  // aggregate or slice without enumerating operations.
  if (segments.size() >= 4 && segments[segments.size() - 3] == "retry" &&
      (segments.back() == "retries" || segments.back() == "giveups")) {
    key.leaf = segments.back();
    std::string scope;
    for (size_t i = 0; i + 3 < segments.size(); ++i) {
      if (i) scope += '.';
      scope += segments[i];
    }
    key.labels.emplace_back("scope", scope);
    key.labels.emplace_back("op", segments[segments.size() - 2]);
    return key;
  }
  key.leaf = segments.back();
  if (segments.size() > 1) {
    key.labels.emplace_back("scope",
                            name.substr(0, name.size() - key.leaf.size() - 1));
  }
  return key;
}

std::string FormatLabels(
    const std::vector<std::pair<std::string, std::string>>& labels,
    const std::string& extra_key = "", const std::string& extra_value = "") {
  if (labels.empty() && extra_key.empty()) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ',';
    first = false;
    out += PrometheusName(k) + "=\"" + PrometheusLabelValue(v) + "\"";
  }
  if (!extra_key.empty()) {
    if (!first) out += ',';
    out += extra_key + "=\"" + extra_value + "\"";
  }
  out += '}';
  return out;
}

std::string FormatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

// One family: a # TYPE header plus its accumulated sample lines.
struct Family {
  std::string type;  // "counter" | "gauge" | "histogram"
  std::string help;
  std::vector<std::string> lines;
};

void AddSample(std::map<std::string, Family>& families, const std::string& name,
               const std::string& type, const std::string& help,
               std::string line) {
  Family& fam = families[name];
  if (fam.type.empty()) {
    fam.type = type;
    fam.help = help;
  }
  fam.lines.push_back(std::move(line));
}

}  // namespace

std::string PrometheusName(const std::string& raw) {
  std::string out;
  out.reserve(raw.size() + 1);
  for (size_t i = 0; i < raw.size(); ++i) {
    char c = raw[i];
    if (ValidNameChar(c, out.empty())) {
      out += c;
    } else if (out.empty() && std::isdigit(static_cast<unsigned char>(c))) {
      out += '_';
      out += c;
    } else {
      out += '_';
    }
  }
  if (out.empty()) out = "_";
  return out;
}

std::string PrometheusLabelValue(const std::string& raw) {
  std::string out;
  out.reserve(raw.size());
  for (char c : raw) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

std::string RenderPrometheus(const MetricsSnapshot& snapshot) {
  std::map<std::string, Family> families;

  for (const auto& [name, value] : snapshot.counters) {
    FamilyKey key = SplitName(name);
    std::string fam = "samzasql_" + PrometheusName(key.leaf) + "_total";
    AddSample(families, fam, "counter",
              "monotone total of internal counter '" + key.leaf + "'",
              fam + FormatLabels(key.labels) + " " + std::to_string(value));
  }
  for (const auto& [name, value] : snapshot.gauges) {
    FamilyKey key = SplitName(name);
    std::string fam = "samzasql_" + PrometheusName(key.leaf);
    AddSample(families, fam, "gauge",
              "last value of internal gauge '" + key.leaf + "'",
              fam + FormatLabels(key.labels) + " " + std::to_string(value));
  }
  for (const auto& [name, nanos] : snapshot.timers) {
    FamilyKey key = SplitName(name);
    std::string fam = "samzasql_" + PrometheusName(key.leaf) + "_seconds_total";
    AddSample(families, fam, "counter",
              "accumulated busy time of internal timer '" + key.leaf + "'",
              fam + FormatLabels(key.labels) + " " +
                  FormatDouble(static_cast<double>(nanos) / 1e9));
  }
  for (const auto& [name, stats] : snapshot.histograms) {
    FamilyKey key = SplitName(name);
    std::string base = "samzasql_" + PrometheusName(key.leaf);
    Family& fam = families[base];
    if (fam.type.empty()) {
      fam.type = "histogram";
      fam.help = "log-bucketed distribution of '" + key.leaf + "'";
    }
    // Cumulative buckets; +Inf must agree with `_count`, and a racing
    // Record() between the bucket scan and the count read can leave either
    // one ahead — take the max so the series stays monotone.
    int64_t last_cumulative = stats.buckets.empty() ? 0 : stats.buckets.back().second;
    int64_t total = std::max(stats.count, last_cumulative);
    for (const auto& [le, cumulative] : stats.buckets) {
      fam.lines.push_back(base + "_bucket" +
                          FormatLabels(key.labels, "le", std::to_string(le)) +
                          " " + std::to_string(std::min(cumulative, total)));
    }
    fam.lines.push_back(base + "_bucket" +
                        FormatLabels(key.labels, "le", "+Inf") + " " +
                        std::to_string(total));
    fam.lines.push_back(base + "_sum" + FormatLabels(key.labels) + " " +
                        std::to_string(stats.sum));
    fam.lines.push_back(base + "_count" + FormatLabels(key.labels) + " " +
                        std::to_string(total));
    const std::pair<const char*, int64_t> range[] = {{"min", stats.min},
                                                     {"max", stats.max}};
    for (const auto& [suffix, value] : range) {
      std::string gname = base + "_" + suffix;
      AddSample(families, gname, "gauge",
                std::string("recorded ") + suffix + " of '" + key.leaf + "'",
                gname + FormatLabels(key.labels) + " " + std::to_string(value));
    }
  }

  std::ostringstream os;
  for (const auto& [name, fam] : families) {
    std::string help = fam.help;
    // HELP escaping: backslash and newline only (spec).
    std::string escaped;
    for (char c : help) {
      if (c == '\\') escaped += "\\\\";
      else if (c == '\n') escaped += "\\n";
      else escaped += c;
    }
    os << "# HELP " << name << " " << escaped << "\n";
    os << "# TYPE " << name << " " << fam.type << "\n";
    for (const std::string& line : fam.lines) os << line << "\n";
  }
  return os.str();
}

}  // namespace sqs
