#include "sql/planner.h"

#include <algorithm>
#include <set>

namespace sqs::sql {

namespace {

// Resolution scope: the fields visible to expressions over a node's output,
// with the qualifier (stream/table alias) each field came from.
struct ScopeField {
  std::string qualifier;
  std::string name;
  FieldType type;
};

struct Scope {
  std::vector<ScopeField> fields;

  ColumnResolver Resolver() const {
    return [this](const std::string& qualifier,
                  const std::string& column) -> Result<std::pair<int, FieldType>> {
      int found = -1;
      for (size_t i = 0; i < fields.size(); ++i) {
        const ScopeField& f = fields[i];
        if (f.name != column) continue;
        if (!qualifier.empty() && f.qualifier != qualifier) continue;
        if (found >= 0) {
          return Status::ValidationError("ambiguous column: " + column);
        }
        found = static_cast<int>(i);
      }
      if (found < 0) {
        return Status::ValidationError(
            "unknown column: " + (qualifier.empty() ? column : qualifier + "." + column));
      }
      return std::make_pair(found, fields[static_cast<size_t>(found)].type);
    };
  }
};

Scope ScopeFor(const LogicalNode& node, const std::string& qualifier) {
  Scope scope;
  for (const Field& f : node.schema->fields()) {
    scope.fields.push_back({qualifier, f.name, f.type});
  }
  return scope;
}

ExprPtr MakeIndexRef(int index, FieldType type) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kColumnRef;
  e->resolved_index = index;
  e->resolved_type = type;
  return e;
}

// A select item's output name: alias, else the column name for plain refs,
// else the function name, else EXPR$<n>.
std::string OutputName(const SelectItem& item, size_t position) {
  if (!item.alias.empty()) return item.alias;
  const Expr& e = *item.expr;
  if (e.kind == ExprKind::kColumnRef) return e.column;
  if (e.kind == ExprKind::kFuncCall || e.kind == ExprKind::kAggCall ||
      e.kind == ExprKind::kWindowCall) {
    return e.func_name;
  }
  return "EXPR$" + std::to_string(position);
}

bool IsGroupWindowCall(const Expr& e) {
  if (e.kind != ExprKind::kFuncCall) return false;
  if (e.func_name == "TUMBLE" || e.func_name == "HOP") return true;
  // FLOOR(ts TO unit) in GROUP BY acts as a tumbling window over the unit.
  if (e.func_name == "FLOOR" && e.children.size() == 2 &&
      e.children[1]->kind == ExprKind::kLiteral &&
      e.children[1]->literal.kind() == TypeKind::kString) {
    return true;
  }
  return false;
}

Result<int64_t> LiteralMillis(const Expr& e, const char* what) {
  if (e.kind != ExprKind::kLiteral || !e.literal.is_numeric()) {
    return Status::ValidationError(std::string(what) + " must be an interval literal");
  }
  int64_t v = e.literal.ToInt64();
  if (v <= 0) return Status::ValidationError(std::string(what) + " must be positive");
  return v;
}

bool ContainsStreamScan(const LogicalNode& node) {
  if (node.kind == LogicalKind::kScan) return node.source.is_stream();
  for (const auto& input : node.inputs) {
    if (ContainsStreamScan(*input)) return true;
  }
  return false;
}

// Planner-internal context for one SELECT.
class SelectPlanner {
 public:
  SelectPlanner(const Catalog& catalog, const SelectStmt& stmt)
      : catalog_(catalog), stmt_(stmt) {}

  Result<LogicalNodePtr> Plan();

 private:
  Result<std::pair<LogicalNodePtr, std::string>> PlanTableRef(const TableRef& ref);
  Result<LogicalNodePtr> PlanJoin(LogicalNodePtr left, const JoinClause& clause);
  Result<LogicalNodePtr> PlanAggregate(LogicalNodePtr input);
  Result<LogicalNodePtr> PlanSlidingWindow(LogicalNodePtr input);
  Result<LogicalNodePtr> PlanProject(LogicalNodePtr input,
                                     std::vector<ExprPtr> resolved_items,
                                     const std::vector<std::string>& names);

  // Rewrites a resolved expression tree against the aggregate output schema:
  // group exprs -> group columns, agg calls -> agg columns, window group
  // call / START / END -> window bound columns. Fails on stray input refs.
  Result<ExprPtr> RewriteOverAggregate(const Expr& e, const LogicalNode& agg,
                                       const std::vector<std::string>& group_keys,
                                       const std::vector<std::string>& agg_keys);

  const Catalog& catalog_;
  const SelectStmt& stmt_;
  Scope scope_;          // scope over the FROM/JOIN result
  bool any_stream_source_ = false;
};

Result<std::pair<LogicalNodePtr, std::string>> SelectPlanner::PlanTableRef(
    const TableRef& ref) {
  if (ref.subquery) {
    // STREAM inside a subquery has no effect (paper §3.3) — the planner
    // decides streamness at the top level.
    SelectPlanner sub(catalog_, *ref.subquery);
    SQS_ASSIGN_OR_RETURN(node, sub.Plan());
    if (ContainsStreamScan(*node)) any_stream_source_ = true;
    std::string qualifier = ref.alias;  // may be empty
    return std::make_pair(std::move(node), qualifier);
  }
  if (catalog_.HasView(ref.name)) {
    SQS_ASSIGN_OR_RETURN(view, catalog_.GetView(ref.name));
    SelectPlanner sub(catalog_, *view.select);
    SQS_ASSIGN_OR_RETURN(node, sub.Plan());
    if (ContainsStreamScan(*node)) any_stream_source_ = true;
    if (!view.column_names.empty()) {
      if (view.column_names.size() != node->schema->num_fields()) {
        return Status::ValidationError("view " + ref.name + " column list arity " +
                                       std::to_string(view.column_names.size()) +
                                       " != query arity " +
                                       std::to_string(node->schema->num_fields()));
      }
      // Rename via an identity projection.
      std::vector<Field> fields;
      std::vector<ExprPtr> exprs;
      for (size_t i = 0; i < view.column_names.size(); ++i) {
        const Field& f = node->schema->field(i);
        fields.push_back({view.column_names[i], f.type, f.nullable});
        exprs.push_back(MakeIndexRef(static_cast<int>(i), f.type));
      }
      auto project = LogicalNode::Make(LogicalKind::kProject);
      project->inputs.push_back(node);
      project->exprs = std::move(exprs);
      project->schema = Schema::Make(ref.name, std::move(fields));
      project->rowtime_index = node->rowtime_index;
      project->is_stream = node->is_stream;
      node = project;
    }
    return std::make_pair(std::move(node), ref.EffectiveName());
  }
  SQS_ASSIGN_OR_RETURN(source, catalog_.GetSource(ref.name));
  auto scan = LogicalNode::Make(LogicalKind::kScan);
  scan->source = source;
  scan->schema = source.schema;
  scan->scan_as_stream = source.is_stream();
  scan->is_stream = source.is_stream();
  if (!source.rowtime_column.empty()) {
    auto idx = source.schema->FieldIndex(source.rowtime_column);
    scan->rowtime_index = idx ? static_cast<int>(*idx) : -1;
  }
  if (source.is_stream()) any_stream_source_ = true;
  return std::make_pair(std::move(scan), ref.EffectiveName());
}

Result<LogicalNodePtr> SelectPlanner::PlanJoin(LogicalNodePtr left,
                                               const JoinClause& clause) {
  SQS_ASSIGN_OR_RETURN(right_pair, PlanTableRef(clause.table));
  LogicalNodePtr right = right_pair.first;
  const std::string right_qual =
      right_pair.second.empty() ? clause.table.EffectiveName() : right_pair.second;

  const size_t left_arity = left->schema->num_fields();

  // Combined scope: current scope fields then right fields.
  Scope combined = scope_;
  for (const Field& f : right->schema->fields()) {
    combined.fields.push_back({right_qual, f.name, f.type});
  }

  ExprPtr condition = clause.condition->Clone();
  SQS_RETURN_IF_ERROR(ResolveExpr(*condition, combined.Resolver(), false));
  if (condition->resolved_type.kind != TypeKind::kBool) {
    return Status::ValidationError("join condition must be boolean");
  }

  auto join = LogicalNode::Make(LogicalKind::kJoin);
  join->inputs.push_back(left);
  join->inputs.push_back(right);

  // Classify conjuncts.
  std::vector<ExprPtr> residual;
  bool have_time_bound = false;
  for (ExprPtr& conj : SplitConjuncts(*condition)) {
    const Expr& e = *conj;
    // Equi key: colL = colR across the boundary.
    if (e.kind == ExprKind::kBinary && e.binary_op == BinaryOp::kEq &&
        e.children[0]->kind == ExprKind::kColumnRef &&
        e.children[1]->kind == ExprKind::kColumnRef) {
      int a = e.children[0]->resolved_index;
      int b = e.children[1]->resolved_index;
      bool a_left = a < static_cast<int>(left_arity);
      bool b_left = b < static_cast<int>(left_arity);
      if (a_left != b_left) {
        int l = a_left ? a : b;
        int r = (a_left ? b : a) - static_cast<int>(left_arity);
        join->equi_keys.emplace_back(l, r);
        continue;
      }
    }
    // Time bound: ts1 BETWEEN ts2 - I1 AND ts2 + I2 (either orientation).
    if (e.kind == ExprKind::kBetween && e.children[0]->kind == ExprKind::kColumnRef) {
      auto extract = [](const Expr& bound, int& ts_index,
                        int64_t& millis, bool& is_sub) -> bool {
        if (bound.kind == ExprKind::kBinary &&
            (bound.binary_op == BinaryOp::kSub || bound.binary_op == BinaryOp::kAdd) &&
            bound.children[0]->kind == ExprKind::kColumnRef &&
            bound.children[1]->kind == ExprKind::kLiteral) {
          ts_index = bound.children[0]->resolved_index;
          millis = bound.children[1]->literal.ToInt64();
          is_sub = bound.binary_op == BinaryOp::kSub;
          return true;
        }
        if (bound.kind == ExprKind::kColumnRef) {
          ts_index = bound.resolved_index;
          millis = 0;
          is_sub = false;
          return true;
        }
        return false;
      };
      int lo_ts, hi_ts;
      int64_t lo_ms, hi_ms;
      bool lo_sub, hi_sub;
      if (extract(*e.children[1], lo_ts, lo_ms, lo_sub) &&
          extract(*e.children[2], hi_ts, hi_ms, hi_sub) && lo_ts == hi_ts) {
        int subject = e.children[0]->resolved_index;
        bool subject_left = subject < static_cast<int>(left_arity);
        bool other_left = lo_ts < static_cast<int>(left_arity);
        if (subject_left != other_left && lo_sub && !hi_sub) {
          // subject.ts BETWEEN other.ts - lo_ms AND other.ts + hi_ms
          if (subject_left) {
            join->left_ts_index = subject;
            join->right_ts_index = lo_ts - static_cast<int>(left_arity);
            join->window_before_ms = lo_ms;
            join->window_after_ms = hi_ms;
          } else {
            join->left_ts_index = lo_ts;
            join->right_ts_index = subject - static_cast<int>(left_arity);
            // left.ts - right.ts in [-hi_ms, +lo_ms]
            join->window_before_ms = hi_ms;
            join->window_after_ms = lo_ms;
          }
          have_time_bound = true;
          continue;
        }
      }
    }
    residual.push_back(std::move(conj));
  }
  join->residual = CombineConjuncts(std::move(residual));

  // Join type and validation.
  if (right->is_stream) {
    join->join_type = JoinType::kStreamStream;
    if (!left->is_stream) {
      return Status::Unsupported("relation-to-stream joins must put the stream first");
    }
    if (!have_time_bound) {
      return Status::ValidationError(
          "stream-to-stream join requires a time bound on the rowtime columns "
          "in the join condition (unbounded join state otherwise)");
    }
    if (join->equi_keys.empty()) {
      return Status::ValidationError("stream-to-stream join requires an equi-join key");
    }
    if (left->rowtime_index < 0 || right->rowtime_index < 0) {
      return Status::ValidationError("both join inputs need a timestamp column");
    }
    if (join->left_ts_index != left->rowtime_index ||
        join->right_ts_index != right->rowtime_index) {
      return Status::ValidationError(
          "join time bound must be over the streams' rowtime columns");
    }
  } else {
    join->join_type = JoinType::kStreamRelation;
    if (right->kind != LogicalKind::kScan) {
      return Status::Unsupported(
          "the relation side of a stream-to-relation join must be a base table "
          "(materialized from its changelog via a bootstrap stream)");
    }
    if (join->equi_keys.empty()) {
      return Status::ValidationError("stream-to-relation join requires an equi-join key");
    }
    if (have_time_bound) {
      return Status::ValidationError("time bounds only apply to stream-to-stream joins");
    }
  }

  // Output schema: left fields then right fields; clashes get qualified names.
  std::set<std::string> used;
  for (const Field& f : left->schema->fields()) used.insert(f.name);
  std::vector<Field> fields(left->schema->fields());
  for (const Field& f : right->schema->fields()) {
    Field out = f;
    if (used.count(out.name)) out.name = right_qual + "$" + out.name;
    used.insert(out.name);
    // Relation-side fields become nullable? Inner join only: no.
    fields.push_back(std::move(out));
  }
  join->schema = Schema::Make("join", std::move(fields));
  join->rowtime_index = left->rowtime_index;
  join->is_stream = left->is_stream;

  scope_ = combined;
  return join;
}

Result<ExprPtr> SelectPlanner::RewriteOverAggregate(
    const Expr& e, const LogicalNode& agg, const std::vector<std::string>& group_keys,
    const std::vector<std::string>& agg_keys) {
  const size_t num_groups = agg.group_exprs.size();
  const bool windowed = agg.group_window.type != GroupWindowSpec::Type::kNone;
  const size_t window_start_idx = num_groups;
  const size_t agg_base = num_groups + (windowed ? 2 : 0);

  // Window group call (TUMBLE/HOP/FLOOR ts) -> window_start column.
  if (IsGroupWindowCall(e)) {
    if (!windowed) {
      return Status::ValidationError("window function requires a windowed GROUP BY");
    }
    return MakeIndexRef(static_cast<int>(window_start_idx), FieldType::Int64());
  }

  // Matching group expression -> its key column.
  std::string printed = e.ToString();
  for (size_t i = 0; i < num_groups; ++i) {
    if (printed == group_keys[i]) {
      return MakeIndexRef(static_cast<int>(i), agg.group_exprs[i]->resolved_type);
    }
  }

  if (e.kind == ExprKind::kAggCall) {
    auto kind_r = LookupAggFunc(e.func_name);  // fails for UDAFs: fine, they
                                               // match by printed key below
    if (kind_r.ok() &&
        (kind_r.value() == AggKind::kStart || kind_r.value() == AggKind::kEnd)) {
      if (!windowed) {
        return Status::ValidationError(e.func_name +
                                       " requires a windowed GROUP BY (TUMBLE/HOP)");
      }
      size_t idx = kind_r.value() == AggKind::kStart ? window_start_idx
                                                     : window_start_idx + 1;
      return MakeIndexRef(static_cast<int>(idx), FieldType::Int64());
    }
    for (size_t i = 0; i < agg.aggs.size(); ++i) {
      if (printed == agg_keys[i]) {
        return MakeIndexRef(static_cast<int>(agg_base + i), agg.aggs[i].type);
      }
    }
    return Status::Internal("aggregate not collected: " + printed);
  }

  if (e.kind == ExprKind::kColumnRef) {
    return Status::ValidationError("column " + e.ToString() +
                                   " must appear in GROUP BY or inside an aggregate");
  }

  // Recurse into scalar structure.
  ExprPtr copy = e.Clone();
  for (size_t i = 0; i < copy->children.size(); ++i) {
    SQS_ASSIGN_OR_RETURN(child,
                         RewriteOverAggregate(*e.children[i], agg, group_keys, agg_keys));
    copy->children[i] = std::move(child);
  }
  return copy;
}

Result<LogicalNodePtr> SelectPlanner::PlanAggregate(LogicalNodePtr input) {
  auto agg = LogicalNode::Make(LogicalKind::kAggregate);
  agg->inputs.push_back(input);

  // --- group keys and the (at most one) group window ---
  for (const ExprPtr& g : stmt_.group_by) {
    if (IsGroupWindowCall(*g)) {
      if (agg->group_window.type != GroupWindowSpec::Type::kNone) {
        return Status::ValidationError("at most one group window per query");
      }
      ExprPtr call = g->Clone();
      // Resolve the timestamp argument.
      SQS_RETURN_IF_ERROR(ResolveExpr(*call->children[0], scope_.Resolver(), false));
      if (call->children[0]->kind != ExprKind::kColumnRef) {
        return Status::ValidationError(
            "group window timestamp must be a plain column reference");
      }
      if (call->children[0]->resolved_type.kind != TypeKind::kInt64) {
        return Status::ValidationError("group window timestamp must be BIGINT");
      }
      GroupWindowSpec spec;
      spec.ts_index = call->children[0]->resolved_index;
      if (input->is_stream && stmt_.stream) {
        if (input->rowtime_index < 0) {
          return Status::ValidationError(
              "stream has no timestamp column; time-based windows are unavailable "
              "(was rowtime dropped by a projection?)");
        }
        if (spec.ts_index != input->rowtime_index) {
          return Status::ValidationError(
              "group window must be over the stream's rowtime column");
        }
      }
      if (call->func_name == "TUMBLE") {
        if (call->children.size() < 2 || call->children.size() > 3) {
          return Status::ValidationError("TUMBLE(ts, emit [, align])");
        }
        spec.type = GroupWindowSpec::Type::kTumble;
        SQS_ASSIGN_OR_RETURN(emit, LiteralMillis(*call->children[1], "TUMBLE emit"));
        spec.emit_ms = emit;
        spec.retain_ms = emit;
        if (call->children.size() == 3) {
          SQS_ASSIGN_OR_RETURN(align, LiteralMillis(*call->children[2], "TUMBLE align"));
          spec.align_ms = align;
        }
      } else if (call->func_name == "HOP") {
        if (call->children.size() < 3 || call->children.size() > 4) {
          return Status::ValidationError("HOP(ts, emit, retain [, align])");
        }
        spec.type = GroupWindowSpec::Type::kHop;
        SQS_ASSIGN_OR_RETURN(emit, LiteralMillis(*call->children[1], "HOP emit"));
        SQS_ASSIGN_OR_RETURN(retain, LiteralMillis(*call->children[2], "HOP retain"));
        spec.emit_ms = emit;
        spec.retain_ms = retain;
        if (call->children.size() == 4) {
          SQS_ASSIGN_OR_RETURN(align, LiteralMillis(*call->children[3], "HOP align"));
          spec.align_ms = align;
        }
      } else {  // FLOOR(ts TO unit) == tumbling window of one unit
        spec.type = GroupWindowSpec::Type::kTumble;
        const std::string& unit = call->children[1]->literal.as_string();
        int64_t unit_ms;
        if (unit == "SECOND") {
          unit_ms = 1000;
        } else if (unit == "MINUTE") {
          unit_ms = 60000;
        } else if (unit == "HOUR") {
          unit_ms = 3600000;
        } else if (unit == "DAY") {
          unit_ms = 86400000;
        } else {
          return Status::ValidationError("unsupported FLOOR unit: " + unit);
        }
        spec.emit_ms = unit_ms;
        spec.retain_ms = unit_ms;
      }
      agg->group_window = spec;
    } else {
      ExprPtr key = g->Clone();
      SQS_RETURN_IF_ERROR(ResolveExpr(*key, scope_.Resolver(), false));
      agg->group_exprs.push_back(std::move(key));
    }
  }

  if (stmt_.stream && input->is_stream &&
      agg->group_window.type == GroupWindowSpec::Type::kNone) {
    return Status::ValidationError(
        "cannot aggregate an unbounded stream without a group window "
        "(use TUMBLE, HOP or FLOOR(rowtime TO <unit>) in GROUP BY)");
  }

  // --- collect aggregate calls from select items + HAVING ---
  std::vector<std::string> group_keys;  // resolved ToString per group expr
  for (const auto& g : agg->group_exprs) group_keys.push_back(g->ToString());
  std::vector<std::string> agg_keys;

  std::vector<ExprPtr> resolved_items;  // resolved against input scope
  std::vector<std::string> names;
  for (size_t i = 0; i < stmt_.items.size(); ++i) {
    const SelectItem& item = stmt_.items[i];
    if (item.expr->kind == ExprKind::kStar) {
      return Status::ValidationError("SELECT * cannot be combined with GROUP BY");
    }
    ExprPtr resolved = item.expr->Clone();
    SQS_RETURN_IF_ERROR(ResolveExpr(*resolved, scope_.Resolver(), true));
    names.push_back(OutputName(item, i));
    resolved_items.push_back(std::move(resolved));
  }
  ExprPtr resolved_having;
  if (stmt_.having) {
    resolved_having = stmt_.having->Clone();
    SQS_RETURN_IF_ERROR(ResolveExpr(*resolved_having, scope_.Resolver(), true));
    if (resolved_having->resolved_type.kind != TypeKind::kBool) {
      return Status::ValidationError("HAVING must be boolean");
    }
  }

  // Walk resolved trees, registering distinct aggregate calls.
  std::function<Status(const Expr&)> collect = [&](const Expr& e) -> Status {
    if (e.kind == ExprKind::kAggCall) {
      auto kind = LookupAggFunc(e.func_name);
      if (kind.ok() &&
          (kind.value() == AggKind::kStart || kind.value() == AggKind::kEnd)) {
        return Status::Ok();  // mapped to window bound columns
      }
      std::string key = e.ToString();
      for (const std::string& k : agg_keys) {
        if (k == key) return Status::Ok();
      }
      AggCallSpec spec;
      if (kind.ok()) {
        spec.kind = kind.value();
      } else {
        // User-defined aggregate: the resolver stashed the registry id.
        if (e.resolved_index < 0) return kind.status();
        spec.udaf_id = e.resolved_index;
      }
      if (!e.star_arg && !e.children.empty()) spec.arg = e.children[0]->Clone();
      spec.type = e.resolved_type;
      spec.output_name = "a" + std::to_string(agg_keys.size());
      agg_keys.push_back(key);
      agg->aggs.push_back(std::move(spec));
      return Status::Ok();
    }
    for (const auto& child : e.children) SQS_RETURN_IF_ERROR(collect(*child));
    return Status::Ok();
  };
  for (const auto& item : resolved_items) SQS_RETURN_IF_ERROR(collect(*item));
  if (resolved_having) SQS_RETURN_IF_ERROR(collect(*resolved_having));

  // --- aggregate output schema: [groups][window bounds][aggs] ---
  std::vector<Field> agg_fields;
  for (size_t i = 0; i < agg->group_exprs.size(); ++i) {
    agg_fields.push_back({"g" + std::to_string(i),
                          agg->group_exprs[i]->resolved_type, true});
  }
  const bool windowed = agg->group_window.type != GroupWindowSpec::Type::kNone;
  if (windowed) {
    agg_fields.push_back({"window_start", FieldType::Int64(), false});
    agg_fields.push_back({"window_end", FieldType::Int64(), false});
  }
  for (const AggCallSpec& a : agg->aggs) {
    agg_fields.push_back({a.output_name, a.type, true});
  }
  agg->schema = Schema::Make("agg", std::move(agg_fields));
  agg->rowtime_index = windowed ? static_cast<int>(agg->group_exprs.size()) : -1;
  agg->is_stream = input->is_stream;

  // --- HAVING above the aggregate ---
  LogicalNodePtr top = agg;
  if (resolved_having) {
    SQS_ASSIGN_OR_RETURN(pred,
                         RewriteOverAggregate(*resolved_having, *agg, group_keys, agg_keys));
    auto filter = LogicalNode::Make(LogicalKind::kFilter);
    filter->inputs.push_back(top);
    filter->predicate = std::move(pred);
    filter->schema = top->schema;
    filter->rowtime_index = top->rowtime_index;
    filter->is_stream = top->is_stream;
    top = filter;
  }

  // --- final projection over the aggregate output ---
  std::vector<ExprPtr> final_exprs;
  for (const auto& item : resolved_items) {
    SQS_ASSIGN_OR_RETURN(rewritten, RewriteOverAggregate(*item, *agg, group_keys, agg_keys));
    final_exprs.push_back(std::move(rewritten));
  }
  return PlanProject(top, std::move(final_exprs), names);
}

Result<LogicalNodePtr> SelectPlanner::PlanSlidingWindow(LogicalNodePtr input) {
  auto window_node = LogicalNode::Make(LogicalKind::kSlidingWindow);
  window_node->inputs.push_back(input);

  // Resolve all select items; pull out window calls.
  std::vector<ExprPtr> resolved_items;
  std::vector<std::string> names;
  for (size_t i = 0; i < stmt_.items.size(); ++i) {
    const SelectItem& item = stmt_.items[i];
    if (item.expr->kind == ExprKind::kStar) {
      return Status::Unsupported("SELECT * with OVER aggregates is not supported");
    }
    ExprPtr resolved = item.expr->Clone();
    SQS_RETURN_IF_ERROR(ResolveExpr(*resolved, scope_.Resolver(), true));
    names.push_back(OutputName(item, i));
    resolved_items.push_back(std::move(resolved));
  }

  const size_t input_arity = input->schema->num_fields();
  std::vector<std::string> call_keys;

  // Replace each kWindowCall subtree with a reference to an appended column.
  std::function<Result<ExprPtr>(const Expr&)> rewrite =
      [&](const Expr& e) -> Result<ExprPtr> {
    if (e.kind == ExprKind::kWindowCall) {
      std::string key = e.ToString();
      for (size_t i = 0; i < call_keys.size(); ++i) {
        if (call_keys[i] == key) {
          return MakeIndexRef(static_cast<int>(input_arity + i),
                              window_node->window_calls[i].type);
        }
      }
      WindowCallSpec spec;
      SQS_ASSIGN_OR_RETURN(kind, LookupAggFunc(e.func_name));
      spec.kind = kind;
      if (!e.children.empty()) spec.arg = e.children[0]->Clone();
      for (const auto& p : e.window->partition_by) spec.partition_by.push_back(p->Clone());
      // ORDER BY column must be the stream's rowtime for RANGE windows.
      auto resolver = scope_.Resolver();
      SQS_ASSIGN_OR_RETURN(order_hit, resolver("", e.window->order_by));
      spec.ts_index = order_hit.first;
      if (stmt_.stream && input->is_stream) {
        if (input->rowtime_index < 0) {
          return Status::ValidationError(
              "stream has no timestamp column; sliding windows are unavailable");
        }
        if (e.window->range_based && spec.ts_index != input->rowtime_index) {
          return Status::ValidationError(
              "RANGE window ORDER BY must be the stream's rowtime column");
        }
      }
      spec.range_based = e.window->range_based;
      spec.preceding_ms = e.window->preceding_millis;
      spec.preceding_rows = e.window->preceding_rows;
      spec.type = e.resolved_type;
      spec.output_name = "w" + std::to_string(call_keys.size());
      call_keys.push_back(key);
      window_node->window_calls.push_back(std::move(spec));
      return MakeIndexRef(static_cast<int>(input_arity + call_keys.size() - 1),
                          window_node->window_calls.back().type);
    }
    if (e.kind == ExprKind::kAggCall) {
      return Status::ValidationError(
          "plain aggregates need GROUP BY; use OVER (...) for sliding windows");
    }
    ExprPtr copy = e.Clone();
    for (size_t i = 0; i < copy->children.size(); ++i) {
      SQS_ASSIGN_OR_RETURN(child, rewrite(*e.children[i]));
      copy->children[i] = std::move(child);
    }
    return copy;
  };

  std::vector<ExprPtr> final_exprs;
  for (const auto& item : resolved_items) {
    SQS_ASSIGN_OR_RETURN(rewritten, rewrite(*item));
    final_exprs.push_back(std::move(rewritten));
  }

  // Window node schema: input fields + one per call.
  std::vector<Field> fields(input->schema->fields());
  for (const WindowCallSpec& w : window_node->window_calls) {
    fields.push_back({w.output_name, w.type, true});
  }
  window_node->schema = Schema::Make("window", std::move(fields));
  window_node->rowtime_index = input->rowtime_index;
  window_node->is_stream = input->is_stream;

  return PlanProject(window_node, std::move(final_exprs), names);
}

Result<LogicalNodePtr> SelectPlanner::PlanProject(
    LogicalNodePtr input, std::vector<ExprPtr> resolved_items,
    const std::vector<std::string>& names) {
  auto project = LogicalNode::Make(LogicalKind::kProject);
  project->inputs.push_back(input);

  std::vector<Field> fields;
  int rowtime = -1;
  for (size_t i = 0; i < resolved_items.size(); ++i) {
    const ExprPtr& e = resolved_items[i];
    fields.push_back({names[i], e->resolved_type, true});
    if (e->kind == ExprKind::kColumnRef && input->rowtime_index >= 0 &&
        e->resolved_index == input->rowtime_index) {
      rowtime = static_cast<int>(i);
    }
  }
  project->exprs = std::move(resolved_items);
  project->schema = Schema::Make("project", std::move(fields));
  project->rowtime_index = rowtime;
  project->is_stream = input->is_stream;
  return project;
}

Result<LogicalNodePtr> SelectPlanner::Plan() {
  if (stmt_.items.empty()) return Status::ValidationError("empty select list");

  // FROM
  SQS_ASSIGN_OR_RETURN(from_pair, PlanTableRef(stmt_.from));
  LogicalNodePtr node = from_pair.first;
  scope_ = ScopeFor(*node, from_pair.second);

  // JOINs
  for (const JoinClause& join : stmt_.joins) {
    SQS_ASSIGN_OR_RETURN(joined, PlanJoin(node, join));
    node = joined;
  }

  // WHERE
  if (stmt_.where) {
    if (ContainsAggregate(*stmt_.where)) {
      return Status::ValidationError("aggregates are not allowed in WHERE (use HAVING)");
    }
    ExprPtr pred = stmt_.where->Clone();
    SQS_RETURN_IF_ERROR(ResolveExpr(*pred, scope_.Resolver(), false));
    if (pred->resolved_type.kind != TypeKind::kBool) {
      return Status::ValidationError("WHERE must be boolean");
    }
    auto filter = LogicalNode::Make(LogicalKind::kFilter);
    filter->inputs.push_back(node);
    filter->predicate = std::move(pred);
    filter->schema = node->schema;
    filter->rowtime_index = node->rowtime_index;
    filter->is_stream = node->is_stream;
    node = filter;
  }

  // STREAM keyword checks (top level only; nested STREAM was discarded).
  if (stmt_.stream && !any_stream_source_) {
    return Status::ValidationError("SELECT STREAM requires at least one stream source");
  }

  bool has_group = !stmt_.group_by.empty();
  bool has_agg = false;
  bool has_window_call = false;
  for (const SelectItem& item : stmt_.items) {
    if (item.expr->kind == ExprKind::kStar) continue;
    if (ContainsAggregate(*item.expr)) has_agg = true;
    std::function<bool(const Expr&)> has_over = [&](const Expr& e) {
      if (e.kind == ExprKind::kWindowCall) return true;
      for (const auto& c : e.children) {
        if (has_over(*c)) return true;
      }
      return false;
    };
    if (has_over(*item.expr)) has_window_call = true;
  }
  if (stmt_.having && !has_group) {
    return Status::ValidationError("HAVING requires GROUP BY");
  }

  LogicalNodePtr top;
  if (has_group || (has_agg && !has_window_call)) {
    SQS_ASSIGN_OR_RETURN(planned, PlanAggregate(node));
    top = planned;
  } else if (has_window_call) {
    SQS_ASSIGN_OR_RETURN(planned, PlanSlidingWindow(node));
    top = planned;
  } else {
    // Plain projection; '*' expands the whole input.
    std::vector<ExprPtr> exprs;
    std::vector<std::string> names;
    for (size_t i = 0; i < stmt_.items.size(); ++i) {
      const SelectItem& item = stmt_.items[i];
      if (item.expr->kind == ExprKind::kStar) {
        for (size_t f = 0; f < node->schema->num_fields(); ++f) {
          const Field& field = node->schema->field(f);
          exprs.push_back(MakeIndexRef(static_cast<int>(f), field.type));
          names.push_back(field.name);
        }
        continue;
      }
      ExprPtr resolved = item.expr->Clone();
      SQS_RETURN_IF_ERROR(ResolveExpr(*resolved, scope_.Resolver(), false));
      names.push_back(OutputName(item, i));
      exprs.push_back(std::move(resolved));
    }
    SQS_ASSIGN_OR_RETURN(planned, PlanProject(node, std::move(exprs), names));
    top = planned;
  }

  // Final streamness: SELECT STREAM -> continuous; otherwise history/batch.
  top->is_stream = stmt_.stream;
  return top;
}

}  // namespace

std::vector<ExprPtr> SplitConjuncts(const Expr& predicate) {
  std::vector<ExprPtr> out;
  if (predicate.kind == ExprKind::kBinary && predicate.binary_op == BinaryOp::kAnd) {
    for (auto& part : SplitConjuncts(*predicate.children[0])) out.push_back(std::move(part));
    for (auto& part : SplitConjuncts(*predicate.children[1])) out.push_back(std::move(part));
    return out;
  }
  out.push_back(predicate.Clone());
  return out;
}

ExprPtr CombineConjuncts(std::vector<ExprPtr> conjuncts) {
  if (conjuncts.empty()) return nullptr;
  ExprPtr result = std::move(conjuncts[0]);
  for (size_t i = 1; i < conjuncts.size(); ++i) {
    ExprPtr combined = MakeBinary(BinaryOp::kAnd, std::move(result), std::move(conjuncts[i]));
    combined->resolved_type = FieldType::Bool();
    result = std::move(combined);
  }
  return result;
}

Result<LogicalNodePtr> QueryPlanner::Plan(const SelectStmt& stmt) {
  SelectPlanner planner(*catalog_, stmt);
  return planner.Plan();
}

}  // namespace sqs::sql
