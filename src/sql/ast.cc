#include "sql/ast.h"

#include <sstream>

namespace sqs::sql {

const char* BinaryOpName(BinaryOp op) {
  switch (op) {
    case BinaryOp::kAdd: return "+";
    case BinaryOp::kSub: return "-";
    case BinaryOp::kMul: return "*";
    case BinaryOp::kDiv: return "/";
    case BinaryOp::kMod: return "%";
    case BinaryOp::kEq: return "=";
    case BinaryOp::kNeq: return "<>";
    case BinaryOp::kLt: return "<";
    case BinaryOp::kLe: return "<=";
    case BinaryOp::kGt: return ">";
    case BinaryOp::kGe: return ">=";
    case BinaryOp::kAnd: return "AND";
    case BinaryOp::kOr: return "OR";
    case BinaryOp::kConcat: return "||";
  }
  return "?";
}

ExprPtr MakeLiteral(Value v) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kLiteral;
  e->literal = std::move(v);
  return e;
}

ExprPtr MakeColumnRef(std::string qualifier, std::string column) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kColumnRef;
  e->qualifier = std::move(qualifier);
  e->column = std::move(column);
  return e;
}

ExprPtr MakeBinary(BinaryOp op, ExprPtr lhs, ExprPtr rhs) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kBinary;
  e->binary_op = op;
  e->children.push_back(std::move(lhs));
  e->children.push_back(std::move(rhs));
  return e;
}

ExprPtr MakeUnary(UnaryOp op, ExprPtr operand) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kUnary;
  e->unary_op = op;
  e->children.push_back(std::move(operand));
  return e;
}

ExprPtr MakeFuncCall(std::string name, std::vector<ExprPtr> args) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kFuncCall;
  e->func_name = std::move(name);
  e->children = std::move(args);
  return e;
}

std::string Expr::ToString() const {
  std::ostringstream os;
  switch (kind) {
    case ExprKind::kLiteral:
      if (literal.kind() == TypeKind::kString) {
        os << "'" << literal.as_string() << "'";
      } else {
        os << literal.ToString();
      }
      break;
    case ExprKind::kColumnRef:
      if (resolved_index >= 0) {
        os << "$" << resolved_index;
      } else if (!qualifier.empty()) {
        os << qualifier << "." << column;
      } else {
        os << column;
      }
      break;
    case ExprKind::kStar:
      os << "*";
      break;
    case ExprKind::kBinary:
      os << "(" << children[0]->ToString() << " " << BinaryOpName(binary_op) << " "
         << children[1]->ToString() << ")";
      break;
    case ExprKind::kUnary:
      os << (unary_op == UnaryOp::kNeg ? "-" : "NOT ") << children[0]->ToString();
      break;
    case ExprKind::kFuncCall:
    case ExprKind::kAggCall:
    case ExprKind::kWindowCall: {
      os << func_name << "(";
      if (star_arg) {
        os << "*";
      } else {
        for (size_t i = 0; i < children.size(); ++i) {
          if (i) os << ", ";
          os << children[i]->ToString();
        }
      }
      os << ")";
      if (kind == ExprKind::kWindowCall && window) {
        os << " OVER (";
        if (!window->partition_by.empty()) {
          os << "PARTITION BY ";
          for (size_t i = 0; i < window->partition_by.size(); ++i) {
            if (i) os << ", ";
            os << window->partition_by[i]->ToString();
          }
          os << " ";
        }
        os << "ORDER BY " << window->order_by << " ";
        if (window->range_based) {
          os << "RANGE " << window->preceding_millis << "ms PRECEDING";
        } else {
          os << "ROWS " << window->preceding_rows << " PRECEDING";
        }
        os << ")";
      }
      break;
    }
    case ExprKind::kCase: {
      os << "CASE";
      size_t pairs = children.size() / 2;
      for (size_t i = 0; i < pairs; ++i) {
        os << " WHEN " << children[2 * i]->ToString() << " THEN "
           << children[2 * i + 1]->ToString();
      }
      if (has_else) os << " ELSE " << children.back()->ToString();
      os << " END";
      break;
    }
    case ExprKind::kCast:
      os << "CAST(" << children[0]->ToString() << " AS " << cast_type.ToString() << ")";
      break;
    case ExprKind::kBetween:
      os << "(" << children[0]->ToString() << " BETWEEN " << children[1]->ToString()
         << " AND " << children[2]->ToString() << ")";
      break;
    case ExprKind::kIsNull:
      os << "(" << children[0]->ToString() << " IS " << (negated ? "NOT " : "")
         << "NULL)";
      break;
    case ExprKind::kIn: {
      os << "(" << children[0]->ToString() << " IN (";
      for (size_t i = 1; i < children.size(); ++i) {
        if (i > 1) os << ", ";
        os << children[i]->ToString();
      }
      os << "))";
      break;
    }
  }
  return os.str();
}

ExprPtr Expr::Clone() const {
  auto e = std::make_unique<Expr>();
  e->kind = kind;
  e->literal = literal;
  e->qualifier = qualifier;
  e->column = column;
  e->binary_op = binary_op;
  e->unary_op = unary_op;
  e->func_name = func_name;
  e->star_arg = star_arg;
  e->has_else = has_else;
  e->cast_type = cast_type;
  e->negated = negated;
  e->resolved_index = resolved_index;
  e->resolved_type = resolved_type;
  if (window) {
    e->window = std::make_unique<WindowSpec>();
    for (const auto& p : window->partition_by) {
      e->window->partition_by.push_back(p->Clone());
    }
    e->window->order_by = window->order_by;
    e->window->range_based = window->range_based;
    e->window->preceding_millis = window->preceding_millis;
    e->window->preceding_rows = window->preceding_rows;
  }
  e->children.reserve(children.size());
  for (const auto& c : children) e->children.push_back(c->Clone());
  return e;
}

std::string SelectStmt::ToString() const {
  std::ostringstream os;
  os << "SELECT ";
  if (stream) os << "STREAM ";
  for (size_t i = 0; i < items.size(); ++i) {
    if (i) os << ", ";
    os << items[i].expr->ToString();
    if (!items[i].alias.empty()) os << " AS " << items[i].alias;
  }
  os << " FROM ";
  if (from.subquery) {
    os << "(" << from.subquery->ToString() << ")";
  } else {
    os << from.name;
  }
  if (!from.alias.empty()) os << " AS " << from.alias;
  for (const auto& j : joins) {
    os << " JOIN ";
    if (j.table.subquery) {
      os << "(" << j.table.subquery->ToString() << ")";
    } else {
      os << j.table.name;
    }
    if (!j.table.alias.empty()) os << " AS " << j.table.alias;
    os << " ON " << j.condition->ToString();
  }
  if (where) os << " WHERE " << where->ToString();
  if (!group_by.empty()) {
    os << " GROUP BY ";
    for (size_t i = 0; i < group_by.size(); ++i) {
      if (i) os << ", ";
      os << group_by[i]->ToString();
    }
  }
  if (having) os << " HAVING " << having->ToString();
  return os.str();
}

}  // namespace sqs::sql
