#include "sql/functions.h"

#include <cctype>

#include "sql/expr.h"

namespace sqs::sql {

namespace {
std::string ToUpper(std::string s) {
  for (char& c : s) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return s;
}
}  // namespace

FunctionRegistry& FunctionRegistry::Instance() {
  static FunctionRegistry registry;
  return registry;
}

Status FunctionRegistry::RegisterScalar(ScalarUdf udf) {
  udf.name = ToUpper(udf.name);
  if (udf.name.empty()) return Status::InvalidArgument("UDF needs a name");
  if (!udf.type_fn || !udf.eval_fn) {
    return Status::InvalidArgument("UDF " + udf.name + " needs type and eval functions");
  }
  if (udf.min_arity > udf.max_arity) {
    return Status::InvalidArgument("UDF " + udf.name + " arity range inverted");
  }
  // Collisions with built-ins (any arity in the range) are rejected.
  for (size_t a = udf.min_arity; a <= udf.max_arity; ++a) {
    if (LookupScalarFunc(udf.name, a).ok()) {
      return Status::AlreadyExists("UDF collides with built-in function: " + udf.name);
    }
  }
  if (IsAggFuncName(udf.name)) {
    return Status::AlreadyExists("UDF collides with aggregate function: " + udf.name);
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (by_name_.count(udf.name)) {
    return Status::AlreadyExists("UDF already registered: " + udf.name);
  }
  udfs_.push_back(std::move(udf));
  by_name_[udfs_.back().name] = static_cast<int32_t>(udfs_.size() - 1);
  return Status::Ok();
}

Status FunctionRegistry::RegisterScalar(
    const std::string& name, size_t arity, FieldType result_type,
    std::function<Value(const std::vector<Value>&)> eval_fn) {
  ScalarUdf udf;
  udf.name = name;
  udf.min_arity = arity;
  udf.max_arity = arity;
  udf.type_fn = [result_type](const std::vector<FieldType>&) -> Result<FieldType> {
    return result_type;
  };
  udf.eval_fn = std::move(eval_fn);
  return RegisterScalar(std::move(udf));
}

Result<int32_t> FunctionRegistry::Lookup(const std::string& name, size_t arity) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = by_name_.find(ToUpper(name));
  if (it == by_name_.end()) return Status::NotFound("no UDF " + name);
  const ScalarUdf& udf = udfs_[static_cast<size_t>(it->second)];
  if (arity < udf.min_arity || arity > udf.max_arity) {
    return Status::ValidationError("UDF " + udf.name + " takes " +
                                   std::to_string(udf.min_arity) + ".." +
                                   std::to_string(udf.max_arity) + " arguments, got " +
                                   std::to_string(arity));
  }
  return it->second;
}

Result<FieldType> FunctionRegistry::ResultType(const std::string& name,
                                               const std::vector<FieldType>& args) const {
  SQS_ASSIGN_OR_RETURN(id, Lookup(name, args.size()));
  std::lock_guard<std::mutex> lock(mu_);
  return udfs_[static_cast<size_t>(id)].type_fn(args);
}

Value FunctionRegistry::Eval(int32_t id, const std::vector<Value>& args) const {
  std::function<Value(const std::vector<Value>&)> fn;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (id < 0 || id >= static_cast<int32_t>(udfs_.size())) return Value::Null();
    fn = udfs_[static_cast<size_t>(id)].eval_fn;
  }
  return fn(args);
}

Status FunctionRegistry::RegisterAggregate(AggregateUdf udaf) {
  udaf.name = ToUpper(udaf.name);
  if (udaf.name.empty()) return Status::InvalidArgument("UDAF needs a name");
  if (!udaf.type_fn || !udaf.factory) {
    return Status::InvalidArgument("UDAF " + udaf.name + " needs type and factory");
  }
  if (IsAggFuncName(udaf.name)) {
    return Status::AlreadyExists("UDAF collides with built-in aggregate: " + udaf.name);
  }
  if (LookupScalarFunc(udaf.name, 1).ok()) {
    return Status::AlreadyExists("UDAF collides with built-in function: " + udaf.name);
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (udaf_by_name_.count(udaf.name) || by_name_.count(udaf.name)) {
    return Status::AlreadyExists("function already registered: " + udaf.name);
  }
  udafs_.push_back(std::move(udaf));
  udaf_by_name_[udafs_.back().name] = static_cast<int32_t>(udafs_.size() - 1);
  return Status::Ok();
}

bool FunctionRegistry::HasAggregate(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  return udaf_by_name_.count(ToUpper(name)) > 0;
}

Result<int32_t> FunctionRegistry::LookupAggregate(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = udaf_by_name_.find(ToUpper(name));
  if (it == udaf_by_name_.end()) return Status::NotFound("no UDAF " + name);
  return it->second;
}

Result<FieldType> FunctionRegistry::AggregateResultType(int32_t id,
                                                        const FieldType& arg) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (id < 0 || id >= static_cast<int32_t>(udafs_.size())) {
    return Status::NotFound("bad UDAF id");
  }
  return udafs_[static_cast<size_t>(id)].type_fn(arg);
}

std::unique_ptr<UdafAccumulator> FunctionRegistry::CreateAccumulator(int32_t id) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (id < 0 || id >= static_cast<int32_t>(udafs_.size())) return nullptr;
  return udafs_[static_cast<size_t>(id)].factory();
}

bool FunctionRegistry::Has(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  return by_name_.count(ToUpper(name)) > 0;
}

void FunctionRegistry::Unregister(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  by_name_.erase(ToUpper(name));  // ids stay stable; slot becomes unreachable
}

}  // namespace sqs::sql
