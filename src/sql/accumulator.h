// AnyAccumulator: uniform incremental-aggregate interface over built-in
// aggregates (AggState) and user-defined aggregates (UdafAccumulator), with
// byte-level state round-tripping for changelog-backed window state.
// Used by the GROUP BY window-aggregate operator and the batch evaluator.
#pragma once

#include <memory>
#include <optional>

#include "sql/expr.h"
#include "sql/functions.h"

namespace sqs::sql {

class AnyAccumulator {
 public:
  // `udaf_id < 0` selects the built-in aggregate `kind`; otherwise the
  // registered UDAF with that id.
  static ::sqs::Result<AnyAccumulator> Make(AggKind kind, int32_t udaf_id) {
    AnyAccumulator acc;
    if (udaf_id >= 0) {
      acc.udaf_ = FunctionRegistry::Instance().CreateAccumulator(udaf_id);
      if (!acc.udaf_) return Status::NotFound("unknown UDAF id");
    } else {
      acc.builtin_.emplace(kind);
    }
    return acc;
  }

  void Add(const Value& v) {
    if (udaf_) {
      udaf_->Add(v);
    } else {
      builtin_->Add(v);
    }
  }

  Value Result() const { return udaf_ ? udaf_->Result() : builtin_->Result(); }

  void EncodeTo(BytesWriter& out) const {
    if (udaf_) {
      udaf_->EncodeTo(out);
    } else {
      builtin_->EncodeTo(out);
    }
  }

  static ::sqs::Result<AnyAccumulator> Decode(AggKind kind, int32_t udaf_id,
                                              BytesReader& in) {
    SQS_ASSIGN_OR_RETURN(acc, Make(kind, udaf_id));
    if (acc.udaf_) {
      SQS_RETURN_IF_ERROR(acc.udaf_->DecodeFrom(in));
    } else {
      SQS_ASSIGN_OR_RETURN(state, AggState::Decode(kind, in));
      acc.builtin_ = std::move(state);
    }
    return acc;
  }

 private:
  std::optional<AggState> builtin_;
  std::unique_ptr<UdafAccumulator> udaf_;
};

}  // namespace sqs::sql
