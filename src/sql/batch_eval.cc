#include "sql/batch_eval.h"

#include <algorithm>
#include <map>

#include "sql/accumulator.h"

namespace sqs::sql {

namespace {

bool Truthy(const Value& v) { return v.kind() == TypeKind::kBool && v.as_bool(); }

// Window start for a timestamp under a hopping/tumbling spec: the aligned
// multiple of emit_ms at or below ts.
int64_t AlignedWindowStart(int64_t ts, int64_t emit_ms, int64_t align_ms) {
  int64_t shifted = ts - align_ms;
  int64_t q = shifted / emit_ms;
  if (shifted < 0 && shifted % emit_ms != 0) --q;
  return q * emit_ms + align_ms;
}

struct GroupKey {
  Row values;  // group expr values + window start (if windowed)
  bool operator<(const GroupKey& o) const {
    size_t n = std::min(values.size(), o.values.size());
    for (size_t i = 0; i < n; ++i) {
      int c = values[i].Compare(o.values[i]);
      if (c != 0) return c < 0;
    }
    return values.size() < o.values.size();
  }
};

Result<std::vector<Row>> EvalAggregate(const LogicalNode& node,
                                       const std::vector<Row>& input) {
  const bool windowed = node.group_window.type != GroupWindowSpec::Type::kNone;
  const GroupWindowSpec& win = node.group_window;

  struct GroupAgg {
    std::vector<AnyAccumulator> states;
    int64_t window_start = 0;
  };
  std::map<GroupKey, GroupAgg> groups;

  for (const Row& row : input) {
    // The set of windows this row falls into (one for tumble; several for
    // hop when retain > emit).
    std::vector<int64_t> starts;
    if (windowed) {
      int64_t ts = row[static_cast<size_t>(win.ts_index)].ToInt64();
      int64_t newest = AlignedWindowStart(ts, win.emit_ms, win.align_ms);
      // Every window [start, start+retain) with start <= ts < start+retain
      // and start aligned to emit.
      for (int64_t start = newest; start > ts - win.retain_ms; start -= win.emit_ms) {
        starts.push_back(start);
      }
    } else {
      starts.push_back(0);
    }
    for (int64_t start : starts) {
      GroupKey key;
      for (const auto& g : node.group_exprs) key.values.push_back(EvalExpr(*g, row));
      if (windowed) key.values.push_back(Value(start));
      auto it = groups.find(key);
      if (it == groups.end()) {
        GroupAgg agg;
        for (const AggCallSpec& spec : node.aggs) {
          SQS_ASSIGN_OR_RETURN(acc, AnyAccumulator::Make(spec.kind, spec.udaf_id));
          agg.states.push_back(std::move(acc));
        }
        agg.window_start = start;
        it = groups.emplace(std::move(key), std::move(agg)).first;
      }
      for (size_t i = 0; i < node.aggs.size(); ++i) {
        const AggCallSpec& spec = node.aggs[i];
        if (spec.arg) {
          it->second.states[i].Add(EvalExpr(*spec.arg, row));
        } else {
          it->second.states[i].Add(Value(int64_t{1}));  // COUNT(*)
        }
      }
    }
  }

  std::vector<Row> out;
  out.reserve(groups.size());
  for (const auto& [key, agg] : groups) {
    Row row;
    for (size_t i = 0; i < node.group_exprs.size(); ++i) row.push_back(key.values[i]);
    if (windowed) {
      row.push_back(Value(agg.window_start));
      row.push_back(Value(agg.window_start + win.retain_ms));
    }
    for (const AnyAccumulator& st : agg.states) row.push_back(st.Result());
    out.push_back(std::move(row));
  }
  return out;
}

Result<std::vector<Row>> EvalSlidingWindow(const LogicalNode& node,
                                           const std::vector<Row>& input) {
  // Naive O(n^2)-per-partition reference implementation.
  std::vector<Row> out;
  out.reserve(input.size());
  for (const Row& row : input) {
    Row extended = row;
    for (const WindowCallSpec& call : node.window_calls) {
      Row pkey;
      for (const auto& p : call.partition_by) pkey.push_back(EvalExpr(*p, row));
      AggState state(call.kind);

      if (call.range_based) {
        int64_t ts = row[static_cast<size_t>(call.ts_index)].ToInt64();
        for (const Row& other : input) {
          Row okey;
          for (const auto& p : call.partition_by) okey.push_back(EvalExpr(*p, other));
          if (okey != pkey) continue;
          int64_t ots = other[static_cast<size_t>(call.ts_index)].ToInt64();
          if (ots > ts || ots < ts - call.preceding_ms) continue;
          state.Add(call.arg ? EvalExpr(*call.arg, other) : Value(int64_t{1}));
        }
      } else {
        // ROWS n PRECEDING over rows sorted by ts within the partition;
        // current row included. Collect the partition in input order of ts.
        std::vector<const Row*> partition;
        for (const Row& other : input) {
          Row okey;
          for (const auto& p : call.partition_by) okey.push_back(EvalExpr(*p, other));
          if (okey == pkey) partition.push_back(&other);
        }
        std::stable_sort(partition.begin(), partition.end(),
                         [&](const Row* a, const Row* b) {
                           return (*a)[static_cast<size_t>(call.ts_index)]
                                      .Compare((*b)[static_cast<size_t>(call.ts_index)]) < 0;
                         });
        // Find this row's position (pointer identity).
        size_t pos = 0;
        for (size_t i = 0; i < partition.size(); ++i) {
          if (partition[i] == &row) {
            pos = i;
            break;
          }
        }
        size_t first = pos >= static_cast<size_t>(call.preceding_rows)
                           ? pos - static_cast<size_t>(call.preceding_rows)
                           : 0;
        for (size_t i = first; i <= pos; ++i) {
          state.Add(call.arg ? EvalExpr(*call.arg, *partition[i]) : Value(int64_t{1}));
        }
      }
      extended.push_back(state.Result());
    }
    out.push_back(std::move(extended));
  }
  return out;
}

Result<std::vector<Row>> EvalJoin(const LogicalNode& node,
                                  const std::vector<Row>& left,
                                  const std::vector<Row>& right) {
  std::vector<Row> out;
  for (const Row& l : left) {
    for (const Row& r : right) {
      bool match = true;
      for (const auto& [li, ri] : node.equi_keys) {
        const Value& lv = l[static_cast<size_t>(li)];
        const Value& rv = r[static_cast<size_t>(ri)];
        if (lv.is_null() || rv.is_null() || lv.Compare(rv) != 0) {
          match = false;
          break;
        }
      }
      if (!match) continue;
      if (node.join_type == JoinType::kStreamStream) {
        int64_t lts = l[static_cast<size_t>(node.left_ts_index)].ToInt64();
        int64_t rts = r[static_cast<size_t>(node.right_ts_index)].ToInt64();
        int64_t delta = lts - rts;
        if (delta < -node.window_before_ms || delta > node.window_after_ms) continue;
      }
      Row combined = l;
      combined.insert(combined.end(), r.begin(), r.end());
      if (node.residual && !Truthy(EvalExpr(*node.residual, combined))) continue;
      out.push_back(std::move(combined));
    }
  }
  return out;
}

}  // namespace

Result<std::vector<Row>> EvaluatePlan(const LogicalNode& plan,
                                      const TableProvider& provider) {
  switch (plan.kind) {
    case LogicalKind::kScan:
      return provider(plan.source);

    case LogicalKind::kFilter: {
      SQS_ASSIGN_OR_RETURN(input, EvaluatePlan(*plan.inputs[0], provider));
      std::vector<Row> out;
      out.reserve(input.size());
      for (Row& row : input) {
        if (Truthy(EvalExpr(*plan.predicate, row))) out.push_back(std::move(row));
      }
      return out;
    }

    case LogicalKind::kProject: {
      SQS_ASSIGN_OR_RETURN(input, EvaluatePlan(*plan.inputs[0], provider));
      std::vector<Row> out;
      out.reserve(input.size());
      for (const Row& row : input) {
        Row projected;
        projected.reserve(plan.exprs.size());
        for (const auto& e : plan.exprs) projected.push_back(EvalExpr(*e, row));
        out.push_back(std::move(projected));
      }
      return out;
    }

    case LogicalKind::kAggregate: {
      SQS_ASSIGN_OR_RETURN(input, EvaluatePlan(*plan.inputs[0], provider));
      return EvalAggregate(plan, input);
    }

    case LogicalKind::kSlidingWindow: {
      SQS_ASSIGN_OR_RETURN(input, EvaluatePlan(*plan.inputs[0], provider));
      return EvalSlidingWindow(plan, input);
    }

    case LogicalKind::kJoin: {
      SQS_ASSIGN_OR_RETURN(left, EvaluatePlan(*plan.inputs[0], provider));
      SQS_ASSIGN_OR_RETURN(right, EvaluatePlan(*plan.inputs[1], provider));
      return EvalJoin(plan, left, right);
    }
  }
  return Status::Internal("unhandled plan node");
}

// ---------------------------------------------------------------------------
// FusedStageKernel
// ---------------------------------------------------------------------------

namespace {

// Mirrors Value::Compare's numeric branch for NaN behavior.
inline int CompareDoubleRaw(double a, double b) {
  if (a < b) return -1;
  if (a > b) return 1;
  return 0;
}

inline bool CmpResult(BinaryOp op, int c) {
  switch (op) {
    case BinaryOp::kEq: return c == 0;
    case BinaryOp::kNeq: return c != 0;
    case BinaryOp::kLt: return c < 0;
    case BinaryOp::kLe: return c <= 0;
    case BinaryOp::kGt: return c > 0;
    case BinaryOp::kGe: return c >= 0;
    default: return false;
  }
}

inline bool IsComparison(BinaryOp op) {
  return op == BinaryOp::kEq || op == BinaryOp::kNeq || op == BinaryOp::kLt ||
         op == BinaryOp::kLe || op == BinaryOp::kGt || op == BinaryOp::kGe;
}

inline BinaryOp FlipComparison(BinaryOp op) {
  switch (op) {
    case BinaryOp::kLt: return BinaryOp::kGt;
    case BinaryOp::kLe: return BinaryOp::kGe;
    case BinaryOp::kGt: return BinaryOp::kLt;
    case BinaryOp::kGe: return BinaryOp::kLe;
    default: return op;  // Eq/Neq are symmetric
  }
}

inline bool IsIntKind(TypeKind k) {
  return k == TypeKind::kInt32 || k == TypeKind::kInt64;
}

}  // namespace

bool FusedStageKernel::ClassifyRawPred(const Expr& conjunct, const Schema& schema,
                                       RawPred* out) {
  if (conjunct.kind != ExprKind::kBinary || !IsComparison(conjunct.binary_op) ||
      conjunct.children.size() != 2) {
    return false;
  }
  const Expr* col = conjunct.children[0].get();
  const Expr* lit = conjunct.children[1].get();
  BinaryOp op = conjunct.binary_op;
  if (col->kind == ExprKind::kLiteral && lit->kind == ExprKind::kColumnRef) {
    std::swap(col, lit);
    op = FlipComparison(op);
  }
  if (col->kind != ExprKind::kColumnRef || lit->kind != ExprKind::kLiteral) {
    return false;
  }
  if (col->resolved_index < 0 ||
      static_cast<size_t>(col->resolved_index) >= schema.num_fields()) {
    return false;
  }
  const Value& v = lit->literal;
  if (v.is_null()) return false;  // NULL comparisons stay on the compiled path
  const TypeKind col_kind = schema.field(col->resolved_index).type.kind;
  RawPred pred;
  pred.column = col->resolved_index;
  pred.op = op;
  if (IsIntKind(col_kind) && IsIntKind(v.kind())) {
    pred.mode = RawPred::Mode::kInt;
    pred.i = v.ToInt64();
  } else if ((col_kind == TypeKind::kDouble && v.is_numeric()) ||
             (IsIntKind(col_kind) && v.kind() == TypeKind::kDouble)) {
    pred.mode = RawPred::Mode::kDouble;
    pred.d = v.ToDouble();
  } else if (col_kind == TypeKind::kString && v.kind() == TypeKind::kString) {
    pred.mode = RawPred::Mode::kString;
    pred.s = v.as_string();
  } else if (col_kind == TypeKind::kBool && v.kind() == TypeKind::kBool) {
    pred.mode = RawPred::Mode::kBool;
    pred.b = v.as_bool();
  } else {
    return false;  // mixed-kind comparison: defer to EvalBinaryOp semantics
  }
  *out = std::move(pred);
  return true;
}

Result<FusedStageKernel> FusedStageKernel::Compile(const FusedStageSpec& spec,
                                                   RowSerdePtr input_serde,
                                                   bool passthrough,
                                                   const std::vector<int>& extra_columns) {
  FusedStageKernel k;
  k.input_serde_ = std::move(input_serde);
  k.scan_schema_ = spec.scan_schema;
  k.rowtime_index_ = spec.scan_rowtime_index;
  k.passthrough_ = passthrough;
  k.avro_ = dynamic_cast<const AvroRowSerde*>(k.input_serde_.get()) != nullptr;
  if (passthrough && !spec.projections.empty()) {
    return Status::Internal("passthrough requires the identity projection");
  }

  const size_t n = k.scan_schema_->num_fields();
  k.wanted_ = passthrough ? spec.predicate_columns : spec.referenced;
  k.wanted_.resize(n, false);
  if (passthrough && k.rowtime_index_ >= 0) k.wanted_[k.rowtime_index_] = true;
  for (int c : extra_columns) {
    if (c >= 0 && static_cast<size_t>(c) < n) k.wanted_[c] = true;
  }

  for (const ExprPtr& p : spec.predicates) {
    RawPred raw;
    if (k.avro_ && ClassifyRawPred(*p, *k.scan_schema_, &raw)) {
      k.raw_preds_.push_back(std::move(raw));
    } else {
      SQS_ASSIGN_OR_RETURN(compiled, CompiledExpr::Compile(*p));
      k.residual_preds_.push_back(std::move(compiled));
    }
  }
  if (!passthrough) {
    for (const ExprPtr& e : spec.projections) {
      Projection proj;
      if (e->kind == ExprKind::kColumnRef && e->resolved_index >= 0) {
        proj.column = e->resolved_index;
      } else {
        SQS_ASSIGN_OR_RETURN(compiled, CompiledExpr::Compile(*e));
        proj.expr = std::move(compiled);
      }
      k.projections_.push_back(std::move(proj));
    }
  }

  if (k.avro_) {
    // Field-walk plan: stop after the last field that must be decoded.
    std::vector<std::vector<int>> preds_by_field(n);
    for (size_t i = 0; i < k.raw_preds_.size(); ++i) {
      preds_by_field[k.raw_preds_[i].column].push_back(static_cast<int>(i));
    }
    size_t last_needed = 0;
    bool any = false;
    for (size_t i = 0; i < n; ++i) {
      if (k.wanted_[i] || !preds_by_field[i].empty()) {
        last_needed = i;
        any = true;
      }
    }
    if (any) {
      k.steps_.reserve(last_needed + 1);
      for (size_t i = 0; i <= last_needed; ++i) {
        FieldStep step;
        const Field& f = k.scan_schema_->field(i);
        step.nullable = f.nullable;
        step.type = f.type;
        step.materialize = k.wanted_[i];
        step.raw_preds = std::move(preds_by_field[i]);
        k.steps_.push_back(std::move(step));
      }
    }
  }
  return k;
}

bool FusedStageKernel::EvalPredsInt(const FieldStep& step, int64_t v) const {
  for (int idx : step.raw_preds) {
    const RawPred& p = raw_preds_[idx];
    int c = p.mode == RawPred::Mode::kDouble
                ? CompareDoubleRaw(static_cast<double>(v), p.d)
                : (v < p.i ? -1 : (v > p.i ? 1 : 0));
    if (!CmpResult(p.op, c)) return false;
  }
  return true;
}

bool FusedStageKernel::EvalPredsDouble(const FieldStep& step, double v) const {
  for (int idx : step.raw_preds) {
    const RawPred& p = raw_preds_[idx];
    if (!CmpResult(p.op, CompareDoubleRaw(v, p.d))) return false;
  }
  return true;
}

bool FusedStageKernel::EvalPredsString(const FieldStep& step,
                                       const std::string& v) const {
  for (int idx : step.raw_preds) {
    const RawPred& p = raw_preds_[idx];
    int c = v.compare(p.s);
    if (!CmpResult(p.op, c < 0 ? -1 : (c > 0 ? 1 : 0))) return false;
  }
  return true;
}

bool FusedStageKernel::EvalPredsBool(const FieldStep& step, bool v) const {
  for (int idx : step.raw_preds) {
    const RawPred& p = raw_preds_[idx];
    if (!CmpResult(p.op, static_cast<int>(v) - static_cast<int>(p.b))) return false;
  }
  return true;
}

void FusedStageKernel::BuildOutput(Row& scratch, Output& out) const {
  out.pass = true;
  if (rowtime_index_ >= 0) out.rowtime = scratch[rowtime_index_];
  if (passthrough_) return;
  if (projections_.empty()) {
    out.row = std::move(scratch);
    return;
  }
  out.row.reserve(projections_.size());
  for (const Projection& proj : projections_) {
    out.row.push_back(proj.column >= 0 ? scratch[proj.column]
                                       : proj.expr.Eval(scratch));
  }
}

Result<FusedStageKernel::Output> FusedStageKernel::ApplyAvro(const Bytes& raw) const {
  BytesReader in(raw);
  Output out;
  Row scratch(scan_schema_->num_fields(), Value::Null());
  for (size_t i = 0; i < steps_.size(); ++i) {
    const FieldStep& step = steps_[i];
    if (step.nullable) {
      SQS_ASSIGN_OR_RETURN(tag, in.ReadByte());
      if (tag == 0) {
        // NULL: every comparison predicate on this column is false.
        if (!step.raw_preds.empty()) return out;
        continue;
      }
    }
    if (!step.materialize && step.raw_preds.empty()) {
      SQS_RETURN_IF_ERROR(SkipTypedValue(step.type, in));
      continue;
    }
    switch (step.type.kind) {
      case TypeKind::kInt32: {
        SQS_ASSIGN_OR_RETURN(v, in.ReadVarint());
        if (!EvalPredsInt(step, v)) return out;
        if (step.materialize) scratch[i] = Value(static_cast<int32_t>(v));
        break;
      }
      case TypeKind::kInt64: {
        SQS_ASSIGN_OR_RETURN(v, in.ReadVarint());
        if (!EvalPredsInt(step, v)) return out;
        if (step.materialize) scratch[i] = Value(v);
        break;
      }
      case TypeKind::kDouble: {
        SQS_ASSIGN_OR_RETURN(v, in.ReadDouble());
        if (!EvalPredsDouble(step, v)) return out;
        if (step.materialize) scratch[i] = Value(v);
        break;
      }
      case TypeKind::kString: {
        SQS_ASSIGN_OR_RETURN(v, in.ReadString());
        if (!EvalPredsString(step, v)) return out;
        if (step.materialize) scratch[i] = Value(std::move(v));
        break;
      }
      case TypeKind::kBool: {
        SQS_ASSIGN_OR_RETURN(v, in.ReadBool());
        if (!EvalPredsBool(step, v)) return out;
        if (step.materialize) scratch[i] = Value(v);
        break;
      }
      default: {
        SQS_ASSIGN_OR_RETURN(v, DeserializeTypedValue(step.type, in));
        scratch[i] = std::move(v);
        break;
      }
    }
  }
  // Fields past the last needed one are never read (lazy decode).
  for (const CompiledExpr& pred : residual_preds_) {
    if (!Truthy(pred.Eval(scratch))) return out;
  }
  BuildOutput(scratch, out);
  return out;
}

Result<FusedStageKernel::Output> FusedStageKernel::ApplyGeneric(const Bytes& raw) const {
  BytesReader in(raw);
  Output out;
  SQS_ASSIGN_OR_RETURN(scratch, input_serde_->DeserializeProjected(in, wanted_));
  for (const CompiledExpr& pred : residual_preds_) {
    if (!Truthy(pred.Eval(scratch))) return out;
  }
  BuildOutput(scratch, out);
  return out;
}

Result<FusedStageKernel::Output> FusedStageKernel::Apply(const Bytes& raw) const {
  return avro_ ? ApplyAvro(raw) : ApplyGeneric(raw);
}

}  // namespace sqs::sql
