#include "sql/batch_eval.h"

#include <algorithm>
#include <map>

#include "sql/accumulator.h"

namespace sqs::sql {

namespace {

bool Truthy(const Value& v) { return v.kind() == TypeKind::kBool && v.as_bool(); }

// Window start for a timestamp under a hopping/tumbling spec: the aligned
// multiple of emit_ms at or below ts.
int64_t AlignedWindowStart(int64_t ts, int64_t emit_ms, int64_t align_ms) {
  int64_t shifted = ts - align_ms;
  int64_t q = shifted / emit_ms;
  if (shifted < 0 && shifted % emit_ms != 0) --q;
  return q * emit_ms + align_ms;
}

struct GroupKey {
  Row values;  // group expr values + window start (if windowed)
  bool operator<(const GroupKey& o) const {
    size_t n = std::min(values.size(), o.values.size());
    for (size_t i = 0; i < n; ++i) {
      int c = values[i].Compare(o.values[i]);
      if (c != 0) return c < 0;
    }
    return values.size() < o.values.size();
  }
};

Result<std::vector<Row>> EvalAggregate(const LogicalNode& node,
                                       const std::vector<Row>& input) {
  const bool windowed = node.group_window.type != GroupWindowSpec::Type::kNone;
  const GroupWindowSpec& win = node.group_window;

  struct GroupAgg {
    std::vector<AnyAccumulator> states;
    int64_t window_start = 0;
  };
  std::map<GroupKey, GroupAgg> groups;

  for (const Row& row : input) {
    // The set of windows this row falls into (one for tumble; several for
    // hop when retain > emit).
    std::vector<int64_t> starts;
    if (windowed) {
      int64_t ts = row[static_cast<size_t>(win.ts_index)].ToInt64();
      int64_t newest = AlignedWindowStart(ts, win.emit_ms, win.align_ms);
      // Every window [start, start+retain) with start <= ts < start+retain
      // and start aligned to emit.
      for (int64_t start = newest; start > ts - win.retain_ms; start -= win.emit_ms) {
        starts.push_back(start);
      }
    } else {
      starts.push_back(0);
    }
    for (int64_t start : starts) {
      GroupKey key;
      for (const auto& g : node.group_exprs) key.values.push_back(EvalExpr(*g, row));
      if (windowed) key.values.push_back(Value(start));
      auto it = groups.find(key);
      if (it == groups.end()) {
        GroupAgg agg;
        for (const AggCallSpec& spec : node.aggs) {
          SQS_ASSIGN_OR_RETURN(acc, AnyAccumulator::Make(spec.kind, spec.udaf_id));
          agg.states.push_back(std::move(acc));
        }
        agg.window_start = start;
        it = groups.emplace(std::move(key), std::move(agg)).first;
      }
      for (size_t i = 0; i < node.aggs.size(); ++i) {
        const AggCallSpec& spec = node.aggs[i];
        if (spec.arg) {
          it->second.states[i].Add(EvalExpr(*spec.arg, row));
        } else {
          it->second.states[i].Add(Value(int64_t{1}));  // COUNT(*)
        }
      }
    }
  }

  std::vector<Row> out;
  out.reserve(groups.size());
  for (const auto& [key, agg] : groups) {
    Row row;
    for (size_t i = 0; i < node.group_exprs.size(); ++i) row.push_back(key.values[i]);
    if (windowed) {
      row.push_back(Value(agg.window_start));
      row.push_back(Value(agg.window_start + win.retain_ms));
    }
    for (const AnyAccumulator& st : agg.states) row.push_back(st.Result());
    out.push_back(std::move(row));
  }
  return out;
}

Result<std::vector<Row>> EvalSlidingWindow(const LogicalNode& node,
                                           const std::vector<Row>& input) {
  // Naive O(n^2)-per-partition reference implementation.
  std::vector<Row> out;
  out.reserve(input.size());
  for (const Row& row : input) {
    Row extended = row;
    for (const WindowCallSpec& call : node.window_calls) {
      Row pkey;
      for (const auto& p : call.partition_by) pkey.push_back(EvalExpr(*p, row));
      AggState state(call.kind);

      if (call.range_based) {
        int64_t ts = row[static_cast<size_t>(call.ts_index)].ToInt64();
        for (const Row& other : input) {
          Row okey;
          for (const auto& p : call.partition_by) okey.push_back(EvalExpr(*p, other));
          if (okey != pkey) continue;
          int64_t ots = other[static_cast<size_t>(call.ts_index)].ToInt64();
          if (ots > ts || ots < ts - call.preceding_ms) continue;
          state.Add(call.arg ? EvalExpr(*call.arg, other) : Value(int64_t{1}));
        }
      } else {
        // ROWS n PRECEDING over rows sorted by ts within the partition;
        // current row included. Collect the partition in input order of ts.
        std::vector<const Row*> partition;
        for (const Row& other : input) {
          Row okey;
          for (const auto& p : call.partition_by) okey.push_back(EvalExpr(*p, other));
          if (okey == pkey) partition.push_back(&other);
        }
        std::stable_sort(partition.begin(), partition.end(),
                         [&](const Row* a, const Row* b) {
                           return (*a)[static_cast<size_t>(call.ts_index)]
                                      .Compare((*b)[static_cast<size_t>(call.ts_index)]) < 0;
                         });
        // Find this row's position (pointer identity).
        size_t pos = 0;
        for (size_t i = 0; i < partition.size(); ++i) {
          if (partition[i] == &row) {
            pos = i;
            break;
          }
        }
        size_t first = pos >= static_cast<size_t>(call.preceding_rows)
                           ? pos - static_cast<size_t>(call.preceding_rows)
                           : 0;
        for (size_t i = first; i <= pos; ++i) {
          state.Add(call.arg ? EvalExpr(*call.arg, *partition[i]) : Value(int64_t{1}));
        }
      }
      extended.push_back(state.Result());
    }
    out.push_back(std::move(extended));
  }
  return out;
}

Result<std::vector<Row>> EvalJoin(const LogicalNode& node,
                                  const std::vector<Row>& left,
                                  const std::vector<Row>& right) {
  std::vector<Row> out;
  for (const Row& l : left) {
    for (const Row& r : right) {
      bool match = true;
      for (const auto& [li, ri] : node.equi_keys) {
        const Value& lv = l[static_cast<size_t>(li)];
        const Value& rv = r[static_cast<size_t>(ri)];
        if (lv.is_null() || rv.is_null() || lv.Compare(rv) != 0) {
          match = false;
          break;
        }
      }
      if (!match) continue;
      if (node.join_type == JoinType::kStreamStream) {
        int64_t lts = l[static_cast<size_t>(node.left_ts_index)].ToInt64();
        int64_t rts = r[static_cast<size_t>(node.right_ts_index)].ToInt64();
        int64_t delta = lts - rts;
        if (delta < -node.window_before_ms || delta > node.window_after_ms) continue;
      }
      Row combined = l;
      combined.insert(combined.end(), r.begin(), r.end());
      if (node.residual && !Truthy(EvalExpr(*node.residual, combined))) continue;
      out.push_back(std::move(combined));
    }
  }
  return out;
}

}  // namespace

Result<std::vector<Row>> EvaluatePlan(const LogicalNode& plan,
                                      const TableProvider& provider) {
  switch (plan.kind) {
    case LogicalKind::kScan:
      return provider(plan.source);

    case LogicalKind::kFilter: {
      SQS_ASSIGN_OR_RETURN(input, EvaluatePlan(*plan.inputs[0], provider));
      std::vector<Row> out;
      out.reserve(input.size());
      for (Row& row : input) {
        if (Truthy(EvalExpr(*plan.predicate, row))) out.push_back(std::move(row));
      }
      return out;
    }

    case LogicalKind::kProject: {
      SQS_ASSIGN_OR_RETURN(input, EvaluatePlan(*plan.inputs[0], provider));
      std::vector<Row> out;
      out.reserve(input.size());
      for (const Row& row : input) {
        Row projected;
        projected.reserve(plan.exprs.size());
        for (const auto& e : plan.exprs) projected.push_back(EvalExpr(*e, row));
        out.push_back(std::move(projected));
      }
      return out;
    }

    case LogicalKind::kAggregate: {
      SQS_ASSIGN_OR_RETURN(input, EvaluatePlan(*plan.inputs[0], provider));
      return EvalAggregate(plan, input);
    }

    case LogicalKind::kSlidingWindow: {
      SQS_ASSIGN_OR_RETURN(input, EvaluatePlan(*plan.inputs[0], provider));
      return EvalSlidingWindow(plan, input);
    }

    case LogicalKind::kJoin: {
      SQS_ASSIGN_OR_RETURN(left, EvaluatePlan(*plan.inputs[0], provider));
      SQS_ASSIGN_OR_RETURN(right, EvaluatePlan(*plan.inputs[1], provider));
      return EvalJoin(plan, left, right);
    }
  }
  return Status::Internal("unhandled plan node");
}

}  // namespace sqs::sql
