#include "sql/catalog.h"

#include "serde/json.h"

namespace sqs::sql {

Status Catalog::RegisterSource(SourceDef def) {
  if (def.name.empty()) return Status::InvalidArgument("source needs a name");
  if (!def.schema) return Status::InvalidArgument("source needs a schema: " + def.name);
  if (def.topic.empty()) def.topic = def.name;
  if (sources_.count(def.name) || views_.count(def.name)) {
    return Status::AlreadyExists("source exists: " + def.name);
  }
  // Default rowtime: a column literally named "rowtime", if present and long.
  if (def.rowtime_column.empty()) {
    auto idx = def.schema->FieldIndex("rowtime");
    if (idx && def.schema->field(*idx).type.kind == TypeKind::kInt64) {
      def.rowtime_column = "rowtime";
    }
  } else {
    auto idx = def.schema->FieldIndex(def.rowtime_column);
    if (!idx) {
      return Status::InvalidArgument("rowtime column not in schema: " +
                                     def.rowtime_column);
    }
    if (def.schema->field(*idx).type.kind != TypeKind::kInt64) {
      return Status::InvalidArgument("rowtime column must be BIGINT: " +
                                     def.rowtime_column);
    }
  }
  sources_.emplace(def.name, std::move(def));
  return Status::Ok();
}

Result<SourceDef> Catalog::GetSource(const std::string& name) const {
  auto it = sources_.find(name);
  if (it == sources_.end()) return Status::NotFound("unknown stream or table: " + name);
  return it->second;
}

bool Catalog::HasSource(const std::string& name) const {
  return sources_.count(name) > 0;
}

std::vector<std::string> Catalog::SourceNames() const {
  std::vector<std::string> out;
  out.reserve(sources_.size());
  for (const auto& [k, _] : sources_) out.push_back(k);
  return out;
}

Status Catalog::RegisterView(const std::string& name,
                             std::vector<std::string> column_names,
                             std::unique_ptr<SelectStmt> select) {
  if (sources_.count(name) || views_.count(name)) {
    return Status::AlreadyExists("name already defined: " + name);
  }
  views_[name] = StoredView{std::move(column_names), std::move(select)};
  return Status::Ok();
}

bool Catalog::HasView(const std::string& name) const { return views_.count(name) > 0; }

Result<Catalog::ViewDef> Catalog::GetView(const std::string& name) const {
  auto it = views_.find(name);
  if (it == views_.end()) return Status::NotFound("unknown view: " + name);
  return ViewDef{it->second.column_names, it->second.select.get()};
}

namespace {

Result<FieldType> ParseFieldTypeName(const std::string& name) {
  if (name == "boolean") return FieldType::Bool();
  if (name == "int" || name == "integer") return FieldType::Int32();
  if (name == "long" || name == "bigint") return FieldType::Int64();
  if (name == "double" || name == "float") return FieldType::Double();
  if (name == "string" || name == "varchar") return FieldType::String();
  if (name.rfind("array<", 0) == 0 && name.back() == '>') {
    SQS_ASSIGN_OR_RETURN(elem, ParseFieldTypeName(name.substr(6, name.size() - 7)));
    if (elem.kind == TypeKind::kArray || elem.kind == TypeKind::kMap) {
      return Status::InvalidArgument("nested collections unsupported: " + name);
    }
    return FieldType::Array(elem.kind);
  }
  if (name.rfind("map<", 0) == 0 && name.back() == '>') {
    SQS_ASSIGN_OR_RETURN(elem, ParseFieldTypeName(name.substr(4, name.size() - 5)));
    if (elem.kind == TypeKind::kArray || elem.kind == TypeKind::kMap) {
      return Status::InvalidArgument("nested collections unsupported: " + name);
    }
    return FieldType::Map(elem.kind);
  }
  return Status::InvalidArgument("unknown field type: " + name);
}

}  // namespace

std::string Catalog::ToJsonModel() const {
  ValueArray schemas;
  for (const auto& [name, def] : sources_) {
    ValueMap entry;
    entry["name"] = Value(def.name);
    entry["type"] = Value(def.kind == SourceKind::kStream ? "stream" : "table");
    entry["topic"] = Value(def.topic);
    entry["format"] = Value(def.format);
    if (!def.rowtime_column.empty()) entry["rowtime"] = Value(def.rowtime_column);
    ValueArray fields;
    for (const Field& f : def.schema->fields()) {
      ValueMap fo;
      fo["name"] = Value(f.name);
      std::string type_name;
      switch (f.type.kind) {
        case TypeKind::kBool: type_name = "boolean"; break;
        case TypeKind::kInt32: type_name = "int"; break;
        case TypeKind::kInt64: type_name = "long"; break;
        case TypeKind::kDouble: type_name = "double"; break;
        case TypeKind::kString: type_name = "string"; break;
        case TypeKind::kArray:
          type_name = "array<";
          type_name += f.type.element == TypeKind::kInt32    ? "int"
                       : f.type.element == TypeKind::kInt64  ? "long"
                       : f.type.element == TypeKind::kDouble ? "double"
                       : f.type.element == TypeKind::kBool   ? "boolean"
                                                             : "string";
          type_name += ">";
          break;
        case TypeKind::kMap:
          type_name = "map<";
          type_name += f.type.element == TypeKind::kInt32    ? "int"
                       : f.type.element == TypeKind::kInt64  ? "long"
                       : f.type.element == TypeKind::kDouble ? "double"
                       : f.type.element == TypeKind::kBool   ? "boolean"
                                                             : "string";
          type_name += ">";
          break;
        default: type_name = "string";
      }
      fo["type"] = Value(type_name);
      if (f.nullable) fo["nullable"] = Value(true);
      fields.push_back(Value(std::move(fo)));
    }
    entry["fields"] = Value(std::move(fields));
    schemas.push_back(Value(std::move(entry)));
  }
  ValueMap root;
  root["schemas"] = Value(std::move(schemas));
  return ToJson(Value(std::move(root)));
}

Status Catalog::LoadJsonModel(const std::string& json_text, SchemaRegistry& registry) {
  SQS_ASSIGN_OR_RETURN(doc, ParseJson(json_text));
  if (doc.kind() != TypeKind::kMap) {
    return Status::InvalidArgument("model must be a JSON object");
  }
  const ValueMap& root = doc.as_map();
  auto schemas_it = root.find("schemas");
  if (schemas_it == root.end() || schemas_it->second.kind() != TypeKind::kArray) {
    return Status::InvalidArgument("model needs a 'schemas' array");
  }
  for (const Value& entry : schemas_it->second.as_array()) {
    if (entry.kind() != TypeKind::kMap) {
      return Status::InvalidArgument("schema entry must be an object");
    }
    const ValueMap& obj = entry.as_map();
    auto get_str = [&](const char* key) -> std::string {
      auto it = obj.find(key);
      return it != obj.end() && it->second.kind() == TypeKind::kString
                 ? it->second.as_string()
                 : "";
    };
    SourceDef def;
    def.name = get_str("name");
    if (def.name.empty()) return Status::InvalidArgument("schema entry needs a name");
    std::string type = get_str("type");
    if (type == "stream" || type.empty()) {
      def.kind = SourceKind::kStream;
    } else if (type == "table" || type == "relation") {
      def.kind = SourceKind::kRelation;
    } else {
      return Status::InvalidArgument("bad source type: " + type);
    }
    def.topic = get_str("topic");
    std::string format = get_str("format");
    if (!format.empty()) def.format = format;
    def.rowtime_column = get_str("rowtime");

    auto fields_it = obj.find("fields");
    if (fields_it == obj.end() || fields_it->second.kind() != TypeKind::kArray) {
      return Status::InvalidArgument("schema " + def.name + " needs a 'fields' array");
    }
    std::vector<Field> fields;
    for (const Value& fv : fields_it->second.as_array()) {
      if (fv.kind() != TypeKind::kMap) {
        return Status::InvalidArgument("field entry must be an object");
      }
      const ValueMap& fo = fv.as_map();
      Field field;
      auto name_it = fo.find("name");
      if (name_it == fo.end()) return Status::InvalidArgument("field needs a name");
      field.name = name_it->second.as_string();
      auto type_it = fo.find("type");
      if (type_it == fo.end()) return Status::InvalidArgument("field needs a type");
      SQS_ASSIGN_OR_RETURN(ft, ParseFieldTypeName(type_it->second.as_string()));
      field.type = ft;
      auto null_it = fo.find("nullable");
      field.nullable = null_it != fo.end() && null_it->second.kind() == TypeKind::kBool &&
                       null_it->second.as_bool();
      fields.push_back(std::move(field));
    }
    def.schema = Schema::Make(def.name, std::move(fields));
    SQS_ASSIGN_OR_RETURN(reg, registry.Register(def.name, def.schema));
    (void)reg;
    SQS_RETURN_IF_ERROR(RegisterSource(std::move(def)));
  }
  return Status::Ok();
}

}  // namespace sqs::sql
