#include "sql/lexer.h"

#include <cctype>
#include <cstdlib>
#include <unordered_set>

namespace sqs::sql {

namespace {

const std::unordered_set<std::string>& Keywords() {
  static const std::unordered_set<std::string> kw = {
      "SELECT", "STREAM", "FROM", "WHERE", "GROUP", "BY", "HAVING", "AS",
      "JOIN", "INNER", "LEFT", "ON", "AND", "OR", "NOT", "BETWEEN",
      "INTERVAL", "YEAR", "MONTH", "DAY", "HOUR", "MINUTE", "SECOND", "TO",
      "CREATE", "VIEW", "INSERT", "INTO", "OVER", "PARTITION", "ORDER",
      "RANGE", "ROWS", "PRECEDING", "FOLLOWING", "CURRENT", "ROW", "UNBOUNDED",
      "CASE", "WHEN", "THEN", "ELSE", "END", "CAST", "NULL", "TRUE", "FALSE",
      "IS", "IN", "LIKE", "DISTINCT", "TIME", "DATE", "TIMESTAMP", "ASC",
      "DESC", "EXPLAIN", "VALUES", "UNION", "ALL", "LIMIT", "DROP", "SHOW",
  };
  return kw;
}

std::string ToUpper(std::string s) {
  for (char& c : s) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return s;
}

}  // namespace

bool IsReservedKeyword(const std::string& word) { return Keywords().count(word) > 0; }

Result<std::vector<Token>> Lex(const std::string& input) {
  std::vector<Token> tokens;
  size_t i = 0;
  const size_t n = input.size();

  auto error = [&](const std::string& what) {
    return Status::ParseError(what + " at offset " + std::to_string(i));
  };

  while (i < n) {
    char c = input[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // -- line comments
    if (c == '-' && i + 1 < n && input[i + 1] == '-') {
      while (i < n && input[i] != '\n') ++i;
      continue;
    }
    // /* block comments */
    if (c == '/' && i + 1 < n && input[i + 1] == '*') {
      size_t close = input.find("*/", i + 2);
      if (close == std::string::npos) return error("unterminated block comment");
      i = close + 2;
      continue;
    }

    Token tok;
    tok.position = i;

    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t start = i;
      while (i < n && (std::isalnum(static_cast<unsigned char>(input[i])) || input[i] == '_')) {
        ++i;
      }
      std::string word = input.substr(start, i - start);
      std::string upper = ToUpper(word);
      if (Keywords().count(upper)) {
        tok.type = TokenType::kKeyword;
        tok.text = upper;
      } else {
        tok.type = TokenType::kIdentifier;
        tok.text = word;
      }
      tokens.push_back(std::move(tok));
      continue;
    }

    if (c == '"') {  // quoted identifier
      ++i;
      std::string word;
      while (i < n && input[i] != '"') word += input[i++];
      if (i >= n) return error("unterminated quoted identifier");
      ++i;
      tok.type = TokenType::kIdentifier;
      tok.text = std::move(word);
      tokens.push_back(std::move(tok));
      continue;
    }

    if (c == '\'') {  // string literal ('' escapes a quote)
      ++i;
      std::string text;
      while (i < n) {
        if (input[i] == '\'') {
          if (i + 1 < n && input[i + 1] == '\'') {
            text += '\'';
            i += 2;
            continue;
          }
          break;
        }
        text += input[i++];
      }
      if (i >= n) return error("unterminated string literal");
      ++i;
      tok.type = TokenType::kStringLiteral;
      tok.text = std::move(text);
      tokens.push_back(std::move(tok));
      continue;
    }

    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < n && std::isdigit(static_cast<unsigned char>(input[i + 1])))) {
      size_t start = i;
      bool is_double = false;
      while (i < n && std::isdigit(static_cast<unsigned char>(input[i]))) ++i;
      if (i < n && input[i] == '.') {
        is_double = true;
        ++i;
        while (i < n && std::isdigit(static_cast<unsigned char>(input[i]))) ++i;
      }
      if (i < n && (input[i] == 'e' || input[i] == 'E')) {
        is_double = true;
        ++i;
        if (i < n && (input[i] == '+' || input[i] == '-')) ++i;
        while (i < n && std::isdigit(static_cast<unsigned char>(input[i]))) ++i;
      }
      std::string num = input.substr(start, i - start);
      if (is_double) {
        tok.type = TokenType::kDoubleLiteral;
        tok.double_value = std::strtod(num.c_str(), nullptr);
      } else {
        tok.type = TokenType::kIntLiteral;
        tok.int_value = std::strtoll(num.c_str(), nullptr, 10);
      }
      tok.text = std::move(num);
      tokens.push_back(std::move(tok));
      continue;
    }

    switch (c) {
      case ',': tok.type = TokenType::kComma; ++i; break;
      case '(': tok.type = TokenType::kLParen; ++i; break;
      case ')': tok.type = TokenType::kRParen; ++i; break;
      case '.': tok.type = TokenType::kDot; ++i; break;
      case '*': tok.type = TokenType::kStar; ++i; break;
      case ';': tok.type = TokenType::kSemicolon; ++i; break;
      case '+': tok.type = TokenType::kPlus; ++i; break;
      case '-': tok.type = TokenType::kMinus; ++i; break;
      case '/': tok.type = TokenType::kSlash; ++i; break;
      case '%': tok.type = TokenType::kPercent; ++i; break;
      case '=': tok.type = TokenType::kEq; ++i; break;
      case '<':
        if (i + 1 < n && input[i + 1] == '=') {
          tok.type = TokenType::kLe;
          i += 2;
        } else if (i + 1 < n && input[i + 1] == '>') {
          tok.type = TokenType::kNeq;
          i += 2;
        } else {
          tok.type = TokenType::kLt;
          ++i;
        }
        break;
      case '>':
        if (i + 1 < n && input[i + 1] == '=') {
          tok.type = TokenType::kGe;
          i += 2;
        } else {
          tok.type = TokenType::kGt;
          ++i;
        }
        break;
      case '!':
        if (i + 1 < n && input[i + 1] == '=') {
          tok.type = TokenType::kNeq;
          i += 2;
        } else {
          return error("unexpected '!'");
        }
        break;
      case '|':
        if (i + 1 < n && input[i + 1] == '|') {
          tok.type = TokenType::kConcat;
          i += 2;
        } else {
          return error("unexpected '|'");
        }
        break;
      default:
        return error(std::string("unexpected character '") + c + "'");
    }
    tokens.push_back(std::move(tok));
  }

  Token end;
  end.type = TokenType::kEnd;
  end.position = n;
  tokens.push_back(std::move(end));
  return tokens;
}

}  // namespace sqs::sql
