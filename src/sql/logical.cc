#include "sql/logical.h"

#include <sstream>

namespace sqs::sql {

namespace {
const char* KindName(LogicalKind kind) {
  switch (kind) {
    case LogicalKind::kScan: return "Scan";
    case LogicalKind::kFilter: return "Filter";
    case LogicalKind::kProject: return "Project";
    case LogicalKind::kAggregate: return "Aggregate";
    case LogicalKind::kSlidingWindow: return "SlidingWindow";
    case LogicalKind::kJoin: return "Join";
  }
  return "?";
}

const char* AggName(AggKind kind) {
  switch (kind) {
    case AggKind::kCount: return "COUNT";
    case AggKind::kSum: return "SUM";
    case AggKind::kMin: return "MIN";
    case AggKind::kMax: return "MAX";
    case AggKind::kAvg: return "AVG";
    case AggKind::kStart: return "START";
    case AggKind::kEnd: return "END";
  }
  return "?";
}
}  // namespace

std::string LogicalNode::ToString(int indent) const {
  std::ostringstream os;
  std::string pad(static_cast<size_t>(indent) * 2, ' ');
  os << pad << KindName(kind);
  switch (kind) {
    case LogicalKind::kScan:
      os << "(" << source.name << (scan_as_stream ? " STREAM" : " RELATION") << ")";
      break;
    case LogicalKind::kFilter:
      os << "(" << predicate->ToString() << ")";
      break;
    case LogicalKind::kProject: {
      os << "(";
      for (size_t i = 0; i < exprs.size(); ++i) {
        if (i) os << ", ";
        os << exprs[i]->ToString() << " AS " << schema->field(i).name;
      }
      os << ")";
      break;
    }
    case LogicalKind::kAggregate: {
      os << "(groups=[";
      for (size_t i = 0; i < group_exprs.size(); ++i) {
        if (i) os << ", ";
        os << group_exprs[i]->ToString();
      }
      os << "]";
      if (group_window.type != GroupWindowSpec::Type::kNone) {
        os << (group_window.type == GroupWindowSpec::Type::kTumble ? " TUMBLE" : " HOP")
           << "($" << group_window.ts_index << ", emit=" << group_window.emit_ms
           << "ms, retain=" << group_window.retain_ms << "ms)";
      }
      os << " aggs=[";
      for (size_t i = 0; i < aggs.size(); ++i) {
        if (i) os << ", ";
        os << AggName(aggs[i].kind) << "("
           << (aggs[i].arg ? aggs[i].arg->ToString() : "*") << ")";
      }
      os << "])";
      break;
    }
    case LogicalKind::kSlidingWindow: {
      os << "(";
      for (size_t i = 0; i < window_calls.size(); ++i) {
        const WindowCallSpec& w = window_calls[i];
        if (i) os << ", ";
        os << AggName(w.kind) << "(" << (w.arg ? w.arg->ToString() : "*") << ") OVER ";
        if (w.range_based) {
          os << "RANGE " << w.preceding_ms << "ms";
        } else {
          os << "ROWS " << w.preceding_rows;
        }
      }
      os << ")";
      break;
    }
    case LogicalKind::kJoin: {
      os << "("
         << (join_type == JoinType::kStreamRelation ? "stream-relation" : "stream-stream")
         << " keys=[";
      for (size_t i = 0; i < equi_keys.size(); ++i) {
        if (i) os << ", ";
        os << "$" << equi_keys[i].first << "=$" << equi_keys[i].second << "r";
      }
      os << "]";
      if (join_type == JoinType::kStreamStream) {
        os << " window=[-" << window_before_ms << "ms,+" << window_after_ms << "ms]";
      }
      if (residual) os << " residual=" << residual->ToString();
      os << ")";
      break;
    }
  }
  os << "\n";
  for (const auto& input : inputs) os << input->ToString(indent + 1);
  return os.str();
}

LogicalNodePtr CloneLogical(const LogicalNode& node) {
  auto copy = std::make_shared<LogicalNode>();
  copy->kind = node.kind;
  copy->schema = node.schema;
  copy->rowtime_index = node.rowtime_index;
  copy->is_stream = node.is_stream;
  copy->source = node.source;
  copy->scan_as_stream = node.scan_as_stream;
  if (node.predicate) copy->predicate = node.predicate->Clone();
  for (const auto& e : node.exprs) copy->exprs.push_back(e->Clone());
  for (const auto& g : node.group_exprs) copy->group_exprs.push_back(g->Clone());
  copy->group_window = node.group_window;
  for (const auto& a : node.aggs) {
    AggCallSpec spec;
    spec.kind = a.kind;
    spec.udaf_id = a.udaf_id;
    if (a.arg) spec.arg = a.arg->Clone();
    spec.output_name = a.output_name;
    spec.type = a.type;
    copy->aggs.push_back(std::move(spec));
  }
  for (const auto& w : node.window_calls) {
    WindowCallSpec spec;
    spec.kind = w.kind;
    if (w.arg) spec.arg = w.arg->Clone();
    for (const auto& p : w.partition_by) spec.partition_by.push_back(p->Clone());
    spec.ts_index = w.ts_index;
    spec.range_based = w.range_based;
    spec.preceding_ms = w.preceding_ms;
    spec.preceding_rows = w.preceding_rows;
    spec.output_name = w.output_name;
    spec.type = w.type;
    copy->window_calls.push_back(std::move(spec));
  }
  copy->join_type = node.join_type;
  copy->equi_keys = node.equi_keys;
  copy->left_ts_index = node.left_ts_index;
  copy->right_ts_index = node.right_ts_index;
  copy->window_before_ms = node.window_before_ms;
  copy->window_after_ms = node.window_after_ms;
  if (node.residual) copy->residual = node.residual->Clone();
  for (const auto& input : node.inputs) copy->inputs.push_back(CloneLogical(*input));
  return copy;
}

}  // namespace sqs::sql
