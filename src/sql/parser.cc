#include "sql/parser.h"

#include <cctype>
#include <cstdlib>

namespace sqs::sql {

namespace {

bool IsAnalyze(const std::string& text) {
  if (text.size() != 7) return false;
  const char* kw = "ANALYZE";
  for (size_t i = 0; i < text.size(); ++i) {
    if (std::toupper(static_cast<unsigned char>(text[i])) != kw[i]) return false;
  }
  return true;
}

// Millisecond multipliers for interval units.
Result<int64_t> UnitMillis(const std::string& unit) {
  if (unit == "SECOND") return int64_t{1000};
  if (unit == "MINUTE") return int64_t{60 * 1000};
  if (unit == "HOUR") return int64_t{60 * 60 * 1000};
  if (unit == "DAY") return int64_t{24 * 60 * 60 * 1000};
  return Status::ParseError("unsupported interval unit: " + unit);
}

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<Statement> ParseOneStatement() {
    SQS_ASSIGN_OR_RETURN(stmt, ParseStatementInternal());
    Eat(TokenType::kSemicolon);
    if (!AtEnd()) return Err("trailing tokens after statement");
    return stmt;
  }

  Result<std::vector<Statement>> ParseAll() {
    std::vector<Statement> out;
    while (!AtEnd()) {
      SQS_ASSIGN_OR_RETURN(stmt, ParseStatementInternal());
      out.push_back(std::move(stmt));
      if (!Eat(TokenType::kSemicolon)) break;
    }
    if (!AtEnd()) return Err("trailing tokens after statements");
    return out;
  }

  Result<ExprPtr> ParseOneExpression() {
    SQS_ASSIGN_OR_RETURN(e, ParseExpr());
    if (!AtEnd()) return Err("trailing tokens after expression");
    return e;
  }

 private:
  const Token& Peek(int ahead = 0) const {
    size_t i = pos_ + static_cast<size_t>(ahead);
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  const Token& Advance() { return tokens_[pos_ < tokens_.size() - 1 ? pos_++ : pos_]; }
  bool AtEnd() const { return Peek().type == TokenType::kEnd; }

  bool Check(TokenType t) const { return Peek().type == t; }
  bool CheckKw(const char* kw) const { return Peek().IsKeyword(kw); }

  bool Eat(TokenType t) {
    if (Check(t)) {
      Advance();
      return true;
    }
    return false;
  }
  bool EatKw(const char* kw) {
    if (CheckKw(kw)) {
      Advance();
      return true;
    }
    return false;
  }

  Status Err(const std::string& what) const {
    return Status::ParseError(what + " near offset " + std::to_string(Peek().position) +
                              (Peek().text.empty() ? "" : " ('" + Peek().text + "')"));
  }

  Status Expect(TokenType t, const char* what) {
    if (!Eat(t)) return Err(std::string("expected ") + what);
    return Status::Ok();
  }
  Status ExpectKw(const char* kw) {
    if (!EatKw(kw)) return Err(std::string("expected ") + kw);
    return Status::Ok();
  }

  Result<std::string> ExpectIdentifier(const char* what) {
    if (!Check(TokenType::kIdentifier)) return Err(std::string("expected ") + what);
    return Advance().text;
  }

  // ---- statements ----

  Result<Statement> ParseStatementInternal() {
    Statement stmt;
    if (CheckKw("SELECT")) {
      SQS_ASSIGN_OR_RETURN(sel, ParseSelect());
      stmt.select = std::move(sel);
      return stmt;
    }
    if (EatKw("CREATE")) {
      SQS_RETURN_IF_ERROR(ExpectKw("VIEW"));
      auto view = std::make_unique<CreateViewStmt>();
      SQS_ASSIGN_OR_RETURN(name, ExpectIdentifier("view name"));
      view->name = std::move(name);
      if (Eat(TokenType::kLParen)) {
        do {
          SQS_ASSIGN_OR_RETURN(col, ExpectIdentifier("column name"));
          view->column_names.push_back(std::move(col));
        } while (Eat(TokenType::kComma));
        SQS_RETURN_IF_ERROR(Expect(TokenType::kRParen, ")"));
      }
      SQS_RETURN_IF_ERROR(ExpectKw("AS"));
      SQS_ASSIGN_OR_RETURN(sel, ParseSelect());
      view->select = std::move(sel);
      stmt.create_view = std::move(view);
      return stmt;
    }
    if (EatKw("INSERT")) {
      SQS_RETURN_IF_ERROR(ExpectKw("INTO"));
      auto insert = std::make_unique<InsertStmt>();
      SQS_ASSIGN_OR_RETURN(target, ExpectIdentifier("target stream"));
      insert->target = std::move(target);
      SQS_ASSIGN_OR_RETURN(sel, ParseSelect());
      insert->select = std::move(sel);
      stmt.insert = std::move(insert);
      return stmt;
    }
    if (EatKw("EXPLAIN")) {
      auto explain = std::make_unique<ExplainStmt>();
      // ANALYZE is not a reserved keyword; it lexes as an identifier.
      if (Check(TokenType::kIdentifier) && IsAnalyze(Peek().text)) {
        Advance();
        explain->analyze = true;
      }
      SQS_ASSIGN_OR_RETURN(sel, ParseSelect());
      explain->select = std::move(sel);
      stmt.explain = std::move(explain);
      return stmt;
    }
    return Err("expected SELECT, CREATE VIEW, INSERT INTO or EXPLAIN");
  }

  Result<std::unique_ptr<SelectStmt>> ParseSelect() {
    SQS_RETURN_IF_ERROR(ExpectKw("SELECT"));
    auto sel = std::make_unique<SelectStmt>();
    sel->stream = EatKw("STREAM");

    do {
      SelectItem item;
      if (Check(TokenType::kStar)) {
        Advance();
        item.expr = std::make_unique<Expr>();
        item.expr->kind = ExprKind::kStar;
      } else {
        SQS_ASSIGN_OR_RETURN(e, ParseExpr());
        item.expr = std::move(e);
        if (EatKw("AS")) {
          SQS_ASSIGN_OR_RETURN(alias, ExpectIdentifier("alias"));
          item.alias = std::move(alias);
        } else if (Check(TokenType::kIdentifier)) {
          // bare alias: SELECT x y
          item.alias = Advance().text;
        }
      }
      sel->items.push_back(std::move(item));
    } while (Eat(TokenType::kComma));

    SQS_RETURN_IF_ERROR(ExpectKw("FROM"));
    SQS_ASSIGN_OR_RETURN(from, ParseTableRef());
    sel->from = std::move(from);

    while (true) {
      bool inner = EatKw("INNER");
      if (!EatKw("JOIN")) {
        if (inner) return Err("expected JOIN after INNER");
        break;
      }
      JoinClause join;
      SQS_ASSIGN_OR_RETURN(table, ParseTableRef());
      join.table = std::move(table);
      SQS_RETURN_IF_ERROR(ExpectKw("ON"));
      SQS_ASSIGN_OR_RETURN(cond, ParseExpr());
      join.condition = std::move(cond);
      sel->joins.push_back(std::move(join));
    }

    if (EatKw("WHERE")) {
      SQS_ASSIGN_OR_RETURN(w, ParseExpr());
      sel->where = std::move(w);
    }
    if (EatKw("GROUP")) {
      SQS_RETURN_IF_ERROR(ExpectKw("BY"));
      do {
        SQS_ASSIGN_OR_RETURN(g, ParseExpr());
        sel->group_by.push_back(std::move(g));
      } while (Eat(TokenType::kComma));
    }
    if (EatKw("HAVING")) {
      SQS_ASSIGN_OR_RETURN(h, ParseExpr());
      sel->having = std::move(h);
    }
    return sel;
  }

  Result<TableRef> ParseTableRef() {
    TableRef ref;
    if (Eat(TokenType::kLParen)) {
      SQS_ASSIGN_OR_RETURN(sub, ParseSelect());
      ref.subquery = std::move(sub);
      SQS_RETURN_IF_ERROR(Expect(TokenType::kRParen, ")"));
    } else {
      SQS_ASSIGN_OR_RETURN(name, ExpectIdentifier("stream or table name"));
      ref.name = std::move(name);
    }
    if (EatKw("AS")) {
      SQS_ASSIGN_OR_RETURN(alias, ExpectIdentifier("alias"));
      ref.alias = std::move(alias);
    } else if (Check(TokenType::kIdentifier)) {
      ref.alias = Advance().text;
    }
    return ref;
  }

  // ---- expressions (precedence climbing) ----

  Result<ExprPtr> ParseExpr() { return ParseOr(); }

  Result<ExprPtr> ParseOr() {
    SQS_ASSIGN_OR_RETURN(lhs, ParseAnd());
    while (EatKw("OR")) {
      SQS_ASSIGN_OR_RETURN(rhs, ParseAnd());
      lhs = MakeBinary(BinaryOp::kOr, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<ExprPtr> ParseAnd() {
    SQS_ASSIGN_OR_RETURN(lhs, ParseNot());
    while (EatKw("AND")) {
      SQS_ASSIGN_OR_RETURN(rhs, ParseNot());
      lhs = MakeBinary(BinaryOp::kAnd, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<ExprPtr> ParseNot() {
    if (EatKw("NOT")) {
      SQS_ASSIGN_OR_RETURN(operand, ParseNot());
      return MakeUnary(UnaryOp::kNot, std::move(operand));
    }
    return ParseComparison();
  }

  Result<ExprPtr> ParseComparison() {
    SQS_ASSIGN_OR_RETURN(lhs, ParseAdditive());

    if (EatKw("BETWEEN")) {
      auto e = std::make_unique<Expr>();
      e->kind = ExprKind::kBetween;
      e->children.push_back(std::move(lhs));
      SQS_ASSIGN_OR_RETURN(lo, ParseAdditive());
      e->children.push_back(std::move(lo));
      SQS_RETURN_IF_ERROR(ExpectKw("AND"));
      SQS_ASSIGN_OR_RETURN(hi, ParseAdditive());
      e->children.push_back(std::move(hi));
      return e;
    }
    if (EatKw("IS")) {
      bool negated = EatKw("NOT");
      SQS_RETURN_IF_ERROR(ExpectKw("NULL"));
      auto e = std::make_unique<Expr>();
      e->kind = ExprKind::kIsNull;
      e->negated = negated;
      e->children.push_back(std::move(lhs));
      return e;
    }
    if (EatKw("IN")) {
      SQS_RETURN_IF_ERROR(Expect(TokenType::kLParen, "("));
      auto e = std::make_unique<Expr>();
      e->kind = ExprKind::kIn;
      e->children.push_back(std::move(lhs));
      do {
        SQS_ASSIGN_OR_RETURN(item, ParseAdditive());
        e->children.push_back(std::move(item));
      } while (Eat(TokenType::kComma));
      SQS_RETURN_IF_ERROR(Expect(TokenType::kRParen, ")"));
      return e;
    }

    BinaryOp op;
    if (Eat(TokenType::kEq)) {
      op = BinaryOp::kEq;
    } else if (Eat(TokenType::kNeq)) {
      op = BinaryOp::kNeq;
    } else if (Eat(TokenType::kLe)) {
      op = BinaryOp::kLe;
    } else if (Eat(TokenType::kLt)) {
      op = BinaryOp::kLt;
    } else if (Eat(TokenType::kGe)) {
      op = BinaryOp::kGe;
    } else if (Eat(TokenType::kGt)) {
      op = BinaryOp::kGt;
    } else {
      return lhs;
    }
    SQS_ASSIGN_OR_RETURN(rhs, ParseAdditive());
    return MakeBinary(op, std::move(lhs), std::move(rhs));
  }

  Result<ExprPtr> ParseAdditive() {
    SQS_ASSIGN_OR_RETURN(lhs, ParseMultiplicative());
    while (true) {
      BinaryOp op;
      if (Eat(TokenType::kPlus)) {
        op = BinaryOp::kAdd;
      } else if (Eat(TokenType::kMinus)) {
        op = BinaryOp::kSub;
      } else if (Eat(TokenType::kConcat)) {
        op = BinaryOp::kConcat;
      } else {
        break;
      }
      SQS_ASSIGN_OR_RETURN(rhs, ParseMultiplicative());
      lhs = MakeBinary(op, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<ExprPtr> ParseMultiplicative() {
    SQS_ASSIGN_OR_RETURN(lhs, ParseUnary());
    while (true) {
      BinaryOp op;
      if (Eat(TokenType::kStar)) {
        op = BinaryOp::kMul;
      } else if (Eat(TokenType::kSlash)) {
        op = BinaryOp::kDiv;
      } else if (Eat(TokenType::kPercent)) {
        op = BinaryOp::kMod;
      } else {
        break;
      }
      SQS_ASSIGN_OR_RETURN(rhs, ParseUnary());
      lhs = MakeBinary(op, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<ExprPtr> ParseUnary() {
    if (Eat(TokenType::kMinus)) {
      SQS_ASSIGN_OR_RETURN(operand, ParseUnary());
      return MakeUnary(UnaryOp::kNeg, std::move(operand));
    }
    if (Eat(TokenType::kPlus)) return ParseUnary();
    return ParsePrimary();
  }

  Result<ExprPtr> ParsePrimary() {
    const Token& tok = Peek();
    switch (tok.type) {
      case TokenType::kIntLiteral:
        Advance();
        return MakeLiteral(Value(tok.int_value));
      case TokenType::kDoubleLiteral:
        Advance();
        return MakeLiteral(Value(tok.double_value));
      case TokenType::kStringLiteral:
        Advance();
        return MakeLiteral(Value(tok.text));
      case TokenType::kLParen: {
        Advance();
        SQS_ASSIGN_OR_RETURN(inner, ParseExpr());
        SQS_RETURN_IF_ERROR(Expect(TokenType::kRParen, ")"));
        return inner;
      }
      case TokenType::kKeyword:
        if (tok.text == "NULL") {
          Advance();
          return MakeLiteral(Value::Null());
        }
        if (tok.text == "TRUE") {
          Advance();
          return MakeLiteral(Value(true));
        }
        if (tok.text == "FALSE") {
          Advance();
          return MakeLiteral(Value(false));
        }
        // END is reserved for CASE...END but is also the window-bound
        // aggregate END(ts) (paper §3.6); disambiguate by the '('.
        if (tok.text == "END" && Peek(1).type == TokenType::kLParen) {
          Advance();
          return ParseFunctionCall("END");
        }
        if (tok.text == "INTERVAL") return ParseIntervalLiteral();
        if (tok.text == "TIME") return ParseTimeLiteral();
        if (tok.text == "CASE") return ParseCase();
        if (tok.text == "CAST") return ParseCast();
        return Err("unexpected keyword " + tok.text + " in expression");
      case TokenType::kIdentifier:
        return ParseIdentifierExpr();
      default:
        return Err("unexpected token in expression");
    }
  }

  // INTERVAL 'text' unit [TO unit]. '2' HOUR -> 2h; '1:30' HOUR TO MINUTE ->
  // 1h30m (fields split on ':' map onto the unit range, most significant
  // first, matching SQL day-time interval literals).
  Result<ExprPtr> ParseIntervalLiteral() {
    SQS_RETURN_IF_ERROR(ExpectKw("INTERVAL"));
    if (!Check(TokenType::kStringLiteral)) return Err("expected interval string");
    std::string text = Advance().text;
    if (!Check(TokenType::kKeyword)) return Err("expected interval unit");
    std::string unit1 = Advance().text;
    std::string unit2;
    if (EatKw("TO")) {
      if (!Check(TokenType::kKeyword)) return Err("expected interval end unit");
      unit2 = Advance().text;
    }
    SQS_ASSIGN_OR_RETURN(millis, ParseIntervalValue(text, unit1, unit2));
    return MakeLiteral(Value(millis));
  }

  static Result<int64_t> ParseIntervalValue(const std::string& text,
                                            const std::string& unit1,
                                            const std::string& unit2) {
    // Split the text on ':'.
    std::vector<int64_t> parts;
    std::string cur;
    for (char c : text + ":") {
      if (c == ':') {
        if (cur.empty()) return Status::ParseError("bad interval literal: " + text);
        parts.push_back(std::strtoll(cur.c_str(), nullptr, 10));
        cur.clear();
      } else if (std::isdigit(static_cast<unsigned char>(c))) {
        cur += c;
      } else {
        return Status::ParseError("bad interval literal: " + text);
      }
    }
    static const std::vector<std::string> kUnits = {"DAY", "HOUR", "MINUTE", "SECOND"};
    auto index_of = [&](const std::string& u) -> int {
      for (size_t i = 0; i < kUnits.size(); ++i) {
        if (kUnits[i] == u) return static_cast<int>(i);
      }
      return -1;
    };
    int i1 = index_of(unit1);
    if (i1 < 0) return Status::ParseError("unsupported interval unit: " + unit1);
    int i2 = unit2.empty() ? i1 : index_of(unit2);
    if (i2 < 0) return Status::ParseError("unsupported interval unit: " + unit2);
    if (i2 < i1) return Status::ParseError("interval units out of order");
    if (static_cast<int>(parts.size()) != i2 - i1 + 1) {
      return Status::ParseError("interval literal '" + text + "' does not match " +
                                unit1 + (unit2.empty() ? "" : " TO " + unit2));
    }
    int64_t millis = 0;
    for (int u = i1; u <= i2; ++u) {
      SQS_ASSIGN_OR_RETURN(mult, UnitMillis(kUnits[u]));
      millis += parts[u - i1] * mult;
    }
    return millis;
  }

  // TIME 'h:m[:s]' -> milliseconds since midnight (used by HOP align).
  Result<ExprPtr> ParseTimeLiteral() {
    SQS_RETURN_IF_ERROR(ExpectKw("TIME"));
    if (!Check(TokenType::kStringLiteral)) return Err("expected time string");
    std::string text = Advance().text;
    std::vector<int64_t> parts;
    std::string cur;
    for (char c : text + ":") {
      if (c == ':') {
        if (cur.empty()) return Err("bad time literal: " + text);
        parts.push_back(std::strtoll(cur.c_str(), nullptr, 10));
        cur.clear();
      } else if (std::isdigit(static_cast<unsigned char>(c))) {
        cur += c;
      } else {
        return Err("bad time literal: " + text);
      }
    }
    if (parts.size() < 2 || parts.size() > 3) return Err("bad time literal: " + text);
    int64_t millis = parts[0] * 3600000 + parts[1] * 60000;
    if (parts.size() == 3) millis += parts[2] * 1000;
    return MakeLiteral(Value(millis));
  }

  Result<ExprPtr> ParseCase() {
    SQS_RETURN_IF_ERROR(ExpectKw("CASE"));
    auto e = std::make_unique<Expr>();
    e->kind = ExprKind::kCase;
    while (EatKw("WHEN")) {
      SQS_ASSIGN_OR_RETURN(cond, ParseExpr());
      e->children.push_back(std::move(cond));
      SQS_RETURN_IF_ERROR(ExpectKw("THEN"));
      SQS_ASSIGN_OR_RETURN(val, ParseExpr());
      e->children.push_back(std::move(val));
    }
    if (e->children.empty()) return Err("CASE requires at least one WHEN");
    if (EatKw("ELSE")) {
      SQS_ASSIGN_OR_RETURN(val, ParseExpr());
      e->children.push_back(std::move(val));
      e->has_else = true;
    }
    SQS_RETURN_IF_ERROR(ExpectKw("END"));
    return e;
  }

  Result<ExprPtr> ParseCast() {
    SQS_RETURN_IF_ERROR(ExpectKw("CAST"));
    SQS_RETURN_IF_ERROR(Expect(TokenType::kLParen, "("));
    auto e = std::make_unique<Expr>();
    e->kind = ExprKind::kCast;
    SQS_ASSIGN_OR_RETURN(operand, ParseExpr());
    e->children.push_back(std::move(operand));
    SQS_RETURN_IF_ERROR(ExpectKw("AS"));
    if (!Check(TokenType::kIdentifier) && !Check(TokenType::kKeyword)) {
      return Err("expected type name");
    }
    std::string type_name = Advance().text;
    for (char& c : type_name) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
    if (type_name == "INTEGER" || type_name == "INT") {
      e->cast_type = FieldType::Int32();
    } else if (type_name == "BIGINT") {
      e->cast_type = FieldType::Int64();
    } else if (type_name == "DOUBLE" || type_name == "FLOAT") {
      e->cast_type = FieldType::Double();
    } else if (type_name == "VARCHAR" || type_name == "CHAR") {
      e->cast_type = FieldType::String();
      // optional (n)
      if (Eat(TokenType::kLParen)) {
        if (!Eat(TokenType::kIntLiteral)) return Err("expected length");
        SQS_RETURN_IF_ERROR(Expect(TokenType::kRParen, ")"));
      }
    } else if (type_name == "BOOLEAN") {
      e->cast_type = FieldType::Bool();
    } else {
      return Err("unsupported cast type " + type_name);
    }
    SQS_RETURN_IF_ERROR(Expect(TokenType::kRParen, ")"));
    return e;
  }

  // identifier: column ref "a", qualified "t.a", or function call "f(...)"
  // possibly with an OVER clause.
  Result<ExprPtr> ParseIdentifierExpr() {
    std::string first = Advance().text;

    if (Check(TokenType::kLParen)) {
      return ParseFunctionCall(std::move(first));
    }
    if (Eat(TokenType::kDot)) {
      SQS_ASSIGN_OR_RETURN(second, ExpectIdentifier("column name"));
      return MakeColumnRef(std::move(first), std::move(second));
    }
    return MakeColumnRef("", std::move(first));
  }

  Result<ExprPtr> ParseFunctionCall(std::string name) {
    for (char& c : name) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
    SQS_RETURN_IF_ERROR(Expect(TokenType::kLParen, "("));
    auto e = std::make_unique<Expr>();
    e->kind = ExprKind::kFuncCall;
    e->func_name = std::move(name);

    if (Check(TokenType::kStar)) {
      Advance();
      e->star_arg = true;
      SQS_RETURN_IF_ERROR(Expect(TokenType::kRParen, ")"));
    } else if (Eat(TokenType::kRParen)) {
      // zero-arg call
    } else {
      do {
        SQS_ASSIGN_OR_RETURN(arg, ParseExpr());
        e->children.push_back(std::move(arg));
        // FLOOR(x TO HOUR): the TO unit becomes a trailing string literal arg.
        if (EatKw("TO")) {
          if (!Check(TokenType::kKeyword)) return Err("expected unit after TO");
          e->children.push_back(MakeLiteral(Value(Advance().text)));
        }
      } while (Eat(TokenType::kComma));
      SQS_RETURN_IF_ERROR(Expect(TokenType::kRParen, ")"));
    }

    if (EatKw("OVER")) {
      SQS_ASSIGN_OR_RETURN(spec, ParseWindowSpec());
      e->kind = ExprKind::kWindowCall;
      e->window = std::move(spec);
    }
    return e;
  }

  Result<std::unique_ptr<WindowSpec>> ParseWindowSpec() {
    SQS_RETURN_IF_ERROR(Expect(TokenType::kLParen, "("));
    auto spec = std::make_unique<WindowSpec>();
    if (EatKw("PARTITION")) {
      SQS_RETURN_IF_ERROR(ExpectKw("BY"));
      do {
        SQS_ASSIGN_OR_RETURN(p, ParseExpr());
        spec->partition_by.push_back(std::move(p));
      } while (Eat(TokenType::kComma));
    }
    SQS_RETURN_IF_ERROR(ExpectKw("ORDER"));
    SQS_RETURN_IF_ERROR(ExpectKw("BY"));
    SQS_ASSIGN_OR_RETURN(order_col, ExpectIdentifier("order column"));
    spec->order_by = std::move(order_col);
    EatKw("ASC");

    if (EatKw("RANGE")) {
      spec->range_based = true;
      SQS_ASSIGN_OR_RETURN(width, ParseIntervalLiteral());
      spec->preceding_millis = width->literal.as_int64();
      SQS_RETURN_IF_ERROR(ExpectKw("PRECEDING"));
    } else if (EatKw("ROWS")) {
      spec->range_based = false;
      if (!Check(TokenType::kIntLiteral)) return Err("expected row count");
      spec->preceding_rows = Advance().int_value;
      SQS_RETURN_IF_ERROR(ExpectKw("PRECEDING"));
    } else {
      return Err("expected RANGE or ROWS in window spec");
    }
    SQS_RETURN_IF_ERROR(Expect(TokenType::kRParen, ")"));
    return spec;
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<Statement> ParseStatement(const std::string& input) {
  SQS_ASSIGN_OR_RETURN(tokens, Lex(input));
  return Parser(std::move(tokens)).ParseOneStatement();
}

Result<std::vector<Statement>> ParseScript(const std::string& input) {
  SQS_ASSIGN_OR_RETURN(tokens, Lex(input));
  return Parser(std::move(tokens)).ParseAll();
}

Result<ExprPtr> ParseExpression(const std::string& input) {
  SQS_ASSIGN_OR_RETURN(tokens, Lex(input));
  return Parser(std::move(tokens)).ParseOneExpression();
}

}  // namespace sqs::sql
