// SQL lexer for SamzaSQL's streaming SQL dialect (paper §3): standard SQL
// plus the STREAM keyword and the TUMBLE/HOP group-window functions.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace sqs::sql {

enum class TokenType {
  kEnd,
  kIdentifier,   // possibly-quoted identifier
  kKeyword,      // upper-cased match against the keyword set
  kIntLiteral,
  kDoubleLiteral,
  kStringLiteral,
  // punctuation / operators
  kComma, kLParen, kRParen, kDot, kStar, kSemicolon,
  kPlus, kMinus, kSlash, kPercent,
  kEq, kNeq, kLt, kLe, kGt, kGe,
  kConcat,  // ||
};

struct Token {
  TokenType type = TokenType::kEnd;
  std::string text;     // identifier/keyword (keywords upper-cased) or literal text
  int64_t int_value = 0;
  double double_value = 0;
  size_t position = 0;  // byte offset in the input, for error messages

  bool IsKeyword(const char* kw) const {
    return type == TokenType::kKeyword && text == kw;
  }
};

// Tokenizes the whole input. Keywords are recognized case-insensitively and
// normalized to upper case; non-keyword identifiers keep their case.
Result<std::vector<Token>> Lex(const std::string& input);

// True if `word` (already upper-cased) is a reserved keyword.
bool IsReservedKeyword(const std::string& word);

}  // namespace sqs::sql
