// Query planner: validated AST -> logical plan. Performs name resolution,
// type checking, stream-semantics validation, view inlining, join-condition
// analysis, and group-window canonicalization. Streaming-specific rules
// (paper §3, §7):
//  - SELECT STREAM requires at least one stream source; without STREAM a
//    query over a stream runs against the stream's history as a table.
//  - aggregating an unbounded stream requires a group window
//    (TUMBLE / HOP / FLOOR(ts TO unit));
//  - stream-stream joins require a time bound in the join condition;
//  - time-based windows require the source's timestamp column to still be
//    present (dropping it disables time windows downstream — §7 item 2).
#pragma once

#include <memory>

#include "common/status.h"
#include "sql/ast.h"
#include "sql/catalog.h"
#include "sql/logical.h"

namespace sqs::sql {

class QueryPlanner {
 public:
  explicit QueryPlanner(CatalogPtr catalog) : catalog_(std::move(catalog)) {}

  // Plan a SELECT. The result's is_stream flag tells the executor whether
  // this is a continuous query (SELECT STREAM) or a batch history query.
  Result<LogicalNodePtr> Plan(const SelectStmt& stmt);

  const Catalog& catalog() const { return *catalog_; }

 private:
  CatalogPtr catalog_;
};

// Splits a predicate into its AND-ed conjuncts (children are cloned).
std::vector<ExprPtr> SplitConjuncts(const Expr& predicate);

// AND-combine conjuncts (returns null for an empty list).
ExprPtr CombineConjuncts(std::vector<ExprPtr> conjuncts);

}  // namespace sqs::sql
