// Resolved-expression services:
//  - type inference / column resolution (used by the planner),
//  - a tree-walking interpreter,
//  - a compiler to a flat register program over the tuple-as-array row
//    representation. This is the stand-in for the paper's Janino/Linq4j
//    code generation (§4.2): generated operators evaluate filter conditions
//    and projection expressions against a Row (array), which is why the
//    scan/insert operators must convert records to arrays and back (Fig. 4).
//
// NULL semantics (documented deviation, see README): comparisons involving
// NULL evaluate to FALSE rather than UNKNOWN; AND/OR treat NULL as FALSE;
// arithmetic on NULL yields NULL; aggregates skip NULLs. Division by zero
// yields NULL.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"
#include "common/value.h"
#include "sql/ast.h"

namespace sqs::sql {

// Resolves column refs / infers types for `expr` in place. `resolver` maps
// (qualifier, column) -> (input row index, type); it returns NotFound for
// unknown columns. Aggregate/window calls are rejected unless
// `allow_aggregates` (the planner handles those contexts specially).
using ColumnResolver =
    std::function<Result<std::pair<int, FieldType>>(const std::string& qualifier,
                                                    const std::string& column)>;

Status ResolveExpr(Expr& expr, const ColumnResolver& resolver,
                   bool allow_aggregates = false);

// Interprets a resolved expression against a row.
Value EvalExpr(const Expr& expr, const Row& input);

// Structural equality of (resolved or unresolved) expressions; used to match
// select-list expressions against GROUP BY expressions.
bool ExprEquals(const Expr& a, const Expr& b);

// True if the (sub)expression contains any kAggCall / kWindowCall.
bool ContainsAggregate(const Expr& expr);

// Rewrite `expr` so every resolved column ref i is replaced by a clone of
// bindings[i] (composition of projections onto an earlier schema). Refs with
// no binding are cloned unchanged.
ExprPtr SubstituteColumns(const Expr& expr,
                          const std::vector<const Expr*>& bindings);

// Append the resolved input-row index of every column ref in `expr`.
void CollectColumnIndices(const Expr& expr, std::vector<int>& indices);

// ---------------------------------------------------------------------------
// Compiled expressions: a flat postfix program evaluated on a value stack.
// One-time compilation per operator instance at task init (like the paper's
// generated Java), then cheap per-tuple evaluation with no tree walking.
// ---------------------------------------------------------------------------

class CompiledExpr {
 public:
  // `expr` must be fully resolved. Aggregate/window calls cannot be
  // compiled (they are evaluated by the window/aggregate operators).
  static Result<CompiledExpr> Compile(const Expr& expr);

  Value Eval(const Row& input) const;

  size_t num_instructions() const { return code_.size(); }

 private:
  enum class OpCode : uint8_t {
    kLoadColumn,   // push input[a]
    kLoadConst,    // push constants[a]
    kBinary,       // pop rhs, lhs; push lhs <a:BinaryOp> rhs
    kUnary,        // pop v; push <a:UnaryOp> v
    kFunc,         // pop a args (b = function id); push result
    kJumpIfFalse,  // pop cond; if !true jump to a   (CASE / AND short-circuit)
    kJump,         // jump to a
    kIsNull,       // pop v; push v.is_null() (a: negated)
    kCast,         // pop v; push cast to kind a
    kUdf,          // pop a args (b = FunctionRegistry id); push result
    kPop,          // discard top
  };
  struct Insn {
    OpCode op;
    int32_t a = 0;
    int32_t b = 0;
  };

  Status Emit(const Expr& expr);
  int32_t AddConst(Value v);

  std::vector<Insn> code_;
  std::vector<Value> constants_;
  friend class CompiledExprTestPeer;
};

// Scalar function ids shared by the interpreter and compiler.
enum class ScalarFunc : int32_t {
  kFloor, kFloorTo, kCeil, kAbs, kMod, kGreatest, kLeast, kUpper, kLower,
  kCharLength, kSubstring, kConcat, kCoalesce, kSqrt, kPower,
};
Result<ScalarFunc> LookupScalarFunc(const std::string& name, size_t arity);
Value EvalScalarFunc(ScalarFunc fn, const std::vector<Value>& args);

// Type of a scalar function result given argument types.
Result<FieldType> ScalarFuncType(const std::string& name,
                                 const std::vector<FieldType>& args);

// Floor a timestamp (epoch millis) to the unit ("HOUR", "MINUTE", ...).
Result<int64_t> FloorTimestampTo(int64_t ts_millis, const std::string& unit);

// ---------------------------------------------------------------------------
// Aggregate functions (used by aggregate/window operators and batch eval).
// ---------------------------------------------------------------------------

enum class AggKind { kCount, kSum, kMin, kMax, kAvg, kStart, kEnd };

Result<AggKind> LookupAggFunc(const std::string& name);
bool IsAggFuncName(const std::string& name);

// Incremental aggregate state. START/END track window bounds and are fed by
// the operator, not by Add().
class AggState {
 public:
  explicit AggState(AggKind kind) : kind_(kind) {}

  void Add(const Value& v);
  // Retract a previously added value (sliding-window purge). Only valid for
  // COUNT/SUM/AVG; MIN/MAX windows recompute instead (see SlidingWindowOp).
  void Remove(const Value& v);
  static bool SupportsRemove(AggKind kind) {
    return kind == AggKind::kCount || kind == AggKind::kSum || kind == AggKind::kAvg;
  }

  Value Result() const;
  AggKind kind() const { return kind_; }

  // Serialization for changelog-backed window state (fault tolerance).
  void EncodeTo(BytesWriter& out) const;
  static ::sqs::Result<AggState> Decode(AggKind kind, BytesReader& in);

  int64_t count() const { return count_; }

 private:
  AggKind kind_;
  int64_t count_ = 0;       // non-null values seen
  int64_t sum_i_ = 0;       // integer sum
  double sum_d_ = 0;        // double sum
  bool is_double_ = false;  // any double fed in
  Value extreme_;           // MIN/MAX current
};

// Aggregate result type given the argument type.
Result<FieldType> AggResultType(AggKind kind, const FieldType& arg);

}  // namespace sqs::sql
