// Abstract syntax tree for SamzaSQL's streaming SQL dialect (paper §3).
// Expressions carry optional resolution annotations (column index, result
// type) that the validator fills in; the parser leaves them empty.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/value.h"
#include "serde/schema.h"

namespace sqs::sql {

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

enum class ExprKind {
  kLiteral,     // value
  kColumnRef,   // [qualifier.]name  -> resolved to input column index
  kStar,        // * (select list only)
  kBinary,      // op, children[0], children[1]
  kUnary,       // op, children[0]
  kFuncCall,    // scalar function: name(children...)
  kAggCall,     // aggregate: name(children...) — COUNT/SUM/MIN/MAX/AVG/START/END
  kWindowCall,  // aggregate over an OVER clause (sliding window)
  kCase,        // CASE WHEN c1 THEN v1 [WHEN...] [ELSE e] END; children =
                // [c1, v1, c2, v2, ..., else?]; has_else marks the trailing else
  kCast,        // CAST(children[0] AS target_type)
  kBetween,     // children[0] BETWEEN children[1] AND children[2]
  kIsNull,      // children[0] IS [NOT] NULL (negated -> IS NOT NULL)
  kIn,          // children[0] IN (children[1..])
};

enum class BinaryOp {
  kAdd, kSub, kMul, kDiv, kMod,
  kEq, kNeq, kLt, kLe, kGt, kGe,
  kAnd, kOr,
  kConcat,
};

enum class UnaryOp { kNeg, kNot };

const char* BinaryOpName(BinaryOp op);

// Bounds of an OVER window (sliding windows, paper §3.7):
//   RANGE INTERVAL 'n' unit PRECEDING  -> time-based, preceding_millis
//   ROWS n PRECEDING                   -> tuple-based, preceding_rows
struct WindowSpec {
  std::vector<std::unique_ptr<struct Expr>> partition_by;
  std::string order_by;    // column name; must be the timestamp for RANGE
  bool range_based = true;
  int64_t preceding_millis = 0;  // RANGE window width
  int64_t preceding_rows = 0;    // ROWS window width
};

struct Expr {
  ExprKind kind;

  // kLiteral
  Value literal;

  // kColumnRef
  std::string qualifier;  // optional "stream." prefix
  std::string column;

  // kBinary / kUnary
  BinaryOp binary_op = BinaryOp::kAdd;
  UnaryOp unary_op = UnaryOp::kNeg;

  // kFuncCall / kAggCall / kWindowCall
  std::string func_name;  // upper-cased
  bool star_arg = false;  // COUNT(*)
  std::unique_ptr<WindowSpec> window;  // kWindowCall only

  // kCase
  bool has_else = false;

  // kCast
  FieldType cast_type;

  // kIsNull
  bool negated = false;

  std::vector<std::unique_ptr<Expr>> children;

  // --- validator annotations ---
  int resolved_index = -1;        // kColumnRef: index into the input row
  FieldType resolved_type;        // result type after validation

  std::string ToString() const;
  std::unique_ptr<Expr> Clone() const;
};

using ExprPtr = std::unique_ptr<Expr>;

ExprPtr MakeLiteral(Value v);
ExprPtr MakeColumnRef(std::string qualifier, std::string column);
ExprPtr MakeBinary(BinaryOp op, ExprPtr lhs, ExprPtr rhs);
ExprPtr MakeUnary(UnaryOp op, ExprPtr operand);
ExprPtr MakeFuncCall(std::string name, std::vector<ExprPtr> args);

// ---------------------------------------------------------------------------
// Statements
// ---------------------------------------------------------------------------

struct SelectStmt;

// FROM-clause item: a named relation/stream, or a subquery.
struct TableRef {
  std::string name;                   // named source (empty for subqueries)
  std::unique_ptr<SelectStmt> subquery;
  std::string alias;                  // optional

  std::string EffectiveName() const {
    if (!alias.empty()) return alias;
    return name;
  }
};

struct JoinClause {
  TableRef table;
  ExprPtr condition;  // ON expression
};

struct SelectItem {
  ExprPtr expr;        // kStar for "*"
  std::string alias;   // optional AS alias
};

struct SelectStmt {
  bool stream = false;  // SELECT STREAM ...
  std::vector<SelectItem> items;
  TableRef from;
  std::vector<JoinClause> joins;
  ExprPtr where;                 // nullable
  std::vector<ExprPtr> group_by; // may contain TUMBLE/HOP/FLOOR calls
  ExprPtr having;                // nullable

  std::string ToString() const;
};

struct CreateViewStmt {
  std::string name;
  std::vector<std::string> column_names;  // optional rename list
  std::unique_ptr<SelectStmt> select;
};

struct InsertStmt {
  std::string target;  // output stream name
  std::unique_ptr<SelectStmt> select;
};

struct ExplainStmt {
  std::unique_ptr<SelectStmt> select;
  bool analyze = false;  // EXPLAIN ANALYZE: run sampled, annotate with spans
};

// A parsed statement: exactly one member is set.
struct Statement {
  std::unique_ptr<SelectStmt> select;
  std::unique_ptr<CreateViewStmt> create_view;
  std::unique_ptr<InsertStmt> insert;
  std::unique_ptr<ExplainStmt> explain;
};

}  // namespace sqs::sql
