// User-defined scalar functions (paper §7 item 4: the prototype "does not
// provide a concrete API to define user defined aggregates even though it
// is theoretically possible" — this is that concrete API, for the scalar
// case; built-in aggregates cover the aggregate case).
//
// UDFs registered here are visible to the planner (name resolution + result
// typing), the interpreter, and the compiled expression programs. Names are
// resolved case-insensitively like built-ins and must not collide with
// built-in function names.
//
// The registry is process-global (like the task factory registry): a UDF
// must be registered in every process that plans or executes queries using
// it — the same contract as registering a UDF jar with every Samza job.
#pragma once

#include <cstdint>
#include <memory>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"
#include "common/value.h"
#include "serde/schema.h"

namespace sqs::sql {

struct ScalarUdf {
  std::string name;      // upper-cased
  size_t min_arity = 0;
  size_t max_arity = 0;
  // Result type given argument types (also validates argument types).
  std::function<Result<FieldType>(const std::vector<FieldType>&)> type_fn;
  // Evaluation. Must be pure (the optimizer may constant-fold it).
  std::function<Value(const std::vector<Value>&)> eval_fn;
};

// User-defined aggregate: incremental accumulator with serializable state
// (window aggregate state is kept in changelog-backed stores, so it must
// round-trip through bytes for fault tolerance).
class UdafAccumulator {
 public:
  virtual ~UdafAccumulator() = default;
  virtual void Add(const Value& v) = 0;
  virtual Value Result() const = 0;
  virtual void EncodeTo(BytesWriter& out) const = 0;
  virtual Status DecodeFrom(BytesReader& in) = 0;
};

struct AggregateUdf {
  std::string name;  // upper-cased
  // Result type given the argument type (also validates it).
  std::function<Result<FieldType>(const FieldType&)> type_fn;
  std::function<std::unique_ptr<UdafAccumulator>()> factory;
};

class FunctionRegistry {
 public:
  static FunctionRegistry& Instance();

  // Registers a UDF. Fails on collisions with built-ins or existing UDFs.
  Status RegisterScalar(ScalarUdf udf);

  // Registers a user-defined aggregate (usable in GROUP BY queries).
  Status RegisterAggregate(AggregateUdf udaf);
  bool HasAggregate(const std::string& name) const;
  Result<int32_t> LookupAggregate(const std::string& name) const;
  Result<FieldType> AggregateResultType(int32_t id, const FieldType& arg) const;
  std::unique_ptr<UdafAccumulator> CreateAccumulator(int32_t id) const;

  // Convenience: fixed arity, fixed result type, no argument validation.
  Status RegisterScalar(const std::string& name, size_t arity, FieldType result_type,
                        std::function<Value(const std::vector<Value>&)> eval_fn);

  // Lookup by (name, arity). Returns a stable id usable by compiled code.
  Result<int32_t> Lookup(const std::string& name, size_t arity) const;
  Result<FieldType> ResultType(const std::string& name,
                               const std::vector<FieldType>& args) const;
  Value Eval(int32_t id, const std::vector<Value>& args) const;

  bool Has(const std::string& name) const;

  // Testing hook: remove a UDF.
  void Unregister(const std::string& name);

 private:
  mutable std::mutex mu_;
  std::vector<ScalarUdf> udfs_;                 // id = index (ids are stable)
  std::map<std::string, int32_t> by_name_;
  std::vector<AggregateUdf> udafs_;
  std::map<std::string, int32_t> udaf_by_name_;
};

}  // namespace sqs::sql
