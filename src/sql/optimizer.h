// Rule-based logical-plan optimizer (the Calcite-optimization stand-in,
// paper §4.2: "apply some generic optimizations bundled with Calcite").
// Rules run to a fixpoint:
//  - ConstantFolding:       literal-only subexpressions are evaluated once
//  - FilterMerge:           Filter(Filter(x)) -> Filter(a AND b)
//  - FilterProjectTranspose: push filters below projections whose referenced
//                            outputs are plain column refs
//  - FilterJoinPushdown:    push single-side conjuncts below a join
//  - ProjectMerge:          Project(Project(x)) -> composed Project
//  - RemoveTrivialProject:  drop identity projections
#pragma once

#include "sql/logical.h"

namespace sqs::sql {

struct OptimizerStats {
  int constant_folds = 0;
  int filters_merged = 0;
  int filters_pushed_below_project = 0;
  int filters_pushed_into_join = 0;
  int projects_merged = 0;
  int trivial_projects_removed = 0;

  int Total() const {
    return constant_folds + filters_merged + filters_pushed_below_project +
           filters_pushed_into_join + projects_merged + trivial_projects_removed;
  }
};

// Optimizes the plan in place (nodes may be replaced; returns the new root).
LogicalNodePtr Optimize(LogicalNodePtr root, OptimizerStats* stats = nullptr);

// Fold literal-only subtrees of a resolved expression in place.
// Returns true if anything changed.
bool FoldConstants(Expr& expr);

}  // namespace sqs::sql
